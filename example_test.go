package poseidon_test

import (
	"fmt"
	"log"
	"os"

	"poseidon"
)

// Example shows the complete lifecycle: create, allocate, persist, anchor
// at the root, save, reopen, and read back.
func Example() {
	dir, err := os.MkdirTemp("", "poseidon-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/heap.img"

	// First "process": create and populate.
	h, err := poseidon.Open(path, poseidon.Options{
		Subheaps:        2,
		SubheapUserSize: 8 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	t, err := h.Thread()
	if err != nil {
		log.Fatal(err)
	}
	p, err := t.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Persist(p, 0, []byte("survives restarts")); err != nil {
		log.Fatal(err)
	}
	if err := h.SetRoot(p); err != nil {
		log.Fatal(err)
	}
	t.Close()
	if err := h.Save(); err != nil {
		log.Fatal(err)
	}
	_ = h.Close()

	// Second "process": reopen and follow the root.
	h2, err := poseidon.Open(path, poseidon.Options{})
	if err != nil {
		log.Fatal(err)
	}
	t2, err := h2.Thread()
	if err != nil {
		log.Fatal(err)
	}
	defer t2.Close()
	root, err := h2.Root()
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 17)
	if err := t2.Read(root, 0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	// Output: survives restarts
}

// ExampleThread_TxAlloc shows transactional allocation: the three nodes
// become durable together at the final is_end commit; a crash before it
// would roll all of them back at the next Open.
func ExampleThread_TxAlloc() {
	h, err := poseidon.Create(poseidon.Options{
		Subheaps:        1,
		SubheapUserSize: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	t, err := h.Thread()
	if err != nil {
		log.Fatal(err)
	}
	defer t.Close()

	var nodes []poseidon.NVMPtr
	for i := 0; i < 3; i++ {
		p, err := t.TxAlloc(64, i == 2) // is_end on the last allocation
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, p)
	}
	fmt.Println(len(nodes), "nodes allocated atomically")
	// Output: 3 nodes allocated atomically
}
