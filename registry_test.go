package poseidon

import "testing"

func TestRegistryResolve(t *testing.T) {
	opts := smallOptions()
	opts.HeapID = 0x100
	h1, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.HeapID = 0x200
	h2, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.Add(h1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(h2); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if err := r.Add(h1); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	t1, err := h1.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	p1, err := t1.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := t2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Resolve(p1); !ok || got != h1 {
		t.Fatal("p1 resolved wrongly")
	}
	if got, ok := r.Resolve(p2); !ok || got != h2 {
		t.Fatal("p2 resolved wrongly")
	}
	r.Remove(h1)
	if _, ok := r.Resolve(p1); ok {
		t.Fatal("removed heap still resolves")
	}
	if _, ok := r.Resolve(NVMPtr{}); ok {
		t.Fatal("null pointer resolved")
	}
}
