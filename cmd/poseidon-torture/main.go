// Command poseidon-torture is the exhaustive crash-point sweep: it counts
// the mutating device operations of a scripted workload, then for EVERY
// operation index re-runs the workload with the failpoint armed there,
// crashes under the selected cacheline-eviction policy, reloads, and audits
// the recovered heap. Any surviving inconsistency is printed with the
// minimal reproducer (seed, crash point, evict mode) and the tool exits
// non-zero.
//
//	poseidon-torture -ops 256                 # full sweep, all four modes
//	poseidon-torture -ops 256 -modes torn     # one mode
//	poseidon-torture -ops 256 -point 1234 -modes random   # replay one point
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/torture"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-torture:", err)
		os.Exit(1)
	}
}

func parseModes(s string) ([]nvm.EvictMode, error) {
	if s == "all" {
		return []nvm.EvictMode{nvm.EvictNone, nvm.EvictAll, nvm.EvictRandom, nvm.EvictTorn}, nil
	}
	var modes []nvm.EvictMode
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			modes = append(modes, nvm.EvictNone)
		case "all":
			modes = append(modes, nvm.EvictAll)
		case "random":
			modes = append(modes, nvm.EvictRandom)
		case "torn":
			modes = append(modes, nvm.EvictTorn)
		default:
			return nil, fmt.Errorf("unknown evict mode %q (want none, all, random, torn)", name)
		}
	}
	return modes, nil
}

func run() error {
	var (
		ops     = flag.Int("ops", 256, "mix-workload operations (scales the crash-point count)")
		seed    = flag.Int64("seed", 1, "workload and eviction seed")
		modeStr = flag.String("modes", "all", "comma-separated evict modes to sweep, or \"all\"")
		workers = flag.Int("workers", 4, "parallel crash-point workers")
		prob    = flag.Float64("prob", 0.5, "EvictRandom survival / EvictTorn full-persist probability")
		stride  = flag.Int("stride", 1, "sweep every stride-th crash point")
		point   = flag.Int("point", -1, "sweep only this crash point (reproducer mode)")
		quiet   = flag.Bool("q", false, "suppress progress output")
		metrics = flag.String("metrics", "", "serve /metrics, /vars and /debug/pprof on this address (empty = off)")
	)
	flag.Parse()

	modes, err := parseModes(*modeStr)
	if err != nil {
		return err
	}
	tel := obs.New()
	cfg := torture.Config{
		Ops:       *ops,
		Seed:      *seed,
		Modes:     modes,
		Workers:   *workers,
		Prob:      *prob,
		Stride:    *stride,
		Telemetry: tel,
	}
	if *metrics != "" {
		srv, err := obs.Serve(*metrics, tel.Snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr)
	}
	if *point >= 0 {
		cfg.Point = *point
		cfg.SinglePoint = true
	}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	start := time.Now()
	res, err := torture.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("swept %d crash points, %d crash/recover/audit runs in %v\n",
		res.CrashPoints, res.Runs, time.Since(start).Round(time.Millisecond))
	fmt.Printf("dirty-line fates across all crashes: %d persisted, %d dropped, %d torn\n",
		res.Persisted, res.Dropped, res.Torn)
	if rec := tel.Hist(obs.OpRecovery); rec.Count > 0 {
		fmt.Printf("recovery latency across %d loads: p50=%dns p99=%dns max=%dns\n",
			rec.Count, rec.Quantile(0.50), rec.Quantile(0.99), rec.Max)
	}
	if len(res.Violations) == 0 {
		fmt.Println("no violations")
		return nil
	}
	fmt.Printf("%d VIOLATIONS:\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  mode=%s point=%d: %s\n", v.Mode, v.Point, v.Detail)
		fmt.Printf("    crash dropped %d and tore %d of %d dirty lines\n",
			v.Report.DroppedLines, v.Report.TornLines, v.Report.DirtyLines)
		fmt.Printf("    reproduce: %s\n", v.Reproducer(*ops, *prob))
	}
	return fmt.Errorf("%d of %d runs violated heap invariants", len(res.Violations), res.Runs)
}
