// Command poseidon-stress is the pre-release soak tool: randomized
// concurrent allocation workloads punctuated by simulated power failures
// with adversarial cacheline eviction, each followed by recovery and a
// full consistency audit (the fsck engine). It exits non-zero on the first
// inconsistency.
//
//	poseidon-stress -cycles 20 -threads 4 -ops 3000
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-stress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cycles  = flag.Int("cycles", 20, "crash/recover cycles")
		threads = flag.Int("threads", 4, "concurrent workers")
		ops     = flag.Int("ops", 3000, "operations per worker per cycle")
		seed    = flag.Int64("seed", 1, "randomness seed")
		metrics  = flag.String("metrics", "", "serve /metrics, /vars and /debug/pprof on this address (e.g. :9120; empty = off)")
		save     = flag.String("save", "", "save the final heap image to this path (e.g. for a poseidon-fsck audit)")
		profRate = flag.Int("profile-rate", 0, "sample 1-in-N allocations into the site profiler (0 = off); served at /debug/pprof/poseidon_heap")
		trcRate  = flag.Int("trace-rate", 0, "sample 1-in-N operations as spans (0 = off); served at /debug/optrace")
		optrace  = flag.String("optrace", "", "write the final op-span trace as Chrome trace-event JSON to this path")
		watchdog = flag.Duration("watchdog", 0, "stall-watchdog threshold (0 = off); stalls are journalled and recorded in the black box")
	)
	flag.Parse()

	tel := obs.New()
	opts := core.Options{
		Subheaps:        *threads,
		SubheapUserSize: 8 << 20,
		SubheapMetaSize: 2 << 20,
		MaxThreads:      *threads * 2,
		CrashTracking:   true,
		Telemetry:       tel,
		Profile:         core.ProfileOptions{Rate: *profRate},
		Trace:           core.TraceOptions{Rate: *trcRate},
		Watchdog:        core.WatchdogOptions{StallThreshold: *watchdog},
	}
	if *optrace != "" && *trcRate <= 0 {
		return errors.New("-optrace needs -trace-rate > 0")
	}
	h, err := core.Create(opts)
	if err != nil {
		return err
	}
	// The heap is replaced on every crash/recover cycle; the metrics
	// endpoint snapshots whichever heap is current.
	var cur atomic.Pointer[core.Heap]
	cur.Store(h)
	if *save != "" {
		// Saved on every exit path — a failing run leaves the image behind
		// for a poseidon-fsck post-mortem.
		defer func() {
			if *profRate > 0 {
				// Checkpoint the site table so the saved image carries the
				// freshest profile, not the last paced snapshot.
				if perr := cur.Load().PersistProfile(); perr != nil {
					fmt.Fprintln(os.Stderr, "poseidon-stress: persisting profile:", perr)
				}
			}
			// Publish staged black-box records so the saved image carries
			// the freshest timeline (best-effort).
			if ferr := cur.Load().FlushBlackbox(); ferr != nil {
				fmt.Fprintln(os.Stderr, "poseidon-stress: flushing black box:", ferr)
			}
			if err := cur.Load().SaveFile(*save); err != nil {
				fmt.Fprintln(os.Stderr, "poseidon-stress: saving image:", err)
			} else {
				fmt.Printf("saved: %s\n", *save)
			}
		}()
	}
	if *optrace != "" {
		defer func() {
			b := cur.Load().TraceJSON()
			if werr := os.WriteFile(*optrace, b, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "poseidon-stress: writing optrace:", werr)
			} else {
				fmt.Printf("optrace: %s (%d bytes)\n", *optrace, len(b))
			}
		}()
	}
	if *metrics != "" {
		cfg := obs.MuxConfig{Snapshot: func() *obs.Snapshot { return cur.Load().Metrics() }}
		if *profRate > 0 {
			cfg.HeapProfile = func() ([]byte, error) { return cur.Load().ProfilePprof() }
		}
		if *trcRate > 0 {
			cfg.Trace = func() []byte { return cur.Load().TraceJSON() }
		}
		cfg.Blackbox = func() ([]byte, error) { return cur.Load().BlackboxJSON() }
		srv, err := obs.ServeConfig(*metrics, cfg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr)
	}
	// SIGINT/SIGTERM stop the soak after the current cycle's audit, so the
	// deferred -save image and -optrace dump still happen — killing a soak
	// mid-run is the normal way to end an open-ended profiling session.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	var totalOps atomic.Uint64
	var totalRecovered uint64
	for cycle := 0; cycle < *cycles; cycle++ {
		select {
		case sig := <-stop:
			fmt.Printf("%v: stopping after %d cycles\n", sig, cycle)
			return nil
		default:
		}
		// Arm a failpoint partway through the cycle's work on half the
		// cycles, so both mid-operation and between-operation crashes are
		// exercised.
		rng := rand.New(rand.NewSource(*seed + int64(cycle)))
		if cycle%2 == 1 {
			h.Device().FailAfter(int64(rng.Intn(*ops * 10)))
		}
		var wg sync.WaitGroup
		for w := 0; w < *threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th, err := h.ThreadOn(w)
				if err != nil {
					return
				}
				defer th.Close()
				wrng := rand.New(rand.NewSource(*seed + int64(cycle*1000+w)))
				var live []core.NVMPtr
				done := 0
				defer func() { totalOps.Add(uint64(done)) }()
				for i := 0; i < *ops; i++ {
					if len(live) > 32 || (len(live) > 0 && wrng.Intn(3) == 0) {
						k := wrng.Intn(len(live))
						if err := th.Free(live[k]); err != nil {
							return // device dead or heap gone: stop quietly
						}
						live[k] = live[len(live)-1]
						live = live[:len(live)-1]
						done++
						continue
					}
					var p core.NVMPtr
					var err error
					if wrng.Intn(8) == 0 {
						p, err = th.TxAlloc(uint64(wrng.Intn(2048)+16), wrng.Intn(2) == 0)
					} else {
						p, err = th.Alloc(uint64(wrng.Intn(2048) + 16))
					}
					if errors.Is(err, core.ErrOutOfMemory) {
						continue
					}
					if err != nil {
						return
					}
					live = append(live, p)
					done++
				}
			}(w)
		}
		wg.Wait()
		h.Device().DisarmFailpoint()

		// Power failure with random cacheline survival, then restart.
		crash, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: *seed * int64(cycle+7)})
		if err != nil {
			return err
		}
		h2, err := core.Load(h.Device(), opts)
		if err != nil {
			return fmt.Errorf("cycle %d: recovery failed: %w", cycle, err)
		}
		// Emitted after Load so the event stages into the surviving heap's
		// black box (the crashed heap's staging is gone, as after real power
		// loss); the cycle boundary is a commit point, so drain the ring.
		tel.Emit(obs.EventCrash, -1, fmt.Sprintf(
			"cycle %d: power failure kept %d/%d dirty lines", cycle, crash.PersistedLines, crash.DirtyLines))
		if err := h2.FlushBlackbox(); err != nil {
			fmt.Fprintln(os.Stderr, "poseidon-stress: flushing black box:", err)
		}
		report, err := h2.Check()
		if err != nil {
			return fmt.Errorf("cycle %d: audit error: %w", cycle, err)
		}
		if !report.OK() {
			for _, p := range report.Problems {
				fmt.Fprintln(os.Stderr, "  -", p)
			}
			return fmt.Errorf("cycle %d: heap inconsistent (%d problems)", cycle, len(report.Problems))
		}
		st := h2.Stats()
		totalRecovered += st.RecoveredBlocks
		fmt.Printf("cycle %2d: ok — %d allocated blocks, %d free, %d tx rollbacks; crash kept %d/%d dirty lines\n",
			cycle, report.AllocatedBlocks, report.FreeBlocks, st.RecoveredBlocks,
			crash.PersistedLines, crash.DirtyLines)
		h = h2
		cur.Store(h)
	}
	fmt.Printf("PASS: %d cycles, %d operations, %d transactional rollbacks, 0 inconsistencies\n",
		*cycles, totalOps.Load(), totalRecovered)
	if ds := h.DeviceStats(); ds.Enabled {
		fmt.Printf("device: %d writes (%d bytes), %d cacheline flushes, %d fences\n",
			ds.Writes, ds.BytesWritten, ds.Flushes, ds.Fences)
	}
	for _, op := range []obs.Op{obs.OpAlloc, obs.OpFree, obs.OpTxAlloc} {
		hs := tel.Hist(op)
		if hs.Count == 0 {
			continue
		}
		fmt.Printf("%-8s n=%-8d p50=%s p99=%s max=%s\n", op, hs.Count,
			nsStr(hs.Quantile(0.50)), nsStr(hs.Quantile(0.99)), nsStr(hs.Max))
	}
	return nil
}

func nsStr(ns uint64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
