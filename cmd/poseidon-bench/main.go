// Command poseidon-bench regenerates the data behind every figure of the
// paper's evaluation section (§7): the thread-sweep tables each figure
// plots, comparing Poseidon against the PMDK-like and Makalu-like
// baselines.
//
//	poseidon-bench -fig all              # everything (default)
//	poseidon-bench -fig 6 -maxthreads 8  # Figure 6 only, sweep 1..8
//	poseidon-bench -fig ablation         # §4.7 design-choice ablations
//
// Numbers are Mops/sec on the simulated NVMM device; shapes, not absolute
// values, are comparable with the paper (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"poseidon/internal/alloc"
	"poseidon/internal/benchutil"
	"poseidon/internal/core"
	"poseidon/internal/fastfair"
	"poseidon/internal/larson"
	"poseidon/internal/makalu"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/pmdkalloc"
	"poseidon/internal/workloads"
	"poseidon/internal/ycsb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-bench:", err)
		os.Exit(1)
	}
}

type config struct {
	fig        string
	maxThreads int
	scale      int
	out        string
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.fig, "fig", "all", "figure to regenerate: 6, 7, 8, 9, ablation, all")
	flag.IntVar(&cfg.maxThreads, "maxthreads", defaultThreads(), "largest thread count in the sweep")
	flag.IntVar(&cfg.scale, "scale", 1, "work multiplier (larger = longer, steadier numbers)")
	flag.StringVar(&cfg.out, "out", "", "also write the figure's machine-readable baseline JSON here (mags and recovery figures)")
	metrics := flag.String("metrics", "", "serve /metrics, /vars and /debug/pprof on this address (empty = off)")
	flag.Parse()

	if *metrics != "" {
		// One registry shared by every Poseidon heap the figures create:
		// the endpoint aggregates latency and attribution across the run.
		tel := obs.New()
		benchutil.SetTelemetry(tel)
		srv, err := obs.Serve(*metrics, tel.Snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("# metrics: http://%s/metrics\n", srv.Addr)
	}

	figs := map[string]func(config) error{
		"6":          fig6,
		"7":          fig7,
		"8":          fig8,
		"9":          fig9,
		"ablation":   ablation,
		"contention": contention,
		"frag":       fragmentation,
		"flushes":    flushes,
		"recovery":   recovery,
		"mags":       mags,
		"combine":    combine,
	}
	if cfg.fig == "all" {
		for _, name := range []string{"6", "7", "8", "9", "ablation", "contention", "frag", "flushes", "recovery", "mags", "combine"} {
			if err := figs[name](cfg); err != nil {
				return fmt.Errorf("figure %s: %w", name, err)
			}
		}
		return nil
	}
	f, ok := figs[cfg.fig]
	if !ok {
		return fmt.Errorf("unknown figure %q", cfg.fig)
	}
	return f(cfg)
}

func defaultThreads() int {
	// Sweep past the core count: the paper's contention effects (global
	// locks vs per-CPU sub-heaps) appear under oversubscription too.
	n := runtime.GOMAXPROCS(0) * 4
	if n > 16 {
		n = 16
	}
	if n < 4 {
		n = 4
	}
	return n
}

func fig6(cfg config) error {
	sizes := []uint64{256, 1 << 10, 4 << 10, 128 << 10, 256 << 10, 512 << 10}
	for _, size := range sizes {
		fig := benchutil.Figure{Title: fmt.Sprintf(
			"Figure 6 — microbenchmark, %d B objects (100 allocs + 100 frees in random order)", size)}
		names := benchutil.AllocatorNames
		if size <= 8<<10 {
			// Magazines only cache the 8 smallest classes; the large-object
			// rows would just duplicate the plain curve.
			names = append(append([]string{}, names...), benchutil.MagsAllocatorName)
		}
		for _, threads := range benchutil.ThreadSweep(cfg.maxThreads) {
			for _, name := range names {
				a, err := benchutil.NewAllocator(name, benchutil.Config{
					Threads:   threads,
					HeapBytes: benchutil.MicroHeapBytes(size, threads),
				})
				if err != nil {
					return err
				}
				rounds := 20 * cfg.scale
				ops, d, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
					return benchutil.MicroWorker(h, benchutil.MicroConfig{
						Size: size, Rounds: rounds, Seed: int64(w + 1),
					})
				})
				_ = a.Close()
				if err != nil {
					return fmt.Errorf("%s size=%d threads=%d: %w", name, size, threads, err)
				}
				fig.Add(name, threads, ops, d)
			}
		}
		fig.Print(os.Stdout)
	}
	return nil
}

func fig7(cfg config) error {
	fig := benchutil.Figure{Title: "Figure 7 — Larson benchmark (cross-thread server churn)"}
	names := append(append([]string{}, benchutil.AllocatorNames...), benchutil.RingAllocatorName)
	ringLines := []string{}
	for _, threads := range benchutil.ThreadSweep(cfg.maxThreads) {
		for _, name := range names {
			tel := obs.New()
			a, err := benchutil.NewAllocator(name, benchutil.Config{
				Threads:   threads,
				HeapBytes: 32 << 20 * uint64(threads),
				Telemetry: tel,
			})
			if err != nil {
				return err
			}
			res, err := larson.Run(a, larson.Config{
				Threads:        threads,
				SlotsPerThread: 256,
				RoundOps:       1000 * cfg.scale,
				Rounds:         4,
				Seed:           1,
			})
			if err != nil {
				_ = a.Close()
				return fmt.Errorf("%s threads=%d: %w", name, threads, err)
			}
			fig.Add(name, threads, res.Ops, res.Duration)
			// The rings' serialization story — the hardware-independent
			// multicore predictor: owner-lock acquisitions per cross-thread
			// free drop from 1 (locked path) to batches/enqueued.
			if p, ok := a.(*alloc.Poseidon); ok && name == benchutil.RingAllocatorName {
				st := p.Heap().Stats()
				batches := tel.Hist(obs.OpDrain).Count
				if st.RemoteFrees > 0 {
					ringLines = append(ringLines, fmt.Sprintf(
						"# threads=%-3d remote frees enqueued lock-free: %d, drained in %d batches (%.1f entries/batch, %.4f owner-lock acq/cross-free vs 1.0 locked), ring-full fallbacks: %d",
						threads, st.RemoteFrees, batches,
						float64(st.RemoteDrains)/float64(max(batches, 1)),
						float64(batches)/float64(st.RemoteFrees), st.RingFallbacks))
				}
			}
			_ = a.Close()
		}
	}
	fig.Print(os.Stdout)
	for _, l := range ringLines {
		fmt.Println(l)
	}
	return nil
}

func fig8(cfg config) error {
	type wl struct {
		name    string
		run     func(h alloc.Handle, iters int) (uint64, error)
		iters   int
		heapPer uint64
	}
	// The Ackermann region is scaled from the paper's 1 GiB to 4 MiB
	// (DESIGN.md §1); iteration counts are scaled from 100,000.
	wls := []wl{
		{"Ackermann", func(h alloc.Handle, iters int) (uint64, error) {
			return workloads.Ackermann(h, 4<<20, iters)
		}, 20 * cfg.scale, 16 << 20},
		{"Kruskal", func(h alloc.Handle, iters int) (uint64, error) {
			return workloads.Kruskal(h, iters, 7)
		}, 2000 * cfg.scale, 16 << 20},
		{"NQueens", func(h alloc.Handle, iters int) (uint64, error) {
			return workloads.NQueens(h, iters)
		}, 2000 * cfg.scale, 16 << 20},
	}
	for _, w := range wls {
		fig := benchutil.Figure{Title: "Figure 8 — " + w.name}
		for _, threads := range benchutil.ThreadSweep(cfg.maxThreads) {
			for _, name := range benchutil.AllocatorNames {
				a, err := benchutil.NewAllocator(name, benchutil.Config{
					Threads:   threads,
					HeapBytes: w.heapPer * uint64(threads),
				})
				if err != nil {
					return err
				}
				ops, d, err := benchutil.RunParallel(a, threads, func(_ int, h alloc.Handle) (uint64, error) {
					return w.run(h, w.iters)
				})
				_ = a.Close()
				if err != nil {
					return fmt.Errorf("%s/%s threads=%d: %w", w.name, name, threads, err)
				}
				fig.Add(name, threads, ops, d)
			}
		}
		fig.Print(os.Stdout)
	}
	return nil
}

func fig9(cfg config) error {
	loadFig := benchutil.Figure{Title: "Figure 9 — YCSB Load (FAST-FAIR B+-tree inserts)"}
	aFig := benchutil.Figure{Title: "Figure 9 — YCSB Workload A (50% read / 50% update, Zipfian)"}
	perThread := uint64(20000 * cfg.scale)
	for _, threads := range benchutil.ThreadSweep(cfg.maxThreads) {
		for _, name := range benchutil.AllocatorNames {
			a, err := benchutil.NewAllocator(name, benchutil.Config{
				Threads:   threads,
				HeapBytes: 64 << 20 * uint64(threads),
			})
			if err != nil {
				return err
			}
			h0, err := a.Thread(0)
			if err != nil {
				return err
			}
			tree, err := fastfair.New(h0)
			if err != nil {
				return err
			}
			// Load phase (measured).
			start := time.Now()
			loadOps, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
				from := uint64(w) * perThread
				return ycsb.Load(tree, h, from, from+perThread)
			})
			if err != nil {
				return fmt.Errorf("%s load threads=%d: %w", name, threads, err)
			}
			loadFig.Add(name, threads, loadOps, time.Since(start))

			// Workload A (measured).
			total := perThread * uint64(threads)
			start = time.Now()
			aOps, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
				z := ycsb.NewZipf(int64(w+1), total, 0.99)
				rng := rand.New(rand.NewSource(int64(w + 100)))
				return ycsb.WorkloadA(tree, h, z, rng, perThread)
			})
			if err != nil {
				return fmt.Errorf("%s workload-a threads=%d: %w", name, threads, err)
			}
			aFig.Add(name, threads, aOps, time.Since(start))
			h0.Close()
			_ = a.Close()
		}
	}
	loadFig.Print(os.Stdout)
	aFig.Print(os.Stdout)
	return nil
}

// contention measures serialization events per operation under the 256 B
// and 512 KiB microbenchmarks — the hardware-independent predictor of each
// allocator's multicore curve (see EXPERIMENTS.md).
func contention(cfg config) error {
	for _, size := range []uint64{256, 512 << 10} {
		fmt.Printf("# Scalability indicators — %d B objects, %d threads\n", size, cfg.maxThreads)
		for _, name := range benchutil.AllocatorNames {
			a, err := benchutil.NewAllocator(name, benchutil.Config{
				Threads:   cfg.maxThreads,
				HeapBytes: benchutil.MicroHeapBytes(size, cfg.maxThreads),
			})
			if err != nil {
				return err
			}
			ops, _, err := benchutil.RunParallel(a, cfg.maxThreads, func(w int, h alloc.Handle) (uint64, error) {
				return benchutil.MicroWorker(h, benchutil.MicroConfig{
					Size: size, Rounds: 20 * cfg.scale, Seed: int64(w + 1),
				})
			})
			if err != nil {
				_ = a.Close()
				return fmt.Errorf("%s: %w", name, err)
			}
			benchutil.ContentionReport(os.Stdout, a, ops)
			_ = a.Close()
		}
		fmt.Println()
	}
	return nil
}

// recovery compares restart cost as the live-object count grows:
// Poseidon's log replay is constant-size; Makalu's conservative
// mark-and-sweep walks the heap (§5.1 vs §2.2). A second section sweeps
// sub-heap count x RecoveryParallelism: the per-sub-heap fan-out's
// speedup over the legacy serial load (bounded by GOMAXPROCS — on a
// single core the columns collapse).
func recovery(cfg config) error {
	fmt.Println("# Extra — recovery time vs live objects (one restart)")
	fmt.Printf("%-14s %16s %16s\n", "live objects", "poseidon load", "makalu recover")
	for _, objects := range []int{1000, 10000, 50000} {
		// Poseidon: crash + Load.
		opts := core.Options{
			Subheaps:        2,
			SubheapUserSize: 64 << 20,
			SubheapMetaSize: 16 << 20,
			CrashTracking:   true,
		}
		ph, err := core.Create(opts)
		if err != nil {
			return err
		}
		pt, err := ph.Thread()
		if err != nil {
			return err
		}
		for i := 0; i < objects; i++ {
			if _, err := pt.Alloc(256); err != nil {
				return err
			}
		}
		pt.Close()
		crash, err := ph.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone})
		if err != nil {
			return err
		}
		fmt.Printf("  crash: %d dirty lines dropped (EvictNone)\n", crash.DroppedLines)
		start := time.Now()
		if _, err := core.Load(ph.Device(), opts); err != nil {
			return err
		}
		poseidonTime := time.Since(start)

		// Makalu: rebuild indexes + GC from a root chain.
		mh, err := makalu.New(makalu.Options{Capacity: 256 << 20})
		if err != nil {
			return err
		}
		mt, err := mh.Thread(0)
		if err != nil {
			return err
		}
		var root, prev alloc.Ptr
		for i := 0; i < objects; i++ {
			p, err := mt.Alloc(64)
			if err != nil {
				return err
			}
			if prev == 0 {
				root = p
			} else if err := mt.WriteU64(prev, 0, uint64(p)); err != nil {
				return err
			}
			prev = p
		}
		mt.Close()
		start = time.Now()
		if _, err := mh.Recover([]alloc.Ptr{root}); err != nil {
			return err
		}
		makaluTime := time.Since(start)
		fmt.Printf("%-14d %16v %16v\n", objects, poseidonTime.Round(10*time.Microsecond),
			makaluTime.Round(10*time.Microsecond))
	}
	fmt.Println()
	return recoveryParallel(cfg)
}

// recVariant is one cell of the parallel-recovery sweep baseline.
type recVariant struct {
	Subheaps     int     `json:"subheaps"`
	Parallelism  int     `json:"parallelism"`
	MedianLoadMs float64 `json:"median_load_ms"`
}

// recoveryParallel times a scrubbed Load of the same crashed image under
// the legacy serial path and the 8-way fan-out, per sub-heap count. The
// timed work (log scan + full ScrubOnLoad audit) is identical every
// iteration, so the median of a few repeats is stable.
func recoveryParallel(cfg config) error {
	const (
		objectsPerSubheap = 2000
		repeats           = 5
	)
	fmt.Printf("# Extra — parallel recovery: scrubbed load time, %d objects/sub-heap (GOMAXPROCS=%d)\n",
		objectsPerSubheap, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s %14s %14s %10s\n", "sub-heaps", "serial load", "par=8 load", "speedup")
	var variants []recVariant
	speedups := map[int]float64{}
	for _, subheaps := range []int{2, 8, 32} {
		opts := core.Options{
			Subheaps:        subheaps,
			SubheapUserSize: 4 << 20,
			SubheapMetaSize: 1 << 20,
			MaxThreads:      64,
			CrashTracking:   true,
			ScrubOnLoad:     true,
		}
		h, err := core.Create(opts)
		if err != nil {
			return err
		}
		for w := 0; w < subheaps; w++ {
			th, err := h.ThreadOn(w)
			if err != nil {
				return err
			}
			for i := 0; i < objectsPerSubheap; i++ {
				if _, err := th.Alloc(256); err != nil {
					return err
				}
			}
			th.Close()
		}
		dev := h.Device()
		if _, err := dev.Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
			return err
		}
		medians := map[int]time.Duration{}
		for _, par := range []int{1, 8} {
			opts.RecoveryParallelism = par
			// One warm-up load pays the one-time replay and shadow-chunk
			// materialization; the timed repeats measure the steady path.
			if _, err := core.Load(dev, opts); err != nil {
				return err
			}
			times := make([]time.Duration, 0, repeats)
			for r := 0; r < repeats; r++ {
				start := time.Now()
				if _, err := core.Load(dev, opts); err != nil {
					return err
				}
				times = append(times, time.Since(start))
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			medians[par] = times[repeats/2]
			variants = append(variants, recVariant{
				Subheaps:     subheaps,
				Parallelism:  par,
				MedianLoadMs: float64(medians[par].Microseconds()) / 1e3,
			})
		}
		speedups[subheaps] = float64(medians[1]) / float64(medians[8])
		fmt.Printf("%-12d %14v %14v %9.2fx\n", subheaps,
			medians[1].Round(10*time.Microsecond), medians[8].Round(10*time.Microsecond),
			speedups[subheaps])
	}
	fmt.Println()

	if cfg.out != "" {
		baseline := struct {
			Workload   string          `json:"workload"`
			GoMaxProcs int             `json:"gomaxprocs"`
			Variants   []recVariant    `json:"variants"`
			Speedups   map[int]float64 `json:"speedup_by_subheaps"`
		}{
			Workload:   "scrubbed load: 2000x256 B objects per sub-heap, EvictNone crash, median of 5 restarts",
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Variants:   variants,
			Speedups:   speedups,
		}
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("# baseline written to %s\n", cfg.out)
	}
	return nil
}

// flushes measures persistence traffic per operation (clwb-equivalents and
// fences), the honest cost of each allocator's crash-consistency scheme:
// Poseidon's whole-operation undo logging vs PMDK's redo-logged bitmap
// updates vs Makalu's log-free header writes.
func flushes(cfg config) error {
	fmt.Println("# Extra — persistence traffic per alloc/free operation (256 B micro)")
	fmt.Printf("%-14s %14s %14s %14s\n", "allocator", "flushes/op", "fences/op", "bytes/op")
	names := append(append([]string{}, benchutil.AllocatorNames...), benchutil.MagsAllocatorName)
	for _, name := range names {
		var a alloc.Allocator
		var err error
		// Enable device stats for each allocator.
		switch name {
		case "poseidon", benchutil.MagsAllocatorName:
			opts := core.Options{
				Subheaps: 1, SubheapUserSize: 64 << 20, DeviceStats: true,
			}
			if name == benchutil.MagsAllocatorName {
				opts.Magazines = benchutil.MagazineGeometry
			}
			var p *alloc.Poseidon
			p, err = alloc.NewPoseidon(opts)
			a = p
		case "pmdk":
			a, err = pmdkalloc.New(pmdkalloc.Options{Capacity: 64 << 20, DeviceStats: true})
		case "makalu":
			a, err = makalu.New(makalu.Options{Capacity: 64 << 20, DeviceStats: true})
		}
		if err != nil {
			return err
		}
		h, err := a.Thread(0)
		if err != nil {
			return err
		}
		// Warm up, then measure a steady-state window.
		if _, err := benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 10, Seed: 1}); err != nil {
			return err
		}
		before := deviceOf(a).StatsSnapshot()
		ops, err := benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 50 * cfg.scale, Seed: 2})
		if err != nil {
			return err
		}
		after := deviceOf(a).StatsSnapshot()
		per := func(a, b uint64) float64 { return float64(b-a) / float64(ops) }
		fmt.Printf("%-14s %14.2f %14.2f %14.1f\n", name,
			per(before.Flushes, after.Flushes),
			per(before.Fences, after.Fences),
			per(before.BytesWritten, after.BytesWritten))
		h.Close()
		_ = a.Close()
	}
	fmt.Println()
	return nil
}

// deviceOf extracts the underlying device for stats.
func deviceOf(a alloc.Allocator) *nvm.Device {
	switch impl := a.(type) {
	case *alloc.Poseidon:
		return impl.Heap().Device()
	case *pmdkalloc.Heap:
		return impl.Device()
	case *makalu.Heap:
		return impl.Device()
	}
	return nil
}

// fragmentation measures achievable heap utilization before the first
// out-of-memory under random size mixes — an extra experiment quantifying
// each allocator's internal fragmentation (Poseidon's power-of-two
// classes vs PMDK's slot classes vs Makalu's 16 B granules + page runs).
func fragmentation(config) error {
	mixes := []struct {
		name             string
		minSize, maxSize uint64
	}{
		{"small (64-512 B)", 64, 512},
		{"mixed (64 B-8 KiB)", 64, 8 << 10},
		{"large (64-512 KiB)", 64 << 10, 512 << 10},
	}
	const heapBytes = 64 << 20
	fmt.Println("# Extra — heap utilization at first OOM (requested bytes / heap bytes)")
	fmt.Printf("%-20s", "size mix")
	for _, n := range benchutil.AllocatorNames {
		fmt.Printf("%12s", n)
	}
	fmt.Println()
	for _, mix := range mixes {
		fmt.Printf("%-20s", mix.name)
		for _, name := range benchutil.AllocatorNames {
			a, err := benchutil.NewAllocator(name, benchutil.Config{Threads: 1, HeapBytes: heapBytes})
			if err != nil {
				return err
			}
			h, err := a.Thread(0)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(42))
			var requested uint64
			for {
				size := mix.minSize + uint64(rng.Int63n(int64(mix.maxSize-mix.minSize+1)))
				if _, err := h.Alloc(size); err != nil {
					break
				}
				requested += size
			}
			h.Close()
			_ = a.Close()
			fmt.Printf("%11.1f%%", 100*float64(requested)/float64(heapBytes))
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func ablation(cfg config) error {
	// Protection-mode ablation (§4.3): MPK vs none vs mprotect-cost.
	fig := benchutil.Figure{Title: "Ablation — metadata protection mode (256 B micro, 1 thread)"}
	modes := []struct {
		name string
		p    core.Protection
	}{
		{"mpk", core.ProtectMPK},
		{"hardened", core.ProtectMPKHardened},
		{"none", core.ProtectNone},
		{"mprotect", core.ProtectMprotect},
	}
	for _, m := range modes {
		a, err := benchutil.NewAllocator("poseidon", benchutil.Config{
			Threads: 1, HeapBytes: 64 << 20, Protection: m.p,
		})
		if err != nil {
			return err
		}
		ops, d, err := benchutil.RunParallel(a, 1, func(w int, h alloc.Handle) (uint64, error) {
			return benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 100 * cfg.scale, Seed: 1})
		})
		_ = a.Close()
		if err != nil {
			return err
		}
		fig.Add(m.name, 1, ops, d)
	}
	fig.Print(os.Stdout)

	// Sub-heap ablation (§4.1): one shared sub-heap vs per-thread.
	fig2 := benchutil.Figure{Title: "Ablation — sub-heap sharding (256 B micro)"}
	threads := cfg.maxThreads
	if threads < 2 {
		threads = 2
	}
	for _, subheaps := range []int{1, threads} {
		a, err := alloc.NewPoseidon(core.Options{
			Subheaps:        subheaps,
			SubheapUserSize: 16 << 20,
			MaxThreads:      threads + 4,
		})
		if err != nil {
			return err
		}
		ops, d, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
			return benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 50 * cfg.scale, Seed: int64(w)})
		})
		_ = a.Close()
		if err != nil {
			return err
		}
		fig2.Add(fmt.Sprintf("subheaps=%d", subheaps), threads, ops, d)
	}
	fig2.Print(os.Stdout)
	return nil
}

// combineVariant is one contended-workload row of the combine baseline.
type combineVariant struct {
	MopsSec          float64 `json:"mops_sec"`
	FlushesPerOp     float64 `json:"flushes_per_op"`
	FencesPerOp      float64 `json:"fences_per_op"`
	CombinedCommits  uint64  `json:"combined_commits,omitempty"`
	CombinedOps      uint64  `json:"combined_ops,omitempty"`
	CombineFallbacks uint64  `json:"combine_fallbacks,omitempty"`
	AvgGroupWidth    float64 `json:"avg_group_width,omitempty"`
}

// combineWidthCell is one fixed-group-width row of the combine baseline.
type combineWidthCell struct {
	LegacyFlushesPerOp   float64 `json:"legacy_flushes_per_op"`
	LegacyFencesPerOp    float64 `json:"legacy_fences_per_op"`
	CombinedFlushesPerOp float64 `json:"combined_flushes_per_op"`
	CombinedFencesPerOp  float64 `json:"combined_fences_per_op"`
	FlushReduction       float64 `json:"flush_reduction"`
	FenceReduction       float64 `json:"fence_reduction"`
}

// combineContended runs the contended 256 B microbenchmark — `threads`
// workers on ONE sub-heap — on the legacy or combined commit path and
// returns its row. GOMAXPROCS is raised to the worker count for the
// duration so waiters and the combining leader can actually overlap.
func combineContended(cfg config, threads int, combined bool) (combineVariant, error) {
	opts := core.Options{
		Subheaps:        1,
		SubheapUserSize: 64 << 20,
		MaxThreads:      threads + 4,
		DeviceStats:     true,
		CombinedCommits: combined,
	}
	a, err := alloc.NewPoseidon(opts)
	if err != nil {
		return combineVariant{}, err
	}
	defer a.Close()

	old := runtime.GOMAXPROCS(max(threads, runtime.GOMAXPROCS(0)))
	defer runtime.GOMAXPROCS(old)

	// Warm up (pays lazy formatting), then measure a steady-state window.
	if _, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
		return benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 5, Seed: int64(w + 1)})
	}); err != nil {
		return combineVariant{}, err
	}
	devBefore := a.Heap().Device().StatsSnapshot()
	heapBefore := a.Heap().Stats()
	ops, d, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
		return benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 50 * cfg.scale, Seed: int64(w + 100)})
	})
	if err != nil {
		return combineVariant{}, err
	}
	devAfter := a.Heap().Device().StatsSnapshot()
	heapAfter := a.Heap().Stats()

	per := func(b, aft uint64) float64 { return float64(aft-b) / float64(ops) }
	v := combineVariant{
		MopsSec:          float64(ops) / d.Seconds() / 1e6,
		FlushesPerOp:     per(devBefore.Flushes, devAfter.Flushes),
		FencesPerOp:      per(devBefore.Fences, devAfter.Fences),
		CombinedCommits:  heapAfter.CombinedCommits - heapBefore.CombinedCommits,
		CombinedOps:      heapAfter.CombinedOps - heapBefore.CombinedOps,
		CombineFallbacks: heapAfter.CombineFallbacks - heapBefore.CombineFallbacks,
	}
	if v.CombinedCommits > 0 {
		v.AvgGroupWidth = float64(v.CombinedOps) / float64(v.CombinedCommits)
	}
	return v, nil
}

// combineAtWidth measures persistence traffic per op at a FIXED group width
// k: the combined column drives k-op alloc and free groups through the
// deterministic burst driver, the legacy column runs the identical
// operation sequence through the per-op commit path. Group width — not
// scheduler luck — is what fence/flush amortization depends on, so this is
// the machine-independent form of the tentpole's claim (essential on small
// CPU counts, where natural combining widths stay near 1).
func combineAtWidth(cfg config, width int) (combineWidthCell, error) {
	rounds := 50 * cfg.scale
	var cell combineWidthCell
	for _, combined := range []bool{false, true} {
		opts := core.Options{
			Subheaps:        1,
			SubheapUserSize: 64 << 20,
			MaxThreads:      4,
			DeviceStats:     true,
			CombinedCommits: combined,
		}
		a, err := alloc.NewPoseidon(opts)
		if err != nil {
			return cell, err
		}
		h := a.Heap()
		th, err := h.ThreadOn(0)
		if err != nil {
			_ = a.Close()
			return cell, err
		}
		sizes := make([]uint64, width)
		for i := range sizes {
			sizes[i] = 256
		}
		runRound := func() error {
			if combined {
				ptrs, errs, err := h.CombineAllocBurst(0, sizes)
				if err != nil {
					return err
				}
				for _, e := range errs {
					if e != nil {
						return e
					}
				}
				ferrs, err := h.CombineFreeBurst(ptrs)
				if err != nil {
					return err
				}
				for _, e := range ferrs {
					if e != nil {
						return e
					}
				}
				return nil
			}
			ptrs := make([]core.NVMPtr, width)
			for i := range ptrs {
				if ptrs[i], err = th.Alloc(256); err != nil {
					return err
				}
			}
			for _, p := range ptrs {
				if err := th.Free(p); err != nil {
					return err
				}
			}
			return nil
		}
		// Warm-up round, then the measured window.
		if err := runRound(); err != nil {
			_ = a.Close()
			return cell, err
		}
		before := h.Device().StatsSnapshot()
		for r := 0; r < rounds; r++ {
			if err := runRound(); err != nil {
				_ = a.Close()
				return cell, err
			}
		}
		after := h.Device().StatsSnapshot()
		th.Close()
		_ = a.Close()

		ops := uint64(2 * width * rounds)
		flushes := float64(after.Flushes-before.Flushes) / float64(ops)
		fences := float64(after.Fences-before.Fences) / float64(ops)
		if combined {
			cell.CombinedFlushesPerOp, cell.CombinedFencesPerOp = flushes, fences
		} else {
			cell.LegacyFlushesPerOp, cell.LegacyFencesPerOp = flushes, fences
		}
	}
	cell.FlushReduction = cell.LegacyFlushesPerOp / cell.CombinedFlushesPerOp
	cell.FenceReduction = cell.LegacyFencesPerOp / cell.CombinedFencesPerOp
	return cell, nil
}

// combine is the flat-combining before/after baseline: the contended
// one-sub-heap microbenchmark on the legacy vs combined commit path, plus
// the fixed-width fence/flush table at group widths 1, 4, 16. With -out it
// writes the numbers as JSON (the BENCH_combine.json baseline `make bench`
// emits).
func combine(cfg config) error {
	threads := 4
	if cfg.maxThreads < threads {
		threads = cfg.maxThreads
	}
	fmt.Printf("# Extra — flat-combining commits, 256 B micro, %d threads on 1 sub-heap (legacy vs combined)\n", threads)
	fmt.Printf("%-10s %12s %14s %14s %12s %12s\n", "variant", "Mops/sec", "flushes/op", "fences/op", "groups", "avg width")
	contended := map[string]combineVariant{}
	for _, combined := range []bool{false, true} {
		name := "legacy"
		if combined {
			name = "combined"
		}
		v, err := combineContended(cfg, threads, combined)
		if err != nil {
			return err
		}
		contended[name] = v
		fmt.Printf("%-10s %12.3f %14.3f %14.3f %12d %12.2f\n", name,
			v.MopsSec, v.FlushesPerOp, v.FencesPerOp, v.CombinedCommits, v.AvgGroupWidth)
	}
	speedup := contended["combined"].MopsSec / contended["legacy"].MopsSec
	fmt.Printf("# contended speedup: %.2fx (GOMAXPROCS=%d; natural group width tracks runnable cores)\n",
		speedup, runtime.GOMAXPROCS(0))

	fmt.Printf("# fixed group width — persistence traffic per op (256 B alloc/free groups)\n")
	fmt.Printf("%-8s %16s %16s %16s %16s %12s\n", "width",
		"legacy fl/op", "legacy fe/op", "combined fl/op", "combined fe/op", "fence red.")
	byWidth := map[string]combineWidthCell{}
	for _, width := range []int{1, 4, 16} {
		cell, err := combineAtWidth(cfg, width)
		if err != nil {
			return err
		}
		byWidth[fmt.Sprint(width)] = cell
		fmt.Printf("%-8d %16.3f %16.3f %16.3f %16.3f %11.2fx\n", width,
			cell.LegacyFlushesPerOp, cell.LegacyFencesPerOp,
			cell.CombinedFlushesPerOp, cell.CombinedFencesPerOp, cell.FenceReduction)
	}
	fmt.Println()

	if cfg.out != "" {
		baseline := struct {
			Workload     string                      `json:"workload"`
			GoMaxProcs   int                         `json:"gomaxprocs"`
			Threads      int                         `json:"threads"`
			Contended    map[string]combineVariant   `json:"contended"`
			Speedup      float64                     `json:"speedup"`
			ByWidth      map[string]combineWidthCell `json:"by_width"`
			ReductionAt4 float64                     `json:"reduction_at_4"`
		}{
			Workload:     "micro: 256 B objects on 1 sub-heap; contended multi-thread run + fixed-width burst groups",
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			Threads:      threads,
			Contended:    contended,
			Speedup:      speedup,
			ByWidth:      byWidth,
			ReductionAt4: byWidth["4"].FenceReduction,
		}
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("# baseline written to %s\n", cfg.out)
	}
	return nil
}

// magVariant is one row of the machine-readable magazine baseline.
type magVariant struct {
	MopsSec         float64 `json:"mops_sec"`
	FlushesPerOp    float64 `json:"flushes_per_op"`
	FencesPerOp     float64 `json:"fences_per_op"`
	LocksPerOp      float64 `json:"locks_per_op"`
	MagazineHits    uint64  `json:"magazine_hits,omitempty"`
	MagazineMisses  uint64  `json:"magazine_misses,omitempty"`
	MagazineRefills uint64  `json:"magazine_refills,omitempty"`
	MagazineFlushes uint64  `json:"magazine_flushes,omitempty"`
}

// mags is the magazine before/after baseline: the single-thread small-object
// microbenchmark on the locked path vs the magazine fast path, with the
// serialization and persistence-traffic counters behind EXPERIMENTS.md's
// lock-acquisitions-per-op and flushes-per-op math. With -out it also writes
// the numbers as JSON (the BENCH_magazines.json baseline `make bench` emits).
func mags(cfg config) error {
	fmt.Println("# Extra — per-thread magazines, 256 B micro, 1 thread (locked path vs magazine fast path)")
	fmt.Printf("%-14s %12s %14s %14s %14s\n", "allocator", "Mops/sec", "flushes/op", "fences/op", "locks/op")
	variants := map[string]magVariant{}
	for _, name := range []string{"poseidon", benchutil.MagsAllocatorName} {
		opts := core.Options{
			Subheaps: 1, SubheapUserSize: 64 << 20, DeviceStats: true,
		}
		if name == benchutil.MagsAllocatorName {
			opts.Magazines = benchutil.MagazineGeometry
		}
		a, err := alloc.NewPoseidon(opts)
		if err != nil {
			return err
		}
		h, err := a.Thread(0)
		if err != nil {
			return err
		}
		// Warm up (pays lazy formatting and the first refills), then measure
		// a steady-state window.
		if _, err := benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 10, Seed: 1}); err != nil {
			return err
		}
		devBefore := a.Heap().Device().StatsSnapshot()
		heapBefore := a.Heap().Stats()
		start := time.Now()
		ops, err := benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: 200 * cfg.scale, Seed: 2})
		if err != nil {
			return err
		}
		d := time.Since(start)
		devAfter := a.Heap().Device().StatsSnapshot()
		heapAfter := a.Heap().Stats()
		h.Close()
		_ = a.Close()

		per := func(b, aft uint64) float64 { return float64(aft-b) / float64(ops) }
		v := magVariant{
			MopsSec:         float64(ops) / d.Seconds() / 1e6,
			FlushesPerOp:    per(devBefore.Flushes, devAfter.Flushes),
			FencesPerOp:     per(devBefore.Fences, devAfter.Fences),
			MagazineHits:    heapAfter.MagazineHits - heapBefore.MagazineHits,
			MagazineMisses:  heapAfter.MagazineMisses - heapBefore.MagazineMisses,
			MagazineRefills: heapAfter.MagazineRefills - heapBefore.MagazineRefills,
			MagazineFlushes: heapAfter.MagazineFlushes - heapBefore.MagazineFlushes,
		}
		// The locked path takes the sub-heap lock once per alloc and once per
		// free; the magazine path only locks for refills, overflow
		// flush-backs, and ops that missed the magazine entirely.
		if name == benchutil.MagsAllocatorName {
			v.LocksPerOp = float64((ops-v.MagazineHits)+v.MagazineRefills+v.MagazineFlushes) / float64(ops)
		} else {
			v.LocksPerOp = 1.0
		}
		variants[name] = v
		fmt.Printf("%-14s %12.3f %14.3f %14.3f %14.4f\n", name,
			v.MopsSec, v.FlushesPerOp, v.FencesPerOp, v.LocksPerOp)
	}
	speedup := variants[benchutil.MagsAllocatorName].MopsSec / variants["poseidon"].MopsSec
	fmt.Printf("# magazine speedup: %.2fx\n\n", speedup)

	if cfg.out != "" {
		baseline := struct {
			Workload string                `json:"workload"`
			Variants map[string]magVariant `json:"variants"`
			Speedup  float64               `json:"speedup"`
		}{
			Workload: "micro: 256 B objects, 100 allocs + 100 frees per round in random order, 1 thread",
			Variants: variants,
			Speedup:  speedup,
		}
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("# baseline written to %s\n", cfg.out)
	}
	return nil
}
