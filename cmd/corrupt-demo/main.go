// Command corrupt-demo replays the paper's Figure 3 attacks live:
//
//	corrupt-demo -demo overlap   # PMDK: header corruption → overlapping allocations
//	corrupt-demo -demo leak      # PMDK: header corruption → permanent memory leak
//	corrupt-demo -demo poseidon  # the same bugs against Poseidon: blocked
//	corrupt-demo                 # all three
//
// The first two drive the PMDK-like baseline exactly as the code in the
// paper's Figure 3 drives libpmemobj; the third shows Poseidon's MPK
// fault, double-free rejection and invalid-free rejection.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/mpk"
	"poseidon/internal/pmdkalloc"
)

func main() {
	demo := flag.String("demo", "all", "overlap, leak, poseidon, or all")
	flag.Parse()
	demos := map[string]func() error{
		"overlap":  overlapDemo,
		"leak":     leakDemo,
		"poseidon": poseidonDemo,
	}
	names := []string{"overlap", "leak", "poseidon"}
	if *demo != "all" {
		if _, ok := demos[*demo]; !ok {
			fmt.Fprintf(os.Stderr, "unknown demo %q\n", *demo)
			os.Exit(2)
		}
		names = []string{*demo}
	}
	for _, n := range names {
		if err := demos[n](); err != nil {
			fmt.Fprintf(os.Stderr, "demo %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

// overlapDemo is Figure 3 (left): pmdk_overlapping_allocation.
func overlapDemo() error {
	fmt.Println("=== Figure 3 (left): PMDK overlapping allocation ===")
	h, err := pmdkalloc.New(pmdkalloc.Options{Capacity: 1 << 20})
	if err != nil {
		return err
	}
	th, err := h.Thread(0)
	if err != nil {
		return err
	}
	// Make the NVMM heap full of 64-byte objects.
	var ptrs []alloc.Ptr
	for {
		p, err := th.Alloc(64)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			return err
		}
		ptrs = append(ptrs, p)
	}
	fmt.Printf("filled the heap with %d 64-byte objects\n", len(ptrs))
	live := map[alloc.Ptr]bool{}
	for _, p := range ptrs {
		live[p] = true
	}

	// The program bug: corrupt the in-place header size to 1088 before
	// freeing one object (Figure 3, line 16).
	victim := ptrs[len(ptrs)/2+500]
	fmt.Printf("corrupting header of %#x: size 64 -> 1088, then freeing it\n", uint64(victim))
	if err := h.Device().WriteU64(uint64(victim)-pmdkalloc.HeaderSize, 1088); err != nil {
		return err
	}
	delete(live, victim)
	if err := th.Free(victim); err != nil {
		return err
	}

	// Only one object was freed, so only one allocation should succeed.
	var got []alloc.Ptr
	for {
		p, err := th.Alloc(64)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			return err
		}
		got = append(got, p)
	}
	overlaps := 0
	for _, p := range got {
		if live[p] {
			overlaps++
		}
	}
	fmt.Printf("freed 1 object, re-allocated %d objects — %d of them overlap LIVE objects\n", len(got), overlaps)
	fmt.Println("=> silent user data corruption (assert(p[i] == free) of Figure 3 fails)")
	fmt.Println()
	return nil
}

// leakDemo is Figure 3 (right): pmdk_permanent_leak.
func leakDemo() error {
	fmt.Println("=== Figure 3 (right): PMDK permanent memory leak ===")
	h, err := pmdkalloc.New(pmdkalloc.Options{Capacity: 32 << 20})
	if err != nil {
		return err
	}
	th, err := h.Thread(0)
	if err != nil {
		return err
	}
	// Make the NVMM heap full of 2 MB objects.
	var ptrs []alloc.Ptr
	for {
		p, err := th.Alloc(2 << 20)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			return err
		}
		ptrs = append(ptrs, p)
	}
	nalloc := len(ptrs)
	fmt.Printf("filled the heap with %d 2 MiB objects\n", nalloc)

	// Corrupt every header to a smaller size, then free everything
	// (Figure 3, line 46).
	fmt.Println("corrupting every header: size 2 MiB -> 64, then freeing all objects")
	for _, p := range ptrs {
		if err := h.Device().WriteU64(uint64(p)-pmdkalloc.HeaderSize, 64); err != nil {
			return err
		}
		if err := th.Free(p); err != nil {
			return err
		}
	}

	// All objects were freed, so the same number should be allocatable.
	count := 0
	for {
		_, err := th.Alloc(2 << 20)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			return err
		}
		count++
	}
	fmt.Printf("freed %d objects, but only %d can be re-allocated\n", nalloc, count)
	fmt.Printf("=> %d objects' space is permanently leaked (assert(i == nalloc) of Figure 3 fails)\n", nalloc-count)
	fmt.Println()
	return nil
}

// poseidonDemo replays the same bug classes against Poseidon.
func poseidonDemo() error {
	fmt.Println("=== The same bugs against Poseidon ===")
	h, err := core.Create(core.Options{
		Subheaps:        1,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
	})
	if err != nil {
		return err
	}
	th, err := h.Thread()
	if err != nil {
		return err
	}
	defer th.Close()
	p, err := th.Alloc(64)
	if err != nil {
		return err
	}

	// 1. A stray store aimed at allocator metadata. Poseidon has no
	// in-place headers — the metadata lives in its own MPK-guarded region,
	// so the very same wild store faults instead of corrupting anything.
	fmt.Println("1. stray store into the metadata region:")
	dev, err := h.RawOffset(p)
	if err != nil {
		return err
	}
	// Aim 1 MiB behind the block: inside the sub-heap's metadata.
	target := dev - 1<<20
	func() {
		defer func() {
			if r := recover(); r != nil {
				if pe, ok := r.(*mpk.ProtectionError); ok {
					fmt.Printf("   BLOCKED: %v\n", pe)
					return
				}
				panic(r)
			}
		}()
		_ = th.Window().WriteU64(target, 1088)
		fmt.Println("   !! store went through (unexpected)")
	}()

	// 2. Double free: detected via the memory-block hash table.
	fmt.Println("2. double free:")
	if err := th.Free(p); err != nil {
		return err
	}
	if err := th.Free(p); errors.Is(err, core.ErrDoubleFree) {
		fmt.Printf("   REJECTED: %v\n", err)
	} else {
		fmt.Printf("   !! unexpected: %v\n", err)
	}

	// 3. Invalid free (interior pointer).
	fmt.Println("3. invalid free of an interior address:")
	q, err := th.Alloc(1024)
	if err != nil {
		return err
	}
	interior, err := h.PtrAt(func() uint64 { d, _ := h.RawOffset(q); return d + 64 }())
	if err != nil {
		return err
	}
	if err := th.Free(interior); errors.Is(err, core.ErrInvalidFree) {
		fmt.Printf("   REJECTED: %v\n", err)
	} else {
		fmt.Printf("   !! unexpected: %v\n", err)
	}
	st := h.Stats()
	fmt.Printf("heap is intact: %d rejected invalid frees, %d rejected double frees, 0 corruptions\n",
		st.InvalidFrees, st.DoubleFrees)
	return nil
}
