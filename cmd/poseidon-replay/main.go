// Command poseidon-replay synthesizes and replays allocation traces — the
// repeatable way to compare allocators on identical workloads.
//
//	poseidon-replay -gen trace.txt -threads 4 -ops 5000 -cross 25
//	poseidon-replay -run trace.txt -alloc poseidon
//	poseidon-replay -run trace.txt -alloc all
//
// A replay verifies object integrity (every object is stamped at
// allocation and checked at free), so it doubles as a differential
// correctness harness.
package main

import (
	"flag"
	"fmt"
	"os"

	"poseidon/internal/benchutil"
	"poseidon/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-replay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gen       = flag.String("gen", "", "synthesize a trace into this file")
		runPath   = flag.String("run", "", "replay the trace in this file")
		allocName = flag.String("alloc", "all", "allocator: poseidon, pmdk, makalu, all")
		threads   = flag.Int("threads", 4, "threads (generation)")
		ops       = flag.Int("ops", 5000, "events per thread (generation)")
		minSize   = flag.Uint64("min", 16, "min object size (generation)")
		maxSize   = flag.Uint64("max", 2048, "max object size (generation)")
		cross     = flag.Int("cross", 25, "cross-thread free percentage (generation)")
		seed      = flag.Int64("seed", 1, "generation seed")
		heapMB    = flag.Uint64("heap", 512, "heap size in MiB (replay)")
	)
	flag.Parse()

	switch {
	case *gen != "":
		tr := trace.Synthesize(trace.SynthConfig{
			Threads:      *threads,
			OpsPerThread: *ops,
			MinSize:      *minSize,
			MaxSize:      *maxSize,
			CrossFreePct: *cross,
			Seed:         *seed,
		})
		f, err := os.Create(*gen)
		if err != nil {
			return err
		}
		if err := tr.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d threads, %d events\n", *gen, tr.Threads, len(tr.Events))
		return nil
	case *runPath != "":
		f, err := os.Open(*runPath)
		if err != nil {
			return err
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			return err
		}
		names := []string{*allocName}
		if *allocName == "all" {
			names = benchutil.AllocatorNames
		}
		for _, name := range names {
			a, err := benchutil.NewAllocator(name, benchutil.Config{
				Threads:   tr.Threads,
				HeapBytes: *heapMB << 20,
			})
			if err != nil {
				return err
			}
			res, err := trace.Replay(a, tr)
			_ = a.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Printf("%-10s %8d events in %10v  (%8.3f Mops/s)\n",
				name, res.Ops, res.Duration, res.OpsPerSec()/1e6)
		}
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("one of -gen or -run is required")
	}
}
