// Command poseidon-fsck audits a saved heap image: every sub-heap's blocks
// must tile the user region exactly with no overlaps, free lists must
// agree with the memory-block hash table, and log headers must be sane.
// Pending recovery work (non-empty logs) is reported but is not an error —
// loading the heap performs it.
//
//	poseidon-fsck heap.img          # audit after recovery (the normal view)
//	poseidon-fsck -raw heap.img     # audit the image as-is, skipping recovery
//	poseidon-fsck -json heap.img    # machine-readable report
//	poseidon-fsck -repair heap.img  # repair quarantined sub-heaps in place
//
// -repair implies -scrub: the image is loaded with the full audit, every
// quarantined sub-heap is repaired (mirror restore, else rebuild by table
// walk), the heap is re-audited, and the repaired image is saved back to
// the same path.
//
// -j N fans recovery, the -scrub audit and the -repair walk out over N
// workers (0, the default, uses every core; 1 forces the serial path) —
// the fan-out recovers a byte-identical image at any width.
//
// Exit status: 0 clean, 1 problems found, 2 usage/load error, 3 degraded
// (in-service sub-heaps are consistent but capacity is quarantined).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

// report is the JSON envelope: the raw CheckReport plus the classified
// status ("clean" | "degraded" | "problems") matching the exit code, and
// how many sub-heaps -repair returned to service.
type report struct {
	Status   string
	Repaired int `json:",omitempty"`
	Report   core.CheckReport
	// Timeline is the black-box flight-recorder reconstruction (-timeline):
	// events, sampled spans and stalls recovered from the image's persistent
	// ring, ascending sequence order.
	Timeline []core.BlackboxEntry `json:",omitempty"`
}

func main() {
	raw := flag.Bool("raw", false, "audit without running recovery first")
	scrub := flag.Bool("scrub", false, "run the full metadata audit during recovery, quarantining failed sub-heaps")
	repair := flag.Bool("repair", false, "repair quarantined sub-heaps and save the image back (implies -scrub)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	jobs := flag.Int("j", 0, "recovery/scrub/repair worker count (0 = all cores, 1 = serial)")
	timeline := flag.Bool("timeline", false, "reconstruct the black-box flight-recorder timeline from the image")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: poseidon-fsck [-raw] [-scrub] [-repair] [-timeline] [-json] [-j N] <heap-image>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *raw && *repair {
		fmt.Fprintln(os.Stderr, "poseidon-fsck: -raw and -repair are mutually exclusive")
		os.Exit(2)
	}
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "poseidon-fsck: -j must not be negative")
		os.Exit(2)
	}
	rep, err := run(flag.Arg(0), *raw, *scrub, *repair, *timeline, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-fsck:", err)
		os.Exit(2)
	}
	code := 0
	switch {
	case !rep.Report.OK():
		rep.Status = "problems"
		code = 1
	case rep.Report.Quarantined > 0:
		rep.Status = "degraded"
		code = 3
	default:
		rep.Status = "clean"
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "poseidon-fsck:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}
	printReport(rep)
	if *timeline {
		printTimeline(rep.Timeline)
	}
	os.Exit(code)
}

func printReport(rep report) {
	r := rep.Report
	fmt.Printf("sub-heaps: %d (%d formatted)\n", r.Subheaps, r.Formatted)
	fmt.Printf("blocks:    %d allocated, %d free\n", r.AllocatedBlocks, r.FreeBlocks)
	if rep.Repaired > 0 {
		fmt.Printf("repaired:  %d sub-heaps returned to service\n", rep.Repaired)
	}
	if r.Quarantined > 0 {
		fmt.Printf("QUARANTINED: %d sub-heaps (%d bytes of capacity out of service)\n",
			r.Quarantined, r.QuarantinedBytes)
		for _, sr := range r.SubheapReports {
			if sr.Quarantined {
				fmt.Printf("  - sub-heap %d: %s\n", sr.ID, sr.QuarantineReason)
			}
		}
	}
	if r.PendingUndo > 0 {
		fmt.Printf("pending:   %d undo-log entries (interrupted operation; recovery will revert it)\n", r.PendingUndo)
	}
	if r.PendingTx > 0 {
		fmt.Printf("pending:   %d micro-log entries (open transactions; recovery will roll them back)\n", r.PendingTx)
	}
	if r.OK() {
		if r.Healthy() {
			fmt.Println("heap is consistent")
		} else {
			fmt.Println("in-service sub-heaps are consistent (degraded: quarantined capacity above)")
		}
		return
	}
	fmt.Printf("%d PROBLEMS:\n", len(r.Problems))
	for _, p := range r.Problems {
		fmt.Println("  -", p)
	}
}

func printTimeline(tl []core.BlackboxEntry) {
	fmt.Printf("black-box timeline: %d entries\n", len(tl))
	for _, e := range tl {
		fmt.Printf("  %6d %s %-5s %-14s sub=%-3d", e.Seq,
			e.Time.Format("15:04:05.000000"), e.Type, e.Kind, e.Subheap)
		if e.Type == "span" {
			fmt.Printf(" lane=%-3d dur=%s flushes=%d fences=%d",
				e.Lane, time.Duration(e.DurNS), e.Flushes, e.Fences)
		}
		if e.Detail != "" {
			fmt.Printf("  %s", e.Detail)
		}
		fmt.Println()
	}
}

func run(path string, raw, scrub, repair, timeline bool, jobs int) (report, error) {
	dev, err := nvm.LoadFile(path, nvm.Options{})
	if err != nil {
		return report{}, err
	}
	var h *core.Heap
	if raw {
		h, err = core.Attach(dev, core.Options{})
	} else {
		h, err = core.Load(dev, core.Options{
			ScrubOnLoad:         scrub || repair,
			RecoveryParallelism: jobs,
		})
	}
	if err != nil {
		return report{}, err
	}
	var rep report
	if repair {
		n, rerr := h.RepairAll()
		rep.Repaired = n
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "poseidon-fsck: repair:", rerr)
		}
	}
	rep.Report, err = h.Check()
	if err != nil {
		return rep, err
	}
	if timeline {
		tl, terr := h.BlackboxTimeline()
		if terr != nil {
			// A torn ring never fails the audit — report and move on.
			fmt.Fprintln(os.Stderr, "poseidon-fsck: black-box timeline:", terr)
		}
		rep.Timeline = tl
	}
	if repair && rep.Repaired > 0 {
		if err := h.SaveFile(path); err != nil {
			return rep, fmt.Errorf("saving repaired image: %w", err)
		}
	}
	return rep, nil
}
