// Command poseidon-fsck audits a saved heap image: every sub-heap's blocks
// must tile the user region exactly with no overlaps, free lists must
// agree with the memory-block hash table, and log headers must be sane.
// Pending recovery work (non-empty logs) is reported but is not an error —
// loading the heap performs it.
//
//	poseidon-fsck heap.img          # audit after recovery (the normal view)
//	poseidon-fsck -raw heap.img     # audit the image as-is, skipping recovery
//	poseidon-fsck -json heap.img    # machine-readable CheckReport
//
// Exit status: 0 clean, 1 problems found, 2 usage/load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func main() {
	raw := flag.Bool("raw", false, "audit without running recovery first")
	scrub := flag.Bool("scrub", false, "run the full metadata audit during recovery, quarantining failed sub-heaps")
	asJSON := flag.Bool("json", false, "emit the CheckReport as JSON")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: poseidon-fsck [-raw] [-scrub] [-json] <heap-image>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	report, err := run(flag.Arg(0), *raw, *scrub)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-fsck:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "poseidon-fsck:", err)
			os.Exit(2)
		}
		if !report.OK() {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("sub-heaps: %d (%d formatted)\n", report.Subheaps, report.Formatted)
	fmt.Printf("blocks:    %d allocated, %d free\n", report.AllocatedBlocks, report.FreeBlocks)
	if report.Quarantined > 0 {
		fmt.Printf("QUARANTINED: %d sub-heaps (%d bytes of capacity out of service)\n",
			report.Quarantined, report.QuarantinedBytes)
		for _, sr := range report.SubheapReports {
			if sr.Quarantined {
				fmt.Printf("  - sub-heap %d: %s\n", sr.ID, sr.QuarantineReason)
			}
		}
	}
	if report.PendingUndo > 0 {
		fmt.Printf("pending:   %d undo-log entries (interrupted operation; recovery will revert it)\n", report.PendingUndo)
	}
	if report.PendingTx > 0 {
		fmt.Printf("pending:   %d micro-log entries (open transactions; recovery will roll them back)\n", report.PendingTx)
	}
	if report.OK() {
		if report.Healthy() {
			fmt.Println("heap is consistent")
		} else {
			fmt.Println("in-service sub-heaps are consistent (degraded: quarantined capacity above)")
		}
		return
	}
	fmt.Printf("%d PROBLEMS:\n", len(report.Problems))
	for _, p := range report.Problems {
		fmt.Println("  -", p)
	}
	os.Exit(1)
}

func run(path string, raw, scrub bool) (core.CheckReport, error) {
	dev, err := nvm.LoadFile(path, nvm.Options{})
	if err != nil {
		return core.CheckReport{}, err
	}
	var h *core.Heap
	if raw {
		h, err = core.Attach(dev, core.Options{})
	} else {
		h, err = core.Load(dev, core.Options{ScrubOnLoad: scrub})
	}
	if err != nil {
		return core.CheckReport{}, err
	}
	return h.Check()
}
