// Command poseidon-fsck audits a saved heap image: every sub-heap's blocks
// must tile the user region exactly with no overlaps, free lists must
// agree with the memory-block hash table, and log headers must be sane.
// Pending recovery work (non-empty logs) is reported but is not an error —
// loading the heap performs it.
//
//	poseidon-fsck heap.img          # audit after recovery (the normal view)
//	poseidon-fsck -raw heap.img     # audit the image as-is, skipping recovery
//
// Exit status: 0 clean, 1 problems found, 2 usage/load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func main() {
	raw := flag.Bool("raw", false, "audit without running recovery first")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: poseidon-fsck [-raw] <heap-image>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	report, err := run(flag.Arg(0), *raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-fsck:", err)
		os.Exit(2)
	}
	fmt.Printf("sub-heaps: %d (%d formatted)\n", report.Subheaps, report.Formatted)
	fmt.Printf("blocks:    %d allocated, %d free\n", report.AllocatedBlocks, report.FreeBlocks)
	if report.PendingUndo > 0 {
		fmt.Printf("pending:   %d undo-log entries (interrupted operation; recovery will revert it)\n", report.PendingUndo)
	}
	if report.PendingTx > 0 {
		fmt.Printf("pending:   %d micro-log entries (open transactions; recovery will roll them back)\n", report.PendingTx)
	}
	if report.OK() {
		fmt.Println("heap is consistent")
		return
	}
	fmt.Printf("%d PROBLEMS:\n", len(report.Problems))
	for _, p := range report.Problems {
		fmt.Println("  -", p)
	}
	os.Exit(1)
}

func run(path string, raw bool) (core.CheckReport, error) {
	dev, err := nvm.LoadFile(path, nvm.Options{})
	if err != nil {
		return core.CheckReport{}, err
	}
	var h *core.Heap
	if raw {
		h, err = core.Attach(dev, core.Options{})
	} else {
		h, err = core.Load(dev, core.Options{})
	}
	if err != nil {
		return core.CheckReport{}, err
	}
	return h.Check()
}
