package main

import (
	"path/filepath"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

// corruptImage builds a heap image with one media bit flip in sub-heap 0's
// metadata and saves it to a temp file.
func corruptImage(t *testing.T) string {
	t.Helper()
	h, err := core.Create(core.Options{
		Subheaps:        2,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0xF5C4,
		CrashTracking:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for w := 0; w < 2; w++ {
		th, err := h.ThreadOn(w)
		if err != nil {
			t.Fatal(err)
		}
		p, err := th.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		if w == 0 {
			slot, err := h.RecordSlot(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Device().InjectBitFlip(slot+8, 0); err != nil {
				t.Fatal(err)
			}
		}
		th.Close()
	}
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corrupt.img")
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFsckRepairRoundTrip drives the CLI engine end to end: a scrub audit
// classifies the corrupt image as degraded, -repair heals it and saves it
// back, and a fresh scrub of the same file comes up clean.
func TestFsckRepairRoundTrip(t *testing.T) {
	path := corruptImage(t)

	rep, err := run(path, false, true, false, false, 1)
	if err != nil {
		t.Fatalf("scrub run: %v", err)
	}
	if !rep.Report.OK() {
		t.Fatalf("scrub audit must absorb quarantined problems: %v", rep.Report.Problems)
	}
	if rep.Report.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (degraded, exit 3)", rep.Report.Quarantined)
	}

	// Repair through the parallel walk (-j 4): the healed image must be
	// indistinguishable from a serial repair's.
	rep, err = run(path, false, false, true, false, 4)
	if err != nil {
		t.Fatalf("repair run: %v", err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("Repaired = %d, want 1", rep.Repaired)
	}
	if !rep.Report.OK() || !rep.Report.Healthy() {
		t.Fatalf("post-repair report: OK=%v Healthy=%v problems=%v",
			rep.Report.OK(), rep.Report.Healthy(), rep.Report.Problems)
	}

	// The healed image was written back: a fresh audit is clean.
	rep, err = run(path, false, true, false, false, 4)
	if err != nil {
		t.Fatalf("re-audit run: %v", err)
	}
	if !rep.Report.OK() || !rep.Report.Healthy() {
		t.Fatalf("saved-back image not clean: OK=%v Healthy=%v quarantined=%d",
			rep.Report.OK(), rep.Report.Healthy(), rep.Report.Quarantined)
	}
}
