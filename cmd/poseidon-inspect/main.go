// Command poseidon-inspect dumps the structure of a saved Poseidon heap
// image: geometry, root pointer, per-sub-heap block statistics, hash-table
// levels, log states and lifetime counters.
//
//	poseidon-inspect heap.img
//	poseidon-inspect -stats heap.img           # full telemetry snapshot
//	poseidon-inspect -stats -json heap.img     # the same snapshot as JSON
//	poseidon-inspect -profile heap.img         # recovered allocation sites
//	poseidon-inspect -profile -pprof p.pb.gz heap.img  # and write pprof
//	poseidon-inspect -blackbox heap.img        # black-box timeline, raw image
//	poseidon-inspect -events heap.img          # recovery journal + black box
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

func main() {
	stats := flag.Bool("stats", false, "print the full telemetry snapshot (latency, attribution, gauges, health, events) after loading")
	asJSON := flag.Bool("json", false, "with -stats/-events/-blackbox: print JSON instead of text")
	profile := flag.Bool("profile", false, "print the allocation-site profile recovered from the image's persistent side-table")
	pprofOut := flag.String("pprof", "", "with -profile: also write the profile as gzipped pprof protobuf to this file (go tool pprof compatible)")
	events := flag.Bool("events", false, "run recovery, then dump the drained event journal plus the black-box timeline")
	blackbox := flag.Bool("blackbox", false, "reconstruct the black-box flight-recorder timeline from the raw image (no recovery)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: poseidon-inspect [-stats [-json]] [-profile [-pprof out.pb.gz]] [-events] [-blackbox] <heap-image>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *stats, *asJSON, *profile, *events, *blackbox, *pprofOut); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-inspect:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, path string, stats, asJSON, profile, events, blackbox bool, pprofOut string) error {
	var tel *obs.Telemetry
	if stats || profile || events {
		tel = obs.New()
	}
	dev, err := nvm.LoadFile(path, nvm.Options{Stats: stats})
	if err != nil {
		return err
	}
	if blackbox {
		// Raw attach: the post-crash ring exactly as the image holds it —
		// no recovery, no epoch bump, no header rewrite.
		h, err := core.Attach(dev, core.Options{})
		if err != nil {
			return err
		}
		tl, err := h.BlackboxTimeline()
		if err != nil {
			return err
		}
		return dumpTimeline(out, asJSON, nil, tl)
	}
	h, err := core.Load(dev, core.Options{Telemetry: tel})
	if err != nil {
		return err
	}
	if events {
		// The journal now holds this load's recovery events; the black box
		// holds the crashed run's history plus those same events (published
		// at load). Drained oldest-first, per the journal's ordering
		// guarantee.
		tl, terr := h.BlackboxTimeline()
		if terr != nil {
			fmt.Fprintln(os.Stderr, "poseidon-inspect: black-box timeline:", terr)
		}
		return dumpTimeline(out, asJSON, tel.DrainEvents(), tl)
	}
	if profile {
		return dumpProfile(out, h, pprofOut)
	}
	if !stats {
		return h.Inspect(out)
	}
	// Offline snapshot: the load itself populates the recovery/scrub
	// histograms and attribution; the gauges reflect the image's state.
	snap := h.Metrics()
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	return obs.WriteText(out, snap)
}

// dumpTimeline prints the drained journal (when the caller ran recovery)
// and the black-box timeline, as human text or one JSON document.
func dumpTimeline(out io.Writer, asJSON bool, journal []obs.Event, tl []core.BlackboxEntry) error {
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Journal  []obs.Event          `json:",omitempty"`
			Blackbox []core.BlackboxEntry `json:",omitempty"`
		}{journal, tl})
	}
	if journal != nil {
		fmt.Fprintf(out, "event journal (this load): %d events\n", len(journal))
		for _, e := range journal {
			fmt.Fprintf(out, "  %6d %s %-14s sub=%-3d %s\n", e.Seq,
				e.At.Format("15:04:05.000000"), e.KindStr, e.Subheap, e.Detail)
		}
	}
	fmt.Fprintf(out, "black-box timeline: %d entries\n", len(tl))
	for _, e := range tl {
		fmt.Fprintf(out, "  %6d %s %-5s %-14s sub=%-3d", e.Seq,
			e.Time.Format("15:04:05.000000"), e.Type, e.Kind, e.Subheap)
		if e.Type == "span" {
			fmt.Fprintf(out, " lane=%-3d dur=%s flushes=%d fences=%d",
				e.Lane, time.Duration(e.DurNS), e.Flushes, e.Fences)
		}
		if e.Detail != "" {
			fmt.Fprintf(out, "  %s", e.Detail)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// dumpProfile prints the allocation sites recovered from the image's
// persistent side-table (leak attribution across the crash: live counts are
// what the last snapshot generation recorded) and optionally writes the
// pprof protobuf for go tool pprof.
func dumpProfile(out io.Writer, h *core.Heap, pprofOut string) error {
	prof := h.Telemetry().Profiler()
	sites := prof.Sites()
	fmt.Fprintf(out, "allocation-site profile: %d sites, boot epoch %d\n", len(sites), h.ProfileEpoch())
	if len(sites) == 0 {
		fmt.Fprintln(out, "  (empty: the image holds no persisted site table, or nothing was sampled)")
	}
	for _, s := range sites {
		marker := ""
		if s.Recovered {
			marker = " [recovered]"
		}
		fmt.Fprintf(out, "  site %016x: live %d objects / %d bytes, cum %d allocs / %d bytes, first epoch %d%s\n",
			s.Hash, s.LiveObjects, s.LiveBytes, s.AllocObjects, s.AllocBytes, s.FirstEpoch, marker)
		for _, f := range s.Frames {
			fmt.Fprintf(out, "      %s\n          %s:%d\n", f.Func, f.File, f.Line)
		}
	}
	leaks := prof.LeakSites(h.ProfileEpoch())
	live := 0
	for _, s := range leaks {
		if s.LiveBytes > 0 {
			live++
		}
	}
	fmt.Fprintf(out, "leak candidates (live since before epoch %d): %d sites\n", h.ProfileEpoch(), live)
	if pprofOut != "" {
		b, err := h.ProfilePprof()
		if err != nil {
			return err
		}
		if err := os.WriteFile(pprofOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "pprof profile written to %s (%d bytes)\n", pprofOut, len(b))
	}
	return nil
}
