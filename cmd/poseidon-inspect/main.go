// Command poseidon-inspect dumps the structure of a saved Poseidon heap
// image: geometry, root pointer, per-sub-heap block statistics, hash-table
// levels, log states and lifetime counters.
//
//	poseidon-inspect heap.img
//	poseidon-inspect -stats heap.img         # full telemetry snapshot
//	poseidon-inspect -stats -json heap.img   # the same snapshot as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

func main() {
	stats := flag.Bool("stats", false, "print the full telemetry snapshot (latency, attribution, gauges, events) after loading")
	asJSON := flag.Bool("json", false, "with -stats: print the snapshot as JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: poseidon-inspect [-stats [-json]] <heap-image>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *stats, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-inspect:", err)
		os.Exit(1)
	}
}

func run(path string, stats, asJSON bool) error {
	var tel *obs.Telemetry
	if stats {
		tel = obs.New()
	}
	dev, err := nvm.LoadFile(path, nvm.Options{Stats: stats})
	if err != nil {
		return err
	}
	h, err := core.Load(dev, core.Options{Telemetry: tel})
	if err != nil {
		return err
	}
	if !stats {
		return h.Inspect(os.Stdout)
	}
	// Offline snapshot: the load itself populates the recovery/scrub
	// histograms and attribution; the gauges reflect the image's state.
	snap := h.Metrics()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	return obs.WriteText(os.Stdout, snap)
}
