// Command poseidon-inspect dumps the structure of a saved Poseidon heap
// image: geometry, root pointer, per-sub-heap block statistics, hash-table
// levels, log states and lifetime counters.
//
//	poseidon-inspect heap.img
//	poseidon-inspect -stats heap.img           # full telemetry snapshot
//	poseidon-inspect -stats -json heap.img     # the same snapshot as JSON
//	poseidon-inspect -profile heap.img         # recovered allocation sites
//	poseidon-inspect -profile -pprof p.pb.gz heap.img  # and write pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

func main() {
	stats := flag.Bool("stats", false, "print the full telemetry snapshot (latency, attribution, gauges, health, events) after loading")
	asJSON := flag.Bool("json", false, "with -stats: print the snapshot as JSON instead of text")
	profile := flag.Bool("profile", false, "print the allocation-site profile recovered from the image's persistent side-table")
	pprofOut := flag.String("pprof", "", "with -profile: also write the profile as gzipped pprof protobuf to this file (go tool pprof compatible)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: poseidon-inspect [-stats [-json]] [-profile [-pprof out.pb.gz]] <heap-image>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *stats, *asJSON, *profile, *pprofOut); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-inspect:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, path string, stats, asJSON, profile bool, pprofOut string) error {
	var tel *obs.Telemetry
	if stats || profile {
		tel = obs.New()
	}
	dev, err := nvm.LoadFile(path, nvm.Options{Stats: stats})
	if err != nil {
		return err
	}
	h, err := core.Load(dev, core.Options{Telemetry: tel})
	if err != nil {
		return err
	}
	if profile {
		return dumpProfile(out, h, pprofOut)
	}
	if !stats {
		return h.Inspect(out)
	}
	// Offline snapshot: the load itself populates the recovery/scrub
	// histograms and attribution; the gauges reflect the image's state.
	snap := h.Metrics()
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	return obs.WriteText(out, snap)
}

// dumpProfile prints the allocation sites recovered from the image's
// persistent side-table (leak attribution across the crash: live counts are
// what the last snapshot generation recorded) and optionally writes the
// pprof protobuf for go tool pprof.
func dumpProfile(out io.Writer, h *core.Heap, pprofOut string) error {
	prof := h.Telemetry().Profiler()
	sites := prof.Sites()
	fmt.Fprintf(out, "allocation-site profile: %d sites, boot epoch %d\n", len(sites), h.ProfileEpoch())
	if len(sites) == 0 {
		fmt.Fprintln(out, "  (empty: the image holds no persisted site table, or nothing was sampled)")
	}
	for _, s := range sites {
		marker := ""
		if s.Recovered {
			marker = " [recovered]"
		}
		fmt.Fprintf(out, "  site %016x: live %d objects / %d bytes, cum %d allocs / %d bytes, first epoch %d%s\n",
			s.Hash, s.LiveObjects, s.LiveBytes, s.AllocObjects, s.AllocBytes, s.FirstEpoch, marker)
		for _, f := range s.Frames {
			fmt.Fprintf(out, "      %s\n          %s:%d\n", f.Func, f.File, f.Line)
		}
	}
	leaks := prof.LeakSites(h.ProfileEpoch())
	live := 0
	for _, s := range leaks {
		if s.LiveBytes > 0 {
			live++
		}
	}
	fmt.Fprintf(out, "leak candidates (live since before epoch %d): %d sites\n", h.ProfileEpoch(), live)
	if pprofOut != "" {
		b, err := h.ProfilePprof()
		if err != nil {
			return err
		}
		if err := os.WriteFile(pprofOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "pprof profile written to %s (%d bytes)\n", pprofOut, len(b))
	}
	return nil
}
