// Command poseidon-inspect dumps the structure of a saved Poseidon heap
// image: geometry, root pointer, per-sub-heap block statistics, hash-table
// levels, log states and lifetime counters.
//
//	poseidon-inspect heap.img
package main

import (
	"flag"
	"fmt"
	"os"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: poseidon-inspect <heap-image>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-inspect:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	dev, err := nvm.LoadFile(path, nvm.Options{})
	if err != nil {
		return err
	}
	h, err := core.Load(dev, core.Options{})
	if err != nil {
		return err
	}
	return h.Inspect(os.Stdout)
}
