package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/obs"
)

// inspectLeakA and inspectLeakB are two distinct allocation sites whose
// frames must survive into the persisted profile.
//
//go:noinline
func inspectLeakA(t *testing.T, th *core.Thread) {
	t.Helper()
	for i := 0; i < 2; i++ {
		if _, err := th.Alloc(100); err != nil {
			t.Fatal(err)
		}
	}
}

//go:noinline
func inspectLeakB(t *testing.T, th *core.Thread) {
	t.Helper()
	if _, err := th.Alloc(3000); err != nil {
		t.Fatal(err)
	}
}

// buildImage saves a heap image with a persisted two-site profile.
func buildImage(t *testing.T) string {
	t.Helper()
	h, err := core.Create(core.Options{
		Subheaps:        2,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      4,
		HeapID:          0xBEEF,
		CrashTracking:   true,
		Telemetry:       obs.New(),
		Profile:         core.ProfileOptions{Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	inspectLeakA(t, th)
	inspectLeakB(t, th)
	th.Close()
	if err := h.PersistProfile(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "heap.img")
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectPlain(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, buildImage(t), false, false, false, false, false, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no inspect output")
	}
}

func TestInspectProfile(t *testing.T) {
	path := buildImage(t)
	pprofPath := filepath.Join(t.TempDir(), "p.pb.gz")
	var buf bytes.Buffer
	if err := run(&buf, path, false, false, true, false, false, pprofPath); err != nil {
		t.Fatalf("run -profile: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"allocation-site profile: 2 sites, boot epoch 2",
		"inspectLeakA",
		"inspectLeakB",
		"[recovered]",
		"leak candidates (live since before epoch 2): 2 sites",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile output missing %q:\n%s", want, out)
		}
	}
	// Site A: 2 live × 128 B; site B: 1 live × 4096 B (3000 rounds up).
	if !strings.Contains(out, "live 2 objects / 256 bytes") ||
		!strings.Contains(out, "live 1 objects / 4096 bytes") {
		t.Fatalf("profile output has wrong byte counts:\n%s", out)
	}
	gz, err := os.ReadFile(pprofPath)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := obs.ParsePprof(gz)
	if err != nil {
		t.Fatalf("written pprof unparseable: %v", err)
	}
	if len(pp.Samples) != 2 {
		t.Fatalf("pprof has %d samples, want 2", len(pp.Samples))
	}
}

// TestInspectStatsJSONRoundTrip pins the offline JSON snapshot contract:
// the output decodes back into obs.Snapshot and carries the health state
// and self-healing repair counters.
func TestInspectStatsJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, buildImage(t), true, true, false, false, false, ""); err != nil {
		t.Fatalf("run -stats -json: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Health == nil || snap.Health.State != "healthy" || snap.Health.ReadOnly {
		t.Fatalf("health = %+v", snap.Health)
	}
	for _, counter := range []string{"repaired_subheaps", "repaired_bytes", "mirror_restores", "quarantined_subheaps", "transient_retries"} {
		if _, ok := snap.Counters[counter]; !ok {
			t.Fatalf("snapshot missing counter %q (have %v)", counter, snap.Counters)
		}
	}
	if snap.Profile == nil || snap.Profile.Sites != 2 || snap.Profile.Epoch != 2 {
		t.Fatalf("profile block = %+v", snap.Profile)
	}
	if len(snap.Subheaps) == 0 {
		t.Fatal("snapshot has no sub-heap gauges")
	}
}

func TestInspectStatsText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, buildImage(t), true, false, false, false, false, ""); err != nil {
		t.Fatalf("run -stats: %v", err)
	}
	if !strings.Contains(buf.String(), "health") {
		// WriteText renders the health block; pin loosely to its presence.
		t.Fatalf("stats text missing health section:\n%s", buf.String())
	}
}

func TestInspectMissingFile(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, filepath.Join(t.TempDir(), "nope.img"), false, false, false, false, false, "")
	if err == nil {
		t.Fatal("missing image accepted")
	}
}
