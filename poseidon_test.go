package poseidon

import (
	"errors"
	"testing"
)

func smallOptions() Options {
	return Options{
		Subheaps:        2,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
	}
}

func TestOpenCreatesThenReloads(t *testing.T) {
	path := t.TempDir() + "/heap.img"
	h, err := Open(path, smallOptions())
	if err != nil {
		t.Fatalf("Open (create): %v", err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Persist(p, 0, []byte("hello nvmm")); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(p); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if err := h.Save(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := Open(path, smallOptions())
	if err != nil {
		t.Fatalf("Open (reload): %v", err)
	}
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root.IsNull() {
		t.Fatal("root lost across save/open")
	}
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	got := make([]byte, 10)
	if err := th2.Read(root, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello nvmm" {
		t.Fatalf("data = %q", got)
	}
}

func TestSaveWithoutPath(t *testing.T) {
	h, err := Create(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Save(); err == nil {
		t.Fatal("Save without a path should fail")
	}
	path := t.TempDir() + "/explicit.img"
	if err := h.SaveAs(path); err != nil {
		t.Fatalf("SaveAs: %v", err)
	}
}

func TestErrorsSurfaceThroughFacade(t *testing.T) {
	h, err := Create(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free through facade: %v", err)
	}
}
