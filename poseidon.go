// Package poseidon is a Go reproduction of Poseidon, the safe, fast and
// scalable persistent memory (NVMM) allocator from Demeri et al.,
// Middleware '20.
//
// A Poseidon heap lives on a simulated NVMM device (package internal/nvm)
// and provides malloc/free-style allocation of persistent blocks plus
// transactional allocation, with three guarantees the paper argues no prior
// persistent allocator offered together:
//
//   - Complete heap-metadata protection: metadata is fully segregated from
//     user data and guarded by (modeled) Intel Memory Protection Keys.
//     Stray writes into metadata fault; invalid and double frees are
//     detected via the memory-block hash table and rejected.
//   - Crash consistency: every metadata mutation is undo-logged, and
//     transactional allocations are micro-logged, so a crash at any point —
//     including adversarial cacheline eviction — recovers to a consistent
//     heap with no leaks from uncommitted transactions.
//   - Scalability: per-CPU sub-heaps with per-sub-heap locks, and
//     constant-time block lookup via a multi-level hash table.
//
// # Quick start
//
//	h, err := poseidon.Open("heap.img", poseidon.Options{})
//	if err != nil { ... }
//	t, err := h.Thread()          // one per goroutine
//	p, err := t.Alloc(256)        // a persistent block
//	err = t.Persist(p, 0, data)   // write + flush + fence
//	err = h.SetRoot(p)            // reachable after restart
//	err = h.Save()                // durable image
//
// After a restart, poseidon.Open replays the logs, rolls back uncommitted
// transactions, and h.Root() leads back to the data.
package poseidon

import (
	"errors"
	"io/fs"
	"os"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

// Core types, re-exported from the implementation package so application
// code imports only this package.
type (
	// Options configures heap geometry and protection. The zero value
	// gives a GOMAXPROCS-way heap with 64 MiB sub-heaps under MPK.
	Options = core.Options
	// NVMPtr is the 16-byte persistent pointer (heap ID, sub-heap, offset).
	NVMPtr = core.NVMPtr
	// Thread is a per-goroutine allocation context.
	Thread = core.Thread
	// HeapStats is a snapshot of allocator activity counters.
	HeapStats = core.HeapStats
	// Protection selects the metadata guard (MPK, none, mprotect-cost).
	Protection = core.Protection
	// MagazineOptions configures the opt-in per-thread block magazines
	// (Options.Magazines): lock-free, flush-free alloc/free fast paths for
	// small objects with crash-reclaimable refill batches. See
	// Thread.SyncMagazines for the durability contract.
	MagazineOptions = core.MagazineOptions
	// ProfileOptions configures the sampled allocation-site heap profiler
	// (Options.Profile): 1-in-Rate allocations capture their caller stack,
	// aggregated per site and checkpointed into the heap image so leak
	// attribution survives crashes. See Heap.ProfilePprof.
	ProfileOptions = core.ProfileOptions
	// TraceOptions configures the sampled op-span tracer (Options.Trace):
	// 1-in-Rate operations record spans with their flush/fence/retry
	// sub-events, rendered as Chrome trace-event JSON by Heap.TraceJSON.
	TraceOptions = core.TraceOptions
	// WatchdogOptions configures the stall watchdog (Options.Watchdog): a
	// background goroutine that journals EventStall when a sub-heap
	// operation holds its lock past StallThreshold, feeds the
	// poseidon_stalls_total counter, and paces black-box ring publishes.
	// Requires Options.Telemetry.
	WatchdogOptions = core.WatchdogOptions
	// BlackboxEntry is one reconstructed black-box timeline entry (event,
	// span or stall) returned by Heap.BlackboxTimeline.
	BlackboxEntry = core.BlackboxEntry
	// Telemetry is the observability registry: pass one in
	// Options.Telemetry to get latency histograms, per-class device-traffic
	// attribution, per-sub-heap gauges and the event journal. See
	// Heap.Metrics.
	Telemetry = obs.Telemetry
	// Metrics is the full telemetry snapshot returned by Heap.Metrics.
	Metrics = obs.Snapshot
	// DeviceStatsSnapshot is the device's flat operation counters
	// (writes, bytes, clwb flushes, sfence barriers). Enabled reports
	// whether collection was on — an all-zero snapshot with Enabled false
	// means "never measured", not "idle".
	DeviceStatsSnapshot = nvm.StatsSnapshot
)

// NewTelemetry creates a telemetry registry for Options.Telemetry. One
// registry may be shared by several heaps; their traffic then aggregates.
func NewTelemetry() *Telemetry { return obs.New() }

// Protection modes.
const (
	ProtectMPK         = core.ProtectMPK
	ProtectNone        = core.ProtectNone
	ProtectMprotect    = core.ProtectMprotect
	ProtectMPKHardened = core.ProtectMPKHardened
)

// PtrFromLoc rebuilds a persistent pointer from a location word previously
// obtained with NVMPtr.Loc — the way applications store pointers inside
// persistent objects (poseidon_get_nvmptr's counterpart for stored
// locations).
func PtrFromLoc(heapID, loc uint64) NVMPtr { return core.PtrFromLoc(heapID, loc) }

// Errors returned by the allocator.
var (
	ErrOutOfMemory = core.ErrOutOfMemory
	ErrInvalidFree = core.ErrInvalidFree
	ErrDoubleFree  = core.ErrDoubleFree
	ErrBadPointer  = core.ErrBadPointer
	ErrBadSize     = core.ErrBadSize
	ErrCorruptHeap = core.ErrCorruptHeap
	ErrClosed      = core.ErrClosed
	// ErrSubheapQuarantined reports an operation on a sub-heap that
	// recovery took out of service (degrade-don't-die).
	ErrSubheapQuarantined = core.ErrSubheapQuarantined
)

// Heap is a Poseidon persistent heap. It wraps the core implementation
// with file-backed open/save convenience.
type Heap struct {
	*core.Heap
	path string
}

// Create formats a new in-memory heap (no backing file until Save).
func Create(opts Options) (*Heap, error) {
	h, err := core.Create(opts)
	if err != nil {
		return nil, err
	}
	return &Heap{Heap: h}, nil
}

// Open loads the heap image at path, running crash recovery — or creates a
// fresh heap if the file does not exist yet. Save writes it back.
func Open(path string, opts Options) (*Heap, error) {
	_, err := os.Stat(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		h, cerr := core.Create(opts)
		if cerr != nil {
			return nil, cerr
		}
		return &Heap{Heap: h, path: path}, nil
	case err != nil:
		return nil, err
	}
	dev, err := nvm.LoadFile(path, nvm.Options{
		CrashTracking: opts.CrashTracking,
		// Telemetry implies device stats (mirrors core's option defaulting,
		// which cannot reach back to a device created here).
		Stats: opts.DeviceStats || opts.Telemetry != nil,
	})
	if err != nil {
		return nil, err
	}
	h, err := core.Load(dev, opts)
	if err != nil {
		return nil, err
	}
	return &Heap{Heap: h, path: path}, nil
}

// Save writes the heap image to its opened path (or the explicit path from
// SaveAs). Unflushed user stores do not survive, exactly as they would not
// survive a power cycle.
func (h *Heap) Save() error {
	if h.path == "" {
		return errors.New("poseidon: heap has no backing path; use SaveAs")
	}
	return h.Heap.SaveFile(h.path)
}

// SaveAs writes the heap image to path.
func (h *Heap) SaveAs(path string) error { return h.Heap.SaveFile(path) }
