package alloctest

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"poseidon/internal/core"
)

// magazineOptions builds the heap geometry the magazine differential
// schedule runs on: two sub-heaps shared by four workers, so concurrent
// refill carves and overflow flush-backs contend on the same sub-heap
// locks while every worker's fast path stays thread-local.
func magazineOptions(mags bool) core.Options {
	o := core.Options{
		Subheaps:        2,
		SubheapUserSize: 512 << 10,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0x3A6A21,
		CrashTracking:   true,
	}
	if mags {
		o.Magazines = core.MagazineOptions{Capacity: 8, Classes: 4}
	}
	return o
}

// magEndState is the mode-independent fingerprint of a finished schedule.
// Block addresses are deliberately absent: magazine caching changes carve
// and reuse order, so addresses differ between modes while the logical
// heap content must not.
type magEndState struct {
	LiveSizes       map[int][]uint64 // shard → sorted live block sizes
	AllocatedBlocks uint64
	Allocs          uint64
	Frees           uint64
	DoubleFrees     uint64
	InvalidFrees    uint64
}

const (
	magWorkers = 4
	magRounds  = 6
	magBatch   = 24
)

// magazineSchedule runs the randomized multi-worker schedule on one heap
// and returns its fingerprint. Each worker frees its OWN previous batch —
// every free is same-shard, the magazine fast path — with sizes drawn from
// an rng seeded only by (round, worker), spanning both magazined and
// non-magazined classes, so the operation set (and the end state) is
// independent of goroutine interleaving and of the mode under test.
func magazineSchedule(t *testing.T, mags bool) magEndState {
	t.Helper()
	h, err := core.Create(magazineOptions(mags))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	threads := make([]*core.Thread, magWorkers)
	for w := range threads {
		th, err := h.ThreadOn(w % 2)
		if err != nil {
			t.Fatal(err)
		}
		threads[w] = th
	}

	prev := make([][]core.NVMPtr, magWorkers)
	for round := 0; round < magRounds; round++ {
		next := make([][]core.NVMPtr, magWorkers)
		var wg sync.WaitGroup
		errs := make([]error, magWorkers)
		for w := 0; w < magWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := threads[w]
				for _, p := range prev[w] {
					if err := th.Free(p); err != nil {
						errs[w] = fmt.Errorf("round %d worker %d free: %w", round, w, err)
						return
					}
				}
				rng := rand.New(rand.NewSource(int64(round)<<8 | int64(w)))
				batch := make([]core.NVMPtr, 0, magBatch)
				for i := 0; i < magBatch; i++ {
					// 64..1023 bytes: classes 0..3 ride the magazine,
					// class 4 takes the locked path.
					p, err := th.Alloc(64 + uint64(rng.Intn(960)))
					if err != nil {
						errs[w] = fmt.Errorf("round %d worker %d alloc %d: %w", round, w, i, err)
						return
					}
					batch = append(batch, p)
				}
				next[w] = batch
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		prev = next
	}

	// Deterministic error tail: three double frees and one interior-pointer
	// free, all same-shard. The magazine path rejects a still-cached double
	// free from its DRAM track; the legacy path rejects it off the device
	// record — the counters must agree regardless.
	doomed := make([]core.NVMPtr, 3)
	for i := range doomed {
		if doomed[i], err = threads[0].Alloc(128); err != nil {
			t.Fatal(err)
		}
	}
	victim, err := threads[0].Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range doomed {
		if err := threads[0].Free(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range doomed {
		if err := threads[0].Free(p); !errors.Is(err, core.ErrDoubleFree) {
			t.Fatalf("injected double free: %v", err)
		}
	}
	interior := core.PtrFromLoc(h.HeapID(), victim.Loc()+64)
	if err := threads[0].Free(interior); !errors.Is(err, core.ErrInvalidFree) {
		t.Fatalf("injected invalid free: %v", err)
	}

	// Quiesce: flush every magazine back so the device-level fingerprint
	// (allocated blocks, manifest emptiness) is comparable across modes.
	for _, th := range threads {
		if err := th.SyncMagazines(); err != nil {
			t.Fatalf("SyncMagazines: %v", err)
		}
	}

	state := magEndState{LiveSizes: map[int][]uint64{}}
	record := func(p core.NVMPtr) {
		size, err := threads[0].BlockSize(p)
		if err != nil {
			t.Fatalf("live block %v lost: %v", p, err)
		}
		if size < 64 || size&(size-1) != 0 {
			t.Fatalf("live block %v has non-class size %d", p, size)
		}
		sh := int(p.Subheap())
		state.LiveSizes[sh] = append(state.LiveSizes[sh], size)
	}
	for _, batch := range prev {
		for _, p := range batch {
			record(p)
		}
	}
	record(victim)
	for _, sizes := range state.LiveSizes {
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	}

	report, err := h.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit (mags=%v): %v", mags, report.Problems)
	}
	if report.PendingCached != 0 {
		t.Fatalf("audit (mags=%v): %d cached entries survive the sync",
			mags, report.PendingCached)
	}
	st := h.Stats()
	if mags && st.MagazineHits == 0 {
		t.Fatal("magazine mode never hit the fast path")
	}
	if !mags && st.MagazineHits != 0 {
		t.Fatalf("legacy mode hit the magazine %d times", st.MagazineHits)
	}
	state.AllocatedBlocks = report.AllocatedBlocks
	state.Allocs = st.Allocs
	state.Frees = st.Frees
	state.DoubleFrees = st.DoubleFrees
	state.InvalidFrees = st.InvalidFrees

	for _, th := range threads {
		th.Close()
	}
	return state
}

// TestMagazineDifferential is the differential/property layer of the
// per-thread magazines: the same randomized multi-worker schedule runs
// once with magazines and once on the locked path, and the two heaps must
// agree on every observable that defines heap content — live block
// multiset per sub-heap, allocated-block count from the fsck-style audit,
// and the accepted/rejected operation counters. Run it under -race:
// concurrent refills and flush-backs on shared sub-heaps are exactly the
// cross-thread traffic the detector watches.
func TestMagazineDifferential(t *testing.T) {
	legacy := magazineSchedule(t, false)
	magged := magazineSchedule(t, true)

	if legacy.DoubleFrees != 3 || legacy.InvalidFrees != 1 {
		t.Fatalf("legacy injected-error counters: %+v", legacy)
	}
	if !reflect.DeepEqual(legacy, magged) {
		t.Fatalf("end states diverge:\nlegacy:    %+v\nmagazines: %+v", legacy, magged)
	}
}
