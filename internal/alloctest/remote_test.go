package alloctest

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"poseidon/internal/core"
)

// remoteOptions builds the heap geometry the differential schedule runs on:
// four sub-heaps so every worker has a distinct home shard and every free
// in the rotation is a cross-sub-heap free.
func remoteOptions(rings bool) core.Options {
	return core.Options{
		Subheaps:        4,
		SubheapUserSize: 256 << 10,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0xD1FFE2,
		CrashTracking:   true,
		RemoteFreeRings: rings,
	}
}

// remoteEndState is the mode-independent fingerprint of a finished
// schedule. Block addresses are deliberately absent: drain timing changes
// reuse order, so addresses differ between modes while the logical heap
// content must not.
type remoteEndState struct {
	LiveSizes       map[int][]uint64 // shard → sorted live block sizes
	AllocatedBlocks uint64
	Frees           uint64
	DoubleFrees     uint64
	InvalidFrees    uint64
}

const (
	remoteWorkers = 4
	remoteRounds  = 6
	remoteBatch   = 24
)

// remoteSchedule runs the randomized multi-worker schedule on one heap and
// returns its fingerprint. Every worker is pinned to its own sub-heap; each
// round it frees the batch a *different* worker allocated in the previous
// round (all frees are therefore remote) and allocates a fresh batch whose
// sizes come from an rng seeded only by (round, worker) — so the operation
// set, and with it the end state, is independent of goroutine interleaving
// and of the rings/legacy mode under test.
func remoteSchedule(t *testing.T, rings bool) remoteEndState {
	t.Helper()
	h, err := core.Create(remoteOptions(rings))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	threads := make([]*core.Thread, remoteWorkers)
	for w := range threads {
		th, err := h.ThreadOn(w)
		if err != nil {
			t.Fatal(err)
		}
		threads[w] = th
	}

	prev := make([][]core.NVMPtr, remoteWorkers)
	for round := 0; round < remoteRounds; round++ {
		next := make([][]core.NVMPtr, remoteWorkers)
		var wg sync.WaitGroup
		errs := make([]error, remoteWorkers)
		for w := 0; w < remoteWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := threads[w]
				// Free the neighbour's previous batch: every pointer is
				// owned by another sub-heap.
				for _, p := range prev[(w+1)%remoteWorkers] {
					if err := th.Free(p); err != nil {
						errs[w] = fmt.Errorf("round %d worker %d free: %w", round, w, err)
						return
					}
				}
				rng := rand.New(rand.NewSource(int64(round)<<8 | int64(w)))
				batch := make([]core.NVMPtr, 0, remoteBatch)
				for i := 0; i < remoteBatch; i++ {
					p, err := th.Alloc(64 + uint64(rng.Intn(1984)))
					if err != nil {
						errs[w] = fmt.Errorf("round %d worker %d alloc %d: %w", round, w, i, err)
						return
					}
					batch = append(batch, p)
				}
				next[w] = batch
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		prev = next
	}

	// Quiesce, then inject a deterministic error tail: three double frees
	// and one interior-pointer free, all remote. The rings path accepts
	// them at enqueue time and rejects them at drain; the legacy path
	// rejects them synchronously — the counters must agree regardless.
	if err := h.DrainRemoteFrees(); err != nil {
		t.Fatal(err)
	}
	victim, err := threads[0].Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	doomed := make([]core.NVMPtr, 3)
	for i := range doomed {
		if doomed[i], err = threads[0].Alloc(128); err != nil {
			t.Fatal(err)
		}
	}
	remote := threads[1]
	for _, p := range doomed {
		if err := remote.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.DrainRemoteFrees(); err != nil {
		t.Fatal(err)
	}
	for _, p := range doomed {
		if err := remote.Free(p); err != nil && !errors.Is(err, core.ErrDoubleFree) {
			t.Fatalf("injected double free: %v", err)
		}
	}
	interior := core.PtrFromLoc(h.HeapID(), victim.Loc()+64)
	if err := remote.Free(interior); err != nil && !errors.Is(err, core.ErrInvalidFree) {
		t.Fatalf("injected invalid free: %v", err)
	}
	if err := h.DrainRemoteFrees(); err != nil {
		t.Fatal(err)
	}

	// Fingerprint. The property layer first: every tracked live pointer
	// must still resolve to an allocated block of a sane class size.
	state := remoteEndState{LiveSizes: map[int][]uint64{}}
	record := func(p core.NVMPtr) {
		size, err := threads[0].BlockSize(p)
		if err != nil {
			t.Fatalf("live block %v lost: %v", p, err)
		}
		if size < 64 || size&(size-1) != 0 {
			t.Fatalf("live block %v has non-class size %d", p, size)
		}
		sh := int(p.Subheap())
		state.LiveSizes[sh] = append(state.LiveSizes[sh], size)
	}
	for _, batch := range prev {
		for _, p := range batch {
			record(p)
		}
	}
	record(victim)
	for _, sizes := range state.LiveSizes {
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	}

	report, err := h.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit (rings=%v): %v", rings, report.Problems)
	}
	if report.PendingRemote != 0 {
		t.Fatalf("audit (rings=%v): %d un-drained ring entries after quiesce",
			rings, report.PendingRemote)
	}
	st := h.Stats()
	if rings && st.RemoteFrees == 0 {
		t.Fatal("rings mode never used the remote-free ring")
	}
	if !rings && st.RemoteFrees != 0 {
		t.Fatalf("legacy mode used the ring %d times", st.RemoteFrees)
	}
	state.AllocatedBlocks = report.AllocatedBlocks
	state.Frees = st.Frees
	state.DoubleFrees = st.DoubleFrees
	state.InvalidFrees = st.InvalidFrees

	for _, th := range threads {
		th.Close()
	}
	return state
}

// TestRemoteFreeDifferential is the differential/property layer of the
// remote-free rings: the same randomized multi-worker schedule runs once
// with rings and once on the legacy locked path, and the two heaps must
// agree on every observable that defines heap content — live block
// multiset per sub-heap, allocated-block count from the fsck-style audit,
// and the accepted/rejected free counters. Run it under -race: the ring
// producers and the draining owner are exactly the cross-thread traffic
// the detector watches.
func TestRemoteFreeDifferential(t *testing.T) {
	legacy := remoteSchedule(t, false)
	ringed := remoteSchedule(t, true)

	if legacy.DoubleFrees != 3 || legacy.InvalidFrees != 1 {
		t.Fatalf("legacy injected-error counters: %+v", legacy)
	}
	if !reflect.DeepEqual(legacy, ringed) {
		t.Fatalf("end states diverge:\nlegacy: %+v\nrings:  %+v", legacy, ringed)
	}
}
