package alloctest

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

// The differential repair test runs the same deterministic concurrent
// schedule against two heaps: heap A suffers a media bit flip, a crash, a
// quarantine-on-load and a repair; heap B never sees corruption. A repaired
// sub-heap must then be behaviorally indistinguishable: the same per-op
// outcomes, the same surviving payloads, the same live-block census. The
// fingerprint is deliberately order- and address-INSENSITIVE — repair
// rethreads free lists by offset, so block addresses may legitimately
// differ; what may not differ is anything a correct program can observe.

func repairDiffOptions() core.Options {
	return core.Options{
		Subheaps:        4,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      16,
		HeapID:          0xD1FF,
		CrashTracking:   true,
		ScrubOnLoad:     true,
	}
}

// diffBlock is one live allocation and the payload it must preserve.
type diffBlock struct {
	p   core.NVMPtr
	pat []byte
}

// diffSchedule drives one worker's deterministic schedule on its pinned
// shard: first verify and free every block inherited from the previous
// phase, then run a seeded alloc/write/verify/free mix. It returns the
// op-outcome trace (the behavioral fingerprint) and the blocks left live.
func diffSchedule(h *core.Heap, w, phase, ops int, inherit []diffBlock) ([]string, []diffBlock, error) {
	th, err := h.ThreadOn(w)
	if err != nil {
		return nil, nil, err
	}
	defer th.Close()
	var trace []string
	for i, blk := range inherit {
		got := make([]byte, len(blk.pat))
		if err := th.Read(blk.p, 0, got); err != nil {
			return nil, nil, fmt.Errorf("worker %d: inherited block %d: %w", w, i, err)
		}
		if !bytes.Equal(got, blk.pat) {
			return nil, nil, fmt.Errorf("worker %d: inherited block %d payload corrupted", w, i)
		}
		if err := th.Free(blk.p); err != nil {
			return nil, nil, fmt.Errorf("worker %d: freeing inherited block %d: %w", w, i, err)
		}
		trace = append(trace, fmt.Sprintf("inherit-free:%d:ok", len(blk.pat)))
	}
	rng := rand.New(rand.NewSource(int64(phase*1000 + w)))
	var live []diffBlock
	for i := 0; i < ops; i++ {
		if len(live) > 24 || (len(live) > 0 && rng.Intn(3) == 0) {
			k := rng.Intn(len(live))
			got := make([]byte, len(live[k].pat))
			if err := th.Read(live[k].p, 0, got); err != nil {
				return nil, nil, fmt.Errorf("worker %d op %d: read: %w", w, i, err)
			}
			if !bytes.Equal(got, live[k].pat) {
				return nil, nil, fmt.Errorf("worker %d op %d: payload corrupted before free", w, i)
			}
			if err := th.Free(live[k].p); err != nil {
				return nil, nil, fmt.Errorf("worker %d op %d: free: %w", w, i, err)
			}
			trace = append(trace, fmt.Sprintf("free:%d:ok", len(live[k].pat)))
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(rng.Intn(2048) + 16)
		p, err := th.Alloc(size)
		if err != nil {
			trace = append(trace, fmt.Sprintf("alloc:%d:err", size))
			continue
		}
		pat := make([]byte, size)
		for j := range pat {
			pat[j] = byte(w*131 + i*7 + j)
		}
		if err := th.Persist(p, 0, pat); err != nil {
			return nil, nil, fmt.Errorf("worker %d op %d: write: %w", w, i, err)
		}
		trace = append(trace, fmt.Sprintf("alloc:%d:ok", size))
		live = append(live, diffBlock{p: p, pat: pat})
	}
	return trace, live, nil
}

// diffPhase runs the schedule for every worker concurrently (the -race
// payoff) and returns per-worker traces and live sets.
func diffPhase(t *testing.T, h *core.Heap, phase, ops int, inherit [][]diffBlock) ([][]string, [][]diffBlock) {
	t.Helper()
	workers := h.Subheaps()
	traces := make([][]string, workers)
	lives := make([][]diffBlock, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var in []diffBlock
			if inherit != nil {
				in = inherit[w]
			}
			traces[w], lives[w], errs[w] = diffSchedule(h, w, phase, ops, in)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("phase %d worker %d: %v", phase, w, err)
		}
	}
	return traces, lives
}

func crashReload(t *testing.T, h *core.Heap, what string) *core.Heap {
	t.Helper()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()
	h2, err := core.Load(h.Device(), repairDiffOptions())
	if err != nil {
		t.Fatalf("%s: Load: %v", what, err)
	}
	return h2
}

// TestRepairedSubheapBehavesIdentically is the differential oracle for
// satellite (c): corruption, quarantine and repair on heap A must be
// invisible to the workload when compared op-for-op against the
// never-corrupted heap B.
func TestRepairedSubheapBehavesIdentically(t *testing.T) {
	const ops = 200
	hA, err := core.Create(repairDiffOptions())
	if err != nil {
		t.Fatal(err)
	}
	hB, err := core.Create(repairDiffOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: identical concurrent schedules on both heaps.
	trA1, liveA := diffPhase(t, hA, 1, ops, nil)
	trB1, liveB := diffPhase(t, hB, 1, ops, nil)
	if !reflect.DeepEqual(trA1, trB1) {
		t.Fatal("phase 1 op traces diverge before any corruption — schedule is not deterministic")
	}
	if len(liveA[0]) == 0 {
		t.Fatal("phase 1 left no live blocks on worker 0")
	}

	// Corrupt only heap A: one bit in the record of worker 0's first live
	// block, then power-cycle both heaps identically.
	victim := liveA[0][0].p
	slot, err := hA.RecordSlot(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := hA.Device().InjectBitFlip(slot+8, 0); err != nil {
		t.Fatal(err)
	}
	hA = crashReload(t, hA, "heap A")
	defer hA.Close()
	hB = crashReload(t, hB, "heap B")
	defer hB.Close()

	if got := hA.Stats().QuarantinedSubheaps; got != 1 {
		t.Fatalf("heap A QuarantinedSubheaps = %d, want 1", got)
	}
	if got := hB.Stats().QuarantinedSubheaps; got != 0 {
		t.Fatalf("heap B QuarantinedSubheaps = %d, want 0", got)
	}

	// Heal heap A; from here on the two heaps must be indistinguishable.
	n, err := hA.RepairAll()
	if err != nil {
		t.Fatalf("RepairAll: %v", err)
	}
	if n != 1 {
		t.Fatalf("RepairAll repaired %d, want 1", n)
	}
	if got := hA.Health(); got != core.StateHealthy {
		t.Fatalf("heap A Health = %v, want healthy", got)
	}
	if got := hA.Stats().RepairedSubheaps; got != 1 {
		t.Fatalf("heap A RepairedSubheaps = %d, want 1", got)
	}

	// Phase 2: identical concurrent schedules again, each worker first
	// verifying and freeing everything it kept from phase 1 — including
	// heap A's once-corrupted victim block.
	trA2, _ := diffPhase(t, hA, 2, ops, liveA)
	trB2, _ := diffPhase(t, hB, 2, ops, liveB)
	if !reflect.DeepEqual(trA2, trB2) {
		for w := range trA2 {
			if !reflect.DeepEqual(trA2[w], trB2[w]) {
				t.Errorf("worker %d traces diverge (len %d vs %d)", w, len(trA2[w]), len(trB2[w]))
			}
		}
		t.Fatal("phase 2 op traces diverge between repaired and never-corrupted heap")
	}

	// Census fingerprint: identical schedules must leave identical block
	// counts. (Free-list shape may differ — repair rethreads by offset —
	// but that is not observable through the allocation API.)
	repA, err := hA.Check()
	if err != nil {
		t.Fatal(err)
	}
	repB, err := hB.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !repA.OK() || !repA.Healthy() {
		t.Fatalf("heap A final audit: OK=%v Healthy=%v problems=%v", repA.OK(), repA.Healthy(), repA.Problems)
	}
	if !repB.OK() || !repB.Healthy() {
		t.Fatalf("heap B final audit: OK=%v Healthy=%v problems=%v", repB.OK(), repB.Healthy(), repB.Problems)
	}
	if repA.AllocatedBlocks != repB.AllocatedBlocks {
		t.Fatalf("live-block census diverges: repaired=%d pristine=%d",
			repA.AllocatedBlocks, repB.AllocatedBlocks)
	}
}
