package alloctest

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"poseidon/internal/core"
)

// combineDiffOptions builds the geometry the combined-commit differential
// runs on: ONE sub-heap shared by four workers, so every operation contends
// on the same lock and the combining array actually fills.
func combineDiffOptions(combined bool) core.Options {
	return core.Options{
		Subheaps:        1,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 512 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0x5EA1,
		CrashTracking:   true,
		CombinedCommits: combined,
	}
}

// combineEndState is the mode-independent fingerprint of a finished
// schedule. Block addresses are deliberately absent: combining reorders
// carves within a group, so addresses may differ while the logical heap
// content must not.
type combineEndState struct {
	LiveSizes       []uint64 // sorted live block sizes (single sub-heap)
	AllocatedBlocks uint64
	Allocs          uint64
	TxAllocs        uint64
	Frees           uint64
	DoubleFrees     uint64
	InvalidFrees    uint64
}

const (
	combineWorkers = 4
	combineRounds  = 6
	combineBatch   = 24
)

// combineSchedule runs the randomized multi-worker schedule on one heap and
// returns its fingerprint. Each worker frees its OWN previous batch and
// draws sizes from an rng seeded only by (round, worker), so the operation
// multiset is independent of goroutine interleaving and of the mode under
// test. Every third allocation is transactional (committed immediately),
// exercising the micro-log hook inside the group commit window — the
// leader appends through the publishing waiter's window, which is the
// cross-thread traffic the race detector watches.
func combineSchedule(t *testing.T, combined bool) combineEndState {
	t.Helper()
	h, err := core.Create(combineDiffOptions(combined))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	threads := make([]*core.Thread, combineWorkers)
	for w := range threads {
		th, err := h.ThreadOn(0)
		if err != nil {
			t.Fatal(err)
		}
		threads[w] = th
	}

	prev := make([][]core.NVMPtr, combineWorkers)
	for round := 0; round < combineRounds; round++ {
		next := make([][]core.NVMPtr, combineWorkers)
		var wg sync.WaitGroup
		errs := make([]error, combineWorkers)
		for w := 0; w < combineWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := threads[w]
				for _, p := range prev[w] {
					if err := th.Free(p); err != nil {
						errs[w] = fmt.Errorf("round %d worker %d free: %w", round, w, err)
						return
					}
				}
				rng := rand.New(rand.NewSource(int64(round)<<8 | int64(w)))
				batch := make([]core.NVMPtr, 0, combineBatch)
				for i := 0; i < combineBatch; i++ {
					size := 64 + uint64(rng.Intn(960))
					var p core.NVMPtr
					var err error
					if i%3 == 0 {
						p, err = th.TxAlloc(size, true)
					} else {
						p, err = th.Alloc(size)
					}
					if err != nil {
						errs[w] = fmt.Errorf("round %d worker %d alloc %d: %w", round, w, i, err)
						return
					}
					batch = append(batch, p)
				}
				next[w] = batch
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		prev = next
	}

	// Deterministic error tail: three double frees and one interior-pointer
	// free. The combined path rejects these at stage time against the chained
	// batch view; the legacy path rejects them off the device record — the
	// counters must agree regardless.
	doomed := make([]core.NVMPtr, 3)
	for i := range doomed {
		if doomed[i], err = threads[0].Alloc(128); err != nil {
			t.Fatal(err)
		}
	}
	victim, err := threads[0].Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range doomed {
		if err := threads[0].Free(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range doomed {
		if err := threads[0].Free(p); !errors.Is(err, core.ErrDoubleFree) {
			t.Fatalf("injected double free: %v", err)
		}
	}
	interior := core.PtrFromLoc(h.HeapID(), victim.Loc()+64)
	if err := threads[0].Free(interior); !errors.Is(err, core.ErrInvalidFree) {
		t.Fatalf("injected invalid free: %v", err)
	}

	// Deterministic group tail: natural combining needs publishers to
	// actually collide, which a single-core run may never produce (the
	// uncontended fast path takes the legacy body). Drive one alloc group and
	// one free group explicitly in combined mode, and the same operation
	// multiset as plain calls in legacy mode — alloc-then-free of identical
	// sizes, so the fingerprint (live set, counters) is mode-independent.
	tailSizes := []uint64{64, 128, 256, 512}
	if combined {
		ptrs, perOp, err := h.CombineAllocBurst(0, tailSizes)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range perOp {
			if e != nil {
				t.Fatalf("tail burst alloc %d: %v", i, e)
			}
		}
		perOp, err = h.CombineFreeBurst(ptrs)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range perOp {
			if e != nil {
				t.Fatalf("tail burst free %d: %v", i, e)
			}
		}
	} else {
		tail := make([]core.NVMPtr, len(tailSizes))
		for i, sz := range tailSizes {
			if tail[i], err = threads[0].Alloc(sz); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range tail {
			if err := threads[0].Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}

	state := combineEndState{}
	record := func(p core.NVMPtr) {
		size, err := threads[0].BlockSize(p)
		if err != nil {
			t.Fatalf("live block %v lost: %v", p, err)
		}
		if size < 64 || size&(size-1) != 0 {
			t.Fatalf("live block %v has non-class size %d", p, size)
		}
		state.LiveSizes = append(state.LiveSizes, size)
	}
	for _, batch := range prev {
		for _, p := range batch {
			record(p)
		}
	}
	record(victim)
	sort.Slice(state.LiveSizes, func(i, j int) bool {
		return state.LiveSizes[i] < state.LiveSizes[j]
	})

	report, err := h.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit (combined=%v): %v", combined, report.Problems)
	}
	st := h.Stats()
	if combined && (st.CombinedCommits < 2 || st.CombinedOps < 2*uint64(len(tailSizes))) {
		t.Fatalf("combined mode group activity too low: %d commits / %d ops",
			st.CombinedCommits, st.CombinedOps)
	}
	if !combined && (st.CombinedCommits != 0 || st.CombinedOps != 0) {
		t.Fatalf("legacy mode recorded combined activity: %d commits / %d ops",
			st.CombinedCommits, st.CombinedOps)
	}
	state.AllocatedBlocks = report.AllocatedBlocks
	state.Allocs = st.Allocs
	state.TxAllocs = st.TxAllocs
	state.Frees = st.Frees
	state.DoubleFrees = st.DoubleFrees
	state.InvalidFrees = st.InvalidFrees

	for _, th := range threads {
		th.Close()
	}
	return state
}

// TestCombineDifferential is the differential/property layer of the
// flat-combining commit path: the same randomized multi-worker schedule
// runs once with CombinedCommits and once on the legacy per-op path, and
// the two heaps must agree on every observable that defines heap content —
// live block size multiset, allocated-block count from the fsck-style
// audit, and the accepted/rejected operation counters. Run it under -race:
// the publish/claim protocol and the leader's micro-log appends through
// waiters' windows are exactly the cross-thread traffic the detector
// watches.
func TestCombineDifferential(t *testing.T) {
	legacy := combineSchedule(t, false)
	combined := combineSchedule(t, true)

	if legacy.DoubleFrees != 3 || legacy.InvalidFrees != 1 {
		t.Fatalf("legacy injected-error counters: %+v", legacy)
	}
	if !reflect.DeepEqual(legacy, combined) {
		t.Fatalf("end states diverge:\nlegacy:   %+v\ncombined: %+v", legacy, combined)
	}
}
