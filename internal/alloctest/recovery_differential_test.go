package alloctest

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

// The differential recovery suite is the tentpole's oracle: the SAME
// crashed image, recovered once with the legacy serial path
// (RecoveryParallelism 1) and once with an 8-way fan-out, must be
// indistinguishable — identical audit reports, identical recovery
// counters, an identical surviving-pointer fingerprint, and (the strongest
// form) bit-identical persistent images. The schedules are randomized and
// concurrent so -race patrols the worker pool while the assertions patrol
// its semantics.

func recoveryDiffOptions(par int) core.Options {
	return core.Options{
		Subheaps:            8,
		SubheapUserSize:     1 << 20,
		SubheapMetaSize:     256 << 10,
		UndoLogSize:         64 << 10,
		MaxThreads:          16,
		HeapID:              0xD1F2,
		CrashTracking:       true,
		ScrubOnLoad:         true,
		RemoteFreeRings:     true,
		Magazines:           core.MagazineOptions{Capacity: 16, Classes: 4},
		RecoveryParallelism: par,
	}
}

// recProbe is a pre-crash allocation the post-recovery fingerprint probes.
type recProbe struct {
	p   core.NVMPtr
	pat []byte
}

// recoverySchedule drives one worker's seeded mess on its pinned shard:
// plain allocs with persisted payloads, local and cross-shard frees
// (exercising the remote-free rings), magazine-class churn, committed
// transactions — and it deliberately leaves its thread open with an
// uncommitted transaction in flight, so every micro-log lane has rollback
// work when the crash lands.
func recoverySchedule(h *core.Heap, w, seed, ops int) ([]recProbe, error) {
	th, err := h.ThreadOn(w)
	if err != nil {
		return nil, err
	}
	// No Close: the crash must catch magazines populated and the lane open.
	rng := rand.New(rand.NewSource(int64(seed*1000 + w)))
	var probes []recProbe
	var live []core.NVMPtr
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0: // magazine-class churn (64..512 bytes, classes 0..3)
			p, err := th.Alloc(uint64(64 << rng.Intn(3)))
			if err != nil {
				return nil, fmt.Errorf("worker %d op %d: mag alloc: %w", w, i, err)
			}
			live = append(live, p)
		case 1: // larger block with a persisted payload we can probe later
			size := uint64(rng.Intn(1024) + 600)
			p, err := th.Alloc(size)
			if err != nil {
				return nil, fmt.Errorf("worker %d op %d: alloc: %w", w, i, err)
			}
			pat := make([]byte, 32)
			for j := range pat {
				pat[j] = byte(w*151 + i*13 + j)
			}
			if err := th.Persist(p, 0, pat); err != nil {
				return nil, fmt.Errorf("worker %d op %d: persist: %w", w, i, err)
			}
			probes = append(probes, recProbe{p: p, pat: pat})
			live = append(live, p)
		case 2: // free something local or remote (the ring path)
			if len(live) == 0 {
				continue
			}
			k := rng.Intn(len(live))
			if err := th.Free(live[k]); err != nil {
				return nil, fmt.Errorf("worker %d op %d: free: %w", w, i, err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		case 3: // committed transaction: durable, survives recovery
			if _, err := th.TxAlloc(uint64(rng.Intn(512)+64), true); err != nil {
				return nil, fmt.Errorf("worker %d op %d: tx commit: %w", w, i, err)
			}
		case 4: // cross-shard free of another worker's class: ring traffic
			if len(live) < 2 {
				continue
			}
			if err := th.Free(live[0]); err != nil {
				return nil, fmt.Errorf("worker %d op %d: remote free: %w", w, i, err)
			}
			live = live[1:]
		}
	}
	// Leave an uncommitted transaction open: recovery must roll it back.
	for k := 0; k < 3; k++ {
		if _, err := th.TxAlloc(uint64(128<<k), false); err != nil {
			return nil, fmt.Errorf("worker %d: open tx alloc %d: %w", w, k, err)
		}
	}
	return probes, nil
}

// buildCrashedImage runs the concurrent schedules, crashes with a seeded
// random eviction and saves the torn image for repeated recovery.
func buildCrashedImage(t *testing.T, seed int) (string, []recProbe) {
	t.Helper()
	h, err := core.Create(recoveryDiffOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	workers := h.Subheaps()
	probesBy := make([][]recProbe, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			probesBy[w], errs[w] = recoverySchedule(h, w, seed, 120)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Undrained ring traffic: shard 0 frees one block owned by each other
	// shard. The owners never run again before the crash, so the entries
	// sit persisted in the rings for recovery to replay.
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w < workers; w++ {
		if len(probesBy[w]) == 0 {
			continue
		}
		if err := th0.Free(probesBy[w][0].p); err != nil {
			t.Fatalf("cross-shard free into shard %d's ring: %v", w, err)
		}
	}
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: int64(seed)}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("diff-%d.img", seed))
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var probes []recProbe
	for _, ps := range probesBy {
		probes = append(probes, ps...)
	}
	return path, probes
}

// recoveryFingerprint is everything one recovery of the image exposes: the
// audit report, the parallelism-independent counters, the recovered image
// bytes, and a read-only probe trace over every pre-crash allocation
// (block size lookup + payload checksum — the surviving-pointer set).
type recoveryFingerprint struct {
	report core.CheckReport
	stats  map[string]uint64
	image  []byte
	probes []string
}

func fingerprintRecovery(t *testing.T, path string, par int, probes []recProbe) recoveryFingerprint {
	t.Helper()
	dev, err := nvm.LoadFile(path, nvm.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.Load(dev, recoveryDiffOptions(par))
	if err != nil {
		t.Fatalf("Load (parallelism %d): %v", par, err)
	}
	defer h.Close()

	var fp recoveryFingerprint
	// Snapshot the image FIRST: the probe pass below is read-only, but the
	// byte comparison must cover exactly what recovery produced.
	snap := filepath.Join(t.TempDir(), "snap.img")
	if err := h.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	if fp.image, err = os.ReadFile(snap); err != nil {
		t.Fatal(err)
	}

	if fp.report, err = h.Check(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	fp.stats = map[string]uint64{
		// PermissionSwitches is excluded by design: recovery workers issue
		// their own grant/revoke pairs, so the switch count scales with the
		// pool width while nothing persistent changes.
		"recoveredBlocks":     st.RecoveredBlocks,
		"recoveredNoops":      st.RecoveredNoops,
		"recoveredCached":     st.RecoveredCached,
		"invalidFrees":        st.InvalidFrees,
		"doubleFrees":         st.DoubleFrees,
		"remoteDrains":        st.RemoteDrains,
		"quarantinedSubheaps": st.QuarantinedSubheaps,
		"quarantinedBytes":    st.QuarantinedBytes,
	}

	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	for _, pr := range probes {
		size, err := th.BlockSize(pr.p)
		if err != nil {
			fp.probes = append(fp.probes, fmt.Sprintf("gone:%v", err))
			continue
		}
		got := make([]byte, len(pr.pat))
		if err := th.Read(pr.p, 0, got); err != nil {
			fp.probes = append(fp.probes, fmt.Sprintf("unreadable:%v", err))
			continue
		}
		fp.probes = append(fp.probes, fmt.Sprintf("live:%d:%08x:%v",
			size, crc32.ChecksumIEEE(got), bytes.Equal(got, pr.pat)))
	}
	return fp
}

// TestDifferentialParallelRecovery recovers the same randomized crashed
// images serially and with an 8-way fan-out and requires the two
// recoveries to be indistinguishable, down to the persistent image bytes.
func TestDifferentialParallelRecovery(t *testing.T) {
	var sawTx, sawCached, sawDrains bool
	for seed := 1; seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			path, probes := buildCrashedImage(t, seed)
			serial := fingerprintRecovery(t, path, 1, probes)
			fanout := fingerprintRecovery(t, path, 8, probes)

			if !reflect.DeepEqual(serial.report, fanout.report) {
				t.Errorf("audit reports diverge:\nserial:  %+v\nfanout: %+v", serial.report, fanout.report)
			}
			if !reflect.DeepEqual(serial.stats, fanout.stats) {
				t.Errorf("recovery counters diverge:\nserial:  %v\nfanout: %v", serial.stats, fanout.stats)
			}
			if !reflect.DeepEqual(serial.probes, fanout.probes) {
				for i := range serial.probes {
					if serial.probes[i] != fanout.probes[i] {
						t.Errorf("probe %d diverges: serial %q, fanout %q", i, serial.probes[i], fanout.probes[i])
						break
					}
				}
				t.Error("surviving-pointer fingerprints diverge")
			}
			if !bytes.Equal(serial.image, fanout.image) {
				n := 0
				for i := range serial.image {
					if serial.image[i] != fanout.image[i] {
						n++
					}
				}
				t.Errorf("recovered images differ in %d bytes — the fan-out is not byte-identical", n)
			}
			if !serial.report.OK() {
				t.Errorf("recovery audit found problems: %v", serial.report.Problems)
			}
			if serial.stats["recoveredBlocks"] > 0 {
				sawTx = true
			}
			if serial.stats["recoveredCached"] > 0 {
				sawCached = true
			}
			if serial.stats["remoteDrains"] > 0 {
				sawDrains = true
			}
		})
	}
	// Coverage guards: a sweep that never exercised lane rollback, magazine
	// reclaim or ring replay would be vacuously green.
	if !sawTx {
		t.Error("no seed exercised micro-log rollback")
	}
	if !sawCached {
		t.Error("no seed exercised magazine-manifest reclaim")
	}
	if !sawDrains {
		t.Error("no seed exercised remote-free ring replay")
	}
}
