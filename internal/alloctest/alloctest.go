// Package alloctest is a conformance test suite run against every
// allocator in the repository (Poseidon, the PMDK-like baseline and the
// Makalu-like baseline). It checks the contract the benchmarks rely on:
// blocks are distinct, data round-trips, freed memory is reusable, and the
// allocator survives concurrent mixed workloads without handing the same
// memory to two owners.
package alloctest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"poseidon/internal/alloc"
)

// Factory builds a fresh allocator for one subtest.
type Factory func(t *testing.T) alloc.Allocator

// Run executes the conformance suite against the factory's allocator.
func Run(t *testing.T, f Factory) {
	t.Run("AllocFreeRoundTrip", func(t *testing.T) { testRoundTrip(t, f) })
	t.Run("VariedSizes", func(t *testing.T) { testVariedSizes(t, f) })
	t.Run("DistinctLivePointers", func(t *testing.T) { testDistinct(t, f) })
	t.Run("ReuseAfterFree", func(t *testing.T) { testReuse(t, f) })
	t.Run("DataIntegrityUnderChurn", func(t *testing.T) { testChurn(t, f) })
	t.Run("ConcurrentStress", func(t *testing.T) { testConcurrent(t, f) })
}

func handle(t *testing.T, a alloc.Allocator, shard int) alloc.Handle {
	t.Helper()
	h, err := a.Thread(shard)
	if err != nil {
		t.Fatalf("Thread(%d): %v", shard, err)
	}
	return h
}

func testRoundTrip(t *testing.T, f Factory) {
	a := f(t)
	defer a.Close()
	h := handle(t, a, 0)
	defer h.Close()
	p, err := h.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("nil pointer returned")
	}
	want := []byte("conformance payload 0123456789")
	if err := h.Write(p, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := h.Persist(p, 0, uint64(len(want))); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := h.Read(p, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q", got)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
}

func testVariedSizes(t *testing.T, f Factory) {
	a := f(t)
	defer a.Close()
	h := handle(t, a, 0)
	defer h.Close()
	sizes := []uint64{1, 8, 63, 64, 65, 255, 256, 400, 401, 4096, 64 << 10, 512 << 10, 2 << 20}
	for _, size := range sizes {
		p, err := h.Alloc(size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		// First and last byte are usable.
		if err := h.Write(p, 0, []byte{0xAA}); err != nil {
			t.Fatalf("size %d first byte: %v", size, err)
		}
		if err := h.Write(p, size-1, []byte{0xBB}); err != nil {
			t.Fatalf("size %d last byte: %v", size, err)
		}
		if err := h.Free(p); err != nil {
			t.Fatalf("Free(size %d): %v", size, err)
		}
	}
}

func testDistinct(t *testing.T, f Factory) {
	a := f(t)
	defer a.Close()
	h := handle(t, a, 0)
	defer h.Close()
	seen := map[alloc.Ptr]bool{}
	for i := 0; i < 3000; i++ {
		p, err := h.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("pointer %#x handed out twice while live", p)
		}
		seen[p] = true
	}
}

func testReuse(t *testing.T, f Factory) {
	a := f(t)
	defer a.Close()
	h := handle(t, a, 0)
	defer h.Close()
	const rounds, n = 5, 500
	for r := 0; r < rounds; r++ {
		ptrs := make([]alloc.Ptr, 0, n)
		for i := 0; i < n; i++ {
			p, err := h.Alloc(256)
			if err != nil {
				t.Fatalf("round %d alloc %d: %v", r, i, err)
			}
			ptrs = append(ptrs, p)
		}
		for _, p := range ptrs {
			if err := h.Free(p); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
	}
}

func testChurn(t *testing.T, f Factory) {
	a := f(t)
	defer a.Close()
	h := handle(t, a, 0)
	defer h.Close()
	rng := rand.New(rand.NewSource(7))
	type obj struct {
		p    alloc.Ptr
		size uint64
		tag  byte
	}
	var live []obj
	check := func(o obj) {
		buf := make([]byte, 16)
		if err := h.Read(o.p, 0, buf); err != nil {
			t.Fatal(err)
		}
		for _, v := range buf {
			if v != o.tag {
				t.Fatalf("block %#x (tag %d) corrupted: %v — another block overlapped it", o.p, o.tag, buf)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		if len(live) > 64 || (len(live) > 0 && rng.Intn(3) == 0) {
			k := rng.Intn(len(live))
			check(live[k])
			if err := h.Free(live[k].p); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(rng.Intn(2048) + 16)
		p, err := h.Alloc(size)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		o := obj{p: p, size: size, tag: byte(i%250 + 1)}
		if err := h.Write(p, 0, bytes.Repeat([]byte{o.tag}, 16)); err != nil {
			t.Fatal(err)
		}
		live = append(live, o)
	}
	for _, o := range live {
		check(o)
	}
}

func testConcurrent(t *testing.T, f Factory) {
	a := f(t)
	defer a.Close()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := a.Thread(w)
			if err != nil {
				errs <- err
				return
			}
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			tag := byte(w + 1)
			type obj struct{ p alloc.Ptr }
			var live []obj
			for i := 0; i < 500; i++ {
				if len(live) > 16 || (len(live) > 0 && rng.Intn(3) == 0) {
					k := rng.Intn(len(live))
					buf := make([]byte, 8)
					if err := h.Read(live[k].p, 0, buf); err != nil {
						errs <- err
						return
					}
					for _, v := range buf {
						if v != tag {
							errs <- fmt.Errorf("worker %d: block %#x corrupted (%v) — cross-thread overlap", w, live[k].p, buf)
							return
						}
					}
					if err := h.Free(live[k].p); err != nil {
						errs <- err
						return
					}
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				p, err := h.Alloc(uint64(rng.Intn(1024) + 8))
				if errors.Is(err, alloc.ErrOutOfMemory) {
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if err := h.Write(p, 0, bytes.Repeat([]byte{tag}, 8)); err != nil {
					errs <- err
					return
				}
				live = append(live, obj{p: p})
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
