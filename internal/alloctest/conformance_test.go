package alloctest

import (
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/makalu"
	"poseidon/internal/pmdkalloc"
)

func TestPoseidonConformance(t *testing.T) {
	Run(t, func(t *testing.T) alloc.Allocator {
		a, err := alloc.NewPoseidon(core.Options{
			Subheaps:        4,
			SubheapUserSize: 8 << 20,
			SubheapMetaSize: 2 << 20,
			UndoLogSize:     64 << 10,
			MaxThreads:      32,
			HeapID:          42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	})
}

func TestPMDKConformance(t *testing.T) {
	Run(t, func(t *testing.T) alloc.Allocator {
		a, err := pmdkalloc.New(pmdkalloc.Options{Capacity: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return a
	})
}

func TestMakaluConformance(t *testing.T) {
	Run(t, func(t *testing.T) alloc.Allocator {
		a, err := makalu.New(makalu.Options{Capacity: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return a
	})
}
