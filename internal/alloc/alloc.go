// Package alloc defines the allocator interface shared by Poseidon and the
// two baseline allocators (the PMDK-like and Makalu-like reproductions), so
// the benchmark harness and the conformance test suite can drive all three
// identically — the shape of the paper's evaluation.
package alloc

import (
	"errors"

	"poseidon/internal/core"
)

// Ptr is an allocator-specific persistent pointer handle. Zero is never a
// valid pointer.
type Ptr uint64

// Common error classes the conformance suite checks for. Implementations
// wrap or alias these.
var (
	// ErrOutOfMemory means the allocator cannot satisfy the request.
	ErrOutOfMemory = errors.New("alloc: out of memory")
	// ErrBadFree means a free was rejected (invalid address or double
	// free). Allocators that do NOT detect bad frees — the point of the
	// paper's safety comparison — corrupt themselves instead of returning
	// this.
	ErrBadFree = errors.New("alloc: bad free")
)

// Handle is a per-thread allocation context. A Handle must not be used
// concurrently from multiple goroutines; create one per worker.
type Handle interface {
	// Alloc returns a block of at least size bytes.
	Alloc(size uint64) (Ptr, error)
	// Free releases a block.
	Free(p Ptr) error
	// Write stores b at byte off of block p.
	Write(p Ptr, off uint64, b []byte) error
	// Read loads len(b) bytes from byte off of block p.
	Read(p Ptr, off uint64, b []byte) error
	// WriteU64 stores one word at byte off of block p.
	WriteU64(p Ptr, off uint64, v uint64) error
	// ReadU64 loads one word from byte off of block p.
	ReadU64(p Ptr, off uint64) (uint64, error)
	// Persist makes [off, off+n) of block p durable (flush + fence).
	Persist(p Ptr, off, n uint64) error
	// Close releases the handle.
	Close()
}

// Allocator is one persistent memory allocator under test.
type Allocator interface {
	// Name identifies the allocator in benchmark output.
	Name() string
	// Shards returns the parallelism the allocator was configured for.
	Shards() int
	// Thread creates a per-worker handle, pinned to the given shard when
	// the allocator supports placement (shard is a hint; implementations
	// may ignore it).
	Thread(shard int) (Handle, error)
	// Close releases the allocator.
	Close() error
}

// Poseidon adapts a core.Heap to the Allocator interface.
type Poseidon struct {
	heap *core.Heap
}

var _ Allocator = (*Poseidon)(nil)

// NewPoseidon creates a Poseidon heap with the given options.
func NewPoseidon(opts core.Options) (*Poseidon, error) {
	h, err := core.Create(opts)
	if err != nil {
		return nil, err
	}
	return &Poseidon{heap: h}, nil
}

// WrapPoseidon adapts an existing heap.
func WrapPoseidon(h *core.Heap) *Poseidon { return &Poseidon{heap: h} }

// Heap returns the underlying heap.
func (a *Poseidon) Heap() *core.Heap { return a.heap }

// Name implements Allocator.
func (a *Poseidon) Name() string { return "poseidon" }

// Shards implements Allocator.
func (a *Poseidon) Shards() int { return a.heap.Subheaps() }

// Thread implements Allocator.
func (a *Poseidon) Thread(shard int) (Handle, error) {
	t, err := a.heap.ThreadOn(shard % a.heap.Subheaps())
	if err != nil {
		return nil, err
	}
	return &poseidonHandle{t: t, heapID: a.heap.HeapID()}, nil
}

// Close implements Allocator.
func (a *Poseidon) Close() error { return a.heap.Close() }

// poseidonHandle encodes core.NVMPtr locations (+1 so offset 0 stays
// distinguishable from the nil Ptr) into the interface's Ptr word.
type poseidonHandle struct {
	t      *core.Thread
	heapID uint64
}

var _ Handle = (*poseidonHandle)(nil)

func (h *poseidonHandle) encode(p core.NVMPtr) Ptr { return Ptr(p.Loc() + 1) }

func (h *poseidonHandle) decode(p Ptr) core.NVMPtr {
	return core.PtrFromLoc(h.heapID, uint64(p)-1)
}

func (h *poseidonHandle) Alloc(size uint64) (Ptr, error) {
	p, err := h.t.Alloc(size)
	if err != nil {
		if errors.Is(err, core.ErrOutOfMemory) {
			return 0, ErrOutOfMemory
		}
		return 0, err
	}
	return h.encode(p), nil
}

func (h *poseidonHandle) Free(p Ptr) error {
	err := h.t.Free(h.decode(p))
	if errors.Is(err, core.ErrInvalidFree) || errors.Is(err, core.ErrDoubleFree) ||
		errors.Is(err, core.ErrBadPointer) {
		return ErrBadFree
	}
	return err
}

func (h *poseidonHandle) Write(p Ptr, off uint64, b []byte) error {
	return h.t.Write(h.decode(p), off, b)
}

func (h *poseidonHandle) Read(p Ptr, off uint64, b []byte) error {
	return h.t.Read(h.decode(p), off, b)
}

func (h *poseidonHandle) WriteU64(p Ptr, off uint64, v uint64) error {
	return h.t.WriteU64(h.decode(p), off, v)
}

func (h *poseidonHandle) ReadU64(p Ptr, off uint64) (uint64, error) {
	return h.t.ReadU64(h.decode(p), off)
}

func (h *poseidonHandle) Persist(p Ptr, off, n uint64) error {
	return h.t.Flush(h.decode(p), off, n)
}

func (h *poseidonHandle) Close() { h.t.Close() }
