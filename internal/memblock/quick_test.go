package memblock

import (
	"testing"
	"testing/quick"
)

// Property: ClassOf always returns the smallest class whose size holds the
// request, and ClassSize∘ClassOf is idempotent.
func TestQuickClassOfProperties(t *testing.T) {
	g, err := ComputeGeometry(testMetaBase, testMetaSize, testUserBase, testUserSize)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		size := raw%g.UserSize + 1
		c, err := g.ClassOf(size)
		if err != nil {
			return false
		}
		if g.ClassSize(c) < size {
			return false // class too small
		}
		if c > 0 && g.ClassSize(c-1) >= size {
			return false // not minimal
		}
		// Idempotence: a class-sized request maps to the same class.
		c2, err := g.ClassOf(g.ClassSize(c))
		return err == nil && c2 == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the buddy relation used by defragmentation is an involution
// that never leaves the user region and never overlaps its partner.
func TestQuickBuddyInvolution(t *testing.T) {
	g, err := ComputeGeometry(testMetaBase, testMetaSize, testUserBase, testUserSize)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawOff, rawClass uint64) bool {
		class := int(rawClass % uint64(g.NumClasses-1)) // below max: max has no buddy
		size := g.ClassSize(class)
		// A valid block offset is size-aligned within the user region.
		blocks := g.UserSize / size
		rel := (rawOff % blocks) * size
		off := g.UserBase + rel
		buddy := g.UserBase + (rel ^ size)
		if buddy < g.UserBase || buddy+size > g.UserBase+g.UserSize {
			return false
		}
		if buddy == off {
			return false
		}
		// Involution: buddy of buddy is the original.
		back := g.UserBase + (((buddy - g.UserBase) ^ size) % g.UserSize)
		if back != off {
			return false
		}
		// Disjoint, adjacent, and their union is the parent block.
		lo, hi := off, buddy
		if hi < lo {
			lo, hi = hi, lo
		}
		if hi != lo+size {
			return false
		}
		parentSize := 2 * size
		return (lo-g.UserBase)%parentSize == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashSlot stays in range and differs across levels often enough
// to spread collisions (not a constant function of the level).
func TestQuickHashSlotRange(t *testing.T) {
	f := func(key uint64, rawCap uint8) bool {
		c := uint64(1) << (uint(rawCap)%10 + 4) // 16..8192
		s := hashSlot(key|1, c)
		return s < c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Aligned keys (the real workload) must not all collapse to one slot.
	const c = 1 << 10
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[hashSlot(testUserBase+i*64, c)] = true
	}
	if len(seen) < 100 {
		t.Fatalf("aligned keys hit only %d distinct slots of %d", len(seen), c)
	}
}
