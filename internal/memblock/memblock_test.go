package memblock

import (
	"errors"
	"math/rand"
	"testing"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/plog"
	"poseidon/internal/txn"
)

const (
	testLogBase  = 0
	testLogSize  = 64 * 1024
	testMetaBase = testLogBase + testLogSize
	testMetaSize = 1 << 20
	testUserBase = 4 << 20
	testUserSize = 1 << 20
)

type fixture struct {
	w   mpk.Window
	m   *Manager
	b   *txn.Batch
	log *plog.UndoLog
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	d, err := nvm.NewDevice(nvm.Options{Capacity: 8 << 20, CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	u := mpk.NewUnit(d.Capacity())
	w := mpk.NewWindow(d, u.NewThread(mpk.RightsRW))
	g, err := ComputeGeometry(testMetaBase, testMetaSize, testUserBase, testUserSize)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(w, g)
	if err := m.Format(); err != nil {
		t.Fatal(err)
	}
	log, err := plog.OpenUndoLog(w, testLogBase, testLogSize)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{w: w, m: m, b: txn.NewBatch(w, log), log: log}
}

func (f *fixture) commit(t *testing.T) {
	t.Helper()
	if err := f.b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeGeometryErrors(t *testing.T) {
	tests := []struct {
		name               string
		metaSize, userSize uint64
	}{
		{"non-power-of-two user", 1 << 20, 1000},
		{"tiny user", 1 << 20, 32},
		{"tiny metadata", 128, 1 << 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ComputeGeometry(0, tt.metaSize, 0, tt.userSize); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestGeometryShape(t *testing.T) {
	g, err := ComputeGeometry(testMetaBase, testMetaSize, testUserBase, testUserSize)
	if err != nil {
		t.Fatal(err)
	}
	// 64 B .. 1 MiB inclusive = 15 classes.
	if g.NumClasses != 15 {
		t.Fatalf("classes = %d, want 15", g.NumClasses)
	}
	if g.MaxClass() != 14 {
		t.Fatalf("max class = %d", g.MaxClass())
	}
	if len(g.LevelOff) == 0 || len(g.LevelOff) != len(g.LevelCap) {
		t.Fatalf("levels: %d offsets, %d caps", len(g.LevelOff), len(g.LevelCap))
	}
	for i := 1; i < len(g.LevelCap); i++ {
		if g.LevelCap[i] != 2*g.LevelCap[i-1] {
			t.Fatalf("level %d cap %d, prev %d", i, g.LevelCap[i], g.LevelCap[i-1])
		}
	}
	if g.End > testMetaBase+testMetaSize {
		t.Fatalf("geometry overruns region: end %#x", g.End)
	}
	if g.ClassSize(0) != 64 {
		t.Fatalf("class 0 size = %d", g.ClassSize(0))
	}
	if g.ClassSize(g.MaxClass()) != testUserSize {
		t.Fatalf("max class size = %d", g.ClassSize(g.MaxClass()))
	}
}

func TestClassOf(t *testing.T) {
	g, err := ComputeGeometry(testMetaBase, testMetaSize, testUserBase, testUserSize)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		size uint64
		want int
	}{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2}, {4096, 6}, {testUserSize, 14},
	}
	for _, tt := range tests {
		got, err := g.ClassOf(tt.size)
		if err != nil {
			t.Fatalf("ClassOf(%d): %v", tt.size, err)
		}
		if got != tt.want {
			t.Errorf("ClassOf(%d) = %d, want %d", tt.size, got, tt.want)
		}
		if g.ClassSize(got) < tt.size {
			t.Errorf("class %d size %d < requested %d", got, g.ClassSize(got), tt.size)
		}
	}
	if _, err := g.ClassOf(0); !errors.Is(err, ErrBadSize) {
		t.Error("ClassOf(0) should fail")
	}
	if _, err := g.ClassOf(testUserSize + 1); !errors.Is(err, ErrBadSize) {
		t.Error("oversized ClassOf should fail")
	}
}

func TestInsertLookupDelete(t *testing.T) {
	f := newFixture(t)
	slot, err := f.m.Insert(f.b, testUserBase, 4096, StatusAllocated)
	if err != nil {
		t.Fatal(err)
	}
	f.commit(t)

	got, err := f.m.Lookup(f.w, testUserBase)
	if err != nil {
		t.Fatal(err)
	}
	if got != slot {
		t.Fatalf("lookup slot %#x, want %#x", got, slot)
	}
	rec, err := f.m.ReadRecord(f.w, got)
	if err != nil {
		t.Fatal(err)
	}
	if rec.BlockOff != testUserBase || rec.Size != 4096 || rec.Status != StatusAllocated {
		t.Fatalf("record = %+v", rec)
	}

	if err := f.m.Delete(f.b, slot); err != nil {
		t.Fatal(err)
	}
	f.commit(t)
	if _, err := f.m.Lookup(f.w, testUserBase); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after delete: %v", err)
	}
}

func TestLookupMissing(t *testing.T) {
	f := newFixture(t)
	if _, err := f.m.Lookup(f.w, testUserBase+64); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	f := newFixture(t)
	if _, err := f.m.Insert(f.b, testUserBase, 64, StatusFree); err != nil {
		t.Fatal(err)
	}
	f.commit(t)
	if _, err := f.m.Insert(f.b, testUserBase, 64, StatusFree); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestInsertInvalidOffsets(t *testing.T) {
	f := newFixture(t)
	if _, err := f.m.Insert(f.b, 0, 64, StatusFree); err == nil {
		t.Fatal("offset 0 accepted")
	}
	if _, err := f.m.Insert(f.b, ^uint64(0), 64, StatusFree); err == nil {
		t.Fatal("tombstone offset accepted")
	}
}

func TestTombstoneKeepsProbeChain(t *testing.T) {
	f := newFixture(t)
	// Insert enough colliding keys to chain past slot 0, then delete an
	// early one; later keys must still be found.
	c := f.m.Geometry().LevelCap[0]
	// Construct keys that collide on the same home slot in level 0.
	base := testUserBase
	var keys []uint64
	k := uint64(base)
	home := hashSlot(k, c)
	for len(keys) < 4 {
		if hashSlot(k, c) == home {
			keys = append(keys, k)
		}
		k += 64
	}
	slots := make(map[uint64]uint64)
	for _, key := range keys {
		s, err := f.m.Insert(f.b, key, 64, StatusAllocated)
		if err != nil {
			t.Fatal(err)
		}
		slots[key] = s
	}
	f.commit(t)
	if err := f.m.Delete(f.b, slots[keys[0]]); err != nil {
		t.Fatal(err)
	}
	f.commit(t)
	for _, key := range keys[1:] {
		if _, err := f.m.Lookup(f.w, key); err != nil {
			t.Fatalf("key %#x lost after earlier delete: %v", key, err)
		}
	}
	// And the tombstone is reused by the next colliding insert.
	s, err := f.m.Insert(f.b, keys[0], 64, StatusAllocated)
	if err != nil {
		t.Fatal(err)
	}
	if s != slots[keys[0]] {
		t.Fatalf("tombstone not reused: slot %#x, want %#x", s, slots[keys[0]])
	}
}

func TestProbeWindowOverflowAndExtend(t *testing.T) {
	f := newFixture(t)
	c := f.m.Geometry().LevelCap[0]
	// Fill one probe window completely with colliding keys.
	var keys []uint64
	k := uint64(testUserBase)
	home := hashSlot(k, c)
	for uint64(len(keys)) < f.m.Geometry().ProbeWindow {
		if hashSlot(k, c) == home {
			keys = append(keys, k)
		}
		k += 64
	}
	for _, key := range keys {
		if _, err := f.m.Insert(f.b, key, 64, StatusAllocated); err != nil {
			t.Fatalf("insert %#x: %v", key, err)
		}
	}
	f.commit(t)
	// Next level has different geometry, so a colliding key lands there —
	// unless level 1 also has its window full, which it is not. To force
	// ErrNoSlot we need the key's window full in *every* active level; with
	// one active level, filling level 0's window suffices if we find a key
	// colliding there. Keep scanning for one more.
	extra := k
	for hashSlot(extra, c) != home {
		extra += 64
	}
	_, err := f.m.Insert(f.b, extra, 64, StatusAllocated)
	if !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v, want ErrNoSlot", err)
	}
	// Extend and retry: now level 1 provides a slot.
	if err := f.m.ExtendLevel(f.b); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.Insert(f.b, extra, 64, StatusAllocated); err != nil {
		t.Fatalf("insert after extend: %v", err)
	}
	f.commit(t)
	if _, err := f.m.Lookup(f.w, extra); err != nil {
		t.Fatalf("lookup after extend: %v", err)
	}
	levels, err := f.m.ActiveLevels(f.w)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 2 {
		t.Fatalf("active levels = %d, want 2", levels)
	}
}

func TestExtendLevelExhausted(t *testing.T) {
	f := newFixture(t)
	n := len(f.m.Geometry().LevelCap)
	for i := 1; i < n; i++ {
		if err := f.m.ExtendLevel(f.b); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.m.ExtendLevel(f.b); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestFreeListPushPopOrder(t *testing.T) {
	f := newFixture(t)
	var slots []uint64
	for i := uint64(0); i < 3; i++ {
		s, err := f.m.Insert(f.b, testUserBase+i*64, 64, StatusFree)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.m.PushFreeTail(f.b, 0, s); err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	f.commit(t)
	if n, err := f.m.FreeListLen(f.w, 0); err != nil || n != 3 {
		t.Fatalf("len = %d (%v), want 3", n, err)
	}
	// FIFO: head is the first pushed.
	head, err := f.m.FreeHead(f.w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if head != slots[0] {
		t.Fatalf("head = %#x, want %#x", head, slots[0])
	}
	// Remove the middle element; list stays linked.
	if err := f.m.RemoveFree(f.b, 0, slots[1]); err != nil {
		t.Fatal(err)
	}
	f.commit(t)
	if n, _ := f.m.FreeListLen(f.w, 0); n != 2 {
		t.Fatalf("len after middle removal = %d", n)
	}
	// Remove head.
	if err := f.m.RemoveFree(f.b, 0, slots[0]); err != nil {
		t.Fatal(err)
	}
	f.commit(t)
	head, _ = f.m.FreeHead(f.w, 0)
	if head != slots[2] {
		t.Fatalf("head after removals = %#x, want %#x", head, slots[2])
	}
	// Remove last.
	if err := f.m.RemoveFree(f.b, 0, slots[2]); err != nil {
		t.Fatal(err)
	}
	f.commit(t)
	if n, _ := f.m.FreeListLen(f.w, 0); n != 0 {
		t.Fatalf("len after all removals = %d", n)
	}
	if head, _ := f.m.FreeHead(f.w, 0); head != 0 {
		t.Fatalf("head of empty list = %#x", head)
	}
}

func TestFreeListClassValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.m.FreeHead(f.w, -1); !errors.Is(err, ErrBadSize) {
		t.Fatal("negative class accepted")
	}
	if _, err := f.m.FreeHead(f.w, f.m.Geometry().NumClasses); !errors.Is(err, ErrBadSize) {
		t.Fatal("out-of-range class accepted")
	}
}

func TestForEachRecord(t *testing.T) {
	f := newFixture(t)
	want := map[uint64]uint64{}
	for i := uint64(0); i < 20; i++ {
		off := testUserBase + i*128
		if _, err := f.m.Insert(f.b, off, 128, StatusAllocated); err != nil {
			t.Fatal(err)
		}
		want[off] = 128
	}
	f.commit(t)
	got := map[uint64]uint64{}
	err := f.m.ForEachRecord(f.w, func(rec Record) error {
		got[rec.BlockOff] = rec.Size
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d records, want %d", len(got), len(want))
	}
	for off, size := range want {
		if got[off] != size {
			t.Fatalf("record %#x size %d, want %d", off, got[off], size)
		}
	}
}

// Model test: random inserts/deletes/lookups against a map, committed in
// random batch sizes, with occasional crashes (EvictNone) between batches.
func TestTableMatchesModel(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := newFixture(t)
		rng := rand.New(rand.NewSource(seed))
		model := map[uint64]uint64{} // blockOff -> size
		extended := false

		reopen := func() {
			// Crash and recover (logs replayed by the owner in real use;
			// here batches are always either committed or not started).
			if _, err := f.w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
				t.Fatal(err)
			}
			log, err := plog.OpenUndoLog(f.w, testLogBase, testLogSize)
			if err != nil {
				t.Fatal(err)
			}
			if err := log.Replay(); err != nil {
				t.Fatal(err)
			}
			f.b = txn.NewBatch(f.w, log)
		}

		for step := 0; step < 300; step++ {
			off := testUserBase + uint64(rng.Intn(256))*64
			switch rng.Intn(5) {
			case 0, 1: // insert
				if _, ok := model[off]; ok {
					continue
				}
				_, err := f.m.Insert(f.b, off, 64, StatusAllocated)
				if errors.Is(err, ErrNoSlot) {
					if extended {
						continue
					}
					if err := f.m.ExtendLevel(f.b); err != nil {
						t.Fatal(err)
					}
					extended = true
					if _, err := f.m.Insert(f.b, off, 64, StatusAllocated); err != nil {
						t.Fatal(err)
					}
				} else if err != nil {
					t.Fatal(err)
				}
				f.commit(t)
				model[off] = 64
			case 2: // delete
				if _, ok := model[off]; !ok {
					continue
				}
				slot, err := f.m.Lookup(f.w, off)
				if err != nil {
					t.Fatalf("seed %d step %d: model has %#x but table lost it: %v", seed, step, off, err)
				}
				if err := f.m.Delete(f.b, slot); err != nil {
					t.Fatal(err)
				}
				f.commit(t)
				delete(model, off)
			case 3: // lookup
				slot, err := f.m.Lookup(f.w, off)
				if _, ok := model[off]; ok {
					if err != nil {
						t.Fatalf("seed %d step %d: lookup(%#x): %v", seed, step, off, err)
					}
					rec, err := f.m.ReadRecord(f.w, slot)
					if err != nil {
						t.Fatal(err)
					}
					if rec.BlockOff != off {
						t.Fatalf("record key %#x, want %#x", rec.BlockOff, off)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("seed %d step %d: ghost record %#x (err=%v)", seed, step, off, err)
				}
			case 4:
				if rng.Intn(10) == 0 {
					reopen()
				}
			}
		}
		// Final audit via ForEachRecord.
		count := 0
		err := f.m.ForEachRecord(f.w, func(rec Record) error {
			count++
			if _, ok := model[rec.BlockOff]; !ok {
				t.Fatalf("seed %d: ghost record %#x", seed, rec.BlockOff)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != len(model) {
			t.Fatalf("seed %d: table has %d records, model %d", seed, count, len(model))
		}
	}
}
