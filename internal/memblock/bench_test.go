package memblock

import (
	"fmt"
	"math/rand"
	"testing"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/plog"
	"poseidon/internal/txn"
)

func benchTable(b *testing.B, metaBytes, userBytes uint64, blocks int) (*Manager, mpk.Window, []uint64) {
	b.Helper()
	d, err := nvm.NewDevice(nvm.Options{Capacity: 1<<20 + metaBytes + userBytes + 64<<20})
	if err != nil {
		b.Fatal(err)
	}
	u := mpk.NewUnit(d.Capacity())
	w := mpk.NewWindow(d, u.NewThread(mpk.RightsRW))
	g, err := ComputeGeometry(1<<20, metaBytes, 1<<20+metaBytes, userBytes)
	if err != nil {
		b.Fatal(err)
	}
	m := NewManager(w, g)
	if err := m.Format(); err != nil {
		b.Fatal(err)
	}
	log, err := plog.OpenUndoLog(w, 0, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	batch := txn.NewBatch(w, log)
	offs := make([]uint64, blocks)
	for i := 0; i < blocks; i++ {
		off := g.UserBase + uint64(i)*64
		offs[i] = off
		_, err := m.Insert(batch, off, 64, StatusAllocated)
		for err == ErrNoSlot {
			if err = m.ExtendLevel(batch); err != nil {
				b.Fatal(err)
			}
			_, err = m.Insert(batch, off, 64, StatusAllocated)
		}
		if err != nil {
			b.Fatal(err)
		}
		if batch.Len() > 512 {
			if err := batch.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := batch.Commit(); err != nil {
		b.Fatal(err)
	}
	// Shuffle so the measurement samples all levels uniformly (insertion
	// order correlates with level depth).
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(offs), func(i, j int) { offs[i], offs[j] = offs[j], offs[i] })
	return m, w, offs
}

// BenchmarkLookupVsPoolSize is the §4.7 claim as stated: with a fixed live
// population, lookup cost does not depend on the pool (heap) size — the
// hash table is keyed by offset, never scanned. Contrast PMDK's free-list
// rebuild (pmdkalloc.BenchmarkRebuildVsPoolSize), which walks the whole
// pool's chunk headers.
func BenchmarkLookupVsPoolSize(b *testing.B) {
	const blocks = 10_000
	for _, userBytes := range []uint64{64 << 20, 1 << 30, 16 << 30} {
		b.Run(fmt.Sprintf("pool=%dMiB", userBytes>>20), func(b *testing.B) {
			m, w, offs := benchTable(b, 16<<20, userBytes, blocks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Lookup(w, offs[i%blocks]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLookupVsPopulation documents the table's other axis honestly:
// as the live-block population grows, keys overflow into higher levels and
// a lookup walks more (bounded) probe windows — constant with respect to
// capacity, but a growing constant with respect to load. The paper's
// "constant time" claim is about pool size; this is the level-walk
// trade-off of the multi-level design (§8 hints at "a more advanced index
// scheme" for exactly this reason).
func BenchmarkLookupVsPopulation(b *testing.B) {
	for _, blocks := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			m, w, offs := benchTable(b, 16<<20, 64<<20, blocks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Lookup(w, offs[i%blocks]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
