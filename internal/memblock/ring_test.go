package memblock

import (
	"math/rand"
	"testing"
)

func TestRingEntryRoundTrip(t *testing.T) {
	rels := []uint64{0, 1, 63, 4096, MaxRingRel}
	for _, rel := range rels {
		for _, epoch := range []uint8{0, 1, 7, 15} {
			word := EncodeRingEntry(rel, epoch)
			if word == 0 {
				t.Fatalf("EncodeRingEntry(%d, %d) = 0; zero must mean empty", rel, epoch)
			}
			gotRel, gotEpoch, ok := DecodeRingEntry(word)
			if !ok {
				t.Fatalf("DecodeRingEntry(%#x) rejected its own encoding", word)
			}
			if gotRel != rel || gotEpoch != epoch {
				t.Fatalf("round trip (%d, %d) -> (%d, %d)", rel, epoch, gotRel, gotEpoch)
			}
		}
	}
}

func TestRingEntryEpochMasked(t *testing.T) {
	// Tickets beyond the epoch field width wrap; only the low bits survive.
	word := EncodeRingEntry(100, 0x37)
	_, epoch, ok := DecodeRingEntry(word)
	if !ok || epoch != 0x7 {
		t.Fatalf("epoch = %#x, ok = %v; want 0x7, true", epoch, ok)
	}
}

func TestRingEntrySingleBitFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		rel := rng.Uint64() % (MaxRingRel + 1)
		word := EncodeRingEntry(rel, uint8(rng.Intn(16)))
		bit := uint(rng.Intn(64))
		flipped := word ^ 1<<bit
		if flipped == 0 {
			continue // became the empty word, which is not decoded at all
		}
		gotRel, _, ok := DecodeRingEntry(flipped)
		if ok && gotRel == rel {
			// A flip that still decodes must at least change the payload —
			// otherwise the checksum failed to protect the entry.
			t.Fatalf("bit %d flip of %#x went undetected", bit, word)
		}
		if ok {
			t.Fatalf("bit %d flip of %#x decoded as valid entry %#x", bit, word, flipped)
		}
	}
}

func TestRingDecodeRejectsZeroBody(t *testing.T) {
	// A word whose offset field is all-zero cannot be a valid entry even if
	// its checksum matches (the bias guarantees valid bodies are nonzero).
	if _, _, ok := DecodeRingEntry(ringChecksum(0) << (ringRelBits + ringEpochBits)); ok {
		t.Fatal("zero-body word decoded as valid")
	}
}

func TestRingReservePublishDrainWrap(t *testing.T) {
	r := NewRing(4096)
	if r.Armed() {
		t.Fatal("new ring must start disarmed")
	}
	r.Arm()

	// Three full generations exercise ticket wrap-around.
	for gen := 0; gen < 3; gen++ {
		var tickets []uint64
		for i := 0; i < RingSlots; i++ {
			tk, ok := r.Reserve()
			if !ok {
				t.Fatalf("gen %d: ring full after %d reservations", gen, i)
			}
			tickets = append(tickets, tk)
		}
		if _, ok := r.Reserve(); ok {
			t.Fatalf("gen %d: reservation succeeded on a full ring", gen)
		}
		if r.Pending() != RingSlots {
			t.Fatalf("gen %d: Pending = %d, want %d", gen, r.Pending(), RingSlots)
		}

		// Publish out of order; the consumer must still drain in order.
		for i := len(tickets) - 1; i >= 0; i-- {
			r.Publish(tickets[i])
		}
		for i := 0; i < RingSlots; i++ {
			tk, ok := r.PeekDrain(i)
			if !ok {
				t.Fatalf("gen %d: ticket %d not drainable", gen, i)
			}
			if tk != tickets[i] {
				t.Fatalf("gen %d: drain order %d, want %d", gen, tk, tickets[i])
			}
			if off := r.SlotOff(tk); off != 4096+tk%RingSlots*RingSlotBytes {
				t.Fatalf("SlotOff(%d) = %d", tk, off)
			}
		}
		r.Release(RingSlots)
		if r.Pending() != 0 {
			t.Fatalf("gen %d: Pending = %d after full release", gen, r.Pending())
		}
	}
}

func TestRingUnpublishedTicketBlocksDrain(t *testing.T) {
	r := NewRing(0)
	r.Arm()
	t0, _ := r.Reserve()
	t1, _ := r.Reserve()
	r.Publish(t1) // the older ticket t0 stays unpublished
	if _, ok := r.PeekDrain(0); ok {
		t.Fatal("drain must wait for the oldest ticket's publish")
	}
	r.Publish(t0)
	if tk, ok := r.PeekDrain(0); !ok || tk != t0 {
		t.Fatalf("PeekDrain(0) = %d, %v; want %d, true", tk, ok, t0)
	}
	if tk, ok := r.PeekDrain(1); !ok || tk != t1 {
		t.Fatalf("PeekDrain(1) = %d, %v; want %d, true", tk, ok, t1)
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(0)
	r.Arm()
	tk, _ := r.Reserve()
	r.Publish(tk)
	r.Reset()
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after Reset", r.Pending())
	}
	if _, ok := r.PeekDrain(0); ok {
		t.Fatal("stale publish survived Reset")
	}
}
