package memblock

import "sync/atomic"

// Remote-free ring: a fixed-capacity MPSC queue of pending cross-sub-heap
// frees, persisted inside the owning sub-heap's protected metadata region
// (the spare space of its header page). A thread freeing a block owned by
// another sub-heap CAS-reserves a slot, persists one encoded word with a
// single flush+fence, and returns — no owner lock taken. The owner drains
// published entries in batches under its own lock, and recovery replays
// un-drained entries idempotently.
//
// Persistence format: each slot is one 64-byte cacheline holding a single
// 8-byte word at offset 0 (the rest stays zero). Confining an entry to one
// atomically-stored word on its own cacheline is what makes the crash
// argument go through: under torn eviction a slot is either its old value
// or its new value, never a blend, so a pure power failure can only leave
// all-zero (empty) or fully valid slots. A slot that decodes to neither is
// media corruption by construction, and is left in place for the audit.
//
// Word layout (little endian):
//
//	bits  0..43  rel+1 — block offset relative to the user region base,
//	             biased by one so a valid entry is never the zero word
//	bits 44..47  epoch — low bits of the producer's ticket (diagnostics)
//	bits 48..63  checksum over bits 0..47
const (
	// RingSlots is the ring capacity. 32 slots bounds the un-drained
	// backlog a crash can leave while keeping the ring + header word well
	// inside one 4 KiB header page.
	RingSlots = 32
	// RingSlotBytes is one slot's footprint: a full cacheline, so no two
	// slots (and no unrelated metadata) ever share a dirty line.
	RingSlotBytes = 64
	// RingBytes is the persistent footprint of the whole ring.
	RingBytes = RingSlots * RingSlotBytes

	ringRelBits   = 44
	ringRelMask   = 1<<ringRelBits - 1
	ringEpochBits = 4
	ringEpochMask = 1<<ringEpochBits - 1
	ringBodyMask  = 1<<(ringRelBits+ringEpochBits) - 1

	// MaxRingRel is the largest encodable relative block offset; sub-heap
	// user regions must not exceed it for rings to be enabled.
	MaxRingRel = ringRelMask - 1
)

// ringChecksum mixes the entry body into a 16-bit check value
// (splitmix64's finalizer — every input bit avalanches, so a single bit
// flip in body or checksum is detected).
func ringChecksum(body uint64) uint64 {
	x := body + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return x >> 48
}

// EncodeRingEntry packs a relative block offset and producer epoch into
// one slot word. rel must be ≤ MaxRingRel. The result is never zero (the
// offset field is biased by one), so the zero word always means "empty".
func EncodeRingEntry(rel uint64, epoch uint8) uint64 {
	body := (rel + 1) | uint64(epoch&ringEpochMask)<<ringRelBits
	return body | ringChecksum(body)<<(ringRelBits+ringEpochBits)
}

// DecodeRingEntry unpacks a non-zero slot word. ok is false when the
// checksum does not match the body — a corrupt entry.
func DecodeRingEntry(word uint64) (rel uint64, epoch uint8, ok bool) {
	body := word & ringBodyMask
	if word>>(ringRelBits+ringEpochBits) != ringChecksum(body) || body&ringRelMask == 0 {
		return 0, 0, false
	}
	return body&ringRelMask - 1, uint8(body >> ringRelBits & ringEpochMask), true
}

// Ring is the DRAM coordination state of one sub-heap's remote-free ring.
// Producers (any thread) reserve tickets with a CAS on tail and publish
// after persisting their slot; the single consumer (the owning sub-heap,
// under its lock) drains published tickets in order and releases the slots
// once their persistent clearing is durable. The publish/release atomics
// carry the happens-before edges that make the device-byte accesses of
// different threads race-free.
type Ring struct {
	base      uint64 // device offset of slot 0
	armed     atomic.Bool
	head      atomic.Uint64 // next ticket to drain (consumer-owned)
	tail      atomic.Uint64 // next ticket to reserve
	published [RingSlots]atomic.Uint64 // ticket+1 once the slot is persisted
}

// NewRing wires the DRAM state over the ring region at device offset base.
// The ring starts disarmed; Arm it only once the persistent region is in a
// known state (freshly formatted, or replayed clean after a restart).
func NewRing(base uint64) *Ring { return &Ring{base: base} }

// Base returns the device offset of slot 0.
func (r *Ring) Base() uint64 { return r.base }

// Arm opens the ring for producers. Disarm closes it (producers fall back
// to the locked free path); a ring left holding corrupt entries stays
// disarmed forever so producers cannot overwrite the evidence.
func (r *Ring) Arm()         { r.armed.Store(true) }
func (r *Ring) Disarm()      { r.armed.Store(false) }
func (r *Ring) Armed() bool  { return r.armed.Load() }

// Reset clears the DRAM state (after recovery replayed and cleared the
// persistent slots). Not safe concurrently with producers.
func (r *Ring) Reset() {
	r.head.Store(0)
	r.tail.Store(0)
	for i := range r.published {
		r.published[i].Store(0)
	}
}

// Reserve claims the next producer ticket, or reports a full ring.
func (r *Ring) Reserve() (ticket uint64, ok bool) {
	for {
		t := r.tail.Load()
		if t-r.head.Load() >= RingSlots {
			return 0, false
		}
		if r.tail.CompareAndSwap(t, t+1) {
			return t, true
		}
	}
}

// SlotOff returns the device offset of the ticket's slot word.
func (r *Ring) SlotOff(ticket uint64) uint64 {
	return r.base + ticket%RingSlots*RingSlotBytes
}

// Publish marks the ticket's slot persisted and visible to the consumer.
func (r *Ring) Publish(ticket uint64) {
	r.published[ticket%RingSlots].Store(ticket + 1)
}

// PeekDrain returns the skip-th ticket past head if its producer has
// published, letting a drain batch walk forward without advancing head
// (head only moves at Release, once the batch's clears are durable).
// Consumer only.
func (r *Ring) PeekDrain(skip int) (ticket uint64, ok bool) {
	h := r.head.Load() + uint64(skip)
	return h, r.published[h%RingSlots].Load() == h+1
}

// Release hands the n oldest drained slots back to producers. Call only
// after the slots' persistent clearing is durable: releasing earlier would
// let a producer overwrite a slot whose old entry could still replay after
// a crash — against a block that may have been re-allocated meanwhile.
// Consumer only.
func (r *Ring) Release(n int) {
	h := r.head.Load()
	for i := 0; i < n; i++ {
		r.published[h%RingSlots].Store(0)
		h++
	}
	r.head.Store(h)
}

// Pending returns the approximate number of reserved-but-undrained tickets.
func (r *Ring) Pending() uint64 { return r.tail.Load() - r.head.Load() }
