// Package memblock manages Poseidon's per-sub-heap memory-block metadata:
// one 64-byte persistent record per block (allocated or free), indexed by a
// multi-level hash table for constant-time lookup, plus the per-size-class
// buddy free lists threaded through the records (paper §4.4, §5.2).
//
// All structures live in the MPK-protected metadata region and are mutated
// only through txn.Batch, which provides undo-logged failure atomicity.
package memblock

import (
	"errors"
	"fmt"
	"math/bits"
)

// Table sizing constants.
const (
	// RecordSize is the size of one memory-block record: exactly one
	// cacheline, so a record persists atomically with one flush.
	RecordSize = 64

	// MinClassLog is log2 of the smallest allocatable block (64 B).
	MinClassLog = 6

	// DefaultProbeWindow is the bounded linear-probing range (paper §5.2).
	DefaultProbeWindow = 16

	// maxLevels bounds the multi-level hash table growth; levels double
	// until the slot budget is consumed, plus trailing filler levels that
	// soak up the remainder (a pure doubling ladder with power-of-two
	// level sizes can strand almost half the budget).
	maxLevels = 10

	headerSize = 64
)

// Block status values stored in records.
const (
	StatusFree      uint64 = 1
	StatusAllocated uint64 = 2
)

// Errors reported by the manager.
var (
	// ErrNoSlot means the probe windows of every active level are full;
	// the caller should defragment the probe window or extend the table.
	ErrNoSlot = errors.New("memblock: no free slot in any probe window")
	// ErrTableFull means every level is active and full.
	ErrTableFull = errors.New("memblock: hash table is full")
	// ErrNotFound means no record indexes the requested block offset.
	ErrNotFound = errors.New("memblock: block not found")
	// ErrDuplicate means a record for the block offset already exists.
	ErrDuplicate = errors.New("memblock: block already present")
	// ErrBadSize reports an unrepresentable allocation size.
	ErrBadSize = errors.New("memblock: size out of range")
)

// Geometry fixes the persistent layout of one sub-heap's metadata
// structures. It is computed once from the region sizes and never changes
// (it can always be recomputed from the sub-heap header after a restart).
type Geometry struct {
	HeaderOff   uint64   // 64 B header: word 0 = active level count
	FreeListOff uint64   // NumClasses × 16 B (head, tail)
	LevelOff    []uint64 // device offset of each level's slot array
	LevelCap    []uint64 // slots per level (powers of two)
	End         uint64   // first offset past the managed metadata

	UserBase uint64 // device offset of the user-data region this indexes
	UserSize uint64 // bytes of user data (power of two)

	NumClasses  int
	ProbeWindow uint64
}

// ComputeGeometry lays the header, free lists and hash-table levels into
// [metaBase, metaBase+metaAvail), indexing a user region of userSize bytes
// at userBase. userSize must be a power of two ≥ the minimum block size.
func ComputeGeometry(metaBase, metaAvail, userBase, userSize uint64) (Geometry, error) {
	if userSize < 1<<MinClassLog || userSize&(userSize-1) != 0 {
		return Geometry{}, fmt.Errorf("%w: user size %d must be a power of two ≥ %d",
			ErrBadSize, userSize, 1<<MinClassLog)
	}
	maxClassLog := uint(bits.TrailingZeros64(userSize))
	numClasses := int(maxClassLog) - MinClassLog + 1

	g := Geometry{
		HeaderOff:   metaBase,
		FreeListOff: metaBase + headerSize,
		UserBase:    userBase,
		UserSize:    userSize,
		NumClasses:  numClasses,
		ProbeWindow: DefaultProbeWindow,
	}
	freeListBytes := (uint64(numClasses)*16 + 63) &^ 63
	levelsBase := g.FreeListOff + freeListBytes
	if levelsBase-metaBase >= metaAvail {
		return Geometry{}, fmt.Errorf("memblock: metadata region too small (%d bytes)", metaAvail)
	}
	slotBudget := (metaAvail - (levelsBase - metaBase)) / RecordSize

	// Build the level ladder: a doubling prefix (8 levels max) sized so it
	// fits the budget, then greedy power-of-two filler levels that consume
	// what the doubling ladder left stranded.
	const doublingLevels = 8
	levels := doublingLevels
	var l0 uint64
	for ; levels >= 1; levels-- {
		span := uint64(1)<<levels - 1
		c := floorPow2(slotBudget / span)
		if c >= g.ProbeWindow {
			l0 = c
			break
		}
	}
	if l0 == 0 {
		return Geometry{}, fmt.Errorf("memblock: metadata region too small for level 0 (%d slots budget)", slotBudget)
	}
	at := levelsBase
	used := uint64(0)
	addLevel := func(capSlots uint64) {
		g.LevelOff = append(g.LevelOff, at)
		g.LevelCap = append(g.LevelCap, capSlots)
		at += capSlots * RecordSize
		used += capSlots
	}
	for i := 0; i < levels; i++ {
		addLevel(l0 << i)
	}
	for len(g.LevelCap) < maxLevels {
		filler := floorPow2(slotBudget - used)
		if filler < g.ProbeWindow || filler < l0 {
			break
		}
		addLevel(filler)
	}
	g.End = at
	return g, nil
}

// TotalSlots returns the slot capacity across all (active and inactive)
// levels.
func (g Geometry) TotalSlots() uint64 {
	var n uint64
	for _, c := range g.LevelCap {
		n += c
	}
	return n
}

// ClassSize returns the block size of a class.
func (g Geometry) ClassSize(class int) uint64 { return 1 << (MinClassLog + uint(class)) }

// MaxClass returns the largest class index (a block spanning the whole user
// region).
func (g Geometry) MaxClass() int { return g.NumClasses - 1 }

// ClassOf returns the smallest class whose block size holds size bytes.
func (g Geometry) ClassOf(size uint64) (int, error) {
	if size == 0 || size > g.UserSize {
		return 0, fmt.Errorf("%w: %d bytes (user region is %d)", ErrBadSize, size, g.UserSize)
	}
	c := 0
	if size > 1<<MinClassLog {
		c = bits.Len64(size-1) - MinClassLog
	}
	return c, nil
}

func floorPow2(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return 1 << (bits.Len64(v) - 1)
}
