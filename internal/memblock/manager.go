package memblock

import (
	"fmt"
	"math/bits"

	"poseidon/internal/mpk"
	"poseidon/internal/txn"
)

// Record field offsets within a 64-byte slot. BlockOff doubles as the slot
// state: 0 = empty (never used), ^0 = tombstone (deleted, probe chains pass
// through).
const (
	fldBlockOff = 0
	fldSize     = 8
	fldStatus   = 16
	fldPrevFree = 24
	fldNextFree = 32

	tombstone = ^uint64(0)
)

// Record is a decoded memory-block record. Slot is the device offset of the
// record itself; PrevFree/NextFree are slot offsets forming the doubly
// linked free list of the block's size class (0 = none).
type Record struct {
	Slot     uint64
	BlockOff uint64
	Size     uint64
	Status   uint64
	PrevFree uint64
	NextFree uint64
}

// Manager operates the memory-block metadata of one sub-heap. It is not
// goroutine-safe: callers hold the sub-heap lock (paper §5.7).
type Manager struct {
	w mpk.Window
	g Geometry
}

// NewManager binds a manager to its window and geometry.
func NewManager(w mpk.Window, g Geometry) *Manager {
	return &Manager{w: w, g: g}
}

// Geometry returns the fixed layout.
func (m *Manager) Geometry() Geometry { return m.g }

// Format initialises the persistent structures: one active level, empty
// free lists. The region must be zeroed (fresh device ranges read as zero).
func (m *Manager) Format() error {
	if err := m.w.PersistU64(m.g.HeaderOff, 1); err != nil {
		return err
	}
	return nil
}

// ActiveLevels returns the number of active hash-table levels.
func (m *Manager) ActiveLevels(r txn.Reader) (int, error) {
	v, err := r.ReadU64(m.g.HeaderOff)
	if err != nil {
		return 0, err
	}
	if v == 0 || v > uint64(len(m.g.LevelCap)) {
		return 0, fmt.Errorf("memblock: corrupt level count %d", v)
	}
	return int(v), nil
}

// hashSlot returns the home slot index of a key in a level of capacity c
// (Fibonacci hashing; c is a power of two). The high bits of the product
// carry the entropy — the low bits of aligned keys are constant.
func hashSlot(key, c uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> (64 - uint(bits.Len64(c-1)))
}

// slotOff returns the device offset of slot i in level l.
func (m *Manager) slotOff(l int, i uint64) uint64 {
	return m.g.LevelOff[l] + i*RecordSize
}

// ReadRecord decodes the record stored at slot.
func (m *Manager) ReadRecord(r txn.Reader, slot uint64) (Record, error) {
	rec := Record{Slot: slot}
	var err error
	if rec.BlockOff, err = r.ReadU64(slot + fldBlockOff); err != nil {
		return rec, err
	}
	if rec.Size, err = r.ReadU64(slot + fldSize); err != nil {
		return rec, err
	}
	if rec.Status, err = r.ReadU64(slot + fldStatus); err != nil {
		return rec, err
	}
	if rec.PrevFree, err = r.ReadU64(slot + fldPrevFree); err != nil {
		return rec, err
	}
	if rec.NextFree, err = r.ReadU64(slot + fldNextFree); err != nil {
		return rec, err
	}
	return rec, nil
}

// Lookup returns the slot offset of the record indexing blockOff.
//
// Levels are probed newest-first: under load the majority of keys live in
// the latest (largest) levels, while probing a sparsely used level costs a
// single read (its chain ends at the first empty slot) — so the expected
// walk is far shorter than oldest-first order, and correctness does not
// depend on probe order at all.
func (m *Manager) Lookup(r txn.Reader, blockOff uint64) (uint64, error) {
	levels, err := m.ActiveLevels(r)
	if err != nil {
		return 0, err
	}
	for l := levels - 1; l >= 0; l-- {
		c := m.g.LevelCap[l]
		h := hashSlot(blockOff, c)
		for i := uint64(0); i < m.g.ProbeWindow && i < c; i++ {
			slot := m.slotOff(l, (h+i)&(c-1))
			key, err := r.ReadU64(slot + fldBlockOff)
			if err != nil {
				return 0, err
			}
			if key == blockOff {
				return slot, nil
			}
			if key == 0 {
				break // never-used slot terminates this level's chain
			}
		}
	}
	return 0, fmt.Errorf("%w: block %#x", ErrNotFound, blockOff)
}

// Insert writes a new record for (blockOff, size, status) into the first
// free slot of any active level's probe window and returns its slot offset.
// It does not extend the table: on ErrNoSlot the caller defragments the
// probe window and/or calls ExtendLevel, then retries (paper §5.2).
func (m *Manager) Insert(b *txn.Batch, blockOff, size, status uint64) (uint64, error) {
	if blockOff == 0 || blockOff == tombstone {
		return 0, fmt.Errorf("memblock: invalid block offset %#x", blockOff)
	}
	levels, err := m.ActiveLevels(b)
	if err != nil {
		return 0, err
	}
	free := uint64(0)
	for l := 0; l < levels && free == 0; l++ {
		c := m.g.LevelCap[l]
		h := hashSlot(blockOff, c)
		for i := uint64(0); i < m.g.ProbeWindow && i < c; i++ {
			slot := m.slotOff(l, (h+i)&(c-1))
			key, err := b.ReadU64(slot + fldBlockOff)
			if err != nil {
				return 0, err
			}
			if key == blockOff {
				return 0, fmt.Errorf("%w: block %#x", ErrDuplicate, blockOff)
			}
			if key == 0 || key == tombstone {
				if free == 0 {
					free = slot
				}
				if key == 0 {
					break // chain ends; no duplicate beyond this point
				}
			}
		}
	}
	if free == 0 {
		return 0, ErrNoSlot
	}
	rec := Record{Slot: free, BlockOff: blockOff, Size: size, Status: status}
	if err := m.writeRecord(b, rec); err != nil {
		return 0, err
	}
	return free, nil
}

// writeRecord stages all fields of a record.
func (m *Manager) writeRecord(b *txn.Batch, rec Record) error {
	if err := b.WriteU64(rec.Slot+fldBlockOff, rec.BlockOff); err != nil {
		return err
	}
	if err := b.WriteU64(rec.Slot+fldSize, rec.Size); err != nil {
		return err
	}
	if err := b.WriteU64(rec.Slot+fldStatus, rec.Status); err != nil {
		return err
	}
	if err := b.WriteU64(rec.Slot+fldPrevFree, rec.PrevFree); err != nil {
		return err
	}
	return b.WriteU64(rec.Slot+fldNextFree, rec.NextFree)
}

// Delete tombstones the record at slot.
func (m *Manager) Delete(b *txn.Batch, slot uint64) error {
	return b.WriteU64(slot+fldBlockOff, tombstone)
}

// SetStatus stages a status change.
func (m *Manager) SetStatus(b *txn.Batch, slot uint64, status uint64) error {
	return b.WriteU64(slot+fldStatus, status)
}

// SetSize stages a size change (used when merging buddies).
func (m *Manager) SetSize(b *txn.Batch, slot uint64, size uint64) error {
	return b.WriteU64(slot+fldSize, size)
}

// ExtendLevel activates the next hash-table level. Its slots are untouched
// device space and therefore read as empty.
func (m *Manager) ExtendLevel(b *txn.Batch) error {
	levels, err := m.ActiveLevels(b)
	if err != nil {
		return err
	}
	if levels >= len(m.g.LevelCap) {
		return ErrTableFull
	}
	return b.WriteU64(m.g.HeaderOff, uint64(levels)+1)
}

// ProbeWindowSlots returns the slot offsets a key's probe window covers in
// every active level — the "linear probing space" the paper defragments
// when an insert finds no slot (§5.4 case 2).
func (m *Manager) ProbeWindowSlots(r txn.Reader, blockOff uint64) ([]uint64, error) {
	levels, err := m.ActiveLevels(r)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for l := 0; l < levels; l++ {
		c := m.g.LevelCap[l]
		h := hashSlot(blockOff, c)
		for i := uint64(0); i < m.g.ProbeWindow && i < c; i++ {
			out = append(out, m.slotOff(l, (h+i)&(c-1)))
		}
	}
	return out, nil
}

// SetActiveLevels stages the active level count directly. It is the
// repair path's tool for restoring a corrupt header word from a mirror
// or from the inferred contents of the level arrays; normal growth goes
// through ExtendLevel.
func (m *Manager) SetActiveLevels(b *txn.Batch, levels int) error {
	if levels < 1 || levels > len(m.g.LevelCap) {
		return fmt.Errorf("memblock: invalid level count %d", levels)
	}
	return b.WriteU64(m.g.HeaderOff, uint64(levels))
}

// ForEachSlot calls fn for every used slot (live or tombstoned) across
// ALL levels, active or not — a raw walk that does not trust the level
// count header. Inactive levels are untouched device space and read as
// zero, so visiting them is harmless; the repair path uses this to
// recover records when the header itself is corrupt. Iteration stops on
// the first error.
func (m *Manager) ForEachSlot(r txn.Reader, fn func(level int, slot, key uint64) error) error {
	for l := 0; l < len(m.g.LevelCap); l++ {
		for i := uint64(0); i < m.g.LevelCap[l]; i++ {
			slot := m.slotOff(l, i)
			key, err := r.ReadU64(slot + fldBlockOff)
			if err != nil {
				return err
			}
			if key == 0 {
				continue
			}
			if err := fn(l, slot, key); err != nil {
				return err
			}
		}
	}
	return nil
}

// IsTombstone reports whether a key word read via ForEachSlot marks a
// deleted record.
func IsTombstone(key uint64) bool { return key == tombstone }

// ForEachRecord calls fn for every live record across active levels (used
// by recovery audits and the heap inspector). Iteration stops on the first
// error.
func (m *Manager) ForEachRecord(r txn.Reader, fn func(Record) error) error {
	levels, err := m.ActiveLevels(r)
	if err != nil {
		return err
	}
	for l := 0; l < levels; l++ {
		for i := uint64(0); i < m.g.LevelCap[l]; i++ {
			slot := m.slotOff(l, i)
			key, err := r.ReadU64(slot + fldBlockOff)
			if err != nil {
				return err
			}
			if key == 0 || key == tombstone {
				continue
			}
			rec, err := m.ReadRecord(r, slot)
			if err != nil {
				return err
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
