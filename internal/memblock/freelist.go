package memblock

import (
	"fmt"

	"poseidon/internal/txn"
)

// The buddy list (paper §5.2) is an array of per-size-class doubly linked
// free lists threaded through the records: 16 persistent bytes per class
// (head slot, tail slot). Frees append at the tail to delay reuse of a
// just-freed block (§5.5); allocations pop from the head.

// headOff and tailOff locate a class's list pointers.
func (m *Manager) headOff(class int) uint64 { return m.g.FreeListOff + uint64(class)*16 }
func (m *Manager) tailOff(class int) uint64 { return m.g.FreeListOff + uint64(class)*16 + 8 }

func (m *Manager) checkClass(class int) error {
	if class < 0 || class >= m.g.NumClasses {
		return fmt.Errorf("%w: class %d of %d", ErrBadSize, class, m.g.NumClasses)
	}
	return nil
}

// FreeHead returns the slot at the head of a class's free list (0 = empty).
func (m *Manager) FreeHead(r txn.Reader, class int) (uint64, error) {
	if err := m.checkClass(class); err != nil {
		return 0, err
	}
	return r.ReadU64(m.headOff(class))
}

// FreeTail returns the slot at the tail of a class's free list (0 = empty).
func (m *Manager) FreeTail(r txn.Reader, class int) (uint64, error) {
	if err := m.checkClass(class); err != nil {
		return 0, err
	}
	return r.ReadU64(m.tailOff(class))
}

// SetFreeList stages a class's head and tail pointers directly — the
// repair path's tool for restoring list anchors from a mirror. The
// interior prev/next threading must already be consistent with the
// anchors; normal list maintenance goes through PushFreeTail/RemoveFree.
func (m *Manager) SetFreeList(b *txn.Batch, class int, head, tail uint64) error {
	if err := m.checkClass(class); err != nil {
		return err
	}
	if err := b.WriteU64(m.headOff(class), head); err != nil {
		return err
	}
	return b.WriteU64(m.tailOff(class), tail)
}

// ResetFreeLists stages zeroes over every class's head and tail, emptying
// all free lists. The repair path calls this before rethreading the lists
// from surviving records.
func (m *Manager) ResetFreeLists(b *txn.Batch) error {
	for c := 0; c < m.g.NumClasses; c++ {
		if err := m.SetFreeList(b, c, 0, 0); err != nil {
			return err
		}
	}
	return nil
}

// PushFreeTail appends the record at slot to the tail of class's free list
// and marks it free.
func (m *Manager) PushFreeTail(b *txn.Batch, class int, slot uint64) error {
	if err := m.checkClass(class); err != nil {
		return err
	}
	tail, err := b.ReadU64(m.tailOff(class))
	if err != nil {
		return err
	}
	if err := b.WriteU64(slot+fldPrevFree, tail); err != nil {
		return err
	}
	if err := b.WriteU64(slot+fldNextFree, 0); err != nil {
		return err
	}
	if err := b.WriteU64(slot+fldStatus, StatusFree); err != nil {
		return err
	}
	if tail != 0 {
		if err := b.WriteU64(tail+fldNextFree, slot); err != nil {
			return err
		}
	} else {
		if err := b.WriteU64(m.headOff(class), slot); err != nil {
			return err
		}
	}
	return b.WriteU64(m.tailOff(class), slot)
}

// RemoveFree unlinks the record at slot from class's free list. The
// caller is responsible for the record's status afterwards.
func (m *Manager) RemoveFree(b *txn.Batch, class int, slot uint64) error {
	if err := m.checkClass(class); err != nil {
		return err
	}
	prev, err := b.ReadU64(slot + fldPrevFree)
	if err != nil {
		return err
	}
	next, err := b.ReadU64(slot + fldNextFree)
	if err != nil {
		return err
	}
	if prev != 0 {
		if err := b.WriteU64(prev+fldNextFree, next); err != nil {
			return err
		}
	} else {
		if err := b.WriteU64(m.headOff(class), next); err != nil {
			return err
		}
	}
	if next != 0 {
		if err := b.WriteU64(next+fldPrevFree, prev); err != nil {
			return err
		}
	} else {
		if err := b.WriteU64(m.tailOff(class), prev); err != nil {
			return err
		}
	}
	if err := b.WriteU64(slot+fldPrevFree, 0); err != nil {
		return err
	}
	return b.WriteU64(slot+fldNextFree, 0)
}

// FreeListLen walks a class's free list and returns its length (test and
// audit helper; O(n)).
func (m *Manager) FreeListLen(r txn.Reader, class int) (int, error) {
	head, err := m.FreeHead(r, class)
	if err != nil {
		return 0, err
	}
	n := 0
	for slot := head; slot != 0; {
		n++
		if uint64(n) > m.g.TotalSlots() {
			return 0, fmt.Errorf("memblock: free list of class %d is cyclic", class)
		}
		next, err := r.ReadU64(slot + fldNextFree)
		if err != nil {
			return 0, err
		}
		slot = next
	}
	return n, nil
}
