// Package larson implements the Larson server benchmark (Figure 7): many
// threads continuously replace objects in a shared slot array with
// randomly sized new ones. Slot partitions rotate between rounds, so a
// thread frequently frees memory another thread allocated — the
// cross-thread free pattern of a real server.
package larson

import (
	"math/rand"
	"sync"
	"time"

	"poseidon/internal/alloc"
)

// Config parameterises a run.
type Config struct {
	// Threads is the worker count.
	Threads int
	// SlotsPerThread is the shared-array partition size (default 256).
	SlotsPerThread int
	// MinSize and MaxSize bound the random object sizes (default 8–512,
	// mirroring the original benchmark's small-object mix).
	MinSize, MaxSize uint64
	// RoundOps is how many replacements each thread performs per round
	// before partitions rotate (default 512).
	RoundOps int
	// Rounds is the number of rotation rounds (default 8). Total work is
	// Threads × Rounds × RoundOps replacements.
	Rounds int
	// Seed drives the random sizes and slot choices.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.SlotsPerThread == 0 {
		c.SlotsPerThread = 256
	}
	if c.MinSize == 0 {
		c.MinSize = 8
	}
	if c.MaxSize == 0 {
		c.MaxSize = 512
	}
	if c.RoundOps == 0 {
		c.RoundOps = 512
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	return c
}

// Result reports a run's aggregate throughput. Ops counts allocations and
// frees separately (a replacement is two operations), matching the paper's
// operations/second axis.
type Result struct {
	Ops      uint64
	Duration time.Duration
}

// OpsPerSec returns the throughput.
func (r Result) OpsPerSec() float64 { return float64(r.Ops) / r.Duration.Seconds() }

// Run executes the benchmark on the allocator.
func Run(a alloc.Allocator, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	handles := make([]alloc.Handle, cfg.Threads)
	for i := range handles {
		h, err := a.Thread(i)
		if err != nil {
			return Result{}, err
		}
		handles[i] = h
	}
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()

	slots := make([]alloc.Ptr, cfg.Threads*cfg.SlotsPerThread)
	var (
		total   uint64
		totalMu sync.Mutex
		start   = time.Now()
	)
	for round := 0; round < cfg.Rounds; round++ {
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
		)
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Rotation: thread w works on the partition thread
				// (w+round) filled last round — cross-thread frees.
				part := (w + round) % cfg.Threads
				base := part * cfg.SlotsPerThread
				rng := rand.New(rand.NewSource(cfg.Seed + int64(round*cfg.Threads+w)))
				h := handles[w]
				ops := uint64(0)
				for i := 0; i < cfg.RoundOps; i++ {
					k := base + rng.Intn(cfg.SlotsPerThread)
					if slots[k] != 0 {
						if err := h.Free(slots[k]); err != nil {
							errMu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							errMu.Unlock()
							return
						}
						slots[k] = 0
						ops++
					}
					size := cfg.MinSize + uint64(rng.Int63n(int64(cfg.MaxSize-cfg.MinSize+1)))
					p, err := h.Alloc(size)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					slots[k] = p
					ops++
				}
				totalMu.Lock()
				total += ops
				totalMu.Unlock()
			}(w)
		}
		wg.Wait()
		if firstErr != nil {
			return Result{}, firstErr
		}
	}
	return Result{Ops: total, Duration: time.Since(start)}, nil
}
