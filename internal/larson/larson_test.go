package larson

import (
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/benchutil"
)

func run(t *testing.T, name string, threads int) Result {
	t.Helper()
	a, err := benchutil.NewAllocator(name, benchutil.Config{Threads: threads, HeapBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res, err := Run(a, Config{
		Threads:        threads,
		SlotsPerThread: 64,
		RoundOps:       200,
		Rounds:         4,
		Seed:           1,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestLarsonAllAllocators(t *testing.T) {
	for _, name := range benchutil.AllocatorNames {
		name := name
		t.Run(name, func(t *testing.T) {
			res := run(t, name, 4)
			if res.Ops == 0 {
				t.Fatal("no operations recorded")
			}
			if res.OpsPerSec() <= 0 {
				t.Fatal("non-positive throughput")
			}
		})
	}
}

func TestLarsonSingleThread(t *testing.T) {
	res := run(t, "poseidon", 1)
	// 4 rounds × 200 replacements; each is 1 alloc + ~1 free.
	if res.Ops < 800 {
		t.Fatalf("ops = %d, want ≥ 800", res.Ops)
	}
}

func TestLarsonDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Threads != 1 || cfg.SlotsPerThread == 0 || cfg.MaxSize <= cfg.MinSize {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}

// Cross-thread frees must actually happen: with rotation, a second-round
// worker frees blocks the first-round owner allocated.
func TestLarsonCrossThreadFrees(t *testing.T) {
	a, err := benchutil.NewAllocator("poseidon", benchutil.Config{Threads: 2, HeapBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res, err := Run(a, Config{Threads: 2, SlotsPerThread: 32, RoundOps: 100, Rounds: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	pa, ok := a.(*alloc.Poseidon)
	if !ok {
		t.Fatal("not poseidon")
	}
	st := pa.Heap().Stats()
	if st.Frees == 0 {
		t.Fatal("no frees recorded")
	}
}
