package torture

import (
	"bytes"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

// repairScenario builds the deterministic degraded heap every repair-sweep
// run starts from: a victim block with a persisted payload on sub-heap 0, a
// sentinel with a persisted payload on sub-heap 1, a media bit flip in the
// victim's record size word, a clean power failure, and a scrubbed reload
// that benches sub-heap 0. The vanilla runPoint oracle treats any
// quarantine as a violation (power failures must never corrupt), so the
// repair sweep needs this dedicated runner with seeded media damage.
func repairScenario(t *testing.T) (h *core.Heap, victim, sentinel core.NVMPtr, vpat, spat []byte) {
	t.Helper()
	h0, err := core.Create(heapOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h0.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	victim, err = th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	vpat = make([]byte, 128)
	for i := range vpat {
		vpat[i] = 0x11 + byte(i)
	}
	if err := th0.Persist(victim, 0, vpat); err != nil {
		t.Fatal(err)
	}
	th1, err := h0.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	sentinel, err = th1.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	spat = make([]byte, 256)
	for i := range spat {
		spat[i] = 0xc3 - byte(i)
	}
	if err := th1.Persist(sentinel, 0, spat); err != nil {
		t.Fatal(err)
	}
	th0.Close()
	th1.Close()

	slot, err := h0.RecordSlot(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := h0.Device().InjectBitFlip(slot+8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h0.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h0.Close()
	h, err = core.Load(h0.Device(), heapOptions(nil))
	if err != nil {
		t.Fatalf("degraded Load: %v", err)
	}
	if got := h.Stats().QuarantinedSubheaps; got != 1 {
		t.Fatalf("scenario: QuarantinedSubheaps = %d, want 1", got)
	}
	return h, victim, sentinel, vpat, spat
}

// readBlock reads n bytes from p through a throwaway thread.
func readBlock(t *testing.T, h *core.Heap, p core.NVMPtr, n int, what string) []byte {
	t.Helper()
	th, err := h.Thread()
	if err != nil {
		t.Fatalf("%s: Thread: %v", what, err)
	}
	defer th.Close()
	b := make([]byte, n)
	if err := th.Read(p, 0, b); err != nil {
		t.Fatalf("%s: Read: %v", what, err)
	}
	return b
}

// TestSweepRepairTail is the self-healing crash sweep: starting from the
// same deterministic degraded heap, the failpoint is walked through every
// mutating device op inside Heap.Repair — the repair-in-progress marker
// persist, the undo-log reset, every rebuild chunk commit, the free-list
// rethreading, the ring reset, the mirror refresh and the final marker
// clear — then the device is crashed under each eviction mode and reloaded.
// The oracle: the load must succeed with the victim sub-heap re-benched
// (interrupted repair is never mistaken for health), the heap must audit
// clean, user data on both shards must be byte-identical, and a fresh
// Repair must complete and return the heap to healthy.
func TestSweepRepairTail(t *testing.T) {
	// Measure the full repair once to size the sweep.
	hm, _, _, _, _ := repairScenario(t)
	const huge = int64(1) << 40
	hm.Device().FailAfter(huge)
	rerr := hm.Repair(0)
	total := int(huge - hm.Device().FailBudgetRemaining())
	hm.Device().DisarmFailpoint()
	if rerr != nil {
		t.Fatalf("repair measurement: %v", rerr)
	}
	if total == 0 {
		t.Fatal("repair performed no mutating device ops")
	}
	if got := hm.Health(); got != core.StateHealthy {
		t.Fatalf("measurement heap Health = %v, want healthy", got)
	}
	_ = hm.Close()

	const seed = int64(99)
	runs := 0
	for _, mode := range []nvm.EvictMode{nvm.EvictNone, nvm.EvictAll, nvm.EvictTorn} {
		for point := 0; point < total; point += 2 {
			h, victim, sentinel, vpat, spat := repairScenario(t)
			dev := h.Device()
			dev.FailAfter(int64(point))
			rerr := h.Repair(0)
			tripped := dev.FailBudgetRemaining() < 0
			dev.DisarmFailpoint()
			if !tripped {
				t.Fatalf("mode=%s point=%d: failpoint did not trip (repair is non-deterministic?)", mode, point)
			}
			if rerr == nil {
				t.Fatalf("mode=%s point=%d: Repair must fail when the device dies mid-repair", mode, point)
			}
			if h.Stats().QuarantinedSubheaps != 1 {
				t.Fatalf("mode=%s point=%d: failed repair must leave the shard benched", mode, point)
			}
			_ = h.Close()

			if _, err := dev.Crash(nvm.CrashPolicy{Mode: mode, Prob: 0.5, Seed: pointSeed(seed, point)}); err != nil {
				t.Fatal(err)
			}
			h2, err := core.Load(dev, heapOptions(nil))
			if err != nil {
				t.Fatalf("mode=%s point=%d: Load after mid-repair crash: %v", mode, point, err)
			}
			if got := h2.Stats().QuarantinedSubheaps; got != 1 {
				t.Fatalf("mode=%s point=%d: QuarantinedSubheaps after reload = %d, want 1 (interrupted repair must re-bench)",
					mode, point, got)
			}
			check, err := h2.Check()
			if err != nil {
				t.Fatalf("mode=%s point=%d: audit error: %v", mode, point, err)
			}
			if !check.OK() {
				t.Fatalf("mode=%s point=%d: audit found %d problems: %v",
					mode, point, len(check.Problems), check.Problems)
			}
			// The healthy shard's data is reachable throughout the episode.
			if got := readBlock(t, h2, sentinel, len(spat), "sentinel"); !bytes.Equal(got, spat) {
				t.Fatalf("mode=%s point=%d: sentinel payload corrupted", mode, point)
			}

			// A fresh repair completes from any interruption point.
			if err := h2.Repair(0); err != nil {
				t.Fatalf("mode=%s point=%d: second Repair: %v", mode, point, err)
			}
			if got := h2.Health(); got != core.StateHealthy {
				t.Fatalf("mode=%s point=%d: Health after repair = %v, want healthy", mode, point, got)
			}
			final, err := h2.Check()
			if err != nil {
				t.Fatalf("mode=%s point=%d: final audit error: %v", mode, point, err)
			}
			if !final.OK() || !final.Healthy() {
				t.Fatalf("mode=%s point=%d: final audit OK=%v Healthy=%v problems=%v",
					mode, point, final.OK(), final.Healthy(), final.Problems)
			}
			// Zero user-data loss: the victim's bytes survive the corruption,
			// both crashes, and the rebuild (repair re-covers its extent
			// without touching user data).
			if got := readBlock(t, h2, victim, len(vpat), "victim"); !bytes.Equal(got, vpat) {
				t.Fatalf("mode=%s point=%d: victim payload lost during repair", mode, point)
			}
			// The repaired shard serves again.
			th, err := h2.ThreadOn(0)
			if err != nil {
				t.Fatal(err)
			}
			p, err := th.Alloc(128)
			if err != nil {
				t.Fatalf("mode=%s point=%d: post-repair Alloc: %v", mode, point, err)
			}
			if p.Subheap() != 0 {
				t.Fatalf("mode=%s point=%d: post-repair alloc landed in sub-heap %d, want 0",
					mode, point, p.Subheap())
			}
			if err := th.Free(p); err != nil {
				t.Fatalf("mode=%s point=%d: post-repair Free: %v", mode, point, err)
			}
			th.Close()
			_ = h2.Close()
			runs++
		}
	}
	if runs == 0 {
		t.Fatal("repair sweep covered no crash points")
	}
	t.Logf("repair sweep: %d crash points x 3 modes, %d runs, 0 violations", (total+1)/2, runs)
}
