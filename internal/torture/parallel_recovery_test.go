package torture

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

// parallelSweepOptions is the 4-sub-heap configuration the parallel
// recovery sweep loads with: every recovery surface armed (lanes, rings,
// magazines, scrub) and a 4-way worker pool so the failpoint walks through
// genuinely concurrent replay, not the serial fallback.
func parallelSweepOptions() core.Options {
	return core.Options{
		Subheaps:            4,
		SubheapUserSize:     1 << 20,
		SubheapMetaSize:     256 << 10,
		UndoLogSize:         64 << 10,
		MaxThreads:          16,
		HeapID:              0x70051D05, // fixed: runs must be byte-identical
		CrashTracking:       true,
		ScrubOnLoad:         true,
		RemoteFreeRings:     true,
		Magazines:           core.MagazineOptions{Capacity: 8, Classes: 4},
		RecoveryParallelism: 4,
	}
}

// parallelRecoveryImage builds the crashed image every sweep run recovers:
// pending rollback work in all four micro-log lanes, populated magazine
// manifests, undrained remote-free ring entries, and a committed sentinel
// payload that must survive every recovery. Saved to a file so each sweep
// point starts from the identical torn state.
func parallelRecoveryImage(t *testing.T) (string, core.NVMPtr, []byte) {
	t.Helper()
	h, err := core.Create(parallelSweepOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var threads []*core.Thread
	var bigBlocks []core.NVMPtr
	for w := 0; w < h.Subheaps(); w++ {
		th, err := h.ThreadOn(w)
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
		// Magazine-class churn: leaves cached blocks in the manifest.
		for i := 0; i < 8; i++ {
			if _, err := th.Alloc(uint64(64 << (i % 3))); err != nil {
				t.Fatal(err)
			}
		}
		// One large block per shard for the cross-shard ring frees below.
		p, err := th.Alloc(700)
		if err != nil {
			t.Fatal(err)
		}
		bigBlocks = append(bigBlocks, p)
	}

	// The sentinel: committed, persisted, must be byte-identical after
	// every interrupted-and-resumed recovery in the sweep.
	sentinel, err := threads[1].Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	spat := make([]byte, 256)
	for i := range spat {
		spat[i] = 0xa7 - byte(i)
	}
	if err := threads[1].Persist(sentinel, 0, spat); err != nil {
		t.Fatal(err)
	}

	// Undrained ring entries: shard 0 frees the other shards' big blocks;
	// the owners never run again before the crash.
	for w := 1; w < h.Subheaps(); w++ {
		if err := threads[0].Free(bigBlocks[w]); err != nil {
			t.Fatal(err)
		}
	}
	// Open transactions in every lane: rollback work for every worker.
	for _, th := range threads {
		if _, err := th.TxAlloc(128, false); err != nil {
			t.Fatal(err)
		}
		if _, err := th.TxAlloc(256, false); err != nil {
			t.Fatal(err)
		}
	}
	// Threads stay open: the power cut catches magazines populated and
	// lanes uncommitted.
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "parallel-recovery.img")
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, sentinel, spat
}

func loadSweepImage(t *testing.T, path string) *nvm.Device {
	t.Helper()
	dev, err := nvm.LoadFile(path, nvm.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestSweepParallelRecoveryTail walks the device failpoint through every
// mutating op inside a 4-way parallel Load — lane rollbacks, manifest
// replays and word clears, ring drains, lane truncations, mirror
// refreshes — crashes the half-recovered image under each eviction mode,
// and requires the second Load to heal completely: clean audit, no
// quarantine (a pure power/device failure must never be mistaken for
// corruption), no pending transactions, the sentinel payload intact, and
// the heap serving allocations again.
func TestSweepParallelRecoveryTail(t *testing.T) {
	path, sentinel, spat := parallelRecoveryImage(t)

	// Measure one full parallel recovery to size the sweep, and pin that
	// the image actually exercises every replay surface.
	const huge = int64(1) << 40
	devM := loadSweepImage(t, path)
	devM.FailAfter(huge)
	hm, err := core.Load(devM, parallelSweepOptions())
	total := int(huge - devM.FailBudgetRemaining())
	devM.DisarmFailpoint()
	if err != nil {
		t.Fatalf("measurement Load: %v", err)
	}
	st := hm.Stats()
	if st.RecoveredBlocks == 0 {
		t.Fatal("scenario has no micro-log rollback work")
	}
	if st.RecoveredCached == 0 {
		t.Fatal("scenario has no magazine-manifest work")
	}
	if st.RemoteDrains == 0 {
		t.Fatal("scenario has no ring-replay work")
	}
	_ = hm.Close()
	if total == 0 {
		t.Fatal("parallel recovery performed no mutating device ops")
	}

	const seed = int64(131)
	runs := 0
	for _, mode := range []nvm.EvictMode{nvm.EvictNone, nvm.EvictAll, nvm.EvictTorn} {
		for point := 0; point < total; point += 2 {
			dev := loadSweepImage(t, path)
			dev.FailAfter(int64(point))
			h, lerr := core.Load(dev, parallelSweepOptions())
			tripped := dev.FailBudgetRemaining() < 0
			dev.DisarmFailpoint()
			if !tripped {
				t.Fatalf("mode=%s point=%d: failpoint did not trip (recovery op count is non-deterministic?)",
					mode, point)
			}
			if lerr == nil {
				// The failpoint landed in the best-effort mirror refresh at
				// the tail of recovery (recover discards syncMirrors' error:
				// a missed mirror write only costs repair its cheap path, it
				// never compromises the primary metadata). Load legitimately
				// succeeds; the crash-and-reheal oracle below still applies.
				_ = h.Close()
			}

			if _, err := dev.Crash(nvm.CrashPolicy{Mode: mode, Prob: 0.5, Seed: pointSeed(seed, point)}); err != nil {
				t.Fatal(err)
			}
			h2, err := core.Load(dev, parallelSweepOptions())
			if err != nil {
				t.Fatalf("mode=%s point=%d: second Load must heal: %v", mode, point, err)
			}
			if got := h2.Stats().QuarantinedSubheaps; got != 0 {
				t.Fatalf("mode=%s point=%d: interrupted recovery quarantined %d sub-heaps — power failure mistaken for corruption",
					mode, point, got)
			}
			check, err := h2.Check()
			if err != nil {
				t.Fatalf("mode=%s point=%d: audit error: %v", mode, point, err)
			}
			if !check.OK() || !check.Healthy() {
				t.Fatalf("mode=%s point=%d: audit OK=%v Healthy=%v problems=%v",
					mode, point, check.OK(), check.Healthy(), check.Problems)
			}
			if check.PendingTx != 0 {
				t.Fatalf("mode=%s point=%d: %d micro-log entries survived recovery", mode, point, check.PendingTx)
			}
			if got := readBlock(t, h2, sentinel, len(spat), fmt.Sprintf("mode=%s point=%d sentinel", mode, point)); !bytes.Equal(got, spat) {
				t.Fatalf("mode=%s point=%d: sentinel payload corrupted", mode, point)
			}
			// Smoke: the healed heap serves on every shard.
			for w := 0; w < h2.Subheaps(); w++ {
				th, err := h2.ThreadOn(w)
				if err != nil {
					t.Fatal(err)
				}
				p, err := th.Alloc(128)
				if err != nil {
					t.Fatalf("mode=%s point=%d: post-heal Alloc on shard %d: %v", mode, point, w, err)
				}
				if err := th.Free(p); err != nil {
					t.Fatalf("mode=%s point=%d: post-heal Free on shard %d: %v", mode, point, w, err)
				}
				th.Close()
			}
			_ = h2.Close()
			runs++
		}
	}
	if runs == 0 {
		t.Fatal("parallel recovery sweep covered no crash points")
	}
	t.Logf("parallel recovery sweep: %d crash points x 3 modes, %d runs, 0 violations", (total+1)/2, runs)
}
