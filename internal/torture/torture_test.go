package torture

import (
	"strings"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func TestCountOpsDeterministic(t *testing.T) {
	a, err := CountOps(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CountOps(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("op counts differ across runs: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("workload performed no mutating device ops")
	}
}

func TestSweepSmallAllModes(t *testing.T) {
	res, err := Run(Config{
		Ops:     4,
		Seed:    7,
		Workers: 4,
		Stride:  7, // sample the space; the full sweep is the CLI's job
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("mode=%s point=%d: %s", v.Mode, v.Point, v.Detail)
		}
		t.Fatalf("%d violations in a %d-run sweep", len(res.Violations), res.Runs)
	}
	wantPoints := (res.CrashPoints + 6) / 7
	if res.Runs != wantPoints*4 {
		t.Fatalf("Runs = %d, want %d points x 4 modes", res.Runs, wantPoints)
	}
}

// TestSweepRemoteFreeTail is the remote-free crash sweep: the workload's
// remote-free segment is its final phase, so sweeping the tail of the
// crash-point range walks the failpoint through every producer persist,
// every drain free-commit / slot-clear / release boundary, and leaves
// pending entries for the recovery replay. runPoint's audit is the oracle:
// the user region must tile exactly (no leaked blocks), no block may be
// double-freed onto a free list, no ring entry may survive recovery
// (PendingRemote) and no quarantine may fire on a pure power failure.
func TestSweepRemoteFreeTail(t *testing.T) {
	const ops, seed = 4, 99
	total, err := CountOps(ops, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Measure the segment on a fresh heap to size the tail window. The
	// fresh heap lazily formats both sub-heaps inside the measurement, so
	// this overcounts the in-workload cost — a wider window, never a
	// narrower one.
	hm, err := core.Create(heapOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	const huge = int64(1) << 40
	hm.Device().FailAfter(huge)
	// The magazine segment follows the remote-free segment in the workload,
	// so the tail window must span both to reach the remote boundaries.
	serr := remoteFreeSegment(hm)
	if serr == nil {
		serr = magazineSegment(hm)
	}
	segOps := int(huge - hm.Device().FailBudgetRemaining())
	hm.Device().DisarmFailpoint()
	_ = hm.Close()
	if serr != nil {
		t.Fatalf("segment measurement: %v", serr)
	}
	if segOps == 0 {
		t.Fatal("remote-free segment performed no mutating device ops")
	}
	start := total - segOps
	if start < 0 {
		start = 0
	}

	cfg := Config{Ops: ops, Seed: seed}.withDefaults()
	runs := 0
	for _, mode := range []nvm.EvictMode{nvm.EvictNone, nvm.EvictAll, nvm.EvictTorn} {
		for point := start; point < total; point += 2 {
			_, v, err := runPoint(cfg, mode, point)
			if err != nil {
				t.Fatalf("mode=%s point=%d: %v", mode, point, err)
			}
			if v != nil {
				t.Fatalf("violation at mode=%s point=%d: %s\nreproduce: %s",
					v.Mode, v.Point, v.Detail, v.Reproducer(ops, cfg.Prob))
			}
			runs++
		}
	}
	if runs == 0 {
		t.Fatal("tail sweep covered no crash points")
	}
}

// TestSweepMagazineTail is the magazine crash sweep: the workload ends with
// the magazine segment, so sweeping the tail of the crash-point range walks
// the failpoint through every refill manifest persist, overflow flush-back,
// manifest word clear and the close-time sync, and leaves cached entries
// for the recovery manifest replay. runPoint's audit is the oracle: the
// user region must tile exactly (a crash can never leak a magazine), no
// manifest entry may survive recovery (PendingCached), no block may be
// double-freed onto a free list, and no quarantine may fire on a pure
// power failure.
func TestSweepMagazineTail(t *testing.T) {
	const ops, seed = 4, 99
	total, err := CountOps(ops, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Measure the segment with lazy formatting already paid (the remote
	// segment touches both sub-heaps first), so the window tracks the
	// magazine segment itself.
	hm, err := core.Create(heapOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	const huge = int64(1) << 40
	if err := remoteFreeSegment(hm); err != nil {
		t.Fatalf("segment warmup: %v", err)
	}
	hm.Device().FailAfter(huge)
	serr := magazineSegment(hm)
	segOps := int(huge - hm.Device().FailBudgetRemaining())
	hm.Device().DisarmFailpoint()
	_ = hm.Close()
	if serr != nil {
		t.Fatalf("segment measurement: %v", serr)
	}
	if segOps == 0 {
		t.Fatal("magazine segment performed no mutating device ops")
	}
	start := total - segOps
	if start < 0 {
		start = 0
	}

	cfg := Config{Ops: ops, Seed: seed}.withDefaults()
	runs := 0
	for _, mode := range []nvm.EvictMode{nvm.EvictNone, nvm.EvictAll, nvm.EvictTorn} {
		for point := start; point < total; point += 2 {
			_, v, err := runPoint(cfg, mode, point)
			if err != nil {
				t.Fatalf("mode=%s point=%d: %v", mode, point, err)
			}
			if v != nil {
				t.Fatalf("violation at mode=%s point=%d: %s\nreproduce: %s",
					v.Mode, v.Point, v.Detail, v.Reproducer(ops, cfg.Prob))
			}
			runs++
		}
	}
	if runs == 0 {
		t.Fatal("tail sweep covered no crash points")
	}
}

func TestSinglePointReproducerMode(t *testing.T) {
	res, err := Run(Config{
		Ops:   4,
		Seed:  7,
		Modes:       []nvm.EvictMode{nvm.EvictTorn},
		Point:       25,
		SinglePoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", res.Runs)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
}

func TestPointOutOfRange(t *testing.T) {
	_, err := Run(Config{Ops: 4, Seed: 7, Point: 1 << 30, SinglePoint: true})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range", err)
	}
}

func TestReproducerLine(t *testing.T) {
	v := Violation{Mode: nvm.EvictRandom, Point: 123, Seed: 9}
	got := v.Reproducer(256, 0.5)
	want := "poseidon-torture -ops 256 -seed 9 -modes random -point 123 -prob 0.5"
	if got != want {
		t.Fatalf("Reproducer = %q, want %q", got, want)
	}
}
