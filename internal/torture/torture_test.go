package torture

import (
	"strings"
	"testing"

	"poseidon/internal/nvm"
)

func TestCountOpsDeterministic(t *testing.T) {
	a, err := CountOps(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CountOps(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("op counts differ across runs: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("workload performed no mutating device ops")
	}
}

func TestSweepSmallAllModes(t *testing.T) {
	res, err := Run(Config{
		Ops:     4,
		Seed:    7,
		Workers: 4,
		Stride:  7, // sample the space; the full sweep is the CLI's job
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("mode=%s point=%d: %s", v.Mode, v.Point, v.Detail)
		}
		t.Fatalf("%d violations in a %d-run sweep", len(res.Violations), res.Runs)
	}
	wantPoints := (res.CrashPoints + 6) / 7
	if res.Runs != wantPoints*4 {
		t.Fatalf("Runs = %d, want %d points x 4 modes", res.Runs, wantPoints)
	}
}

func TestSinglePointReproducerMode(t *testing.T) {
	res, err := Run(Config{
		Ops:   4,
		Seed:  7,
		Modes:       []nvm.EvictMode{nvm.EvictTorn},
		Point:       25,
		SinglePoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", res.Runs)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
}

func TestPointOutOfRange(t *testing.T) {
	_, err := Run(Config{Ops: 4, Seed: 7, Point: 1 << 30, SinglePoint: true})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range", err)
	}
}

func TestReproducerLine(t *testing.T) {
	v := Violation{Mode: nvm.EvictRandom, Point: 123, Seed: 9}
	got := v.Reproducer(256, 0.5)
	want := "poseidon-torture -ops 256 -seed 9 -modes random -point 123 -prob 0.5"
	if got != want {
		t.Fatalf("Reproducer = %q, want %q", got, want)
	}
}
