// Package torture implements exhaustive crash-point sweeps: a scripted
// workload is measured once to count its mutating device operations, then
// re-run with the failpoint armed at EVERY operation index, crashed under a
// configurable eviction policy, reloaded, and audited. A single surviving
// inconsistency is a violation, reported with the minimal reproducer
// (seed, crash point, evict mode) that replays it.
package torture

import (
	"errors"
	"fmt"
	"sync"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/workloads"
)

// Config parameterises one sweep.
type Config struct {
	// Ops is the operation count of the scripted mix workload; it scales
	// the number of crash points swept.
	Ops int
	// Seed drives the workload and (mixed with the crash point) each
	// crash's eviction randomness.
	Seed int64
	// Modes are the eviction policies to sweep. Empty defaults to all.
	Modes []nvm.EvictMode
	// Workers bounds parallel crash-point runs. 0 defaults to 4.
	Workers int
	// Prob is the EvictRandom survival / EvictTorn full-persist
	// probability. 0 defaults to 0.5.
	Prob float64
	// Stride sweeps every Stride-th crash point (>=1). 0 defaults to 1.
	Stride int
	// Point restricts the sweep to one crash point when SinglePoint is set
	// — reproducer mode.
	Point       int
	SinglePoint bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Telemetry, when non-nil, instruments every torture heap: recovery and
	// scrub latencies accumulate across the sweep, and each violation is
	// journalled as an EventViolation. Nil costs nothing.
	Telemetry *obs.Telemetry
}

// Violation is one crash point whose recovery left the heap inconsistent.
type Violation struct {
	Mode   nvm.EvictMode
	Point  int
	Seed   int64
	Report nvm.CrashReport // fate of the dirty lines at this crash
	Detail string          // what the audit saw
}

// Reproducer returns the poseidon-torture invocation that replays exactly
// this violation.
func (v Violation) Reproducer(ops int, prob float64) string {
	return fmt.Sprintf("poseidon-torture -ops %d -seed %d -modes %s -point %d -prob %g",
		ops, v.Seed, v.Mode, v.Point, prob)
}

// Result summarises a sweep.
type Result struct {
	CrashPoints int // mutating device ops in the workload (points per mode)
	Runs        int // crash/recover/audit cycles executed
	Persisted   uint64
	Dropped     uint64
	Torn        uint64
	Violations  []Violation
}

func (c Config) withDefaults() Config {
	if len(c.Modes) == 0 {
		c.Modes = []nvm.EvictMode{nvm.EvictNone, nvm.EvictAll, nvm.EvictRandom, nvm.EvictTorn}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Prob == 0 {
		c.Prob = 0.5
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	return c
}

// heapOptions is the fixed torture-heap geometry: small enough that a
// crash/recover/audit cycle is fast, large enough that the mix workload
// never legitimately exhausts it.
func heapOptions(tel *obs.Telemetry) core.Options {
	return core.Options{
		Subheaps:        2,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0x70051D04, // fixed: runs must be byte-identical
		CrashTracking:   true,
		ScrubOnLoad:     true,
		// Rings on: the workload's remote-free segment sweeps crash points
		// through producer persists, owner drains and recovery replays. A
		// pure power failure must never corrupt a ring entry (slots are
		// single 8-byte words on their own cachelines), so the quarantine
		// check below also guards the ring's crash argument.
		RemoteFreeRings: true,
		// Magazines on: the workload's magazine segment sweeps crash points
		// through refill persists, overflow flush-backs and the close-time
		// sync, and recovery's manifest replay must reclaim every cached
		// block at whatever boundary the failpoint lands on.
		Magazines: core.MagazineOptions{Capacity: 8, Classes: 4},
		Telemetry: tel,
	}
}

// runWorkload drives the scripted operation sequence on h: transactional
// allocation bursts, a root update, the seeded alloc/free mix, and one
// Kruskal iteration. Deterministic for a given seed.
func runWorkload(h *core.Heap, ops int, seed int64) error {
	th, err := h.Thread()
	if err != nil {
		return err
	}
	for burst := 0; burst < 2; burst++ {
		for j := 0; j < 4; j++ {
			if _, err := th.TxAlloc(64<<j, j == 3); err != nil {
				th.Close()
				return err
			}
		}
	}
	root, err := th.Alloc(64)
	if err != nil {
		th.Close()
		return err
	}
	if err := h.SetRoot(root); err != nil {
		th.Close()
		return err
	}
	th.Close()

	hd, err := alloc.WrapPoseidon(h).Thread(0)
	if err != nil {
		return err
	}
	defer hd.Close()
	if _, err := workloads.Mix(hd, ops, seed); err != nil {
		return err
	}
	if _, err := workloads.Kruskal(hd, 1, seed+1); err != nil {
		return err
	}
	if err := remoteFreeSegment(h); err != nil {
		return err
	}
	return magazineSegment(h)
}

// remoteFreeSegment is the scripted (deterministic, single-goroutine)
// remote-free mix: blocks allocated on sub-heap 0 are freed from a thread
// pinned to sub-heap 1, so every free rides sub-heap 0's ring. The first
// batch is drained by the owner; the second stays pending, so crash points
// falling after it exercise the recovery replay — and points inside the
// drain sweep the free-commit / slot-clear / release boundaries.
func remoteFreeSegment(h *core.Heap) error {
	t0, err := h.ThreadOn(0)
	if err != nil {
		return err
	}
	defer t0.Close()
	t1, err := h.ThreadOn(1)
	if err != nil {
		return err
	}
	defer t1.Close()

	const blocks = 10
	var ptrs [blocks]core.NVMPtr
	for i := range ptrs {
		if ptrs[i], err = t0.Alloc(uint64(64 << (i % 3))); err != nil {
			return err
		}
	}
	for _, p := range ptrs[:6] {
		if err := t1.Free(p); err != nil {
			return err
		}
	}
	if err := h.DrainRemoteFrees(); err != nil {
		return err
	}
	for _, p := range ptrs[6:] {
		if err := t1.Free(p); err != nil {
			return err
		}
	}
	return nil
}

// magazineSegment is the scripted magazine mix on a capacity-8 magazine:
// 12 class-1 allocations force three refill carves (the manifest-persist
// boundary), 12 frees force an overflow flush-back at the ninth push (the
// entry-clear boundary), and the Close sync flushes the remainder — so
// swept crash points land inside refill commits, manifest flushes, word
// clears and the close-time sync, and recovery's manifest replay runs
// against every intermediate state.
func magazineSegment(h *core.Heap) error {
	t0, err := h.ThreadOn(0)
	if err != nil {
		return err
	}
	defer t0.Close()

	const blocks = 12
	var ptrs [blocks]core.NVMPtr
	for i := range ptrs {
		if ptrs[i], err = t0.Alloc(96); err != nil {
			return err
		}
	}
	for _, p := range ptrs {
		if err := t0.Free(p); err != nil {
			return err
		}
	}
	return nil
}

// CountOps measures the workload: it arms an effectively infinite failpoint
// budget, runs to completion, and reads back how much was consumed — the
// exact number of mutating device operations, i.e. the crash points to
// sweep.
func CountOps(ops int, seed int64) (int, error) {
	// Uninstrumented on purpose: the measurement run must consume exactly
	// the same device-op budget as the swept runs, and telemetry adds no
	// device ops either way — but keeping it out makes that obvious.
	h, err := core.Create(heapOptions(nil))
	if err != nil {
		return 0, err
	}
	defer h.Close()
	const huge = int64(1) << 40
	h.Device().FailAfter(huge)
	err = runWorkload(h, ops, seed)
	consumed := huge - h.Device().FailBudgetRemaining()
	h.Device().DisarmFailpoint()
	if err != nil {
		return 0, fmt.Errorf("torture: workload failed during measurement: %w", err)
	}
	return int(consumed), nil
}

// pointSeed mixes the sweep seed with a crash point so each crash draws
// independent (but reproducible) eviction randomness.
func pointSeed(seed int64, point int) int64 {
	return seed ^ int64(uint64(point)*0x9E3779B97F4A7C15)
}

// runPoint executes one crash/recover/audit cycle: fresh heap, workload
// with the failpoint armed at point, crash under mode, reload, full audit,
// post-recovery smoke allocation. Returns a non-nil Violation on any
// surviving inconsistency.
func runPoint(cfg Config, mode nvm.EvictMode, point int) (nvm.CrashReport, *Violation, error) {
	fail := func(report nvm.CrashReport, format string, args ...any) (nvm.CrashReport, *Violation, error) {
		detail := fmt.Sprintf(format, args...)
		cfg.Telemetry.Emit(obs.EventViolation, -1,
			fmt.Sprintf("mode=%s point=%d: %s", mode, point, detail))
		return report, &Violation{
			Mode:   mode,
			Point:  point,
			Seed:   cfg.Seed,
			Report: report,
			Detail: detail,
		}, nil
	}

	h, err := core.Create(heapOptions(cfg.Telemetry))
	if err != nil {
		return nvm.CrashReport{}, nil, err
	}
	dev := h.Device()
	dev.FailAfter(int64(point))
	werr := runWorkload(h, cfg.Ops, cfg.Seed)
	tripped := dev.FailBudgetRemaining() < 0
	dev.DisarmFailpoint()
	if !tripped {
		return nvm.CrashReport{}, nil, fmt.Errorf(
			"torture: point %d did not trip (workload is non-deterministic?)", point)
	}
	// A nil werr with the budget exhausted means the failpoint fired
	// inside a best-effort path (a magazine flush-back at thread close is
	// deliberately absorbed — the cached blocks stay manifest-recorded for
	// recovery); the crash/recover/audit below still validates that state.
	if werr != nil && !errors.Is(werr, nvm.ErrDeviceFailed) {
		return fail(nvm.CrashReport{}, "workload failed before the crash point: %v", werr)
	}
	_ = h.Close()

	report, err := dev.Crash(nvm.CrashPolicy{
		Mode: mode,
		Prob: cfg.Prob,
		Seed: pointSeed(cfg.Seed, point),
	})
	if err != nil {
		return report, nil, err
	}

	h2, err := core.Load(dev, heapOptions(cfg.Telemetry))
	if err != nil {
		return fail(report, "Load after crash: %v", err)
	}
	defer h2.Close()
	check, err := h2.Check()
	if err != nil {
		return fail(report, "audit error: %v", err)
	}
	switch {
	case len(check.Problems) > 0:
		return fail(report, "audit found %d problems: %v", len(check.Problems), check.Problems)
	case check.Quarantined > 0:
		// With ScrubOnLoad on, a quarantine here means recovery classified
		// legitimate crash damage as corruption — degrade-don't-die must
		// never fire on a pure power failure.
		return fail(report, "recovery quarantined %d sub-heaps: %+v",
			check.Quarantined, check.SubheapReports)
	case check.PendingUndo != 0 || check.PendingTx != 0 || check.PendingRemote != 0 ||
		check.PendingCached != 0:
		return fail(report, "recovery left pending work: undo=%d tx=%d remote=%d cached=%d",
			check.PendingUndo, check.PendingTx, check.PendingRemote, check.PendingCached)
	}

	// The recovered heap must still serve: allocate and free a block.
	th, err := h2.Thread()
	if err != nil {
		return fail(report, "post-recovery Thread: %v", err)
	}
	defer th.Close()
	p, err := th.Alloc(128)
	if err != nil {
		return fail(report, "post-recovery Alloc: %v", err)
	}
	if err := th.Free(p); err != nil {
		return fail(report, "post-recovery Free: %v", err)
	}
	return report, nil, nil
}

// Run executes the sweep described by cfg.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	total, err := CountOps(cfg.Ops, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	res := Result{CrashPoints: total}

	var points []int
	if cfg.SinglePoint {
		if cfg.Point < 0 || cfg.Point >= total {
			return res, fmt.Errorf("torture: point %d out of range [0, %d)", cfg.Point, total)
		}
		points = []int{cfg.Point}
	} else {
		for k := 0; k < total; k += cfg.Stride {
			points = append(points, k)
		}
	}
	logf("workload: %d mix ops -> %d mutating device ops; sweeping %d points x %d modes",
		cfg.Ops, total, len(points), len(cfg.Modes))

	var (
		mu    sync.Mutex
		first error
	)
	for _, mode := range cfg.Modes {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for point := range jobs {
					report, v, err := runPoint(cfg, mode, point)
					mu.Lock()
					res.Runs++
					res.Persisted += uint64(report.PersistedLines)
					res.Dropped += uint64(report.DroppedLines)
					res.Torn += uint64(report.TornLines)
					if err != nil && first == nil {
						first = err
					}
					if v != nil {
						res.Violations = append(res.Violations, *v)
					}
					mu.Unlock()
				}
			}()
		}
		for _, k := range points {
			jobs <- k
		}
		close(jobs)
		wg.Wait()
		mu.Lock()
		viol := len(res.Violations)
		mu.Unlock()
		logf("mode %-6s swept %d points (%d violations so far)", mode, len(points), viol)
		if first != nil {
			return res, first
		}
	}
	return res, nil
}
