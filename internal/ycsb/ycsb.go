// Package ycsb reimplements the YCSB workloads the paper's Figure 9 uses:
// Load (100 % inserts) and Workload A (50 % reads / 50 % updates over a
// Zipfian key popularity distribution), executed against the FAST-FAIR
// persistent B+-tree with values allocated from the allocator under test.
package ycsb

import (
	"math"
	"math/rand"

	"poseidon/internal/alloc"
	"poseidon/internal/fastfair"
)

// ValueSize is the payload stored under each key (YCSB's default field
// payload scaled to one field).
const ValueSize = 100

// Zipf generates keys in [0, n) with the standard YCSB scrambled-Zipfian
// popularity skew (theta 0.99).
type Zipf struct {
	rng   *rand.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf builds a generator over n items.
func NewZipf(seed int64, n uint64, theta float64) *Zipf {
	z := &Zipf{rng: rand.New(rand.NewSource(seed)), n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// O(n) zeta; cached per generator. Key counts here are ≤ a few
	// million, so this is fine at setup time.
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next item index (popular items cluster near 0, then
// are scrambled by the caller's key mapping).
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// KeyOf maps an item index to its scrambled key (FNV-style mixing, as
// YCSB's scrambled Zipfian does).
func KeyOf(i uint64) uint64 {
	k := i*0x9E3779B97F4A7C15 + 0x123456789
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	if k == 0 {
		k = 1
	}
	return k
}

// Load inserts items [from, to) into the tree: each insert allocates and
// fills a ValueSize block, then indexes it — the paper's Load phase.
// Returns the number of operations performed.
func Load(tree *fastfair.Tree, h alloc.Handle, from, to uint64) (uint64, error) {
	payload := make([]byte, ValueSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	ops := uint64(0)
	for i := from; i < to; i++ {
		v, err := h.Alloc(ValueSize)
		if err != nil {
			return ops, err
		}
		if err := h.Write(v, 0, payload); err != nil {
			return ops, err
		}
		if err := h.Persist(v, 0, ValueSize); err != nil {
			return ops, err
		}
		if err := tree.Insert(h, KeyOf(i), uint64(v)); err != nil {
			return ops, err
		}
		ops++
	}
	return ops, nil
}

// WorkloadA performs ops operations: 50 % reads and 50 % updates over a
// Zipfian distribution across n loaded items. An update allocates a new
// value block, swaps it into the index, and frees the old block — the
// allocation-heavy YCSB workload the paper selects (§7.5).
func WorkloadA(tree *fastfair.Tree, h alloc.Handle, z *Zipf, rng *rand.Rand, ops uint64) (uint64, error) {
	return workload(tree, h, z, rng, ops, 50)
}

// WorkloadB is YCSB's read-heavy mix (95 % reads / 5 % updates). The paper
// skips it as "mostly read-intensive" (§7.5) — it is provided so users can
// see exactly that effect: allocator differences compress even further.
func WorkloadB(tree *fastfair.Tree, h alloc.Handle, z *Zipf, rng *rand.Rand, ops uint64) (uint64, error) {
	return workload(tree, h, z, rng, ops, 5)
}

// workload runs the read/update mix with the given update percentage.
func workload(tree *fastfair.Tree, h alloc.Handle, z *Zipf, rng *rand.Rand, ops uint64, updatePct int) (uint64, error) {
	payload := make([]byte, ValueSize)
	buf := make([]byte, ValueSize)
	done := uint64(0)
	for ; done < ops; done++ {
		key := KeyOf(z.Next())
		if rng.Intn(100) >= updatePct {
			// Read.
			v, ok, err := tree.Search(h, key)
			if err != nil {
				return done, err
			}
			if ok {
				if err := h.Read(alloc.Ptr(v), 0, buf); err != nil {
					return done, err
				}
			}
			continue
		}
		// Update: new value block in, old one freed.
		nv, err := h.Alloc(ValueSize)
		if err != nil {
			return done, err
		}
		if err := h.Write(nv, 0, payload); err != nil {
			return done, err
		}
		if err := h.Persist(nv, 0, ValueSize); err != nil {
			return done, err
		}
		old, ok, err := tree.Update(h, key, uint64(nv))
		if err != nil {
			return done, err
		}
		if !ok {
			// Key absent (Zipf tail rounding): drop the new block.
			if err := h.Free(nv); err != nil {
				return done, err
			}
			continue
		}
		if old != 0 {
			if err := h.Free(alloc.Ptr(old)); err != nil {
				return done, err
			}
		}
	}
	return done, nil
}
