package ycsb

import (
	"math/rand"
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/fastfair"
)

func newFixture(t *testing.T) (alloc.Allocator, *fastfair.Tree, alloc.Handle) {
	t.Helper()
	a, err := alloc.NewPoseidon(core.Options{
		Subheaps:        2,
		SubheapUserSize: 16 << 20,
		SubheapMetaSize: 4 << 20,
		UndoLogSize:     64 << 10,
		MaxThreads:      16,
		HeapID:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := fastfair.New(h)
	if err != nil {
		t.Fatal(err)
	}
	return a, tree, h
}

func TestZipfBoundsAndSkew(t *testing.T) {
	const n = 1000
	z := NewZipf(1, n, 0.99)
	counts := make([]int, n+1)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v > n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Zipfian: item 0 must be far more popular than the median item.
	if counts[0] < draws/100 {
		t.Fatalf("head item drawn %d times of %d — not skewed", counts[0], draws)
	}
	if counts[0] <= counts[n/2]*10 {
		t.Fatalf("head %d vs median %d — insufficient skew", counts[0], counts[n/2])
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(7, 100, 0.99)
	b := NewZipf(7, 100, 0.99)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestKeyOfInjectiveSample(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 100000; i++ {
		k := KeyOf(i)
		if k == 0 {
			t.Fatal("zero key")
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("KeyOf collision: %d and %d", prev, i)
		}
		seen[k] = i
	}
}

func TestLoadThenWorkloadA(t *testing.T) {
	a, tree, h := newFixture(t)
	defer a.Close()
	defer h.Close()
	const n = 5000
	ops, err := Load(tree, h, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if ops != n {
		t.Fatalf("load ops = %d", ops)
	}
	// Every loaded key resolves to a readable value block.
	for i := uint64(0); i < n; i += 97 {
		v, ok, err := tree.Search(h, KeyOf(i))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		buf := make([]byte, ValueSize)
		if err := h.Read(alloc.Ptr(v), 0, buf); err != nil {
			t.Fatal(err)
		}
		if buf[5] != 5 {
			t.Fatalf("value payload corrupt: %v", buf[:8])
		}
	}
	z := NewZipf(3, n, 0.99)
	rng := rand.New(rand.NewSource(3))
	done, err := WorkloadA(tree, h, z, rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if done != 4000 {
		t.Fatalf("workload A did %d ops", done)
	}
}

func TestWorkloadBMostlyReads(t *testing.T) {
	a, tree, h := newFixture(t)
	defer a.Close()
	defer h.Close()
	const n = 2000
	if _, err := Load(tree, h, 0, n); err != nil {
		t.Fatal(err)
	}
	pa := a.(*alloc.Poseidon)
	before := pa.Heap().Stats()
	z := NewZipf(5, n, 0.99)
	rng := rand.New(rand.NewSource(5))
	if _, err := WorkloadB(tree, h, z, rng, 2000); err != nil {
		t.Fatal(err)
	}
	after := pa.Heap().Stats()
	updates := after.Allocs - before.Allocs
	// 5% of 2000 = ~100 updates; allow wide tolerance.
	if updates < 40 || updates > 220 {
		t.Fatalf("workload B performed %d updates of 2000 ops (want ~100)", updates)
	}
}
