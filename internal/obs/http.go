package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MuxConfig configures the telemetry HTTP endpoint. Snapshot is required;
// the rest are optional feature hooks.
type MuxConfig struct {
	// Snapshot is called once per scrape; must be safe for concurrent use.
	Snapshot func() *Snapshot
	// HeapProfile, when set, serves /debug/pprof/poseidon_heap: the
	// allocation-site profile as gzipped pprof protobuf.
	HeapProfile func() ([]byte, error)
	// Trace, when set, serves /debug/optrace: buffered op spans as Chrome
	// trace-event JSON.
	Trace func() []byte
	// Blackbox, when set, serves /debug/blackbox: the flight-recorder
	// timeline (events + spans + stalls, sequence-ordered) as JSON.
	Blackbox func() ([]byte, error)
}

// NewMux builds the metrics endpoint served by the -metrics flag of the
// poseidon tools:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the full Snapshot as JSON
//	/healthz       health state as JSON; 200 healthy/degraded, 503 otherwise
//	/vars          expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  the standard Go profiler endpoints
//
// snap is called once per scrape; it must be safe for concurrent use.
func NewMux(snap func() *Snapshot) *http.ServeMux {
	return NewMuxFrom(MuxConfig{Snapshot: snap})
}

// NewMuxFrom builds the endpoint with optional profiler/tracer routes:
//
//	/debug/pprof/poseidon_heap  allocation-site heap profile (pprof protobuf)
//	/debug/optrace              sampled op spans (Chrome trace-event JSON)
//
// Both are registered only when their hooks are set; the specific
// poseidon_heap pattern takes precedence over the /debug/pprof/ index.
func NewMuxFrom(cfg MuxConfig) *http.ServeMux {
	snap := cfg.Snapshot
	mux := http.NewServeMux()
	if cfg.HeapProfile != nil {
		mux.HandleFunc("/debug/pprof/poseidon_heap", func(w http.ResponseWriter, r *http.Request) {
			b, err := cfg.HeapProfile()
			if err != nil {
				http.Error(w, fmt.Sprintf("heap profile: %v", err), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="poseidon_heap.pb.gz"`)
			_, _ = w.Write(b)
		})
	}
	if cfg.Trace != nil {
		mux.HandleFunc("/debug/optrace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(cfg.Trace())
		})
	}
	if cfg.Blackbox != nil {
		mux.HandleFunc("/debug/blackbox", func(w http.ResponseWriter, r *http.Request) {
			b, err := cfg.Blackbox()
			if err != nil {
				http.Error(w, fmt.Sprintf("blackbox: %v", err), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, snap())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		hs := snap().Health
		if hs == nil {
			// No health layer wired (plain obs user): report liveness only.
			hs = &HealthStatus{State: "unknown"}
		}
		// Load balancers act on the status code: serve traffic while the
		// heap still accepts writes (healthy or degraded), shed it once
		// writes are rejected (read-only) or everything is benched (failed).
		if hs.ReadOnly || hs.State == "failed" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(hs)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	})
	mux.Handle("/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "poseidon telemetry: /metrics /metrics.json /healthz /vars /debug/pprof/")
	})
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	Addr string // actual listen address (resolves :0)
	srv  *http.Server
	ln   net.Listener
}

// Serve starts the metrics endpoint on addr (e.g. ":9120", "127.0.0.1:0")
// in a background goroutine and returns once the listener is bound, so the
// caller can print the resolved address before starting work.
func Serve(addr string, snap func() *Snapshot) (*Server, error) {
	return ServeConfig(addr, MuxConfig{Snapshot: snap})
}

// ServeConfig is Serve with the full endpoint configuration.
func ServeConfig(addr string, cfg MuxConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMuxFrom(cfg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
