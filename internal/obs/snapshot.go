package obs

import (
	"sort"
	"time"

	"poseidon/internal/nvm"
)

// OpStats is the merged latency view of one operation class.
type OpStats struct {
	Op      string
	Count   uint64
	TotalNS uint64
	MeanNS  uint64
	P50NS   uint64
	P95NS   uint64
	P99NS   uint64
	MaxNS   uint64
}

// ClassAttr is one operation class's share of device persistence traffic,
// with per-operation amplification ratios where an operation count exists.
type ClassAttr struct {
	Class        string
	Ops          uint64 // operations recorded for the class, 0 if untracked
	Writes       uint64
	BytesWritten uint64
	Flushes      uint64
	Fences       uint64
	WritesPerOp  float64 `json:",omitempty"`
	BytesPerOp   float64 `json:",omitempty"`
	FlushesPerOp float64 `json:",omitempty"`
	FencesPerOp  float64 `json:",omitempty"`
}

// SubheapGauge is the live state of one sub-heap. Filled by core.
type SubheapGauge struct {
	ID               int
	Initialized      bool
	Quarantined      bool
	QuarantineReason string `json:",omitempty"`
	AllocatedBlocks  uint64
	AllocatedBytes   uint64
	FreeBlocks       uint64
	FreeBytes        uint64
	LargestFreeBytes uint64
	// Fragmentation is 1 - largest-free-block/free-bytes: 0 when all free
	// space is one block, approaching 1 as it shatters.
	Fragmentation float64
}

// DeviceStats is the device-level view (flat counters + capacity gauges).
// Filled by core from nvm.StatsSnapshot.
type DeviceStats struct {
	StatsEnabled  bool
	Writes        uint64
	BytesWritten  uint64
	Flushes       uint64
	Fences        uint64
	CapacityBytes uint64
	ResidentBytes int64
}

// HealthStatus is the heap's health state machine position. Filled by core.
type HealthStatus struct {
	// State is the textual state: healthy, degraded, read-only, failed.
	State string
	// Code is the numeric state (0 healthy, 1 degraded, 2 read-only,
	// 3 failed), monotone in severity so alerting can threshold on it.
	Code int32
	// ReadOnly reports whether mutating operations are currently rejected.
	ReadOnly bool
	// Detail summarises why the heap is not healthy, empty when it is.
	Detail string `json:",omitempty"`
}

// EventsSnapshot summarises the journal. Dropped == Overwritten: events the
// fixed ring displaced before anyone read them (the journal-saturation
// signal; a quiet heap has 0, a saturated one climbs).
type EventsSnapshot struct {
	Emitted     uint64
	Overwritten uint64
	Dropped     uint64
	ByKind      map[string]uint64
	Recent      []Event
}

// Snapshot is the full telemetry state at one instant: what /metrics,
// the JSON endpoint, Heap.Metrics() and poseidon-inspect -stats all render.
type Snapshot struct {
	TakenAt     time.Time
	Ops         []OpStats
	Attribution []ClassAttr
	// Counters are the heap's flat lifetime counters (core.HeapStats
	// flattened by name). Filled by core.
	Counters map[string]uint64 `json:",omitempty"`
	Subheaps []SubheapGauge    `json:",omitempty"`
	Health   *HealthStatus     `json:",omitempty"`
	Device   DeviceStats
	Events   EventsSnapshot
	Profile  *ProfileStats `json:",omitempty"`
	Trace    *TracerStats  `json:",omitempty"`
	// Build, Runtime, Watchdog and Blackbox are filled by core (Heap.Metrics):
	// build identity, boot epoch/uptime, stall-watchdog counters and the
	// persistent flight recorder's state.
	Build    *BuildInfo     `json:",omitempty"`
	Runtime  *RuntimeStatus `json:",omitempty"`
	Watchdog *WatchdogStats `json:",omitempty"`
	Blackbox *BlackboxStats `json:",omitempty"`
}

// Snapshot merges every histogram shard, the attribution table and the
// journal into a self-contained view. Core layers (heap gauges, device
// stats, lifetime counters) are filled in by the caller. Nil-safe: a nil
// Telemetry yields an empty timestamped snapshot.
func (t *Telemetry) Snapshot() *Snapshot {
	snap := &Snapshot{TakenAt: time.Now()}
	if t == nil {
		return snap
	}

	opCount := map[nvm.OpClass]uint64{}
	for op := Op(0); op < NumOps; op++ {
		h := t.hists[op].Snapshot()
		snap.Ops = append(snap.Ops, OpStats{
			Op:      op.String(),
			Count:   h.Count,
			TotalNS: h.Sum,
			MeanNS:  h.Mean(),
			P50NS:   h.Quantile(0.50),
			P95NS:   h.Quantile(0.95),
			P99NS:   h.Quantile(0.99),
			MaxNS:   h.Max,
		})
		if c := attrClassOf[op]; c < nvm.NumClasses {
			opCount[c] += h.Count
		}
	}

	attr := t.attr.Snapshot()
	for c := nvm.OpClass(0); c < nvm.NumClasses; c++ {
		cc := attr[c]
		ca := ClassAttr{
			Class:        c.String(),
			Ops:          opCount[c],
			Writes:       cc.Writes,
			BytesWritten: cc.BytesWritten,
			Flushes:      cc.Flushes,
			Fences:       cc.Fences,
		}
		if ca.Ops > 0 {
			n := float64(ca.Ops)
			ca.WritesPerOp = float64(cc.Writes) / n
			ca.BytesPerOp = float64(cc.BytesWritten) / n
			ca.FlushesPerOp = float64(cc.Flushes) / n
			ca.FencesPerOp = float64(cc.Fences) / n
		}
		snap.Attribution = append(snap.Attribution, ca)
	}

	snap.Events = EventsSnapshot{
		Emitted:     t.journal.Emitted(),
		Overwritten: t.journal.Overwritten(),
		ByKind:      map[string]uint64{},
		Recent:      t.journal.Events(),
	}
	snap.Events.Dropped = snap.Events.Overwritten
	for k := EventKind(0); k < NumEventKinds; k++ {
		if n := t.journal.KindCount(k); n > 0 {
			snap.Events.ByKind[k.String()] = n
		}
	}
	if t.prof != nil {
		ps := t.prof.Stats()
		snap.Profile = &ps
	}
	if t.tracer != nil {
		ts := t.tracer.Stats()
		snap.Trace = &ts
	}
	return snap
}

// CounterNames returns the snapshot's counter names, sorted, for
// deterministic exposition.
func (s *Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
