// External-package profiler tests: the profiler trims the allocator's own
// frames from symbolized stacks, so call sites must live OUTSIDE
// poseidon/internal/obs for their frames to appear in profiles — exactly
// like real application call sites.
package obs_test

import (
	"strings"
	"sync"
	"testing"

	"poseidon/internal/obs"
)

// sampleSiteA and sampleSiteB are two distinct allocation sites. noinline
// keeps each an honest stack frame of its own.
//
//go:noinline
func sampleSiteA(p *obs.Profiler, loc, size uint64) { p.SampleAlloc(loc, size, 0) }

//go:noinline
func sampleSiteB(p *obs.Profiler, loc, size uint64) { p.SampleAlloc(loc, size, 0) }

// findSite returns the site whose frames mention fn.
func findSite(t *testing.T, sites []obs.SiteStat, fn string) obs.SiteStat {
	t.Helper()
	for _, s := range sites {
		for _, f := range s.Frames {
			if strings.Contains(f.Func, fn) {
				return s
			}
		}
	}
	t.Fatalf("no site with frame %q among %d sites", fn, len(sites))
	return obs.SiteStat{}
}

func TestProfilerAggregatesBySite(t *testing.T) {
	p := obs.NewProfiler(4)
	p.SetEpoch(1)
	// A site is a full symbolized stack (frames + lines), so each site's
	// samples must come from a single call line.
	for i := 0; i < 3; i++ {
		sampleSiteA(p, uint64(1+i), 128)
	}
	for i := 0; i < 2; i++ {
		sampleSiteB(p, uint64(10+i), 256)
	}

	a := findSite(t, p.Sites(), "sampleSiteA")
	if a.LiveObjects != 3 || a.LiveBytes != 384 || a.AllocObjects != 3 || a.AllocBytes != 384 {
		t.Fatalf("site A = %+v", a)
	}
	if !strings.Contains(a.Frames[0].Func, "sampleSiteA") {
		t.Fatalf("leading frame = %q, want the call site itself", a.Frames[0].Func)
	}
	if a.FirstEpoch != 1 || a.Recovered {
		t.Fatalf("site A epoch/recovered = %d/%v", a.FirstEpoch, a.Recovered)
	}
	b := findSite(t, p.Sites(), "sampleSiteB")
	if b.LiveObjects != 2 || b.LiveBytes != 512 {
		t.Fatalf("site B = %+v", b)
	}

	// A free of a sampled pointer decrements its site; unknown pointers
	// are no-ops.
	p.SampleFree(2)
	p.SampleFree(9999)
	a = findSite(t, p.Sites(), "sampleSiteA")
	if a.LiveObjects != 2 || a.LiveBytes != 256 || a.FreeObjects != 1 || a.FreeBytes != 128 {
		t.Fatalf("site A after free = %+v", a)
	}

	st := p.Stats()
	if !st.Enabled || st.Rate != 4 || st.SampledAllocs != 5 || st.SampledFrees != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DroppedSites != 0 || st.Sites < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLeakSitesByEpoch(t *testing.T) {
	p := obs.NewProfiler(1)
	p.SetEpoch(1)
	sampleSiteA(p, 1, 64) // first seen in epoch 1
	p.SetEpoch(3)
	sampleSiteB(p, 2, 64) // first seen in epoch 3

	leaks := p.LeakSites(3)
	if len(leaks) != 1 || !strings.Contains(leaks[0].Frames[0].Func, "sampleSiteA") {
		t.Fatalf("leaks before epoch 3 = %+v", leaks)
	}
	// Freeing the old block clears the leak report.
	p.SampleFree(1)
	if leaks := p.LeakSites(3); len(leaks) != 0 {
		t.Fatalf("leaks after free = %+v", leaks)
	}
}

func TestAdoptRecoveredMergesWithLiveSite(t *testing.T) {
	// Round 0 samples a site; round 1 adopts that snapshot into a fresh
	// profiler (simulating a restart) and samples the SAME call-site line
	// again. The two observations must collapse into one row spanning both
	// lives of the process.
	p := obs.NewProfiler(1)
	p.SetEpoch(1)
	for i := 0; i < 2; i++ {
		if i == 1 {
			old := findSite(t, p.Sites(), "sampleSiteA")
			old.Recovered = true
			p = obs.NewProfiler(1)
			p.SetEpoch(2)
			p.AdoptRecovered([]obs.SiteStat{old})
		}
		sampleSiteA(p, uint64(100+i), 64)
	}
	sites := p.Sites()
	if len(sites) != 1 {
		t.Fatalf("got %d sites, want the recovered and live views merged into 1", len(sites))
	}
	s := sites[0]
	if s.LiveObjects != 2 || s.LiveBytes != 128 || s.AllocObjects != 2 {
		t.Fatalf("merged site = %+v", s)
	}
	if !s.Recovered || s.FirstEpoch != 1 {
		t.Fatalf("merged site recovered=%v firstEpoch=%d, want true/1", s.Recovered, s.FirstEpoch)
	}
}

func TestProfilerReset(t *testing.T) {
	p := obs.NewProfiler(1)
	sampleSiteA(p, 1, 64)
	p.Reset()
	if sites := p.Sites(); len(sites) != 0 {
		t.Fatalf("sites after reset = %+v", sites)
	}
	frees := p.Stats().SampledFrees
	p.SampleFree(1) // live map was cleared: must be a no-op
	if p.Stats().SampledFrees != frees {
		t.Fatal("free of a reset pointer was counted")
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *obs.Profiler
	p.SampleAlloc(1, 64, 0)
	p.SampleFree(1)
	p.AdoptRecovered([]obs.SiteStat{{Hash: 1}})
	p.Reset()
	p.SetEpoch(5)
	if p.Sites() != nil || p.LeakSites(1) != nil || p.Rate() != 0 || p.Epoch() != 0 {
		t.Fatal("nil profiler leaked state")
	}
	if st := p.Stats(); st != (obs.ProfileStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestConcurrentSampleVsSnapshot runs sampled allocs/frees against
// concurrent snapshots and renders; meaningful under -race, and the final
// live count must balance.
func TestConcurrentSampleVsSnapshot(t *testing.T) {
	p := obs.NewProfiler(2)
	p.SetEpoch(1)
	var wg sync.WaitGroup
	const workers, iters = 4, 200
	freed := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				loc := uint64(w*100000 + i)
				sampleSiteA(p, loc, 64)
				if i%3 == 0 {
					p.SampleFree(loc)
					freed[w]++
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = p.Sites()
			_ = p.WritePprof()
			_ = p.Stats()
		}
	}()
	wg.Wait()
	<-done

	st := p.Stats()
	if st.SampledAllocs != workers*iters {
		t.Fatalf("sampled allocs = %d, want %d", st.SampledAllocs, workers*iters)
	}
	var live int64
	for _, s := range p.Sites() {
		live += s.LiveObjects
	}
	var wantFrees uint64
	for _, n := range freed {
		wantFrees += uint64(n)
	}
	if st.SampledFrees != wantFrees || live != int64(st.SampledAllocs-wantFrees) {
		t.Fatalf("live=%d frees=%d, want live=allocs-frees=%d",
			live, st.SampledFrees, int64(st.SampledAllocs-wantFrees))
	}
}
