package obs

// pprof rendering: serialize a profiler snapshot as a gzip-compressed
// profile.proto message so `go tool pprof` consumes it directly. The wire
// format is hand-rolled — the repo is dependency-free, and the subset of
// protobuf a pprof profile needs (varints, length-delimited fields, packed
// repeated integers) is a page of code. Field numbers follow
// github.com/google/pprof/proto/profile.proto.
//
// A minimal parser for the same subset lives alongside the writer so tests
// (and poseidon-inspect) can round-trip endpoint output without the pprof
// module.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"time"
)

// --- protobuf writer -------------------------------------------------------

type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// uintField emits field num as a varint (wire type 0).
func (p *protoBuf) uintField(num int, v uint64) {
	if v == 0 {
		return
	}
	p.varint(uint64(num)<<3 | 0)
	p.varint(v)
}

func (p *protoBuf) intField(num int, v int64) { p.uintField(num, uint64(v)) }

// bytesField emits field num length-delimited (wire type 2).
func (p *protoBuf) bytesField(num int, b []byte) {
	p.varint(uint64(num)<<3 | 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packedInts emits a repeated integer field in packed encoding.
func (p *protoBuf) packedInts(num int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	p.bytesField(num, inner.b)
}

// msgField emits an embedded message built by fill.
func (p *protoBuf) msgField(num int, fill func(*protoBuf)) {
	var inner protoBuf
	fill(&inner)
	p.bytesField(num, inner.b)
}

// --- profile model ---------------------------------------------------------

// stringTable interns strings into the profile string table (index 0 must
// be the empty string).
type stringTable struct {
	idx map[string]int64
	tab []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]int64{"": 0}, tab: []string{""}}
}

func (st *stringTable) id(s string) int64 {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := int64(len(st.tab))
	st.idx[s] = i
	st.tab = append(st.tab, s)
	return i
}

// WritePprof renders the profiler's current sites as an uncompressed
// profile.proto message. Sample values are scaled by the sampling rate so
// pprof reports estimated population totals; when sampling is disabled
// (rate 0, e.g. a recovered-only profile) values pass through unscaled.
//
// Sample types, in order: inuse_objects/count, inuse_space/bytes,
// alloc_objects/count, alloc_space/bytes (inuse_space is the default view —
// live persistent bytes by allocation site). Each sample carries a
// first_epoch numeric label and recovered="true" when the site was restored
// from the persistent side-table.
func (p *Profiler) WritePprof() []byte {
	sites := p.Sites()
	scale := int64(1)
	if r := p.Rate(); r > 1 {
		scale = int64(r)
	}
	st := newStringTable()
	var out protoBuf

	sampleType := func(typ, unit string) func(*protoBuf) {
		t, u := st.id(typ), st.id(unit)
		return func(b *protoBuf) {
			b.intField(1, t)
			b.intField(2, u)
		}
	}
	// String-table ids must be interned before the string table itself is
	// emitted, so build every message first, append field 6 last.
	out.msgField(1, sampleType("inuse_objects", "count"))
	out.msgField(1, sampleType("inuse_space", "bytes"))
	out.msgField(1, sampleType("alloc_objects", "count"))
	out.msgField(1, sampleType("alloc_space", "bytes"))

	firstEpochKey := st.id("first_epoch")
	recoveredKey := st.id("recovered")
	recoveredTrue := st.id("true")

	// One location+function per distinct frame.
	type frameIDs struct{ loc, fn uint64 }
	frames := map[SiteFrame]frameIDs{}
	nextID := uint64(1)
	var locs, funcs []func(*protoBuf)
	frameID := func(f SiteFrame) uint64 {
		if ids, ok := frames[f]; ok {
			return ids.loc
		}
		ids := frameIDs{loc: nextID, fn: nextID}
		nextID++
		frames[f] = ids
		name, file, line := st.id(f.Func), st.id(f.File), int64(f.Line)
		funcs = append(funcs, func(b *protoBuf) {
			b.uintField(1, ids.fn)
			b.intField(2, name)
			b.intField(3, name)
			b.intField(4, file)
		})
		locs = append(locs, func(b *protoBuf) {
			b.uintField(1, ids.loc)
			b.msgField(4, func(l *protoBuf) {
				l.uintField(1, ids.fn)
				l.intField(2, line)
			})
		})
		return ids.loc
	}

	var samples []func(*protoBuf)
	for _, site := range sites {
		site := site
		var locIDs []int64
		for _, f := range site.Frames {
			locIDs = append(locIDs, int64(frameID(f)))
		}
		vals := []int64{
			site.LiveObjects * scale,
			site.LiveBytes * scale,
			int64(site.AllocObjects) * scale,
			int64(site.AllocBytes) * scale,
		}
		samples = append(samples, func(b *protoBuf) {
			b.packedInts(1, locIDs)
			b.packedInts(2, vals)
			b.msgField(3, func(l *protoBuf) {
				l.intField(1, firstEpochKey)
				l.intField(3, int64(site.FirstEpoch))
			})
			if site.Recovered {
				b.msgField(3, func(l *protoBuf) {
					l.intField(1, recoveredKey)
					l.intField(2, recoveredTrue)
				})
			}
		})
	}
	for _, s := range samples {
		out.msgField(2, s)
	}
	for _, l := range locs {
		out.msgField(4, l)
	}
	for _, f := range funcs {
		out.msgField(5, f)
	}

	out.intField(9, time.Now().UnixNano()) // time_nanos
	out.msgField(11, sampleType("space", "bytes"))
	out.intField(12, int64(max(p.Rate(), 1))) // period
	defaultType := st.id("inuse_space")
	out.intField(14, defaultType)

	// string_table (field 6) — now complete.
	var final protoBuf
	final.b = append(final.b, out.b...)
	for _, s := range st.tab {
		final.bytesField(6, []byte(s))
	}
	return final.b
}

// WritePprofGzip renders the profile gzip-compressed, the framing pprof
// endpoints conventionally serve.
func (p *Profiler) WritePprofGzip() ([]byte, error) {
	raw := p.WritePprof()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- minimal parser --------------------------------------------------------

// PprofSample is one decoded sample: a resolved frame stack plus the four
// sample-type values in profile order.
type PprofSample struct {
	Frames []SiteFrame
	Values []int64
	Labels map[string]string
	NumLabels map[string]int64
}

// PprofProfile is the decoded subset of a profile.proto message the tests
// and offline tools need.
type PprofProfile struct {
	SampleTypes []string // "type/unit" per sample value
	Samples     []PprofSample
	Period      int64
}

type rawMsg []byte

// walkProto iterates a protobuf message, calling fn per field with the wire
// type and either the varint value or the length-delimited bytes.
func walkProto(b []byte, fn func(num int, wire int, v uint64, data []byte) error) error {
	for len(b) > 0 {
		tag, n := readVarint(b)
		if n == 0 {
			return fmt.Errorf("obs: pprof parse: bad tag varint")
		}
		b = b[n:]
		num, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0:
			v, n := readVarint(b)
			if n == 0 {
				return fmt.Errorf("obs: pprof parse: bad varint in field %d", num)
			}
			b = b[n:]
			if err := fn(num, wire, v, nil); err != nil {
				return err
			}
		case 2:
			l, n := readVarint(b)
			if n == 0 || uint64(len(b)-n) < l {
				return fmt.Errorf("obs: pprof parse: bad length in field %d", num)
			}
			data := b[n : n+int(l)]
			b = b[n+int(l):]
			if err := fn(num, wire, 0, data); err != nil {
				return err
			}
		case 1:
			if len(b) < 8 {
				return fmt.Errorf("obs: pprof parse: short fixed64")
			}
			b = b[8:]
		case 5:
			if len(b) < 4 {
				return fmt.Errorf("obs: pprof parse: short fixed32")
			}
			b = b[4:]
		default:
			return fmt.Errorf("obs: pprof parse: wire type %d unsupported", wire)
		}
	}
	return nil
}

func readVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7F) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func readPacked(v uint64, data []byte) []int64 {
	if data == nil {
		return []int64{int64(v)}
	}
	var out []int64
	for len(data) > 0 {
		x, n := readVarint(data)
		if n == 0 {
			break
		}
		out = append(out, int64(x))
		data = data[n:]
	}
	return out
}

// ParsePprof decodes a (possibly gzipped) profile.proto message produced by
// WritePprof — the round-trip half used by tests and poseidon-inspect.
func ParsePprof(b []byte) (*PprofProfile, error) {
	if len(b) >= 2 && b[0] == 0x1f && b[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(zr); err != nil {
			return nil, err
		}
		if err := zr.Close(); err != nil {
			return nil, err
		}
		b = buf.Bytes()
	}

	var strtab []string
	type rawSample struct {
		locIDs []int64
		values []int64
		labels []rawMsg
	}
	var rawSamples []rawSample
	type rawValueType struct{ typ, unit int64 }
	var sampleTypes []rawValueType
	funcs := map[uint64]struct {
		name, file int64
	}{}
	type lineInfo struct {
		fn   uint64
		line int64
	}
	locLines := map[uint64][]lineInfo{}
	prof := &PprofProfile{}

	err := walkProto(b, func(num, wire int, v uint64, data []byte) error {
		switch num {
		case 1: // sample_type
			var vt rawValueType
			if err := walkProto(data, func(n, _ int, vv uint64, _ []byte) error {
				if n == 1 {
					vt.typ = int64(vv)
				} else if n == 2 {
					vt.unit = int64(vv)
				}
				return nil
			}); err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			var rs rawSample
			if err := walkProto(data, func(n, _ int, vv uint64, dd []byte) error {
				switch n {
				case 1:
					rs.locIDs = append(rs.locIDs, readPacked(vv, dd)...)
				case 2:
					rs.values = append(rs.values, readPacked(vv, dd)...)
				case 3:
					rs.labels = append(rs.labels, rawMsg(dd))
				}
				return nil
			}); err != nil {
				return err
			}
			rawSamples = append(rawSamples, rs)
		case 4: // location
			var id uint64
			var lines []lineInfo
			if err := walkProto(data, func(n, _ int, vv uint64, dd []byte) error {
				switch n {
				case 1:
					id = vv
				case 4:
					var li lineInfo
					if err := walkProto(dd, func(m, _ int, lv uint64, _ []byte) error {
						if m == 1 {
							li.fn = lv
						} else if m == 2 {
							li.line = int64(lv)
						}
						return nil
					}); err != nil {
						return err
					}
					lines = append(lines, li)
				}
				return nil
			}); err != nil {
				return err
			}
			locLines[id] = lines
		case 5: // function
			var id uint64
			var name, file int64
			if err := walkProto(data, func(n, _ int, vv uint64, _ []byte) error {
				switch n {
				case 1:
					id = vv
				case 2:
					name = int64(vv)
				case 4:
					file = int64(vv)
				}
				return nil
			}); err != nil {
				return err
			}
			funcs[id] = struct{ name, file int64 }{name, file}
		case 6: // string_table
			strtab = append(strtab, string(data))
		case 12:
			prof.Period = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i int64) string {
		if i < 0 || i >= int64(len(strtab)) {
			return ""
		}
		return strtab[i]
	}
	for _, vt := range sampleTypes {
		prof.SampleTypes = append(prof.SampleTypes, str(vt.typ)+"/"+str(vt.unit))
	}
	for _, rs := range rawSamples {
		s := PprofSample{Values: rs.values, Labels: map[string]string{}, NumLabels: map[string]int64{}}
		for _, id := range rs.locIDs {
			for _, li := range locLines[uint64(id)] {
				f := funcs[li.fn]
				s.Frames = append(s.Frames, SiteFrame{Func: str(f.name), File: str(f.file), Line: int(li.line)})
			}
		}
		for _, lm := range rs.labels {
			var key, sv int64
			var nv int64
			var hasNum bool
			if err := walkProto(lm, func(n, _ int, vv uint64, _ []byte) error {
				switch n {
				case 1:
					key = int64(vv)
				case 2:
					sv = int64(vv)
				case 3:
					nv = int64(vv)
					hasNum = true
				}
				return nil
			}); err != nil {
				return nil, err
			}
			if hasNum {
				s.NumLabels[str(key)] = nv
			} else {
				s.Labels[str(key)] = str(sv)
			}
		}
		prof.Samples = append(prof.Samples, s)
	}
	return prof, nil
}
