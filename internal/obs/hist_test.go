package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1025, 10},
		{1 << 20, 20}, {1<<20 - 1, 19},
		{^uint64(0), 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if BucketLower(0) != 0 {
		t.Errorf("BucketLower(0) = %d, want 0", BucketLower(0))
	}
	for i := 1; i < NumBuckets; i++ {
		lo := BucketLower(i)
		if lo != 1<<uint(i) {
			t.Fatalf("BucketLower(%d) = %d, want %d", i, lo, uint64(1)<<uint(i))
		}
		// Every bucket's lower bound must map back into that bucket, and
		// the value just below it into the previous one.
		if bucketOf(lo) != i {
			t.Fatalf("bucketOf(BucketLower(%d)) = %d", i, bucketOf(lo))
		}
		if bucketOf(lo-1) != i-1 {
			t.Fatalf("bucketOf(BucketLower(%d)-1) = %d, want %d", i, bucketOf(lo-1), i-1)
		}
	}
}

// TestHistogramConcurrentMatchesSerial records the same observation set
// concurrently (spread over shards and goroutines) and serially (one shard)
// and requires identical merged snapshots — the lock-free sharding must
// lose nothing. Run under -race this is also the data-race proof.
func TestHistogramConcurrentMatchesSerial(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5000
	)
	values := make([][]uint64, goroutines)
	rng := rand.New(rand.NewSource(7))
	for g := range values {
		values[g] = make([]uint64, perG)
		for i := range values[g] {
			values[g][i] = uint64(rng.Int63n(1 << 22))
		}
	}

	conc := newHistogram(4) // fewer shards than goroutines: forced sharing
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, v := range values[g] {
				conc.Record(g, v)
			}
		}(g)
	}
	wg.Wait()

	serial := newHistogram(1)
	for g := range values {
		for _, v := range values[g] {
			serial.Record(0, v)
		}
	}

	cs, ss := conc.Snapshot(), serial.Snapshot()
	if cs != ss {
		t.Fatalf("concurrent snapshot diverges from serial reference:\n conc=%+v\n serial=%+v", cs, ss)
	}
	if cs.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", cs.Count, goroutines*perG)
	}
}

func TestQuantile(t *testing.T) {
	h := newHistogram(1)
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	for i := 0; i < 100; i++ {
		h.Record(0, 1000) // bucket 9: [512, 1024)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v := s.Quantile(q)
		if v < 512 || v > 1000 {
			t.Fatalf("quantile(%g) = %d, want within [512, 1000]", q, v)
		}
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	if s.Mean() != 1000 {
		t.Fatalf("mean = %d, want 1000", s.Mean())
	}

	// A spread distribution must have monotone quantiles bounded by max.
	h2 := newHistogram(2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		h2.Record(i, uint64(rng.Int63n(1<<30)))
	}
	s2 := h2.Snapshot()
	p50, p95, p99 := s2.Quantile(0.5), s2.Quantile(0.95), s2.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= s2.Max) {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d max=%d", p50, p95, p99, s2.Max)
	}
	if p50 == 0 {
		t.Fatal("p50 = 0 for a wide distribution")
	}
}

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.Record(OpAlloc, 5)
	tel.RecordOn(3, OpFree, 5)
	tel.Emit(EventCrash, -1, "x")
	if ev := tel.Events(); ev != nil {
		t.Fatalf("nil telemetry Events = %v", ev)
	}
	if hs := tel.Hist(OpAlloc); hs.Count != 0 {
		t.Fatalf("nil telemetry Hist count = %d", hs.Count)
	}
	if a := tel.Attribution(); a != nil {
		t.Fatalf("nil telemetry Attribution = %v", a)
	}
	s := tel.Snapshot()
	if s == nil || len(s.Ops) != 0 {
		t.Fatalf("nil telemetry Snapshot = %+v", s)
	}
}
