package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the binary a scrape came from — the answer to "which
// build produced this metric?" during an incident.
type BuildInfo struct {
	GoVersion string
	// Revision is the VCS commit the binary was built from, "unknown" when
	// the build carried no VCS stamp (e.g. `go test` binaries).
	Revision string
	// Modified reports a dirty working tree at build time.
	Modified bool
}

// RuntimeStatus is the boot-scoped status block: which boot epoch the heap
// is on (the black-box ring's epoch counter, monotone across restarts) and
// how long this process has had it open.
type RuntimeStatus struct {
	BootEpoch     uint64
	UptimeSeconds float64
}

// WatchdogStats summarises the stall watchdog and the device latency tap.
type WatchdogStats struct {
	Enabled          bool
	StallThresholdNS int64
	// Stalls is the lifetime count of detected stalls (poseidon_stalls_total).
	Stalls        uint64
	FlushOutliers uint64
	FenceOutliers uint64
	FlushMaxNS    int64
	FenceMaxNS    int64
}

// BlackboxStats summarises the persistent flight recorder.
type BlackboxStats struct {
	Enabled         bool
	CapacityRecords uint64
	// Persisted counts records published to the ring this boot; Dropped
	// counts staged entries the bounded staging buffer displaced; Torn
	// counts ring slots found damaged at load.
	Persisted uint64
	Dropped   uint64
	Torn      uint64
	Epoch     uint64
	NextSeq   uint64
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// CollectBuildInfo reads the binary's embedded build metadata once and
// caches it (debug.ReadBuildInfo walks the module graph; not hot-path
// material).
func CollectBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
