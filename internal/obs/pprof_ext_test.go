package obs_test

import (
	"reflect"
	"strings"
	"testing"

	"poseidon/internal/obs"
)

func pprofSampleFor(t *testing.T, prof *obs.PprofProfile, fn string) obs.PprofSample {
	t.Helper()
	for _, s := range prof.Samples {
		for _, f := range s.Frames {
			if strings.Contains(f.Func, fn) {
				return s
			}
		}
	}
	t.Fatalf("no pprof sample with frame %q among %d samples", fn, len(prof.Samples))
	return obs.PprofSample{}
}

func TestPprofRoundTrip(t *testing.T) {
	p := obs.NewProfiler(8)
	p.SetEpoch(2)
	for i := 0; i < 2; i++ { // one call line = one site
		sampleSiteA(p, uint64(1+i), 128)
	}
	sampleSiteB(p, 3, 512)
	p.SampleFree(2)

	prof, err := obs.ParsePprof(p.WritePprof())
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	wantTypes := []string{"inuse_objects/count", "inuse_space/bytes", "alloc_objects/count", "alloc_space/bytes"}
	if !reflect.DeepEqual(prof.SampleTypes, wantTypes) {
		t.Fatalf("sample types = %v, want %v", prof.SampleTypes, wantTypes)
	}
	if prof.Period != 8 {
		t.Fatalf("period = %d, want the sampling rate 8", prof.Period)
	}

	// Values are scaled by the rate: site A has 1 live (one freed) and 2
	// cumulative sampled allocations of 128 B.
	a := pprofSampleFor(t, prof, "sampleSiteA")
	if want := []int64{1 * 8, 128 * 8, 2 * 8, 256 * 8}; !reflect.DeepEqual(a.Values, want) {
		t.Fatalf("site A values = %v, want %v", a.Values, want)
	}
	if a.NumLabels["first_epoch"] != 2 {
		t.Fatalf("first_epoch label = %v", a.NumLabels)
	}
	if _, ok := a.Labels["recovered"]; ok {
		t.Fatal("live site carries the recovered label")
	}
	if !strings.Contains(a.Frames[0].Func, "sampleSiteA") || a.Frames[0].Line == 0 {
		t.Fatalf("site A leading frame = %+v", a.Frames[0])
	}
	b := pprofSampleFor(t, prof, "sampleSiteB")
	if want := []int64{1 * 8, 512 * 8, 1 * 8, 512 * 8}; !reflect.DeepEqual(b.Values, want) {
		t.Fatalf("site B values = %v, want %v", b.Values, want)
	}
}

func TestPprofRecoveredSitesUnscaled(t *testing.T) {
	// A recovered-only profiler (rate 0, e.g. poseidon-inspect offline):
	// values pass through unscaled and carry recovered="true".
	p := obs.NewProfiler(0)
	p.SetEpoch(2)
	frames := []obs.SiteFrame{{Func: "app.leaker", File: "app.go", Line: 7}}
	p.AdoptRecovered([]obs.SiteStat{{
		Hash: obs.FrameHash(frames), Frames: frames,
		LiveObjects: 4, LiveBytes: 4096, AllocObjects: 4, AllocBytes: 4096,
		FirstEpoch: 1, Recovered: true,
	}})

	prof, err := obs.ParsePprof(p.WritePprof())
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	s := pprofSampleFor(t, prof, "app.leaker")
	if want := []int64{4, 4096, 4, 4096}; !reflect.DeepEqual(s.Values, want) {
		t.Fatalf("values = %v, want unscaled %v", s.Values, want)
	}
	if s.Labels["recovered"] != "true" || s.NumLabels["first_epoch"] != 1 {
		t.Fatalf("labels = %v / %v", s.Labels, s.NumLabels)
	}
	if s.Frames[0] != (obs.SiteFrame{Func: "app.leaker", File: "app.go", Line: 7}) {
		t.Fatalf("frame = %+v", s.Frames[0])
	}
}

func TestPprofGzipFraming(t *testing.T) {
	p := obs.NewProfiler(1)
	sampleSiteA(p, 1, 64)
	gz, err := p.WritePprofGzip()
	if err != nil {
		t.Fatalf("WritePprofGzip: %v", err)
	}
	if len(gz) < 2 || gz[0] != 0x1f || gz[1] != 0x8b {
		t.Fatal("not gzip-framed")
	}
	// ParsePprof transparently decompresses.
	prof, err := obs.ParsePprof(gz)
	if err != nil {
		t.Fatalf("ParsePprof(gzip): %v", err)
	}
	if len(prof.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(prof.Samples))
	}
}
