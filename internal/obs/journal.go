package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a journal entry.
type EventKind uint8

// Journal event kinds. These are the allocator's rare, structurally
// interesting moments — the things an operator greps a log for, kept
// in-process and drainable instead.
const (
	EventQuarantine     EventKind = iota // a sub-heap was taken out of service
	EventTransientRetry                  // device I/O survived ErrTransient via retry
	EventScrubFinding                    // load-time audit saw a problem
	EventCrash                           // a simulated power failure was injected
	EventRecovery                        // a heap load completed recovery
	EventViolation                       // a torture sweep found an inconsistency
	EventFreeRejected                    // Thread.Free rejected an invalid or double free
	EventRepair                          // a quarantined sub-heap was repaired (or repair failed)
	EventHealthChange                    // the heap's health state machine transitioned
	EventProfileReset                    // persistent profile side-table was torn; profile reset
	EventStall                           // watchdog saw an in-flight op exceed its deadline
	EventBlackboxTorn                    // black-box ring tail was torn; timeline truncated
	NumEventKinds
)

var eventKindNames = [NumEventKinds]string{
	"quarantine", "transient_retry", "scrub_finding", "crash", "recovery", "violation",
	"free_rejected", "repair", "health_change", "profile_reset", "stall", "blackbox_torn",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "invalid"
}

// Event is one structured journal entry.
type Event struct {
	Seq     uint64    // monotonically increasing emission number
	At      time.Time // emission time
	Kind    EventKind `json:"-"`
	KindStr string    `json:"Kind"` // filled at snapshot/drain time
	Subheap int       // affected sub-heap, -1 when not sub-heap scoped
	Detail  string
}

// Journal is a fixed-size ring buffer of rare structured events. Emission
// takes a mutex — events are orders of magnitude rarer than allocations, so
// the lock never contends with the hot path. When the ring is full the
// oldest entry is overwritten and counted.
//
// The ring is sequence-aligned: event seq lives at buf[seq % cap], always,
// so retained events are exactly [next-retained, next).
type Journal struct {
	mu          sync.Mutex
	buf         []Event
	next        uint64 // total emitted
	retained    int    // events currently held, ≤ len(buf)
	overwritten uint64
	byKind      [NumEventKinds]atomic.Uint64
}

const defaultJournalSize = 256

// newJournal sizes the ring; capacity < 1 gets the default.
func newJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = defaultJournalSize
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Emit appends an event, stamping its sequence number and time, and returns
// the stamped event (so a mirror can forward the exact entry).
func (j *Journal) Emit(kind EventKind, subheap int, detail string) Event {
	if int(kind) < len(j.byKind) {
		j.byKind[kind].Add(1)
	}
	j.mu.Lock()
	e := Event{
		Seq: j.next, At: time.Now(), Kind: kind, Subheap: subheap, Detail: detail,
	}
	j.buf[j.next%uint64(len(j.buf))] = e
	if j.retained == len(j.buf) {
		j.overwritten++
	} else {
		j.retained++
	}
	j.next++
	j.mu.Unlock()
	return e
}

// snapshotLocked copies the retained events oldest-first. Caller holds mu.
func (j *Journal) snapshotLocked() []Event {
	out := make([]Event, 0, j.retained)
	for seq := j.next - uint64(j.retained); seq < j.next; seq++ {
		e := j.buf[seq%uint64(len(j.buf))]
		e.KindStr = e.Kind.String()
		out = append(out, e)
	}
	return out
}

// Events returns the retained events, oldest first, without clearing them.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// Drain returns the retained events and empties the ring. Per-kind totals
// and the emission counter are preserved.
func (j *Journal) Drain() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := j.snapshotLocked()
	j.retained = 0
	return out
}

// Emitted returns the lifetime emission count.
func (j *Journal) Emitted() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Overwritten returns how many events the ring displaced before they were
// read.
func (j *Journal) Overwritten() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.overwritten
}

// KindCount returns the lifetime emission count for one kind.
func (j *Journal) KindCount(k EventKind) uint64 {
	if int(k) >= len(j.byKind) {
		return 0
	}
	return j.byKind[k].Load()
}
