package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Output order is deterministic so it can be pinned
// by golden tests and diffed between scrapes.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	b := &promBuf{w: w}

	b.header("poseidon_op_duration_seconds",
		"summary", "Latency of allocator operations by class.")
	for _, op := range s.Ops {
		for _, q := range []struct {
			label string
			ns    uint64
		}{{"0.5", op.P50NS}, {"0.95", op.P95NS}, {"0.99", op.P99NS}} {
			b.line(`poseidon_op_duration_seconds{op=%q,quantile=%q} %s`,
				op.Op, q.label, seconds(q.ns))
		}
		b.line(`poseidon_op_duration_seconds_sum{op=%q} %s`, op.Op, seconds(op.TotalNS))
		b.line(`poseidon_op_duration_seconds_count{op=%q} %d`, op.Op, op.Count)
	}

	b.header("poseidon_op_duration_max_seconds",
		"gauge", "Maximum observed latency by operation class.")
	for _, op := range s.Ops {
		b.line(`poseidon_op_duration_max_seconds{op=%q} %s`, op.Op, seconds(op.MaxNS))
	}

	b.header("poseidon_device_class_writes_total",
		"counter", "Device writes attributed to the issuing operation class.")
	for _, c := range s.Attribution {
		b.line(`poseidon_device_class_writes_total{class=%q} %d`, c.Class, c.Writes)
	}
	b.header("poseidon_device_class_bytes_written_total",
		"counter", "Bytes written, attributed to the issuing operation class.")
	for _, c := range s.Attribution {
		b.line(`poseidon_device_class_bytes_written_total{class=%q} %d`, c.Class, c.BytesWritten)
	}
	b.header("poseidon_device_class_flushes_total",
		"counter", "Cachelines flushed (clwb), attributed to the issuing operation class.")
	for _, c := range s.Attribution {
		b.line(`poseidon_device_class_flushes_total{class=%q} %d`, c.Class, c.Flushes)
	}
	b.header("poseidon_device_class_fences_total",
		"counter", "Ordering barriers (sfence), attributed to the issuing operation class.")
	for _, c := range s.Attribution {
		b.line(`poseidon_device_class_fences_total{class=%q} %d`, c.Class, c.Fences)
	}

	b.header("poseidon_class_flushes_per_op",
		"gauge", "Flush amplification: cachelines flushed per operation of the class.")
	for _, c := range s.Attribution {
		if c.Ops == 0 {
			continue
		}
		b.line(`poseidon_class_flushes_per_op{class=%q} %s`, c.Class, f64(c.FlushesPerOp))
	}
	b.header("poseidon_class_fences_per_op",
		"gauge", "Fence amplification: barriers per operation of the class.")
	for _, c := range s.Attribution {
		if c.Ops == 0 {
			continue
		}
		b.line(`poseidon_class_fences_per_op{class=%q} %s`, c.Class, f64(c.FencesPerOp))
	}
	b.header("poseidon_class_bytes_per_op",
		"gauge", "Write amplification: device bytes written per operation of the class.")
	for _, c := range s.Attribution {
		if c.Ops == 0 {
			continue
		}
		b.line(`poseidon_class_bytes_per_op{class=%q} %s`, c.Class, f64(c.BytesPerOp))
	}

	if len(s.Counters) > 0 {
		b.header("poseidon_heap_counter_total",
			"counter", "Lifetime allocator counters by name.")
		names := make([]string, 0, len(s.Counters))
		for name := range s.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b.line(`poseidon_heap_counter_total{name=%q} %d`, name, s.Counters[name])
		}
	}

	if len(s.Subheaps) > 0 {
		b.header("poseidon_subheap_free_bytes", "gauge", "Free user bytes per sub-heap.")
		for _, g := range s.Subheaps {
			b.line(`poseidon_subheap_free_bytes{subheap="%d"} %d`, g.ID, g.FreeBytes)
		}
		b.header("poseidon_subheap_allocated_bytes", "gauge", "Allocated user bytes per sub-heap.")
		for _, g := range s.Subheaps {
			b.line(`poseidon_subheap_allocated_bytes{subheap="%d"} %d`, g.ID, g.AllocatedBytes)
		}
		b.header("poseidon_subheap_allocated_blocks", "gauge", "Allocated block count per sub-heap.")
		for _, g := range s.Subheaps {
			b.line(`poseidon_subheap_allocated_blocks{subheap="%d"} %d`, g.ID, g.AllocatedBlocks)
		}
		b.header("poseidon_subheap_fragmentation", "gauge",
			"1 - largest-free-block/free-bytes per sub-heap (0 = unfragmented).")
		for _, g := range s.Subheaps {
			b.line(`poseidon_subheap_fragmentation{subheap="%d"} %s`, g.ID, f64(g.Fragmentation))
		}
		b.header("poseidon_subheap_quarantined", "gauge",
			"1 when the sub-heap is out of service (degrade-don't-die).")
		for _, g := range s.Subheaps {
			q := 0
			if g.Quarantined {
				q = 1
			}
			b.line(`poseidon_subheap_quarantined{subheap="%d"} %d`, g.ID, q)
		}
	}

	if s.Health != nil {
		b.header("poseidon_health_state", "gauge",
			"Heap health: 0 healthy, 1 degraded, 2 read-only, 3 failed.")
		b.line(`poseidon_health_state %d`, s.Health.Code)
	}

	b.header("poseidon_device_stats_enabled", "gauge",
		"1 when flat device counters are collected.")
	b.line(`poseidon_device_stats_enabled %d`, boolInt(s.Device.StatsEnabled))
	if s.Device.StatsEnabled {
		b.header("poseidon_device_writes_total", "counter", "Device writes (all classes).")
		b.line(`poseidon_device_writes_total %d`, s.Device.Writes)
		b.header("poseidon_device_bytes_written_total", "counter", "Device bytes written.")
		b.line(`poseidon_device_bytes_written_total %d`, s.Device.BytesWritten)
		b.header("poseidon_device_flushes_total", "counter", "Cachelines flushed (clwb).")
		b.line(`poseidon_device_flushes_total %d`, s.Device.Flushes)
		b.header("poseidon_device_fences_total", "counter", "Ordering barriers (sfence).")
		b.line(`poseidon_device_fences_total %d`, s.Device.Fences)
	}
	if s.Device.CapacityBytes > 0 {
		b.header("poseidon_device_capacity_bytes", "gauge", "Device capacity.")
		b.line(`poseidon_device_capacity_bytes %d`, s.Device.CapacityBytes)
		b.header("poseidon_device_resident_bytes", "gauge", "Materialised backing memory.")
		b.line(`poseidon_device_resident_bytes %d`, s.Device.ResidentBytes)
	}

	b.header("poseidon_events_total", "counter", "Journal events emitted, by kind.")
	kinds := make([]string, 0, len(s.Events.ByKind))
	for k := range s.Events.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		b.line(`poseidon_events_total{kind=%q} %d`, k, s.Events.ByKind[k])
	}
	b.header("poseidon_events_emitted_total", "counter", "Journal events emitted (all kinds).")
	b.line(`poseidon_events_emitted_total %d`, s.Events.Emitted)
	b.header("poseidon_events_overwritten_total", "counter",
		"Journal events displaced from the ring before being read.")
	b.line(`poseidon_events_overwritten_total %d`, s.Events.Overwritten)
	b.header("poseidon_journal_dropped_total", "counter",
		"Journal events dropped (overwritten unread) by the fixed ring; nonzero means the journal is saturated.")
	b.line(`poseidon_journal_dropped_total %d`, s.Events.Dropped)

	if s.Profile != nil {
		b.header("poseidon_profile_enabled", "gauge",
			"1 when allocation-site sampling is active (Options.Profile.Rate > 0).")
		b.line(`poseidon_profile_enabled %d`, boolInt(s.Profile.Enabled))
		b.header("poseidon_profile_sample_rate", "gauge",
			"Allocation sampling rate (1-in-N; 0 = disabled).")
		b.line(`poseidon_profile_sample_rate %d`, s.Profile.Rate)
		b.header("poseidon_profile_epoch", "gauge",
			"Current boot epoch stamped on newly observed allocation sites.")
		b.line(`poseidon_profile_epoch %d`, s.Profile.Epoch)
		b.header("poseidon_profile_sites", "gauge",
			"Distinct allocation sites currently tracked (live + recovered).")
		b.line(`poseidon_profile_sites %d`, s.Profile.Sites)
		b.header("poseidon_profile_sampled_allocs_total", "counter",
			"Allocations sampled into the site table.")
		b.line(`poseidon_profile_sampled_allocs_total %d`, s.Profile.SampledAllocs)
		b.header("poseidon_profile_sampled_frees_total", "counter",
			"Frees attributed back to a sampled allocation site.")
		b.line(`poseidon_profile_sampled_frees_total %d`, s.Profile.SampledFrees)
		b.header("poseidon_profile_dropped_sites_total", "counter",
			"Samples lost to a full site table.")
		b.line(`poseidon_profile_dropped_sites_total %d`, s.Profile.DroppedSites)
		b.header("poseidon_profile_persisted_generations_total", "counter",
			"Successful persistent side-table snapshot writes.")
		b.line(`poseidon_profile_persisted_generations_total %d`, s.Profile.PersistedGens)
	}

	if s.Trace != nil {
		b.header("poseidon_trace_sample_rate", "gauge",
			"Op-span sampling rate (1-in-N operations).")
		b.line(`poseidon_trace_sample_rate %d`, s.Trace.Rate)
		b.header("poseidon_trace_spans_total", "counter", "Op spans recorded.")
		b.line(`poseidon_trace_spans_total %d`, s.Trace.Sampled)
		b.header("poseidon_trace_spans_dropped_total", "counter",
			"Op spans overwritten in the fixed ring before export.")
		b.line(`poseidon_trace_spans_dropped_total %d`, s.Trace.Dropped)
	}

	if s.Watchdog != nil {
		b.header("poseidon_stalls_total", "counter",
			"In-flight operations the watchdog saw exceed their stall threshold.")
		b.line(`poseidon_stalls_total %d`, s.Watchdog.Stalls)
		b.header("poseidon_watchdog_enabled", "gauge",
			"1 when the stall watchdog goroutine is running.")
		b.line(`poseidon_watchdog_enabled %d`, boolInt(s.Watchdog.Enabled))
		b.header("poseidon_watchdog_stall_threshold_seconds", "gauge",
			"Deadline after which an in-flight locked operation counts as stalled.")
		b.line(`poseidon_watchdog_stall_threshold_seconds %s`, seconds(uint64(s.Watchdog.StallThresholdNS)))
		b.header("poseidon_device_flush_outliers_total", "counter",
			"Device flushes exceeding the latency tap threshold.")
		b.line(`poseidon_device_flush_outliers_total %d`, s.Watchdog.FlushOutliers)
		b.header("poseidon_device_fence_outliers_total", "counter",
			"Device fences exceeding the latency tap threshold.")
		b.line(`poseidon_device_fence_outliers_total %d`, s.Watchdog.FenceOutliers)
	}

	if s.Blackbox != nil {
		b.header("poseidon_blackbox_enabled", "gauge",
			"1 when the crash-surviving flight recorder has a persistent ring.")
		b.line(`poseidon_blackbox_enabled %d`, boolInt(s.Blackbox.Enabled))
		b.header("poseidon_blackbox_capacity_records", "gauge",
			"Record slots in the persistent black-box ring.")
		b.line(`poseidon_blackbox_capacity_records %d`, s.Blackbox.CapacityRecords)
		b.header("poseidon_blackbox_persisted_records_total", "counter",
			"Records published to the black-box ring this boot.")
		b.line(`poseidon_blackbox_persisted_records_total %d`, s.Blackbox.Persisted)
		b.header("poseidon_blackbox_dropped_records_total", "counter",
			"Staged entries displaced from the bounded staging buffer before publish.")
		b.line(`poseidon_blackbox_dropped_records_total %d`, s.Blackbox.Dropped)
		b.header("poseidon_blackbox_torn_records_total", "counter",
			"Ring slots found damaged (torn tail) at load.")
		b.line(`poseidon_blackbox_torn_records_total %d`, s.Blackbox.Torn)
	}

	if s.Build != nil {
		b.header("poseidon_build_info", "gauge",
			"Build identity of the running binary; value is always 1.")
		b.line(`poseidon_build_info{go_version=%q,revision=%q,modified=%q} 1`,
			s.Build.GoVersion, s.Build.Revision, strconv.FormatBool(s.Build.Modified))
	}
	if s.Runtime != nil {
		b.header("poseidon_boot_epoch", "gauge",
			"Boot epoch of the heap image (monotone across restarts).")
		b.line(`poseidon_boot_epoch %d`, s.Runtime.BootEpoch)
		b.header("poseidon_uptime_seconds", "gauge",
			"Seconds since this process opened the heap.")
		b.line(`poseidon_uptime_seconds %s`, f64(s.Runtime.UptimeSeconds))
	}

	return b.err
}

// promBuf accumulates exposition lines, remembering the first write error.
type promBuf struct {
	w   io.Writer
	err error
}

func (b *promBuf) line(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format+"\n", args...)
}

func (b *promBuf) header(name, typ, help string) {
	b.line("# HELP %s %s", name, help)
	b.line("# TYPE %s %s", name, typ)
}

// seconds renders nanoseconds as decimal seconds.
func seconds(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}
