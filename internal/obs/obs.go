// Package obs is Poseidon's telemetry subsystem: sharded lock-free latency
// histograms for every allocator operation class, per-class attribution of
// device persistence traffic (writes/flushes/fences — the paper's Fig 7
// analysis as a live metric), a fixed-size journal of rare structured
// events, and exposition as a Prometheus text endpoint or a JSON snapshot.
//
// A heap created without Options.Telemetry pays only a nil pointer check on
// the hot path; all recording methods are safe on a nil *Telemetry.
package obs

import (
	"runtime"
	"sync/atomic"
	"time"

	"poseidon/internal/nvm"
)

// Op is an instrumented operation class.
type Op uint8

// Operation classes with latency histograms. The first five are hot-path
// allocator operations; the last three are load-time phases.
const (
	OpAlloc Op = iota
	OpFree
	OpTxAlloc
	OpTxFree // recovery rollback free of an uncommitted tx allocation
	OpDefrag
	OpDrain    // batched remote-free ring drain by the owning sub-heap
	OpRefill   // batched magazine refill carve by the owning sub-heap
	OpRecovery // log replay + lane rollback during Load
	OpLoad     // whole Load call
	OpScrub    // ScrubOnLoad audit / online scrubber slice
	OpRepair   // quarantine repair of one sub-heap
	OpCombine  // flat-combined group commit executed by the lock holder
	OpLockWait // time spent waiting for a sub-heap lock (watchdog contention layer)
	OpLockHold // time a locked sub-heap operation held the lock
	NumOps
)

var opNames = [NumOps]string{
	"alloc", "free", "txalloc", "txfree", "defrag", "drain", "refill", "recovery", "load", "scrub",
	"repair", "combine", "lock_wait", "lock_hold",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "invalid"
}

// attrClassOf maps an op to the device-attribution class whose traffic it
// explains, for per-op amplification ratios. OpLoad maps to no class
// (NumClasses sentinel): its window is the union of recovery and scrub, and
// counting it would double-charge those classes' ratios. OpDrain likewise:
// ring-drain device traffic is deliberately charged to ClassFree (a drain
// IS the deferred half of frees), which OpFree already explains. OpRefill
// follows the same rule on the alloc side: refill traffic is charged to
// ClassAlloc, which OpAlloc already explains. OpRepair charges
// ClassRecovery, which OpRecovery already explains, so it maps to no class.
// OpCombine maps to ClassCombined: one group commit serves ops of several
// logical classes, so its device traffic is charged to the dedicated
// combined class (keeping sum-over-classes == device-total) and the
// combine histogram explains exactly that class. OpLockWait/OpLockHold are
// pure contention timings — they explain no device traffic at all — so they
// map to no class.
var attrClassOf = [NumOps]nvm.OpClass{
	nvm.ClassAlloc, nvm.ClassFree, nvm.ClassTxAlloc, nvm.ClassTxFree,
	nvm.ClassDefrag, nvm.NumClasses, nvm.NumClasses, nvm.ClassRecovery, nvm.NumClasses, nvm.ClassScrub,
	nvm.NumClasses, nvm.ClassCombined, nvm.NumClasses, nvm.NumClasses,
}

// Options configures a Telemetry instance.
type Options struct {
	// Shards is the number of histogram lanes. Defaults to GOMAXPROCS
	// rounded up to a power of two. Callers pass any shard hint; it is
	// masked.
	Shards int
	// JournalSize is the event ring capacity. Default 256.
	JournalSize int
}

// EventMirror receives every journal event as it is emitted — the hook the
// black-box flight recorder hangs off. A mirror must only stage the event
// in DRAM (no device I/O, no re-entrant Emit) and return quickly; events
// are rare but can fire with allocator locks held.
type EventMirror interface {
	MirrorEvent(e Event)
}

// Telemetry is the per-heap (or per-process) telemetry registry.
type Telemetry struct {
	hists   [NumOps]*Histogram
	journal *Journal
	attr    *nvm.Attribution

	// mirror, when set, sees every emitted journal event (the black-box
	// flight recorder). Atomic: SetMirror may race with a concurrent Emit
	// when a heap is reloaded over a shared registry after a simulated
	// crash.
	mirror atomic.Pointer[mirrorBox]

	// prof and tracer are wired by core when profiling/tracing is enabled
	// so snapshots and the HTTP mux can reach them; nil otherwise.
	prof   *Profiler
	tracer *Tracer
}

// mirrorBox wraps the interface value so it fits an atomic.Pointer.
type mirrorBox struct{ m EventMirror }

// New creates a telemetry registry with default options.
func New() *Telemetry { return NewWithOptions(Options{}) }

// NewWithOptions creates a telemetry registry.
func NewWithOptions(o Options) *Telemetry {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	t := &Telemetry{
		journal: newJournal(o.JournalSize),
		attr:    nvm.NewAttribution(),
	}
	for i := range t.hists {
		t.hists[i] = newHistogram(o.Shards)
	}
	return t
}

// Attribution returns the device-traffic attribution table windows charge
// into. Never nil on a non-nil Telemetry.
func (t *Telemetry) Attribution() *nvm.Attribution {
	if t == nil {
		return nil
	}
	return t.attr
}

// SetProfiler attaches the heap profiler so snapshots summarise it.
// Nil-safe on both sides.
func (t *Telemetry) SetProfiler(p *Profiler) {
	if t != nil {
		t.prof = p
	}
}

// Profiler returns the attached heap profiler, nil when profiling is off.
func (t *Telemetry) Profiler() *Profiler {
	if t == nil {
		return nil
	}
	return t.prof
}

// SetTracer attaches the op-span tracer. Nil-safe on both sides.
func (t *Telemetry) SetTracer(tr *Tracer) {
	if t != nil {
		t.tracer = tr
	}
}

// Tracer returns the attached op-span tracer, nil when tracing is off.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// JournalDropped returns how many journal events the fixed ring displaced
// before they were read — the saturation signal behind
// poseidon_journal_dropped_total. Nil-safe.
func (t *Telemetry) JournalDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.journal.Overwritten()
}

// Record adds one observation for op on shard 0. Nil-safe.
func (t *Telemetry) Record(op Op, d time.Duration) { t.RecordOn(0, op, d) }

// RecordOn adds one observation for op on the given shard hint. Nil-safe.
func (t *Telemetry) RecordOn(shard int, op Op, d time.Duration) {
	if t == nil || op >= NumOps {
		return
	}
	if d < 0 {
		d = 0
	}
	t.hists[op].Record(shard, uint64(d))
}

// SetMirror attaches an event mirror (nil detaches). Nil-safe on the
// registry. The latest mirror wins — reloading a heap over a shared
// registry re-points the mirror at the new heap's recorder.
func (t *Telemetry) SetMirror(m EventMirror) {
	if t == nil {
		return
	}
	if m == nil {
		t.mirror.Store(nil)
		return
	}
	t.mirror.Store(&mirrorBox{m: m})
}

// Emit appends a journal event and forwards the stamped entry to the
// attached mirror, if any. Nil-safe. subheap is -1 when the event is not
// sub-heap scoped.
func (t *Telemetry) Emit(kind EventKind, subheap int, detail string) {
	if t == nil {
		return
	}
	e := t.journal.Emit(kind, subheap, detail)
	if box := t.mirror.Load(); box != nil {
		box.m.MirrorEvent(e)
	}
}

// Events returns the retained journal events without clearing them.
// Nil-safe (returns nil).
func (t *Telemetry) Events() []Event {
	if t == nil {
		return nil
	}
	return t.journal.Events()
}

// DrainEvents returns and clears the retained journal events. Nil-safe.
func (t *Telemetry) DrainEvents() []Event {
	if t == nil {
		return nil
	}
	return t.journal.Drain()
}

// Hist returns op's merged histogram. Nil-safe (zero snapshot).
func (t *Telemetry) Hist(op Op) HistSnapshot {
	if t == nil || op >= NumOps {
		return HistSnapshot{}
	}
	return t.hists[op].Snapshot()
}
