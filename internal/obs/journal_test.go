package obs

import (
	"fmt"
	"testing"
)

func TestJournalOrderAndWrap(t *testing.T) {
	j := newJournal(4)
	for i := 0; i < 3; i++ {
		j.Emit(EventCrash, -1, fmt.Sprintf("e%d", i))
	}
	ev := j.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i) || e.Detail != fmt.Sprintf("e%d", i) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.KindStr != "crash" {
			t.Fatalf("event %d kind = %q", i, e.KindStr)
		}
		if e.At.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}

	// Wrap: 10 total emissions into a 4-slot ring keeps the last 4.
	for i := 3; i < 10; i++ {
		j.Emit(EventRecovery, i, fmt.Sprintf("e%d", i))
	}
	ev = j.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events after wrap, want 4", len(ev))
	}
	for i, e := range ev {
		want := uint64(6 + i)
		if e.Seq != want || e.Detail != fmt.Sprintf("e%d", want) {
			t.Fatalf("post-wrap event %d = %+v, want seq %d", i, e, want)
		}
	}
	if got := j.Emitted(); got != 10 {
		t.Fatalf("emitted = %d, want 10", got)
	}
	if got := j.Overwritten(); got != 6 {
		t.Fatalf("overwritten = %d, want 6", got)
	}
	if got := j.KindCount(EventCrash); got != 3 {
		t.Fatalf("crash kind count = %d, want 3", got)
	}
	if got := j.KindCount(EventRecovery); got != 7 {
		t.Fatalf("recovery kind count = %d, want 7", got)
	}
}

func TestJournalDrain(t *testing.T) {
	j := newJournal(4)
	for i := 0; i < 6; i++ {
		j.Emit(EventQuarantine, i, "q")
	}
	got := j.Drain()
	if len(got) != 4 || got[0].Seq != 2 || got[3].Seq != 5 {
		t.Fatalf("drain = %+v", got)
	}
	if left := j.Events(); len(left) != 0 {
		t.Fatalf("events after drain = %+v", left)
	}
	// Sequence numbers and totals survive the drain.
	j.Emit(EventQuarantine, 9, "after")
	ev := j.Events()
	if len(ev) != 1 || ev[0].Seq != 6 {
		t.Fatalf("post-drain emit = %+v", ev)
	}
	if j.Emitted() != 7 {
		t.Fatalf("emitted = %d, want 7", j.Emitted())
	}
	if j.KindCount(EventQuarantine) != 7 {
		t.Fatalf("kind count = %d, want 7", j.KindCount(EventQuarantine))
	}
}

// TestJournalDrainOrderAcrossWrap pins the oldest-first drain guarantee at
// every position of the write cursor relative to the ring boundary: no
// matter how many wraps the ring has absorbed, Drain returns the retained
// events in strictly ascending sequence order with no gaps and no
// duplicates against a fresh emit stream.
func TestJournalDrainOrderAcrossWrap(t *testing.T) {
	const cap = 5
	// Sweep total emissions 0..3*cap so the cursor lands on, before, and
	// after the wrap boundary (including exact multiples of cap).
	for total := 0; total <= 3*cap; total++ {
		j := newJournal(cap)
		for i := 0; i < total; i++ {
			j.Emit(EventRecovery, i, fmt.Sprintf("e%d", i))
		}
		got := j.Drain()
		retained := total
		if retained > cap {
			retained = cap
		}
		if len(got) != retained {
			t.Fatalf("total %d: drained %d events, want %d", total, len(got), retained)
		}
		for i, e := range got {
			want := uint64(total - retained + i)
			if e.Seq != want {
				t.Fatalf("total %d: drained[%d].Seq = %d, want %d (not oldest-first)",
					total, i, e.Seq, want)
			}
			if e.Detail != fmt.Sprintf("e%d", want) {
				t.Fatalf("total %d: drained[%d] = %+v, want detail e%d", total, i, e, want)
			}
		}
		// Post-drain emissions continue the same sequence, still ordered.
		j.Emit(EventCrash, -1, "tail")
		if tail := j.Drain(); len(tail) != 1 || tail[0].Seq != uint64(total) {
			t.Fatalf("total %d: post-drain emit = %+v", total, tail)
		}
	}
}

// captureMirror records mirrored events for the mirror-hook test.
type captureMirror struct{ got []Event }

func (m *captureMirror) MirrorEvent(e Event) { m.got = append(m.got, e) }

func TestTelemetryEventMirror(t *testing.T) {
	tel := NewWithOptions(Options{Shards: 1, JournalSize: 4})
	m := &captureMirror{}
	tel.SetMirror(m)
	tel.Emit(EventStall, 2, "op alloc stuck")
	tel.Emit(EventBlackboxTorn, -1, "3 records unreadable")
	if len(m.got) != 2 {
		t.Fatalf("mirror saw %d events, want 2", len(m.got))
	}
	if m.got[0].Kind != EventStall || m.got[0].Seq != 0 || m.got[0].Subheap != 2 {
		t.Fatalf("mirrored[0] = %+v", m.got[0])
	}
	if m.got[1].Kind != EventBlackboxTorn || m.got[1].Seq != 1 {
		t.Fatalf("mirrored[1] = %+v", m.got[1])
	}
	if m.got[0].At.IsZero() {
		t.Fatal("mirrored event missing timestamp")
	}
	tel.SetMirror(nil)
	tel.Emit(EventCrash, -1, "after detach")
	if len(m.got) != 2 {
		t.Fatal("detached mirror still receiving events")
	}
}

func TestTelemetryJournalOptions(t *testing.T) {
	tel := NewWithOptions(Options{Shards: 1, JournalSize: 2})
	tel.Emit(EventScrubFinding, 0, "a")
	tel.Emit(EventScrubFinding, 1, "b")
	tel.Emit(EventScrubFinding, 2, "c")
	ev := tel.Events()
	if len(ev) != 2 || ev[0].Detail != "b" || ev[1].Detail != "c" {
		t.Fatalf("events = %+v", ev)
	}
	if d := tel.DrainEvents(); len(d) != 2 {
		t.Fatalf("drain = %+v", d)
	}
	if len(tel.Events()) != 0 {
		t.Fatal("journal not empty after drain")
	}
}
