package obs

import (
	"fmt"
	"testing"
)

func TestJournalOrderAndWrap(t *testing.T) {
	j := newJournal(4)
	for i := 0; i < 3; i++ {
		j.Emit(EventCrash, -1, fmt.Sprintf("e%d", i))
	}
	ev := j.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i) || e.Detail != fmt.Sprintf("e%d", i) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.KindStr != "crash" {
			t.Fatalf("event %d kind = %q", i, e.KindStr)
		}
		if e.At.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}

	// Wrap: 10 total emissions into a 4-slot ring keeps the last 4.
	for i := 3; i < 10; i++ {
		j.Emit(EventRecovery, i, fmt.Sprintf("e%d", i))
	}
	ev = j.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events after wrap, want 4", len(ev))
	}
	for i, e := range ev {
		want := uint64(6 + i)
		if e.Seq != want || e.Detail != fmt.Sprintf("e%d", want) {
			t.Fatalf("post-wrap event %d = %+v, want seq %d", i, e, want)
		}
	}
	if got := j.Emitted(); got != 10 {
		t.Fatalf("emitted = %d, want 10", got)
	}
	if got := j.Overwritten(); got != 6 {
		t.Fatalf("overwritten = %d, want 6", got)
	}
	if got := j.KindCount(EventCrash); got != 3 {
		t.Fatalf("crash kind count = %d, want 3", got)
	}
	if got := j.KindCount(EventRecovery); got != 7 {
		t.Fatalf("recovery kind count = %d, want 7", got)
	}
}

func TestJournalDrain(t *testing.T) {
	j := newJournal(4)
	for i := 0; i < 6; i++ {
		j.Emit(EventQuarantine, i, "q")
	}
	got := j.Drain()
	if len(got) != 4 || got[0].Seq != 2 || got[3].Seq != 5 {
		t.Fatalf("drain = %+v", got)
	}
	if left := j.Events(); len(left) != 0 {
		t.Fatalf("events after drain = %+v", left)
	}
	// Sequence numbers and totals survive the drain.
	j.Emit(EventQuarantine, 9, "after")
	ev := j.Events()
	if len(ev) != 1 || ev[0].Seq != 6 {
		t.Fatalf("post-drain emit = %+v", ev)
	}
	if j.Emitted() != 7 {
		t.Fatalf("emitted = %d, want 7", j.Emitted())
	}
	if j.KindCount(EventQuarantine) != 7 {
		t.Fatalf("kind count = %d, want 7", j.KindCount(EventQuarantine))
	}
}

func TestTelemetryJournalOptions(t *testing.T) {
	tel := NewWithOptions(Options{Shards: 1, JournalSize: 2})
	tel.Emit(EventScrubFinding, 0, "a")
	tel.Emit(EventScrubFinding, 1, "b")
	tel.Emit(EventScrubFinding, 2, "c")
	ev := tel.Events()
	if len(ev) != 2 || ev[0].Detail != "b" || ev[1].Detail != "c" {
		t.Fatalf("events = %+v", ev)
	}
	if d := tel.DrainEvents(); len(d) != 2 {
		t.Fatalf("drain = %+v", d)
	}
	if len(tel.Events()) != 0 {
		t.Fatal("journal not empty after drain")
	}
}
