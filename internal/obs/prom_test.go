package obs

import (
	"strings"
	"testing"
)

// goldenSnapshot is a small fully-populated snapshot with hand-computable
// exposition output.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		Ops: []OpStats{{
			Op: "alloc", Count: 4, TotalNS: 8000, MeanNS: 2000,
			P50NS: 1500, P95NS: 3000, P99NS: 3500, MaxNS: 4000,
		}},
		Attribution: []ClassAttr{
			{Class: "alloc", Ops: 4, Writes: 40, BytesWritten: 1024, Flushes: 10, Fences: 8,
				WritesPerOp: 10, BytesPerOp: 256, FlushesPerOp: 2.5, FencesPerOp: 2},
			{Class: "user", Writes: 5, BytesWritten: 100, Flushes: 2, Fences: 1},
		},
		Counters: map[string]uint64{"frees": 2, "allocs": 4},
		Subheaps: []SubheapGauge{
			{ID: 0, Initialized: true, AllocatedBlocks: 3, AllocatedBytes: 768,
				FreeBlocks: 2, FreeBytes: 512, LargestFreeBytes: 256, Fragmentation: 0.5},
			{ID: 1, Quarantined: true, QuarantineReason: "audit failed"},
		},
		Device: DeviceStats{StatsEnabled: true, Writes: 45, BytesWritten: 1124,
			Flushes: 12, Fences: 9, CapacityBytes: 1 << 20, ResidentBytes: 4096},
		Events: EventsSnapshot{Emitted: 3, Overwritten: 1, Dropped: 1,
			ByKind: map[string]uint64{"crash": 2, "recovery": 1}},
		Profile: &ProfileStats{Enabled: true, Rate: 64, Epoch: 2, Sites: 2,
			SampledAllocs: 10, SampledFrees: 4, DroppedSites: 0, PersistedGens: 3},
		Trace: &TracerStats{Enabled: true, Rate: 128, Sampled: 7, Dropped: 1},
		Watchdog: &WatchdogStats{Enabled: true, StallThresholdNS: 50_000_000,
			Stalls: 2, FlushOutliers: 3, FenceOutliers: 1, FlushMaxNS: 900, FenceMaxNS: 400},
		Blackbox: &BlackboxStats{Enabled: true, CapacityRecords: 510,
			Persisted: 25, Dropped: 1, Torn: 1, Epoch: 3, NextSeq: 25},
		Build:   &BuildInfo{GoVersion: "go1.23.0", Revision: "abc123", Modified: false},
		Runtime: &RuntimeStatus{BootEpoch: 3, UptimeSeconds: 12.5},
	}
}

const goldenExposition = `# HELP poseidon_op_duration_seconds Latency of allocator operations by class.
# TYPE poseidon_op_duration_seconds summary
poseidon_op_duration_seconds{op="alloc",quantile="0.5"} 1.5e-06
poseidon_op_duration_seconds{op="alloc",quantile="0.95"} 3e-06
poseidon_op_duration_seconds{op="alloc",quantile="0.99"} 3.5e-06
poseidon_op_duration_seconds_sum{op="alloc"} 8e-06
poseidon_op_duration_seconds_count{op="alloc"} 4
# HELP poseidon_op_duration_max_seconds Maximum observed latency by operation class.
# TYPE poseidon_op_duration_max_seconds gauge
poseidon_op_duration_max_seconds{op="alloc"} 4e-06
# HELP poseidon_device_class_writes_total Device writes attributed to the issuing operation class.
# TYPE poseidon_device_class_writes_total counter
poseidon_device_class_writes_total{class="alloc"} 40
poseidon_device_class_writes_total{class="user"} 5
# HELP poseidon_device_class_bytes_written_total Bytes written, attributed to the issuing operation class.
# TYPE poseidon_device_class_bytes_written_total counter
poseidon_device_class_bytes_written_total{class="alloc"} 1024
poseidon_device_class_bytes_written_total{class="user"} 100
# HELP poseidon_device_class_flushes_total Cachelines flushed (clwb), attributed to the issuing operation class.
# TYPE poseidon_device_class_flushes_total counter
poseidon_device_class_flushes_total{class="alloc"} 10
poseidon_device_class_flushes_total{class="user"} 2
# HELP poseidon_device_class_fences_total Ordering barriers (sfence), attributed to the issuing operation class.
# TYPE poseidon_device_class_fences_total counter
poseidon_device_class_fences_total{class="alloc"} 8
poseidon_device_class_fences_total{class="user"} 1
# HELP poseidon_class_flushes_per_op Flush amplification: cachelines flushed per operation of the class.
# TYPE poseidon_class_flushes_per_op gauge
poseidon_class_flushes_per_op{class="alloc"} 2.5
# HELP poseidon_class_fences_per_op Fence amplification: barriers per operation of the class.
# TYPE poseidon_class_fences_per_op gauge
poseidon_class_fences_per_op{class="alloc"} 2
# HELP poseidon_class_bytes_per_op Write amplification: device bytes written per operation of the class.
# TYPE poseidon_class_bytes_per_op gauge
poseidon_class_bytes_per_op{class="alloc"} 256
# HELP poseidon_heap_counter_total Lifetime allocator counters by name.
# TYPE poseidon_heap_counter_total counter
poseidon_heap_counter_total{name="allocs"} 4
poseidon_heap_counter_total{name="frees"} 2
# HELP poseidon_subheap_free_bytes Free user bytes per sub-heap.
# TYPE poseidon_subheap_free_bytes gauge
poseidon_subheap_free_bytes{subheap="0"} 512
poseidon_subheap_free_bytes{subheap="1"} 0
# HELP poseidon_subheap_allocated_bytes Allocated user bytes per sub-heap.
# TYPE poseidon_subheap_allocated_bytes gauge
poseidon_subheap_allocated_bytes{subheap="0"} 768
poseidon_subheap_allocated_bytes{subheap="1"} 0
# HELP poseidon_subheap_allocated_blocks Allocated block count per sub-heap.
# TYPE poseidon_subheap_allocated_blocks gauge
poseidon_subheap_allocated_blocks{subheap="0"} 3
poseidon_subheap_allocated_blocks{subheap="1"} 0
# HELP poseidon_subheap_fragmentation 1 - largest-free-block/free-bytes per sub-heap (0 = unfragmented).
# TYPE poseidon_subheap_fragmentation gauge
poseidon_subheap_fragmentation{subheap="0"} 0.5
poseidon_subheap_fragmentation{subheap="1"} 0
# HELP poseidon_subheap_quarantined 1 when the sub-heap is out of service (degrade-don't-die).
# TYPE poseidon_subheap_quarantined gauge
poseidon_subheap_quarantined{subheap="0"} 0
poseidon_subheap_quarantined{subheap="1"} 1
# HELP poseidon_device_stats_enabled 1 when flat device counters are collected.
# TYPE poseidon_device_stats_enabled gauge
poseidon_device_stats_enabled 1
# HELP poseidon_device_writes_total Device writes (all classes).
# TYPE poseidon_device_writes_total counter
poseidon_device_writes_total 45
# HELP poseidon_device_bytes_written_total Device bytes written.
# TYPE poseidon_device_bytes_written_total counter
poseidon_device_bytes_written_total 1124
# HELP poseidon_device_flushes_total Cachelines flushed (clwb).
# TYPE poseidon_device_flushes_total counter
poseidon_device_flushes_total 12
# HELP poseidon_device_fences_total Ordering barriers (sfence).
# TYPE poseidon_device_fences_total counter
poseidon_device_fences_total 9
# HELP poseidon_device_capacity_bytes Device capacity.
# TYPE poseidon_device_capacity_bytes gauge
poseidon_device_capacity_bytes 1048576
# HELP poseidon_device_resident_bytes Materialised backing memory.
# TYPE poseidon_device_resident_bytes gauge
poseidon_device_resident_bytes 4096
# HELP poseidon_events_total Journal events emitted, by kind.
# TYPE poseidon_events_total counter
poseidon_events_total{kind="crash"} 2
poseidon_events_total{kind="recovery"} 1
# HELP poseidon_events_emitted_total Journal events emitted (all kinds).
# TYPE poseidon_events_emitted_total counter
poseidon_events_emitted_total 3
# HELP poseidon_events_overwritten_total Journal events displaced from the ring before being read.
# TYPE poseidon_events_overwritten_total counter
poseidon_events_overwritten_total 1
# HELP poseidon_journal_dropped_total Journal events dropped (overwritten unread) by the fixed ring; nonzero means the journal is saturated.
# TYPE poseidon_journal_dropped_total counter
poseidon_journal_dropped_total 1
# HELP poseidon_profile_enabled 1 when allocation-site sampling is active (Options.Profile.Rate > 0).
# TYPE poseidon_profile_enabled gauge
poseidon_profile_enabled 1
# HELP poseidon_profile_sample_rate Allocation sampling rate (1-in-N; 0 = disabled).
# TYPE poseidon_profile_sample_rate gauge
poseidon_profile_sample_rate 64
# HELP poseidon_profile_epoch Current boot epoch stamped on newly observed allocation sites.
# TYPE poseidon_profile_epoch gauge
poseidon_profile_epoch 2
# HELP poseidon_profile_sites Distinct allocation sites currently tracked (live + recovered).
# TYPE poseidon_profile_sites gauge
poseidon_profile_sites 2
# HELP poseidon_profile_sampled_allocs_total Allocations sampled into the site table.
# TYPE poseidon_profile_sampled_allocs_total counter
poseidon_profile_sampled_allocs_total 10
# HELP poseidon_profile_sampled_frees_total Frees attributed back to a sampled allocation site.
# TYPE poseidon_profile_sampled_frees_total counter
poseidon_profile_sampled_frees_total 4
# HELP poseidon_profile_dropped_sites_total Samples lost to a full site table.
# TYPE poseidon_profile_dropped_sites_total counter
poseidon_profile_dropped_sites_total 0
# HELP poseidon_profile_persisted_generations_total Successful persistent side-table snapshot writes.
# TYPE poseidon_profile_persisted_generations_total counter
poseidon_profile_persisted_generations_total 3
# HELP poseidon_trace_sample_rate Op-span sampling rate (1-in-N operations).
# TYPE poseidon_trace_sample_rate gauge
poseidon_trace_sample_rate 128
# HELP poseidon_trace_spans_total Op spans recorded.
# TYPE poseidon_trace_spans_total counter
poseidon_trace_spans_total 7
# HELP poseidon_trace_spans_dropped_total Op spans overwritten in the fixed ring before export.
# TYPE poseidon_trace_spans_dropped_total counter
poseidon_trace_spans_dropped_total 1
# HELP poseidon_stalls_total In-flight operations the watchdog saw exceed their stall threshold.
# TYPE poseidon_stalls_total counter
poseidon_stalls_total 2
# HELP poseidon_watchdog_enabled 1 when the stall watchdog goroutine is running.
# TYPE poseidon_watchdog_enabled gauge
poseidon_watchdog_enabled 1
# HELP poseidon_watchdog_stall_threshold_seconds Deadline after which an in-flight locked operation counts as stalled.
# TYPE poseidon_watchdog_stall_threshold_seconds gauge
poseidon_watchdog_stall_threshold_seconds 0.05
# HELP poseidon_device_flush_outliers_total Device flushes exceeding the latency tap threshold.
# TYPE poseidon_device_flush_outliers_total counter
poseidon_device_flush_outliers_total 3
# HELP poseidon_device_fence_outliers_total Device fences exceeding the latency tap threshold.
# TYPE poseidon_device_fence_outliers_total counter
poseidon_device_fence_outliers_total 1
# HELP poseidon_blackbox_enabled 1 when the crash-surviving flight recorder has a persistent ring.
# TYPE poseidon_blackbox_enabled gauge
poseidon_blackbox_enabled 1
# HELP poseidon_blackbox_capacity_records Record slots in the persistent black-box ring.
# TYPE poseidon_blackbox_capacity_records gauge
poseidon_blackbox_capacity_records 510
# HELP poseidon_blackbox_persisted_records_total Records published to the black-box ring this boot.
# TYPE poseidon_blackbox_persisted_records_total counter
poseidon_blackbox_persisted_records_total 25
# HELP poseidon_blackbox_dropped_records_total Staged entries displaced from the bounded staging buffer before publish.
# TYPE poseidon_blackbox_dropped_records_total counter
poseidon_blackbox_dropped_records_total 1
# HELP poseidon_blackbox_torn_records_total Ring slots found damaged (torn tail) at load.
# TYPE poseidon_blackbox_torn_records_total counter
poseidon_blackbox_torn_records_total 1
# HELP poseidon_build_info Build identity of the running binary; value is always 1.
# TYPE poseidon_build_info gauge
poseidon_build_info{go_version="go1.23.0",revision="abc123",modified="false"} 1
# HELP poseidon_boot_epoch Boot epoch of the heap image (monotone across restarts).
# TYPE poseidon_boot_epoch gauge
poseidon_boot_epoch 3
# HELP poseidon_uptime_seconds Seconds since this process opened the heap.
# TYPE poseidon_uptime_seconds gauge
poseidon_uptime_seconds 12.5
`

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if got != goldenExposition {
		gl, wl := strings.Split(got, "\n"), strings.Split(goldenExposition, "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("exposition diverges at line %d:\n got:  %q\n want: %q", i+1, g, w)
			}
		}
		t.Fatal("exposition differs (length only?)")
	}
}

// TestWritePrometheusDeterministic pins the map-ordering guarantees: two
// renders of the same snapshot must be byte-identical.
func TestWritePrometheusDeterministic(t *testing.T) {
	s := goldenSnapshot()
	var a, b strings.Builder
	if err := WritePrometheus(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same snapshot differ")
	}
}

func TestWriteTextSmoke(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"operation latency:", "alloc", "device traffic by class:",
		"QUARANTINED (audit failed)", "fragmentation 0.500",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}
