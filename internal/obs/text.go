package obs

import (
	"fmt"
	"io"
)

// WriteText renders the snapshot as the human-readable report printed by
// poseidon-inspect -stats and shared by any tool that wants a terminal
// view. Sections with no data are omitted.
func WriteText(w io.Writer, s *Snapshot) error {
	b := &promBuf{w: w}

	if s.Health != nil {
		if s.Health.Detail != "" {
			b.line("health: %s (%s)", s.Health.State, s.Health.Detail)
		} else {
			b.line("health: %s", s.Health.State)
		}
	}

	hasOps := false
	for _, op := range s.Ops {
		if op.Count > 0 {
			hasOps = true
			break
		}
	}
	if hasOps {
		b.line("operation latency:")
		b.line("  %-10s %10s %12s %12s %12s %12s", "op", "count", "p50", "p95", "p99", "max")
		for _, op := range s.Ops {
			if op.Count == 0 {
				continue
			}
			b.line("  %-10s %10d %12s %12s %12s %12s", op.Op, op.Count,
				durStr(op.P50NS), durStr(op.P95NS), durStr(op.P99NS), durStr(op.MaxNS))
		}
	}

	hasAttr := false
	for _, c := range s.Attribution {
		if c.Writes+c.Flushes+c.Fences > 0 {
			hasAttr = true
			break
		}
	}
	if hasAttr {
		b.line("device traffic by class:")
		b.line("  %-10s %10s %12s %10s %10s %12s %12s", "class", "writes", "bytes", "flushes", "fences", "flushes/op", "bytes/op")
		for _, c := range s.Attribution {
			if c.Writes+c.Flushes+c.Fences == 0 {
				continue
			}
			ratioF, ratioB := "-", "-"
			if c.Ops > 0 {
				ratioF = fmt.Sprintf("%.2f", c.FlushesPerOp)
				ratioB = fmt.Sprintf("%.1f", c.BytesPerOp)
			}
			b.line("  %-10s %10d %12d %10d %10d %12s %12s",
				c.Class, c.Writes, c.BytesWritten, c.Flushes, c.Fences, ratioF, ratioB)
		}
	}

	if len(s.Subheaps) > 0 {
		b.line("sub-heaps:")
		for _, g := range s.Subheaps {
			switch {
			case g.Quarantined:
				b.line("  %3d: QUARANTINED (%s)", g.ID, g.QuarantineReason)
			case !g.Initialized:
				b.line("  %3d: not yet formatted", g.ID)
			default:
				b.line("  %3d: %d allocated blocks (%d B), %d free blocks (%d B), largest free %d B, fragmentation %.3f",
					g.ID, g.AllocatedBlocks, g.AllocatedBytes, g.FreeBlocks,
					g.FreeBytes, g.LargestFreeBytes, g.Fragmentation)
			}
		}
	}

	if len(s.Counters) > 0 {
		b.line("counters:")
		for _, name := range s.CounterNames() {
			if v := s.Counters[name]; v > 0 {
				b.line("  %-22s %d", name, v)
			}
		}
	}

	if s.Device.StatsEnabled {
		b.line("device: %d writes (%d B), %d cacheline flushes, %d fences",
			s.Device.Writes, s.Device.BytesWritten, s.Device.Flushes, s.Device.Fences)
	}
	if s.Device.CapacityBytes > 0 {
		b.line("device: capacity %d B, resident %d B", s.Device.CapacityBytes, s.Device.ResidentBytes)
	}

	if s.Profile != nil && (s.Profile.Enabled || s.Profile.Sites > 0) {
		b.line("profile: %d sites, epoch %d, rate 1/%d, %d sampled allocs, %d persisted generations",
			s.Profile.Sites, s.Profile.Epoch, s.Profile.Rate,
			s.Profile.SampledAllocs, s.Profile.PersistedGens)
	}
	if s.Trace != nil && s.Trace.Enabled {
		b.line("trace: %d spans recorded (rate 1/%d, %d dropped)",
			s.Trace.Sampled, s.Trace.Rate, s.Trace.Dropped)
	}
	if s.Watchdog != nil && s.Watchdog.Enabled {
		b.line("watchdog: %d stalls (threshold %s), %d flush outliers, %d fence outliers",
			s.Watchdog.Stalls, durStr(uint64(s.Watchdog.StallThresholdNS)),
			s.Watchdog.FlushOutliers, s.Watchdog.FenceOutliers)
	}
	if s.Blackbox != nil && s.Blackbox.Enabled {
		b.line("blackbox: epoch %d, %d/%d records persisted this boot, %d dropped, %d torn at load",
			s.Blackbox.Epoch, s.Blackbox.Persisted, s.Blackbox.CapacityRecords,
			s.Blackbox.Dropped, s.Blackbox.Torn)
	}
	if s.Build != nil {
		b.line("build: %s, revision %s (modified: %v)",
			s.Build.GoVersion, s.Build.Revision, s.Build.Modified)
	}
	if s.Runtime != nil {
		b.line("boot: epoch %d, up %.1fs", s.Runtime.BootEpoch, s.Runtime.UptimeSeconds)
	}

	if s.Events.Emitted > 0 {
		b.line("events: %d emitted, %d overwritten", s.Events.Emitted, s.Events.Overwritten)
		for _, e := range s.Events.Recent {
			scope := ""
			if e.Subheap >= 0 {
				scope = fmt.Sprintf(" subheap=%d", e.Subheap)
			}
			b.line("  #%d %s%s: %s", e.Seq, e.KindStr, scope, e.Detail)
		}
	}
	return b.err
}

// durStr renders nanoseconds with an adaptive unit.
func durStr(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
