package obs_test

import (
	"encoding/json"
	"testing"

	"poseidon/internal/obs"
)

// chromeTrace mirrors the Chrome trace-event JSON file format ({"traceEvents":
// [...]}) closely enough to validate the exported schema.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestTracerDisabledIsNil(t *testing.T) {
	if tr := obs.NewTracer(0, 16); tr != nil {
		t.Fatal("rate 0 should disable the tracer entirely")
	}
	var tr *obs.Tracer
	if tr.Sampled() {
		t.Fatal("nil tracer sampled")
	}
	tr.Record(obs.Span{Op: obs.OpAlloc})
	if tr.Spans() != nil || tr.Rate() != 0 {
		t.Fatal("nil tracer holds spans")
	}
	if st := tr.Stats(); st != (obs.TracerStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	// An empty trace is still a valid trace file.
	var ct chromeTrace
	if err := json.Unmarshal(tr.WriteChromeTrace(), &ct); err != nil {
		t.Fatalf("empty trace unparseable: %v", err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d events", len(ct.TraceEvents))
	}
}

func TestTracerSamplesOneInN(t *testing.T) {
	tr := obs.NewTracer(4, 16)
	hits := 0
	for i := 0; i < 40; i++ {
		if tr.Sampled() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 40 at rate 4, want 10", hits)
	}
}

func TestTracerRingOverwriteAccounting(t *testing.T) {
	tr := obs.NewTracer(1, 4)
	for i := 0; i < 7; i++ {
		tr.Record(obs.Span{Op: obs.OpAlloc, StartNS: int64(i)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if spans[0].Seq != 3 || spans[3].Seq != 6 {
		t.Fatalf("span seqs = %d..%d, want 3..6 (oldest first)", spans[0].Seq, spans[3].Seq)
	}
	st := tr.Stats()
	if !st.Enabled || st.Rate != 1 || st.Sampled != 7 || st.Dropped != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChromeTraceSchema(t *testing.T) {
	tr := obs.NewTracer(1, 16)
	tr.Record(obs.Span{
		Op: obs.OpAlloc, Subheap: 2, Lane: 3,
		StartNS: 1000, DurNS: 2500,
		Writes: 4, Flushes: 2, Fences: 1, Bytes: 128,
	})
	tr.Record(obs.Span{
		Op: obs.OpRecovery, Subheap: -1, Lane: -1,
		StartNS: 500, DurNS: 9000, Retries: 2, Err: "boom",
	})

	var ct chromeTrace
	raw := tr.WriteChromeTrace()
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("trace JSON unparseable: %v\n%s", err, raw)
	}
	if ct.DisplayTimeUnit != "ns" || len(ct.TraceEvents) != 2 {
		t.Fatalf("trace = unit %q, %d events", ct.DisplayTimeUnit, len(ct.TraceEvents))
	}
	alloc := ct.TraceEvents[0]
	if alloc.Name != obs.OpAlloc.String() || alloc.Cat != "poseidon" || alloc.Ph != "X" {
		t.Fatalf("alloc event = %+v", alloc)
	}
	// Timestamps are microseconds relative to the earliest span (500 ns).
	if alloc.Ts != 0.5 || alloc.Dur != 2.5 {
		t.Fatalf("alloc ts/dur = %v/%v µs, want 0.5/2.5", alloc.Ts, alloc.Dur)
	}
	if alloc.Pid != 2 || alloc.Tid != 3 {
		t.Fatalf("alloc pid/tid = %d/%d", alloc.Pid, alloc.Tid)
	}
	for k, want := range map[string]float64{"writes": 4, "flushes": 2, "fences": 1, "bytes": 128, "subheap": 2} {
		if got, _ := alloc.Args[k].(float64); got != want {
			t.Fatalf("alloc args[%s] = %v, want %v", k, alloc.Args[k], want)
		}
	}
	rec := ct.TraceEvents[1]
	if rec.Name != obs.OpRecovery.String() || rec.Ts != 0 || rec.Pid != 0 || rec.Tid != 0 {
		t.Fatalf("recovery event = %+v", rec)
	}
	if rec.Args["err"] != "boom" {
		t.Fatalf("recovery args = %v", rec.Args)
	}
	if _, ok := rec.Args["subheap"]; ok {
		t.Fatal("subheap arg emitted for a non-sub-heap span")
	}
	if got, _ := rec.Args["retries"].(float64); got != 2 {
		t.Fatalf("retries arg = %v", rec.Args["retries"])
	}
}
