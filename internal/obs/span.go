package obs

// Sampled op-span tracer: 1-in-N operations (alloc/free/tx/refill/
// ring-drain/repair/recovery) record a span carrying duration plus the
// flush/fence/write/retry sub-event counts the operation issued, diffed
// from the context's nvm.AttrRecorder. Spans land in a fixed ring
// (newest-wins, like the event journal) and export as Chrome trace-event
// JSON, so a recovery or repair timeline opens directly in a trace viewer
// (chrome://tracing, Perfetto).
//
// Off-path discipline matches the profiler: a disabled tracer is a nil
// pointer (one nil check on the hot path); an enabled tracer's sampling
// decision is a single atomic counter increment.

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one sampled operation.
type Span struct {
	Seq     uint64 // global span sequence number
	Op      Op
	Subheap int   // owning sub-heap, -1 when not applicable
	Lane    int   // issuing lane/thread, -1 when not applicable
	StartNS int64 // UnixNano
	DurNS   int64
	Writes  uint64 // device writes issued inside the span
	Flushes uint64 // cachelines flushed
	Fences  uint64
	Retries uint64 // transient-fault retries observed
	Bytes   uint64 // payload size for alloc/free spans, 0 otherwise
	Err     string // non-empty when the operation failed
}

// TracerStats is the tracer's summary block in a telemetry snapshot.
type TracerStats struct {
	Enabled bool
	Rate    int
	Sampled uint64 // spans recorded
	Dropped uint64 // spans overwritten before export
}

// Tracer samples operation spans into a fixed ring. All methods are
// nil-safe.
type Tracer struct {
	rate uint64
	tick atomic.Uint64

	mu      sync.Mutex
	ring    []Span
	next    uint64 // total spans ever recorded; ring index = next % len
	dropped uint64
}

// NewTracer creates a tracer sampling 1-in-rate operations into a ring of
// buffer spans. rate <= 0 returns nil (tracing disabled — callers keep the
// nil and pay only the nil check). buffer <= 0 defaults to 4096.
func NewTracer(rate, buffer int) *Tracer {
	if rate <= 0 {
		return nil
	}
	if buffer <= 0 {
		buffer = 4096
	}
	return &Tracer{rate: uint64(rate), ring: make([]Span, buffer)}
}

// Sampled decides whether the next operation should record a span: one
// atomic increment, true every rate-th call. Nil-safe (always false).
func (t *Tracer) Sampled() bool {
	if t == nil {
		return false
	}
	return t.tick.Add(1)%t.rate == 0
}

// Record appends a span to the ring, overwriting the oldest when full.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s.Seq = t.next
	if t.next >= uint64(len(t.ring)) {
		t.dropped++
	}
	t.ring[t.next%uint64(len(t.ring))] = s
	t.next++
	t.mu.Unlock()
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	cap := uint64(len(t.ring))
	start := uint64(0)
	if n > cap {
		start = n - cap
	}
	out := make([]Span, 0, n-start)
	for i := start; i < n; i++ {
		out = append(out, t.ring[i%cap])
	}
	return out
}

// SpansSince returns the buffered spans with Seq >= seq, oldest first —
// the black-box recorder's incremental pull at each publish point. Nil-safe.
func (t *Tracer) SpansSince(seq uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	cap := uint64(len(t.ring))
	start := uint64(0)
	if n > cap {
		start = n - cap
	}
	if seq > start {
		start = seq
	}
	if start >= n {
		return nil
	}
	out := make([]Span, 0, n-start)
	for i := start; i < n; i++ {
		out = append(out, t.ring[i%cap])
	}
	return out
}

// Stats summarises the tracer. Nil-safe (zero value).
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TracerStats{Enabled: true, Rate: int(t.rate), Sampled: t.next, Dropped: t.dropped}
}

// Rate returns the sampling rate (0 when nil/disabled).
func (t *Tracer) Rate() int {
	if t == nil {
		return 0
	}
	return int(t.rate)
}

// WriteChromeTrace renders the buffered spans as Chrome trace-event JSON
// (the {"traceEvents": [...]} wrapper form). Each span becomes one complete
// ("ph":"X") event; the process id groups by sub-heap and the thread id by
// lane, so a trace viewer lays concurrent sub-heap activity out on separate
// rows. Timestamps are microseconds relative to the earliest span, as the
// format expects.
func (t *Tracer) WriteChromeTrace() []byte {
	spans := t.Spans()
	var base int64
	for i, s := range spans {
		if i == 0 || s.StartNS < base {
			base = s.StartNS
		}
	}
	var buf bytes.Buffer
	buf.WriteString(`{"traceEvents":[`)
	for i, s := range spans {
		if i > 0 {
			buf.WriteByte(',')
		}
		name := s.Op.String()
		pid := s.Subheap
		if pid < 0 {
			pid = 0
		}
		tid := s.Lane
		if tid < 0 {
			tid = 0
		}
		fmt.Fprintf(&buf,
			`{"name":%s,"cat":"poseidon","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{`,
			strconv.Quote(name),
			jsonMicros(s.StartNS-base), jsonMicros(s.DurNS), pid, tid)
		fmt.Fprintf(&buf, `"seq":%d,"writes":%d,"flushes":%d,"fences":%d,"retries":%d,"bytes":%d`,
			s.Seq, s.Writes, s.Flushes, s.Fences, s.Retries, s.Bytes)
		if s.Subheap >= 0 {
			fmt.Fprintf(&buf, `,"subheap":%d`, s.Subheap)
		}
		if s.Err != "" {
			fmt.Fprintf(&buf, `,"err":%s`, strconv.Quote(s.Err))
		}
		buf.WriteString(`}}`)
	}
	buf.WriteString(`],"displayTimeUnit":"ns","otherData":{"source":"poseidon optrace"}}`)
	return buf.Bytes()
}

// jsonMicros formats nanoseconds as fractional microseconds (the trace
// format's unit) without float rounding surprises.
func jsonMicros(ns int64) string {
	micro := ns / 1e3
	frac := ns % 1e3
	if frac < 0 {
		frac = -frac
	}
	return strconv.FormatInt(micro, 10) + "." + fmt.Sprintf("%03d", frac)
}

// SpanStart is a convenience for hook sites: snapshot the clock now, call
// the returned func to build the span skeleton (duration filled, counters
// left to the caller).
func SpanStart() func() (startNS, durNS int64) {
	start := time.Now()
	return func() (int64, int64) {
		return start.UnixNano(), time.Since(start).Nanoseconds()
	}
}
