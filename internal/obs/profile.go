package obs

// Allocation-site heap profiler: sample 1-in-N allocations, capture the
// caller stack, and aggregate per-site live objects/bytes plus cumulative
// allocation counts in a sharded lock-free table. The persistent half —
// serializing the table into the heap image so a leak profile survives
// crashes — lives in internal/core (profile.go) and internal/plog
// (sites.go); this file is the DRAM aggregation and rendering layer.
//
// Two kinds of site coexist in the table:
//
//   - Live sites, keyed by a hash of raw caller PCs (cheap to compute on
//     the sampled alloc path). Their frames are symbolized lazily at
//     snapshot time via runtime.CallersFrames.
//   - Recovered sites, adopted from the persistent side-table after a
//     restart. PCs do not survive a restart (a recompiled or re-laid-out
//     binary reuses addresses for different code), so they are keyed by a
//     hash of their symbolized frames and carry the frame strings
//     directly.
//
// Sites() merges the two views by symbolized-frame identity: an allocation
// site that leaked before a crash and keeps leaking after the restart shows
// up as ONE row whose live bytes span both lives of the process.

import (
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	// profMaxFrames is how many caller PCs a sample captures.
	profMaxFrames = 24

	// profShardCount shards both the site table and the live-pointer map.
	// Power of two; indexed by site-hash / pointer-hash bits.
	profShardCount = 8

	// profShardSlots is the open-addressed site capacity per shard. A
	// program has a bounded number of distinct allocation sites; 512×8 =
	// 4096 sites is far beyond any real workload, and overflow is counted
	// (droppedSites), never silent.
	profShardSlots = 512

	// profProbeLimit bounds linear probing before a site is dropped.
	profProbeLimit = 64
)

// SiteFrame is one symbolized stack frame of an allocation site.
type SiteFrame struct {
	Func string
	File string
	Line int
}

// siteEntry is one allocation site's counters. Counter fields are atomics
// (hot path); the PC array is written exactly once by the inserting
// goroutine and published with the ready flag.
type siteEntry struct {
	liveObjects  atomic.Int64
	liveBytes    atomic.Int64
	allocObjects atomic.Uint64
	allocBytes   atomic.Uint64
	freeObjects  atomic.Uint64
	freeBytes    atomic.Uint64
	firstEpoch   atomic.Uint64

	ready atomic.Bool // pcs/recFrames published
	npcs  int
	pcs   [profMaxFrames]uintptr
	// recFrames is set instead of pcs for sites adopted from the
	// persistent side-table (recovered=true).
	recFrames []SiteFrame
	recovered bool
}

// profShard is one lock-free slice of the site table: open-addressed
// CAS-claimed keys with parallel entries, allocated lazily on first insert.
type profShard struct {
	init    atomic.Bool
	initMu  sync.Mutex
	keys    []atomic.Uint64
	entries []siteEntry

	// live maps a sampled pointer's location word to its site + charged
	// bytes so the eventual free decrements the right site. Mutex-guarded:
	// only sampled pointers (1-in-N) ever enter, and frees of unsampled
	// pointers pay one lock/lookup/unlock only while profiling is enabled.
	liveMu sync.Mutex
	live   map[uint64]liveRec
}

type liveRec struct {
	site  *siteEntry
	bytes uint64
}

func (sh *profShard) ensure() {
	if sh.init.Load() {
		return
	}
	sh.initMu.Lock()
	if !sh.init.Load() {
		sh.keys = make([]atomic.Uint64, profShardSlots)
		sh.entries = make([]siteEntry, profShardSlots)
		sh.live = make(map[uint64]liveRec)
		sh.init.Store(true)
	}
	sh.initMu.Unlock()
}

// Profiler samples allocations and aggregates them by call site. All
// methods are safe for concurrent use and nil-safe (no-ops on nil).
type Profiler struct {
	rate   int
	shards [profShardCount]profShard

	epoch atomic.Uint64 // current boot epoch (set by core at load)

	sampledAllocs atomic.Uint64
	sampledFrees  atomic.Uint64
	droppedSites  atomic.Uint64 // samples lost to a full site table
	persistGen    atomic.Uint64 // persisted generations (set by core)
}

// NewProfiler creates a profiler sampling 1-in-rate allocations. rate 0 (or
// negative) disables sampling — the profiler still accepts recovered sites
// and renders them, which is what offline tools need.
func NewProfiler(rate int) *Profiler {
	if rate < 0 {
		rate = 0
	}
	return &Profiler{rate: rate}
}

// Rate returns the sampling rate (0 = sampling disabled).
func (p *Profiler) Rate() int {
	if p == nil {
		return 0
	}
	return p.rate
}

// SetEpoch sets the current boot epoch stamped on newly seen sites.
func (p *Profiler) SetEpoch(e uint64) {
	if p != nil {
		p.epoch.Store(e)
	}
}

// Epoch returns the current boot epoch.
func (p *Profiler) Epoch() uint64 {
	if p == nil {
		return 0
	}
	return p.epoch.Load()
}

// hashPCs mixes a PC stack into a 64-bit site key (never 0).
func hashPCs(pcs []uintptr) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, pc := range pcs {
		h ^= uint64(pc)
		h *= 0x100000001B3
		h ^= h >> 29
	}
	if h == 0 {
		h = 1
	}
	return h
}

// findOrInsert returns the entry for key, claiming an empty slot if new.
// Returns nil when the probe window is exhausted (table pressure).
func (p *Profiler) findOrInsert(key uint64) *siteEntry {
	sh := &p.shards[key&(profShardCount-1)]
	sh.ensure()
	idx := (key >> 3) % profShardSlots
	for i := 0; i < profProbeLimit; i++ {
		slot := (idx + uint64(i)) % profShardSlots
		k := sh.keys[slot].Load()
		if k == key {
			return &sh.entries[slot]
		}
		if k == 0 {
			if sh.keys[slot].CompareAndSwap(0, key) {
				return &sh.entries[slot]
			}
			// Lost the race; re-check the slot for our key.
			if sh.keys[slot].Load() == key {
				return &sh.entries[slot]
			}
		}
	}
	p.droppedSites.Add(1)
	return nil
}

// SampleAlloc records one sampled allocation of size bytes at the caller's
// call site. loc is the pointer's stable location word (used to attribute
// the eventual free); skip is the number of stack frames above
// runtime.Callers to drop (the caller's own wrappers). Nil-safe.
func (p *Profiler) SampleAlloc(loc, size uint64, skip int) {
	if p == nil {
		return
	}
	var buf [profMaxFrames]uintptr
	n := runtime.Callers(skip+2, buf[:]) // +2: runtime.Callers + SampleAlloc
	if n == 0 {
		return
	}
	key := hashPCs(buf[:n])
	e := p.findOrInsert(key)
	if e == nil {
		return
	}
	if !e.ready.Load() {
		// First claimant publishes the frames. A racing second sampler of
		// the same site key writes identical PCs, so the double store is
		// benign; ready is only observed by snapshotting readers.
		e.npcs = n
		copy(e.pcs[:], buf[:n])
		e.firstEpoch.Store(p.epoch.Load())
		e.ready.Store(true)
	}
	e.liveObjects.Add(1)
	e.liveBytes.Add(int64(size))
	e.allocObjects.Add(1)
	e.allocBytes.Add(size)
	p.sampledAllocs.Add(1)

	lsh := &p.shards[(loc*0x9E3779B97F4A7C15>>32)&(profShardCount-1)]
	lsh.ensure()
	lsh.liveMu.Lock()
	lsh.live[loc] = liveRec{site: e, bytes: size}
	lsh.liveMu.Unlock()
}

// SampleFree attributes a free to the site that allocated loc, if that
// allocation was sampled. Nil-safe; unknown pointers are no-ops.
func (p *Profiler) SampleFree(loc uint64) {
	if p == nil {
		return
	}
	lsh := &p.shards[(loc*0x9E3779B97F4A7C15>>32)&(profShardCount-1)]
	if !lsh.init.Load() {
		return
	}
	lsh.liveMu.Lock()
	rec, ok := lsh.live[loc]
	if ok {
		delete(lsh.live, loc)
	}
	lsh.liveMu.Unlock()
	if !ok {
		return
	}
	rec.site.liveObjects.Add(-1)
	rec.site.liveBytes.Add(-int64(rec.bytes))
	rec.site.freeObjects.Add(1)
	rec.site.freeBytes.Add(rec.bytes)
	p.sampledFrees.Add(1)
}

// AdoptRecovered seeds the table with sites decoded from the persistent
// side-table after a restart. Each record is keyed by its persisted
// (frame-identity) hash and carries its symbolized frames; its live counts
// become the pre-crash baseline. Nil-safe.
func (p *Profiler) AdoptRecovered(sites []SiteStat) {
	if p == nil {
		return
	}
	for i := range sites {
		s := &sites[i]
		e := p.findOrInsert(s.Hash)
		if e == nil {
			continue
		}
		if !e.ready.Load() {
			e.recFrames = append([]SiteFrame(nil), s.Frames...)
			e.recovered = true
			e.firstEpoch.Store(s.FirstEpoch)
			e.ready.Store(true)
		}
		e.liveObjects.Add(s.LiveObjects)
		e.liveBytes.Add(s.LiveBytes)
		e.allocObjects.Add(s.AllocObjects)
		e.allocBytes.Add(s.AllocBytes)
		e.freeObjects.Add(s.FreeObjects)
		e.freeBytes.Add(s.FreeBytes)
	}
}

// SiteStat is one allocation site in a profile snapshot. Counts are the raw
// sampled values; multiply by Rate for an estimate of the population (the
// pprof renderer does this scaling).
type SiteStat struct {
	// Hash identifies the site by symbolized-frame identity — stable
	// across restarts, and the key the persistent side-table uses.
	Hash   uint64
	Frames []SiteFrame
	// LiveObjects/LiveBytes are sampled blocks allocated and not yet
	// freed (for recovered sites: as of the last persisted snapshot).
	LiveObjects int64
	LiveBytes   int64
	AllocObjects uint64
	AllocBytes   uint64
	FreeObjects  uint64
	FreeBytes    uint64
	// FirstEpoch is the boot epoch the site was first observed in. A site
	// with live bytes and FirstEpoch < the current epoch has been leaking
	// across restarts.
	FirstEpoch uint64
	// Recovered marks a site (partly) reconstructed from the persistent
	// side-table rather than observed live in this process.
	Recovered bool
}

// FrameHash returns the symbolized-frame identity hash of frames — the
// restart-stable site key.
func FrameHash(frames []SiteFrame) uint64 {
	h := fnv.New64a()
	for _, f := range frames {
		h.Write([]byte(f.Func))
		h.Write([]byte{0})
		h.Write([]byte(f.File))
		h.Write([]byte{0})
		h.Write([]byte(strconv.Itoa(f.Line)))
		h.Write([]byte{'\n'})
	}
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

// internalFrame reports frames inside the allocator itself, trimmed from
// symbolized stacks so profiles lead with the application call site.
func internalFrame(fn string) bool {
	return strings.Contains(fn, "poseidon/internal/core.") ||
		strings.Contains(fn, "poseidon/internal/obs.") ||
		strings.HasPrefix(fn, "poseidon.")
}

// symbolize resolves a PC stack to frames, dropping the allocator's own
// leading wrappers.
func symbolize(pcs []uintptr) []SiteFrame {
	frames := runtime.CallersFrames(pcs)
	var out []SiteFrame
	for {
		fr, more := frames.Next()
		if fr.Function != "" && !(len(out) == 0 && internalFrame(fr.Function)) {
			out = append(out, SiteFrame{Func: fr.Function, File: fr.File, Line: fr.Line})
		}
		if !more {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, SiteFrame{Func: "unknown", File: "", Line: 0})
	}
	return out
}

// Sites returns the profile: every site with any activity, symbolized and
// merged by frame identity (a recovered site and its live re-observation
// collapse into one row), sorted by live bytes descending. Nil-safe.
func (p *Profiler) Sites() []SiteStat {
	if p == nil {
		return nil
	}
	merged := map[uint64]*SiteStat{}
	for si := range p.shards {
		sh := &p.shards[si]
		if !sh.init.Load() {
			continue
		}
		for i := range sh.entries {
			if sh.keys[i].Load() == 0 {
				continue
			}
			e := &sh.entries[i]
			if !e.ready.Load() {
				continue
			}
			var frames []SiteFrame
			if e.recovered {
				frames = e.recFrames
			} else {
				frames = symbolize(e.pcs[:e.npcs])
			}
			key := FrameHash(frames)
			st, ok := merged[key]
			if !ok {
				st = &SiteStat{Hash: key, Frames: frames, FirstEpoch: e.firstEpoch.Load()}
				merged[key] = st
			}
			st.LiveObjects += e.liveObjects.Load()
			st.LiveBytes += e.liveBytes.Load()
			st.AllocObjects += e.allocObjects.Load()
			st.AllocBytes += e.allocBytes.Load()
			st.FreeObjects += e.freeObjects.Load()
			st.FreeBytes += e.freeBytes.Load()
			st.Recovered = st.Recovered || e.recovered
			if fe := e.firstEpoch.Load(); fe < st.FirstEpoch {
				st.FirstEpoch = fe
			}
		}
	}
	out := make([]SiteStat, 0, len(merged))
	for _, st := range merged {
		if st.LiveObjects != 0 || st.LiveBytes != 0 || st.AllocObjects != 0 {
			out = append(out, *st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LiveBytes != out[j].LiveBytes {
			return out[i].LiveBytes > out[j].LiveBytes
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// LeakSites returns the sites still holding live bytes that were first seen
// before the given epoch — "blocks live since before epoch E, by allocation
// site", the persistent-heap leak report. Nil-safe.
func (p *Profiler) LeakSites(beforeEpoch uint64) []SiteStat {
	var out []SiteStat
	for _, s := range p.Sites() {
		if s.LiveBytes > 0 && s.FirstEpoch < beforeEpoch {
			out = append(out, s)
		}
	}
	return out
}

// Reset drops every site and live-pointer record — the recovery action when
// the persistent side-table proves torn. Counters (sampled totals, dropped
// sites) survive; the persisted-generation counter is reset by core.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for si := range p.shards {
		sh := &p.shards[si]
		if !sh.init.Load() {
			continue
		}
		sh.liveMu.Lock()
		for i := range sh.keys {
			sh.keys[i].Store(0)
			sh.entries[i] = siteEntry{}
		}
		sh.live = make(map[uint64]liveRec)
		sh.liveMu.Unlock()
	}
}

// ProfileStats is the profiler's summary block in a telemetry snapshot.
type ProfileStats struct {
	Enabled       bool // sampling active (rate > 0)
	Rate          int
	Epoch         uint64
	Sites         int
	SampledAllocs uint64
	SampledFrees  uint64
	DroppedSites  uint64
	PersistedGens uint64
}

// Stats summarises the profiler. Nil-safe (zero value).
func (p *Profiler) Stats() ProfileStats {
	if p == nil {
		return ProfileStats{}
	}
	return ProfileStats{
		Enabled:       p.rate > 0,
		Rate:          p.rate,
		Epoch:         p.epoch.Load(),
		Sites:         len(p.Sites()),
		SampledAllocs: p.sampledAllocs.Load(),
		SampledFrees:  p.sampledFrees.Load(),
		DroppedSites:  p.droppedSites.Load(),
		PersistedGens: p.persistGen.Load(),
	}
}

// NotePersisted bumps the persisted-generation counter (called by core
// after each successful side-table write).
func (p *Profiler) NotePersisted() {
	if p != nil {
		p.persistGen.Add(1)
	}
}
