package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the bucket count of a latency histogram: bucket i covers
// [2^i, 2^(i+1)) nanoseconds (bucket 0 also absorbs 0), so the full range
// spans 1 ns to ~584 years — log-bucketed, constant memory, and bucket
// placement is a single bits.Len64.
const NumBuckets = 64

// histShard is one lane's slice of a histogram. The trailing pad keeps
// adjacent shards on different cachelines so concurrent recorders do not
// false-share.
type histShard struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds
	_      [48]byte
}

// Histogram is a lock-free sharded log-bucketed latency histogram. Each
// recording lane (allocator thread, sub-heap, recovery) writes its own
// shard; readers merge all shards into a snapshot. Recording is a handful
// of uncontended atomic adds.
type Histogram struct {
	shards []histShard
	mask   uint64
}

// newHistogram sizes the histogram to the next power of two ≥ shards.
func newHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Histogram{shards: make([]histShard, n), mask: uint64(n - 1)}
}

// bucketOf places a nanosecond value: bits.Len64 is floor(log2)+1.
func bucketOf(ns uint64) int {
	if ns == 0 {
		return 0
	}
	return bits.Len64(ns) - 1
}

// BucketLower returns the inclusive lower bound of bucket i in nanoseconds.
func BucketLower(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i)
}

// Record adds one nanosecond observation on the given shard (any int; it is
// masked). Safe for concurrent use, including on the same shard.
func (h *Histogram) Record(shard int, ns uint64) {
	s := &h.shards[uint64(shard)&h.mask]
	s.counts[bucketOf(ns)].Add(1)
	s.count.Add(1)
	s.sum.Add(ns)
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistSnapshot is the merged view of a histogram.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    uint64 // nanoseconds
	Max    uint64 // nanoseconds
}

// Snapshot merges all shards. Concurrent recording may tear slightly across
// buckets (each counter is individually consistent), which is the usual
// monitoring contract.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.counts {
			out.Counts[b] += s.counts[b].Load()
		}
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		if m := s.max.Load(); m > out.Max {
			out.Max = m
		}
	}
	return out
}

// Quantile returns the q-th (0..1) latency quantile in nanoseconds,
// linearly interpolated inside the containing bucket. Zero when empty.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(q*float64(s.Count-1)) + 1
	var seen uint64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := BucketLower(b)
			width := lo // bucket b spans [2^b, 2^(b+1)): width == lower bound
			if b == 0 {
				lo, width = 0, 2
			}
			frac := float64(rank-seen-1) / float64(c)
			v := lo + uint64(frac*float64(width))
			if v > s.Max && s.Max > 0 {
				v = s.Max
			}
			return v
		}
		seen += c
	}
	return s.Max
}

// Mean returns the average observation in nanoseconds, zero when empty.
func (s HistSnapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}
