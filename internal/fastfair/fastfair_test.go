package fastfair

import (
	"math/rand"
	"sync"
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
)

func newTreeHandle(t *testing.T) (alloc.Allocator, *Tree, alloc.Handle) {
	t.Helper()
	a, err := alloc.NewPoseidon(core.Options{
		Subheaps:        4,
		SubheapUserSize: 16 << 20,
		SubheapMetaSize: 4 << 20,
		UndoLogSize:     64 << 10,
		MaxThreads:      32,
		HeapID:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(h)
	if err != nil {
		t.Fatal(err)
	}
	return a, tree, h
}

func TestInsertSearchSmall(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	for i := uint64(1); i <= 10; i++ {
		if err := tree.Insert(h, i*7, i*100); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		v, ok, err := tree.Search(h, i*7)
		if err != nil || !ok {
			t.Fatalf("Search(%d): ok=%v err=%v", i*7, ok, err)
		}
		if v != i*100 {
			t.Fatalf("Search(%d) = %d, want %d", i*7, v, i*100)
		}
	}
	if _, ok, _ := tree.Search(h, 999999); ok {
		t.Fatal("ghost key found")
	}
}

func TestInsertManySplits(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	const n = 20000
	rng := rand.New(rand.NewSource(5))
	keys := rng.Perm(n)
	for _, k := range keys {
		if err := tree.Insert(h, uint64(k)+1, uint64(k)*2+1); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for _, k := range keys {
		v, ok, err := tree.Search(h, uint64(k)+1)
		if err != nil || !ok {
			t.Fatalf("Search(%d): ok=%v err=%v", k, ok, err)
		}
		if v != uint64(k)*2+1 {
			t.Fatalf("Search(%d) = %d", k, v)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	const n = 5000
	rng := rand.New(rand.NewSource(11))
	for _, k := range rng.Perm(n) {
		if err := tree.Insert(h, uint64(k)+1, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tree.Scan(h, 0, ^uint64(0), func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan visited %d keys, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	// Bounded scan.
	count := 0
	if err := tree.Scan(h, 100, 200, func(k, v uint64) bool {
		if k < 100 || k >= 200 {
			t.Fatalf("key %d outside scan bounds", k)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("bounded scan visited %d", count)
	}
}

func TestUpdateInPlace(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	if err := tree.Insert(h, 42, 1); err != nil {
		t.Fatal(err)
	}
	old, ok, err := tree.Update(h, 42, 2)
	if err != nil || !ok {
		t.Fatalf("Update: ok=%v err=%v", ok, err)
	}
	if old != 1 {
		t.Fatalf("old = %d", old)
	}
	v, ok, _ := tree.Search(h, 42)
	if !ok || v != 2 {
		t.Fatalf("after update: %d, %v", v, ok)
	}
	if _, ok, _ := tree.Update(h, 777, 1); ok {
		t.Fatal("update of missing key succeeded")
	}
}

func TestDuplicateInsertOverwrites(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	for i := 0; i < 3; i++ {
		if err := tree.Insert(h, 5, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, _ := tree.Search(h, 5)
	if !ok || v != 3 {
		t.Fatalf("value = %d", v)
	}
	count := 0
	if err := tree.Scan(h, 0, ^uint64(0), func(k, v uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("tree holds %d entries after duplicate inserts", count)
	}
}

func TestConcurrentInsertSearch(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wh, err := a.Thread(w)
			if err != nil {
				t.Error(err)
				return
			}
			defer wh.Close()
			for i := 0; i < perWorker; i++ {
				key := uint64(w*perWorker + i + 1)
				if err := tree.Insert(wh, key, key*3); err != nil {
					t.Errorf("worker %d insert %d: %v", w, key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k := uint64(1); k <= workers*perWorker; k++ {
		v, ok, err := tree.Search(h, k)
		if err != nil || !ok {
			t.Fatalf("key %d lost after concurrent inserts (ok=%v err=%v)", k, ok, err)
		}
		if v != k*3 {
			t.Fatalf("key %d value %d", k, v)
		}
	}
}

func TestRootChangesOnGrowth(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	first := tree.Root()
	if first == 0 {
		t.Fatal("nil root")
	}
	for i := uint64(1); i <= 5000; i++ {
		if err := tree.Insert(h, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Root() == first {
		t.Fatal("root unchanged despite splits")
	}
}

// Readers run concurrently with inserting writers; every value read must
// be one the writers actually stored (torn reads would show as garbage).
func TestConcurrentReadersDuringInserts(t *testing.T) {
	a, tree, h := newTreeHandle(t)
	defer a.Close()
	defer h.Close()
	const writers, perWriter, readers = 4, 3000, 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rh, err := a.Thread(r)
			if err != nil {
				t.Error(err)
				return
			}
			defer rh.Close()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(rng.Intn(writers*perWriter) + 1)
				v, ok, err := tree.Search(rh, key)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if ok && v != key*3 {
					t.Errorf("reader %d: key %d has torn value %d", r, key, v)
					return
				}
			}
		}(r)
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			wh, err := a.Thread(w)
			if err != nil {
				t.Error(err)
				return
			}
			defer wh.Close()
			for i := 0; i < perWriter; i++ {
				key := uint64(w*perWriter + i + 1)
				if err := tree.Insert(wh, key, key*3); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
}
