// Package fastfair implements a persistent B+-tree in the style of
// FAST-FAIR (Hwang et al., FAST '18) — the index the paper's YCSB
// evaluation (Figure 9) builds on all three allocators. Nodes are 512-byte
// persistent blocks allocated from the allocator under test; entry shifts
// persist in key order so a reader never observes a torn node (the FAIR
// half of the design), and the allocator's own crash consistency covers
// node allocation.
//
// Concurrency: searches and non-splitting inserts/updates run under a
// shared tree latch plus a striped per-leaf lock; splits take the tree
// latch exclusively. This preserves the paper's observation that index
// traversal, not allocation, dominates YCSB — while still letting the
// allocator's value allocations run in parallel.
package fastfair

import (
	"errors"
	"fmt"
	"sync"

	"poseidon/internal/alloc"
)

// Node layout (one 512 B block):
//
//	+0   nkeys u64
//	+8   leaf  u64 (1 = leaf)
//	+16  next  u64 — leaf: right sibling; internal: leftmost child
//	+24  entries: Degree × (key u64, value u64)
const (
	// NodeSize is the persistent size of one tree node.
	NodeSize = 512
	// Degree is the entry capacity of a node.
	Degree = (NodeSize - entryBase) / 16

	offNKeys  = 0
	offLeaf   = 8
	offNext   = 16
	entryBase = 24

	numStripes = 256
)

// ErrCorrupt reports an inconsistent node.
var ErrCorrupt = errors.New("fastfair: corrupt node")

// Tree is a persistent B+-tree over an allocator.
type Tree struct {
	mu      sync.RWMutex
	root    alloc.Ptr
	stripes [numStripes]sync.Mutex
}

// New creates an empty tree whose root leaf comes from h.
func New(h alloc.Handle) (*Tree, error) {
	root, err := newNode(h, true)
	if err != nil {
		return nil, err
	}
	return &Tree{root: root}, nil
}

// Root returns the current root block (for persisting in a heap root).
func (t *Tree) Root() alloc.Ptr {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

func newNode(h alloc.Handle, leaf bool) (alloc.Ptr, error) {
	p, err := h.Alloc(NodeSize)
	if err != nil {
		return 0, err
	}
	if err := h.WriteU64(p, offNKeys, 0); err != nil {
		return 0, err
	}
	var leafV uint64
	if leaf {
		leafV = 1
	}
	if err := h.WriteU64(p, offLeaf, leafV); err != nil {
		return 0, err
	}
	if err := h.WriteU64(p, offNext, 0); err != nil {
		return 0, err
	}
	if err := h.Persist(p, 0, entryBase); err != nil {
		return 0, err
	}
	return p, nil
}

func entryOff(i int) uint64 { return entryBase + uint64(i)*16 }

func readEntry(h alloc.Handle, n alloc.Ptr, i int) (key, val uint64, err error) {
	key, err = h.ReadU64(n, entryOff(i))
	if err != nil {
		return 0, 0, err
	}
	val, err = h.ReadU64(n, entryOff(i)+8)
	return key, val, err
}

func writeEntry(h alloc.Handle, n alloc.Ptr, i int, key, val uint64) error {
	if err := h.WriteU64(n, entryOff(i), key); err != nil {
		return err
	}
	return h.WriteU64(n, entryOff(i)+8, val)
}

func nkeys(h alloc.Handle, n alloc.Ptr) (int, error) {
	v, err := h.ReadU64(n, offNKeys)
	if err != nil {
		return 0, err
	}
	if v > Degree {
		return 0, fmt.Errorf("%w: nkeys %d", ErrCorrupt, v)
	}
	return int(v), nil
}

func isLeaf(h alloc.Handle, n alloc.Ptr) (bool, error) {
	v, err := h.ReadU64(n, offLeaf)
	return v == 1, err
}

// descend walks from the root to the leaf that owns key. It must run under
// t.mu (shared or exclusive). With path=true it records the internal nodes
// visited, root first.
func (t *Tree) descend(h alloc.Handle, key uint64, path bool) (alloc.Ptr, []alloc.Ptr, error) {
	var trail []alloc.Ptr
	n := t.root
	for {
		leaf, err := isLeaf(h, n)
		if err != nil {
			return 0, nil, err
		}
		if leaf {
			return n, trail, nil
		}
		if path {
			trail = append(trail, n)
		}
		k, err := nkeys(h, n)
		if err != nil {
			return 0, nil, err
		}
		next, err := h.ReadU64(n, offNext) // leftmost child
		if err != nil {
			return 0, nil, err
		}
		child := alloc.Ptr(next)
		for i := 0; i < k; i++ {
			ek, ev, err := readEntry(h, n, i)
			if err != nil {
				return 0, nil, err
			}
			if key < ek {
				break
			}
			child = alloc.Ptr(ev)
		}
		if child == 0 {
			return 0, nil, fmt.Errorf("%w: nil child", ErrCorrupt)
		}
		n = child
	}
}

// findInLeaf returns the index of key in the leaf, or -1.
func findInLeaf(h alloc.Handle, leaf alloc.Ptr, key uint64) (int, error) {
	k, err := nkeys(h, leaf)
	if err != nil {
		return -1, err
	}
	for i := 0; i < k; i++ {
		ek, _, err := readEntry(h, leaf, i)
		if err != nil {
			return -1, err
		}
		if ek == key {
			return i, nil
		}
		if ek > key {
			return -1, nil
		}
	}
	return -1, nil
}

// Search returns the value stored under key.
//
// The original FAST-FAIR lets readers race with in-leaf shifts, relying on
// x86's atomic 8-byte loads; the Go memory model does not allow that, so
// readers take the leaf's stripe lock (internal nodes only change under
// the exclusive latch, so the descent itself needs no stripe).
func (t *Tree) Search(h alloc.Handle, key uint64) (uint64, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, _, err := t.descend(h, key, false)
	if err != nil {
		return 0, false, err
	}
	stripe := &t.stripes[uint64(leaf)%numStripes]
	stripe.Lock()
	defer stripe.Unlock()
	i, err := findInLeaf(h, leaf, key)
	if err != nil || i < 0 {
		return 0, false, err
	}
	_, v, err := readEntry(h, leaf, i)
	return v, err == nil, err
}

// Update replaces the value under key, returning the previous value. The
// 8-byte value store is atomic, so it runs under the shared latch.
func (t *Tree) Update(h alloc.Handle, key, val uint64) (uint64, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, _, err := t.descend(h, key, false)
	if err != nil {
		return 0, false, err
	}
	stripe := &t.stripes[uint64(leaf)%numStripes]
	stripe.Lock()
	defer stripe.Unlock()
	i, err := findInLeaf(h, leaf, key)
	if err != nil || i < 0 {
		return 0, false, err
	}
	_, old, err := readEntry(h, leaf, i)
	if err != nil {
		return 0, false, err
	}
	if err := h.WriteU64(leaf, entryOff(i)+8, val); err != nil {
		return 0, false, err
	}
	if err := h.Persist(leaf, entryOff(i)+8, 8); err != nil {
		return 0, false, err
	}
	return old, true, nil
}

// Insert stores key→val. Existing keys are overwritten.
func (t *Tree) Insert(h alloc.Handle, key, val uint64) error {
	// Fast path: shared latch + leaf stripe; splits cannot happen under
	// the shared latch, so the descent stays valid.
	t.mu.RLock()
	leaf, _, err := t.descend(h, key, false)
	if err != nil {
		t.mu.RUnlock()
		return err
	}
	stripe := &t.stripes[uint64(leaf)%numStripes]
	stripe.Lock()
	k, err := nkeys(h, leaf)
	if err == nil && k < Degree {
		err = insertIntoLeaf(h, leaf, k, key, val)
		stripe.Unlock()
		t.mu.RUnlock()
		return err
	}
	stripe.Unlock()
	t.mu.RUnlock()
	if err != nil {
		return err
	}
	// Slow path: the leaf is full — take the tree exclusively and split.
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertSlow(h, key, val)
}

// insertIntoLeaf performs the FAIR in-place sorted insert: entries shift
// right-to-left with a persist per moved entry, so the node is always a
// prefix-consistent sorted run. Duplicate keys update in place.
func insertIntoLeaf(h alloc.Handle, leaf alloc.Ptr, k int, key, val uint64) error {
	pos := k
	for i := 0; i < k; i++ {
		ek, _, err := readEntry(h, leaf, i)
		if err != nil {
			return err
		}
		if ek == key {
			if err := h.WriteU64(leaf, entryOff(i)+8, val); err != nil {
				return err
			}
			return h.Persist(leaf, entryOff(i)+8, 8)
		}
		if ek > key {
			pos = i
			break
		}
	}
	for i := k; i > pos; i-- {
		pk, pv, err := readEntry(h, leaf, i-1)
		if err != nil {
			return err
		}
		if err := writeEntry(h, leaf, i, pk, pv); err != nil {
			return err
		}
		if err := h.Persist(leaf, entryOff(i), 16); err != nil {
			return err
		}
	}
	if err := writeEntry(h, leaf, pos, key, val); err != nil {
		return err
	}
	if err := h.Persist(leaf, entryOff(pos), 16); err != nil {
		return err
	}
	if err := h.WriteU64(leaf, offNKeys, uint64(k+1)); err != nil {
		return err
	}
	return h.Persist(leaf, offNKeys, 8)
}

// insertSlow runs under the exclusive latch: split every full node on the
// path, then insert.
func (t *Tree) insertSlow(h alloc.Handle, key, val uint64) error {
	leaf, trail, err := t.descend(h, key, true)
	if err != nil {
		return err
	}
	k, err := nkeys(h, leaf)
	if err != nil {
		return err
	}
	if k < Degree {
		return insertIntoLeaf(h, leaf, k, key, val)
	}
	// Split the leaf; the separator bubbles up the recorded trail.
	sepKey, right, err := splitNode(h, leaf)
	if err != nil {
		return err
	}
	if err := t.promote(h, trail, sepKey, right); err != nil {
		return err
	}
	// Retry the insert into the proper half.
	target := leaf
	if key >= sepKey {
		target = right
	}
	k, err = nkeys(h, target)
	if err != nil {
		return err
	}
	return insertIntoLeaf(h, target, k, key, val)
}

// splitNode moves the upper half of a full node into a new right sibling
// and returns the separator key.
func splitNode(h alloc.Handle, n alloc.Ptr) (uint64, alloc.Ptr, error) {
	leaf, err := isLeaf(h, n)
	if err != nil {
		return 0, 0, err
	}
	right, err := newNode(h, leaf)
	if err != nil {
		return 0, 0, err
	}
	mid := Degree / 2
	sepKey, sepVal, err := readEntry(h, n, mid)
	if err != nil {
		return 0, 0, err
	}
	from := mid
	if !leaf {
		// Internal split: the separator moves up; its child becomes the
		// right node's leftmost child.
		from = mid + 1
		if err := h.WriteU64(right, offNext, sepVal); err != nil {
			return 0, 0, err
		}
	}
	j := 0
	for i := from; i < Degree; i++ {
		ek, ev, err := readEntry(h, n, i)
		if err != nil {
			return 0, 0, err
		}
		if err := writeEntry(h, right, j, ek, ev); err != nil {
			return 0, 0, err
		}
		j++
	}
	if err := h.WriteU64(right, offNKeys, uint64(j)); err != nil {
		return 0, 0, err
	}
	if leaf {
		// Sibling links: right inherits n's next, n points to right.
		next, err := h.ReadU64(n, offNext)
		if err != nil {
			return 0, 0, err
		}
		if err := h.WriteU64(right, offNext, next); err != nil {
			return 0, 0, err
		}
	}
	if err := h.Persist(right, 0, NodeSize); err != nil {
		return 0, 0, err
	}
	// Shrink the left node only after the right half is durable.
	if err := h.WriteU64(n, offNKeys, uint64(mid)); err != nil {
		return 0, 0, err
	}
	if leaf {
		if err := h.WriteU64(n, offNext, uint64(right)); err != nil {
			return 0, 0, err
		}
	}
	if err := h.Persist(n, 0, entryBase); err != nil {
		return 0, 0, err
	}
	return sepKey, right, nil
}

// promote inserts the separator into the parent chain, splitting full
// parents, growing the tree at the root if needed.
func (t *Tree) promote(h alloc.Handle, trail []alloc.Ptr, sepKey uint64, right alloc.Ptr) error {
	for i := len(trail) - 1; i >= 0; i-- {
		parent := trail[i]
		k, err := nkeys(h, parent)
		if err != nil {
			return err
		}
		if k < Degree {
			return insertIntoInternal(h, parent, k, sepKey, right)
		}
		// Parent full: split it first.
		pSep, pRight, err := splitNode(h, parent)
		if err != nil {
			return err
		}
		// Insert the child separator into the proper half.
		target := parent
		if sepKey >= pSep {
			target = pRight
		}
		k, err = nkeys(h, target)
		if err != nil {
			return err
		}
		if err := insertIntoInternal(h, target, k, sepKey, right); err != nil {
			return err
		}
		// Continue promoting the parent's separator.
		sepKey, right = pSep, pRight
	}
	// Root split: grow the tree.
	newRoot, err := newNode(h, false)
	if err != nil {
		return err
	}
	if err := h.WriteU64(newRoot, offNext, uint64(t.root)); err != nil {
		return err
	}
	if err := writeEntry(h, newRoot, 0, sepKey, uint64(right)); err != nil {
		return err
	}
	if err := h.WriteU64(newRoot, offNKeys, 1); err != nil {
		return err
	}
	if err := h.Persist(newRoot, 0, entryBase+16); err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

// insertIntoInternal adds (sepKey → child) to an internal node with space.
func insertIntoInternal(h alloc.Handle, n alloc.Ptr, k int, sepKey uint64, child alloc.Ptr) error {
	pos := k
	for i := 0; i < k; i++ {
		ek, _, err := readEntry(h, n, i)
		if err != nil {
			return err
		}
		if ek > sepKey {
			pos = i
			break
		}
	}
	for i := k; i > pos; i-- {
		pk, pv, err := readEntry(h, n, i-1)
		if err != nil {
			return err
		}
		if err := writeEntry(h, n, i, pk, pv); err != nil {
			return err
		}
	}
	if err := writeEntry(h, n, pos, sepKey, uint64(child)); err != nil {
		return err
	}
	if err := h.WriteU64(n, offNKeys, uint64(k+1)); err != nil {
		return err
	}
	return h.Persist(n, 0, NodeSize)
}

// Scan visits keys in [from, to) in order, calling fn for each, using the
// leaf sibling links (range queries, and a structural audit for tests).
func (t *Tree) Scan(h alloc.Handle, from, to uint64, fn func(key, val uint64) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	leaf, _, err := t.descend(h, from, false)
	if err != nil {
		return err
	}
	for leaf != 0 {
		stripe := &t.stripes[uint64(leaf)%numStripes]
		stripe.Lock()
		k, err := nkeys(h, leaf)
		if err != nil {
			stripe.Unlock()
			return err
		}
		type entry struct{ k, v uint64 }
		batch := make([]entry, 0, k)
		for i := 0; i < k; i++ {
			ek, ev, err := readEntry(h, leaf, i)
			if err != nil {
				stripe.Unlock()
				return err
			}
			batch = append(batch, entry{ek, ev})
		}
		next, err := h.ReadU64(leaf, offNext)
		stripe.Unlock()
		if err != nil {
			return err
		}
		// Invoke the callback outside the stripe lock.
		for _, e := range batch {
			if e.k < from {
				continue
			}
			if e.k >= to {
				return nil
			}
			if !fn(e.k, e.v) {
				return nil
			}
		}
		leaf = alloc.Ptr(next)
	}
	return nil
}
