package fastfair

import (
	"math/rand"
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/makalu"
	"poseidon/internal/pmdkalloc"
)

// The Figure 9 substrate must work over every allocator, not just
// Poseidon: the tree goes through the shared Handle interface only.
func TestTreeOverBaselines(t *testing.T) {
	factories := map[string]func(t *testing.T) alloc.Allocator{
		"pmdk": func(t *testing.T) alloc.Allocator {
			a, err := pmdkalloc.New(pmdkalloc.Options{Capacity: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"makalu": func(t *testing.T) alloc.Allocator {
			a, err := makalu.New(makalu.Options{Capacity: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
	}
	for name, factory := range factories {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			a := factory(t)
			defer a.Close()
			h, err := a.Thread(0)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			tree, err := New(h)
			if err != nil {
				t.Fatal(err)
			}
			const n = 5000
			rng := rand.New(rand.NewSource(13))
			for _, k := range rng.Perm(n) {
				if err := tree.Insert(h, uint64(k)+1, uint64(k)*5); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			for k := 1; k <= n; k += 101 {
				v, ok, err := tree.Search(h, uint64(k))
				if err != nil || !ok {
					t.Fatalf("search %d: ok=%v err=%v", k, ok, err)
				}
				if v != uint64(k-1)*5 {
					t.Fatalf("value of %d = %d", k, v)
				}
			}
			count := 0
			prev := uint64(0)
			err = tree.Scan(h, 0, ^uint64(0), func(k, v uint64) bool {
				if k <= prev {
					t.Fatalf("scan order violated: %d after %d", k, prev)
				}
				prev = k
				count++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("scan visited %d, want %d", count, n)
			}
		})
	}
}
