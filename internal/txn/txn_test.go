package txn

import (
	"errors"
	"math/rand"
	"testing"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/plog"
)

const (
	logBase  = 0
	logSize  = 32 * 1024
	metaBase = 64 * 1024
)

func newBatch(t *testing.T) (*Batch, mpk.Window) {
	t.Helper()
	d, err := nvm.NewDevice(nvm.Options{Capacity: 1 << 20, CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	u := mpk.NewUnit(d.Capacity())
	w := mpk.NewWindow(d, u.NewThread(mpk.RightsRW))
	log, err := plog.OpenUndoLog(w, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	return NewBatch(w, log), w
}

func TestReadYourWrites(t *testing.T) {
	b, w := newBatch(t)
	if err := w.PersistU64(metaBase, 10); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.ReadU64(metaBase); v != 10 {
		t.Fatalf("pre-stage read = %d", v)
	}
	if err := b.WriteU64(metaBase, 20); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.ReadU64(metaBase); v != 20 {
		t.Fatalf("staged read = %d, want 20", v)
	}
	// Device still has the old value until commit.
	if v, _ := w.ReadU64(metaBase); v != 10 {
		t.Fatalf("device leaked staged write: %d", v)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.ReadU64(metaBase); v != 20 {
		t.Fatalf("post-commit device = %d", v)
	}
}

func TestUnalignedWriteRejected(t *testing.T) {
	b, _ := newBatch(t)
	if err := b.WriteU64(metaBase+3, 1); err == nil {
		t.Fatal("want error for unaligned write")
	}
}

func TestAbortDropsWrites(t *testing.T) {
	b, w := newBatch(t)
	if err := b.WriteU64(metaBase, 99); err != nil {
		t.Fatal(err)
	}
	b.Abort()
	if b.Len() != 0 {
		t.Fatalf("len after abort = %d", b.Len())
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.ReadU64(metaBase); v != 0 {
		t.Fatalf("aborted write reached device: %d", v)
	}
}

func TestEmptyCommitRunsHook(t *testing.T) {
	b, _ := newBatch(t)
	ran := false
	if err := b.CommitWith(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("hook not run on empty commit")
	}
}

func TestCommitIsAtomicUnderCrash(t *testing.T) {
	// Crash after commit's stores but before truncation: replay restores.
	b, w := newBatch(t)
	for i := uint64(0); i < 8; i++ {
		if err := w.PersistU64(metaBase+i*8, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 8; i++ {
		if err := b.WriteU64(metaBase+i*8, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	// Make the commit "crash" before truncating by using the hook.
	errBoom := errors.New("boom")
	err := b.CommitWith(func() error { return errBoom })
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Recovery: reopen log and replay.
	log, err := plog.OpenUndoLog(w, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	if log.IsEmpty() {
		t.Fatal("undo log should hold the interrupted operation")
	}
	if err := log.Replay(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		v, _ := w.ReadU64(metaBase + i*8)
		if v != i+1 {
			t.Fatalf("word %d = %d, want %d (partial commit leaked)", i, v, i+1)
		}
	}
}

func TestCommittedBatchSurvivesCrash(t *testing.T) {
	b, w := newBatch(t)
	for i := uint64(0); i < 4; i++ {
		if err := b.WriteU64(metaBase+i*512, 7*i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	log, err := plog.OpenUndoLog(w, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	if !log.IsEmpty() {
		t.Fatal("committed batch left a dirty log")
	}
	for i := uint64(0); i < 4; i++ {
		v, _ := w.ReadU64(metaBase + i*512)
		if v != 7*i+1 {
			t.Fatalf("word %d lost: %d", i, v)
		}
	}
}

func TestBatchReusableAfterCommit(t *testing.T) {
	b, w := newBatch(t)
	if err := b.WriteU64(metaBase, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteU64(metaBase+8, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	v1, _ := w.ReadU64(metaBase)
	v2, _ := w.ReadU64(metaBase + 8)
	if v1 != 1 || v2 != 2 {
		t.Fatalf("values = %d,%d", v1, v2)
	}
}

// Property: at any crash point with any eviction, the metadata is either
// fully pre-batch or fully post-batch for committed batches; never mixed.
func TestCrashAtomicityProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b, w := newBatch(t)

		// Initial state: words hold their index+1.
		const words = 32
		for i := uint64(0); i < words; i++ {
			if err := w.PersistU64(metaBase+i*8, i+1); err != nil {
				t.Fatal(err)
			}
		}
		// Stage a random subset with recognisable values.
		staged := map[uint64]bool{}
		for i := 0; i < rng.Intn(16)+1; i++ {
			word := uint64(rng.Intn(words))
			staged[word] = true
			if err := b.WriteU64(metaBase+word*8, 1000+word); err != nil {
				t.Fatal(err)
			}
		}
		truncated := rng.Intn(2) == 0
		if truncated {
			if err := b.Commit(); err != nil {
				t.Fatal(err)
			}
		} else {
			errStop := errors.New("stop before truncate")
			if err := b.CommitWith(func() error { return errStop }); !errors.Is(err, errStop) {
				t.Fatal(err)
			}
		}
		if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.4, Seed: seed * 31}); err != nil {
			t.Fatal(err)
		}
		log, err := plog.OpenUndoLog(w, logBase, logSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Replay(); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < words; i++ {
			v, _ := w.ReadU64(metaBase + i*8)
			want := i + 1
			if truncated && staged[i] {
				want = 1000 + i
			}
			if v != want {
				t.Fatalf("seed %d truncated=%v word %d = %d, want %d",
					seed, truncated, i, v, want)
			}
		}
	}
}
