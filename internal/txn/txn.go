// Package txn provides failure-atomic metadata mutation batches.
//
// The undo-logging discipline on NVMM requires strict write-ahead ordering:
// a cacheline may be evicted (and thus persisted) at any moment after it is
// written, so the original bytes must be durable in the undo log before the
// first mutating store is issued. A Batch enforces that mechanically:
//
//  1. The operation stages all its writes in DRAM (read-your-writes).
//  2. Commit snapshots every to-be-mutated range into the undo log and
//     seals it (log durable).
//  3. Only then are the staged stores applied to NVMM, flushed, and the
//     log truncated — the operation's single atomic commit point.
//
// A crash anywhere before truncation replays the undo log and restores the
// pre-operation metadata (paper §5.2).
//
// Metadata in this codebase is mutated exclusively through aligned 8-byte
// words, which keeps staging exact and cheap: a batch is a small slice of
// (offset, value) pairs (allocator operations touch a few dozen words, so
// linear scans beat hashing).
package txn

import (
	"fmt"

	"poseidon/internal/mpk"
	"poseidon/internal/plog"
)

// Reader is the read surface shared by a raw window and an open batch.
// Code that only inspects metadata accepts a Reader so it can run either
// against the device directly or inside a transaction seeing staged state.
type Reader interface {
	ReadU64(off uint64) (uint64, error)
}

// Window satisfies Reader.
var _ Reader = mpk.Window{}

type stagedWord struct {
	off uint64
	val uint64
}

// Batch stages metadata word writes and commits them failure-atomically
// under an undo log. A Batch is single-goroutine (callers hold the sub-heap
// lock). The zero Batch is not usable; call NewBatch.
type Batch struct {
	w   mpk.Window
	log *plog.UndoLog

	words []stagedWord

	// parent, when set, is consulted for unstaged words before the device.
	// Combined commits chain per-op batches through it so a later op in a
	// group reads the staged (not yet applied) state of earlier ops.
	parent Reader

	// idx is an open-addressed offset→words-index table, active only once
	// the batch outgrows findIndexMin words (combined groups stage hundreds
	// of words; a linear find would make staging quadratic). Empty = linear.
	idx []int32

	// Reused commit scratch.
	spans []span

	// Reused group-merge scratch (lives on whichever batch leads a
	// CommitGroup — pooled batches keep the capacity across groups).
	groupWords []stagedWord
	groupSpans []span
}

type span struct{ start, end uint64 }

// NewBatch creates a reusable batch bound to a window and its undo log.
func NewBatch(w mpk.Window, log *plog.UndoLog) *Batch {
	return &Batch{
		w:     w,
		log:   log,
		words: make([]stagedWord, 0, 64),
		spans: make([]span, 0, 16),
	}
}

// SetParent chains another Reader between this batch and the device: reads
// of unstaged words go to parent first. Pass nil to unchain.
func (b *Batch) SetParent(r Reader) { b.parent = r }

// findIndexMin is the staged-word count past which find switches from a
// linear scan to the open-addressed index. Single allocator ops stage a few
// dozen words (the scan wins there); combined groups go far beyond.
const findIndexMin = 32

// find returns the staged index of off, or -1.
func (b *Batch) find(off uint64) int {
	if len(b.idx) > 0 {
		mask := uint64(len(b.idx) - 1)
		h := off * 0x9E3779B97F4A7C15
		for i := (h ^ h>>32) & mask; ; i = (i + 1) & mask {
			j := b.idx[i]
			if j < 0 {
				return -1
			}
			if b.words[j].off == off {
				return int(j)
			}
		}
	}
	for i := len(b.words) - 1; i >= 0; i-- {
		if b.words[i].off == off {
			return i
		}
	}
	return -1
}

// idxPut inserts off→j into the active index (a slot must be free).
func (b *Batch) idxPut(off uint64, j int32) {
	mask := uint64(len(b.idx) - 1)
	h := off * 0x9E3779B97F4A7C15
	i := (h ^ h>>32) & mask
	for b.idx[i] >= 0 {
		i = (i + 1) & mask
	}
	b.idx[i] = j
}

// idxRebuild (re)builds the index at ≤25% load so probes stay short.
func (b *Batch) idxRebuild() {
	n := 1
	for n < 4*len(b.words) {
		n <<= 1
	}
	if cap(b.idx) >= n {
		b.idx = b.idx[:n]
	} else {
		b.idx = make([]int32, n)
	}
	for i := range b.idx {
		b.idx[i] = -1
	}
	for j, w := range b.words {
		b.idxPut(w.off, int32(j))
	}
}

// ReadU64 returns the staged value of the word at off, the parent's view if
// chained, or the device value (read-your-writes).
func (b *Batch) ReadU64(off uint64) (uint64, error) {
	if i := b.find(off); i >= 0 {
		return b.words[i].val, nil
	}
	if b.parent != nil {
		return b.parent.ReadU64(off)
	}
	return b.w.ReadU64(off)
}

// WriteU64 stages an aligned 8-byte store. Nothing reaches the device until
// Commit.
func (b *Batch) WriteU64(off uint64, v uint64) error {
	if off%8 != 0 {
		return fmt.Errorf("txn: unaligned metadata word write at %#x", off)
	}
	if i := b.find(off); i >= 0 {
		b.words[i].val = v
		return nil
	}
	b.words = append(b.words, stagedWord{off: off, val: v})
	if len(b.words) >= findIndexMin {
		if 2*len(b.words) > len(b.idx) {
			b.idxRebuild()
		} else {
			b.idxPut(off, int32(len(b.words)-1))
		}
	}
	return nil
}

// Len returns the number of staged words.
func (b *Batch) Len() int { return len(b.words) }

// Abort drops all staged writes.
func (b *Batch) Abort() {
	b.words = b.words[:0]
	b.idx = b.idx[:0]
}

// Commit applies the batch failure-atomically. See CommitWith.
func (b *Batch) Commit() error { return b.CommitWith(nil) }

// CommitWith applies the batch failure-atomically. If preTruncate is
// non-nil it runs after the staged stores are durable but before the undo
// log truncates — the hook transactional allocation uses to persist its
// micro-log entry so that either both the allocation and its log record
// survive, or neither does (paper §5.3).
func (b *Batch) CommitWith(preTruncate func() error) error {
	if len(b.words) == 0 {
		if preTruncate != nil {
			return preTruncate()
		}
		return nil
	}
	b.idx = b.idx[:0] // sorting invalidates the staged-word index
	sortWords(b.words)
	b.spans = coalesce(b.spans[:0], b.words)
	if err := commitCore(b.w, b.log, b.words, b.spans, preTruncate); err != nil {
		return err
	}
	b.Abort()
	return nil
}

// CommitGroup commits several batches staged against the same window and
// undo log as one failure-atomic unit: one Seal, one deduplicated set of
// span flushes, one fence, every hook, one Truncate. Batches are merged in
// slice order with later stores winning — correct because combined groups
// chain batch i+1's reads through batch i (SetParent), so a later batch that
// restages a word already saw, and built on, the earlier staged value.
//
// On error nothing is truncated: the undo log still holds every snapshot,
// and the caller must Replay it to back out the whole group (no op in the
// group has been reported successful yet, so all-or-nothing is safe).
// On success every batch is left aborted (empty).
func CommitGroup(batches []*Batch, hooks []func() error) error {
	total := 0
	for _, b := range batches {
		total += len(b.words)
	}
	runHooks := func() error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(); err != nil {
				return err
			}
		}
		return nil
	}
	if total == 0 {
		return runHooks()
	}
	// Single-writer fast path — a width-1 group, or one staging op among
	// validation-only peers: commit that batch's words in place, no merge
	// copy, no allocation. This keeps uncontended combined commits at
	// legacy-commit cost.
	var solo *Batch
	for _, b := range batches {
		if len(b.words) == 0 {
			continue
		}
		if solo != nil {
			solo = nil
			break
		}
		solo = b
	}
	if solo != nil {
		solo.idx = solo.idx[:0]
		sortWords(solo.words)
		solo.spans = coalesce(solo.spans[:0], solo.words)
		if err := commitCore(solo.w, solo.log, solo.words, solo.spans, runHooks); err != nil {
			return err
		}
		for _, b := range batches {
			b.Abort()
		}
		return nil
	}
	lead := batches[0]
	merged := lead.groupWords[:0]
	for _, b := range batches {
		merged = append(merged, b.words...)
	}
	lead.groupWords = merged[:0] // keep the grown capacity
	sortWords(merged)            // stable: equal offsets keep batch order
	// Collapse duplicate offsets keeping the last (winning) store. This is
	// also what deduplicates cross-batch cachelines: one span, one snapshot,
	// one flush per line region no matter how many ops in the group hit it.
	out := merged[:1]
	for _, w := range merged[1:] {
		if w.off == out[len(out)-1].off {
			out[len(out)-1].val = w.val
		} else {
			out = append(out, w)
		}
	}
	spans := coalesce(lead.groupSpans[:0], out)
	lead.groupSpans = spans[:0] // keep the grown capacity
	if err := commitCore(lead.w, lead.log, out, spans, runHooks); err != nil {
		return err
	}
	for _, b := range batches {
		b.Abort()
	}
	return nil
}

// sortWords insertion-sorts by offset, stably: batches are small, staged
// nearly in order, and group merges rely on equal offsets keeping their
// append order (last store wins).
func sortWords(words []stagedWord) {
	for i := 1; i < len(words); i++ {
		w := words[i]
		j := i - 1
		for j >= 0 && words[j].off > w.off {
			words[j+1] = words[j]
			j--
		}
		words[j+1] = w
	}
}

// coalesce folds sorted words into spans so the log holds few, larger
// entries. Words within one cacheline-ish gap share an entry.
func coalesce(spans []span, words []stagedWord) []span {
	cur := span{start: words[0].off, end: words[0].off + 8}
	for _, w := range words[1:] {
		if w.off <= cur.end+56 { // bridge gaps inside the same cacheline region
			cur.end = w.off + 8
		} else {
			spans = append(spans, cur)
			cur = span{start: w.off, end: w.off + 8}
		}
	}
	return append(spans, cur)
}

// commitCore is the shared WAL discipline behind CommitWith and CommitGroup:
// snapshot + seal, apply + flush + fence, hook, truncate.
func commitCore(w mpk.Window, log *plog.UndoLog, words []stagedWord, spans []span, preTruncate func() error) error {
	// 1. WAL: snapshot the original bytes of every span, then seal.
	for _, s := range spans {
		if err := log.Snapshot(s.start, s.end-s.start); err != nil {
			return fmt.Errorf("txn: snapshot: %w", err)
		}
	}
	if err := log.Seal(); err != nil {
		return fmt.Errorf("txn: seal: %w", err)
	}

	// 2. Apply the staged stores and flush them.
	for _, sw := range words {
		if err := w.WriteU64(sw.off, sw.val); err != nil {
			return fmt.Errorf("txn: apply: %w", err)
		}
	}
	for _, s := range spans {
		if err := w.Flush(s.start, s.end-s.start); err != nil {
			return fmt.Errorf("txn: flush: %w", err)
		}
	}
	w.Fence()

	// 3. Optional hook (micro-log append), then the atomic commit point.
	if preTruncate != nil {
		if err := preTruncate(); err != nil {
			// The staged stores are already durable; the undo log is still
			// sealed, so the caller's recovery path will revert them.
			return err
		}
	}
	if err := log.Truncate(); err != nil {
		return fmt.Errorf("txn: truncate: %w", err)
	}
	return nil
}
