// Package txn provides failure-atomic metadata mutation batches.
//
// The undo-logging discipline on NVMM requires strict write-ahead ordering:
// a cacheline may be evicted (and thus persisted) at any moment after it is
// written, so the original bytes must be durable in the undo log before the
// first mutating store is issued. A Batch enforces that mechanically:
//
//  1. The operation stages all its writes in DRAM (read-your-writes).
//  2. Commit snapshots every to-be-mutated range into the undo log and
//     seals it (log durable).
//  3. Only then are the staged stores applied to NVMM, flushed, and the
//     log truncated — the operation's single atomic commit point.
//
// A crash anywhere before truncation replays the undo log and restores the
// pre-operation metadata (paper §5.2).
//
// Metadata in this codebase is mutated exclusively through aligned 8-byte
// words, which keeps staging exact and cheap: a batch is a small slice of
// (offset, value) pairs (allocator operations touch a few dozen words, so
// linear scans beat hashing).
package txn

import (
	"fmt"

	"poseidon/internal/mpk"
	"poseidon/internal/plog"
)

// Reader is the read surface shared by a raw window and an open batch.
// Code that only inspects metadata accepts a Reader so it can run either
// against the device directly or inside a transaction seeing staged state.
type Reader interface {
	ReadU64(off uint64) (uint64, error)
}

// Window satisfies Reader.
var _ Reader = mpk.Window{}

type stagedWord struct {
	off uint64
	val uint64
}

// Batch stages metadata word writes and commits them failure-atomically
// under an undo log. A Batch is single-goroutine (callers hold the sub-heap
// lock). The zero Batch is not usable; call NewBatch.
type Batch struct {
	w   mpk.Window
	log *plog.UndoLog

	words []stagedWord

	// Reused commit scratch.
	spans []span
}

type span struct{ start, end uint64 }

// NewBatch creates a reusable batch bound to a window and its undo log.
func NewBatch(w mpk.Window, log *plog.UndoLog) *Batch {
	return &Batch{
		w:     w,
		log:   log,
		words: make([]stagedWord, 0, 64),
		spans: make([]span, 0, 16),
	}
}

// find returns the staged index of off, or -1.
func (b *Batch) find(off uint64) int {
	for i := len(b.words) - 1; i >= 0; i-- {
		if b.words[i].off == off {
			return i
		}
	}
	return -1
}

// ReadU64 returns the staged value of the word at off, or the device value
// if the word is unstaged (read-your-writes).
func (b *Batch) ReadU64(off uint64) (uint64, error) {
	if i := b.find(off); i >= 0 {
		return b.words[i].val, nil
	}
	return b.w.ReadU64(off)
}

// WriteU64 stages an aligned 8-byte store. Nothing reaches the device until
// Commit.
func (b *Batch) WriteU64(off uint64, v uint64) error {
	if off%8 != 0 {
		return fmt.Errorf("txn: unaligned metadata word write at %#x", off)
	}
	if i := b.find(off); i >= 0 {
		b.words[i].val = v
		return nil
	}
	b.words = append(b.words, stagedWord{off: off, val: v})
	return nil
}

// Len returns the number of staged words.
func (b *Batch) Len() int { return len(b.words) }

// Abort drops all staged writes.
func (b *Batch) Abort() { b.words = b.words[:0] }

// Commit applies the batch failure-atomically. See CommitWith.
func (b *Batch) Commit() error { return b.CommitWith(nil) }

// CommitWith applies the batch failure-atomically. If preTruncate is
// non-nil it runs after the staged stores are durable but before the undo
// log truncates — the hook transactional allocation uses to persist its
// micro-log entry so that either both the allocation and its log record
// survive, or neither does (paper §5.3).
func (b *Batch) CommitWith(preTruncate func() error) error {
	if len(b.words) == 0 {
		if preTruncate != nil {
			return preTruncate()
		}
		return nil
	}
	// Insertion sort: batches are small and staged nearly in order.
	for i := 1; i < len(b.words); i++ {
		w := b.words[i]
		j := i - 1
		for j >= 0 && b.words[j].off > w.off {
			b.words[j+1] = b.words[j]
			j--
		}
		b.words[j+1] = w
	}

	// Coalesce into spans so the log holds few, larger entries. Words
	// within one cacheline-ish gap share an entry.
	b.spans = b.spans[:0]
	cur := span{start: b.words[0].off, end: b.words[0].off + 8}
	for _, w := range b.words[1:] {
		if w.off <= cur.end+56 { // bridge gaps inside the same cacheline region
			cur.end = w.off + 8
		} else {
			b.spans = append(b.spans, cur)
			cur = span{start: w.off, end: w.off + 8}
		}
	}
	b.spans = append(b.spans, cur)

	// 1. WAL: snapshot the original bytes of every span, then seal.
	for _, s := range b.spans {
		if err := b.log.Snapshot(s.start, s.end-s.start); err != nil {
			return fmt.Errorf("txn: snapshot: %w", err)
		}
	}
	if err := b.log.Seal(); err != nil {
		return fmt.Errorf("txn: seal: %w", err)
	}

	// 2. Apply the staged stores and flush them.
	for _, w := range b.words {
		if err := b.w.WriteU64(w.off, w.val); err != nil {
			return fmt.Errorf("txn: apply: %w", err)
		}
	}
	for _, s := range b.spans {
		if err := b.w.Flush(s.start, s.end-s.start); err != nil {
			return fmt.Errorf("txn: flush: %w", err)
		}
	}
	b.w.Fence()

	// 3. Optional hook (micro-log append), then the atomic commit point.
	if preTruncate != nil {
		if err := preTruncate(); err != nil {
			// The staged stores are already durable; the undo log is still
			// sealed, so the caller's recovery path will revert them.
			return err
		}
	}
	if err := b.log.Truncate(); err != nil {
		return fmt.Errorf("txn: truncate: %w", err)
	}
	b.Abort()
	return nil
}
