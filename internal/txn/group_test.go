package txn

import (
	"errors"
	"fmt"
	"testing"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/plog"
)

// newGroupFixture builds a window, an undo log and n empty batches sharing
// them — the shape CommitGroup consumes — on a stats-enabled device.
func newGroupFixture(t *testing.T, n int) ([]*Batch, mpk.Window, *plog.UndoLog, *nvm.Device) {
	t.Helper()
	d, err := nvm.NewDevice(nvm.Options{Capacity: 1 << 20, CrashTracking: true, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	u := mpk.NewUnit(d.Capacity())
	w := mpk.NewWindow(d, u.NewThread(mpk.RightsRW))
	log, err := plog.OpenUndoLog(w, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]*Batch, n)
	for i := range batches {
		batches[i] = NewBatch(w, log)
	}
	return batches, w, log, d
}

// TestCommitGroupMergesBatches commits three chained batches as one
// transaction: one seal, one truncate, last-writer-wins on overlapping
// offsets, and every staged word durable on the device.
func TestCommitGroupMergesBatches(t *testing.T) {
	bs, w, log, _ := newGroupFixture(t, 3)
	for i, b := range bs {
		if i > 0 {
			b.SetParent(bs[i-1])
		}
		if err := b.WriteU64(metaBase+uint64(i)*8, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overlap: batch 2 overwrites batch 0's word; the merged image must keep
	// the later value.
	if err := bs[2].WriteU64(metaBase, 999); err != nil {
		t.Fatal(err)
	}
	seals0, trunc0 := log.Seals(), log.Truncates()
	if err := CommitGroup(bs, make([]func() error, 3)); err != nil {
		t.Fatal(err)
	}
	if got := log.Seals() - seals0; got != 1 {
		t.Fatalf("group of 3 cost %d seals, want 1", got)
	}
	if got := log.Truncates() - trunc0; got != 1 {
		t.Fatalf("group of 3 cost %d truncates, want 1", got)
	}
	want := map[uint64]uint64{metaBase: 999, metaBase + 8: 101, metaBase + 16: 102}
	for off, v := range want {
		if got, _ := w.ReadU64(off); got != v {
			t.Fatalf("device[%#x] = %d, want %d", off, got, v)
		}
	}
	for i, b := range bs {
		if b.Len() != 0 {
			t.Fatalf("batch %d not drained after group commit: len=%d", i, b.Len())
		}
	}
}

// TestCommitGroupParentChain checks read-your-writes ACROSS group members:
// a later batch reads an earlier batch's staged (uncommitted) word through
// its parent, falling through to the device when no member staged the
// offset.
func TestCommitGroupParentChain(t *testing.T) {
	bs, w, _, _ := newGroupFixture(t, 2)
	if err := w.PersistU64(metaBase+32, 7); err != nil {
		t.Fatal(err)
	}
	if err := bs[0].WriteU64(metaBase, 42); err != nil {
		t.Fatal(err)
	}
	bs[1].SetParent(bs[0])
	if v, _ := bs[1].ReadU64(metaBase); v != 42 {
		t.Fatalf("chained read = %d, want staged 42", v)
	}
	if v, _ := bs[1].ReadU64(metaBase + 32); v != 7 {
		t.Fatalf("fall-through read = %d, want device 7", v)
	}
	// Own staged writes still shadow the parent.
	if err := bs[1].WriteU64(metaBase, 43); err != nil {
		t.Fatal(err)
	}
	if v, _ := bs[1].ReadU64(metaBase); v != 43 {
		t.Fatalf("own-write read = %d, want 43", v)
	}
	// Detaching restores plain device reads.
	bs[1].Abort()
	bs[1].SetParent(nil)
	if v, _ := bs[1].ReadU64(metaBase); v != 0 {
		t.Fatalf("detached read = %d, want device 0", v)
	}
}

// TestCommitGroupHookOrderAndAbort checks the hook window: per-op hooks run
// in op order AFTER the merged image is durable and BEFORE the shared
// truncate, and a failing hook leaves the transaction replayable (the
// caller's undo replay must restore every pre-group value).
func TestCommitGroupHookOrderAndAbort(t *testing.T) {
	bs, w, log, _ := newGroupFixture(t, 3)
	for i, b := range bs {
		if err := w.PersistU64(metaBase+uint64(i)*8, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteU64(metaBase+uint64(i)*8, uint64(50+i)); err != nil {
			t.Fatal(err)
		}
	}
	var order []int
	boom := errors.New("hook boom")
	hooks := []func() error{
		func() error {
			// The merged image must already be applied when hooks run.
			if v, _ := w.ReadU64(metaBase + 16); v != 52 {
				t.Fatalf("hook 0 ran before apply: device = %d", v)
			}
			order = append(order, 0)
			return nil
		},
		func() error { order = append(order, 1); return boom },
		func() error { order = append(order, 2); return nil },
	}
	err := CommitGroup(bs, hooks)
	if !errors.Is(err, boom) {
		t.Fatalf("CommitGroup = %v, want hook error", err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("hook order = %v, want [0 1] (stop at first failure)", order)
	}
	// The failed group must be fully revertible: the undo log was not
	// truncated, so replay restores the pre-group image.
	for _, b := range bs {
		b.Abort()
	}
	if err := log.Replay(); err != nil {
		t.Fatalf("replay after failed group: %v", err)
	}
	for i := uint64(0); i < 3; i++ {
		if v, _ := w.ReadU64(metaBase + i*8); v != i {
			t.Fatalf("device[%d] = %d after replay, want %d", i, v, i)
		}
	}
}

// TestCommitGroupDedupsFlushes is the fence/flush amortization contract: k
// ops staging words in the SAME cache line must cost far fewer flushes and
// fences as one group than as k solo commits.
func TestCommitGroupDedupsFlushes(t *testing.T) {
	const k = 8
	solo, _, _, dSolo := newGroupFixture(t, k)
	s0 := dSolo.StatsSnapshot()
	for i, b := range solo {
		if err := b.WriteU64(metaBase+uint64(i)*8, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s1 := dSolo.StatsSnapshot()
	soloFlushes, soloFences := s1.Flushes-s0.Flushes, s1.Fences-s0.Fences

	group, _, _, dGroup := newGroupFixture(t, k)
	for i, b := range group {
		if i > 0 {
			b.SetParent(group[i-1])
		}
		if err := b.WriteU64(metaBase+uint64(i)*8, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	g0 := dGroup.StatsSnapshot()
	if err := CommitGroup(group, make([]func() error, k)); err != nil {
		t.Fatal(err)
	}
	g1 := dGroup.StatsSnapshot()
	groupFlushes, groupFences := g1.Flushes-g0.Flushes, g1.Fences-g0.Fences

	t.Logf("k=%d same-line ops: solo %d flushes / %d fences, group %d flushes / %d fences",
		k, soloFlushes, soloFences, groupFlushes, groupFences)
	if groupFlushes*2 > soloFlushes {
		t.Fatalf("group commit did not halve flushes: %d vs %d solo", groupFlushes, soloFlushes)
	}
	if groupFences*2 > soloFences {
		t.Fatalf("group commit did not halve fences: %d vs %d solo", groupFences, soloFences)
	}
}

// TestCommitGroupEmpty covers the degenerate shapes: no batches, and
// batches with nothing staged (hooks must still run exactly once).
func TestCommitGroupEmpty(t *testing.T) {
	if err := CommitGroup(nil, nil); err != nil {
		t.Fatalf("empty group: %v", err)
	}
	bs, _, log, _ := newGroupFixture(t, 2)
	seals0 := log.Seals()
	ran := 0
	hooks := []func() error{func() error { ran++; return nil }, nil}
	if err := CommitGroup(bs, hooks); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("hook ran %d times on empty-batch group, want 1", ran)
	}
	if log.Seals() != seals0 {
		t.Fatalf("empty-batch group sealed the log (%d new seals)", log.Seals()-seals0)
	}
}

// BenchmarkBatchFind guards the staged-word lookup: WriteU64 re-staging and
// ReadU64 both search the staged set, and the open-addressed index must
// keep large batches (merged groups) from going quadratic.
func BenchmarkBatchFind(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("words=%d", n), func(b *testing.B) {
			d, err := nvm.NewDevice(nvm.Options{Capacity: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			u := mpk.NewUnit(d.Capacity())
			w := mpk.NewWindow(d, u.NewThread(mpk.RightsRW))
			log, err := plog.OpenUndoLog(w, logBase, logSize)
			if err != nil {
				b.Fatal(err)
			}
			batch := NewBatch(w, log)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					if err := batch.WriteU64(metaBase+uint64(j)*8, uint64(j)); err != nil {
						b.Fatal(err)
					}
				}
				// Hit every staged word once: the read path is the scan the
				// index exists for.
				for j := 0; j < n; j++ {
					if _, err := batch.ReadU64(metaBase + uint64(j)*8); err != nil {
						b.Fatal(err)
					}
				}
				batch.Abort()
			}
		})
	}
}
