package pmdkalloc

import "poseidon/internal/alloc"

// handle is a per-thread view: PMDK maps it onto one of the 12 arenas.
type handle struct {
	h     *Heap
	arena int
}

var _ alloc.Handle = (*handle)(nil)

// Alloc implements alloc.Handle.
func (t *handle) Alloc(size uint64) (alloc.Ptr, error) {
	if size == 0 {
		size = 1
	}
	var off uint64
	var err error
	if classOf(size) >= 0 {
		off, err = t.h.allocSmall(t.h.arenas[t.arena], t.arena, size)
	} else {
		off, err = t.h.allocLarge(size)
	}
	if err != nil {
		return 0, err
	}
	return alloc.Ptr(off), nil
}

// Free implements alloc.Handle. PMDK performs no validation: a bad pointer
// corrupts the heap rather than returning an error.
func (t *handle) Free(p alloc.Ptr) error { return t.h.free(uint64(p)) }

// Write implements alloc.Handle: a direct store into the mapped heap. The
// region is uniformly writable — there is no metadata isolation, which is
// exactly what the corruption demos exploit.
func (t *handle) Write(p alloc.Ptr, off uint64, b []byte) error {
	return t.h.dev.Write(uint64(p)+off, b)
}

// Read implements alloc.Handle.
func (t *handle) Read(p alloc.Ptr, off uint64, b []byte) error {
	return t.h.dev.Read(uint64(p)+off, b)
}

// WriteU64 implements alloc.Handle.
func (t *handle) WriteU64(p alloc.Ptr, off uint64, v uint64) error {
	return t.h.dev.WriteU64(uint64(p)+off, v)
}

// ReadU64 implements alloc.Handle.
func (t *handle) ReadU64(p alloc.Ptr, off uint64) (uint64, error) {
	return t.h.dev.ReadU64(uint64(p) + off)
}

// Persist implements alloc.Handle.
func (t *handle) Persist(p alloc.Ptr, off, n uint64) error {
	if err := t.h.dev.Flush(uint64(p)+off, n); err != nil {
		return err
	}
	t.h.dev.Fence()
	return nil
}

// Close implements alloc.Handle.
func (t *handle) Close() {}
