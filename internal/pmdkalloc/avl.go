package pmdkalloc

// avlTree is the DRAM-resident AVL tree of free chunk runs, keyed by run
// length then start index — the global large-allocation index whose single
// lock the paper identifies as a PMDK scalability bottleneck (§3.3). It is
// deliberately a faithful balanced tree, not a map: the point of the
// baseline is to reproduce the design, and the tree is also what PMDK's
// own heap uses (ravl).
type avlTree struct {
	root *avlNode
}

type avlNode struct {
	length, start uint64
	left, right   *avlNode
	height        int
}

type run struct{ start, length uint64 }

func (t *avlTree) insert(r run) { t.root = avlInsert(t.root, r) }

// removeBestFit removes and returns the smallest run with length ≥ n.
func (t *avlTree) removeBestFit(n uint64) (run, bool) {
	node := bestFit(t.root, n)
	if node == nil {
		return run{}, false
	}
	r := run{start: node.start, length: node.length}
	t.root = avlDelete(t.root, r)
	return r, true
}

// size returns the number of runs (test helper).
func (t *avlTree) size() int { return avlCount(t.root) }

// totalChunks returns the number of free chunks across all runs.
func (t *avlTree) totalChunks() uint64 { return avlTotal(t.root) }

func avlCount(n *avlNode) int {
	if n == nil {
		return 0
	}
	return 1 + avlCount(n.left) + avlCount(n.right)
}

func avlTotal(n *avlNode) uint64 {
	if n == nil {
		return 0
	}
	return n.length + avlTotal(n.left) + avlTotal(n.right)
}

func less(aLen, aStart, bLen, bStart uint64) bool {
	if aLen != bLen {
		return aLen < bLen
	}
	return aStart < bStart
}

func height(n *avlNode) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *avlNode) *avlNode {
	n.height = 1 + max(height(n.left), height(n.right))
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *avlNode) *avlNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

func rotateLeft(n *avlNode) *avlNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func avlInsert(n *avlNode, r run) *avlNode {
	if n == nil {
		return &avlNode{length: r.length, start: r.start, height: 1}
	}
	if less(r.length, r.start, n.length, n.start) {
		n.left = avlInsert(n.left, r)
	} else {
		n.right = avlInsert(n.right, r)
	}
	return fix(n)
}

func avlDelete(n *avlNode, r run) *avlNode {
	if n == nil {
		return nil
	}
	switch {
	case r.length == n.length && r.start == n.start:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.length, n.start = succ.length, succ.start
		n.right = avlDelete(n.right, run{start: succ.start, length: succ.length})
	case less(r.length, r.start, n.length, n.start):
		n.left = avlDelete(n.left, r)
	default:
		n.right = avlDelete(n.right, r)
	}
	return fix(n)
}

// bestFit finds the smallest node with length ≥ n.
func bestFit(node *avlNode, n uint64) *avlNode {
	var best *avlNode
	for node != nil {
		if node.length >= n {
			best = node
			node = node.left
		} else {
			node = node.right
		}
	}
	return best
}
