package pmdkalloc

import (
	"errors"
	"testing"

	"poseidon/internal/alloc"
)

// The §8 hardening: with canaries on, the Figure 3 attacks are *detected*
// — the corrupted free is skipped instead of clearing neighbours' bitmap
// bits. Corruption no longer propagates; the block leaks, exactly as the
// paper predicts for this mitigation.

func newCanaryHeap(t *testing.T, capacity uint64) *Heap {
	t.Helper()
	h, err := New(Options{Capacity: capacity, Canary: true})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCanaryNormalOperationUnaffected(t *testing.T) {
	h := newCanaryHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	var ptrs []alloc.Ptr
	for i := 0; i < 500; i++ {
		p, err := th.Alloc(uint64(64 + i%2048))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatalf("legitimate free tripped: %v", err)
		}
	}
	if h.CanaryTrips() != 0 {
		t.Fatalf("%d false-positive canary trips", h.CanaryTrips())
	}
}

func TestCanaryStopsOverlapAttack(t *testing.T) {
	h := newCanaryHeap(t, 1<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	var ptrs []alloc.Ptr
	for {
		p, err := th.Alloc(64)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	victim := ptrs[len(ptrs)/2+500]
	// The Figure 3 (left) header corruption.
	if err := h.Device().WriteU64(uint64(victim)-HeaderSize, 1088); err != nil {
		t.Fatal(err)
	}
	err := th.Free(victim)
	if !errors.Is(err, ErrCanaryTripped) {
		t.Fatalf("corrupted free returned %v, want ErrCanaryTripped", err)
	}
	if h.CanaryTrips() != 1 {
		t.Fatalf("trips = %d", h.CanaryTrips())
	}
	// No bitmap bits were cleared: the heap is still full, and crucially
	// no allocation overlaps a live object.
	if _, err := th.Alloc(64); !errors.Is(err, alloc.ErrOutOfMemory) {
		t.Fatalf("allocation after skipped free: %v (corruption propagated)", err)
	}
}

func TestCanaryStopsLeakAttackPropagation(t *testing.T) {
	h := newCanaryHeap(t, 32<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	var ptrs []alloc.Ptr
	for {
		p, err := th.Alloc(2 << 20)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Figure 3 (right): shrink every header, then free.
	for _, p := range ptrs {
		if err := h.Device().WriteU64(uint64(p)-HeaderSize, 64); err != nil {
			t.Fatal(err)
		}
		if err := th.Free(p); !errors.Is(err, ErrCanaryTripped) {
			t.Fatalf("corrupted free returned %v", err)
		}
	}
	if int(h.CanaryTrips()) != len(ptrs) {
		t.Fatalf("trips = %d, want %d", h.CanaryTrips(), len(ptrs))
	}
	// The chunk headers were never touched by the bad frees: the heap
	// metadata stays consistent (every chunk still a valid large run).
	for i, p := range ptrs {
		chunk := (uint64(p) - HeaderSize - h.chunkBase) / ChunkSize
		state, n, err := h.readChunkHdr(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if state != chunkLargeHead || n == 0 {
			t.Fatalf("object %d: run header corrupted (state=%d)", i, state)
		}
	}
}

func TestCanaryOffPreservesVulnerability(t *testing.T) {
	// Regression guard: without the option, the baseline must stay
	// vulnerable (the Figure 3 tests depend on it).
	h := newTestHeap(t, 1<<20)
	if h.canary {
		t.Fatal("canary on by default")
	}
}
