package pmdkalloc

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"poseidon/internal/alloc"
)

func newTestHeap(t *testing.T, capacity uint64) *Heap {
	t.Helper()
	h, err := New(Options{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestClassOf(t *testing.T) {
	tests := []struct {
		size uint64
		want int
	}{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {4096, 6},
		{128 << 10, 11}, {128<<10 + 1, -1}, {2 << 20, -1},
	}
	for _, tt := range tests {
		if got := classOf(tt.size); got != tt.want {
			t.Errorf("classOf(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, err := h.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	p, err := th.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("pmdk baseline data")
	if err := th.Write(p, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := th.Persist(p, 0, uint64(len(want))); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := th.Read(p, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data mismatch")
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestSmallAllocationsDistinct(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	seen := map[alloc.Ptr]bool{}
	for i := 0; i < 1000; i++ {
		p, err := th.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("pointer %#x handed out twice", p)
		}
		seen[p] = true
	}
}

func TestLargeAllocation(t *testing.T) {
	h := newTestHeap(t, 32<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	p, err := th.Alloc(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(p, 2<<20-8, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.ReadU64(p, 2<<20-8); v != 99 {
		t.Fatalf("tail word = %d", v)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	// After enough frees the action log drains and the space is reusable.
	for i := 0; i < actionLogLimit; i++ {
		q, err := th.Alloc(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := th.Alloc(2 << 20); err != nil {
		t.Fatalf("large space not recycled: %v", err)
	}
}

func TestExhaustion(t *testing.T) {
	h := newTestHeap(t, 1<<20) // 4 chunks
	th, _ := h.Thread(0)
	defer th.Close()
	n := 0
	for {
		_, err := th.Alloc(64 << 10)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n > 100 {
			t.Fatal("never exhausted")
		}
	}
	if n == 0 {
		t.Fatal("no allocations succeeded")
	}
}

func TestFreeListRebuildRecyclesMemory(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	// Exhaust, free everything, exhaust again: the rebuild (not the free)
	// must rediscover the space.
	var ptrs []alloc.Ptr
	for {
		p, err := th.Alloc(4096)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	rebuildsBefore, _, _, _ := h.StatsSnapshot()
	count := 0
	for {
		_, err := th.Alloc(4096)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != len(ptrs) {
		t.Fatalf("recycled %d blocks, want %d", count, len(ptrs))
	}
	rebuildsAfter, _, _, _ := h.StatsSnapshot()
	if rebuildsAfter == rebuildsBefore {
		t.Fatal("no rebuild happened (free list should start empty)")
	}
}

func TestConcurrentSmallAllocs(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[alloc.Ptr]bool{}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := h.Thread(w)
			if err != nil {
				t.Error(err)
				return
			}
			defer th.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			local := make([]alloc.Ptr, 0, 64)
			for i := 0; i < 300; i++ {
				if len(local) > 32 {
					p := local[rng.Intn(len(local))]
					_ = p // frees interleave below
				}
				p, err := th.Alloc(uint64(rng.Intn(1024) + 1))
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, p)
			}
			mu.Lock()
			for _, p := range local {
				if seen[p] {
					t.Errorf("pointer %#x handed out twice across threads", p)
				}
				seen[p] = true
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
}

// TestFigure3OverlappingAllocation reproduces the left half of Figure 3: a
// heap overflow corrupts an object header's size to a larger value; the
// free then clears neighbours' allocation bits, and subsequent allocations
// hand out already-allocated memory — silent user data corruption.
func TestFigure3OverlappingAllocation(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	th, _ := h.Thread(0)
	defer th.Close()

	// Fill the heap with 64-byte objects.
	var ptrs []alloc.Ptr
	for {
		p, err := th.Alloc(64)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) < 100 {
		t.Fatalf("only %d objects", len(ptrs))
	}
	live := map[alloc.Ptr]bool{}
	for _, p := range ptrs {
		live[p] = true
	}

	// The "program bug": overwrite the in-place header of one object,
	// enlarging its recorded size — a single stray 8-byte store. (Offset
	// the victim away from a chunk boundary so the 17 corrupted blocks
	// stay in one chunk, as in the paper's layout.)
	victim := ptrs[len(ptrs)/2+500]
	if err := h.Device().WriteU64(uint64(victim)-HeaderSize, 1088); err != nil {
		t.Fatal(err)
	}
	delete(live, victim)
	if err := th.Free(victim); err != nil {
		t.Fatal(err)
	}

	// Only one object was freed, so only one allocation should succeed.
	// Instead, the corrupted free cleared 1088/64 = 17 bitmap bits.
	var reallocated []alloc.Ptr
	for {
		p, err := th.Alloc(64)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		reallocated = append(reallocated, p)
	}
	if len(reallocated) != 17 {
		t.Fatalf("re-allocated %d objects after freeing one, want the corrupted 17", len(reallocated))
	}
	overlaps := 0
	for _, p := range reallocated {
		if live[p] {
			overlaps++ // handed out memory that is still allocated!
		}
	}
	if overlaps != 16 {
		t.Fatalf("%d overlapping allocations, want 16 (silent data corruption)", overlaps)
	}
}

// TestFigure3PermanentLeak reproduces the right half of Figure 3: headers
// of 2 MiB objects are corrupted to a smaller size before freeing; PMDK
// frees only part of each run, permanently leaking the rest.
func TestFigure3PermanentLeak(t *testing.T) {
	h := newTestHeap(t, 32<<20)
	th, _ := h.Thread(0)
	defer th.Close()

	// Fill the heap with 2 MiB objects.
	var ptrs []alloc.Ptr
	for {
		p, err := th.Alloc(2 << 20)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	nalloc := len(ptrs)
	if nalloc < 4 {
		t.Fatalf("only %d objects", nalloc)
	}

	// Corrupt every header to 64 bytes, then free everything.
	for _, p := range ptrs {
		if err := h.Device().WriteU64(uint64(p)-HeaderSize, 64); err != nil {
			t.Fatal(err)
		}
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}

	// All objects were freed, so the same number should be allocatable.
	// Instead each free released only 1 of its 9 chunks: permanent leak.
	count := 0
	for {
		_, err := th.Alloc(2 << 20)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count >= nalloc {
		t.Fatalf("re-allocated %d of %d — no leak?", count, nalloc)
	}
	if count != 0 {
		t.Logf("re-allocated %d of %d (leaked the rest)", count, nalloc)
	}
}

func TestAVLTree(t *testing.T) {
	var tr avlTree
	// Insert runs of varying lengths.
	runs := []run{{0, 5}, {10, 2}, {20, 8}, {30, 2}, {40, 1}, {50, 16}}
	for _, r := range runs {
		tr.insert(r)
	}
	if tr.size() != len(runs) {
		t.Fatalf("size = %d", tr.size())
	}
	if got := tr.totalChunks(); got != 34 {
		t.Fatalf("total = %d", got)
	}
	// Best fit picks the smallest adequate run.
	r, ok := tr.removeBestFit(3)
	if !ok || r.length != 5 {
		t.Fatalf("bestFit(3) = %+v, %v", r, ok)
	}
	r, ok = tr.removeBestFit(2)
	if !ok || r.length != 2 {
		t.Fatalf("bestFit(2) = %+v, %v", r, ok)
	}
	// Exhaust.
	for {
		if _, ok := tr.removeBestFit(1); !ok {
			break
		}
	}
	if tr.size() != 0 {
		t.Fatalf("size after drain = %d", tr.size())
	}
	if _, ok := tr.removeBestFit(1); ok {
		t.Fatal("empty tree returned a run")
	}
}

func TestAVLTreeRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr avlTree
	model := map[uint64]uint64{} // start -> length
	next := uint64(0)
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			length := uint64(rng.Intn(16) + 1)
			tr.insert(run{start: next, length: length})
			model[next] = length
			next += length
		} else {
			want := uint64(rng.Intn(16) + 1)
			r, ok := tr.removeBestFit(want)
			// Model check: is there any run ≥ want?
			var bestLen uint64
			for _, l := range model {
				if l >= want && (bestLen == 0 || l < bestLen) {
					bestLen = l
				}
			}
			if (bestLen != 0) != ok {
				t.Fatalf("step %d: ok=%v, model best=%d", i, ok, bestLen)
			}
			if ok {
				if model[r.start] != r.length {
					t.Fatalf("step %d: removed unknown run %+v", i, r)
				}
				if r.length != bestLen {
					t.Fatalf("step %d: removed length %d, best fit is %d", i, r.length, bestLen)
				}
				delete(model, r.start)
			}
		}
	}
	if tr.size() != len(model) {
		t.Fatalf("size %d, model %d", tr.size(), len(model))
	}
}
