package pmdkalloc

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkAVLBestFit measures the tree-based free-chunk index at
// increasing populations — the O(log n) metadata access Poseidon's
// constant-time hash table replaces (§4.7). Pair with
// memblock.BenchmarkLookup.
func BenchmarkAVLBestFit(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("runs=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			var tr avlTree
			for i := 0; i < n; i++ {
				tr.insert(run{start: uint64(i) * 64, length: uint64(rng.Intn(32) + 1)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				want := uint64(rng.Intn(32) + 1)
				r, ok := tr.removeBestFit(want)
				if !ok {
					b.Fatal("tree drained")
				}
				tr.insert(r)
			}
		})
	}
}
