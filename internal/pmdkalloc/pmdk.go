// Package pmdkalloc is a design-faithful reproduction of the PMDK
// libpmemobj allocator, the paper's primary baseline (§2.2, §3). It
// deliberately reproduces the mechanisms the paper analyses:
//
//   - In-place metadata: a 16-byte object header (size, status) sits
//     immediately before every allocation in the user-writable region. The
//     free path trusts that header, so a heap overflow that corrupts it
//     causes overlapping allocations or permanent leaks (Figure 3).
//   - A fixed pool of 12 arenas with DRAM free lists that are rebuilt by
//     sequentially re-scanning chunk bitmaps whenever a list runs empty
//     (§3.3) — rebuilds serialise on a global lock.
//   - A single DRAM AVL tree, under one global lock, indexing free chunk
//     runs for large allocations (§3.3).
//   - A global action log batching free operations (§7.2) — every free
//     takes the global log lock.
//
// No MPK protection, no free-validation: that is the point of the baseline.
package pmdkalloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"poseidon/internal/alloc"
	"poseidon/internal/nvm"
)

// ErrCanaryTripped reports a free skipped by the §8 canary hardening: the
// in-place header was corrupted, and the free was dropped to stop the
// corruption from propagating (the block itself leaks).
var ErrCanaryTripped = errors.New("pmdkalloc: header canary tripped; free skipped")

// Geometry constants (PMDK's actual chunk size is 256 KiB).
const (
	ChunkSize = 256 << 10
	// HeaderSize is the in-place object header: [size u64][status u64].
	HeaderSize = 16

	bitmapBytes = 512 // 4096 bits, enough for the densest class
	numArenas   = 12

	numSmallClasses = 12 // 64 B … 128 KiB
	largeThreshold  = 128 << 10

	statusAllocated = 1
	statusFree      = 0

	// Chunk header states.
	chunkFree      = 0
	chunkSmallRun  = 1
	chunkLargeHead = 2
	chunkLargeCont = 3

	heapMagic = 0x4b444d50 // "PMDK"

	hdrPage        = 4096
	actionLogLimit = 16
)

// Options configures the baseline heap.
type Options struct {
	// Capacity is the chunk-area size in bytes (rounded to whole chunks).
	// Default 512 MiB.
	Capacity uint64
	// Arenas overrides the arena count (default 12, as in the paper).
	Arenas int
	// Canary enables the hardening the paper suggests for PMDK (§8): the
	// in-place header carries a canary derived from the size and the slot
	// address. A free whose header fails the check is skipped, stopping
	// corruption from propagating into the allocation bitmaps — though the
	// skipped block leaks, exactly as the paper predicts ("neither
	// guarantees the metadata protection nor prevents persistent memory
	// leak, it can mitigate the side effect").
	Canary bool
	// DeviceStats enables flush counters on the device.
	DeviceStats bool
}

// Heap is a PMDK-like persistent heap.
type Heap struct {
	dev       *nvm.Device
	nchunks   uint64
	chunkBase uint64
	arenas    []*arena
	canary    bool

	avlMu sync.Mutex
	avl   avlTree

	// chunkHdrMu is a leaf lock serialising chunk-header access: the
	// sequential rebuild scans every header while claims and drains
	// rewrite them (PMDK guards its zone metadata similarly).
	chunkHdrMu sync.RWMutex

	rebuildMu sync.Mutex // free-list rebuilds are sequential (§3.3)

	actionMu      sync.Mutex // the global action log (§7.2)
	pendingRuns   []run
	pendingOther  int
	actionCounter uint64

	stats Stats

	nextArena atomic.Uint32
	closed    atomic.Bool
}

// Stats counts the baseline's characteristic events.
type Stats struct {
	Rebuilds     atomic.Uint64 // sequential free-list rebuilds
	ChunkClaims  atomic.Uint64 // small-run chunks claimed from the AVL
	LargeAllocs  atomic.Uint64
	ActionDrains atomic.Uint64
	CanaryTrips  atomic.Uint64 // frees skipped by a failed canary check
}

type arena struct {
	mu        sync.Mutex
	freeLists [numSmallClasses][]uint64 // device offsets of free slots
}

var _ alloc.Allocator = (*Heap)(nil)

// classBlock returns the block size of a small class.
func classBlock(class int) uint64 { return 64 << uint(class) }

// classOf returns the small class for size, or -1 for the large path.
func classOf(size uint64) int {
	if size > largeThreshold {
		return -1
	}
	if size <= 64 {
		return 0
	}
	return bits.Len64(size-1) - 6
}

// slotStride is the distance between slots of a class (block + header).
func slotStride(class int) uint64 { return classBlock(class) + HeaderSize }

// slotsPerChunk returns how many slots of a class fit one chunk.
func slotsPerChunk(class int) uint64 {
	return (ChunkSize - bitmapBytes) / slotStride(class)
}

// New creates a fresh PMDK-like heap.
func New(opts Options) (*Heap, error) {
	if opts.Capacity == 0 {
		opts.Capacity = 512 << 20
	}
	if opts.Arenas == 0 {
		opts.Arenas = numArenas
	}
	nchunks := opts.Capacity / ChunkSize
	if nchunks == 0 {
		return nil, errors.New("pmdkalloc: capacity below one chunk")
	}
	chunkHdrBytes := (nchunks*16 + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	chunkBase := uint64(hdrPage) + chunkHdrBytes
	dev, err := nvm.NewDevice(nvm.Options{
		Capacity: chunkBase + nchunks*ChunkSize,
		Stats:    opts.DeviceStats,
	})
	if err != nil {
		return nil, err
	}
	h := &Heap{dev: dev, nchunks: nchunks, chunkBase: chunkBase, canary: opts.Canary}
	if err := dev.PersistU64(0, heapMagic); err != nil {
		return nil, err
	}
	if err := dev.PersistU64(8, nchunks); err != nil {
		return nil, err
	}
	h.arenas = make([]*arena, opts.Arenas)
	for i := range h.arenas {
		h.arenas[i] = &arena{}
	}
	h.avl.insert(run{start: 0, length: nchunks})
	return h, nil
}

// Name implements alloc.Allocator.
func (h *Heap) Name() string { return "pmdk" }

// Shards implements alloc.Allocator. PMDK's parallelism is its arena pool.
func (h *Heap) Shards() int { return len(h.arenas) }

// Device exposes the device (corruption demos write object headers through
// it, exactly as a buggy program would through its mapped heap).
func (h *Heap) Device() *nvm.Device { return h.dev }

// StatsSnapshot returns characteristic-event counts.
func (h *Heap) StatsSnapshot() (rebuilds, chunkClaims, largeAllocs, drains uint64) {
	return h.stats.Rebuilds.Load(), h.stats.ChunkClaims.Load(),
		h.stats.LargeAllocs.Load(), h.stats.ActionDrains.Load()
}

// CanaryTrips returns the number of frees dropped by the canary check.
func (h *Heap) CanaryTrips() uint64 { return h.stats.CanaryTrips.Load() }

// Close implements alloc.Allocator.
func (h *Heap) Close() error {
	h.closed.Store(true)
	return nil
}

// Thread implements alloc.Allocator. PMDK maps threads onto its fixed
// arena pool, so distinct shards share arenas once shard ≥ 12 — the
// saturation the paper measures past 16–32 threads.
func (h *Heap) Thread(shard int) (alloc.Handle, error) {
	if h.closed.Load() {
		return nil, errors.New("pmdkalloc: heap closed")
	}
	return &handle{h: h, arena: shard % len(h.arenas)}, nil
}

// chunkHdrOff returns the device offset of chunk i's header.
func (h *Heap) chunkHdrOff(i uint64) uint64 { return hdrPage + i*16 }

// chunkOff returns the device offset of chunk i's data.
func (h *Heap) chunkOff(i uint64) uint64 { return h.chunkBase + i*ChunkSize }

// writeChunkHdr persists a chunk header.
func (h *Heap) writeChunkHdr(i uint64, state, aux uint64) error {
	h.chunkHdrMu.Lock()
	defer h.chunkHdrMu.Unlock()
	if err := h.dev.WriteU64(h.chunkHdrOff(i), state); err != nil {
		return err
	}
	if err := h.dev.WriteU64(h.chunkHdrOff(i)+8, aux); err != nil {
		return err
	}
	if err := h.dev.Flush(h.chunkHdrOff(i), 16); err != nil {
		return err
	}
	h.dev.Fence()
	return nil
}

func (h *Heap) readChunkHdr(i uint64) (state, aux uint64, err error) {
	h.chunkHdrMu.RLock()
	defer h.chunkHdrMu.RUnlock()
	state, err = h.dev.ReadU64(h.chunkHdrOff(i))
	if err != nil {
		return 0, 0, err
	}
	aux, err = h.dev.ReadU64(h.chunkHdrOff(i) + 8)
	return state, aux, err
}

// logOp models libpmemobj's per-lane redo logging: every allocation and
// free writes a redo record (offset + bitmap delta), persists it, applies
// the change, and persists a commit word — two persist barriers per
// operation on top of the data itself. Lanes live in the heap header page,
// one per arena.
func (h *Heap) logOp(arenaIdx int, a, b uint64) error {
	lane := uint64(64 + (arenaIdx%len(h.arenas))*64)
	if err := h.dev.WriteU64(lane, a); err != nil {
		return err
	}
	if err := h.dev.WriteU64(lane+8, b); err != nil {
		return err
	}
	if err := h.dev.Flush(lane, 16); err != nil {
		return err
	}
	h.dev.Fence()
	return h.dev.PersistU64(lane+24, a^b) // commit word
}

// canaryOf derives the header canary from the size and the slot address —
// a stray write that changes the size (or lands in the wrong header) no
// longer matches.
func canaryOf(slotOff, size uint64) uint64 {
	x := slotOff*0x9E3779B97F4A7C15 ^ size*0xFF51AFD7ED558CCD
	x ^= x >> 29
	return x &^ 0xFF // low byte carries the status
}

// writeObjHeader persists the in-place object header before a block. With
// canaries enabled, the status word's upper bits carry the check value.
func (h *Heap) writeObjHeader(slotOff, size, status uint64) error {
	if err := h.dev.WriteU64(slotOff, size); err != nil {
		return err
	}
	word := status
	if h.canary {
		word = status&0xFF | canaryOf(slotOff, size)
	}
	if err := h.dev.WriteU64(slotOff+8, word); err != nil {
		return err
	}
	if err := h.dev.Flush(slotOff, HeaderSize); err != nil {
		return err
	}
	h.dev.Fence()
	return nil
}

// checkCanary validates a header about to be trusted by free. Only
// meaningful when canaries are enabled.
func (h *Heap) checkCanary(slotOff, size, statusWord uint64) bool {
	if !h.canary {
		return true
	}
	return statusWord&^0xFF == canaryOf(slotOff, size)
}

// bitOps set or clear allocation-bitmap bits and persist the touched words.
func (h *Heap) setBits(chunk uint64, first, n uint64, set bool) error {
	base := h.chunkOff(chunk)
	for i := first; i < first+n; i++ {
		wordOff := base + (i/64)*8
		w, err := h.dev.ReadU64(wordOff)
		if err != nil {
			return err
		}
		if set {
			w |= 1 << (i % 64)
		} else {
			w &^= 1 << (i % 64)
		}
		if err := h.dev.WriteU64(wordOff, w); err != nil {
			return err
		}
		if err := h.dev.Flush(wordOff, 8); err != nil {
			return err
		}
	}
	h.dev.Fence()
	return nil
}

func (h *Heap) testBit(chunk, i uint64) (bool, error) {
	w, err := h.dev.ReadU64(h.chunkOff(chunk) + (i/64)*8)
	if err != nil {
		return false, err
	}
	return w&(1<<(i%64)) != 0, nil
}

// slotOff returns the device offset of slot i (its header) in a chunk.
func (h *Heap) slotOff(chunk uint64, class int, i uint64) uint64 {
	return h.chunkOff(chunk) + bitmapBytes + i*slotStride(class)
}

// claimChunk takes one free chunk from the global AVL tree and formats it
// as a small run of the class, owned by the arena.
func (h *Heap) claimChunk(class, arenaIdx int) (uint64, error) {
	h.avlMu.Lock()
	r, ok := h.avl.removeBestFit(1)
	if !ok {
		h.drainActionsLocked()
		r, ok = h.avl.removeBestFit(1)
	}
	if ok && r.length > 1 {
		h.avl.insert(run{start: r.start + 1, length: r.length - 1})
	}
	h.avlMu.Unlock()
	if !ok {
		return 0, alloc.ErrOutOfMemory
	}
	h.stats.ChunkClaims.Add(1)
	chunk := r.start
	// Zero the bitmap, then publish the chunk as a small run.
	if err := h.dev.Zero(h.chunkOff(chunk), bitmapBytes); err != nil {
		return 0, err
	}
	if err := h.dev.Flush(h.chunkOff(chunk), bitmapBytes); err != nil {
		return 0, err
	}
	h.dev.Fence()
	aux := uint64(class) | uint64(arenaIdx)<<32
	if err := h.writeChunkHdr(chunk, chunkSmallRun, aux); err != nil {
		return 0, err
	}
	return chunk, nil
}

// rebuild re-scans every chunk owned by the arena for clear bitmap bits and
// refills the DRAM free list — PMDK's sequential rebuild (§3.3). The global
// rebuild lock is the modeled serialisation.
func (h *Heap) rebuild(a *arena, class, arenaIdx int) error {
	h.rebuildMu.Lock()
	defer h.rebuildMu.Unlock()
	h.stats.Rebuilds.Add(1)
	wantAux := uint64(class) | uint64(arenaIdx)<<32
	for c := uint64(0); c < h.nchunks; c++ {
		state, aux, err := h.readChunkHdr(c)
		if err != nil {
			return err
		}
		if state != chunkSmallRun || aux != wantAux {
			continue
		}
		nslots := slotsPerChunk(class)
		for i := uint64(0); i < nslots; i++ {
			set, err := h.testBit(c, i)
			if err != nil {
				return err
			}
			if !set {
				a.freeLists[class] = append(a.freeLists[class], h.slotOff(c, class, i))
			}
		}
	}
	return nil
}

// allocSmall serves size ≤ 128 KiB from the arena's class free list.
func (h *Heap) allocSmall(a *arena, arenaIdx int, size uint64) (uint64, error) {
	class := classOf(size)
	a.mu.Lock()
	defer a.mu.Unlock()
	fl := &a.freeLists[class]
	if len(*fl) == 0 {
		if err := h.rebuild(a, class, arenaIdx); err != nil {
			return 0, err
		}
	}
	if len(*fl) == 0 {
		chunk, err := h.claimChunk(class, arenaIdx)
		if err != nil {
			return 0, err
		}
		nslots := slotsPerChunk(class)
		for i := uint64(0); i < nslots; i++ {
			*fl = append(*fl, h.slotOff(chunk, class, i))
		}
	}
	slot := (*fl)[len(*fl)-1]
	*fl = (*fl)[:len(*fl)-1]

	chunk := (slot - h.chunkBase) / ChunkSize
	idx := (slot - h.chunkOff(chunk) - bitmapBytes) / slotStride(class)
	if err := h.logOp(arenaIdx, slot, idx); err != nil {
		return 0, err
	}
	if err := h.setBits(chunk, idx, 1, true); err != nil {
		return 0, err
	}
	if err := h.writeObjHeader(slot, classBlock(class), statusAllocated); err != nil {
		return 0, err
	}
	return slot + HeaderSize, nil
}

// allocLarge serves size > 128 KiB as a run of whole chunks through the
// global AVL tree.
func (h *Heap) allocLarge(size uint64) (uint64, error) {
	n := (size + HeaderSize + ChunkSize - 1) / ChunkSize
	h.avlMu.Lock()
	r, ok := h.avl.removeBestFit(n)
	if !ok {
		h.drainActionsLocked()
		r, ok = h.avl.removeBestFit(n)
	}
	if ok && r.length > n {
		h.avl.insert(run{start: r.start + n, length: r.length - n})
		r.length = n
	}
	h.avlMu.Unlock()
	if !ok {
		return 0, alloc.ErrOutOfMemory
	}
	h.stats.LargeAllocs.Add(1)
	if err := h.writeChunkHdr(r.start, chunkLargeHead, n); err != nil {
		return 0, err
	}
	for c := r.start + 1; c < r.start+n; c++ {
		if err := h.writeChunkHdr(c, chunkLargeCont, 0); err != nil {
			return 0, err
		}
	}
	off := h.chunkOff(r.start)
	if err := h.writeObjHeader(off, size, statusAllocated); err != nil {
		return 0, err
	}
	return off + HeaderSize, nil
}

// free releases p. The size is read from the in-place header and TRUSTED —
// faithfully reproducing the vulnerability of Figure 3. No invalid- or
// double-free detection is performed.
func (h *Heap) free(p uint64) error {
	slot := p - HeaderSize
	size, err := h.dev.ReadU64(slot) // the trusted, corruptible size
	if err != nil {
		return err
	}
	statusWord, err := h.dev.ReadU64(slot + 8)
	if err != nil {
		return err
	}
	if !h.checkCanary(slot, size, statusWord) {
		// §8's mitigation: the header no longer matches its canary — skip
		// the free so the corruption cannot propagate into the bitmaps.
		// The block leaks, as the paper predicts.
		h.stats.CanaryTrips.Add(1)
		return ErrCanaryTripped
	}
	chunk := (slot - h.chunkBase) / ChunkSize
	if chunk >= h.nchunks {
		return fmt.Errorf("pmdkalloc: free of %#x outside heap", p)
	}
	state, aux, err := h.readChunkHdr(chunk)
	if err != nil {
		return err
	}
	switch state {
	case chunkSmallRun:
		class := int(aux & 0xFFFFFFFF)
		arenaIdx := int(aux >> 32)
		idx := (slot - h.chunkOff(chunk) - bitmapBytes) / slotStride(class)
		// The corrupted size frees that many blocks' worth of bitmap —
		// clearing neighbours' bits when it was enlarged (Figure 3 left).
		nblocks := (size + classBlock(class) - 1) / classBlock(class)
		if nblocks == 0 {
			nblocks = 1
		}
		if idx+nblocks > slotsPerChunk(class) {
			nblocks = slotsPerChunk(class) - idx
		}
		a := h.arenas[arenaIdx%len(h.arenas)]
		a.mu.Lock()
		err := h.logOp(arenaIdx, slot, idx)
		if err == nil {
			err = h.setBits(chunk, idx, nblocks, false)
		}
		if err == nil {
			err = h.writeObjHeader(slot, size, statusFree)
		}
		a.mu.Unlock()
		if err != nil {
			return err
		}
		// Deallocated space is NOT pushed to the DRAM free list — it is
		// rediscovered by the next rebuild (§3.3).
		return h.appendAction(run{})
	case chunkLargeHead:
		// The corrupted (shrunken) size frees fewer chunks than the run
		// holds; the remainder is leaked permanently (Figure 3 right).
		n := (size + HeaderSize + ChunkSize - 1) / ChunkSize
		if chunk+n > h.nchunks {
			n = h.nchunks - chunk
		}
		if err := h.writeObjHeader(slot, size, statusFree); err != nil {
			return err
		}
		return h.appendAction(run{start: chunk, length: n})
	default:
		// Freeing into a free or continuation chunk: PMDK has no check
		// here either; treat as a no-op header write (corrupting, but not
		// crashing the harness).
		return h.writeObjHeader(slot, size, statusFree)
	}
}

// appendAction batches a free into the global action log (§7.2). Every
// free contends on this lock; the log drains into the AVL at a threshold.
// Lock order is always avlMu → actionMu.
func (h *Heap) appendAction(r run) error {
	h.actionMu.Lock()
	if r.length > 0 {
		h.pendingRuns = append(h.pendingRuns, r)
	} else {
		h.pendingOther++
	}
	h.actionCounter++
	// Model the log's persistence: one persisted counter per append.
	err := h.dev.PersistU64(16, h.actionCounter)
	needDrain := len(h.pendingRuns)+h.pendingOther >= actionLogLimit
	h.actionMu.Unlock()
	if err != nil {
		return err
	}
	if needDrain {
		h.avlMu.Lock()
		h.drainActionsLocked()
		h.avlMu.Unlock()
	}
	return nil
}

// drainActionsLocked applies pending large frees to the AVL tree. The
// caller holds avlMu; actionMu is taken inside (avlMu → actionMu order).
func (h *Heap) drainActionsLocked() {
	h.actionMu.Lock()
	defer h.actionMu.Unlock()
	h.stats.ActionDrains.Add(1)
	for _, r := range h.pendingRuns {
		for c := r.start; c < r.start+r.length; c++ {
			_ = h.writeChunkHdr(c, chunkFree, 0)
		}
		h.avl.insert(r)
	}
	h.pendingRuns = h.pendingRuns[:0]
	h.pendingOther = 0
}
