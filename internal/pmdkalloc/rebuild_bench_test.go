package pmdkalloc

import (
	"fmt"
	"testing"
)

// BenchmarkRebuildVsPoolSize measures the free-list rebuild the paper's
// §3.3 identifies as PMDK's scalability problem: when an arena's DRAM
// free list runs dry, the allocator re-scans every chunk header in the
// pool. The cost grows linearly with pool size — with the same live data.
// Contrast memblock.BenchmarkLookupVsPoolSize (Poseidon's pool-size-
// independent metadata access).
func BenchmarkRebuildVsPoolSize(b *testing.B) {
	for _, capacity := range []uint64{64 << 20, 512 << 20, 4 << 30} {
		b.Run(fmt.Sprintf("pool=%dMiB", capacity>>20), func(b *testing.B) {
			h, err := New(Options{Capacity: capacity})
			if err != nil {
				b.Fatal(err)
			}
			th, err := h.Thread(0)
			if err != nil {
				b.Fatal(err)
			}
			defer th.Close()
			// A small fixed working set, whatever the pool size.
			for i := 0; i < 100; i++ {
				if _, err := th.Alloc(64); err != nil {
					b.Fatal(err)
				}
			}
			a := h.arenas[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.mu.Lock()
				a.freeLists[0] = a.freeLists[0][:0] // force the rescan
				if err := h.rebuild(a, 0, 0); err != nil {
					b.Fatal(err)
				}
				a.mu.Unlock()
			}
		})
	}
}
