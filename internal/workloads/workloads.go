// Package workloads implements the paper's real-world, high-performance
// benchmarks (Figure 8): Ackermann, Kruskal minimum-spanning-tree, and
// N-Queens. Each iteration allocates working memory from the allocator
// under test, computes in it through the allocator's data path, and frees
// it — the alloc/compute/free cycle the paper uses to show allocator costs
// inside computation-heavy applications (§7.4).
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"poseidon/internal/alloc"
)

// Ackermann runs iters cycles of: allocate a memo region, fill it with
// Ackermann values computed with memoization through the region, free it.
// The paper allocates 1 GiB and memoises up to A(4,5); regionSize scales
// that down for laptop runs (the allocator work per cycle — one large
// alloc + free — is identical in shape).
func Ackermann(h alloc.Handle, regionSize uint64, iters int) (uint64, error) {
	if regionSize < 4096 {
		return 0, fmt.Errorf("workloads: ackermann region %d too small", regionSize)
	}
	// The memo table holds A(m, n) for m ≤ 3; rows sized to the region.
	cols := (regionSize/8 - 8) / 4
	if cols > 4096 {
		cols = 4096 // A(3, n) grows as 2^(n+3); deeper rows add no coverage
	}
	var ops uint64
	for it := 0; it < iters; it++ {
		p, err := h.Alloc(regionSize)
		if err != nil {
			return ops, err
		}
		ops++
		memoOff := func(m, n uint64) uint64 { return (m*cols + n) * 8 }
		// memo[x] == 0 means "unknown"; stored value is A(m,n)+1.
		var ack func(m, n uint64) (uint64, error)
		var depth int
		ack = func(m, n uint64) (uint64, error) {
			depth++
			defer func() { depth-- }()
			if depth > 1_000_000 {
				return 0, fmt.Errorf("workloads: ackermann recursion blew up")
			}
			if m == 0 {
				return n + 1, nil
			}
			memoised := m <= 3 && n < cols
			if memoised {
				v, err := h.ReadU64(p, memoOff(m, n))
				if err != nil {
					return 0, err
				}
				if v != 0 {
					return v - 1, nil
				}
			}
			var r uint64
			var err error
			if n == 0 {
				r, err = ack(m-1, 1)
			} else {
				var inner uint64
				inner, err = ack(m, n-1)
				if err == nil {
					r, err = ack(m-1, inner)
				}
			}
			if err != nil {
				return 0, err
			}
			if memoised {
				if err := h.WriteU64(p, memoOff(m, n), r+1); err != nil {
					return 0, err
				}
			}
			return r, nil
		}
		// Fill rows m ≤ 3 for modest n (A(3,8)=2045 keeps runtime sane).
		for n := uint64(0); n <= 8; n++ {
			if _, err := ack(3, n); err != nil {
				return ops, err
			}
		}
		if err := h.Persist(p, 0, 4*cols*8); err != nil {
			return ops, err
		}
		if err := h.Free(p); err != nil {
			return ops, err
		}
		ops++
	}
	return ops, nil
}

// Kruskal runs iters cycles of the paper's Kruskal benchmark: three 512 B
// allocations hold the edge list, the union-find state and the MST output
// of an order-5 random graph; the MST is solved and the memory freed
// (§7.4: "three allocations of 512 bytes ... repeating the process").
func Kruskal(h alloc.Handle, iters int, seed int64) (uint64, error) {
	const (
		order     = 5
		allocSize = 512
	)
	rng := rand.New(rand.NewSource(seed))
	var ops uint64
	for it := 0; it < iters; it++ {
		edgesP, err := h.Alloc(allocSize)
		if err != nil {
			return ops, err
		}
		ufP, err := h.Alloc(allocSize)
		if err != nil {
			return ops, err
		}
		mstP, err := h.Alloc(allocSize)
		if err != nil {
			return ops, err
		}
		ops += 3

		// Complete graph on 5 vertices: 10 edges with random weights,
		// written into the edge block as (weight<<16 | u<<8 | v).
		type edge struct{ w, u, v uint64 }
		edges := make([]edge, 0, order*(order-1)/2)
		for u := uint64(0); u < order; u++ {
			for v := u + 1; v < order; v++ {
				edges = append(edges, edge{w: uint64(rng.Intn(1000)), u: u, v: v})
			}
		}
		for i, e := range edges {
			if err := h.WriteU64(edgesP, uint64(i)*8, e.w<<16|e.u<<8|e.v); err != nil {
				return ops, err
			}
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })

		// Union-find lives in its block.
		for v := uint64(0); v < order; v++ {
			if err := h.WriteU64(ufP, v*8, v); err != nil {
				return ops, err
			}
		}
		find := func(v uint64) (uint64, error) {
			for {
				parent, err := h.ReadU64(ufP, v*8)
				if err != nil {
					return 0, err
				}
				if parent == v {
					return v, nil
				}
				v = parent
			}
		}
		picked := 0
		var weight uint64
		for _, e := range edges {
			ru, err := find(e.u)
			if err != nil {
				return ops, err
			}
			rv, err := find(e.v)
			if err != nil {
				return ops, err
			}
			if ru == rv {
				continue
			}
			if err := h.WriteU64(ufP, ru*8, rv); err != nil {
				return ops, err
			}
			if err := h.WriteU64(mstP, uint64(picked)*8, e.w<<16|e.u<<8|e.v); err != nil {
				return ops, err
			}
			weight += e.w
			picked++
		}
		if picked != order-1 {
			return ops, fmt.Errorf("workloads: kruskal picked %d edges, want %d", picked, order-1)
		}
		if err := h.Persist(mstP, 0, uint64(picked)*8); err != nil {
			return ops, err
		}
		for _, p := range []alloc.Ptr{edgesP, ufP, mstP} {
			if err := h.Free(p); err != nil {
				return ops, err
			}
			ops++
		}
	}
	return ops, nil
}

// Mix runs a seeded pseudo-random alloc/write/persist/free mix of n
// operations — the scripted workload of the torture sweeps, which need a
// workload that (a) exercises many size classes and free patterns and
// (b) performs an identical operation sequence for the same seed, so crash
// points enumerated on one run land on the same device operations on every
// re-run.
func Mix(h alloc.Handle, n int, seed int64) (uint64, error) {
	rng := rand.New(rand.NewSource(seed))
	type block struct {
		p    alloc.Ptr
		size uint64
	}
	var live []block
	var ops uint64
	for i := 0; i < n; i++ {
		if len(live) == 0 || rng.Intn(10) < 6 {
			size := uint64(32) << rng.Intn(6) // 32 B .. 1 KiB
			p, err := h.Alloc(size)
			if err != nil {
				return ops, err
			}
			ops++
			if err := h.WriteU64(p, 0, uint64(i)<<8|size); err != nil {
				return ops, err
			}
			if err := h.Persist(p, 0, 8); err != nil {
				return ops, err
			}
			live = append(live, block{p, size})
			continue
		}
		j := rng.Intn(len(live))
		if err := h.Free(live[j].p); err != nil {
			return ops, err
		}
		ops++
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	for _, b := range live {
		if err := h.Free(b.p); err != nil {
			return ops, err
		}
		ops++
	}
	return ops, nil
}

// NQueens runs iters cycles of the paper's N-Queens benchmark: one 32 B
// allocation holds the solver state/result for an 8×8 board; the puzzle is
// solved and the block freed (§7.4).
func NQueens(h alloc.Handle, iters int) (uint64, error) {
	const n = 8
	var ops uint64
	for it := 0; it < iters; it++ {
		p, err := h.Alloc(32)
		if err != nil {
			return ops, err
		}
		ops++
		solutions := countQueens(n, 0, 0, 0, 0)
		if solutions != 92 {
			return ops, fmt.Errorf("workloads: 8-queens found %d solutions, want 92", solutions)
		}
		if err := h.WriteU64(p, 0, solutions); err != nil {
			return ops, err
		}
		if err := h.Persist(p, 0, 8); err != nil {
			return ops, err
		}
		if err := h.Free(p); err != nil {
			return ops, err
		}
		ops++
	}
	return ops, nil
}

// countQueens is the classic bitmask N-Queens solver.
func countQueens(n int, row, cols, diag1, diag2 uint64) uint64 {
	if row == uint64(n) {
		return 1
	}
	var count uint64
	full := uint64(1)<<n - 1
	avail := full &^ (cols | diag1 | diag2)
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		count += countQueens(n, row+1, cols|bit, (diag1|bit)<<1&full, (diag2|bit)>>1)
	}
	return count
}
