package workloads

import (
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/benchutil"
)

func newHandle(t *testing.T, name string) (alloc.Allocator, alloc.Handle) {
	t.Helper()
	a, err := benchutil.NewAllocator(name, benchutil.Config{Threads: 1, HeapBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	return a, h
}

func TestAckermann(t *testing.T) {
	for _, name := range benchutil.AllocatorNames {
		name := name
		t.Run(name, func(t *testing.T) {
			a, h := newHandle(t, name)
			defer a.Close()
			defer h.Close()
			ops, err := Ackermann(h, 1<<20, 2)
			if err != nil {
				t.Fatal(err)
			}
			if ops != 4 { // 2 iterations × (alloc + free)
				t.Fatalf("ops = %d", ops)
			}
		})
	}
}

func TestAckermannRegionTooSmall(t *testing.T) {
	a, h := newHandle(t, "poseidon")
	defer a.Close()
	defer h.Close()
	if _, err := Ackermann(h, 128, 1); err == nil {
		t.Fatal("tiny region accepted")
	}
}

func TestKruskal(t *testing.T) {
	for _, name := range benchutil.AllocatorNames {
		name := name
		t.Run(name, func(t *testing.T) {
			a, h := newHandle(t, name)
			defer a.Close()
			defer h.Close()
			ops, err := Kruskal(h, 10, 42)
			if err != nil {
				t.Fatal(err)
			}
			if ops != 60 { // 10 iterations × (3 allocs + 3 frees)
				t.Fatalf("ops = %d", ops)
			}
		})
	}
}

func TestNQueens(t *testing.T) {
	for _, name := range benchutil.AllocatorNames {
		name := name
		t.Run(name, func(t *testing.T) {
			a, h := newHandle(t, name)
			defer a.Close()
			defer h.Close()
			ops, err := NQueens(h, 5)
			if err != nil {
				t.Fatal(err)
			}
			if ops != 10 {
				t.Fatalf("ops = %d", ops)
			}
		})
	}
}

func TestCountQueensKnownValues(t *testing.T) {
	tests := []struct {
		n    int
		want uint64
	}{
		{1, 1}, {4, 2}, {5, 10}, {6, 4}, {7, 40}, {8, 92},
	}
	for _, tt := range tests {
		if got := countQueens(tt.n, 0, 0, 0, 0); got != tt.want {
			t.Errorf("countQueens(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}
