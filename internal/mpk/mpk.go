// Package mpk models Intel Memory Protection Keys (MPK / protection keys for
// userspace), the hardware mechanism Poseidon uses to guard its heap
// metadata.
//
// The model mirrors the architecture:
//
//   - Every 4 KiB page of the device is tagged with one of 16 protection
//     keys (in hardware the key lives in the page-table entry).
//   - Every thread owns a PKRU register holding access-disable (AD) and
//     write-disable (WD) bits per key. WRPKRU swaps the whole register in
//     ~23 cycles, without kernel involvement, and affects only the executing
//     thread.
//   - A store to a page whose key is write-disabled in the executing
//     thread's PKRU faults (SIGSEGV). Here the fault is a panic carrying a
//     *ProtectionError, which tests and demos recover and inspect.
//
// The per-switch cost is modeled by a configurable calibrated spin so that
// benchmarks can contrast MPK-style protection (cheap, default) with
// mprotect-style protection (a syscall, ~3 orders of magnitude slower).
package mpk

import (
	"errors"
	"fmt"
	"sync/atomic"

	"poseidon/internal/nvm"
)

// NumKeys is the number of protection keys the hardware provides.
const NumKeys = 16

// Key identifies one of the 16 protection domains.
type Key uint8

// Rights are the per-key bits held in a thread's PKRU register.
type Rights uint8

// PKRU bit layout per key (matches the hardware encoding).
const (
	// AccessDisable (AD) forbids any access to pages with the key.
	AccessDisable Rights = 1 << 0
	// WriteDisable (WD) forbids stores to pages with the key.
	WriteDisable Rights = 1 << 1

	// RightsRW allows loads and stores.
	RightsRW Rights = 0
	// RightsRO allows loads only.
	RightsRO = WriteDisable
	// RightsNone forbids all access.
	RightsNone = AccessDisable | WriteDisable
)

func (r Rights) String() string {
	switch r {
	case RightsRW:
		return "rw"
	case RightsRO:
		return "ro"
	case RightsNone:
		return "none"
	default:
		return fmt.Sprintf("rights(%d)", uint8(r))
	}
}

// ErrBadRange reports a key assignment that is not page aligned or out of
// range.
var ErrBadRange = errors.New("mpk: key assignment must cover whole pages inside the unit")

// ProtectionError is the simulated protection fault (SIGSEGV with
// si_code=SEGV_PKUERR). Window accessors panic with it when a thread
// violates its PKRU; tests recover it.
type ProtectionError struct {
	Op     string // "store" or "load"
	Offset uint64 // device offset of the faulting access
	Key    Key    // key of the page
	Rights Rights // rights the thread held for that key
}

func (e *ProtectionError) Error() string {
	return fmt.Sprintf("mpk: protection fault: %s at offset %#x denied (key %d is %s)",
		e.Op, e.Offset, e.Key, e.Rights)
}

// Unit is the protection state of one device: the per-page key tags plus the
// modeled WRPKRU cost. Key tags change only through AssignRange, which
// requires external synchronisation against concurrent accesses to the same
// pages (the allocator tags pages before publishing them, as real code must).
type Unit struct {
	pageKeys   []Key
	switchSpin int  // busy iterations per WRPKRU, modeling its cost
	sealed     bool // ERIM/Hodor-style inspection: only the Authority switches

	switches atomic.Uint64 // WRPKRU executions
}

// NewUnit creates the protection state for a device of the given capacity.
// All pages start tagged with key 0.
func NewUnit(capacity uint64) *Unit {
	pages := (capacity + nvm.PageSize - 1) / nvm.PageSize
	return &Unit{pageKeys: make([]Key, pages)}
}

// SetSwitchCost sets the number of busy iterations charged per WRPKRU. Zero
// (the default) models the instruction as free; benchmarks calibrate it to
// model MPK (~23 cycles) or mprotect (~a syscall).
func (u *Unit) SetSwitchCost(iterations int) { u.switchSpin = iterations }

// Switches returns how many WRPKRU executions have occurred on this unit.
func (u *Unit) Switches() uint64 { return u.switches.Load() }

// AssignRange tags every page in [off, off+n) with key k. The range must be
// page aligned and within the unit.
func (u *Unit) AssignRange(off, n uint64, k Key) error {
	if k >= NumKeys {
		return fmt.Errorf("mpk: key %d out of range", k)
	}
	if off%nvm.PageSize != 0 || n%nvm.PageSize != 0 || n == 0 {
		return fmt.Errorf("%w: off=%#x len=%#x", ErrBadRange, off, n)
	}
	first := off / nvm.PageSize
	last := (off + n) / nvm.PageSize
	if last > uint64(len(u.pageKeys)) {
		return fmt.Errorf("%w: off=%#x len=%#x beyond unit", ErrBadRange, off, n)
	}
	for p := first; p < last; p++ {
		u.pageKeys[p] = k
	}
	return nil
}

// KeyAt returns the protection key of the page containing off.
func (u *Unit) KeyAt(off uint64) Key {
	p := off / nvm.PageSize
	if p >= uint64(len(u.pageKeys)) {
		return 0
	}
	return u.pageKeys[p]
}

// SwitchViolationError is the simulated consequence of an unauthorized
// WRPKRU on a sealed unit: with ERIM/Hodor-style binary inspection (the
// §8 mitigation), no unvetted WRPKRU exists in the executable, so a
// hijacked control flow attempting one traps instead of succeeding.
type SwitchViolationError struct{ Key Key }

func (e *SwitchViolationError) Error() string {
	return fmt.Sprintf("mpk: unauthorized WRPKRU (key %d) on a sealed unit", e.Key)
}

// Authority is the capability to change PKRU rights on a sealed unit —
// the stand-in for "a vetted WRPKRU call site" under binary inspection.
// Only code holding the Authority (the allocator's entry/exit paths) can
// switch permissions; everything else faults.
type Authority struct{ unit *Unit }

// Seal locks the unit: from now on only the returned Authority can change
// thread rights. Sealing twice is an error (there is one inspection pass).
func (u *Unit) Seal() (*Authority, error) {
	if u.sealed {
		return nil, errors.New("mpk: unit already sealed")
	}
	u.sealed = true
	return &Authority{unit: u}, nil
}

// SetRights performs an authorized WRPKRU on a sealed unit.
func (a *Authority) SetRights(t *Thread, k Key, r Rights) {
	a.unit.chargeSwitch()
	t.pkru[k] = r
}

// spinSink defeats dead-code elimination of the calibrated spin.
var spinSink atomic.Uint64

func (u *Unit) chargeSwitch() {
	u.switches.Add(1)
	s := uint64(0)
	for i := 0; i < u.switchSpin; i++ {
		s += uint64(i) ^ (s << 1)
	}
	if u.switchSpin > 0 {
		spinSink.Store(s)
	}
}

// Thread is one hardware thread's view of the unit: its PKRU register.
// A Thread must not be shared between goroutines (PKRU is core-local state;
// sharing one would be the same bug as sharing a CPU register).
type Thread struct {
	unit *Unit
	pkru [NumKeys]Rights
}

// NewThread creates a thread with the given initial rights applied to every
// key (hardware resets PKRU to all-rights-granted; a hardened runtime starts
// with the metadata key write-disabled).
func (u *Unit) NewThread(initial Rights) *Thread {
	t := &Thread{unit: u}
	for k := range t.pkru {
		t.pkru[k] = initial
	}
	t.pkru[0] = RightsRW // key 0 is conventionally the default, always usable
	return t
}

// SetRights executes a WRPKRU that updates the rights of one key on this
// thread only. On a sealed unit it panics with *SwitchViolationError: the
// inspected binary contains no unvetted WRPKRU, so the attempt traps.
func (t *Thread) SetRights(k Key, r Rights) {
	if t.unit.sealed {
		panic(&SwitchViolationError{Key: k})
	}
	t.unit.chargeSwitch()
	t.pkru[k] = r
}

// Rights returns this thread's rights for key k (RDPKRU).
func (t *Thread) Rights(k Key) Rights { return t.pkru[k] }

// checkStore validates a store of n bytes at off against the PKRU,
// returning a fault descriptor if any covered page denies writes.
func (t *Thread) checkStore(off, n uint64) *ProtectionError {
	if n == 0 {
		return nil
	}
	first := off / nvm.PageSize
	last := (off + n - 1) / nvm.PageSize
	for p := first; p <= last; p++ {
		var k Key
		if p < uint64(len(t.unit.pageKeys)) {
			k = t.unit.pageKeys[p]
		}
		if r := t.pkru[k]; r&(WriteDisable|AccessDisable) != 0 {
			return &ProtectionError{Op: "store", Offset: p * nvm.PageSize, Key: k, Rights: r}
		}
	}
	return nil
}

// checkLoad validates a load of n bytes at off against the PKRU.
func (t *Thread) checkLoad(off, n uint64) *ProtectionError {
	if n == 0 {
		return nil
	}
	first := off / nvm.PageSize
	last := (off + n - 1) / nvm.PageSize
	for p := first; p <= last; p++ {
		var k Key
		if p < uint64(len(t.unit.pageKeys)) {
			k = t.unit.pageKeys[p]
		}
		if r := t.pkru[k]; r&AccessDisable != 0 {
			return &ProtectionError{Op: "load", Offset: p * nvm.PageSize, Key: k, Rights: r}
		}
	}
	return nil
}
