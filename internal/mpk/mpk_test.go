package mpk

import (
	"errors"
	"strings"
	"testing"

	"poseidon/internal/nvm"
)

func newUnitDev(t *testing.T, pages uint64) (*Unit, *nvm.Device) {
	t.Helper()
	d, err := nvm.NewDevice(nvm.Options{Capacity: pages * nvm.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	return NewUnit(d.Capacity()), d
}

// mustFault runs fn expecting a protection fault and returns it.
func mustFault(t *testing.T, fn func()) *ProtectionError {
	t.Helper()
	var fault *ProtectionError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			pe, ok := r.(*ProtectionError)
			if !ok {
				panic(r)
			}
			fault = pe
		}()
		fn()
	}()
	if fault == nil {
		t.Fatal("expected a protection fault, got none")
	}
	return fault
}

func TestAssignRangeValidation(t *testing.T) {
	u, _ := newUnitDev(t, 16*1024) // one chunk worth of pages
	tests := []struct {
		name    string
		off, n  uint64
		k       Key
		wantErr bool
	}{
		{"aligned", 0, nvm.PageSize, 1, false},
		{"multi-page", nvm.PageSize, 4 * nvm.PageSize, 2, false},
		{"unaligned offset", 100, nvm.PageSize, 1, true},
		{"unaligned length", 0, 100, 1, true},
		{"zero length", 0, 0, 1, true},
		{"key too large", 0, nvm.PageSize, 16, true},
		{"beyond unit", (16*1024 - 1) * nvm.PageSize, 2 * nvm.PageSize, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := u.AssignRange(tt.off, tt.n, tt.k)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestKeyAt(t *testing.T) {
	u, _ := newUnitDev(t, 1024)
	if err := u.AssignRange(2*nvm.PageSize, 3*nvm.PageSize, 5); err != nil {
		t.Fatal(err)
	}
	if k := u.KeyAt(0); k != 0 {
		t.Fatalf("page 0 key = %d", k)
	}
	if k := u.KeyAt(2*nvm.PageSize + 17); k != 5 {
		t.Fatalf("tagged page key = %d, want 5", k)
	}
	if k := u.KeyAt(5 * nvm.PageSize); k != 0 {
		t.Fatalf("page after range key = %d", k)
	}
}

func TestWriteDeniedOnWriteDisabledKey(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	if err := u.AssignRange(0, nvm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	th := u.NewThread(RightsRO) // every non-zero key read-only
	w := NewWindow(d, th)

	fault := mustFault(t, func() { _ = w.WriteU64(64, 42) })
	if fault.Op != "store" || fault.Key != 1 {
		t.Fatalf("fault = %+v", fault)
	}
	if !strings.Contains(fault.Error(), "protection fault") {
		t.Fatalf("error text: %v", fault)
	}
	// Reads still work.
	if _, err := w.ReadU64(64); err != nil {
		t.Fatalf("read on RO page: %v", err)
	}
	// Pages outside the protected range (key 0) remain writable.
	if err := w.WriteU64(nvm.PageSize+8, 42); err != nil {
		t.Fatalf("write on key-0 page: %v", err)
	}
}

func TestGrantRevokeCycle(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	if err := u.AssignRange(0, nvm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	th := u.NewThread(RightsRO)
	w := NewWindow(d, th)

	th.SetRights(1, RightsRW)
	if err := w.WriteU64(0, 7); err != nil {
		t.Fatalf("write after grant: %v", err)
	}
	th.SetRights(1, RightsRO)
	mustFault(t, func() { _ = w.WriteU64(0, 8) })
	if v, _ := w.ReadU64(0); v != 7 {
		t.Fatalf("value = %d, want 7", v)
	}
	if got := u.Switches(); got != 2 {
		t.Fatalf("switches = %d, want 2", got)
	}
}

func TestRightsArePerThread(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	if err := u.AssignRange(0, nvm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	privileged := u.NewThread(RightsRO)
	privileged.SetRights(1, RightsRW)
	other := u.NewThread(RightsRO)

	if err := NewWindow(d, privileged).WriteU64(0, 1); err != nil {
		t.Fatal(err)
	}
	// The grant on `privileged` must not leak to `other`.
	mustFault(t, func() { _ = NewWindow(d, other).WriteU64(0, 2) })
}

func TestAccessDisableBlocksLoads(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	if err := u.AssignRange(0, nvm.PageSize, 3); err != nil {
		t.Fatal(err)
	}
	th := u.NewThread(RightsRW)
	th.SetRights(3, RightsNone)
	w := NewWindow(d, th)
	fault := mustFault(t, func() { _, _ = w.ReadU64(8) })
	if fault.Op != "load" || fault.Key != 3 {
		t.Fatalf("fault = %+v", fault)
	}
}

func TestStoreSpanningIntoProtectedPageFaults(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	if err := u.AssignRange(nvm.PageSize, nvm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	th := u.NewThread(RightsRO)
	w := NewWindow(d, th)
	// A write starting on a writable page that overflows into a protected
	// one must fault: this is exactly the heap-overflow-into-metadata case.
	buf := make([]byte, 128)
	mustFault(t, func() { _ = w.Write(nvm.PageSize-64, buf) })
	// Same store fully inside the writable page is fine.
	if err := w.Write(nvm.PageSize-128, buf); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthAccessesNeverFault(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	if err := u.AssignRange(0, nvm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	th := u.NewThread(RightsNone)
	w := NewWindow(d, th)
	if err := w.Write(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Read(0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowPassthroughScalars(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	th := u.NewThread(RightsRW)
	w := NewWindow(d, th)
	if err := w.WriteU32(0, 0xAABBCCDD); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.ReadU32(0); v != 0xAABBCCDD {
		t.Fatalf("u32 = %#x", v)
	}
	if err := w.WriteU16(8, 0x1234); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.ReadU16(8); v != 0x1234 {
		t.Fatalf("u16 = %#x", v)
	}
	if err := w.WriteU8(12, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.ReadU8(12); v != 9 {
		t.Fatalf("u8 = %d", v)
	}
	if err := w.Persist(16, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.PersistU64(24, 11); err != nil {
		t.Fatal(err)
	}
	if err := w.Zero(16, 16); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.ReadU64(24); v != 0 {
		t.Fatalf("zeroed u64 = %d", v)
	}
}

func TestFlushAllowedOnReadOnlyPages(t *testing.T) {
	u, d := newUnitDev(t, 1024)
	if err := u.AssignRange(0, nvm.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	th := u.NewThread(RightsRO)
	w := NewWindow(d, th)
	if err := w.Flush(0, 64); err != nil {
		t.Fatal(err)
	}
	w.Fence()
}

func TestSwitchCostCharged(t *testing.T) {
	u, _ := newUnitDev(t, 16)
	u.SetSwitchCost(1000)
	th := u.NewThread(RightsRW)
	th.SetRights(1, RightsRO)
	th.SetRights(1, RightsRW)
	if got := u.Switches(); got != 2 {
		t.Fatalf("switches = %d, want 2", got)
	}
}

func TestRightsString(t *testing.T) {
	tests := []struct {
		r    Rights
		want string
	}{
		{RightsRW, "rw"},
		{RightsRO, "ro"},
		{RightsNone, "none"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestProtectionErrorIsNotWrapped(t *testing.T) {
	// ProtectionError is delivered by panic, not by error return; confirm
	// the regular error paths stay clean.
	u, d := newUnitDev(t, 16)
	th := u.NewThread(RightsRW)
	w := NewWindow(d, th)
	err := w.Write(d.Capacity(), []byte{1})
	if !errors.Is(err, nvm.ErrOutOfRange) {
		t.Fatalf("out-of-range write err = %v", err)
	}
}
