package mpk

import "poseidon/internal/nvm"

// Window is a protection-checked view of an NVMM device, bound to one
// thread's PKRU. Every access is validated against the page keys exactly as
// the MMU would; a denied access panics with a *ProtectionError — the moral
// equivalent of the SIGSEGV a real pkey violation raises.
//
// All of Poseidon's own stores, and all user stores in the examples, go
// through a Window, so the metadata region is protected from both stray
// program writes and allocator bugs.
type Window struct {
	dev    *nvm.Device
	thread *Thread
	// rec, when non-nil, charges every device op issued through this window
	// to the recorder's current operation class (telemetry attribution).
	// The off path pays exactly one nil check per op.
	rec *nvm.AttrRecorder
}

// NewWindow binds a device view to a thread.
func NewWindow(dev *nvm.Device, thread *Thread) Window {
	return Window{dev: dev, thread: thread}
}

// WithRecorder returns a copy of the window that charges its device ops to
// rec. Windows are values, so views derived from the copy share rec —
// retagging the recorder retags them all.
func (w Window) WithRecorder(rec *nvm.AttrRecorder) Window {
	w.rec = rec
	return w
}

// Recorder returns the attribution recorder, or nil.
func (w Window) Recorder() *nvm.AttrRecorder { return w.rec }

// Device returns the underlying device.
func (w Window) Device() *nvm.Device { return w.dev }

// Thread returns the bound thread.
func (w Window) Thread() *Thread { return w.thread }

func (w Window) faultStore(off, n uint64) {
	if e := w.thread.checkStore(off, n); e != nil {
		panic(e)
	}
}

func (w Window) faultLoad(off, n uint64) {
	if e := w.thread.checkLoad(off, n); e != nil {
		panic(e)
	}
}

// Write stores b at off, faulting if the PKRU denies any covered page.
func (w Window) Write(off uint64, b []byte) error {
	w.faultStore(off, uint64(len(b)))
	if err := w.dev.Write(off, b); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(uint64(len(b)))
	}
	return nil
}

// Read loads len(b) bytes at off.
func (w Window) Read(off uint64, b []byte) error {
	w.faultLoad(off, uint64(len(b)))
	return w.dev.Read(off, b)
}

// WriteU64 stores a little-endian 8-byte value.
func (w Window) WriteU64(off uint64, v uint64) error {
	w.faultStore(off, 8)
	if err := w.dev.WriteU64(off, v); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(8)
	}
	return nil
}

// ReadU64 loads a little-endian 8-byte value.
func (w Window) ReadU64(off uint64) (uint64, error) {
	w.faultLoad(off, 8)
	return w.dev.ReadU64(off)
}

// WriteU32 stores a little-endian 4-byte value.
func (w Window) WriteU32(off uint64, v uint32) error {
	w.faultStore(off, 4)
	if err := w.dev.WriteU32(off, v); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(4)
	}
	return nil
}

// ReadU32 loads a little-endian 4-byte value.
func (w Window) ReadU32(off uint64) (uint32, error) {
	w.faultLoad(off, 4)
	return w.dev.ReadU32(off)
}

// WriteU16 stores a little-endian 2-byte value.
func (w Window) WriteU16(off uint64, v uint16) error {
	w.faultStore(off, 2)
	if err := w.dev.WriteU16(off, v); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(2)
	}
	return nil
}

// ReadU16 loads a little-endian 2-byte value.
func (w Window) ReadU16(off uint64) (uint16, error) {
	w.faultLoad(off, 2)
	return w.dev.ReadU16(off)
}

// WriteU8 stores one byte.
func (w Window) WriteU8(off uint64, v uint8) error {
	w.faultStore(off, 1)
	if err := w.dev.WriteU8(off, v); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(1)
	}
	return nil
}

// ReadU8 loads one byte.
func (w Window) ReadU8(off uint64) (uint8, error) {
	w.faultLoad(off, 1)
	return w.dev.ReadU8(off)
}

// Zero clears [off, off+n).
func (w Window) Zero(off, n uint64) error {
	w.faultStore(off, n)
	if err := w.dev.Zero(off, n); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(n)
	}
	return nil
}

// Flush persists the covering cachelines (no protection check: clwb on a
// read-only page is legal).
func (w Window) Flush(off, n uint64) error {
	if err := w.dev.Flush(off, n); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Flush(off, n)
	}
	return nil
}

// Fence orders prior flushes.
func (w Window) Fence() {
	w.dev.Fence()
	if w.rec != nil {
		w.rec.Fence()
	}
}

// Persist writes, flushes and fences.
func (w Window) Persist(off uint64, b []byte) error {
	w.faultStore(off, uint64(len(b)))
	if err := w.dev.Persist(off, b); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(uint64(len(b)))
		w.rec.Flush(off, uint64(len(b)))
		w.rec.Fence()
	}
	return nil
}

// PersistU64 atomically stores and persists an 8-byte value.
func (w Window) PersistU64(off uint64, v uint64) error {
	w.faultStore(off, 8)
	if err := w.dev.PersistU64(off, v); err != nil {
		return err
	}
	if w.rec != nil {
		w.rec.Write(8)
		w.rec.Flush(off, 8)
		w.rec.Fence()
	}
	return nil
}
