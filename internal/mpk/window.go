package mpk

import "poseidon/internal/nvm"

// Window is a protection-checked view of an NVMM device, bound to one
// thread's PKRU. Every access is validated against the page keys exactly as
// the MMU would; a denied access panics with a *ProtectionError — the moral
// equivalent of the SIGSEGV a real pkey violation raises.
//
// All of Poseidon's own stores, and all user stores in the examples, go
// through a Window, so the metadata region is protected from both stray
// program writes and allocator bugs.
type Window struct {
	dev    *nvm.Device
	thread *Thread
}

// NewWindow binds a device view to a thread.
func NewWindow(dev *nvm.Device, thread *Thread) Window {
	return Window{dev: dev, thread: thread}
}

// Device returns the underlying device.
func (w Window) Device() *nvm.Device { return w.dev }

// Thread returns the bound thread.
func (w Window) Thread() *Thread { return w.thread }

func (w Window) faultStore(off, n uint64) {
	if e := w.thread.checkStore(off, n); e != nil {
		panic(e)
	}
}

func (w Window) faultLoad(off, n uint64) {
	if e := w.thread.checkLoad(off, n); e != nil {
		panic(e)
	}
}

// Write stores b at off, faulting if the PKRU denies any covered page.
func (w Window) Write(off uint64, b []byte) error {
	w.faultStore(off, uint64(len(b)))
	return w.dev.Write(off, b)
}

// Read loads len(b) bytes at off.
func (w Window) Read(off uint64, b []byte) error {
	w.faultLoad(off, uint64(len(b)))
	return w.dev.Read(off, b)
}

// WriteU64 stores a little-endian 8-byte value.
func (w Window) WriteU64(off uint64, v uint64) error {
	w.faultStore(off, 8)
	return w.dev.WriteU64(off, v)
}

// ReadU64 loads a little-endian 8-byte value.
func (w Window) ReadU64(off uint64) (uint64, error) {
	w.faultLoad(off, 8)
	return w.dev.ReadU64(off)
}

// WriteU32 stores a little-endian 4-byte value.
func (w Window) WriteU32(off uint64, v uint32) error {
	w.faultStore(off, 4)
	return w.dev.WriteU32(off, v)
}

// ReadU32 loads a little-endian 4-byte value.
func (w Window) ReadU32(off uint64) (uint32, error) {
	w.faultLoad(off, 4)
	return w.dev.ReadU32(off)
}

// WriteU16 stores a little-endian 2-byte value.
func (w Window) WriteU16(off uint64, v uint16) error {
	w.faultStore(off, 2)
	return w.dev.WriteU16(off, v)
}

// ReadU16 loads a little-endian 2-byte value.
func (w Window) ReadU16(off uint64) (uint16, error) {
	w.faultLoad(off, 2)
	return w.dev.ReadU16(off)
}

// WriteU8 stores one byte.
func (w Window) WriteU8(off uint64, v uint8) error {
	w.faultStore(off, 1)
	return w.dev.WriteU8(off, v)
}

// ReadU8 loads one byte.
func (w Window) ReadU8(off uint64) (uint8, error) {
	w.faultLoad(off, 1)
	return w.dev.ReadU8(off)
}

// Zero clears [off, off+n).
func (w Window) Zero(off, n uint64) error {
	w.faultStore(off, n)
	return w.dev.Zero(off, n)
}

// Flush persists the covering cachelines (no protection check: clwb on a
// read-only page is legal).
func (w Window) Flush(off, n uint64) error { return w.dev.Flush(off, n) }

// Fence orders prior flushes.
func (w Window) Fence() { w.dev.Fence() }

// Persist writes, flushes and fences.
func (w Window) Persist(off uint64, b []byte) error {
	w.faultStore(off, uint64(len(b)))
	return w.dev.Persist(off, b)
}

// PersistU64 atomically stores and persists an 8-byte value.
func (w Window) PersistU64(off uint64, v uint64) error {
	w.faultStore(off, 8)
	return w.dev.PersistU64(off, v)
}
