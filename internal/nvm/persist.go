package nvm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// Image file format:
//
//	[8]  magic "NVMDEV1\n"
//	[8]  capacity (little endian)
//	then, for each materialised chunk: [8] chunk index, [ChunkSize] contents
//	[8]  end marker ^uint64(0)
//
// Only the persistent image is saved: with crash tracking enabled, unflushed
// stores do not survive a save/load cycle, exactly as they would not survive
// a power cycle.

var imageMagic = [8]byte{'N', 'V', 'M', 'D', 'E', 'V', '1', '\n'}

const endMarker = ^uint64(0)

// ErrBadImage reports a corrupt or foreign device image.
var ErrBadImage = errors.New("nvm: bad device image")

// SaveTo writes the persistent image of the device to w.
func (d *Device) SaveTo(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [16]byte
	copy(hdr[:8], imageMagic[:])
	putU64(hdr[8:], d.capacity)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var idx [8]byte
	for i := range d.chunks {
		c := d.chunks[i].Load()
		if c == nil {
			continue
		}
		img := c.data
		if d.tracking {
			img = c.shadow
		}
		if allZero(img) {
			continue
		}
		putU64(idx[:], uint64(i))
		if _, err := bw.Write(idx[:]); err != nil {
			return err
		}
		if _, err := bw.Write(img); err != nil {
			return err
		}
	}
	putU64(idx[:], endMarker)
	if _, err := bw.Write(idx[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFrom restores a device from an image written by SaveTo. The device
// options (capacity rounding, tracking, stats) come from opts; the image
// capacity must match.
func LoadFrom(r io.Reader, opts Options) (*Device, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadImage, err)
	}
	if [8]byte(hdr[:8]) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	capacity := getU64(hdr[8:])
	if opts.Capacity == 0 {
		opts.Capacity = capacity
	}
	d, err := NewDevice(opts)
	if err != nil {
		return nil, err
	}
	if d.capacity != capacity {
		return nil, fmt.Errorf("%w: capacity mismatch: image %d, requested %d",
			ErrBadImage, capacity, d.capacity)
	}
	var idx [8]byte
	for {
		if _, err := io.ReadFull(br, idx[:]); err != nil {
			return nil, fmt.Errorf("%w: short chunk index: %v", ErrBadImage, err)
		}
		i := getU64(idx[:])
		if i == endMarker {
			return d, nil
		}
		if i >= uint64(len(d.chunks)) {
			return nil, fmt.Errorf("%w: chunk index %d out of range", ErrBadImage, i)
		}
		c := d.materialise(i << chunkShift)
		if _, err := io.ReadFull(br, c.data); err != nil {
			return nil, fmt.Errorf("%w: short chunk data: %v", ErrBadImage, err)
		}
		if d.tracking {
			copy(c.shadow, c.data)
		}
	}
}

// SaveFile writes the persistent image to path atomically (write to a
// temporary file, then rename).
func (d *Device) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".nvmdev-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := d.SaveTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile restores a device image from path.
func LoadFile(path string, opts Options) (*Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadFrom(f, opts)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "."
}

func allZero(b []byte) bool {
	for len(b) >= 8 {
		if getU64(b) != 0 {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
