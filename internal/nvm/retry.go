package nvm

import (
	"errors"
	"time"
)

// RetryPolicy bounds a retry loop for transient device faults. NVDIMM
// media occasionally returns correctable-error stalls that clear on a
// subsequent access; the device model surfaces them as ErrTransient.
// Permanent faults (ErrDeviceFailed, ErrOutOfRange, and every
// non-transient error) are never retried.
type RetryPolicy struct {
	// Attempts is the number of retries after the first try: the
	// operation runs at most Attempts+1 times.
	Attempts int
	// Backoff is the sleep before the first retry; it doubles on each
	// subsequent retry.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero means uncapped.
	MaxBackoff time.Duration
}

// DefaultRetry is the policy used throughout the allocator: six retries
// starting at 20µs, capped at 2ms — generous enough to outlast a media
// stall, bounded enough that a permanently faulty line fails in well
// under a second.
var DefaultRetry = RetryPolicy{
	Attempts:   6,
	Backoff:    20 * time.Microsecond,
	MaxBackoff: 2 * time.Millisecond,
}

// Run invokes fn, retrying while it returns ErrTransient, sleeping a
// capped exponential backoff plus deterministic jitter between attempts.
// It returns how many retries were performed (0 if the first try
// settled) and fn's final error — nil on success, the last ErrTransient
// if the budget ran out, or the first non-transient error.
func (p RetryPolicy) Run(fn func() error) (retries int, err error) {
	delay := p.Backoff
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !errors.Is(err, ErrTransient) || attempt == p.Attempts {
			return attempt, err
		}
		time.Sleep(delay + retryJitter(attempt, delay))
		delay *= 2
		if p.MaxBackoff > 0 && delay > p.MaxBackoff {
			delay = p.MaxBackoff
		}
	}
}

// Retry runs fn under DefaultRetry.
func Retry(fn func() error) (retries int, err error) {
	return DefaultRetry.Run(fn)
}

// retryJitter derives a deterministic sub-quarter-delay jitter from the
// attempt number (splitmix64 finalizer), decorrelating concurrent
// retriers without consuming a randomness source.
func retryJitter(attempt int, delay time.Duration) time.Duration {
	if delay <= 0 {
		return 0
	}
	x := (uint64(attempt) + 1) * 0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return time.Duration(x % uint64(delay/4+1))
}
