package nvm

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestDevice(t *testing.T, capacity uint64, tracking bool) *Device {
	t.Helper()
	d, err := NewDevice(Options{Capacity: capacity, CrashTracking: tracking})
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestNewDeviceZeroCapacity(t *testing.T) {
	if _, err := NewDevice(Options{}); err == nil {
		t.Fatal("want error for zero capacity")
	}
}

func TestCapacityRoundsUpToChunk(t *testing.T) {
	d := newTestDevice(t, 1, false)
	if d.Capacity() != ChunkSize {
		t.Fatalf("capacity = %d, want %d", d.Capacity(), ChunkSize)
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := d.Read(100, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, v)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDevice(t, 2*ChunkSize, false)
	want := []byte("the quick brown fox jumps over the lazy dog")
	if err := d.Write(1234, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(want))
	if err := d.Read(1234, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestWriteSpansChunkBoundary(t *testing.T) {
	d := newTestDevice(t, 2*ChunkSize, true)
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i)
	}
	off := uint64(ChunkSize - 2048)
	if err := d.Write(off, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(want))
	if err := d.Read(off, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cross-chunk write does not round-trip")
	}
	// And it must survive a flush + crash.
	if err := d.Flush(off, uint64(len(want))); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	d.Fence()
	if _, err := d.Crash(CrashPolicy{Mode: EvictNone}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := d.Read(off, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cross-chunk flushed write lost at crash")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	tests := []struct {
		name string
		err  error
	}{
		{"write", d.Write(d.Capacity()-4, make([]byte, 8))},
		{"read", d.Read(d.Capacity(), make([]byte, 1))},
		{"writeU64", d.WriteU64(d.Capacity()-7, 1)},
		{"flush", d.Flush(d.Capacity()-1, 2)},
		{"zero", d.Zero(d.Capacity()-1, 2)},
	}
	for _, tt := range tests {
		if !errors.Is(tt.err, ErrOutOfRange) {
			t.Errorf("%s: err = %v, want ErrOutOfRange", tt.name, tt.err)
		}
	}
}

func TestU64RoundTrip(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	const off = 512
	const val uint64 = 0xDEADBEEFCAFEF00D
	if err := d.WriteU64(off, val); err != nil {
		t.Fatalf("WriteU64: %v", err)
	}
	got, err := d.ReadU64(off)
	if err != nil {
		t.Fatalf("ReadU64: %v", err)
	}
	if got != val {
		t.Fatalf("got %#x, want %#x", got, val)
	}
}

func TestScalarRoundTrips(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	if err := d.WriteU32(8, 0xA1B2C3D4); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadU32(8); v != 0xA1B2C3D4 {
		t.Fatalf("u32 = %#x", v)
	}
	if err := d.WriteU16(20, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadU16(20); v != 0xBEEF {
		t.Fatalf("u16 = %#x", v)
	}
	if err := d.WriteU8(30, 0x7F); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadU8(30); v != 0x7F {
		t.Fatalf("u8 = %#x", v)
	}
}

func TestU64CrossChunkBoundary(t *testing.T) {
	d := newTestDevice(t, 2*ChunkSize, false)
	off := uint64(ChunkSize - 4)
	if err := d.WriteU64(off, 0x1122334455667788); err != nil {
		t.Fatalf("WriteU64: %v", err)
	}
	got, err := d.ReadU64(off)
	if err != nil {
		t.Fatalf("ReadU64: %v", err)
	}
	if got != 0x1122334455667788 {
		t.Fatalf("got %#x", got)
	}
}

func TestCrashDropsUnflushedWrites(t *testing.T) {
	d := newTestDevice(t, ChunkSize, true)
	if err := d.Persist(0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(64, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Crash(CrashPolicy{Mode: EvictNone}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := d.Read(0, got[:7]); err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "durable" {
		t.Fatalf("flushed data lost: %q", got[:7])
	}
	if err := d.Read(64, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("unflushed data survived EvictNone crash: %q", got)
	}
}

func TestCrashEvictAllKeepsDirtyWrites(t *testing.T) {
	d := newTestDevice(t, ChunkSize, true)
	if err := d.Write(64, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Crash(CrashPolicy{Mode: EvictAll}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := d.Read(64, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "volatile" {
		t.Fatalf("EvictAll crash lost dirty line: %q", got)
	}
}

func TestCrashEvictRandomIsDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		d := newTestDevice(t, ChunkSize, true)
		buf := make([]byte, CachelineSize)
		for line := 0; line < 64; line++ {
			for i := range buf {
				buf[i] = byte(line + 1)
			}
			if err := d.Write(uint64(line)*CachelineSize, buf); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Crash(CrashPolicy{Mode: EvictRandom, Prob: 0.5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 64*CachelineSize)
		if err := d.Read(0, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(run(42), run(42)) {
		t.Fatal("same seed produced different survivors")
	}
	if bytes.Equal(run(1), run(2)) {
		t.Fatal("different seeds produced identical survivors (suspicious)")
	}
}

func TestCrashPartialLineGranularity(t *testing.T) {
	// Two writes to the same cacheline: flushing after the first does not
	// protect the second — the line reverts or survives as a unit.
	d := newTestDevice(t, ChunkSize, true)
	if err := d.Persist(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Crash(CrashPolicy{Mode: EvictNone}); err != nil {
		t.Fatal(err)
	}
	b0, _ := d.ReadU8(0)
	b1, _ := d.ReadU8(1)
	if b0 != 1 {
		t.Fatalf("flushed byte lost: %d", b0)
	}
	if b1 != 0 {
		t.Fatalf("unflushed byte in re-dirtied line survived EvictNone: %d", b1)
	}
}

func TestCrashRequiresTracking(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	if _, err := d.Crash(CrashPolicy{Mode: EvictNone}); !errors.Is(err, ErrTrackingDisabled) {
		t.Fatalf("err = %v, want ErrTrackingDisabled", err)
	}
	if _, err := d.DirtyLines(); !errors.Is(err, ErrTrackingDisabled) {
		t.Fatalf("err = %v, want ErrTrackingDisabled", err)
	}
}

func TestDirtyLines(t *testing.T) {
	d := newTestDevice(t, ChunkSize, true)
	if n, _ := d.DirtyLines(); n != 0 {
		t.Fatalf("fresh device has %d dirty lines", n)
	}
	if err := d.Write(0, make([]byte, 3*CachelineSize)); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.DirtyLines(); n != 3 {
		t.Fatalf("dirty lines = %d, want 3", n)
	}
	if err := d.Flush(0, CachelineSize); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.DirtyLines(); n != 2 {
		t.Fatalf("dirty lines after flush = %d, want 2", n)
	}
}

func TestPunchHoleReleasesChunks(t *testing.T) {
	d := newTestDevice(t, 4*ChunkSize, false)
	for i := uint64(0); i < 4; i++ {
		if err := d.Write(i*ChunkSize, []byte{0xAB}); err != nil {
			t.Fatal(err)
		}
	}
	before := d.ResidentBytes()
	if before != 4*ChunkSize {
		t.Fatalf("resident = %d, want %d", before, 4*ChunkSize)
	}
	if err := d.PunchHole(ChunkSize, 2*ChunkSize); err != nil {
		t.Fatal(err)
	}
	if got := d.ResidentBytes(); got != 2*ChunkSize {
		t.Fatalf("resident after punch = %d, want %d", got, 2*ChunkSize)
	}
	// Punched range reads as zero, edges survive.
	b, _ := d.ReadU8(ChunkSize)
	if b != 0 {
		t.Fatalf("punched byte = %#x", b)
	}
	b, _ = d.ReadU8(0)
	if b != 0xAB {
		t.Fatalf("unpunched byte = %#x", b)
	}
	// Re-touching re-materialises.
	if err := d.Write(ChunkSize+5, []byte{0xCD}); err != nil {
		t.Fatal(err)
	}
	b, _ = d.ReadU8(ChunkSize + 5)
	if b != 0xCD {
		t.Fatalf("re-touched byte = %#x", b)
	}
}

func TestPunchHolePartialEdgesZeroDurably(t *testing.T) {
	d := newTestDevice(t, 2*ChunkSize, true)
	if err := d.Persist(100, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := d.PunchHole(101, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Crash(CrashPolicy{Mode: EvictNone}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := d.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 0, 0, 4}) {
		t.Fatalf("after partial punch + crash: %v", got)
	}
}

func TestZeroNeverMaterialises(t *testing.T) {
	d := newTestDevice(t, 2*ChunkSize, false)
	if err := d.Zero(0, 2*ChunkSize); err != nil {
		t.Fatal(err)
	}
	if got := d.ResidentBytes(); got != 0 {
		t.Fatalf("Zero materialised %d bytes", got)
	}
}

func TestStatsCounters(t *testing.T) {
	d, err := NewDevice(Options{Capacity: ChunkSize, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Persist(0, make([]byte, 130)); err != nil {
		t.Fatal(err)
	}
	s := d.StatsSnapshot()
	if !s.Enabled {
		t.Fatal("snapshot of a stats-enabled device must report Enabled")
	}
	if s.Writes != 1 || s.BytesWritten != 130 {
		t.Fatalf("writes=%d bytes=%d", s.Writes, s.BytesWritten)
	}
	if s.Flushes != 3 { // 130 bytes starting at 0 covers 3 cachelines
		t.Fatalf("flushes = %d, want 3", s.Flushes)
	}
	if s.Fences != 1 {
		t.Fatalf("fences = %d, want 1", s.Fences)
	}
}

func TestStatsDisabledSnapshotIsZero(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	if err := d.Persist(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if s := d.StatsSnapshot(); s != (StatsSnapshot{}) {
		t.Fatalf("snapshot = %+v, want zero", s)
	}
}

func TestConcurrentDisjointWrites(t *testing.T) {
	d := newTestDevice(t, 8*ChunkSize, true)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * ChunkSize
			buf := []byte{byte(w + 1)}
			for i := uint64(0); i < 1000; i++ {
				off := base + i*64
				if err := d.Write(off, buf); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if err := d.Flush(off, 1); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
			d.Fence()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		v, err := d.ReadU8(uint64(w)*ChunkSize + 999*64)
		if err != nil {
			t.Fatal(err)
		}
		if v != byte(w+1) {
			t.Fatalf("worker %d data = %d", w, v)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := newTestDevice(t, 4*ChunkSize, true)
	if err := d.Persist(123, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := d.Persist(3*ChunkSize+7, []byte("far away")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(64*100, []byte("unflushed")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadFrom(&buf, Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Capacity() != d.Capacity() {
		t.Fatalf("capacity = %d, want %d", d2.Capacity(), d.Capacity())
	}
	got := make([]byte, 9)
	if err := d2.Read(123, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persisted" {
		t.Fatalf("got %q", got)
	}
	if err := d2.Read(3*ChunkSize+7, got[:8]); err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "far away" {
		t.Fatalf("got %q", got[:8])
	}
	// Unflushed data must not survive the "power cycle".
	if err := d2.Read(64*100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 9)) {
		t.Fatalf("unflushed data survived save/load: %q", got)
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	if err := d.Persist(0, []byte("hello file")); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dev.img"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if err := d2.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello file" {
		t.Fatalf("got %q", got)
	}
}

func TestLoadRejectsBadImages(t *testing.T) {
	if _, err := LoadFrom(bytes.NewReader([]byte("garbage!")), Options{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", err)
	}
	// Right magic, truncated body.
	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	var cap8 [8]byte
	putU64(cap8[:], ChunkSize)
	buf.Write(cap8[:])
	if _, err := LoadFrom(&buf, Options{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", err)
	}
}

func TestLoadCapacityMismatch(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	var buf bytes.Buffer
	if err := d.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrom(&buf, Options{Capacity: 8 * ChunkSize}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", err)
	}
}

// quickDeviceOp mirrors a device against a plain byte slice and checks they
// agree after arbitrary interleavings of writes, flushes and EvictAll
// crashes (EvictAll keeps everything, so the model never loses data).
func TestQuickDeviceMatchesModel(t *testing.T) {
	const capacity = 2 * ChunkSize
	f := func(seed int64, opCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := NewDevice(Options{Capacity: capacity, CrashTracking: true})
		if err != nil {
			return false
		}
		model := make([]byte, capacity)
		ops := int(opCount)%64 + 1
		for i := 0; i < ops; i++ {
			off := uint64(rng.Intn(capacity - 256))
			n := rng.Intn(256) + 1
			switch rng.Intn(4) {
			case 0, 1: // write
				b := make([]byte, n)
				rng.Read(b)
				if err := d.Write(off, b); err != nil {
					return false
				}
				copy(model[off:], b)
			case 2: // flush+fence
				if err := d.Flush(off, uint64(n)); err != nil {
					return false
				}
				d.Fence()
			case 3: // crash that keeps all dirty lines
				if _, err := d.Crash(CrashPolicy{Mode: EvictAll}); err != nil {
					return false
				}
			}
		}
		got := make([]byte, capacity)
		if err := d.Read(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// After an EvictNone crash, device contents must equal the model that only
// applied flushed bytes.
func TestQuickCrashKeepsExactlyFlushed(t *testing.T) {
	const capacity = ChunkSize
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := NewDevice(Options{Capacity: capacity, CrashTracking: true})
		if err != nil {
			return false
		}
		persisted := make([]byte, capacity)
		current := make([]byte, capacity)
		for i := 0; i < 40; i++ {
			off := uint64(rng.Intn(capacity - 256))
			n := rng.Intn(256) + 1
			if rng.Intn(2) == 0 {
				b := make([]byte, n)
				rng.Read(b)
				if err := d.Write(off, b); err != nil {
					return false
				}
				copy(current[off:], b)
			} else {
				if err := d.Flush(off, uint64(n)); err != nil {
					return false
				}
				d.Fence()
				// Whole covering cachelines persist.
				start := off &^ (CachelineSize - 1)
				end := (off + uint64(n) + CachelineSize - 1) &^ (CachelineSize - 1)
				copy(persisted[start:end], current[start:end])
			}
		}
		if _, err := d.Crash(CrashPolicy{Mode: EvictNone}); err != nil {
			return false
		}
		got := make([]byte, capacity)
		if err := d.Read(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, persisted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
