package nvm

import "sync/atomic"

// Stats holds device operation counters. All fields are safe for concurrent
// use; enable via Options.Stats.
type Stats struct {
	Writes       atomic.Uint64
	BytesWritten atomic.Uint64
	Flushes      atomic.Uint64 // cachelines flushed (clwb count)
	Fences       atomic.Uint64 // ordering barriers (sfence count)
}

// StatsSnapshot is a copyable view of Stats.
type StatsSnapshot struct {
	Writes       uint64
	BytesWritten uint64
	Flushes      uint64
	Fences       uint64
}

// StatsSnapshot returns the current counters, or a zero snapshot when stats
// are disabled.
func (d *Device) StatsSnapshot() StatsSnapshot {
	if d.stats == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Writes:       d.stats.Writes.Load(),
		BytesWritten: d.stats.BytesWritten.Load(),
		Flushes:      d.stats.Flushes.Load(),
		Fences:       d.stats.Fences.Load(),
	}
}
