package nvm

import "sync/atomic"

// Stats holds device operation counters. All fields are safe for concurrent
// use; enable via Options.Stats.
type Stats struct {
	Writes       atomic.Uint64
	BytesWritten atomic.Uint64
	Flushes      atomic.Uint64 // cachelines flushed (clwb count)
	Fences       atomic.Uint64 // ordering barriers (sfence count)
}

// StatsSnapshot is a copyable view of Stats. Enabled distinguishes "no
// traffic yet" from "counters were never collected": a snapshot from a
// device created without Options.Stats is all-zero, which silently reads as
// an idle device to callers that forgot to enable stats.
type StatsSnapshot struct {
	Enabled      bool
	Writes       uint64
	BytesWritten uint64
	Flushes      uint64
	Fences       uint64
}

// StatsSnapshot returns the current counters. When stats are disabled the
// snapshot is zero with Enabled false.
func (d *Device) StatsSnapshot() StatsSnapshot {
	if d.stats == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Enabled:      true,
		Writes:       d.stats.Writes.Load(),
		BytesWritten: d.stats.BytesWritten.Load(),
		Flushes:      d.stats.Flushes.Load(),
		Fences:       d.stats.Fences.Load(),
	}
}
