package nvm

import (
	"bytes"
	"errors"
	"testing"
)

func TestInjectBitFlipCorruptsBothImages(t *testing.T) {
	d := newTestDevice(t, ChunkSize, true)
	if err := d.Persist(100, []byte{0x0F}); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectBitFlip(100, 4); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadU8(100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1F {
		t.Fatalf("after flip: %#x, want 0x1f", v)
	}
	// The corruption is on the media: it survives a crash that drops every
	// dirty line, because the flip never marked the line dirty.
	if _, err := d.Crash(CrashPolicy{Mode: EvictNone}); err != nil {
		t.Fatal(err)
	}
	v, err = d.ReadU8(100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1F {
		t.Fatalf("flip lost at crash: %#x, want 0x1f", v)
	}
}

func TestInjectBitFlipValidation(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	if err := d.InjectBitFlip(ChunkSize, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if err := d.InjectBitFlip(0, 8); err == nil {
		t.Fatal("bit 8 accepted")
	}
}

func TestInjectRandomBitFlipDeterminism(t *testing.T) {
	d1 := newTestDevice(t, ChunkSize, false)
	d2 := newTestDevice(t, ChunkSize, false)
	off1, bit1, err := d1.InjectRandomBitFlip(4096, 512, 42)
	if err != nil {
		t.Fatal(err)
	}
	off2, bit2, err := d2.InjectRandomBitFlip(4096, 512, 42)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != off2 || bit1 != bit2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", off1, bit1, off2, bit2)
	}
	if off1 < 4096 || off1 >= 4096+512 {
		t.Fatalf("flip at %d outside requested range", off1)
	}
}

func TestTransientFaultsScopedWrites(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	d.ArmTransientFaults(TransientFaults{Off: 1024, Len: 1024, MaxFaults: 2})
	// Outside the range: unaffected.
	if err := d.Write(0, []byte{1}); err != nil {
		t.Fatalf("out-of-scope write: %v", err)
	}
	// Inside: the first two fail, then the budget is spent.
	if err := d.Write(1500, []byte{1}); !errors.Is(err, ErrTransient) {
		t.Fatalf("fault 1: %v", err)
	}
	if err := d.WriteU64(1024, 7); !errors.Is(err, ErrTransient) {
		t.Fatalf("fault 2: %v", err)
	}
	if err := d.Write(1500, []byte{1}); err != nil {
		t.Fatalf("after budget spent: %v", err)
	}
	if got := d.TransientFaultsInjected(); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
	// Reads were not selected: they never fault.
	var b [8]byte
	if err := d.Read(1500, b[:]); err != nil {
		t.Fatalf("read: %v", err)
	}
	d.DisarmTransientFaults()
	if got := d.TransientFaultsInjected(); got != 0 {
		t.Fatalf("injected after disarm = %d", got)
	}
}

func TestTransientFaultsReads(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	d.ArmTransientFaults(TransientFaults{Reads: true, MaxFaults: 1})
	if _, err := d.ReadU64(64); !errors.Is(err, ErrTransient) {
		t.Fatalf("read fault: %v", err)
	}
	// Writes were not selected.
	if err := d.Write(0, []byte{1}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := d.ReadU64(64); err != nil {
		t.Fatalf("read after budget: %v", err)
	}
}

func TestTransientFaultsProbDeterministic(t *testing.T) {
	outcomes := func() []bool {
		d := newTestDevice(t, ChunkSize, false)
		d.ArmTransientFaults(TransientFaults{Prob: 0.5, Seed: 7})
		var out []bool
		for i := 0; i < 64; i++ {
			err := d.Write(uint64(i)*8, []byte{1})
			out = append(out, errors.Is(err, ErrTransient))
		}
		return out
	}
	a, b := outcomes(), outcomes()
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("prob 0.5 injected %d/%d faults", faults, len(a))
	}
}

// TestEvictTornPersistsExactlyOneHalf verifies the torn-write adversary:
// a dirty line either survives whole or exactly one 32-byte half of it
// reaches the media, never a finer tear.
func TestEvictTornPersistsExactlyOneHalf(t *testing.T) {
	const lines = 64
	d := newTestDevice(t, ChunkSize, true)
	old := bytes.Repeat([]byte{0xAA}, CachelineSize)
	fresh := bytes.Repeat([]byte{0xBB}, CachelineSize)
	for i := 0; i < lines; i++ {
		if err := d.Persist(uint64(i)*CachelineSize, old); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < lines; i++ {
		if err := d.Write(uint64(i)*CachelineSize, fresh); err != nil {
			t.Fatal(err)
		}
	}
	report, err := d.Crash(CrashPolicy{Mode: EvictTorn, Prob: 0.4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if report.DirtyLines != lines {
		t.Fatalf("dirty lines = %d, want %d", report.DirtyLines, lines)
	}
	if report.TornLines == 0 || report.PersistedLines == 0 {
		t.Fatalf("want a mix of torn and persisted lines, got %+v", report)
	}
	if report.DroppedLines != 0 {
		t.Fatalf("torn mode dropped %d whole lines", report.DroppedLines)
	}
	if got := report.PersistedLines + report.TornLines; got != lines {
		t.Fatalf("accounted %d lines, want %d", got, lines)
	}
	var torn, whole int
	buf := make([]byte, CachelineSize)
	for i := 0; i < lines; i++ {
		if err := d.Read(uint64(i)*CachelineSize, buf); err != nil {
			t.Fatal(err)
		}
		lo, hi := buf[:CachelineSize/2], buf[CachelineSize/2:]
		loNew := bytes.Equal(lo, fresh[:CachelineSize/2])
		hiNew := bytes.Equal(hi, fresh[CachelineSize/2:])
		loOld := bytes.Equal(lo, old[:CachelineSize/2])
		hiOld := bytes.Equal(hi, old[CachelineSize/2:])
		switch {
		case loNew && hiNew:
			whole++
		case loNew && hiOld, loOld && hiNew:
			torn++
		default:
			t.Fatalf("line %d: tear finer than 32 bytes: % x", i, buf)
		}
	}
	if uint64(torn) != report.TornLines || uint64(whole) != report.PersistedLines {
		t.Fatalf("observed %d torn/%d whole, report says %d/%d",
			torn, whole, report.TornLines, report.PersistedLines)
	}
}

// TestEvictTornDeterminism pins that the torn adversary is reproducible:
// identical dirty sets and seeds leave identical media images.
func TestEvictTornDeterminism(t *testing.T) {
	image := func() []byte {
		d := newTestDevice(t, ChunkSize, true)
		for i := 0; i < 128; i++ {
			if err := d.WriteU64(uint64(i)*8, uint64(i)*0x9E3779B9); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Crash(CrashPolicy{Mode: EvictTorn, Prob: 0.3, Seed: 1234}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128*8)
		if err := d.Read(0, buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if !bytes.Equal(image(), image()) {
		t.Fatal("same seed + same dirty set produced different torn images")
	}
}

// TestEvictRandomDeterminism guards the sweep engine's reproducer lines:
// the same seed over the same dirty set must select the identical
// surviving-line set, even if chunk iteration order were ever refactored.
func TestEvictRandomDeterminism(t *testing.T) {
	image := func() ([]byte, CrashReport) {
		// Two chunks touched, to cover cross-chunk iteration order.
		d := newTestDevice(t, 2*ChunkSize, true)
		for i := 0; i < 256; i++ {
			if err := d.WriteU64(uint64(i)*CachelineSize, uint64(i)+1); err != nil {
				t.Fatal(err)
			}
			if err := d.WriteU64(ChunkSize+uint64(i)*CachelineSize, uint64(i)+7); err != nil {
				t.Fatal(err)
			}
		}
		report, err := d.Crash(CrashPolicy{Mode: EvictRandom, Prob: 0.5, Seed: 4242})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 2*ChunkSize)
		if err := d.Read(0, buf); err != nil {
			t.Fatal(err)
		}
		return buf, report
	}
	img1, rep1 := image()
	img2, rep2 := image()
	if rep1 != rep2 {
		t.Fatalf("crash reports diverged: %+v vs %+v", rep1, rep2)
	}
	if rep1.PersistedLines == 0 || rep1.DroppedLines == 0 {
		t.Fatalf("prob 0.5 produced a degenerate split: %+v", rep1)
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("same seed + same dirty set persisted different line sets")
	}
}

// TestCrashReportCounts pins the report arithmetic for the simple modes.
func TestCrashReportCounts(t *testing.T) {
	d := newTestDevice(t, ChunkSize, true)
	for i := 0; i < 10; i++ {
		if err := d.WriteU64(uint64(i)*CachelineSize, 1); err != nil {
			t.Fatal(err)
		}
	}
	report, err := d.Crash(CrashPolicy{Mode: EvictNone})
	if err != nil {
		t.Fatal(err)
	}
	if report.DirtyLines != 10 || report.DroppedLines != 10 || report.PersistedLines != 0 {
		t.Fatalf("EvictNone report: %+v", report)
	}
	for i := 0; i < 6; i++ {
		if err := d.WriteU64(uint64(i)*CachelineSize, 2); err != nil {
			t.Fatal(err)
		}
	}
	report, err = d.Crash(CrashPolicy{Mode: EvictAll})
	if err != nil {
		t.Fatal(err)
	}
	if report.DirtyLines != 6 || report.PersistedLines != 6 || report.DroppedLines != 0 {
		t.Fatalf("EvictAll report: %+v", report)
	}
}
