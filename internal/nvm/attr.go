// Per-class attribution of persistence traffic. The flat Stats counters say
// how many flushes the device absorbed; Attribution says which allocator
// operation class issued them — the live version of the paper's Fig 7
// flush/fence-overhead analysis, and the diagnostic Cai et al. identify as
// the key lens on PM-allocator cost.
//
// Attribution is charged at the access-window layer (mpk.Window), not inside
// the device: a window belongs to exactly one serialized execution context
// (a sub-heap under its lock, the superblock under its lock, one
// application thread), so the context can retag its window's class with a
// plain store and every device op issued through the window is charged to
// the class that was active when it ran — no goroutine-local state needed.

package nvm

import "sync/atomic"

// OpClass is the allocator operation class a device op is charged to.
type OpClass uint8

// Operation classes. ClassOther is the default for windows that were never
// tagged; ClassUser covers application data stores through thread windows.
const (
	ClassOther OpClass = iota
	ClassAlloc
	ClassFree
	ClassTxAlloc
	ClassTxFree // recovery rollback of uncommitted transactional allocations
	ClassDefrag
	ClassFormat
	ClassRecovery
	ClassScrub
	ClassRoot
	ClassUser
	ClassProfile  // profiler side-table snapshot writes
	ClassCombined // flat-combined group commits serving ops of mixed classes
	ClassBlackbox // black-box flight-recorder ring publishes
	NumClasses
)

var classNames = [NumClasses]string{
	"other", "alloc", "free", "txalloc", "txfree", "defrag",
	"format", "recovery", "scrub", "root", "user", "profile",
	"combined", "blackbox",
}

func (c OpClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "invalid"
}

// attrCell holds one class's counters, padded to its own cacheline so
// classes running on different cores do not false-share.
type attrCell struct {
	writes  atomic.Uint64
	bytes   atomic.Uint64
	flushes atomic.Uint64
	fences  atomic.Uint64
	_       [32]byte
}

// Attribution accumulates per-class device-op counters. All methods are
// safe for concurrent use.
type Attribution struct {
	cells [NumClasses]attrCell
}

// NewAttribution returns an empty attribution table.
func NewAttribution() *Attribution { return &Attribution{} }

// ChargeWrite records one write of n bytes against class c.
func (a *Attribution) ChargeWrite(c OpClass, n uint64) {
	a.cells[c].writes.Add(1)
	a.cells[c].bytes.Add(n)
}

// ChargeFlush records lines flushed cachelines against class c.
func (a *Attribution) ChargeFlush(c OpClass, lines uint64) {
	a.cells[c].flushes.Add(lines)
}

// ChargeFence records one ordering barrier against class c.
func (a *Attribution) ChargeFence(c OpClass) {
	a.cells[c].fences.Add(1)
}

// ClassCounters is one class's view in an attribution snapshot.
type ClassCounters struct {
	Writes       uint64
	BytesWritten uint64
	Flushes      uint64
	Fences       uint64
}

// AttrSnapshot is a copyable view of an Attribution, indexed by OpClass.
type AttrSnapshot [NumClasses]ClassCounters

// Snapshot returns the current per-class counters.
func (a *Attribution) Snapshot() AttrSnapshot {
	var out AttrSnapshot
	for c := range a.cells {
		out[c] = ClassCounters{
			Writes:       a.cells[c].writes.Load(),
			BytesWritten: a.cells[c].bytes.Load(),
			Flushes:      a.cells[c].flushes.Load(),
			Fences:       a.cells[c].fences.Load(),
		}
	}
	return out
}

// AttrRecorder tags a serialized execution context with its current
// operation class. The owner retags with SetClass around each operation; a
// window holding the recorder charges every device op it issues to the
// class active at that moment. The class field is a plain store/load: the
// owner's serialization (sub-heap mutex, thread contract) is the required
// happens-before edge.
type AttrRecorder struct {
	attr  *Attribution
	class OpClass

	// Running op totals for span tracing. Plain fields under the owner's
	// serialization, like class: the tracer snapshots them with Mark at
	// span start and diffs with Since at span end, so a sampled span
	// carries exactly the writes/flushes/fences its operation issued.
	writes  uint64
	flushes uint64
	fences  uint64
}

// NewAttrRecorder returns a recorder charging a, starting in class c.
func NewAttrRecorder(a *Attribution, c OpClass) *AttrRecorder {
	return &AttrRecorder{attr: a, class: c}
}

// SetClass retags the recorder. Only the owning (serialized) context may
// call it.
func (r *AttrRecorder) SetClass(c OpClass) { r.class = c }

// Class returns the currently active class.
func (r *AttrRecorder) Class() OpClass { return r.class }

// Write charges one write of n bytes.
func (r *AttrRecorder) Write(n uint64) {
	r.attr.ChargeWrite(r.class, n)
	r.writes++
}

// Flush charges the cachelines covering an [off, off+n) flush.
func (r *AttrRecorder) Flush(off, n uint64) {
	lines := FlushLines(off, n)
	r.attr.ChargeFlush(r.class, lines)
	r.flushes += lines
}

// Fence charges one ordering barrier.
func (r *AttrRecorder) Fence() {
	r.attr.ChargeFence(r.class)
	r.fences++
}

// OpMark is a point-in-time snapshot of a recorder's running totals.
type OpMark struct{ Writes, Flushes, Fences uint64 }

// Mark snapshots the recorder's running totals. Owner-serialized, like
// SetClass.
func (r *AttrRecorder) Mark() OpMark {
	return OpMark{Writes: r.writes, Flushes: r.flushes, Fences: r.fences}
}

// Since returns the device ops issued through the recorder since m.
func (r *AttrRecorder) Since(m OpMark) OpMark {
	return OpMark{
		Writes:  r.writes - m.Writes,
		Flushes: r.flushes - m.Flushes,
		Fences:  r.fences - m.Fences,
	}
}

// FlushLines returns the number of cachelines a Flush of [off, off+n)
// touches — the same arithmetic the device's own flush counter uses.
func FlushLines(off, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	start := off &^ (CachelineSize - 1)
	end := (off + n + CachelineSize - 1) &^ (CachelineSize - 1)
	return (end - start) / CachelineSize
}
