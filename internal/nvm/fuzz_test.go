package nvm

import (
	"bytes"
	"testing"
)

// FuzzLoadFrom hardens the device-image loader against corrupt or
// malicious files: any input must produce a device or an error, never a
// panic or runaway allocation.
func FuzzLoadFrom(f *testing.F) {
	// A valid tiny image as seed.
	d, err := NewDevice(Options{Capacity: ChunkSize})
	if err != nil {
		f.Fatal(err)
	}
	if err := d.Persist(0, []byte("seed")); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NVMDEV1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the capacity a hostile header can demand: LoadFrom allocates
		// chunk *tables* from the header, so pass an explicit capacity to
		// mirror how callers with quotas use it, and also try the
		// header-provided capacity when it is small.
		if _, err := LoadFrom(bytes.NewReader(data), Options{Capacity: 4 * ChunkSize}); err != nil {
			return
		}
	})
}
