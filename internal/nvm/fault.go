// Media-fault injection: bit flips that corrupt the persistent image in
// place (stray writes, failing cells) and armable transient I/O errors
// (the "device momentarily refused" class real NVDIMMs report as poison or
// EIO). Both are deterministic so torture sweeps can emit exact
// reproducers; neither requires crash tracking.

package nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrTransient reports an armed transient media error: the operation failed
// this time but retrying may succeed, unlike ErrDeviceFailed (the machine is
// dying) or ErrOutOfRange (the caller is wrong). Recovery paths are expected
// to survive it with bounded retry.
var ErrTransient = errors.New("nvm: transient media error")

// InjectBitFlip flips bit `bit` (0..7) of the byte at off in BOTH the
// working and persistent images, without marking the line dirty: the
// corruption is on the media itself and survives crashes, flushes and
// save/load cycles — exactly what a stray DMA, a disturbed cell or a torn
// repair leaves behind. Audit machinery (core.Check, quarantine) is what is
// supposed to notice.
func (d *Device) InjectBitFlip(off uint64, bit uint8) error {
	if err := d.checkRange(off, 1); err != nil {
		return err
	}
	if bit > 7 {
		return fmt.Errorf("nvm: bit %d out of range [0,7]", bit)
	}
	c := d.materialise(off)
	in := off & chunkMask
	c.data[in] ^= 1 << bit
	if d.tracking {
		c.shadow[in] ^= 1 << bit
	}
	return nil
}

// InjectRandomBitFlip flips one seed-chosen bit inside [off, off+n) and
// returns its location, for tests that want "some corruption in this
// region" with a reproducible position.
func (d *Device) InjectRandomBitFlip(off, n uint64, seed int64) (uint64, uint8, error) {
	if n == 0 {
		return 0, 0, fmt.Errorf("nvm: empty bit-flip range")
	}
	if err := d.checkRange(off, n); err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	target := off + uint64(rng.Int63n(int64(n)))
	bit := uint8(rng.Intn(8))
	return target, bit, d.InjectBitFlip(target, bit)
}

// TransientFaults arms seed-deterministic transient I/O errors.
type TransientFaults struct {
	// Off/Len scope the faults to [Off, Off+Len); Len == 0 means the whole
	// device. An operation is eligible if it overlaps the range.
	Off, Len uint64
	// Reads and Writes select which operation classes can fault. If both
	// are false, writes fault (the common case: stores hit the bad region).
	Reads, Writes bool
	// Prob is the per-operation fault probability. Zero means 1.0 (every
	// eligible operation faults until MaxFaults is exhausted).
	Prob float64
	// MaxFaults bounds the number of injected faults; 0 means unlimited
	// until DisarmTransientFaults.
	MaxFaults int64
	// Seed drives the per-operation draw deterministically.
	Seed int64
}

// transientState is the armed config plus its mutable draw state.
type transientState struct {
	cfg      TransientFaults
	mu       sync.Mutex
	rng      *rand.Rand
	injected atomic.Int64
}

// ArmTransientFaults arms transient errors on the device. Re-arming
// replaces any previous configuration and resets the injected count.
func (d *Device) ArmTransientFaults(cfg TransientFaults) {
	if !cfg.Reads && !cfg.Writes {
		cfg.Writes = true
	}
	st := &transientState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	d.transient.Store(st)
}

// DisarmTransientFaults returns the device to normal operation.
func (d *Device) DisarmTransientFaults() {
	d.transient.Store(nil)
}

// TransientFaultsInjected returns the number of faults injected since the
// last arm, or 0 when disarmed.
func (d *Device) TransientFaultsInjected() int64 {
	if st := d.transient.Load(); st != nil {
		return st.injected.Load()
	}
	return 0
}

// transientFault reports whether the eligible operation on [off, off+n)
// should fail with ErrTransient, consuming one draw from the seeded stream.
func (st *transientState) transientFault(off, n uint64, isRead bool) bool {
	cfg := &st.cfg
	if isRead && !cfg.Reads || !isRead && !cfg.Writes {
		return false
	}
	if cfg.Len != 0 && (off >= cfg.Off+cfg.Len || off+n <= cfg.Off) {
		return false
	}
	if cfg.MaxFaults > 0 && st.injected.Load() >= cfg.MaxFaults {
		return false
	}
	if cfg.Prob > 0 && cfg.Prob < 1 {
		st.mu.Lock()
		hit := st.rng.Float64() < cfg.Prob
		st.mu.Unlock()
		if !hit {
			return false
		}
	}
	if cfg.MaxFaults > 0 && st.injected.Add(1) > cfg.MaxFaults {
		return false
	}
	if cfg.MaxFaults == 0 {
		st.injected.Add(1)
	}
	return true
}

// faultWrite and faultRead are the hot-path hooks: one atomic pointer load
// when disarmed.
func (d *Device) faultWrite(off, n uint64) error {
	if st := d.transient.Load(); st != nil && st.transientFault(off, n, false) {
		return fmt.Errorf("%w: write [%#x,%#x)", ErrTransient, off, off+n)
	}
	return nil
}

func (d *Device) faultRead(off, n uint64) error {
	if st := d.transient.Load(); st != nil && st.transientFault(off, n, true) {
		return fmt.Errorf("%w: read [%#x,%#x)", ErrTransient, off, off+n)
	}
	return nil
}
