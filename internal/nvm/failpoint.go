package nvm

import (
	"errors"
	"sync/atomic"
)

// ErrDeviceFailed reports that the armed failpoint has triggered: the
// simulated machine is "dying" and refuses further stores. Tests follow it
// with Crash and a fresh load to exercise recovery from mid-operation
// failures.
var ErrDeviceFailed = errors.New("nvm: device failed (failpoint)")

// FailAfter arms a failpoint: the next n mutating operations (writes,
// zeroes, flushes) succeed, then every subsequent one fails with
// ErrDeviceFailed until DisarmFailpoint. Combined with Crash this lets a
// test stop an allocator at every interior persist point of an operation.
func (d *Device) FailAfter(n int64) {
	d.failBudget.Store(n)
	d.failArmed.Store(true)
}

// DisarmFailpoint returns the device to normal operation.
func (d *Device) DisarmFailpoint() {
	d.failArmed.Store(false)
}

// FailBudgetRemaining returns the unconsumed failpoint budget. Arming with a
// huge budget, running a workload, and subtracting the remainder measures
// exactly how many mutating device operations the workload performs — the
// crash-point count torture sweeps enumerate. Negative values mean the
// budget was exhausted and operations have been failing.
func (d *Device) FailBudgetRemaining() int64 {
	return d.failBudget.Load()
}

// failing reports (and consumes) one unit of the armed failpoint budget.
func (d *Device) failing() bool {
	if !d.failArmed.Load() {
		return false
	}
	return d.failBudget.Add(-1) < 0
}

// failpoint state lives here to keep the hot-path struct layout in nvm.go
// stable; the fields are declared on Device below via an embedded struct.
type failpointState struct {
	failArmed  atomic.Bool
	failBudget atomic.Int64
}
