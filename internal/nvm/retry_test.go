package nvm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransients(t *testing.T) {
	calls := 0
	retries, err := Retry(func() error {
		calls++
		if calls <= 2 {
			return fmt.Errorf("read: %w", ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if retries != 2 || calls != 3 {
		t.Fatalf("retries = %d calls = %d, want 2 and 3", retries, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Backoff: time.Microsecond}
	calls := 0
	retries, err := p.Run(func() error {
		calls++
		return ErrTransient
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if calls != 4 || retries != 3 {
		t.Fatalf("calls = %d retries = %d, want 4 and 3", calls, retries)
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	calls := 0
	_, err := Retry(func() error {
		calls++
		return ErrDeviceFailed
	})
	if !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on permanent faults)", calls)
	}
}

func TestRetryJitterDeterministicAndBounded(t *testing.T) {
	const delay = 80 * time.Microsecond
	for attempt := 0; attempt < 8; attempt++ {
		a := retryJitter(attempt, delay)
		b := retryJitter(attempt, delay)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", attempt, a, b)
		}
		if a < 0 || a > delay/4 {
			t.Fatalf("attempt %d: jitter %v outside [0, %v]", attempt, a, delay/4)
		}
	}
	if retryJitter(0, 0) != 0 {
		t.Fatal("zero delay must yield zero jitter")
	}
}
