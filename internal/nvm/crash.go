package nvm

import (
	"math/bits"
	"math/rand"
)

// EvictMode selects which dirty (written but unflushed) cachelines happen to
// reach the media when the power fails.
type EvictMode int

const (
	// EvictNone drops every unflushed store: only explicitly flushed data
	// survives. This is the classic "straight to the persistence domain you
	// asked for" failure.
	EvictNone EvictMode = iota + 1
	// EvictAll persists every dirty line, as if the cache had drained the
	// instant before the failure.
	EvictAll
	// EvictRandom persists each dirty line independently with probability
	// Prob, driven by Seed. This is the adversarial case real hardware
	// permits: caches evict lines whenever they please.
	EvictRandom
)

// CrashPolicy describes a simulated power-failure.
type CrashPolicy struct {
	Mode EvictMode
	// Prob is the per-line survival probability for EvictRandom.
	Prob float64
	// Seed drives EvictRandom deterministically.
	Seed int64
}

// Crash simulates a power failure: the device reverts to its persistent
// image, after the policy decides the fate of each dirty cacheline. The
// device remains usable afterwards — reopening it models a post-crash
// restart. Requires crash tracking.
func (d *Device) Crash(policy CrashPolicy) error {
	if !d.tracking {
		return ErrTrackingDisabled
	}
	var rng *rand.Rand
	if policy.Mode == EvictRandom {
		rng = rand.New(rand.NewSource(policy.Seed))
	}
	for i := range d.chunks {
		c := d.chunks[i].Load()
		if c == nil {
			continue
		}
		for w, word := range c.dirty {
			for word != 0 {
				bit := word & (-word)
				word &^= bit
				line := uint64(w)*64 + uint64(trailingZeros(bit))
				persist := false
				switch policy.Mode {
				case EvictAll:
					persist = true
				case EvictRandom:
					persist = rng.Float64() < policy.Prob
				}
				lo := line * CachelineSize
				if persist {
					copy(c.shadow[lo:lo+CachelineSize], c.data[lo:lo+CachelineSize])
				}
			}
			c.dirty[w] = 0
		}
		copy(c.data, c.shadow)
	}
	return nil
}

// DirtyLines returns the number of cachelines written since their last
// flush. Requires crash tracking.
func (d *Device) DirtyLines() (uint64, error) {
	if !d.tracking {
		return 0, ErrTrackingDisabled
	}
	var total uint64
	for i := range d.chunks {
		c := d.chunks[i].Load()
		if c == nil {
			continue
		}
		for _, word := range c.dirty {
			total += uint64(popcount(word))
		}
	}
	return total, nil
}

func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }

func popcount(v uint64) int { return bits.OnesCount64(v) }
