package nvm

import (
	"math/bits"
	"math/rand"
)

// EvictMode selects which dirty (written but unflushed) cachelines happen to
// reach the media when the power fails.
type EvictMode int

const (
	// EvictNone drops every unflushed store: only explicitly flushed data
	// survives. This is the classic "straight to the persistence domain you
	// asked for" failure.
	EvictNone EvictMode = iota + 1
	// EvictAll persists every dirty line, as if the cache had drained the
	// instant before the failure.
	EvictAll
	// EvictRandom persists each dirty line independently with probability
	// Prob, driven by Seed. This is the adversarial case real hardware
	// permits: caches evict lines whenever they please.
	EvictRandom
	// EvictTorn is the sub-cacheline adversary: each dirty line either
	// persists fully (probability Prob) or tears — exactly one 32-byte half
	// of it, chosen by Seed, reaches the media while the other half reverts
	// to its last flushed contents. Real platforms only guarantee 8-byte
	// store atomicity, so any crash-consistency argument that silently
	// relies on whole-line survival breaks under this mode. Halves are
	// 32 bytes, so the 8-byte atomic-store guarantee still holds.
	EvictTorn
)

// String names the mode the way cmd/poseidon-torture spells it.
func (m EvictMode) String() string {
	switch m {
	case EvictNone:
		return "none"
	case EvictAll:
		return "all"
	case EvictRandom:
		return "random"
	case EvictTorn:
		return "torn"
	default:
		return "unknown"
	}
}

// CrashPolicy describes a simulated power-failure.
type CrashPolicy struct {
	Mode EvictMode
	// Prob is the per-line survival probability for EvictRandom, and the
	// full-persist (versus torn) probability for EvictTorn.
	Prob float64
	// Seed drives EvictRandom and EvictTorn deterministically.
	Seed int64
}

// CrashReport accounts for the fate of every dirty cacheline at a simulated
// power failure. It is what failed crash-sweeps print to make a violation
// diagnosable: "this crash point dropped 17 lines and tore 2".
type CrashReport struct {
	// DirtyLines is the number of written-but-unflushed cachelines at the
	// moment of failure.
	DirtyLines uint64
	// PersistedLines reached the media in full.
	PersistedLines uint64
	// TornLines had exactly one 32-byte half reach the media (EvictTorn).
	TornLines uint64
	// DroppedLines reverted entirely to their last flushed contents.
	DroppedLines uint64
}

// Crash simulates a power failure: the device reverts to its persistent
// image, after the policy decides the fate of each dirty cacheline. The
// device remains usable afterwards — reopening it models a post-crash
// restart. Requires crash tracking.
func (d *Device) Crash(policy CrashPolicy) (CrashReport, error) {
	if !d.tracking {
		return CrashReport{}, ErrTrackingDisabled
	}
	var rng *rand.Rand
	if policy.Mode == EvictRandom || policy.Mode == EvictTorn {
		rng = rand.New(rand.NewSource(policy.Seed))
	}
	var report CrashReport
	for i := range d.chunks {
		c := d.chunks[i].Load()
		if c == nil {
			continue
		}
		for w, word := range c.dirty {
			for word != 0 {
				bit := word & (-word)
				word &^= bit
				line := uint64(w)*64 + uint64(trailingZeros(bit))
				report.DirtyLines++
				lo := line * CachelineSize
				switch policy.Mode {
				case EvictAll:
					copy(c.shadow[lo:lo+CachelineSize], c.data[lo:lo+CachelineSize])
					report.PersistedLines++
				case EvictRandom:
					if rng.Float64() < policy.Prob {
						copy(c.shadow[lo:lo+CachelineSize], c.data[lo:lo+CachelineSize])
						report.PersistedLines++
					} else {
						report.DroppedLines++
					}
				case EvictTorn:
					if rng.Float64() < policy.Prob {
						copy(c.shadow[lo:lo+CachelineSize], c.data[lo:lo+CachelineSize])
						report.PersistedLines++
					} else {
						half := lo + uint64(rng.Intn(2))*(CachelineSize/2)
						copy(c.shadow[half:half+CachelineSize/2], c.data[half:half+CachelineSize/2])
						report.TornLines++
					}
				default: // EvictNone
					report.DroppedLines++
				}
			}
			c.dirty[w] = 0
		}
		copy(c.data, c.shadow)
	}
	return report, nil
}

// DirtyLines returns the number of cachelines written since their last
// flush. Requires crash tracking.
func (d *Device) DirtyLines() (uint64, error) {
	if !d.tracking {
		return 0, ErrTrackingDisabled
	}
	var total uint64
	for i := range d.chunks {
		c := d.chunks[i].Load()
		if c == nil {
			continue
		}
		for _, word := range c.dirty {
			total += uint64(popcount(word))
		}
	}
	return total, nil
}

func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }

func popcount(v uint64) int { return bits.OnesCount64(v) }
