package nvm

import (
	"sync/atomic"
	"time"
)

// LatencyTap is the fence/flush latency outlier tap: when attached to a
// Device it times every Flush and Fence and counts the ones exceeding a
// threshold, keeping the running maximum per operation. The tap is the
// watchdog's view of device-side stalls (fence storms, a slow media write)
// that per-op histograms average away.
//
// A detached device (the default) pays one atomic pointer load per
// Flush/Fence; an attached tap adds two clock reads and, for outliers, an
// optional callback.
type LatencyTap struct {
	threshold int64 // nanoseconds; observations above this count as outliers

	flushObserved atomic.Uint64
	fenceObserved atomic.Uint64
	flushOutliers atomic.Uint64
	fenceOutliers atomic.Uint64
	flushMaxNS    atomic.Int64
	fenceMaxNS    atomic.Int64

	// onOutlier, when non-nil, runs inline on the flushing goroutine for
	// every outlier. It must be cheap and must not issue device I/O.
	onOutlier func(op string, d time.Duration)
}

// NewLatencyTap creates a tap. threshold <= 0 counts every observation as
// an outlier (useful in tests); onOutlier may be nil.
func NewLatencyTap(threshold time.Duration, onOutlier func(op string, d time.Duration)) *LatencyTap {
	return &LatencyTap{threshold: int64(threshold), onOutlier: onOutlier}
}

// TapSnapshot is a point-in-time copy of a tap's counters.
type TapSnapshot struct {
	ThresholdNS   int64
	FlushObserved uint64
	FenceObserved uint64
	FlushOutliers uint64
	FenceOutliers uint64
	FlushMaxNS    int64
	FenceMaxNS    int64
}

// Snapshot copies the counters. Nil-safe (zero snapshot).
func (t *LatencyTap) Snapshot() TapSnapshot {
	if t == nil {
		return TapSnapshot{}
	}
	return TapSnapshot{
		ThresholdNS:   t.threshold,
		FlushObserved: t.flushObserved.Load(),
		FenceObserved: t.fenceObserved.Load(),
		FlushOutliers: t.flushOutliers.Load(),
		FenceOutliers: t.fenceOutliers.Load(),
		FlushMaxNS:    t.flushMaxNS.Load(),
		FenceMaxNS:    t.fenceMaxNS.Load(),
	}
}

const (
	tapFlush = "flush"
	tapFence = "fence"
)

func (t *LatencyTap) observe(op string, d time.Duration) {
	ns := int64(d)
	var outliers *atomic.Uint64
	switch op {
	case tapFlush:
		t.flushObserved.Add(1)
		maxUpdate(&t.flushMaxNS, ns)
		outliers = &t.flushOutliers
	default:
		t.fenceObserved.Add(1)
		maxUpdate(&t.fenceMaxNS, ns)
		outliers = &t.fenceOutliers
	}
	if ns < t.threshold {
		return
	}
	outliers.Add(1)
	if t.onOutlier != nil {
		t.onOutlier(op, d)
	}
}

func maxUpdate(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SetLatencyTap attaches (or, with nil, detaches) a latency tap. Safe to
// call concurrently with device I/O.
func (d *Device) SetLatencyTap(t *LatencyTap) { d.tap.Store(t) }

// GetLatencyTap returns the attached tap, nil when detached.
func (d *Device) GetLatencyTap() *LatencyTap { return d.tap.Load() }
