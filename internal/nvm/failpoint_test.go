package nvm

import (
	"errors"
	"testing"
)

func TestFailpointTriggersAndDisarms(t *testing.T) {
	d := newTestDevice(t, ChunkSize, true)
	d.FailAfter(2)
	if err := d.Write(0, []byte{1}); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := d.WriteU64(64, 7); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := d.Write(128, []byte{3}); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("write 3: %v, want ErrDeviceFailed", err)
	}
	if err := d.Flush(0, 64); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("flush: %v, want ErrDeviceFailed", err)
	}
	if err := d.Zero(0, 64); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("zero: %v, want ErrDeviceFailed", err)
	}
	// Reads still work on a dying device.
	if _, err := d.ReadU64(64); err != nil {
		t.Fatalf("read on failed device: %v", err)
	}
	d.DisarmFailpoint()
	if err := d.Write(128, []byte{3}); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

func TestFailpointZeroBudgetFailsImmediately(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	d.FailAfter(0)
	if err := d.Write(0, []byte{1}); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("err = %v", err)
	}
}
