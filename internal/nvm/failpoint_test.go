package nvm

import (
	"errors"
	"testing"
)

func TestFailpointTriggersAndDisarms(t *testing.T) {
	d := newTestDevice(t, ChunkSize, true)
	d.FailAfter(2)
	if err := d.Write(0, []byte{1}); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := d.WriteU64(64, 7); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := d.Write(128, []byte{3}); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("write 3: %v, want ErrDeviceFailed", err)
	}
	if err := d.Flush(0, 64); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("flush: %v, want ErrDeviceFailed", err)
	}
	if err := d.Zero(0, 64); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("zero: %v, want ErrDeviceFailed", err)
	}
	// Reads still work on a dying device.
	if _, err := d.ReadU64(64); err != nil {
		t.Fatalf("read on failed device: %v", err)
	}
	d.DisarmFailpoint()
	if err := d.Write(128, []byte{3}); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

// TestFailpointBudgetCosts pins the failpoint budget consumed by every
// mutating entry point. Crash sweeps index crash points by this budget, so
// the costs below are a compatibility contract: changing any of them
// renumbers every recorded reproducer. Primitive mutations (write, zero,
// flush, hole-punch drop phase) cost exactly one unit; compound helpers
// cost the sum of the primitives they are documented to be built from.
func TestFailpointBudgetCosts(t *testing.T) {
	const huge = int64(1) << 40
	cases := []struct {
		name string
		op   func(d *Device) error
		want int64
	}{
		{"Write", func(d *Device) error { return d.Write(0, make([]byte, 100)) }, 1},
		{"WriteCrossChunk", func(d *Device) error { return d.Write(ChunkSize-8, make([]byte, 16)) }, 1},
		{"WriteU64", func(d *Device) error { return d.WriteU64(64, 7) }, 1},
		{"WriteU64Straddle", func(d *Device) error { return d.WriteU64(ChunkSize-4, 7) }, 1},
		{"WriteU32", func(d *Device) error { return d.WriteU32(64, 7) }, 1},
		{"WriteU16", func(d *Device) error { return d.WriteU16(64, 7) }, 1},
		{"WriteU8", func(d *Device) error { return d.WriteU8(64, 7) }, 1},
		{"Zero", func(d *Device) error { return d.Zero(0, 4096) }, 1},
		{"ZeroUntouchedChunk", func(d *Device) error { return d.Zero(ChunkSize, 4096) }, 1},
		{"Flush", func(d *Device) error { return d.Flush(0, 4096) }, 1},
		{"FlushEmpty", func(d *Device) error { return d.Flush(0, 0) }, 0},
		{"Fence", func(d *Device) error { d.Fence(); return nil }, 0},
		{"Read", func(d *Device) error { return d.Read(0, make([]byte, 64)) }, 0},
		{"ReadU64", func(d *Device) error { _, err := d.ReadU64(0); return err }, 0},
		{"Persist", func(d *Device) error { return d.Persist(0, make([]byte, 64)) }, 2},
		{"PersistU64", func(d *Device) error { return d.PersistU64(0, 7) }, 2},
		// PunchHole: whole-chunk drop phase costs one unit regardless of
		// chunk count; partial edges cost Zero+Flush each.
		{"PunchHoleWholeChunk", func(d *Device) error { return d.PunchHole(0, ChunkSize) }, 1},
		{"PunchHoleTwoChunks", func(d *Device) error { return d.PunchHole(0, 2 * ChunkSize) }, 1},
		{"PunchHoleLeadingEdge", func(d *Device) error { return d.PunchHole(64, ChunkSize - 64) }, 2},
		{"PunchHoleBothEdges", func(d *Device) error { return d.PunchHole(64, ChunkSize) }, 4},
		{"InjectBitFlip", func(d *Device) error { return d.InjectBitFlip(0, 0) }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, tracking := range []bool{false, true} {
				d := newTestDevice(t, 4*ChunkSize, tracking)
				// Touch the chunks involved so cost never depends on
				// materialisation state (except the explicit untouched case).
				if tc.name != "ZeroUntouchedChunk" {
					for off := uint64(0); off < 3*ChunkSize; off += ChunkSize {
						if err := d.Write(off, []byte{1}); err != nil {
							t.Fatal(err)
						}
					}
				}
				d.FailAfter(huge)
				if err := tc.op(d); err != nil {
					t.Fatalf("tracking=%v: op failed under huge budget: %v", tracking, err)
				}
				got := huge - d.FailBudgetRemaining()
				d.DisarmFailpoint()
				if got != tc.want {
					t.Errorf("tracking=%v: consumed %d budget units, want %d", tracking, got, tc.want)
				}
			}
		})
	}
}

// TestFailpointPunchHoleAtomicDrop verifies the drop phase consumes its
// budget before releasing any chunk: a failpoint firing there leaves the
// range intact, never half-punched.
func TestFailpointPunchHoleAtomicDrop(t *testing.T) {
	d := newTestDevice(t, 2*ChunkSize, false)
	if err := d.Persist(0, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	if err := d.Persist(ChunkSize, []byte{0xCD}); err != nil {
		t.Fatal(err)
	}
	d.FailAfter(0)
	if err := d.PunchHole(0, 2*ChunkSize); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
	d.DisarmFailpoint()
	for _, off := range []uint64{0, ChunkSize} {
		v, err := d.ReadU8(off)
		if err != nil {
			t.Fatal(err)
		}
		if v == 0 {
			t.Fatalf("chunk at %#x released despite failed punch", off)
		}
	}
}

func TestFailpointZeroBudgetFailsImmediately(t *testing.T) {
	d := newTestDevice(t, ChunkSize, false)
	d.FailAfter(0)
	if err := d.Write(0, []byte{1}); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("err = %v", err)
	}
}
