// Package nvm models a byte-addressable non-volatile main-memory (NVMM)
// device, the substrate the Poseidon allocator manages.
//
// The model reproduces the persistence semantics that matter for crash
// consistency on real hardware (Intel Optane DCPMM behind a DAX file):
//
//   - Stores land in a volatile cache first. A store becomes persistent only
//     after an explicit Flush of its cacheline (clwb) ordered by a Fence
//     (sfence) — or, adversarially, at any moment the "CPU" evicts the dirty
//     line on its own.
//   - Crash simulates a power failure: the device contents revert to the
//     persistent image, with an eviction policy deciding which dirty (written
//     but unflushed) cachelines happened to reach the media.
//
// The device is sparse: backing memory is materialised in fixed-size chunks
// on first write, so multi-gigabyte heaps cost only what they touch, like
// holes in a DAX file. PunchHole releases chunks back (fallocate
// FALLOC_FL_PUNCH_HOLE).
//
// Crash tracking (the shadow persistent image and dirty-line bitmaps) is
// optional; benchmarks run with it disabled and pay only a bounds check and
// chunk lookup per access.
package nvm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// CachelineSize is the persistence granularity (clwb granularity).
	CachelineSize = 64
	// PageSize is the protection granularity used by the MPK model.
	PageSize = 4096

	chunkShift = 22 // 4 MiB chunks
	// ChunkSize is the sparse-backing materialisation granularity.
	ChunkSize = 1 << chunkShift
	chunkMask = ChunkSize - 1

	linesPerChunk     = ChunkSize / CachelineSize
	dirtyWordsPerChnk = linesPerChunk / 64
)

// Common device errors.
var (
	ErrOutOfRange       = errors.New("nvm: access outside device capacity")
	ErrTrackingDisabled = errors.New("nvm: crash tracking is disabled on this device")
)

// Options configures a Device.
type Options struct {
	// Capacity is the device size in bytes. It is rounded up to a whole
	// number of chunks.
	Capacity uint64
	// CrashTracking enables the shadow persistent image and dirty-line
	// bookkeeping required by Crash. It roughly doubles memory use for
	// touched chunks and adds bookkeeping to every store.
	CrashTracking bool
	// Stats enables operation counters (writes, flushes, fences). Disabled
	// by default because the atomic increments limit multi-core scalability.
	Stats bool
}

// chunk is one materialised slab of device memory.
type chunk struct {
	data []byte
	// The fields below exist only when crash tracking is enabled.
	shadow []byte   // last persisted contents
	dirty  []uint64 // bitmap: cacheline written since last flush
}

// Device is a simulated NVMM device.
//
// Concurrent access to disjoint byte ranges is safe. Concurrent access to
// overlapping ranges requires external synchronisation, exactly as on real
// memory.
type Device struct {
	capacity uint64
	tracking bool
	stats    *Stats
	failpointState
	transient atomic.Pointer[transientState]

	chunkInit sync.Mutex // serialises chunk materialisation only
	chunks    []atomic.Pointer[chunk]

	resident atomic.Int64 // bytes of materialised backing memory

	// tap is the optional fence/flush latency outlier tap (tap.go); nil
	// costs one atomic pointer load per Flush/Fence.
	tap atomic.Pointer[LatencyTap]
}

// NewDevice creates a device of the configured capacity.
func NewDevice(opts Options) (*Device, error) {
	if opts.Capacity == 0 {
		return nil, errors.New("nvm: capacity must be non-zero")
	}
	nchunks := (opts.Capacity + chunkMask) >> chunkShift
	d := &Device{
		capacity: nchunks << chunkShift,
		tracking: opts.CrashTracking,
		chunks:   make([]atomic.Pointer[chunk], nchunks),
	}
	if opts.Stats {
		d.stats = &Stats{}
	}
	return d, nil
}

// Capacity returns the usable size of the device in bytes.
func (d *Device) Capacity() uint64 { return d.capacity }

// Tracking reports whether crash tracking is enabled.
func (d *Device) Tracking() bool { return d.tracking }

// ResidentBytes returns the bytes of backing memory currently materialised
// (excluding shadow copies).
func (d *Device) ResidentBytes() int64 { return d.resident.Load() }

func (d *Device) checkRange(off, n uint64) error {
	if off >= d.capacity || n > d.capacity-off {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, d.capacity)
	}
	return nil
}

// getChunk returns the chunk containing off, or nil if it has never been
// written (reads from such a chunk see zeroes).
func (d *Device) getChunk(off uint64) *chunk {
	return d.chunks[off>>chunkShift].Load()
}

// materialise returns the chunk containing off, creating it if necessary.
func (d *Device) materialise(off uint64) *chunk {
	idx := off >> chunkShift
	if c := d.chunks[idx].Load(); c != nil {
		return c
	}
	d.chunkInit.Lock()
	defer d.chunkInit.Unlock()
	if c := d.chunks[idx].Load(); c != nil {
		return c
	}
	c := &chunk{data: make([]byte, ChunkSize)}
	size := int64(ChunkSize)
	if d.tracking {
		c.shadow = make([]byte, ChunkSize)
		c.dirty = make([]uint64, dirtyWordsPerChnk)
		size *= 2
	}
	d.resident.Add(size)
	d.chunks[idx].Store(c)
	return c
}

// markDirty records that the cachelines covering [off, off+n) were written.
func (c *chunk) markDirty(off, n uint64) {
	first := (off & chunkMask) / CachelineSize
	last := ((off&chunkMask + n - 1) / CachelineSize)
	for line := first; line <= last; line++ {
		atomic.OrUint64(&c.dirty[line/64], 1<<(line%64))
	}
}

// Write copies b into the device at off. The write is volatile until the
// covering cachelines are flushed (or evicted at crash time).
func (d *Device) Write(off uint64, b []byte) error {
	if err := d.checkRange(off, uint64(len(b))); err != nil {
		return err
	}
	if d.failing() {
		return ErrDeviceFailed
	}
	if err := d.faultWrite(off, uint64(len(b))); err != nil {
		return err
	}
	if d.stats != nil {
		d.stats.Writes.Add(1)
		d.stats.BytesWritten.Add(uint64(len(b)))
	}
	for len(b) > 0 {
		c := d.materialise(off)
		in := off & chunkMask
		n := uint64(len(b))
		if n > ChunkSize-in {
			n = ChunkSize - in
		}
		copy(c.data[in:in+n], b[:n])
		if d.tracking {
			c.markDirty(off, n)
		}
		off += n
		b = b[n:]
	}
	return nil
}

// Read copies len(b) bytes at off into b. Unwritten regions read as zero.
func (d *Device) Read(off uint64, b []byte) error {
	if err := d.checkRange(off, uint64(len(b))); err != nil {
		return err
	}
	if err := d.faultRead(off, uint64(len(b))); err != nil {
		return err
	}
	for len(b) > 0 {
		in := off & chunkMask
		n := uint64(len(b))
		if n > ChunkSize-in {
			n = ChunkSize - in
		}
		if c := d.getChunk(off); c != nil {
			copy(b[:n], c.data[in:in+n])
		} else {
			clear(b[:n])
		}
		off += n
		b = b[n:]
	}
	return nil
}

// WriteU64 stores a little-endian 8-byte value. The offset need not be
// aligned, but aligned stores never straddle a cacheline, matching the
// 8-byte atomic-store guarantee crash-consistent code relies on.
func (d *Device) WriteU64(off uint64, v uint64) error {
	if err := d.checkRange(off, 8); err != nil {
		return err
	}
	if off&chunkMask <= ChunkSize-8 {
		if d.failing() {
			return ErrDeviceFailed
		}
		if err := d.faultWrite(off, 8); err != nil {
			return err
		}
		if d.stats != nil {
			d.stats.Writes.Add(1)
			d.stats.BytesWritten.Add(8)
		}
		c := d.materialise(off)
		putU64(c.data[off&chunkMask:], v)
		if d.tracking {
			c.markDirty(off, 8)
		}
		return nil
	}
	var buf [8]byte
	putU64(buf[:], v)
	return d.Write(off, buf[:])
}

// ReadU64 loads a little-endian 8-byte value.
func (d *Device) ReadU64(off uint64) (uint64, error) {
	if err := d.checkRange(off, 8); err != nil {
		return 0, err
	}
	if off&chunkMask <= ChunkSize-8 {
		if err := d.faultRead(off, 8); err != nil {
			return 0, err
		}
		c := d.getChunk(off)
		if c == nil {
			return 0, nil
		}
		return getU64(c.data[off&chunkMask:]), nil
	}
	var buf [8]byte
	if err := d.Read(off, buf[:]); err != nil {
		return 0, err
	}
	return getU64(buf[:]), nil
}

// WriteU32 stores a little-endian 4-byte value.
func (d *Device) WriteU32(off uint64, v uint32) error {
	var buf [4]byte
	putU32(buf[:], v)
	return d.Write(off, buf[:])
}

// ReadU32 loads a little-endian 4-byte value.
func (d *Device) ReadU32(off uint64) (uint32, error) {
	var buf [4]byte
	if err := d.Read(off, buf[:]); err != nil {
		return 0, err
	}
	return getU32(buf[:]), nil
}

// WriteU16 stores a little-endian 2-byte value.
func (d *Device) WriteU16(off uint64, v uint16) error {
	var buf [2]byte
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	return d.Write(off, buf[:])
}

// ReadU16 loads a little-endian 2-byte value.
func (d *Device) ReadU16(off uint64) (uint16, error) {
	var buf [2]byte
	if err := d.Read(off, buf[:]); err != nil {
		return 0, err
	}
	return uint16(buf[0]) | uint16(buf[1])<<8, nil
}

// WriteU8 stores one byte.
func (d *Device) WriteU8(off uint64, v uint8) error {
	return d.Write(off, []byte{v})
}

// ReadU8 loads one byte.
func (d *Device) ReadU8(off uint64) (uint8, error) {
	var buf [1]byte
	if err := d.Read(off, buf[:]); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// Zero clears [off, off+n). It is a regular (volatile-until-flushed) write.
func (d *Device) Zero(off, n uint64) error {
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	if d.failing() {
		return ErrDeviceFailed
	}
	if err := d.faultWrite(off, n); err != nil {
		return err
	}
	if d.stats != nil {
		d.stats.Writes.Add(1)
		d.stats.BytesWritten.Add(n)
	}
	for n > 0 {
		in := off & chunkMask
		step := n
		if step > ChunkSize-in {
			step = ChunkSize - in
		}
		// Zeroing a never-touched chunk is a no-op: it already reads as zero.
		if c := d.getChunk(off); c != nil {
			clear(c.data[in : in+step])
			if d.tracking {
				c.markDirty(off, step)
			}
		}
		off += step
		n -= step
	}
	return nil
}

// Flush makes the cachelines covering [off, off+n) persistent (clwb). It
// must still be ordered by a Fence for crash-consistency reasoning, but in
// this model the lines are durable as soon as Flush returns.
func (d *Device) Flush(off, n uint64) error {
	if tap := d.tap.Load(); tap != nil {
		start := time.Now()
		err := d.flush(off, n)
		tap.observe(tapFlush, time.Since(start))
		return err
	}
	return d.flush(off, n)
}

func (d *Device) flush(off, n uint64) error {
	if n == 0 {
		return nil
	}
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	if d.failing() {
		return ErrDeviceFailed
	}
	if err := d.faultWrite(off, n); err != nil {
		return err
	}
	start := off &^ (CachelineSize - 1)
	end := (off + n + CachelineSize - 1) &^ (CachelineSize - 1)
	if d.stats != nil {
		d.stats.Flushes.Add((end - start) / CachelineSize)
	}
	if !d.tracking {
		return nil
	}
	for at := start; at < end; {
		c := d.getChunk(at)
		in := at & chunkMask
		step := end - at
		if step > ChunkSize-in {
			step = ChunkSize - in
		}
		if c != nil {
			copy(c.shadow[in:in+step], c.data[in:in+step])
			first := in / CachelineSize
			last := (in + step - 1) / CachelineSize
			for line := first; line <= last; line++ {
				atomic.AndUint64(&c.dirty[line/64], ^(uint64(1) << (line % 64)))
			}
		}
		at += step
	}
	return nil
}

// Fence orders previously issued flushes (sfence). In this model flushes are
// synchronous, so Fence only updates statistics; it exists so calling code
// documents its ordering points and so the counters reflect real barrier
// traffic.
func (d *Device) Fence() {
	if tap := d.tap.Load(); tap != nil {
		start := time.Now()
		if d.stats != nil {
			d.stats.Fences.Add(1)
		}
		tap.observe(tapFence, time.Since(start))
		return
	}
	if d.stats != nil {
		d.stats.Fences.Add(1)
	}
}

// Persist is the common write-and-make-durable idiom: Write, Flush, Fence.
func (d *Device) Persist(off uint64, b []byte) error {
	if err := d.Write(off, b); err != nil {
		return err
	}
	if err := d.Flush(off, uint64(len(b))); err != nil {
		return err
	}
	d.Fence()
	return nil
}

// PersistU64 atomically stores an 8-byte value and makes it durable. This is
// the primitive used for commit records (log counts, status words).
func (d *Device) PersistU64(off uint64, v uint64) error {
	if err := d.WriteU64(off, v); err != nil {
		return err
	}
	if err := d.Flush(off, 8); err != nil {
		return err
	}
	d.Fence()
	return nil
}

// PunchHole releases the backing memory of every chunk fully contained in
// [off, off+n) and zeroes the partial edges, mirroring fallocate
// FALLOC_FL_PUNCH_HOLE on a DAX file. Punched ranges read as zero and are
// re-materialised on the next write.
func (d *Device) PunchHole(off, n uint64) error {
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	end := off + n
	at := off
	// Zero the leading partial chunk.
	if at&chunkMask != 0 {
		step := ChunkSize - at&chunkMask
		if step > end-at {
			step = end - at
		}
		if err := d.zeroPersistent(at, step); err != nil {
			return err
		}
		at += step
	}
	// Drop whole chunks. The drop phase consumes exactly one failpoint
	// budget unit, before any chunk is released, so crash sweeps see a
	// deterministic per-op cost and never observe a half-punched range.
	if at+ChunkSize <= end {
		if d.failing() {
			return ErrDeviceFailed
		}
	}
	for at+ChunkSize <= end {
		idx := at >> chunkShift
		if c := d.chunks[idx].Swap(nil); c != nil {
			size := int64(ChunkSize)
			if d.tracking {
				size *= 2
			}
			d.resident.Add(-size)
		}
		at += ChunkSize
	}
	// Zero the trailing partial chunk.
	if at < end {
		if err := d.zeroPersistent(at, end-at); err != nil {
			return err
		}
	}
	return nil
}

// zeroPersistent zeroes a range in both the working and persistent images,
// as a hole punch is immediately durable.
func (d *Device) zeroPersistent(off, n uint64) error {
	if err := d.Zero(off, n); err != nil {
		return err
	}
	return d.Flush(off, n)
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
