package benchutil

import (
	"math/rand"

	"poseidon/internal/alloc"
)

// MicroConfig parameterises the Figure 6 microbenchmark: pairs of 100
// allocations and 100 frees in random order, per thread, with a fixed
// allocation size and no inter-thread frees (the paper's ideal-maximum
// setup, §7.2).
type MicroConfig struct {
	Size   uint64
	Rounds int // each round is 100 allocs + 100 frees
	Seed   int64
}

// MicroWorker runs the microbenchmark loop on one handle and returns the
// number of alloc/free operations performed.
func MicroWorker(h alloc.Handle, cfg MicroConfig) (uint64, error) {
	const window = 100
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := make([]alloc.Ptr, 0, window)
	ops := uint64(0)
	for r := 0; r < cfg.Rounds; r++ {
		allocs, frees := window, window
		for allocs > 0 || frees > 0 {
			doAlloc := allocs > 0 && (len(slots) == 0 || frees == 0 || rng.Intn(2) == 0)
			if doAlloc {
				p, err := h.Alloc(cfg.Size)
				if err != nil {
					return ops, err
				}
				slots = append(slots, p)
				allocs--
				ops++
			} else {
				k := rng.Intn(len(slots))
				if err := h.Free(slots[k]); err != nil {
					return ops, err
				}
				slots[k] = slots[len(slots)-1]
				slots = slots[:len(slots)-1]
				frees--
				ops++
			}
		}
	}
	// Leave the heap clean for the next measurement.
	for _, p := range slots {
		if err := h.Free(p); err != nil {
			return ops, err
		}
	}
	return ops, nil
}

// MicroHeapBytes sizes the heap for a Figure 6 configuration: 100 live
// blocks per thread at the given size, with generous headroom.
func MicroHeapBytes(size uint64, threads int) uint64 {
	per := 4 * 100 * size
	if per < 8<<20 {
		per = 8 << 20
	}
	return per * uint64(threads)
}
