package benchutil

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"poseidon/internal/alloc"
)

func TestNewAllocatorAllNames(t *testing.T) {
	for _, name := range AllocatorNames {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := NewAllocator(name, Config{Threads: 2, HeapBytes: 32 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			if a.Name() != name {
				t.Fatalf("Name() = %q", a.Name())
			}
			h, err := a.Thread(0)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			p, err := h.Alloc(128)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Free(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNewAllocatorUnknown(t *testing.T) {
	if _, err := NewAllocator("tcmalloc", Config{}); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}

func TestRunParallelAggregatesAndPropagatesErrors(t *testing.T) {
	a, err := NewAllocator("poseidon", Config{Threads: 4, HeapBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ops, d, err := RunParallel(a, 4, func(w int, h alloc.Handle) (uint64, error) {
		return uint64(w + 1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ops != 1+2+3+4 {
		t.Fatalf("ops = %d", ops)
	}
	if d <= 0 {
		t.Fatal("non-positive duration")
	}
	boom := errors.New("boom")
	_, _, err = RunParallel(a, 2, func(w int, h alloc.Handle) (uint64, error) {
		if w == 1 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMicroWorkerBalancesAllocsAndFrees(t *testing.T) {
	a, err := NewAllocator("poseidon", Config{Threads: 1, HeapBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	h, err := a.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	const rounds = 5
	ops, err := MicroWorker(h, MicroConfig{Size: 256, Rounds: rounds, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ops != rounds*200 {
		t.Fatalf("ops = %d, want %d", ops, rounds*200)
	}
	// The worker must leave the heap clean: a whole-heap-sized allocation
	// on the same shard succeeds after defragmentation.
	pa, ok := a.(*alloc.Poseidon)
	if !ok {
		t.Fatal("not poseidon")
	}
	st := pa.Heap().Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("allocs %d != frees %d — worker leaked", st.Allocs, st.Frees)
	}
}

func TestMicroHeapBytes(t *testing.T) {
	if got := MicroHeapBytes(256, 4); got < 4*100*256 {
		t.Fatalf("too small: %d", got)
	}
	small := MicroHeapBytes(64, 1)
	if small < 8<<20 {
		t.Fatalf("floor not applied: %d", small)
	}
	if MicroHeapBytes(512<<10, 8) <= MicroHeapBytes(512<<10, 1) {
		t.Fatal("heap must grow with threads")
	}
}

func TestFigureTable(t *testing.T) {
	var fig Figure
	fig.Title = "test figure"
	fig.Add("a", 1, 1_000_000, time.Second)
	fig.Add("a", 2, 4_000_000, time.Second)
	fig.Add("b", 1, 2_000_000, time.Second)
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	for _, want := range []string{"test figure", "threads", "a", "b", "1.000", "4.000", "2.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Missing cells render blank, not zero.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "2") {
		t.Fatalf("last row %q", last)
	}
}

func TestThreadSweep(t *testing.T) {
	if got := ThreadSweep(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("sweep(0) = %v", got)
	}
	got := ThreadSweep(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("sweep(16) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep(16) = %v", got)
		}
	}
}

func TestContentionReportAllAllocators(t *testing.T) {
	for _, name := range AllocatorNames {
		a, err := NewAllocator(name, Config{Threads: 1, HeapBytes: 32 << 20})
		if err != nil {
			t.Fatal(err)
		}
		h, err := a.Thread(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := MicroWorker(h, MicroConfig{Size: 256, Rounds: 2, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		ContentionReport(&buf, a, 400)
		if !strings.Contains(buf.String(), "global-lock acquisitions/op") {
			t.Fatalf("%s report: %q", name, buf.String())
		}
		h.Close()
		_ = a.Close()
	}
}
