package benchutil

import (
	"fmt"
	"io"

	"poseidon/internal/alloc"
	"poseidon/internal/makalu"
	"poseidon/internal/pmdkalloc"
)

// ContentionReport prints each allocator's serialization events per
// operation — the hardware-independent predictor of the paper's
// scalability results. Poseidon's design goal (§4.7) is exactly "zero
// global serialization points on the common path": every global-lock
// acquisition in a baseline is a spot where adding cores stops helping.
func ContentionReport(w io.Writer, a alloc.Allocator, ops uint64) {
	if ops == 0 {
		ops = 1
	}
	per := func(n uint64) float64 { return float64(n) / float64(ops) }
	switch impl := a.(type) {
	case *alloc.Poseidon:
		st := impl.Heap().Stats()
		fmt.Fprintf(w, "%-10s global-lock acquisitions/op: %.4f  (per-CPU sub-heaps; wrpkru/op: %.2f)\n",
			impl.Name(), 0.0, per(st.PermissionSwitches))
	case *pmdkalloc.Heap:
		rebuilds, claims, large, drains := impl.StatsSnapshot()
		// Every free appends to the global action log; rebuilds serialise
		// on the global rebuild lock; chunk claims and large allocations
		// take the global AVL lock.
		globalOps := ops/2 + rebuilds + claims + large + drains // ops/2 ≈ frees
		fmt.Fprintf(w, "%-10s global-lock acquisitions/op: %.4f  (action log %.4f, rebuilds %.6f, AVL %.6f)\n",
			impl.Name(), per(globalOps), 0.5, per(rebuilds), per(claims+large))
	case *makalu.Heap:
		spills, grabs, carves, large, _ := impl.StatsSnapshot()
		globalOps := spills + grabs + carves + large
		fmt.Fprintf(w, "%-10s global-lock acquisitions/op: %.4f  (reclaim %.4f, carve %.6f, chunk-list %.4f)\n",
			impl.Name(), per(globalOps), per(spills+grabs), per(carves), per(large))
	default:
		fmt.Fprintf(w, "%-10s (no contention counters)\n", a.Name())
	}
}
