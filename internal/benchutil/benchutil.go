// Package benchutil provides the shared machinery of the benchmark
// harness: an allocator factory keyed by name, a parallel runner that
// mirrors the paper's thread sweeps, and series formatting that prints the
// same rows the paper's figures plot.
package benchutil

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/makalu"
	"poseidon/internal/obs"
	"poseidon/internal/pmdkalloc"
)

// AllocatorNames lists the allocators every figure compares, in the
// paper's order.
var AllocatorNames = []string{"poseidon", "pmdk", "makalu"}

// RingAllocatorName is the Poseidon variant with remote-free rings on —
// benchmarked against plain "poseidon" to measure what the rings buy on
// cross-thread free workloads (Fig 7).
const RingAllocatorName = "poseidon-rings"

// MagsAllocatorName is the Poseidon variant with per-thread magazines on —
// benchmarked against plain "poseidon" to measure what the lock-free
// alloc/free fast path buys on small-object workloads (Fig 5/6).
const MagsAllocatorName = "poseidon-mags"

// MagazineGeometry is the magazine shape every benchmarked variant uses:
// 64 blocks per class across the 8 smallest classes (64 B … 8 KiB), so a
// refill of 32 blocks amortizes one lock + one flush+fence over 32 pops.
var MagazineGeometry = core.MagazineOptions{Capacity: 64, Classes: 8}

// Config sizes the heap for a workload.
type Config struct {
	// Threads is the maximum worker count the allocator must serve.
	Threads int
	// HeapBytes is the total user-data capacity to provision.
	HeapBytes uint64
	// Protection overrides Poseidon's metadata guard (default MPK).
	Protection core.Protection
	// Telemetry, when non-nil, wires Poseidon heaps into an observability
	// registry. Falls back to the package default set by SetTelemetry.
	Telemetry *obs.Telemetry
	// RemoteFreeRings enables Poseidon's remote-free rings (implied by the
	// "poseidon-rings" allocator name).
	RemoteFreeRings bool
	// Magazines enables Poseidon's per-thread magazines with the standard
	// MagazineGeometry (implied by the "poseidon-mags" allocator name).
	Magazines bool
}

// defaultTelemetry is applied to every Poseidon heap NewAllocator builds
// when the Config doesn't carry its own registry — how the bench tool's
// -metrics endpoint sees heaps created deep inside figure loops.
var defaultTelemetry *obs.Telemetry

// SetTelemetry installs a process-wide telemetry registry for subsequently
// created Poseidon allocators. Heaps share the registry, so histograms and
// attribution aggregate across the whole run.
func SetTelemetry(t *obs.Telemetry) { defaultTelemetry = t }

// NewAllocator builds one of the three allocators sized for the workload.
func NewAllocator(name string, cfg Config) (alloc.Allocator, error) {
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 512 << 20
	}
	switch name {
	case "poseidon", RingAllocatorName, MagsAllocatorName:
		perSub := nextPow2(cfg.HeapBytes / uint64(cfg.Threads))
		if perSub < 4<<20 {
			perSub = 4 << 20
		}
		meta := perSub / 8
		if meta < 1<<20 {
			meta = 1 << 20
		}
		tel := cfg.Telemetry
		if tel == nil {
			tel = defaultTelemetry
		}
		var mags core.MagazineOptions
		if cfg.Magazines || name == MagsAllocatorName {
			mags = MagazineGeometry
		}
		return alloc.NewPoseidon(core.Options{
			Subheaps:        cfg.Threads,
			SubheapUserSize: perSub,
			SubheapMetaSize: meta,
			MaxThreads:      cfg.Threads + 8,
			Protection:      cfg.Protection,
			Telemetry:       tel,
			RemoteFreeRings: cfg.RemoteFreeRings || name == RingAllocatorName,
			Magazines:       mags,
		})
	case "pmdk":
		return pmdkalloc.New(pmdkalloc.Options{Capacity: cfg.HeapBytes})
	case "makalu":
		return makalu.New(makalu.Options{Capacity: cfg.HeapBytes})
	default:
		return nil, fmt.Errorf("benchutil: unknown allocator %q", name)
	}
}

func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// RunParallel runs fn on `threads` workers, each with its own handle
// pinned to its shard, and returns total operations and wall time.
func RunParallel(a alloc.Allocator, threads int, fn func(worker int, h alloc.Handle) (uint64, error)) (uint64, time.Duration, error) {
	handles := make([]alloc.Handle, threads)
	for i := range handles {
		h, err := a.Thread(i)
		if err != nil {
			return 0, 0, err
		}
		handles[i] = h
	}
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total uint64
		first error
	)
	start := time.Now()
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops, err := fn(i, handles[i])
			mu.Lock()
			total += ops
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return total, time.Since(start), first
}

// Point is one measurement: a thread count and its throughput.
type Point struct {
	Threads int
	MopsSec float64
}

// Series is one allocator's curve in a figure.
type Series struct {
	Allocator string
	Points    []Point
}

// Figure is a paper figure being regenerated: named series over a shared
// thread sweep.
type Figure struct {
	Title  string
	Series []Series
}

// Add records a measurement.
func (f *Figure) Add(allocator string, threads int, ops uint64, d time.Duration) {
	mops := float64(ops) / d.Seconds() / 1e6
	for i := range f.Series {
		if f.Series[i].Allocator == allocator {
			f.Series[i].Points = append(f.Series[i].Points, Point{Threads: threads, MopsSec: mops})
			return
		}
	}
	f.Series = append(f.Series, Series{
		Allocator: allocator,
		Points:    []Point{{Threads: threads, MopsSec: mops}},
	})
}

// Print renders the figure as the table of rows the paper plots.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", f.Title)
	width := 12
	for _, s := range f.Series {
		if len(s.Allocator)+1 > width {
			width = len(s.Allocator) + 1
		}
	}
	fmt.Fprintf(w, "%-8s", "threads")
	for _, s := range f.Series {
		fmt.Fprintf(w, "%*s", width, s.Allocator)
	}
	fmt.Fprintln(w)
	// Collect the sorted union of thread counts.
	seen := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			seen[p.Threads] = true
		}
	}
	threads := make([]int, 0, len(seen))
	for t := range seen {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	for _, t := range threads {
		fmt.Fprintf(w, "%-8d", t)
		for _, s := range f.Series {
			v := ""
			for _, p := range s.Points {
				if p.Threads == t {
					v = fmt.Sprintf("%.3f", p.MopsSec)
					break
				}
			}
			fmt.Fprintf(w, "%*s", width, v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// ThreadSweep returns the thread counts to sweep, capped at limit (the
// paper sweeps 1…64; laptop runs cap at the available parallelism).
func ThreadSweep(limit int) []int {
	candidates := []int{1, 2, 4, 8, 16, 32, 48, 64}
	out := make([]int, 0, len(candidates))
	for _, c := range candidates {
		if c <= limit {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
