// Package trace records, synthesizes and replays allocation traces: a
// portable text format of alloc/free events over multiple threads that can
// be replayed against any allocator in the repository. Traces make
// allocator comparisons exactly repeatable (the same object lifetimes and
// sizes, byte for byte) and support differential testing: one trace, three
// allocators, identical semantic outcomes required.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Op is an event kind.
type Op uint8

// Event kinds.
const (
	OpAlloc Op = iota + 1
	OpFree
)

// Event is one allocator operation. IDs name objects: an alloc binds the
// ID, the matching free releases it. Thread is the worker that executes
// the event; a free may run on a different thread than the alloc
// (cross-thread frees, as in Larson).
type Event struct {
	Op     Op
	Thread uint32
	ID     uint64
	Size   uint64 // alloc only
}

// Trace is an ordered multi-thread event list. Events of one thread
// execute in order; events of different threads may interleave, except
// that a free never starts before its alloc completed (Replay enforces
// this with object-level synchronisation).
type Trace struct {
	Threads int
	Events  []Event
}

// ErrBadTrace reports a malformed trace file or an inconsistent event
// sequence.
var ErrBadTrace = errors.New("trace: malformed trace")

// Validate checks trace consistency: every ID is allocated exactly once
// before it is freed at most once, and thread indexes are in range.
func (tr *Trace) Validate() error {
	state := make(map[uint64]int, len(tr.Events)/2) // 1=live, 2=freed
	for i, e := range tr.Events {
		if int(e.Thread) >= tr.Threads {
			return fmt.Errorf("%w: event %d: thread %d of %d", ErrBadTrace, i, e.Thread, tr.Threads)
		}
		switch e.Op {
		case OpAlloc:
			if e.Size == 0 {
				return fmt.Errorf("%w: event %d: zero-size alloc", ErrBadTrace, i)
			}
			if state[e.ID] != 0 {
				return fmt.Errorf("%w: event %d: id %d reused", ErrBadTrace, i, e.ID)
			}
			state[e.ID] = 1
		case OpFree:
			if state[e.ID] != 1 {
				return fmt.Errorf("%w: event %d: free of id %d in state %d", ErrBadTrace, i, e.ID, state[e.ID])
			}
			state[e.ID] = 2
		default:
			return fmt.Errorf("%w: event %d: op %d", ErrBadTrace, i, e.Op)
		}
	}
	return nil
}

// Encode writes the trace in its text format:
//
//	poseidon-trace v1 threads=<n>
//	a <thread> <id> <size>
//	f <thread> <id>
func (tr *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "poseidon-trace v1 threads=%d\n", tr.Threads); err != nil {
		return err
	}
	for _, e := range tr.Events {
		var err error
		switch e.Op {
		case OpAlloc:
			_, err = fmt.Fprintf(bw, "a %d %d %d\n", e.Thread, e.ID, e.Size)
		case OpFree:
			_, err = fmt.Fprintf(bw, "f %d %d\n", e.Thread, e.ID)
		default:
			err = fmt.Errorf("%w: op %d", ErrBadTrace, e.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a trace and validates it.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: missing header", ErrBadTrace)
	}
	header := sc.Text()
	var threads int
	if _, err := fmt.Sscanf(header, "poseidon-trace v1 threads=%d", &threads); err != nil || threads < 1 {
		return nil, fmt.Errorf("%w: bad header %q", ErrBadTrace, header)
	}
	tr := &Trace{Threads: threads}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		parse := func(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
		switch {
		case fields[0] == "a" && len(fields) == 4:
			th, err1 := parse(fields[1])
			id, err2 := parse(fields[2])
			size, err3 := parse(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("%w: line %d", ErrBadTrace, line)
			}
			tr.Events = append(tr.Events, Event{Op: OpAlloc, Thread: uint32(th), ID: id, Size: size})
		case fields[0] == "f" && len(fields) == 3:
			th, err1 := parse(fields[1])
			id, err2 := parse(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: line %d", ErrBadTrace, line)
			}
			tr.Events = append(tr.Events, Event{Op: OpFree, Thread: uint32(th), ID: id})
		default:
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadTrace, line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// SynthConfig parameterises Synthesize.
type SynthConfig struct {
	Threads int
	// OpsPerThread is the number of events each thread executes.
	OpsPerThread int
	// MinSize and MaxSize bound object sizes.
	MinSize, MaxSize uint64
	// LiveTarget is the live-object count each thread hovers around.
	LiveTarget int
	// CrossFreePct is the percentage of frees executed by a different
	// thread than the allocator of the object (Larson-style).
	CrossFreePct int
	Seed         int64
}

// Synthesize generates a random, valid trace.
func Synthesize(cfg SynthConfig) *Trace {
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.OpsPerThread == 0 {
		cfg.OpsPerThread = 1000
	}
	if cfg.MinSize == 0 {
		cfg.MinSize = 16
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize + 1024
	}
	if cfg.LiveTarget == 0 {
		cfg.LiveTarget = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Threads: cfg.Threads}
	nextID := uint64(1)
	live := make([][]uint64, cfg.Threads) // ids allocated, not yet freed
	// Interleave rounds across threads so the trace has realistic mixing.
	for op := 0; op < cfg.OpsPerThread; op++ {
		for th := 0; th < cfg.Threads; th++ {
			doFree := len(live[th]) > 0 &&
				(len(live[th]) >= cfg.LiveTarget || rng.Intn(2) == 0)
			if doFree {
				k := rng.Intn(len(live[th]))
				id := live[th][k]
				live[th][k] = live[th][len(live[th])-1]
				live[th] = live[th][:len(live[th])-1]
				freer := uint32(th)
				if rng.Intn(100) < cfg.CrossFreePct {
					freer = uint32(rng.Intn(cfg.Threads))
				}
				tr.Events = append(tr.Events, Event{Op: OpFree, Thread: freer, ID: id})
			} else {
				size := cfg.MinSize + uint64(rng.Int63n(int64(cfg.MaxSize-cfg.MinSize+1)))
				tr.Events = append(tr.Events, Event{Op: OpAlloc, Thread: uint32(th), ID: nextID, Size: size})
				live[th] = append(live[th], nextID)
				nextID++
			}
		}
	}
	// Drain: free everything still live (on the owning thread).
	for th := range live {
		for _, id := range live[th] {
			tr.Events = append(tr.Events, Event{Op: OpFree, Thread: uint32(th), ID: id})
		}
	}
	return tr
}
