package trace

import (
	"fmt"
	"sync"
	"time"

	"poseidon/internal/alloc"
)

// Result summarises one replay.
type Result struct {
	Ops      uint64
	Duration time.Duration
}

// OpsPerSec returns the replay throughput.
func (r Result) OpsPerSec() float64 { return float64(r.Ops) / r.Duration.Seconds() }

// objTable maps object IDs to live pointers, with object-level waiting so
// a cross-thread free blocks until the corresponding alloc has published
// its pointer (trace order is per-thread; inter-thread order is only
// constrained by object lifetimes, exactly like a real program).
type objTable struct {
	mu   sync.Mutex
	cond *sync.Cond
	ptrs map[uint64]alloc.Ptr
	tags map[uint64]byte
}

func newObjTable(hint int) *objTable {
	t := &objTable{
		ptrs: make(map[uint64]alloc.Ptr, hint),
		tags: make(map[uint64]byte, hint),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func (t *objTable) publish(id uint64, p alloc.Ptr, tag byte) {
	t.mu.Lock()
	t.ptrs[id] = p
	t.tags[id] = tag
	t.mu.Unlock()
	t.cond.Broadcast()
}

func (t *objTable) take(id uint64) (alloc.Ptr, byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if p, ok := t.ptrs[id]; ok {
			tag := t.tags[id]
			delete(t.ptrs, id)
			delete(t.tags, id)
			return p, tag
		}
		t.cond.Wait()
	}
}

// Replay executes the trace against the allocator: one goroutine per
// trace thread, each running its events in order. Every allocated object
// is stamped with a tag that is verified at free time, so any allocator
// bug that hands overlapping memory to two live objects is detected.
func Replay(a alloc.Allocator, tr *Trace) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	perThread := make([][]Event, tr.Threads)
	for _, e := range tr.Events {
		perThread[e.Thread] = append(perThread[e.Thread], e)
	}
	objs := newObjTable(1024)
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	var total uint64
	var totalMu sync.Mutex
	for th := 0; th < tr.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			h, err := a.Thread(th)
			if err != nil {
				fail(err)
				return
			}
			defer h.Close()
			var buf [1]byte
			ops := uint64(0)
			for _, e := range perThread[th] {
				switch e.Op {
				case OpAlloc:
					p, err := h.Alloc(e.Size)
					if err != nil {
						fail(fmt.Errorf("trace: alloc id %d (%d B): %w", e.ID, e.Size, err))
						return
					}
					// Stamp the first byte; verified at free time, so an
					// allocator that hands overlapping memory to two live
					// objects is caught by the later free.
					tag := byte(e.ID%250 + 1)
					buf[0] = tag
					if err := h.Write(p, 0, buf[:]); err != nil {
						fail(err)
						return
					}
					objs.publish(e.ID, p, tag)
				case OpFree:
					p, tag := objs.take(e.ID)
					if err := h.Read(p, 0, buf[:]); err != nil {
						fail(err)
						return
					}
					if buf[0] != tag {
						fail(fmt.Errorf("trace: object %d corrupted (tag %d, got %d) — overlapping allocation",
							e.ID, tag, buf[0]))
						return
					}
					if err := h.Free(p); err != nil {
						fail(fmt.Errorf("trace: free id %d: %w", e.ID, err))
						return
					}
				}
				ops++
			}
			totalMu.Lock()
			total += ops
			totalMu.Unlock()
		}(th)
	}
	wg.Wait()
	if first != nil {
		return Result{}, first
	}
	return Result{Ops: total, Duration: time.Since(start)}, nil
}
