package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"poseidon/internal/benchutil"
)

func TestSynthesizeIsValid(t *testing.T) {
	tr := Synthesize(SynthConfig{
		Threads:      4,
		OpsPerThread: 500,
		CrossFreePct: 30,
		Seed:         1,
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drained: alloc count == free count.
	var allocs, frees int
	for _, e := range tr.Events {
		switch e.Op {
		case OpAlloc:
			allocs++
		case OpFree:
			frees++
		}
	}
	if allocs != frees {
		t.Fatalf("allocs %d != frees %d", allocs, frees)
	}
	if allocs == 0 {
		t.Fatal("empty trace")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := Synthesize(SynthConfig{Threads: 3, OpsPerThread: 100, CrossFreePct: 50, Seed: 7})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Threads != tr.Threads || len(back.Events) != len(tr.Events) {
		t.Fatalf("shape changed: %d/%d events, %d/%d threads",
			len(back.Events), len(tr.Events), back.Threads, tr.Threads)
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], tr.Events[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not a header\n",
		"poseidon-trace v1 threads=0\n",
		"poseidon-trace v1 threads=2\nx 1 2 3\n",
		"poseidon-trace v1 threads=2\na 1 1\n",             // short alloc
		"poseidon-trace v1 threads=2\nf 0 1\n",             // free before alloc
		"poseidon-trace v1 threads=2\na 5 1 64\n",          // thread out of range
		"poseidon-trace v1 threads=2\na 0 1 64\na 0 1 8\n", // id reuse
		"poseidon-trace v1 threads=2\na 0 1 0\n",           // zero size
	}
	for i, s := range bad {
		if _, err := Decode(strings.NewReader(s)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	src := "poseidon-trace v1 threads=1\n# comment\n\na 0 1 64\nf 0 1\n"
	tr, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("events = %d", len(tr.Events))
	}
}

// Differential test: the same trace must replay cleanly (no overlaps, no
// failed frees) on all three allocators.
func TestReplayDifferential(t *testing.T) {
	tr := Synthesize(SynthConfig{
		Threads:      4,
		OpsPerThread: 400,
		MinSize:      16,
		MaxSize:      2048,
		LiveTarget:   48,
		CrossFreePct: 25,
		Seed:         11,
	})
	for _, name := range benchutil.AllocatorNames {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := benchutil.NewAllocator(name, benchutil.Config{Threads: 4, HeapBytes: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			res, err := Replay(a, tr)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != uint64(len(tr.Events)) {
				t.Fatalf("replayed %d of %d events", res.Ops, len(tr.Events))
			}
			if res.OpsPerSec() <= 0 {
				t.Fatal("bad throughput")
			}
		})
	}
}

func TestReplayLargeSizesDifferential(t *testing.T) {
	// Exercise the large paths of all allocators with one trace.
	tr := Synthesize(SynthConfig{
		Threads:      2,
		OpsPerThread: 100,
		MinSize:      4 << 10,
		MaxSize:      1 << 20,
		LiveTarget:   8,
		CrossFreePct: 50,
		Seed:         3,
	})
	for _, name := range benchutil.AllocatorNames {
		a, err := benchutil.NewAllocator(name, benchutil.Config{Threads: 2, HeapBytes: 256 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(a, tr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = a.Close()
	}
}

func TestReplayRejectsInvalidTrace(t *testing.T) {
	a, err := benchutil.NewAllocator("poseidon", benchutil.Config{Threads: 1, HeapBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bad := &Trace{Threads: 1, Events: []Event{{Op: OpFree, Thread: 0, ID: 1}}}
	if _, err := Replay(a, bad); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v", err)
	}
}
