package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the trace parser against arbitrary input: it must
// either return a valid trace (that re-encodes and re-decodes to itself)
// or an error — never panic.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("poseidon-trace v1 threads=2\na 0 1 64\nf 1 1\n"))
	f.Add([]byte("poseidon-trace v1 threads=1\n# comment\na 0 9 8\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("poseidon-trace v1 threads=0\n"))
	f.Add([]byte("poseidon-trace v1 threads=4\nf 0 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode returned an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back.Events) != len(tr.Events) || back.Threads != tr.Threads {
			t.Fatal("decode∘encode not idempotent")
		}
	})
}
