// Package plog implements Poseidon's two persistent logging schemes over an
// NVMM window: the undo log that makes every metadata mutation
// failure-atomic, and the micro log that records the allocations of an open
// transactional allocation (paper §4.5, §5.2, §5.3, §5.8).
//
// Both logs live inside the MPK-protected metadata region of a sub-heap (or
// the superblock), so they are guarded by the same protection discipline as
// the metadata they protect.
package plog

import (
	"errors"
	"fmt"

	"poseidon/internal/mpk"
)

// Undo log persistent layout (all offsets relative to the log base):
//
//	+0   count   u64  — number of committed entries (the commit word)
//	+8   cursor  u64  — byte offset, within the entry area, one past the
//	                    last committed entry (lets Open avoid a scan)
//	+64  entry area — entries appended back to back:
//	       [target u64][length u64][data … padded to 8 bytes]
//
// Protocol: Snapshot appends entries (volatile), Seal flushes them and
// commits by persisting count+cursor, the caller then mutates the target
// metadata, flushes it, and Truncate resets the log. A crash between Seal
// and Truncate replays the entries in reverse, restoring the pre-mutation
// bytes. Replay is idempotent: crashing during recovery and replaying again
// is safe (§5.8).
const (
	undoHeaderSize = 64
	entryHeader    = 16
)

// Common log errors.
var (
	ErrLogFull  = errors.New("plog: log capacity exceeded")
	ErrLogDirty = errors.New("plog: log contains committed entries (crash recovery required)")
	errCorrupt  = errors.New("plog: corrupt log header")
)

// UndoLog is a write-ahead log of original metadata bytes.
type UndoLog struct {
	w    mpk.Window
	base uint64
	size uint64

	// Volatile mirrors of the persistent header.
	count  uint64
	cursor uint64 // end of committed entries, relative to entry area
	tail   uint64 // end of appended (possibly unsealed) entries
	unseal uint64 // entries appended since the last Seal

	// Volatile accounting: how many Seal/Truncate commit points this log
	// has issued since open. Combined commits exist to shrink these — one
	// shared seal and truncate can cover a whole group of operations — so
	// tests and benches read them to prove the amortization happened.
	seals     uint64
	truncates uint64

	scratch []byte // reused entry-assembly buffer
}

// OpenUndoLog attaches to (or initialises) the undo log stored at
// [base, base+size) behind w. The region must be zeroed at first use; a
// zeroed header is the empty log.
func OpenUndoLog(w mpk.Window, base, size uint64) (*UndoLog, error) {
	if size < undoHeaderSize+entryHeader+8 {
		return nil, fmt.Errorf("plog: undo log region too small (%d bytes)", size)
	}
	count, err := w.ReadU64(base)
	if err != nil {
		return nil, err
	}
	cursor, err := w.ReadU64(base + 8)
	if err != nil {
		return nil, err
	}
	if cursor > size-undoHeaderSize {
		return nil, fmt.Errorf("%w: cursor %d beyond capacity", errCorrupt, cursor)
	}
	if count == 0 {
		// A torn truncate may persist (count=0, stale cursor). count is
		// authoritative: the log is empty, so appending restarts at zero.
		cursor = 0
	}
	return &UndoLog{
		w: w, base: base, size: size,
		count: count, cursor: cursor, tail: cursor,
	}, nil
}

// IsEmpty reports whether the log holds no committed entries — i.e. the last
// operation completed and truncated it.
func (l *UndoLog) IsEmpty() bool { return l.count == 0 }

// Count returns the number of committed entries.
func (l *UndoLog) Count() uint64 { return l.count }

// Seals returns how many non-empty Seal commit points the log has issued
// since open (volatile; a seal covering a whole combined group counts once).
func (l *UndoLog) Seals() uint64 { return l.seals }

// Truncates returns how many Truncate commit points the log has issued
// since open (volatile).
func (l *UndoLog) Truncates() uint64 { return l.truncates }

// entryArea returns the device offset of the entry area.
func (l *UndoLog) entryArea() uint64 { return l.base + undoHeaderSize }

// Snapshot appends the current contents of [target, target+n) to the log.
// The entry is volatile until Seal. Callers snapshot every metadata range
// they are about to mutate, seal once, then mutate.
func (l *UndoLog) Snapshot(target, n uint64) error {
	if n == 0 {
		return nil
	}
	padded := (n + 7) &^ 7
	need := entryHeader + padded
	if l.tail+need > l.size-undoHeaderSize {
		return fmt.Errorf("%w: undo log (%d bytes appended)", ErrLogFull, l.tail)
	}
	if uint64(cap(l.scratch)) < need {
		l.scratch = make([]byte, need*2)
	}
	buf := l.scratch[:need]
	clear(buf[entryHeader+n:]) // zero the padding tail of the reused buffer
	putU64(buf[0:], target)
	putU64(buf[8:], n)
	if err := l.w.Read(target, buf[entryHeader:entryHeader+n]); err != nil {
		return err
	}
	if err := l.w.Write(l.entryArea()+l.tail, buf); err != nil {
		return err
	}
	l.tail += need
	l.unseal++
	return nil
}

// Seal makes every entry appended since the last Seal durable and commits
// them with a single atomic update of the header. After Seal returns, a
// crash will undo the mutations the caller is about to make.
func (l *UndoLog) Seal() error {
	if l.unseal == 0 {
		return nil
	}
	// 1. Flush the appended entry bytes.
	if err := l.w.Flush(l.entryArea()+l.cursor, l.tail-l.cursor); err != nil {
		return err
	}
	l.w.Fence()
	// 2. Commit: persist the new cursor, then the count (the commit word).
	// Replay reads entries strictly by walking count entries from zero, so
	// a torn header (new cursor, old count) is harmless.
	if err := l.w.WriteU64(l.base+8, l.tail); err != nil {
		return err
	}
	if err := l.w.WriteU64(l.base, l.count+l.unseal); err != nil {
		return err
	}
	if err := l.w.Flush(l.base, 16); err != nil {
		return err
	}
	l.w.Fence()
	l.count += l.unseal
	l.cursor = l.tail
	l.unseal = 0
	l.seals++
	return nil
}

// Truncate discards all entries, marking the protected mutation complete.
// The caller must have flushed its metadata mutations first.
//
// Store order matters: the count (commit word) is zeroed before the cursor.
// Both live in one cacheline, so a crash can only tear *between* the two
// stores; zeroing count first makes every tear read as an empty log. The
// reverse order could persist (count>0, cursor=0) — a header that lies
// about its entries.
func (l *UndoLog) Truncate() error {
	if err := l.w.WriteU64(l.base, 0); err != nil {
		return err
	}
	if err := l.w.WriteU64(l.base+8, 0); err != nil {
		return err
	}
	if err := l.w.Flush(l.base, 16); err != nil {
		return err
	}
	l.w.Fence()
	l.count, l.cursor, l.tail, l.unseal = 0, 0, 0, 0
	l.truncates++
	return nil
}

// Replay restores every committed entry in reverse order, persists the
// restored bytes, then truncates the log. Replaying an empty log is a no-op.
// Replay is idempotent.
func (l *UndoLog) Replay() error {
	if l.count == 0 {
		// Drop any unsealed garbage.
		l.tail, l.unseal = l.cursor, 0
		return nil
	}
	// Walk forward collecting entry positions, then restore in reverse.
	type entry struct {
		pos    uint64 // offset of data within entry area
		target uint64
		length uint64
	}
	entries := make([]entry, 0, l.count)
	pos := uint64(0)
	for i := uint64(0); i < l.count; i++ {
		target, err := l.w.ReadU64(l.entryArea() + pos)
		if err != nil {
			return err
		}
		length, err := l.w.ReadU64(l.entryArea() + pos + 8)
		if err != nil {
			return err
		}
		padded := (length + 7) &^ 7
		if length == 0 || pos+entryHeader+padded > l.cursor {
			return fmt.Errorf("%w: entry %d overruns committed area", errCorrupt, i)
		}
		entries = append(entries, entry{pos: pos + entryHeader, target: target, length: length})
		pos += entryHeader + padded
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		buf := make([]byte, e.length)
		if err := l.w.Read(l.entryArea()+e.pos, buf); err != nil {
			return err
		}
		if err := l.w.Write(e.target, buf); err != nil {
			return err
		}
		if err := l.w.Flush(e.target, e.length); err != nil {
			return err
		}
	}
	l.w.Fence()
	return l.Truncate()
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
