package plog

import "testing"

func TestCacheEntryRoundTrip(t *testing.T) {
	cases := []struct {
		rel   uint64
		shard uint16
	}{
		{0, 0}, {1, 1}, {64, 3}, {MaxCacheRel, 65535}, {1 << 20, 7},
	}
	for _, c := range cases {
		word := EncodeCacheEntry(c.rel, c.shard)
		if word == 0 {
			t.Fatalf("Encode(%d, %d) = 0; zero must mean empty", c.rel, c.shard)
		}
		rel, shard, ok := DecodeCacheEntry(word)
		if !ok || rel != c.rel || shard != c.shard {
			t.Fatalf("Decode(Encode(%d, %d)) = (%d, %d, %v)", c.rel, c.shard, rel, shard, ok)
		}
	}
}

func TestCacheEntryZeroInvalid(t *testing.T) {
	if _, _, ok := DecodeCacheEntry(0); ok {
		t.Fatal("zero word decoded as valid")
	}
}

func TestCacheEntryBitFlipDetected(t *testing.T) {
	word := EncodeCacheEntry(12345, 9)
	for bit := 0; bit < 64; bit++ {
		flipped := word ^ 1<<uint(bit)
		if flipped == 0 {
			continue
		}
		rel, shard, ok := DecodeCacheEntry(flipped)
		if ok && rel == 12345 && shard == 9 {
			t.Fatalf("bit %d flip not detected", bit)
		}
	}
}

func TestManifestGeometry(t *testing.T) {
	m := NewManifest(4096, 512)
	if m.Slots() != 512 {
		t.Fatalf("Slots = %d", m.Slots())
	}
	if got := m.WordOff(0); got != 4096 {
		t.Fatalf("WordOff(0) = %d", got)
	}
	if got := m.WordOff(10); got != 4096+80 {
		t.Fatalf("WordOff(10) = %d", got)
	}
}
