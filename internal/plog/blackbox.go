package plog

import (
	"encoding/binary"
	"sort"
)

// Black-box flight recorder ring (the crash-surviving mirror of the DRAM
// event journal plus a sampled stream of op spans).
//
// Arena layout:
//
//	+0      header slot A (one cacheline)
//	+64     header slot B (one cacheline)
//	+128    record ring: capacity() slots of BoxRecordSize bytes each
//
// The header follows the profile side-table's A/B discipline, but its role
// differs: it is NOT the publish commit point. Each ring record is
// individually self-checksummed and sequence-congruent (record seq s lives
// at slot s % capacity, always), so a batch of records becomes durable with
// one flush pass over the written range and a single fence — no header
// write per publish. Replay validates every slot independently; a record
// whose store was torn by a crash simply fails its checksum and drops out.
// The header only carries boot metadata (epoch, a sequence high-water mark)
// and is rewritten at open (adopting the newest valid slot and bumping the
// epoch) and at clean close.
const (
	// BoxMagic marks a black-box header slot ("POSBLBOX" little endian).
	BoxMagic uint64 = 0x584f424c42534f50
	// BoxRecMagic marks a record slot.
	BoxRecMagic uint32 = 0xb1ac_b0c5
	// BoxHeaderSize is one header slot (a cacheline).
	BoxHeaderSize = 64
	// BoxSlots is the header slot count (A/B).
	BoxSlots = 2
	// BoxRecordSize is the fixed encoded record size: 64 bytes of fields +
	// BoxDetailCap bytes of detail text, two cachelines total.
	BoxRecordSize = 128
	// BoxDetailCap bounds the detail string carried by one record; longer
	// details are truncated at encode time.
	BoxDetailCap = BoxRecordSize - 64
)

// Box record types.
const (
	// BoxEvent mirrors a DRAM journal event; Kind is the obs.EventKind.
	BoxEvent uint8 = 1
	// BoxSpan carries a sampled op span; Kind is the obs.Op.
	BoxSpan uint8 = 2
)

// BoxHeader is the decoded A/B header slot.
type BoxHeader struct {
	Gen     uint64 // header generation; newest valid slot wins
	Epoch   uint64 // boot epoch the writer was on
	NextSeq uint64 // record-sequence high-water at header write
}

// BoxRecord is one decoded flight-recorder entry.
type BoxRecord struct {
	Seq     uint64 // ring sequence; slot = Seq % capacity
	Type    uint8  // BoxEvent or BoxSpan
	Kind    uint8  // obs.EventKind (events) or obs.Op (spans)
	Subheap int32  // -1 when not sub-heap scoped
	Lane    int32  // span lane; -1 for events
	WallNS  int64  // wall-clock emission time, UnixNano
	DurNS   int64  // span duration; 0 for events
	Aux0    uint64 // span flushes; 0 for events
	Aux1    uint64 // span fences; 0 for events
	Detail  string // event detail text, truncated to BoxDetailCap
}

// BoxArena describes the black-box region inside the heap image.
type BoxArena struct {
	base uint64
	size uint64
}

// NewBoxArena wraps a device range. size == 0 yields an invalid arena
// (images provisioned before the recorder existed).
func NewBoxArena(base, size uint64) BoxArena { return BoxArena{base: base, size: size} }

// Valid reports whether the arena can hold headers plus at least 8 records.
func (a BoxArena) Valid() bool { return a.Capacity() >= 8 }

// Capacity returns the record-slot count.
func (a BoxArena) Capacity() uint64 {
	if a.size < BoxSlots*BoxHeaderSize+BoxRecordSize {
		return 0
	}
	return (a.size - BoxSlots*BoxHeaderSize) / BoxRecordSize
}

// HeaderOff returns the device offset of header slot i.
func (a BoxArena) HeaderOff(i int) uint64 { return a.base + uint64(i)*BoxHeaderSize }

// RecordsOff returns the device offset of record slot 0.
func (a BoxArena) RecordsOff() uint64 { return a.base + BoxSlots*BoxHeaderSize }

// SlotOff returns the device offset of the slot record seq occupies.
func (a BoxArena) SlotOff(seq uint64) uint64 {
	return a.RecordsOff() + (seq%a.Capacity())*BoxRecordSize
}

// EncodeBoxHeader serializes a header slot. The checksum is seeded with the
// generation, so a stale slot can never validate against a newer payload.
func EncodeBoxHeader(h BoxHeader) [BoxHeaderSize]byte {
	var buf [BoxHeaderSize]byte
	binary.LittleEndian.PutUint64(buf[0:], BoxMagic)
	binary.LittleEndian.PutUint64(buf[8:], h.Gen)
	binary.LittleEndian.PutUint64(buf[16:], h.Epoch)
	binary.LittleEndian.PutUint64(buf[24:], h.NextSeq)
	binary.LittleEndian.PutUint64(buf[32:], SiteChecksum(h.Gen, buf[16:32]))
	return buf
}

// DecodeBoxHeader validates and decodes a header slot. ok is false when the
// magic or checksum does not match — a blank slot, a torn write, or foreign
// bytes all decode identically as "not a header".
func DecodeBoxHeader(buf []byte) (BoxHeader, bool) {
	if len(buf) < BoxHeaderSize {
		return BoxHeader{}, false
	}
	if binary.LittleEndian.Uint64(buf[0:]) != BoxMagic {
		return BoxHeader{}, false
	}
	h := BoxHeader{
		Gen:     binary.LittleEndian.Uint64(buf[8:]),
		Epoch:   binary.LittleEndian.Uint64(buf[16:]),
		NextSeq: binary.LittleEndian.Uint64(buf[24:]),
	}
	if binary.LittleEndian.Uint64(buf[32:]) != SiteChecksum(h.Gen, buf[16:32]) {
		return BoxHeader{}, false
	}
	return h, true
}

// AdoptBoxHeader picks the boot header from the two slots: the valid slot
// with the highest generation. torn reports that at least one slot held
// non-blank bytes that failed validation AND no valid slot existed — a
// fresh (all-blank) arena is not torn.
func AdoptBoxHeader(slots ...[]byte) (best BoxHeader, slot int, torn bool) {
	slot = -1
	dirty := false
	for i, buf := range slots {
		if h, ok := DecodeBoxHeader(buf); ok {
			if slot < 0 || h.Gen > best.Gen {
				best, slot = h, i
			}
			continue
		}
		if !allZero(buf) {
			dirty = true
		}
	}
	return best, slot, slot < 0 && dirty
}

// EncodeBoxRecord serializes one record. The checksum is seeded with the
// record's own sequence number and covers every other byte of the slot, so
// a torn store, a stale slot claiming a new sequence, or a record flushed
// to the wrong slot all fail validation on replay.
func EncodeBoxRecord(r BoxRecord) [BoxRecordSize]byte {
	detail := r.Detail
	if len(detail) > BoxDetailCap {
		detail = detail[:BoxDetailCap]
	}
	var buf [BoxRecordSize]byte
	binary.LittleEndian.PutUint32(buf[0:], BoxRecMagic)
	buf[4] = r.Type
	buf[5] = r.Kind
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(detail)))
	binary.LittleEndian.PutUint64(buf[8:], r.Seq)
	// buf[16:24] is the checksum word, computed last over the zeroed slot.
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.WallNS))
	binary.LittleEndian.PutUint32(buf[32:], uint32(r.Subheap))
	binary.LittleEndian.PutUint32(buf[36:], uint32(r.Lane))
	binary.LittleEndian.PutUint64(buf[40:], uint64(r.DurNS))
	binary.LittleEndian.PutUint64(buf[48:], r.Aux0)
	binary.LittleEndian.PutUint64(buf[56:], r.Aux1)
	copy(buf[64:], detail)
	sum := SiteChecksum(r.Seq, buf[:])
	binary.LittleEndian.PutUint64(buf[16:], sum)
	return buf
}

// DecodeBoxRecord validates and decodes one record slot.
func DecodeBoxRecord(buf []byte) (BoxRecord, bool) {
	if len(buf) < BoxRecordSize {
		return BoxRecord{}, false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != BoxRecMagic {
		return BoxRecord{}, false
	}
	r := BoxRecord{
		Type:    buf[4],
		Kind:    buf[5],
		Seq:     binary.LittleEndian.Uint64(buf[8:]),
		WallNS:  int64(binary.LittleEndian.Uint64(buf[24:])),
		Subheap: int32(binary.LittleEndian.Uint32(buf[32:])),
		Lane:    int32(binary.LittleEndian.Uint32(buf[36:])),
		DurNS:   int64(binary.LittleEndian.Uint64(buf[40:])),
		Aux0:    binary.LittleEndian.Uint64(buf[48:]),
		Aux1:    binary.LittleEndian.Uint64(buf[56:]),
	}
	detailLen := int(binary.LittleEndian.Uint16(buf[6:]))
	if detailLen > BoxDetailCap {
		return BoxRecord{}, false
	}
	sum := binary.LittleEndian.Uint64(buf[16:])
	var scratch [BoxRecordSize]byte
	copy(scratch[:], buf[:BoxRecordSize])
	for i := 16; i < 24; i++ {
		scratch[i] = 0
	}
	if sum != SiteChecksum(r.Seq, scratch[:]) {
		return BoxRecord{}, false
	}
	r.Detail = string(buf[64 : 64+detailLen])
	return r, true
}

// ReplayBox reconstructs the timeline from the raw record region (capacity
// slots of BoxRecordSize bytes). Every slot is validated independently:
// a valid record must also sit at its sequence-congruent slot, so a record
// that was being relocated by a buggy writer cannot masquerade. Returns the
// surviving records in ascending sequence order, plus the count of torn
// slots — non-blank slots that failed validation, i.e. the crash-torn tail
// of an unsealed batch (or media damage). Blank slots are neither.
func ReplayBox(region []byte, capacity uint64) (records []BoxRecord, torn int) {
	for slot := uint64(0); slot < capacity; slot++ {
		buf := region[slot*BoxRecordSize : (slot+1)*BoxRecordSize]
		r, ok := DecodeBoxRecord(buf)
		if ok && r.Seq%capacity == slot {
			records = append(records, r)
			continue
		}
		if !allZero(buf) {
			torn++
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	return records, torn
}

// allZero reports whether buf is entirely zero bytes (a never-written slot).
func allZero(buf []byte) bool {
	for _, b := range buf {
		if b != 0 {
			return false
		}
	}
	return true
}
