package plog

// Persistent allocation-site side-table: a compact, checksummed serialization
// of the heap profiler's site table, stored inside the heap image so a leak
// profile survives crashes and restarts.
//
// The arena holds TWO slots, written alternately (A/B double buffering like
// the sub-heap metadata mirror): a snapshot write goes to the slot NOT named
// by the newest valid header, payload first, fence, then its one-cacheline
// header, fence. A crash at any point leaves the previous slot's header and
// payload untouched, so the newest *valid* slot is always a complete,
// self-consistent snapshot — possibly one generation stale, never torn.
// Validity is structural: magic + length bound + checksum over (seq,
// payload). A slot that fails these checks is simply not a snapshot; the
// reader falls back to the other slot or, when both fail on a non-blank
// arena, reports a torn table. Torn tables only ever reset the profile —
// they carry no allocator metadata, so they can never quarantine a sub-heap
// or affect allocation correctness.
//
// Arena layout (base-relative):
//
//	+0    slot 0 header (64 bytes, one cacheline)
//	+64   slot 1 header (64 bytes)
//	+128  slot 0 payload (payloadCap bytes)
//	+128+payloadCap  slot 1 payload
//
// Header cacheline (little-endian u64 words):
//
//	word 0  magic   "POSSITES"
//	word 1  seq     snapshot generation (monotonic across both slots)
//	word 2  len     payload byte length
//	word 3  sum     checksum over seq ++ payload
//	word 4  epoch   boot epoch that wrote the snapshot
//	words 5..7 reserved (zero)
//
// Payload blob:
//
//	u64 count
//	repeat count times:
//	  u64 hash          symbolized-frame identity hash (restart-stable key)
//	  u64 liveObjects   int64 bit pattern
//	  u64 liveBytes     int64 bit pattern
//	  u64 allocObjects
//	  u64 allocBytes
//	  u64 freeObjects
//	  u64 freeBytes
//	  u64 firstEpoch
//	  u16 frameCount
//	  repeat frameCount times:
//	    u16 len(func) ++ func bytes
//	    u16 len(file) ++ file bytes
//	    u32 line
//
// Frames are stored symbolized (strings, not PCs): raw PCs are meaningless
// after a restart — a recompiled binary reuses the same addresses for
// different code — while function/file/line survive any rebuild that keeps
// the call site.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// SiteMagic is the side-table header magic ("POSSITES", little-endian).
	SiteMagic = 0x5345544953534F50

	// SiteHeaderSize is one header slot: a single cacheline, so the header
	// store is covered by one flush and cannot tear across lines.
	SiteHeaderSize = 64

	// SiteSlots is the number of A/B snapshot slots.
	SiteSlots = 2

	// siteMaxFrames bounds the frames persisted per site; deeper stacks
	// are truncated (the leading application frames are what identify a
	// site).
	siteMaxFrames = 8

	// siteMaxStr bounds one persisted function/file string.
	siteMaxStr = 512
)

// ErrSiteTableTorn reports an arena whose slots are non-blank yet none
// validates — a snapshot write was interrupted in a way that also lost the
// previous generation (e.g. media corruption across both headers).
var ErrSiteTableTorn = errors.New("plog: site side-table torn")

// SiteFrame is one symbolized frame of a persisted allocation site.
type SiteFrame struct {
	Func string
	File string
	Line uint32
}

// SiteRecord is one allocation site in a persisted snapshot.
type SiteRecord struct {
	Hash         uint64
	LiveObjects  int64
	LiveBytes    int64
	AllocObjects uint64
	AllocBytes   uint64
	FreeObjects  uint64
	FreeBytes    uint64
	FirstEpoch   uint64
	Frames       []SiteFrame
}

// SiteHeader is the decoded form of one slot header.
type SiteHeader struct {
	Seq        uint64
	PayloadLen uint64
	Checksum   uint64
	Epoch      uint64
}

// SiteChecksum mixes a snapshot generation and payload into the header
// check value (FNV-1a seeded with seq, finalized with splitmix64 so every
// input bit avalanches; a torn or bit-flipped payload fails the check).
func SiteChecksum(seq uint64, payload []byte) uint64 {
	h := uint64(0xCBF29CE484222325) ^ seq*0x9E3779B97F4A7C15
	for _, b := range payload {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// EncodeSiteHeader serializes a header into its 64-byte cacheline.
func EncodeSiteHeader(h SiteHeader) [SiteHeaderSize]byte {
	var buf [SiteHeaderSize]byte
	binary.LittleEndian.PutUint64(buf[0:], SiteMagic)
	binary.LittleEndian.PutUint64(buf[8:], h.Seq)
	binary.LittleEndian.PutUint64(buf[16:], h.PayloadLen)
	binary.LittleEndian.PutUint64(buf[24:], h.Checksum)
	binary.LittleEndian.PutUint64(buf[32:], h.Epoch)
	return buf
}

// DecodeSiteHeader parses a header cacheline. ok is false when the magic is
// absent (blank or foreign bytes) — checksum validation against the payload
// is the caller's job via SiteChecksum.
func DecodeSiteHeader(buf []byte) (SiteHeader, bool) {
	if len(buf) < SiteHeaderSize || binary.LittleEndian.Uint64(buf[0:]) != SiteMagic {
		return SiteHeader{}, false
	}
	return SiteHeader{
		Seq:        binary.LittleEndian.Uint64(buf[8:]),
		PayloadLen: binary.LittleEndian.Uint64(buf[16:]),
		Checksum:   binary.LittleEndian.Uint64(buf[24:]),
		Epoch:      binary.LittleEndian.Uint64(buf[32:]),
	}, true
}

// SiteArena describes the side-table arena geometry at device offset base
// spanning size bytes. Like Manifest it carries no I/O handle; core reads
// and writes through its protection windows.
type SiteArena struct {
	base uint64
	size uint64
}

// NewSiteArena describes an arena. size below the minimum usable footprint
// yields a zero-capacity arena (Valid() false).
func NewSiteArena(base, size uint64) SiteArena { return SiteArena{base: base, size: size} }

// Valid reports whether the arena can hold at least a trivial snapshot.
func (a SiteArena) Valid() bool { return a.PayloadCap() >= 16 }

// PayloadCap is the byte capacity of one payload slot.
func (a SiteArena) PayloadCap() uint64 {
	if a.size <= SiteSlots*SiteHeaderSize {
		return 0
	}
	return (a.size - SiteSlots*SiteHeaderSize) / SiteSlots &^ 7
}

// HeaderOff returns the device offset of slot i's header cacheline.
func (a SiteArena) HeaderOff(i int) uint64 { return a.base + uint64(i)*SiteHeaderSize }

// PayloadOff returns the device offset of slot i's payload region.
func (a SiteArena) PayloadOff(i int) uint64 {
	return a.base + SiteSlots*SiteHeaderSize + uint64(i)*a.PayloadCap()
}

// siteSize returns the encoded byte size of one record.
func siteSize(s *SiteRecord) uint64 {
	n := uint64(8*8 + 2)
	fr := s.Frames
	if len(fr) > siteMaxFrames {
		fr = fr[:siteMaxFrames]
	}
	for _, f := range fr {
		n += 2 + uint64(min(len(f.Func), siteMaxStr))
		n += 2 + uint64(min(len(f.File), siteMaxStr))
		n += 4
	}
	return n
}

// EncodeSites serializes sites into a payload blob of at most maxBytes.
// Callers pass sites ordered most-important-first (by live bytes); records
// that do not fit are dropped from the tail and counted in dropped — a
// bounded arena degrades to a top-K profile, never to a torn one.
func EncodeSites(sites []SiteRecord, maxBytes uint64) (blob []byte, dropped int) {
	if maxBytes < 8 {
		return nil, len(sites)
	}
	buf := make([]byte, 8, min(maxBytes, 1<<20))
	count := uint64(0)
	for i := range sites {
		s := &sites[i]
		if uint64(len(buf))+siteSize(s) > maxBytes {
			dropped++
			continue
		}
		var w [8]byte
		put := func(v uint64) {
			binary.LittleEndian.PutUint64(w[:], v)
			buf = append(buf, w[:]...)
		}
		put(s.Hash)
		put(uint64(s.LiveObjects))
		put(uint64(s.LiveBytes))
		put(s.AllocObjects)
		put(s.AllocBytes)
		put(s.FreeObjects)
		put(s.FreeBytes)
		put(s.FirstEpoch)
		fr := s.Frames
		if len(fr) > siteMaxFrames {
			fr = fr[:siteMaxFrames]
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fr)))
		for _, f := range fr {
			fn, fl := f.Func, f.File
			if len(fn) > siteMaxStr {
				fn = fn[:siteMaxStr]
			}
			if len(fl) > siteMaxStr {
				fl = fl[:siteMaxStr]
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fn)))
			buf = append(buf, fn...)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fl)))
			buf = append(buf, fl...)
			buf = binary.LittleEndian.AppendUint32(buf, f.Line)
		}
		count++
	}
	binary.LittleEndian.PutUint64(buf[0:], count)
	return buf, dropped
}

// DecodeSites parses a payload blob. The blob is checksum-validated before
// it reaches here, so a decode error indicates a codec bug or a checksum
// collision — it is still reported, never panicked on.
func DecodeSites(blob []byte) ([]SiteRecord, error) {
	if len(blob) < 8 {
		return nil, fmt.Errorf("plog: site blob too short (%d bytes)", len(blob))
	}
	count := binary.LittleEndian.Uint64(blob)
	if count > uint64(len(blob))/8 {
		return nil, fmt.Errorf("plog: site blob count %d exceeds blob", count)
	}
	pos := 8
	need := func(n int) bool { return pos+n <= len(blob) }
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(blob[pos:])
		pos += 8
		return v
	}
	out := make([]SiteRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		if !need(8*8 + 2) {
			return nil, fmt.Errorf("plog: site blob truncated at record %d", i)
		}
		var s SiteRecord
		s.Hash = u64()
		s.LiveObjects = int64(u64())
		s.LiveBytes = int64(u64())
		s.AllocObjects = u64()
		s.AllocBytes = u64()
		s.FreeObjects = u64()
		s.FreeBytes = u64()
		s.FirstEpoch = u64()
		nf := int(binary.LittleEndian.Uint16(blob[pos:]))
		pos += 2
		if nf > siteMaxFrames {
			return nil, fmt.Errorf("plog: site record %d frame count %d exceeds max", i, nf)
		}
		for j := 0; j < nf; j++ {
			var fr SiteFrame
			for k := 0; k < 2; k++ {
				if !need(2) {
					return nil, fmt.Errorf("plog: site blob truncated in record %d frames", i)
				}
				l := int(binary.LittleEndian.Uint16(blob[pos:]))
				pos += 2
				if l > siteMaxStr || !need(l) {
					return nil, fmt.Errorf("plog: site record %d frame string overruns blob", i)
				}
				str := string(blob[pos : pos+l])
				pos += l
				if k == 0 {
					fr.Func = str
				} else {
					fr.File = str
				}
			}
			if !need(4) {
				return nil, fmt.Errorf("plog: site blob truncated in record %d frames", i)
			}
			fr.Line = binary.LittleEndian.Uint32(blob[pos:])
			pos += 4
			s.Frames = append(s.Frames, fr)
		}
		out = append(out, s)
	}
	return out, nil
}
