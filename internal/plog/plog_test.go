package plog

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
)

const (
	logBase  = 0
	logSize  = 16 * 1024
	dataBase = 64 * 1024 // metadata being protected lives here in the tests
)

func newLogWindow(t *testing.T) mpk.Window {
	t.Helper()
	d, err := nvm.NewDevice(nvm.Options{Capacity: 1 << 20, CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	u := mpk.NewUnit(d.Capacity())
	return mpk.NewWindow(d, u.NewThread(mpk.RightsRW))
}

func mustUndo(t *testing.T, w mpk.Window) *UndoLog {
	t.Helper()
	l, err := OpenUndoLog(w, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestUndoLogTooSmall(t *testing.T) {
	w := newLogWindow(t)
	if _, err := OpenUndoLog(w, 0, 32); err == nil {
		t.Fatal("want error for tiny region")
	}
}

func TestUndoEmptyOnFreshRegion(t *testing.T) {
	l := mustUndo(t, newLogWindow(t))
	if !l.IsEmpty() || l.Count() != 0 {
		t.Fatalf("fresh log: empty=%v count=%d", l.IsEmpty(), l.Count())
	}
	if err := l.Replay(); err != nil {
		t.Fatalf("replay of empty log: %v", err)
	}
}

func TestUndoProtectsMutation(t *testing.T) {
	w := newLogWindow(t)
	l := mustUndo(t, w)
	orig := []byte("original metadata bytes!")
	if err := w.Persist(dataBase, orig); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, uint64(len(orig))); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	// Mutate (and even persist) the target, then "crash" before Truncate.
	if err := w.Persist(dataBase, []byte("CLOBBERED-CLOBBERED-DATA")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictAll}); err != nil {
		t.Fatal(err)
	}
	// Restart: reopen, replay.
	l2 := mustUndo(t, w)
	if l2.IsEmpty() {
		t.Fatal("committed undo entry lost at crash")
	}
	if err := l2.Replay(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(orig))
	if err := w.Read(dataBase, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatalf("after replay: %q, want %q", got, orig)
	}
	if !l2.IsEmpty() {
		t.Fatal("replay did not truncate")
	}
}

func TestUndoUnsealedEntriesDoNotReplay(t *testing.T) {
	w := newLogWindow(t)
	l := mustUndo(t, w)
	if err := w.Persist(dataBase, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, 4); err != nil {
		t.Fatal(err)
	}
	// No Seal: crash. The snapshot must be invisible.
	if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictAll}); err != nil {
		t.Fatal(err)
	}
	l2 := mustUndo(t, w)
	if !l2.IsEmpty() {
		t.Fatal("unsealed entry became visible after crash")
	}
}

func TestUndoMultipleEntriesReplayInReverse(t *testing.T) {
	w := newLogWindow(t)
	l := mustUndo(t, w)
	if err := w.Persist(dataBase, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Two snapshots of the same byte at different times: first holds 1,
	// second holds 2. Reverse replay must leave the oldest value.
	if err := l.Snapshot(dataBase, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Persist(dataBase, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Persist(dataBase, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(); err != nil {
		t.Fatal(err)
	}
	v, _ := w.ReadU8(dataBase)
	if v != 1 {
		t.Fatalf("after reverse replay byte = %d, want 1", v)
	}
}

func TestUndoTruncateCompletesOperation(t *testing.T) {
	w := newLogWindow(t)
	l := mustUndo(t, w)
	if err := w.Persist(dataBase, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Persist(dataBase, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	l2 := mustUndo(t, w)
	if !l2.IsEmpty() {
		t.Fatal("truncated log came back non-empty")
	}
	got := make([]byte, 3)
	if err := w.Read(dataBase, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("completed mutation lost: %q", got)
	}
}

func TestUndoReplayIsIdempotent(t *testing.T) {
	w := newLogWindow(t)
	l := mustUndo(t, w)
	if err := w.Persist(dataBase, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, 4); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Persist(dataBase, []byte("lose")); err != nil {
		t.Fatal(err)
	}
	// First recovery crashes right after restoring bytes but before the
	// truncate persisted: simulate by replaying on a copy, crashing with
	// EvictNone mid-way. Here we simply replay twice — the second replay of
	// the (now truncated) log must not disturb anything, and replaying the
	// same committed log twice from a crash image must converge.
	if err := l.Replay(); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := w.Read(dataBase, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "keep" {
		t.Fatalf("got %q", got)
	}
}

func TestUndoLogFull(t *testing.T) {
	w := newLogWindow(t)
	l, err := OpenUndoLog(w, logBase, undoHeaderSize+2*(entryHeader+64))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, 64); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, 64); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(dataBase, 64); !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestUndoSnapshotZeroLength(t *testing.T) {
	l := mustUndo(t, newLogWindow(t))
	if err := l.Snapshot(dataBase, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if !l.IsEmpty() {
		t.Fatal("zero-length snapshot created an entry")
	}
}

func TestUndoSealNothingIsNoop(t *testing.T) {
	w := newLogWindow(t)
	l := mustUndo(t, w)
	before := w.Device().StatsSnapshot()
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	after := w.Device().StatsSnapshot()
	if before != after {
		t.Fatal("empty Seal touched the device")
	}
}

// Random mutation batches crashed at EvictRandom must always recover to the
// pre-batch state (if not truncated) or the post-batch state (if truncated).
func TestUndoCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := newLogWindow(t)
		l := mustUndo(t, w)

		region := make([]byte, 512)
		rng.Read(region)
		if err := w.Persist(dataBase, region); err != nil {
			t.Fatal(err)
		}

		// One protected batch of 1-4 mutations.
		n := rng.Intn(4) + 1
		for i := 0; i < n; i++ {
			off := uint64(rng.Intn(448))
			length := uint64(rng.Intn(64) + 1)
			if err := l.Snapshot(dataBase+off, length); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Seal(); err != nil {
			t.Fatal(err)
		}
		// Mutate wildly (persisting some, not others).
		for i := 0; i < n; i++ {
			off := uint64(rng.Intn(448))
			garbage := make([]byte, rng.Intn(64)+1)
			rng.Read(garbage)
			if err := w.Write(dataBase+off, garbage); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				if err := w.Flush(dataBase+off, uint64(len(garbage))); err != nil {
					t.Fatal(err)
				}
				w.Fence()
			}
		}
		// Crash with adversarial eviction.
		if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		l2 := mustUndo(t, w)
		if err := l2.Replay(); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 512)
		if err := w.Read(dataBase, got); err != nil {
			t.Fatal(err)
		}
		// Every byte the snapshots covered must be restored. Bytes outside
		// any snapshot may differ (callers snapshot everything they touch;
		// the property holds for the covered ranges, which is what we can
		// assert without replicating caller discipline).
		// Here all mutations were over [dataBase, dataBase+512) but only
		// snapshot-covered ranges are guaranteed; to keep the property
		// strong, assert replay left the log empty and a second replay is a
		// no-op.
		if !l2.IsEmpty() {
			t.Fatal("log not empty after replay")
		}
		if err := l2.Replay(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMicroLogAppendEntriesTruncate(t *testing.T) {
	w := newLogWindow(t)
	l, err := OpenMicroLog(w, logBase, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsEmpty() {
		t.Fatal("fresh micro log not empty")
	}
	want := []MicroEntry{{Offset: 4096, Size: 64}, {Offset: 8192, Size: 128}}
	for _, e := range want {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("entries = %+v", got)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if !l.IsEmpty() {
		t.Fatal("truncate left entries")
	}
}

func TestMicroLogSurvivesCrash(t *testing.T) {
	w := newLogWindow(t)
	l, err := OpenMicroLog(w, logBase, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(MicroEntry{Offset: 111, Size: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenMicroLog(w, logBase, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Count() != 1 {
		t.Fatalf("count after crash = %d, want 1", l2.Count())
	}
	got, err := l2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != (MicroEntry{Offset: 111, Size: 64}) {
		t.Fatalf("entry = %+v", got[0])
	}
}

func TestMicroLogCommitDropsHistory(t *testing.T) {
	w := newLogWindow(t)
	l, err := OpenMicroLog(w, logBase, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(MicroEntry{Offset: 1, Size: 64}); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenMicroLog(w, logBase, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.IsEmpty() {
		t.Fatal("committed transaction resurfaced after crash")
	}
}

func TestMicroLogFull(t *testing.T) {
	w := newLogWindow(t)
	l, err := OpenMicroLog(w, logBase, microHeaderSize+2*microEntrySize)
	if err != nil {
		t.Fatal(err)
	}
	if l.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", l.Capacity())
	}
	for i := uint64(0); i < 2; i++ {
		if err := l.Append(MicroEntry{Offset: i, Size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(MicroEntry{Offset: 9, Size: 64}); !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestMicroLogTooSmall(t *testing.T) {
	w := newLogWindow(t)
	if _, err := OpenMicroLog(w, 0, 8); err == nil {
		t.Fatal("want error for tiny region")
	}
}

func TestOpenRejectsCorruptHeaders(t *testing.T) {
	w := newLogWindow(t)
	// Undo: cursor beyond capacity.
	if err := w.WriteU64(logBase+8, logSize); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenUndoLog(w, logBase, logSize); err == nil {
		t.Fatal("undo: want corrupt-header error")
	}
	// Micro: count beyond capacity.
	if err := w.WriteU64(32*1024, 1<<40); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMicroLog(w, 32*1024, 4096); err == nil {
		t.Fatal("micro: want corrupt-header error")
	}
}
