package plog

import (
	"fmt"

	"poseidon/internal/mpk"
)

// Micro log persistent layout (offsets relative to the log base):
//
//	+0   count u64 — committed entry count (the commit word)
//	+64  entry area: 16-byte records, one per transactional allocation
//	     (8-byte sub-heap-relative offset, 8-byte size — enough for
//	     recovery to free the block)
//
// The micro log is the history of memory allocations inside an open
// transactional allocation (poseidon_tx_alloc). It is truncated when the
// transaction commits (is_end == true); a non-empty micro log at restart
// means the transaction never committed, so recovery frees every logged
// address to prevent a persistent memory leak (paper §4.5, §5.3).
const (
	microHeaderSize = 64
	microEntrySize  = 16
)

// MicroEntry is one logged transactional allocation.
type MicroEntry struct {
	Offset uint64 // sub-heap-relative offset of the allocated block
	Size   uint64 // block size
}

// MicroLog is the per-sub-heap transactional-allocation log.
type MicroLog struct {
	w    mpk.Window
	base uint64
	size uint64

	count uint64 // volatile mirror of the persistent count
}

// OpenMicroLog attaches to (or initialises) the micro log stored at
// [base, base+size) behind w. A zeroed region is the empty log.
func OpenMicroLog(w mpk.Window, base, size uint64) (*MicroLog, error) {
	if size < microHeaderSize+microEntrySize {
		return nil, fmt.Errorf("plog: micro log region too small (%d bytes)", size)
	}
	count, err := w.ReadU64(base)
	if err != nil {
		return nil, err
	}
	if microHeaderSize+count*microEntrySize > size {
		return nil, fmt.Errorf("%w: count %d beyond capacity", errCorrupt, count)
	}
	return &MicroLog{w: w, base: base, size: size, count: count}, nil
}

// IsEmpty reports whether no transaction is in flight.
func (l *MicroLog) IsEmpty() bool { return l.count == 0 }

// Count returns the number of logged allocations.
func (l *MicroLog) Count() uint64 { return l.count }

// Capacity returns the maximum number of allocations one transaction can
// hold.
func (l *MicroLog) Capacity() uint64 {
	return (l.size - microHeaderSize) / microEntrySize
}

// Append durably logs one allocation: the entry is persisted, then the
// count is bumped with an atomic persist. After Append returns, a crash
// rolls the allocation back.
func (l *MicroLog) Append(e MicroEntry) error {
	if l.count >= l.Capacity() {
		return fmt.Errorf("%w: micro log (%d entries)", ErrLogFull, l.count)
	}
	at := l.base + microHeaderSize + l.count*microEntrySize
	var buf [microEntrySize]byte
	putU64(buf[0:], e.Offset)
	putU64(buf[8:], e.Size)
	if err := l.w.Persist(at, buf[:]); err != nil {
		return err
	}
	if err := l.w.PersistU64(l.base, l.count+1); err != nil {
		return err
	}
	l.count++
	return nil
}

// Entries returns the committed entries, oldest first.
func (l *MicroLog) Entries() ([]MicroEntry, error) {
	out := make([]MicroEntry, 0, l.count)
	for i := uint64(0); i < l.count; i++ {
		at := l.base + microHeaderSize + i*microEntrySize
		off, err := l.w.ReadU64(at)
		if err != nil {
			return nil, err
		}
		size, err := l.w.ReadU64(at + 8)
		if err != nil {
			return nil, err
		}
		out = append(out, MicroEntry{Offset: off, Size: size})
	}
	return out, nil
}

// Truncate commits the transaction by atomically persisting a zero count.
func (l *MicroLog) Truncate() error {
	if err := l.w.PersistU64(l.base, 0); err != nil {
		return err
	}
	l.count = 0
	return nil
}
