package plog

import (
	"strings"
	"testing"
)

func TestBoxRecordRoundTrip(t *testing.T) {
	r := BoxRecord{
		Seq: 41, Type: BoxEvent, Kind: 7, Subheap: -1, Lane: 3,
		WallNS: 1234567890, DurNS: 55, Aux0: 2, Aux1: 9,
		Detail: "sub-heap 3 quarantined",
	}
	buf := EncodeBoxRecord(r)
	got, ok := DecodeBoxRecord(buf[:])
	if !ok {
		t.Fatal("round-trip record failed to decode")
	}
	if got != r {
		t.Fatalf("round trip = %+v, want %+v", got, r)
	}
}

func TestBoxRecordDetailTruncation(t *testing.T) {
	long := strings.Repeat("x", 3*BoxDetailCap)
	buf := EncodeBoxRecord(BoxRecord{Seq: 1, Type: BoxSpan, Detail: long})
	got, ok := DecodeBoxRecord(buf[:])
	if !ok {
		t.Fatal("truncated record failed to decode")
	}
	if got.Detail != long[:BoxDetailCap] {
		t.Fatalf("detail = %q (len %d), want %d-byte prefix", got.Detail, len(got.Detail), BoxDetailCap)
	}
}

func TestBoxRecordRejectsCorruption(t *testing.T) {
	buf := EncodeBoxRecord(BoxRecord{Seq: 9, Type: BoxEvent, Kind: 1, Detail: "ok"})
	for off := 0; off < BoxRecordSize; off++ {
		bad := buf
		bad[off] ^= 0x40
		if _, ok := DecodeBoxRecord(bad[:]); ok {
			t.Fatalf("single-byte corruption at offset %d went undetected", off)
		}
	}
	var blank [BoxRecordSize]byte
	if _, ok := DecodeBoxRecord(blank[:]); ok {
		t.Fatal("blank slot decoded as a record")
	}
}

func TestBoxHeaderRoundTripAndAdopt(t *testing.T) {
	a := EncodeBoxHeader(BoxHeader{Gen: 3, Epoch: 2, NextSeq: 100})
	b := EncodeBoxHeader(BoxHeader{Gen: 4, Epoch: 3, NextSeq: 140})
	h, slot, torn := AdoptBoxHeader(a[:], b[:])
	if torn || slot != 1 || h.Gen != 4 || h.Epoch != 3 || h.NextSeq != 140 {
		t.Fatalf("adopt = %+v slot %d torn %v", h, slot, torn)
	}

	// A torn newer slot falls back to the older valid one.
	b[20] ^= 0xff
	h, slot, torn = AdoptBoxHeader(a[:], b[:])
	if torn || slot != 0 || h.Gen != 3 {
		t.Fatalf("fallback adopt = %+v slot %d torn %v", h, slot, torn)
	}

	// Both slots damaged: torn, no adoption.
	a[20] ^= 0xff
	if _, slot, torn = AdoptBoxHeader(a[:], b[:]); slot != -1 || !torn {
		t.Fatalf("double-torn adopt slot %d torn %v", slot, torn)
	}

	// Fresh arena (all blank): invalid but not torn.
	var blank [BoxHeaderSize]byte
	if _, slot, torn = AdoptBoxHeader(blank[:], blank[:]); slot != -1 || torn {
		t.Fatalf("blank adopt slot %d torn %v", slot, torn)
	}
}

func TestBoxArenaGeometry(t *testing.T) {
	a := NewBoxArena(4096, 64<<10)
	if !a.Valid() {
		t.Fatal("64 KiB arena should be valid")
	}
	wantCap := uint64((64<<10 - BoxSlots*BoxHeaderSize) / BoxRecordSize)
	if a.Capacity() != wantCap {
		t.Fatalf("capacity = %d, want %d", a.Capacity(), wantCap)
	}
	if a.HeaderOff(1) != 4096+BoxHeaderSize {
		t.Fatalf("header slot 1 at %d", a.HeaderOff(1))
	}
	if a.SlotOff(wantCap+3) != a.RecordsOff()+3*BoxRecordSize {
		t.Fatalf("slot wrap: seq %d at %d", wantCap+3, a.SlotOff(wantCap+3))
	}
	if NewBoxArena(0, 0).Valid() {
		t.Fatal("zero arena must be invalid")
	}
}

func TestReplayBoxWrapAndTorn(t *testing.T) {
	const capRecords = 8
	region := make([]byte, capRecords*BoxRecordSize)
	write := func(seq uint64) {
		buf := EncodeBoxRecord(BoxRecord{Seq: seq, Type: BoxEvent, Kind: 2, Subheap: int32(seq)})
		copy(region[(seq%capRecords)*BoxRecordSize:], buf[:])
	}
	// 13 records into an 8-slot ring: slots hold seqs 5..12.
	for seq := uint64(0); seq < 13; seq++ {
		write(seq)
	}
	records, torn := ReplayBox(region, capRecords)
	if torn != 0 {
		t.Fatalf("torn = %d on a clean ring", torn)
	}
	if len(records) != capRecords {
		t.Fatalf("replayed %d records, want %d", len(records), capRecords)
	}
	for i, r := range records {
		if r.Seq != uint64(5+i) {
			t.Fatalf("record %d seq = %d, want %d", i, r.Seq, 5+i)
		}
	}

	// Tear the newest record mid-slot: it drops, everything else survives.
	region[(12%capRecords)*BoxRecordSize+70] ^= 0x01
	records, torn = ReplayBox(region, capRecords)
	if torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
	if len(records) != capRecords-1 || records[len(records)-1].Seq != 11 {
		t.Fatalf("post-tear replay = %d records, last %+v", len(records), records[len(records)-1])
	}
}
