package plog

import (
	"reflect"
	"strings"
	"testing"
)

func sampleSiteRecords() []SiteRecord {
	return []SiteRecord{
		{
			Hash: 0xDEADBEEFCAFE, LiveObjects: 3, LiveBytes: 384,
			AllocObjects: 5, AllocBytes: 640, FirstEpoch: 1,
			Frames: []SiteFrame{
				{Func: "main.leakA", File: "main.go", Line: 42},
				{Func: "main.run", File: "main.go", Line: 10},
			},
		},
		{
			// Net-negative live counts happen when cross-thread frees outrun
			// the sampled allocs of a site; the codec must round-trip them.
			Hash: 1, LiveObjects: -1, LiveBytes: -128,
			AllocObjects: 2, AllocBytes: 256, FirstEpoch: 7,
			Frames: []SiteFrame{{Func: "pkg.fn", File: "f.go", Line: 1}},
		},
	}
}

func TestSiteCodecRoundTrip(t *testing.T) {
	want := sampleSiteRecords()
	blob, dropped := EncodeSites(want, 64<<10)
	if dropped != 0 {
		t.Fatalf("dropped %d records with ample space", dropped)
	}
	got, err := DecodeSites(blob)
	if err != nil {
		t.Fatalf("DecodeSites: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got:  %+v\n want: %+v", got, want)
	}
}

func TestSiteHeaderRoundTrip(t *testing.T) {
	want := SiteHeader{Seq: 9, PayloadLen: 1234, Checksum: 0xABCD, Epoch: 3}
	buf := EncodeSiteHeader(want)
	got, ok := DecodeSiteHeader(buf[:])
	if !ok {
		t.Fatal("valid header rejected")
	}
	if got != want {
		t.Fatalf("header round trip: got %+v, want %+v", got, want)
	}
	// Blank and garbage cachelines are not headers.
	var blank [SiteHeaderSize]byte
	if _, ok := DecodeSiteHeader(blank[:]); ok {
		t.Fatal("blank cacheline decoded as header")
	}
	garbage := buf
	garbage[0] ^= 0xFF // break the magic
	if _, ok := DecodeSiteHeader(garbage[:]); ok {
		t.Fatal("bad-magic cacheline decoded as header")
	}
	if _, ok := DecodeSiteHeader(buf[:SiteHeaderSize-1]); ok {
		t.Fatal("short buffer decoded as header")
	}
}

func TestSiteChecksumDependsOnSeqAndPayload(t *testing.T) {
	payload := []byte("some site table payload bytes")
	base := SiteChecksum(5, payload)
	if SiteChecksum(6, payload) == base {
		t.Fatal("checksum ignores the sequence number")
	}
	flipped := append([]byte(nil), payload...)
	flipped[3] ^= 0x01
	if SiteChecksum(5, flipped) == base {
		t.Fatal("checksum ignores a payload bit flip")
	}
	if SiteChecksum(5, payload) != base {
		t.Fatal("checksum not deterministic")
	}
}

func TestEncodeSitesDropsFromTail(t *testing.T) {
	// Three records; budget sized so only the first fits. The rest are
	// dropped and counted — a bounded arena degrades to top-K, never tears.
	recs := make([]SiteRecord, 3)
	for i := range recs {
		recs[i] = SiteRecord{
			Hash: uint64(i + 1), LiveObjects: 1, LiveBytes: 64,
			AllocObjects: 1, AllocBytes: 64, FirstEpoch: 1,
			Frames: []SiteFrame{{Func: "fn", File: "f.go", Line: uint32(i)}},
		}
	}
	one := siteSize(&recs[0])
	blob, dropped := EncodeSites(recs, 8+one)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	got, err := DecodeSites(blob)
	if err != nil {
		t.Fatalf("DecodeSites: %v", err)
	}
	if len(got) != 1 || got[0].Hash != 1 {
		t.Fatalf("kept records = %+v, want just hash 1", got)
	}
	// A budget below the count word drops everything.
	if blob, dropped := EncodeSites(recs, 4); blob != nil || dropped != len(recs) {
		t.Fatalf("tiny budget: blob=%v dropped=%d", blob, dropped)
	}
}

func TestEncodeSitesTruncatesStringsAndFrames(t *testing.T) {
	rec := SiteRecord{Hash: 7, AllocObjects: 1}
	for i := 0; i < siteMaxFrames+4; i++ {
		rec.Frames = append(rec.Frames, SiteFrame{
			Func: strings.Repeat("f", siteMaxStr+100),
			File: "x.go", Line: uint32(i),
		})
	}
	blob, dropped := EncodeSites([]SiteRecord{rec}, 64<<10)
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	got, err := DecodeSites(blob)
	if err != nil {
		t.Fatalf("DecodeSites: %v", err)
	}
	if len(got) != 1 || len(got[0].Frames) != siteMaxFrames {
		t.Fatalf("frames = %d, want %d", len(got[0].Frames), siteMaxFrames)
	}
	if len(got[0].Frames[0].Func) != siteMaxStr {
		t.Fatalf("func string = %d bytes, want %d", len(got[0].Frames[0].Func), siteMaxStr)
	}
}

func TestDecodeSitesRejectsCorruption(t *testing.T) {
	blob, _ := EncodeSites(sampleSiteRecords(), 64<<10)
	cases := map[string][]byte{
		"empty":      nil,
		"short":      blob[:4],
		"truncated":  blob[:len(blob)-3],
		"huge count": append([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, blob[8:]...),
	}
	for name, b := range cases {
		if _, err := DecodeSites(b); err == nil {
			t.Errorf("%s blob decoded without error", name)
		}
	}
}

func TestSiteArenaGeometry(t *testing.T) {
	a := NewSiteArena(1000, SiteSlots*SiteHeaderSize+160)
	if !a.Valid() {
		t.Fatal("arena with payload space reports invalid")
	}
	if got := a.PayloadCap(); got != 80 {
		t.Fatalf("PayloadCap = %d, want 80", got)
	}
	if a.HeaderOff(0) != 1000 || a.HeaderOff(1) != 1000+SiteHeaderSize {
		t.Fatalf("header offsets = %d, %d", a.HeaderOff(0), a.HeaderOff(1))
	}
	if a.PayloadOff(0) != 1000+SiteSlots*SiteHeaderSize {
		t.Fatalf("payload 0 offset = %d", a.PayloadOff(0))
	}
	if a.PayloadOff(1) != a.PayloadOff(0)+a.PayloadCap() {
		t.Fatalf("payload 1 offset = %d", a.PayloadOff(1))
	}
	// Too small for even a trivial snapshot: zero-capacity, invalid.
	small := NewSiteArena(0, SiteSlots*SiteHeaderSize)
	if small.Valid() || small.PayloadCap() != 0 {
		t.Fatalf("tiny arena: valid=%v cap=%d", small.Valid(), small.PayloadCap())
	}
}
