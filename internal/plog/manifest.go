package plog

// Cache manifest: the persistent shadow of a thread's DRAM block magazine.
//
// Each micro-log lane owns a fixed arena of 8-byte manifest words right
// after the lane arena in the superblock region. A thread's magazine keeps
// pre-carved blocks in DRAM for lock-free alloc/free fast paths; every
// cached block is also recorded here so a crash can never leak a magazine:
// recovery decodes the surviving words and returns the blocks to their
// free lists idempotently.
//
// Word layout (little endian):
//
//	bits  0..32  rel+1 — block offset relative to the owning sub-heap's
//	             user region base, biased by one so a valid entry is never
//	             the zero word
//	bits 33..48  sub-heap index of the cached block
//	bits 49..63  checksum over bits 0..48
//
// Like the remote-free ring, an entry is confined to a single atomically
// stored 8-byte word: under torn eviction a word is either its old value
// or its new value, never a blend, so a pure power failure can only leave
// zero (empty) or fully valid words. A word that decodes to neither is
// media corruption by construction and is left in place for the audit.
// Unlike the ring, manifest words are single-writer (the owning thread, or
// the recovery path with the heap quiesced), so they pack eight per
// cacheline instead of one — a whole refill batch persists with a handful
// of line flushes and one fence.
const (
	cacheRelBits   = 33
	cacheShardBits = 16
	cacheBodyBits  = cacheRelBits + cacheShardBits // 49
	cacheRelMask   = 1<<cacheRelBits - 1
	cacheBodyMask  = 1<<cacheBodyBits - 1

	// MaxCacheRel is the largest encodable user-region-relative offset;
	// sub-heap user regions must not exceed it for magazines to be
	// enabled.
	MaxCacheRel = cacheRelMask - 1
)

// cacheChecksum mixes the entry body into a 15-bit check value
// (splitmix64's finalizer — every input bit avalanches, so a single bit
// flip in body or checksum is detected).
func cacheChecksum(body uint64) uint64 {
	x := body + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return x >> cacheBodyBits
}

// EncodeCacheEntry packs a user-region-relative block offset and its
// owning sub-heap index into one manifest word. rel must be ≤ MaxCacheRel.
// The result is never zero (the offset field is biased by one), so the
// zero word always means "empty slot".
func EncodeCacheEntry(rel uint64, shard uint16) uint64 {
	body := (rel + 1) | uint64(shard)<<cacheRelBits
	return body | cacheChecksum(body)<<cacheBodyBits
}

// DecodeCacheEntry unpacks a non-zero manifest word. ok is false when the
// checksum does not match the body — a corrupt entry.
func DecodeCacheEntry(word uint64) (rel uint64, shard uint16, ok bool) {
	body := word & cacheBodyMask
	if word>>cacheBodyBits != cacheChecksum(body) || body&cacheRelMask == 0 {
		return 0, 0, false
	}
	return body&cacheRelMask - 1, uint16(body >> cacheRelBits), true
}

// Manifest is the geometry of one lane's cache-manifest arena: slots
// 8-byte words at consecutive device offsets. It carries no I/O handle —
// the thread, the sub-heap refill path and recovery each read and write
// the words through their own protection windows.
type Manifest struct {
	base  uint64
	slots uint64
}

// NewManifest describes the manifest arena at device offset base holding
// slots words.
func NewManifest(base, slots uint64) Manifest { return Manifest{base: base, slots: slots} }

// Slots returns the word capacity.
func (m Manifest) Slots() uint64 { return m.slots }

// WordOff returns the device offset of word i.
func (m Manifest) WordOff(i uint64) uint64 { return m.base + i*8 }
