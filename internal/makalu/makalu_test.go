package makalu

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"poseidon/internal/alloc"
)

func newTestHeap(t *testing.T, capacity uint64) *Heap {
	t.Helper()
	h, err := New(Options{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestClassOf(t *testing.T) {
	tests := []struct {
		size uint64
		want int
	}{
		{1, 0}, {16, 0}, {17, 1}, {384, 23}, {385, -1}, {400, -1}, {4096, -1},
	}
	for _, tt := range tests {
		if got := classOf(tt.size); got != tt.want {
			t.Errorf("classOf(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestSmallAllocFreeRoundTrip(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, err := h.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	p, err := th.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("makalu data")
	if err := th.Write(p, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := th.Persist(p, 0, uint64(len(want))); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := th.Read(p, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data mismatch")
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestLargeAllocUsesGlobalPath(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	p, err := th.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(p, 4088, 5); err != nil {
		t.Fatal(err)
	}
	_, _, _, large, _ := h.StatsSnapshot()
	if large != 1 {
		t.Fatalf("large allocs = %d", large)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	// Freed pages coalesce back: the whole heap is allocatable again.
	if _, err := th.Alloc(4 << 20); err != nil {
		t.Fatalf("large realloc: %v", err)
	}
}

func TestDistinctPointers(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	seen := map[alloc.Ptr]bool{}
	for i := 0; i < 2000; i++ {
		p, err := th.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("pointer %s handed out twice", h.fmtPtr(p))
		}
		seen[p] = true
	}
}

func TestSpillAndRefillViaReclaimList(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	t1, _ := h.Thread(0)
	// Allocate and free enough to overflow the local list.
	var ptrs []alloc.Ptr
	for i := 0; i < spillAt*3; i++ {
		p, err := t1.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := t1.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	spills, _, _, _, _ := h.StatsSnapshot()
	if spills == 0 {
		t.Fatal("no spill to the global reclaim list")
	}
	t1.Close()
	// A different thread refills from the reclaim list, not a fresh page.
	t2, _ := h.Thread(1)
	defer t2.Close()
	_, _, carvesBefore, _, _ := h.StatsSnapshot()
	if _, err := t2.Alloc(64); err != nil {
		t.Fatal(err)
	}
	_, grabs, carvesAfter, _, _ := h.StatsSnapshot()
	if grabs == 0 {
		t.Fatal("refill did not use the reclaim list")
	}
	if carvesAfter != carvesBefore {
		t.Fatal("refill carved a new page despite reclaim availability")
	}
}

func TestExhaustionLarge(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	n := 0
	for {
		_, err := th.Alloc(64 << 10)
		if errors.Is(err, alloc.ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n > 64 {
			t.Fatal("never exhausted")
		}
	}
	if n == 0 {
		t.Fatal("nothing allocated")
	}
}

func TestConcurrentMixedSizes(t *testing.T) {
	h := newTestHeap(t, 64<<20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := h.Thread(w)
			if err != nil {
				t.Error(err)
				return
			}
			defer th.Close()
			var live []alloc.Ptr
			for i := 0; i < 400; i++ {
				size := uint64(16 + (i*w+i)%1024)
				p, err := th.Alloc(size)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				live = append(live, p)
				if len(live) > 16 {
					if err := th.Free(live[0]); err != nil {
						t.Errorf("worker %d free: %v", w, err)
						return
					}
					live = live[1:]
				}
			}
		}(w)
	}
	wg.Wait()
}

// buildList allocates a linked list of n nodes, each holding a pointer to
// the next in its first word, returning the head.
func buildList(t *testing.T, th alloc.Handle, n int) []alloc.Ptr {
	t.Helper()
	nodes := make([]alloc.Ptr, n)
	for i := range nodes {
		p, err := th.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = p
	}
	for i := 0; i < n-1; i++ {
		if err := th.WriteU64(nodes[i], 0, uint64(nodes[i+1])); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

func TestGCKeepsReachable(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	nodes := buildList(t, th, 10)
	freed, err := h.GC([]alloc.Ptr{nodes[0]})
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("GC freed %d reachable blocks", freed)
	}
}

func TestGCSweepsUnreachable(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	nodes := buildList(t, th, 10)
	// No roots: everything is garbage.
	freed, err := h.GC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if freed != uint64(len(nodes)) {
		t.Fatalf("GC freed %d, want %d", freed, len(nodes))
	}
}

// TestGCLeaksBehindCorruptedPointer demonstrates the paper's §2.2
// criticism: corrupt one pointer inside a reachable object and every
// object behind it becomes invisible to reachability-based recovery — and
// is then swept as garbage even though the application still expects it.
func TestGCLeaksBehindCorruptedPointer(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	nodes := buildList(t, th, 10)
	// The "program bug": the pointer in node 4 is overwritten.
	if err := th.WriteU64(nodes[4], 0, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	freed, err := h.GC([]alloc.Ptr{nodes[0]})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 5..9 are reachable to the application (it has them in its own
	// structures) but invisible to the conservative mark — they are swept.
	if freed != 5 {
		t.Fatalf("GC freed %d blocks behind the corrupted pointer, want 5", freed)
	}
}

func TestGCRejectsInteriorAndGarbageWords(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	q, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Store an interior (q+8) and a wild value in p; neither marks q.
	if err := th.WriteU64(p, 0, uint64(q)+8); err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(p, 8, 12345); err != nil {
		t.Fatal(err)
	}
	freed, err := h.GC([]alloc.Ptr{p})
	if err != nil {
		t.Fatal(err)
	}
	if freed != 1 {
		t.Fatalf("GC freed %d, want 1 (q is unreachable via interior pointer)", freed)
	}
}

func TestMediumClassPath(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	defer th.Close()
	// 500 B sits above the 400 B threshold but far below a page: it must
	// come from the global chunk list at fine granularity.
	seen := map[alloc.Ptr]bool{}
	var ptrs []alloc.Ptr
	for i := 0; i < 100; i++ {
		p, err := th.Alloc(500)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("pointer %#x duplicated", p)
		}
		seen[p] = true
		ptrs = append(ptrs, p)
	}
	_, _, carves, large, _ := h.StatsSnapshot()
	if large != 100 {
		t.Fatalf("global chunk-list ops = %d, want 100", large)
	}
	// ~7 slots of (512+16) per 4 KiB page: 100 allocs ≈ 15 pages, far less
	// than the 100 pages the old page-granular path would burn.
	if carves > 20 {
		t.Fatalf("carved %d pages for 100 medium objects", carves)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// Freed medium slots are reused without carving.
	_, _, carvesBefore, _, _ := h.StatsSnapshot()
	if _, err := th.Alloc(500); err != nil {
		t.Fatal(err)
	}
	_, _, carvesAfter, _, _ := h.StatsSnapshot()
	if carvesAfter != carvesBefore {
		t.Fatal("medium realloc carved a fresh page")
	}
}

func TestMediumBlocksVisibleToGCAndRecovery(t *testing.T) {
	h := newTestHeap(t, 8<<20)
	th, _ := h.Thread(0)
	p, err := th.Alloc(1000) // medium class 1
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(p, 0, 7); err != nil {
		t.Fatal(err)
	}
	garbage, err := th.Alloc(600)
	if err != nil {
		t.Fatal(err)
	}
	_ = garbage
	th.Close()
	freed, err := h.Recover([]alloc.Ptr{p})
	if err != nil {
		t.Fatal(err)
	}
	if freed != 1 {
		t.Fatalf("recovery freed %d medium blocks, want 1 (the garbage)", freed)
	}
	th2, _ := h.Thread(0)
	defer th2.Close()
	v, err := th2.ReadU64(p, 0)
	if err != nil || v != 7 {
		t.Fatalf("reachable medium block lost: %d, %v", v, err)
	}
}
