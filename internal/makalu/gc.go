package makalu

import "poseidon/internal/alloc"

// GC performs Makalu's conservative mark-and-sweep reclamation: every
// allocated block reachable from the roots (by scanning block contents for
// word values that decode to valid block addresses) is kept; everything
// else is swept back to the free lists. This is Makalu's substitute for
// logging-based leak prevention (§2.2).
//
// The paper's criticism is directly observable here: if a program bug
// corrupts a pointer stored inside an object, every object reachable only
// through that pointer is unreachable to the GC and leaks permanently.
//
// GC requires quiescence: no concurrent allocator operations.
func (h *Heap) GC(roots []alloc.Ptr) (freed uint64, err error) {
	// Enumerate allocated blocks: slot offset -> user size.
	allocated := map[uint64]uint64{}
	for p := uint64(0); p < h.npages; p++ {
		state, payload, err := h.pageState(p)
		if err != nil {
			return 0, err
		}
		switch state {
		case pageSmall, pageMedium:
			class := int(payload)
			stride, block := slotStride(class), classBlock(class)
			if state == pageMedium {
				stride, block = mediumStride(class), mediumBlock(class)
			}
			n := uint64(pageSize) / stride
			for i := uint64(0); i < n; i++ {
				slot := h.pageOff(p) + i*stride
				status, err := h.dev.ReadU64(slot + 8)
				if err != nil {
					return 0, err
				}
				if status == statusAllocated {
					allocated[slot] = block
				}
			}
		case pageLargeHead:
			slot := h.pageOff(p)
			status, err := h.dev.ReadU64(slot + 8)
			if err != nil {
				return 0, err
			}
			if status == statusAllocated {
				size, err := h.dev.ReadU64(slot)
				if err != nil {
					return 0, err
				}
				allocated[slot] = size
			}
		}
	}

	// Mark: conservative scan of reachable block contents.
	marked := map[uint64]bool{}
	var queue []uint64
	push := func(userOff uint64) {
		slot, ok := h.blockFromOffset(userOff)
		if !ok {
			return
		}
		if _, isAlloc := allocated[slot]; !isAlloc || marked[slot] {
			return
		}
		marked[slot] = true
		queue = append(queue, slot)
	}
	for _, r := range roots {
		push(uint64(r))
	}
	for len(queue) > 0 {
		slot := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		size := allocated[slot]
		for off := uint64(0); off+8 <= size; off += 8 {
			v, err := h.dev.ReadU64(slot + HeaderSize + off)
			if err != nil {
				return 0, err
			}
			push(v)
		}
	}

	// Sweep: free unmarked blocks through a scratch handle (small blocks
	// land on the reclaim lists via its Close spill).
	scratch := &handle{h: h}
	for slot := range allocated {
		if marked[slot] {
			continue
		}
		if err := scratch.Free(alloc.Ptr(slot + HeaderSize)); err != nil {
			return freed, err
		}
		freed++
	}
	scratch.Close()
	h.stats.GCFreed.Add(freed)
	return freed, nil
}
