package makalu

import "poseidon/internal/alloc"

// handle carries the thread-local free lists — Makalu's fast path for
// allocations under 400 bytes.
type handle struct {
	h     *Heap
	local [numSmallClasses][]uint64 // slot offsets
}

var _ alloc.Handle = (*handle)(nil)

// Alloc implements alloc.Handle.
func (t *handle) Alloc(size uint64) (alloc.Ptr, error) {
	if size == 0 {
		size = 1
	}
	class := classOf(size)
	if class < 0 {
		var off uint64
		var err error
		if mc := mediumClassOf(size); mc >= 0 {
			off, err = t.h.allocMedium(mc, size)
		} else {
			off, err = t.h.allocLarge(size)
		}
		if err != nil {
			return 0, err
		}
		return alloc.Ptr(off), nil
	}
	fl := &t.local[class]
	if len(*fl) == 0 {
		if err := t.refill(class); err != nil {
			return 0, err
		}
	}
	slot := (*fl)[len(*fl)-1]
	*fl = (*fl)[:len(*fl)-1]
	if err := t.h.writeObjHeader(slot, classBlock(class), statusAllocated); err != nil {
		return 0, err
	}
	return alloc.Ptr(slot + HeaderSize), nil
}

// refill takes blocks from the global reclaim list, or carves a fresh page
// — both under the global lock (§2.2).
func (t *handle) refill(class int) error {
	t.h.globalMu.Lock()
	defer t.h.globalMu.Unlock()
	if rl := t.h.reclaim[class]; len(rl) > 0 {
		n := len(rl)
		if n > spillKeep {
			n = spillKeep
		}
		t.local[class] = append(t.local[class], rl[len(rl)-n:]...)
		t.h.reclaim[class] = rl[:len(rl)-n]
		t.h.stats.ReclaimGrabs.Add(1)
		return nil
	}
	slots, err := t.h.carvePageLocked(class)
	if err != nil {
		return err
	}
	t.local[class] = append(t.local[class], slots...)
	return nil
}

// Free implements alloc.Handle. The in-place header size is trusted —
// Makalu shares PMDK's vulnerability class. Freed small blocks join this
// thread's local list; lists over the spill threshold return half their
// blocks to the global reclaim list under the global lock.
func (t *handle) Free(p alloc.Ptr) error {
	slot := uint64(p) - HeaderSize
	size, err := t.h.dev.ReadU64(slot)
	if err != nil {
		return err
	}
	class := classOf(size)
	if class < 0 {
		if mc := mediumClassOf(size); mc >= 0 {
			return t.h.freeMedium(slot, size, mc)
		}
		return t.h.freeLarge(slot, size)
	}
	if err := t.h.writeObjHeader(slot, size, statusFree); err != nil {
		return err
	}
	fl := &t.local[class]
	*fl = append(*fl, slot)
	if len(*fl) > spillAt {
		spill := (*fl)[spillKeep:]
		*fl = (*fl)[:spillKeep:spillKeep]
		t.h.globalMu.Lock()
		t.h.reclaim[class] = append(t.h.reclaim[class], spill...)
		t.h.globalMu.Unlock()
		t.h.stats.ReclaimSpills.Add(1)
	}
	return nil
}

// Write implements alloc.Handle (direct store; no isolation).
func (t *handle) Write(p alloc.Ptr, off uint64, b []byte) error {
	return t.h.dev.Write(uint64(p)+off, b)
}

// Read implements alloc.Handle.
func (t *handle) Read(p alloc.Ptr, off uint64, b []byte) error {
	return t.h.dev.Read(uint64(p)+off, b)
}

// WriteU64 implements alloc.Handle.
func (t *handle) WriteU64(p alloc.Ptr, off uint64, v uint64) error {
	return t.h.dev.WriteU64(uint64(p)+off, v)
}

// ReadU64 implements alloc.Handle.
func (t *handle) ReadU64(p alloc.Ptr, off uint64) (uint64, error) {
	return t.h.dev.ReadU64(uint64(p) + off)
}

// Persist implements alloc.Handle.
func (t *handle) Persist(p alloc.Ptr, off, n uint64) error {
	if err := t.h.dev.Flush(uint64(p)+off, n); err != nil {
		return err
	}
	t.h.dev.Fence()
	return nil
}

// Close implements alloc.Handle: remaining local blocks spill to the
// global reclaim list so other threads can reuse them.
func (t *handle) Close() {
	t.h.globalMu.Lock()
	for class := range t.local {
		t.h.reclaim[class] = append(t.h.reclaim[class], t.local[class]...)
		t.local[class] = nil
	}
	t.h.globalMu.Unlock()
}
