// Package makalu is a design-faithful reproduction of Makalu (Bhandari et
// al., OOPSLA '16), the paper's second baseline. It reproduces the
// mechanisms the paper measures and criticises (§2.2, §7.2):
//
//   - Allocations under 400 bytes come from thread-local free lists;
//     overflowing lists spill half their blocks to a global reclaim list,
//     and empty lists refill from it — both under one global lock.
//   - Allocations of 400 bytes and above are served from a global chunk
//     list under a single global lock (the ≥400 B scalability cliff in
//     Figure 6).
//   - Crash consistency comes from conservative mark-and-sweep garbage
//     collection over the persistent heap rather than logging — cheap in
//     the common case (fewer persists per op than logging allocators) but
//     vulnerable: a corrupted pointer hides every object reachable only
//     through it, leaking them permanently (§2.2).
//
// In-place 16-byte object headers (size, status) precede every block; like
// PMDK there is no metadata isolation.
package makalu

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"poseidon/internal/alloc"
	"poseidon/internal/nvm"
)

const (
	// HeaderSize is the in-place object header: [size u64][status u64].
	HeaderSize = 16

	// LocalThreshold is the 400 B boundary between thread-local and
	// global allocation paths.
	LocalThreshold = 400

	granule = 16
	// Small classes are 16 B … 384 B so that every small block size stays
	// strictly under the 400 B threshold (the free path dispatches on the
	// header size, which must round-trip to the same path).
	numSmallClasses = LocalThreshold/granule - 1

	pageSize        = 4096
	statusAllocated = 1
	statusFree      = 0

	// Page-table states (low byte), payload in the high bits.
	pageFree      = 0
	pageSmall     = 1 // payload = class
	pageLargeHead = 2 // payload = run length in pages
	pageLargeCont = 3
	pageMedium    = 4 // payload = medium class

	// Medium classes (512 B, 1 KiB, 2 KiB) model the fine granularity of
	// Makalu's global chunk list for objects just over the 400 B
	// threshold: still served under the global lock (the scalability
	// cliff), but without rounding every 500 B object to a whole page.
	numMediumClasses = 3
	mediumMax        = 2048

	// spillAt/spillKeep: a local list longer than spillAt returns its
	// excess to the global reclaim list — the global-locking behaviour the
	// paper blames for Makalu's small-allocation scalability loss (§7.2:
	// visible even at 100 allocs + 100 frees of 256 B). Makalu's local
	// caches are small, so the thresholds sit just above one page's worth
	// of blocks.
	spillAt   = 24
	spillKeep = 8

	heapMagic = 0x554c414b414d // "MAKALU"
	hdrPage   = 4096
)

// Options configures the baseline heap.
type Options struct {
	// Capacity is the page-area size in bytes (rounded to whole pages).
	// Default 512 MiB.
	Capacity uint64
	// DeviceStats enables flush counters on the device.
	DeviceStats bool
}

// Heap is a Makalu-like persistent heap.
type Heap struct {
	dev      *nvm.Device
	npages   uint64
	pageBase uint64

	// globalMu guards the free-page spans, the global chunk list and the
	// reclaim lists — Makalu's global metadata (§2.2).
	globalMu   sync.Mutex
	spans      []span                     // free page runs, sorted by start
	reclaim    [numSmallClasses][]uint64  // global reclaim lists (slot offsets)
	mediumFree [numMediumClasses][]uint64 // global chunk-list slots (400 B–2 KiB)

	stats  Stats
	closed atomic.Bool
}

type span struct{ start, length uint64 }

// Stats counts the baseline's characteristic events.
type Stats struct {
	ReclaimSpills atomic.Uint64 // local→global spills (global lock)
	ReclaimGrabs  atomic.Uint64 // global→local refills (global lock)
	PageCarves    atomic.Uint64
	LargeAllocs   atomic.Uint64
	LargeFrees    atomic.Uint64
	GCFreed       atomic.Uint64
}

var _ alloc.Allocator = (*Heap)(nil)

func classOf(size uint64) int {
	if size == 0 {
		size = 1
	}
	if size > uint64(numSmallClasses)*granule {
		return -1
	}
	return int((size+granule-1)/granule) - 1 // 0-based: 16 B is class 0
}

func classBlock(class int) uint64 { return uint64(class+1) * granule }

func slotStride(class int) uint64 { return classBlock(class) + HeaderSize }

// mediumClassOf returns the medium class for size, or -1 when the size
// belongs to the small or large path.
func mediumClassOf(size uint64) int {
	if size <= uint64(numSmallClasses)*granule || size > mediumMax {
		return -1
	}
	switch {
	case size <= 512:
		return 0
	case size <= 1024:
		return 1
	default:
		return 2
	}
}

func mediumBlock(class int) uint64 { return 512 << uint(class) }

func mediumStride(class int) uint64 { return mediumBlock(class) + HeaderSize }

// New creates a fresh Makalu-like heap.
func New(opts Options) (*Heap, error) {
	if opts.Capacity == 0 {
		opts.Capacity = 512 << 20
	}
	npages := opts.Capacity / pageSize
	if npages == 0 {
		return nil, errors.New("makalu: capacity below one page")
	}
	ptBytes := (npages*8 + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	pageBase := uint64(hdrPage) + ptBytes
	dev, err := nvm.NewDevice(nvm.Options{
		Capacity: pageBase + npages*pageSize,
		Stats:    opts.DeviceStats,
	})
	if err != nil {
		return nil, err
	}
	h := &Heap{dev: dev, npages: npages, pageBase: pageBase}
	if err := dev.PersistU64(0, heapMagic); err != nil {
		return nil, err
	}
	h.spans = []span{{start: 0, length: npages}}
	return h, nil
}

// Name implements alloc.Allocator.
func (h *Heap) Name() string { return "makalu" }

// Shards implements alloc.Allocator: Makalu's only parallelism is its
// thread-local lists, so the heap itself has a single shard.
func (h *Heap) Shards() int { return 1 }

// Device exposes the device for corruption demos.
func (h *Heap) Device() *nvm.Device { return h.dev }

// StatsSnapshot returns characteristic-event counters.
func (h *Heap) StatsSnapshot() (spills, grabs, carves, large, gcFreed uint64) {
	return h.stats.ReclaimSpills.Load(), h.stats.ReclaimGrabs.Load(),
		h.stats.PageCarves.Load(),
		h.stats.LargeAllocs.Load() + h.stats.LargeFrees.Load(),
		h.stats.GCFreed.Load()
}

// Close implements alloc.Allocator.
func (h *Heap) Close() error {
	h.closed.Store(true)
	return nil
}

// Thread implements alloc.Allocator.
func (h *Heap) Thread(int) (alloc.Handle, error) {
	if h.closed.Load() {
		return nil, errors.New("makalu: heap closed")
	}
	return &handle{h: h}, nil
}

func (h *Heap) pageTableOff(p uint64) uint64 { return hdrPage + p*8 }
func (h *Heap) pageOff(p uint64) uint64      { return h.pageBase + p*pageSize }

func (h *Heap) setPageState(p uint64, state, payload uint64) error {
	return h.dev.PersistU64(h.pageTableOff(p), state|payload<<8)
}

func (h *Heap) pageState(p uint64) (state, payload uint64, err error) {
	v, err := h.dev.ReadU64(h.pageTableOff(p))
	if err != nil {
		return 0, 0, err
	}
	return v & 0xFF, v >> 8, nil
}

// takeSpan removes npages from the free spans (caller holds globalMu).
func (h *Heap) takeSpanLocked(npages uint64) (uint64, bool) {
	for i, s := range h.spans {
		if s.length >= npages {
			start := s.start
			if s.length == npages {
				h.spans = append(h.spans[:i], h.spans[i+1:]...)
			} else {
				h.spans[i] = span{start: s.start + npages, length: s.length - npages}
			}
			return start, true
		}
	}
	return 0, false
}

// putSpanLocked returns a run to the free spans with coalescing (caller
// holds globalMu).
func (h *Heap) putSpanLocked(s span) {
	i := sort.Search(len(h.spans), func(i int) bool { return h.spans[i].start >= s.start })
	h.spans = append(h.spans, span{})
	copy(h.spans[i+1:], h.spans[i:])
	h.spans[i] = s
	// Merge with the right neighbour, then the left.
	if i+1 < len(h.spans) && h.spans[i].start+h.spans[i].length == h.spans[i+1].start {
		h.spans[i].length += h.spans[i+1].length
		h.spans = append(h.spans[:i+1], h.spans[i+2:]...)
	}
	if i > 0 && h.spans[i-1].start+h.spans[i-1].length == h.spans[i].start {
		h.spans[i-1].length += h.spans[i].length
		h.spans = append(h.spans[:i], h.spans[i+1:]...)
	}
}

// carvePage claims one page for a small class and returns its slot offsets
// (caller holds globalMu).
func (h *Heap) carvePageLocked(class int) ([]uint64, error) {
	start, ok := h.takeSpanLocked(1)
	if !ok {
		return nil, alloc.ErrOutOfMemory
	}
	h.stats.PageCarves.Add(1)
	if err := h.setPageState(start, pageSmall, uint64(class)); err != nil {
		return nil, err
	}
	stride := slotStride(class)
	n := uint64(pageSize) / stride
	slots := make([]uint64, 0, n)
	base := h.pageOff(start)
	for i := uint64(0); i < n; i++ {
		slots = append(slots, base+i*stride)
	}
	return slots, nil
}

// writeObjHeader persists the in-place object header.
func (h *Heap) writeObjHeader(slot, size, status uint64) error {
	if err := h.dev.WriteU64(slot, size); err != nil {
		return err
	}
	if err := h.dev.WriteU64(slot+8, status); err != nil {
		return err
	}
	if err := h.dev.Flush(slot, HeaderSize); err != nil {
		return err
	}
	h.dev.Fence()
	return nil
}

// allocMedium serves 400 B–2 KiB from the global chunk list: per-class
// slot lists refilled by carving pages, all under the global lock (§2.2's
// "global chunk list for allocations greater than 400 bytes").
func (h *Heap) allocMedium(class int, size uint64) (uint64, error) {
	h.globalMu.Lock()
	fl := &h.mediumFree[class]
	if len(*fl) == 0 {
		start, ok := h.takeSpanLocked(1)
		if !ok {
			h.globalMu.Unlock()
			return 0, alloc.ErrOutOfMemory
		}
		h.stats.PageCarves.Add(1)
		if err := h.setPageState(start, pageMedium, uint64(class)); err != nil {
			h.globalMu.Unlock()
			return 0, err
		}
		stride := mediumStride(class)
		for i := uint64(0); i < uint64(pageSize)/stride; i++ {
			*fl = append(*fl, h.pageOff(start)+i*stride)
		}
	}
	slot := (*fl)[len(*fl)-1]
	*fl = (*fl)[:len(*fl)-1]
	h.globalMu.Unlock()
	h.stats.LargeAllocs.Add(1) // global-chunk-list path, like large runs
	if err := h.writeObjHeader(slot, mediumBlock(class), statusAllocated); err != nil {
		return 0, err
	}
	return slot + HeaderSize, nil
}

// freeMedium returns a medium slot to its global class list.
func (h *Heap) freeMedium(slot, size uint64, class int) error {
	if err := h.writeObjHeader(slot, size, statusFree); err != nil {
		return err
	}
	h.globalMu.Lock()
	h.mediumFree[class] = append(h.mediumFree[class], slot)
	h.globalMu.Unlock()
	h.stats.LargeFrees.Add(1)
	return nil
}

// allocLarge serves > 2 KiB as page runs from the global chunk list.
func (h *Heap) allocLarge(size uint64) (uint64, error) {
	npages := (size + HeaderSize + pageSize - 1) / pageSize
	h.globalMu.Lock()
	start, ok := h.takeSpanLocked(npages)
	h.globalMu.Unlock()
	if !ok {
		return 0, alloc.ErrOutOfMemory
	}
	h.stats.LargeAllocs.Add(1)
	if err := h.setPageState(start, pageLargeHead, npages); err != nil {
		return 0, err
	}
	for p := start + 1; p < start+npages; p++ {
		if err := h.setPageState(p, pageLargeCont, 0); err != nil {
			return 0, err
		}
	}
	slot := h.pageOff(start)
	if err := h.writeObjHeader(slot, size, statusAllocated); err != nil {
		return 0, err
	}
	return slot + HeaderSize, nil
}

// freeLarge returns a page run to the global chunk list. The size comes
// from the (trusted) in-place header.
func (h *Heap) freeLarge(slot, size uint64) error {
	start := (slot - h.pageBase) / pageSize
	npages := (size + HeaderSize + pageSize - 1) / pageSize
	if start+npages > h.npages {
		npages = h.npages - start
	}
	if err := h.writeObjHeader(slot, size, statusFree); err != nil {
		return err
	}
	for p := start; p < start+npages; p++ {
		if err := h.setPageState(p, pageFree, 0); err != nil {
			return err
		}
	}
	h.globalMu.Lock()
	h.putSpanLocked(span{start: start, length: npages})
	h.globalMu.Unlock()
	h.stats.LargeFrees.Add(1)
	return nil
}

// blockFromOffset validates that off is a plausible user offset of an
// allocated block and returns its slot. Used by the conservative GC scan.
func (h *Heap) blockFromOffset(off uint64) (uint64, bool) {
	if off < h.pageBase+HeaderSize || off >= h.pageBase+h.npages*pageSize {
		return 0, false
	}
	page := (off - h.pageBase) / pageSize
	state, payload, err := h.pageState(page)
	if err != nil {
		return 0, false
	}
	switch state {
	case pageSmall, pageMedium:
		class := int(payload)
		stride := slotStride(class)
		if state == pageMedium {
			stride = mediumStride(class)
		}
		in := off - h.pageOff(page)
		if in < HeaderSize || (in-HeaderSize)%stride != 0 {
			return 0, false
		}
		return h.pageOff(page) + (in - HeaderSize), true
	case pageLargeHead:
		if off != h.pageOff(page)+HeaderSize {
			return 0, false
		}
		return h.pageOff(page), true
	default:
		return 0, false
	}
}

func (h *Heap) fmtPtr(p alloc.Ptr) string { return fmt.Sprintf("%#x", uint64(p)) }
