package makalu

import (
	"testing"

	"poseidon/internal/alloc"
)

func TestRecoverRebuildsIndexesAndSweeps(t *testing.T) {
	h := newTestHeap(t, 16<<20)
	th, _ := h.Thread(0)

	// Reachable data: a small linked chain anchored at root.
	nodes := buildList(t, th, 5)
	// Garbage: blocks nothing points at, small and large.
	for i := 0; i < 50; i++ {
		if _, err := th.Alloc(64); err != nil {
			t.Fatal(err)
		}
	}
	big, err := th.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_ = big // leaked by the "crash"
	th.Close()

	// "Restart": rebuild DRAM indexes from persistent state, GC from root.
	freed, err := h.Recover([]alloc.Ptr{nodes[0]})
	if err != nil {
		t.Fatal(err)
	}
	if freed != 51 {
		t.Fatalf("recovery freed %d blocks, want 51 (50 small + 1 large)", freed)
	}

	// The allocator is fully functional afterwards; reachable data intact.
	th2, _ := h.Thread(0)
	defer th2.Close()
	v, err := th2.ReadU64(nodes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Ptr(v) != nodes[1] {
		t.Fatalf("chain pointer lost: %#x", v)
	}
	// The leaked large block's space is usable again.
	if _, err := th2.Alloc(1 << 20); err != nil {
		t.Fatalf("large alloc after recovery: %v", err)
	}
}

func TestRecoverEmptyHeap(t *testing.T) {
	h := newTestHeap(t, 4<<20)
	freed, err := h.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("freed %d on an empty heap", freed)
	}
	th, _ := h.Thread(0)
	defer th.Close()
	if _, err := th.Alloc(256); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverPreservesFreeSlotReuse(t *testing.T) {
	h := newTestHeap(t, 4<<20)
	th, _ := h.Thread(0)
	// Allocate and free some blocks so small pages hold free slots, then
	// recover: the reclaim lists must offer them again without carving.
	var ptrs []alloc.Ptr
	for i := 0; i < 20; i++ {
		p, err := th.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	th.Close()
	if _, err := h.Recover(nil); err != nil {
		t.Fatal(err)
	}
	_, _, carvesBefore, _, _ := h.StatsSnapshot()
	th2, _ := h.Thread(0)
	defer th2.Close()
	if _, err := th2.Alloc(64); err != nil {
		t.Fatal(err)
	}
	_, _, carvesAfter, _, _ := h.StatsSnapshot()
	if carvesAfter != carvesBefore {
		t.Fatal("allocation after recovery carved a new page despite rebuilt reclaim lists")
	}
}
