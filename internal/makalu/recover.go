package makalu

import "poseidon/internal/alloc"

// Recover is Makalu's restart path: rebuild the DRAM indexes (free spans
// and reclaim lists) from the persistent page table and object headers,
// then run the conservative mark-and-sweep GC from the application's roots
// to reclaim anything a crash leaked (§2.2). Existing handles must be
// discarded; their thread-local lists are stale.
func (h *Heap) Recover(roots []alloc.Ptr) (freed uint64, err error) {
	if err := h.rebuildIndexes(); err != nil {
		return 0, err
	}
	return h.GC(roots)
}

// rebuildIndexes reconstructs spans and reclaim lists by scanning the page
// table — a whole-heap scan, in contrast with Poseidon's constant-size log
// replay (§5.1); BenchmarkRecovery* quantifies the difference.
func (h *Heap) rebuildIndexes() error {
	h.globalMu.Lock()
	defer h.globalMu.Unlock()
	h.spans = nil
	for c := range h.reclaim {
		h.reclaim[c] = nil
	}
	for c := range h.mediumFree {
		h.mediumFree[c] = nil
	}
	var runStart uint64
	inRun := false
	for p := uint64(0); p <= h.npages; p++ {
		var state, payload uint64
		var err error
		if p < h.npages {
			state, payload, err = h.pageState(p)
			if err != nil {
				return err
			}
		}
		if p < h.npages && state == pageFree {
			if !inRun {
				runStart, inRun = p, true
			}
			continue
		}
		if inRun {
			h.putSpanLocked(span{start: runStart, length: p - runStart})
			inRun = false
		}
		if p == h.npages {
			break
		}
		if state == pageSmall || state == pageMedium {
			class := int(payload)
			stride := slotStride(class)
			if state == pageMedium {
				stride = mediumStride(class)
			}
			n := uint64(pageSize) / stride
			for i := uint64(0); i < n; i++ {
				slot := h.pageOff(p) + i*stride
				status, err := h.dev.ReadU64(slot + 8)
				if err != nil {
					return err
				}
				if status != statusFree {
					continue
				}
				if state == pageSmall {
					h.reclaim[class] = append(h.reclaim[class], slot)
				} else {
					h.mediumFree[class] = append(h.mediumFree[class], slot)
				}
			}
		}
	}
	return nil
}
