package core

import (
	"fmt"
	"math/bits"

	"poseidon/internal/memblock"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

// Per-thread block magazines (Options.Magazines): the lock-free fast path
// for small allocations.
//
// A magazine is a DRAM stack of pre-carved block offsets per small size
// class. Alloc pops — no lock, no flush, no device metadata read; a
// same-shard Free pushes. The persistent shadow is the thread's cache
// manifest (plog.Manifest, one 8-byte checksummed word per cached block,
// adjacent to its micro-log lane): refill writes its entries inside the
// carve transaction's commit hook with one flush+fence for the whole
// batch, so a crash can never leak a magazine — recovery returns every
// surviving entry's block to its free list idempotently.
//
// Fast-path pops and pushes update their manifest word with a plain
// store. Durability of an individual pop/push therefore defers to the
// next explicit sync point (Thread.SyncMagazines or Thread.Close): after
// a crash, a dropped push-entry replays as if the free never happened,
// and a resurrected pre-pop entry rolls the allocation back — the same
// visibility hazard as a transactional allocation whose lane never
// committed, now extended to the magazined singleton path.
//
// Known limitation: a block sitting in one thread's magazine is still
// StatusAllocated on the device, so a buggy free of it from a DIFFERENT
// thread is accepted by the locked path instead of being rejected as a
// double free. The owning thread detects its own double frees via the
// track map below.

const (
	// magStateCached marks a tracked block currently cached in the
	// magazine (vs popped out to the application).
	magStateCached = 1

	// maxMagTrack bounds the track map. Cached blocks are always tracked
	// (they are bounded by classes×capacity and correctness depends on
	// them); beyond the bound, popped blocks simply go untracked — their
	// frees take the safe locked path.
	maxMagTrack = 1 << 15
)

// magazine is the DRAM half of a thread's block cache.
type magazine struct {
	classes int
	cap     int
	man     plog.Manifest

	// blocks[c] is class c's stack of cached user-region-relative block
	// offsets; manifest words [c*cap, c*cap+len) mirror it positionally.
	blocks [][]uint64

	// track maps rel → class<<1 | state for blocks this magazine has
	// touched: cached entries catch same-thread double frees, popped
	// entries route the eventual free back onto the fast path with the
	// class already known.
	track map[uint64]uint8

	// dirty is a per-class bitmap of manifest windows touched since the
	// last sync; a clean class costs zero device ops at sync time.
	dirty uint64

	// disabled latches the magazine off (quarantined shard, uncleanable
	// adopted manifest, failed flush-back); all ops take the locked path.
	disabled bool
}

func newMagazine(classes, capacity int, man plog.Manifest) *magazine {
	m := &magazine{
		classes: classes,
		cap:     capacity,
		man:     man,
		blocks:  make([][]uint64, classes),
		track:   make(map[uint64]uint8),
	}
	for c := range m.blocks {
		m.blocks[c] = make([]uint64, 0, capacity)
	}
	return m
}

// magClassOf mirrors memblock.Geometry.ClassOf for the in-range sizes the
// fast path handles; callers bound the result against the magazine's
// class count, which caps well below the geometry's.
func magClassOf(size uint64) int {
	if size <= 1<<memblock.MinClassLog {
		return 0
	}
	return bits.Len64(size-1) - memblock.MinClassLog
}

// magAlloc is the allocation fast path: pop a cached block, refilling the
// class from the sub-heap in one batched transaction when empty. Reports
// handled=false (and the caller takes the locked path) when magazines are
// off, the size is not magazined, the shard is quarantined, or the refill
// could not deliver.
func (t *Thread) magAlloc(size uint64) (NVMPtr, bool) {
	m := t.mag
	if m == nil || m.disabled || size == 0 {
		return NVMPtr{}, false
	}
	class := magClassOf(size)
	if class >= m.classes {
		return NVMPtr{}, false
	}
	s := t.h.subheaps[t.shard]
	if s.isQuarantined() {
		// Leave any cached entries in the manifest: the capacity is out
		// of service and recovery/audit owns the evidence.
		m.disabled = true
		return NVMPtr{}, false
	}
	if len(m.blocks[class]) == 0 && !t.magRefill(s, class) {
		s.stats.magazineMisses.Add(1)
		return NVMPtr{}, false
	}
	stack := m.blocks[class]
	d := len(stack) - 1
	rel := stack[d]
	// Clear the manifest word with a plain store: the pop's durability
	// defers to the next sync point (the relaxed magazine contract).
	if t.magWriteWord(m.man.WordOff(uint64(class*m.cap+d)), 0, nvm.ClassAlloc) != nil {
		s.stats.magazineMisses.Add(1)
		return NVMPtr{}, false
	}
	m.blocks[class] = stack[:d]
	m.dirty |= 1 << uint(class)
	if len(m.track) < maxMagTrack {
		m.track[rel] = uint8(class) << 1 // popped
	} else {
		delete(m.track, rel)
	}
	s.stats.allocs.Add(1)
	s.stats.magazineHits.Add(1)
	return makePtr(t.h.heapID, uint16(t.shard), rel), true
}

// magRefill fills class from the sub-heap: one lock acquisition, one undo
// transaction, one flush+fence for the whole batch of manifest entries.
func (t *Thread) magRefill(s *subheap, class int) bool {
	m := t.mag
	want := m.cap / 2
	if want < 1 {
		want = 1
	}
	blocks, err := s.refillMagazine(class, want, m.man, uint64(class*m.cap))
	if err != nil || len(blocks) == 0 {
		return false
	}
	base := t.h.lay.userBase(t.shard)
	for _, dev := range blocks {
		rel := dev - base
		m.blocks[class] = append(m.blocks[class], rel)
		m.track[rel] = uint8(class)<<1 | magStateCached
	}
	m.dirty |= 1 << uint(class)
	return true
}

// magFree is the free fast path: push a block this magazine previously
// popped back onto its class stack, flushing half the stack back to the
// sub-heap first when full. Reports handled=false for anything it cannot
// prove safe lock-free — the caller takes the locked (or remote-ring)
// path. A free of a block currently CACHED here is this thread's own
// double free: rejected without touching the device.
func (t *Thread) magFree(p NVMPtr) (handled bool, err error) {
	m := t.mag
	if m == nil || m.disabled || int(p.Subheap()) != t.shard {
		return false, nil
	}
	rel := p.Offset()
	enc, tracked := m.track[rel]
	if !tracked {
		return false, nil
	}
	s := t.h.subheaps[t.shard]
	if enc&magStateCached != 0 {
		s.stats.doubleFrees.Add(1)
		return true, ErrDoubleFree
	}
	class := int(enc >> 1)
	if class >= m.classes || s.isQuarantined() {
		return false, nil
	}
	if len(m.blocks[class]) == m.cap && !t.magOverflow(s, class) {
		s.stats.magazineMisses.Add(1)
		return false, nil
	}
	d := len(m.blocks[class])
	word := plog.EncodeCacheEntry(rel, uint16(t.shard))
	if t.magWriteWord(m.man.WordOff(uint64(class*m.cap+d)), word, nvm.ClassFree) != nil {
		s.stats.magazineMisses.Add(1)
		return false, nil
	}
	m.blocks[class] = append(m.blocks[class], rel)
	m.dirty |= 1 << uint(class)
	m.track[rel] = uint8(class)<<1 | magStateCached
	s.stats.frees.Add(1)
	s.stats.magazineHits.Add(1)
	return true, nil
}

// magOverflow flushes the newest cap/2 blocks of class back to the
// sub-heap in one batch; flushCached clears their manifest words under
// the sub-heap lock so they cannot replay against re-carved blocks.
func (t *Thread) magOverflow(s *subheap, class int) bool {
	m := t.mag
	n := m.cap / 2
	stack := m.blocks[class]
	d := len(stack)
	top := stack[d-n:]
	base := t.h.lay.userBase(t.shard)
	devs := make([]uint64, n)
	words := make([]uint64, n)
	for i, rel := range top {
		devs[i] = base + rel
		words[i] = uint64(class*m.cap + d - n + i)
	}
	if _, err := s.flushCached(devs, m.man, words); err != nil {
		return false
	}
	for _, rel := range top {
		delete(m.track, rel)
	}
	m.blocks[class] = stack[:d-n]
	return true
}

// magSyncAll is the magazine durability sync point: every cached block
// returns to its free list (one batch), and every dirty class's full
// manifest window is cleared, flushed and fenced — covering the plain-
// store pops and pushes since the last sync, which makes every earlier
// magazine-path Alloc and Free on this thread durable. A magazine that
// was never touched since the last sync costs zero device ops. On error
// the cached blocks stay durably recorded in the manifest (the next Load
// or lane adoption reclaims them) and the magazine latches off.
func (t *Thread) magSyncAll() error {
	m := t.mag
	if m == nil || m.disabled || m.dirty == 0 {
		return nil
	}
	base := t.h.lay.userBase(t.shard)
	var devs, words []uint64
	for class, stack := range m.blocks {
		for _, rel := range stack {
			devs = append(devs, base+rel)
		}
		if m.dirty&(1<<uint(class)) != 0 {
			for i := 0; i < m.cap; i++ {
				words = append(words, uint64(class*m.cap+i))
			}
		}
	}
	s := t.h.subheaps[t.shard]
	if _, err := s.flushCached(devs, m.man, words); err != nil {
		m.disabled = true
		return err
	}
	for class, stack := range m.blocks {
		for _, rel := range stack {
			delete(m.track, rel)
		}
		m.blocks[class] = stack[:0]
	}
	m.dirty = 0
	return nil
}

// magAdopt cleans a recycled lane's manifest before this thread starts
// using it: a previous Thread on this lane may have gone away without a
// successful Close flush-back (the heap stayed open, so no recovery ran).
// Valid entries are flushed back to their owning sub-heaps — adopting
// them into this magazine is unsound, they may belong to other shards —
// and their words cleared. Anything that cannot be cleaned (corrupt word,
// out-of-bounds entry, quarantined owner, device error) leaves ALL the
// evidence in place for check/recovery and latches the magazine off.
func (t *Thread) magAdopt() {
	m := t.mag
	type pending struct {
		devs  []uint64
		words []uint64
	}
	byShard := map[int]*pending{}
	for k := uint64(0); k < m.man.Slots(); k++ {
		var word uint64
		err := t.h.retry(func() error {
			var e error
			word, e = t.win.ReadU64(m.man.WordOff(k))
			return e
		})
		if err != nil {
			m.disabled = true
			return
		}
		if word == 0 {
			continue
		}
		rel, shard, ok := plog.DecodeCacheEntry(word)
		if !ok || int(shard) >= len(t.h.subheaps) || rel >= t.h.lay.userSize ||
			t.h.subheaps[shard].isQuarantined() {
			t.h.tel.Emit(obs.EventScrubFinding, -1, fmt.Sprintf(
				"lane %d manifest slot %d: uncleanable entry %#x; magazines off for this thread",
				t.laneI, k, word))
			m.disabled = true
			return
		}
		p := byShard[int(shard)]
		if p == nil {
			p = &pending{}
			byShard[int(shard)] = p
		}
		p.devs = append(p.devs, t.h.lay.userBase(int(shard))+rel)
		p.words = append(p.words, k)
	}
	for shard, p := range byShard {
		if _, err := t.h.subheaps[shard].flushCached(p.devs, m.man, p.words); err != nil {
			m.disabled = true
			return
		}
	}
}

// magWriteWord is one plain manifest-word store under the thread's grant,
// charged to the given attribution class (the manifest lives in protected
// superblock metadata, and the producer is an application thread — the
// same discipline as a remote-free ring publish).
func (t *Thread) magWriteWord(off, v uint64, cls nvm.OpClass) error {
	if t.rec != nil {
		t.rec.SetClass(cls)
		defer t.rec.SetClass(nvm.ClassUser)
	}
	t.h.grant(t.pkru)
	err := t.win.WriteU64(off, v)
	t.h.revoke(t.pkru)
	return err
}

// SyncMagazines flushes every block cached in this thread's magazines
// back to its sub-heap and persists the manifest state — the durability
// sync point of the relaxed magazine contract: after it returns, every
// earlier magazine-path Alloc and Free on this thread is durable. A no-op
// without Options.Magazines. Thread.Close performs the same sync
// (best-effort) automatically.
func (t *Thread) SyncMagazines() error {
	if err := t.check(); err != nil {
		return err
	}
	return t.magSyncAll()
}
