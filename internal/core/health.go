package core

import (
	"fmt"

	"poseidon/internal/obs"
)

// HealthState is the heap's position in the explicit health state machine
// Healthy → Degraded → ReadOnly → Failed. Transitions are driven by
// quarantine, repair and the transient-retry counter; the state is
// recomputed from those facts (not ratcheted), so a successful repair moves
// the heap back toward Healthy.
type HealthState int32

const (
	// StateHealthy: every sub-heap in service, no notable fault pressure.
	StateHealthy HealthState = iota
	// StateDegraded: some capacity is quarantined (allocations route around
	// it) or the device is showing sustained transient-fault pressure, but
	// the heap serves reads and writes normally.
	StateDegraded
	// StateReadOnly: a majority of sub-heaps are quarantined. Mutating
	// operations are rejected with ErrReadOnly; reads, audits and repair
	// continue.
	StateReadOnly
	// StateFailed: every sub-heap is quarantined. Operations surface
	// ErrSubheapQuarantined from the routing layer; only repair can bring
	// the heap back.
	StateFailed
)

func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateReadOnly:
		return "read-only"
	case StateFailed:
		return "failed"
	}
	return "invalid"
}

// healthRetryThreshold is the lifetime transient-retry count past which a
// fully in-service heap still reports Degraded: the device keeps stalling,
// which is how NVDIMMs announce they are dying.
const healthRetryThreshold = 256

// Health returns the heap's current health state.
func (h *Heap) Health() HealthState { return HealthState(h.health.Load()) }

// recomputeHealth re-derives the health state from the quarantine set and
// the transient-retry counter, and journals the transition if it changed.
// Called after every quarantine, repair and notable retry burst; cheap
// enough (one pass over the sub-heap flags) that callers need not debounce.
func (h *Heap) recomputeHealth() {
	// Serialized: a worker that read the quarantine set before a peer's
	// quarantine landed must not publish its (now stale) state after the
	// peer published the correct one.
	h.healthMu.Lock()
	defer h.healthMu.Unlock()
	n := len(h.subheaps)
	q := 0
	for _, s := range h.subheaps {
		if s.isQuarantined() {
			q++
		}
	}
	var st HealthState
	switch {
	case n > 0 && q == n:
		st = StateFailed
	case 2*q > n:
		st = StateReadOnly
	case q > 0 || h.transientRetries.Load() >= healthRetryThreshold:
		st = StateDegraded
	default:
		st = StateHealthy
	}
	prev := HealthState(h.health.Swap(int32(st)))
	if prev != st {
		h.tel.Emit(obs.EventHealthChange, -1, fmt.Sprintf(
			"%s -> %s (%d/%d sub-heaps quarantined)", prev, st, q, n))
	}
}

// writable gates mutating operations on the health state. Only ReadOnly
// rejects here: Failed heaps surface ErrSubheapQuarantined from the
// routing layer (there is no sub-heap left to write), which is the more
// actionable error.
func (h *Heap) writable() error {
	if h.Health() == StateReadOnly {
		return ErrReadOnly
	}
	return nil
}

// healthDetail summarises why the heap is not healthy (empty when it is).
func (h *Heap) healthDetail() string {
	q := 0
	for _, s := range h.subheaps {
		if s.isQuarantined() {
			q++
		}
	}
	switch {
	case q > 0:
		return fmt.Sprintf("%d/%d sub-heaps quarantined", q, len(h.subheaps))
	case h.transientRetries.Load() >= healthRetryThreshold:
		return fmt.Sprintf("%d transient device retries", h.transientRetries.Load())
	}
	return ""
}
