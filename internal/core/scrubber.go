package core

import (
	"fmt"
	"time"

	"poseidon/internal/obs"
)

// Online scrubber: the runtime arm of degrade-don't-die. ScrubOnLoad only
// catches corruption present at load; media faults accumulate while the
// heap runs. The scrubber audits one sub-heap at a time with the same fsck
// engine, under that sub-heap's own lock — foreground traffic on every
// other sub-heap proceeds, and traffic on the audited one just waits out
// one audit slice. A failed audit quarantines the sub-heap and immediately
// attempts a Repair, so a corruption whose mirror survived heals without
// operator involvement.

// startScrubber launches the background scrubber when Options.OnlineScrub
// is enabled. Raw-attached heaps never scrub (fsck -raw must observe the
// image untouched).
func (h *Heap) startScrubber() {
	if h.opts.OnlineScrub.Interval <= 0 || h.rawAttach {
		return
	}
	h.scrubStop = make(chan struct{})
	h.scrubDone = make(chan struct{})
	go h.scrubLoop(h.scrubStop, h.scrubDone)
}

// scrubLoop runs full scrub passes separated by Options.OnlineScrub.Interval
// until stop closes.
func (h *Heap) scrubLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	interval := h.opts.OnlineScrub.Interval
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		for _, s := range h.subheaps {
			select {
			case <-stop:
				return
			default:
			}
			if err := h.scrubSubheap(s); err != nil {
				// Device-level failure: stop scrubbing, the heap is dying in
				// a way audits cannot fix. Foreground ops surface their own
				// errors.
				h.tel.Emit(obs.EventScrubFinding, s.id,
					fmt.Sprintf("online scrub aborted: %v", err))
				return
			}
			if t := h.opts.OnlineScrub.Throttle; t > 0 {
				select {
				case <-stop:
					return
				case <-time.After(t):
				}
			}
		}
		timer.Reset(interval)
	}
}

// ScrubPass synchronously audits every in-service sub-heap once — the
// deterministic form of the background scrubber, for tests and tools.
// Returns the first device-level error; audit findings quarantine (and
// auto-repair) without failing the pass.
func (h *Heap) ScrubPass() error {
	if h.isClosed() {
		return ErrClosed
	}
	for _, s := range h.subheaps {
		if err := h.scrubSubheap(s); err != nil {
			return fmt.Errorf("sub-heap %d scrub: %w", s.id, err)
		}
	}
	return nil
}

// scrubSubheap audits one in-service sub-heap; on a failed audit it
// quarantines and immediately attempts repair. Errors returned are
// device-level (the audit could not run); corruption is handled, not
// returned.
func (h *Heap) scrubSubheap(s *subheap) error {
	if s.isQuarantined() {
		return nil
	}
	var start time.Time
	if h.tel != nil {
		start = time.Now()
	}
	var sub SubheapReport
	err := h.retry(func() error {
		var e error
		sub, e = s.check()
		return e
	})
	if h.tel != nil {
		h.tel.RecordOn(s.id, obs.OpScrub, time.Since(start))
	}
	switch {
	case err == nil && len(sub.Problems) == 0:
		return nil
	case err == nil:
		h.tel.Emit(obs.EventScrubFinding, s.id, fmt.Sprintf(
			"%d problems, first: %s", len(sub.Problems), sub.Problems[0]))
		s.quarantine(fmt.Sprintf("online audit failed: %s (%d problems)",
			sub.Problems[0], len(sub.Problems)))
	case quarantinable(err):
		s.quarantine(fmt.Sprintf("online audit aborted: %v", err))
	default:
		return err
	}
	// Self-heal: the repair emits its own journal events and, on failure,
	// leaves the sub-heap quarantined with the audit's reason intact.
	_ = h.Repair(s.id)
	return nil
}
