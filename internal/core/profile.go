package core

// Heap-side glue for the allocation-site profiler and op-span tracer:
// persistence of the profiler's site table into the image's side-table
// arena, recovery of the previous table at Load, and the trace-span
// helpers the operation paths call.
//
// Crash-consistency of the side-table (see internal/plog/sites.go for the
// format): snapshots alternate between two slots, payload-then-header with
// a fence between, so the newest VALID slot is always a complete snapshot
// from some earlier moment — a crash can lose at most the generation being
// written. A table where neither slot validates on a non-blank arena is
// torn; that is detected at Load, journalled (EventProfileReset), and the
// profile simply starts fresh. The side-table carries no allocator
// metadata, so a torn table can never quarantine a sub-heap or affect
// allocation correctness.

import (
	"fmt"
	"math/bits"
	"time"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

// profPersistInterval paces the background side-table writes: every Nth
// sampled allocation attempts a snapshot (TryLock — a persist already in
// flight is never waited on).
const profPersistInterval = 64

// profCharge is the bytes a sampled allocation is charged: the power-of-two
// block the allocator actually carves (min class 64 B), so profile bytes
// line up with heap occupancy rather than request sizes.
func profCharge(size uint64) uint64 {
	if size <= 64 {
		return 64
	}
	return 1 << bits.Len64(size-1)
}

// ProfileEpoch returns the current boot epoch (1 on a fresh heap,
// incremented by every Load that found a valid side-table snapshot).
func (h *Heap) ProfileEpoch() uint64 { return h.profEpoch }

// loadProfile restores the persisted site table after recovery: the newest
// valid snapshot slot seeds the profiler with its recovered sites and
// advances the boot epoch past the one that wrote it. Never fails the
// load — a torn or unreadable table resets the profile and journals why.
func (h *Heap) loadProfile() {
	if h.prof == nil {
		return
	}
	h.profEpoch = 1
	h.profSeq = 1
	arena := h.lay.profArena()
	if !arena.Valid() {
		// Pre-profiler image: no arena. Profiles aggregate in DRAM only.
		h.prof.SetEpoch(1)
		return
	}

	type slotState struct {
		hdr   plog.SiteHeader
		blob  []byte
		valid bool
		blank bool
	}
	var slots [plog.SiteSlots]slotState
	for i := range slots {
		var hdrBuf [plog.SiteHeaderSize]byte
		if err := h.retry(func() error { return h.profWin.Read(arena.HeaderOff(i), hdrBuf[:]) }); err != nil {
			continue // unreadable counts as neither blank nor valid
		}
		blank := true
		for _, b := range hdrBuf {
			if b != 0 {
				blank = false
				break
			}
		}
		slots[i].blank = blank
		hdr, ok := plog.DecodeSiteHeader(hdrBuf[:])
		if !ok || hdr.PayloadLen > arena.PayloadCap() {
			continue
		}
		blob := make([]byte, hdr.PayloadLen)
		if err := h.retry(func() error { return h.profWin.Read(arena.PayloadOff(i), blob) }); err != nil {
			continue
		}
		if plog.SiteChecksum(hdr.Seq, blob) != hdr.Checksum {
			continue
		}
		slots[i] = slotState{hdr: hdr, blob: blob, valid: true, blank: false}
	}

	best := -1
	for i, s := range slots {
		if s.valid && (best < 0 || s.hdr.Seq > slots[best].hdr.Seq) {
			best = i
		}
	}
	if best < 0 {
		if !slots[0].blank || !slots[1].blank {
			// Non-blank arena, no valid snapshot: the table is torn. Reset
			// the (empty) profile and journal it; allocation correctness is
			// untouched — the side-table holds no allocator metadata.
			h.prof.Reset()
			h.tel.Emit(obs.EventProfileReset, -1,
				"profile side-table torn: no valid snapshot slot; profile reset")
		}
		h.prof.SetEpoch(1)
		return
	}

	recs, err := plog.DecodeSites(slots[best].blob)
	if err != nil {
		h.prof.Reset()
		h.tel.Emit(obs.EventProfileReset, -1,
			fmt.Sprintf("profile side-table decode failed: %v; profile reset", err))
		h.prof.SetEpoch(1)
		return
	}
	h.prof.AdoptRecovered(siteRecordsToStats(recs))
	h.profEpoch = slots[best].hdr.Epoch + 1
	h.profSeq = slots[best].hdr.Seq + 1
	h.profSlot = 1 - best
	h.profWrote = true
	h.prof.SetEpoch(h.profEpoch)
}

func siteRecordsToStats(recs []plog.SiteRecord) []obs.SiteStat {
	out := make([]obs.SiteStat, 0, len(recs))
	for _, r := range recs {
		frames := make([]obs.SiteFrame, 0, len(r.Frames))
		for _, f := range r.Frames {
			frames = append(frames, obs.SiteFrame{Func: f.Func, File: f.File, Line: int(f.Line)})
		}
		out = append(out, obs.SiteStat{
			Hash:         r.Hash,
			Frames:       frames,
			LiveObjects:  r.LiveObjects,
			LiveBytes:    r.LiveBytes,
			AllocObjects: r.AllocObjects,
			AllocBytes:   r.AllocBytes,
			FreeObjects:  r.FreeObjects,
			FreeBytes:    r.FreeBytes,
			FirstEpoch:   r.FirstEpoch,
			Recovered:    true,
		})
	}
	return out
}

func siteStatsToRecords(sites []obs.SiteStat) []plog.SiteRecord {
	out := make([]plog.SiteRecord, 0, len(sites))
	for _, s := range sites {
		frames := make([]plog.SiteFrame, 0, len(s.Frames))
		for _, f := range s.Frames {
			frames = append(frames, plog.SiteFrame{Func: f.Func, File: f.File, Line: uint32(f.Line)})
		}
		out = append(out, plog.SiteRecord{
			Hash:         s.Hash,
			LiveObjects:  s.LiveObjects,
			LiveBytes:    s.LiveBytes,
			AllocObjects: s.AllocObjects,
			AllocBytes:   s.AllocBytes,
			FreeObjects:  s.FreeObjects,
			FreeBytes:    s.FreeBytes,
			FirstEpoch:   s.FirstEpoch,
			Frames:       frames,
		})
	}
	return out
}

// PersistProfile writes the profiler's current site table into the image's
// side-table arena (one snapshot generation: payload, fence, header,
// fence). Safe to call at any time; a failed or interrupted write leaves
// the previous generation intact. No-op on heaps without telemetry, without
// an arena (pre-profiler image), or in read-only health.
func (h *Heap) PersistProfile() error {
	if h.prof == nil || !h.lay.profArena().Valid() {
		return nil
	}
	if h.writable() != nil {
		return nil // read-only heap: keep the last good snapshot
	}
	h.profMu.Lock()
	defer h.profMu.Unlock()
	return h.persistProfileLocked()
}

// maybePersistProfile is the paced background persist on the sampled-alloc
// path: every profPersistInterval-th sample tries a snapshot, skipping if
// one is already in flight.
func (h *Heap) maybePersistProfile() {
	if h.profPace.Add(1)%profPersistInterval != 0 {
		return
	}
	if !h.lay.profArena().Valid() || h.writable() != nil {
		return
	}
	if !h.profMu.TryLock() {
		return
	}
	_ = h.persistProfileLocked()
	h.profMu.Unlock()
}

// persistProfileLocked writes one snapshot generation. Caller holds profMu.
func (h *Heap) persistProfileLocked() error {
	sites := h.prof.Sites()
	if len(sites) == 0 && !h.profWrote {
		return nil // nothing sampled, nothing recovered: leave the arena blank
	}
	arena := h.lay.profArena()
	blob, _ := plog.EncodeSites(siteStatsToRecords(sites), arena.PayloadCap())
	hdr := plog.EncodeSiteHeader(plog.SiteHeader{
		Seq:        h.profSeq,
		PayloadLen: uint64(len(blob)),
		Checksum:   plog.SiteChecksum(h.profSeq, blob),
		Epoch:      h.profEpoch,
	})
	slot := h.profSlot

	h.grant(h.profThread)
	defer h.revoke(h.profThread)
	w := h.profWin
	// Payload first, durably, THEN the header that makes it meaningful: a
	// crash between the fences leaves the slot header stale (still naming
	// the previous generation or nothing), so no reader ever sees a header
	// that points at half-written bytes.
	if err := w.Write(arena.PayloadOff(slot), blob); err != nil {
		return err
	}
	if err := w.Flush(arena.PayloadOff(slot), uint64(len(blob))); err != nil {
		return err
	}
	w.Fence()
	if err := w.Write(arena.HeaderOff(slot), hdr[:]); err != nil {
		return err
	}
	if err := w.Flush(arena.HeaderOff(slot), plog.SiteHeaderSize); err != nil {
		return err
	}
	w.Fence()

	h.profSeq++
	h.profSlot = 1 - slot
	h.profWrote = true
	h.prof.NotePersisted()
	return nil
}

// ProfilePprof renders the current allocation-site profile as a gzipped
// pprof protobuf — the bytes /debug/pprof/poseidon_heap serves.
func (h *Heap) ProfilePprof() ([]byte, error) {
	if h.prof == nil {
		return nil, fmt.Errorf("poseidon: profiling not enabled (Options.Telemetry required)")
	}
	return h.prof.WritePprofGzip()
}

// TraceJSON renders the buffered op spans as Chrome trace-event JSON — the
// bytes /debug/optrace serves. Empty trace on heaps without Options.Trace.
func (h *Heap) TraceJSON() []byte { return h.tracer.WriteChromeTrace() }

// traceForced opens a span that records unconditionally (no sampling
// decision) — for rare, long operations like recovery and repair whose
// timeline is the whole point of the tracer. Device-op counts are diffed
// from the whole attribution table, which is exact while the operation has
// the heap to itself (load-time recovery) and best-effort otherwise.
// Returns nil when tracing is off.
func (h *Heap) traceForced(op obs.Op, subheap int) func(error) {
	if h.tracer == nil {
		return nil
	}
	start := time.Now()
	w0, f0, fe0 := attrTotals(h.tel.Attribution().Snapshot())
	r0 := h.transientRetries.Load()
	return func(err error) {
		w1, f1, fe1 := attrTotals(h.tel.Attribution().Snapshot())
		sp := obs.Span{
			Op:      op,
			Subheap: subheap,
			Lane:    -1,
			StartNS: start.UnixNano(),
			DurNS:   time.Since(start).Nanoseconds(),
			Writes:  w1 - w0,
			Flushes: f1 - f0,
			Fences:  fe1 - fe0,
			Retries: h.transientRetries.Load() - r0,
		}
		if err != nil {
			sp.Err = err.Error()
		}
		h.tracer.Record(sp)
	}
}

func attrTotals(s nvm.AttrSnapshot) (writes, flushes, fences uint64) {
	for _, c := range s {
		writes += c.Writes
		flushes += c.Flushes
		fences += c.Fences
	}
	return
}
