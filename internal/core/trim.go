package core

import "poseidon/internal/memblock"

// Defragment runs a full coalescing pass over every sub-heap: free buddy
// pairs merge upward until no merge is possible. The allocator already
// defragments on demand (§5.4); this explicit pass is for maintenance
// windows — run it before TrimMetadata to maximise the punchable space.
// Returns the number of merges performed.
func (h *Heap) Defragment() (uint64, error) {
	var merges uint64
	for _, s := range h.subheaps {
		n, err := s.defragment()
		if err != nil {
			return merges, err
		}
		merges += n
	}
	return merges, nil
}

func (s *subheap) defragment() (uint64, error) {
	s.mu.Lock()
	s.h.grant(s.thread)
	defer func() {
		s.h.revoke(s.thread)
		s.mu.Unlock()
	}()
	init, err := s.initializedFlag()
	if err != nil || !init {
		return 0, err
	}
	if err := s.ensureReady(); err != nil {
		return 0, err
	}
	before := s.stats.defragMerges.Load()
	g := s.mgr.Geometry()
	// Passes from the smallest class upward until a pass makes no
	// progress; each merge feeds the next class up.
	for {
		any := false
		for c := 0; c < g.NumClasses-1; c++ {
			slots, err := s.freeListSlots(c)
			if err != nil {
				return 0, err
			}
			for _, slot := range slots {
				merged, err := s.mergeBuddy(slot)
				if err != nil {
					return 0, err
				}
				any = any || merged
			}
		}
		if !any {
			break
		}
	}
	return s.stats.defragMerges.Load() - before, nil
}

// TrimMetadata implements the paper's metadata space management (§5.6):
// unused metadata pages are hole-punched back to the underlying
// "filesystem" (the sparse device). Two things happen per sub-heap:
//
//  1. Shrink: while the topmost active hash-table level holds no live
//     records, it is deactivated (an undo-logged header update) — the
//     inverse of ExtendLevel.
//  2. Punch: the regions of all inactive levels are hole-punched, so their
//     backing memory is released; they read as zero (= empty slots) and
//     re-materialise transparently if the table grows again.
//
// Returns the number of bytes punched.
func (h *Heap) TrimMetadata() (uint64, error) {
	var punched uint64
	for _, s := range h.subheaps {
		n, err := s.trimMetadata()
		if err != nil {
			return punched, err
		}
		punched += n
	}
	return punched, nil
}

func (s *subheap) trimMetadata() (uint64, error) {
	s.mu.Lock()
	s.h.grant(s.thread)
	defer func() {
		s.h.revoke(s.thread)
		s.mu.Unlock()
	}()
	init, err := s.initializedFlag()
	if err != nil || !init {
		return 0, err
	}
	if err := s.ensureReady(); err != nil {
		return 0, err
	}
	g := s.mgr.Geometry()

	// Shrink: drop empty topmost levels.
	for {
		levels, err := s.mgr.ActiveLevels(s.win)
		if err != nil {
			return 0, err
		}
		if levels <= 1 {
			break
		}
		empty, err := s.levelEmpty(levels - 1)
		if err != nil {
			return 0, err
		}
		if !empty {
			break
		}
		if err := s.batch.WriteU64(g.HeaderOff, uint64(levels-1)); err != nil {
			s.batch.Abort()
			return 0, err
		}
		if err := s.batch.Commit(); err != nil {
			s.batch.Abort()
			if rerr := s.undo.Replay(); rerr != nil {
				return 0, rerr
			}
			return 0, err
		}
	}

	// Punch every inactive level's region. The zeroed state is exactly the
	// all-empty-slots state, so a deactivated level that held tombstones
	// comes back clean.
	levels, err := s.mgr.ActiveLevels(s.win)
	if err != nil {
		return 0, err
	}
	var punched uint64
	for l := levels; l < len(g.LevelOff); l++ {
		size := g.LevelCap[l] * memblock.RecordSize
		if err := s.win.Device().PunchHole(g.LevelOff[l], size); err != nil {
			return punched, err
		}
		punched += size
	}
	return punched, nil
}

// levelEmpty reports whether level l holds no live records (tombstones and
// empties only).
func (s *subheap) levelEmpty(l int) (bool, error) {
	g := s.mgr.Geometry()
	for i := uint64(0); i < g.LevelCap[l]; i++ {
		slot := g.LevelOff[l] + i*memblock.RecordSize
		key, err := s.win.ReadU64(slot)
		if err != nil {
			return false, err
		}
		if key != 0 && key != ^uint64(0) {
			return false, nil
		}
	}
	return true, nil
}
