package core

import (
	"fmt"
	"runtime"
	"time"

	"poseidon/internal/memblock"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

// Protection selects how the heap-metadata region is guarded.
type Protection int

const (
	// ProtectMPK guards metadata with per-thread protection keys (the
	// paper's design). Each allocator operation grants write permission to
	// the executing thread only and revokes it on exit (§4.3).
	ProtectMPK Protection = iota + 1
	// ProtectNone leaves metadata writable at all times — the ablation
	// baseline quantifying MPK's cost (and demonstrating its value).
	ProtectNone
	// ProtectMprotect models page-table-based protection: the same
	// grant/revoke discipline, but each switch costs a syscall-scale
	// penalty instead of WRPKRU's ~23 cycles. Used by the ablation bench.
	ProtectMprotect
	// ProtectMPKHardened is MPK plus the §8 mitigation the paper points to
	// (ERIM/Hodor binary inspection): the protection unit is sealed so
	// only the allocator's own entry/exit paths can execute WRPKRU — a
	// control-flow hijack attempting a permission switch traps.
	ProtectMPKHardened
)

// Options configures heap creation. The zero value is usable: every field
// has a sensible default applied by withDefaults.
type Options struct {
	// Subheaps is the number of per-CPU sub-heaps. Defaults to
	// runtime.GOMAXPROCS(0).
	Subheaps int
	// SubheapUserSize is the user-data bytes per sub-heap; must be a power
	// of two. Default 64 MiB.
	SubheapUserSize uint64
	// SubheapMetaSize is the metadata bytes per sub-heap (header, logs,
	// hash table). Default max(1 MiB, SubheapUserSize/16), page aligned.
	SubheapMetaSize uint64
	// UndoLogSize is the per-sub-heap undo-log bytes. Default 256 KiB.
	UndoLogSize uint64
	// MaxThreads bounds concurrently open Thread handles (each owns one
	// persistent micro-log lane). Default 256.
	MaxThreads int
	// MicroLogLaneSize is bytes per micro-log lane; bounds the length of
	// one transactional allocation sequence. Default 4 KiB (~250 allocs).
	MicroLogLaneSize uint64
	// HeapID identifies the heap inside persistent pointers. Zero picks a
	// pseudo-random ID at creation.
	HeapID uint64
	// Protection selects the metadata guard. Default ProtectMPK.
	Protection Protection
	// MprotectCost is the modeled spin per permission switch when
	// Protection is ProtectMprotect. Default 20000 iterations (~µs scale).
	MprotectCost int
	// CrashTracking enables the device's crash simulation (shadow
	// persistent image). Required by SimulateCrash; costs memory and
	// per-store bookkeeping. Default off.
	CrashTracking bool
	// ScrubOnLoad makes Load audit every formatted sub-heap after log
	// recovery (the fsck engine) and quarantine any whose metadata fails —
	// the degrade-don't-die path for media corruption (bit flips, stray
	// writes that beat MPK). Costs a full metadata scan per sub-heap at
	// load; default off.
	ScrubOnLoad bool
	// RecoveryParallelism bounds the worker pool Load fans recovery out
	// over: per-sub-heap log replay, micro-lane rollback, cache-manifest
	// replay, the ScrubOnLoad audit and RepairAll all split across this
	// many workers once the superblock log has replayed serially. The
	// fan-out is proven byte-identical to serial recovery (replay is
	// grouped per sub-heap, preserving each sub-heap's projection of the
	// serial replay order), so any value yields the same recovered image.
	// 0 (the default) uses runtime.GOMAXPROCS(0); 1 forces the legacy
	// single-threaded load path. Negative values are rejected.
	RecoveryParallelism int
	// RemoteFreeRings enables the persistent per-sub-heap remote-free
	// ring (mimalloc-style message-passing frees): a thread freeing a
	// block owned by another sub-heap CAS-reserves a ring slot, persists
	// one {blockOff, epoch} entry with a single flush+fence and returns —
	// no owner lock taken. The owner drains entries in batches under one
	// lock acquisition, a full ring falls back to the locked path (Free
	// never blocks), and recovery replays un-drained entries
	// idempotently. The trade-off: a cross-sub-heap Free returns before
	// validation, so an invalid or double free of a remote block surfaces
	// in the InvalidFrees/DoubleFrees counters at drain time instead of
	// as an error from Free. Default off.
	RemoteFreeRings bool
	// Magazines enables per-thread block magazines: lock-free alloc/free
	// fast paths for small size classes backed by crash-reclaimable
	// refill batches. See MagazineOptions. Zero value: disabled.
	Magazines MagazineOptions
	// CombinedCommits enables flat-combining commit batching on the locked
	// sub-heap paths: a thread that would block on the sub-heap mutex
	// instead publishes its operation into a DRAM combining array, and the
	// current lock holder executes every pending operation as one critical
	// section — one undo-log seal, cache-line-deduplicated flushes with a
	// single fence, and one truncate for the whole group. Per-operation
	// durability is unchanged (no operation reports success before the
	// group's commit point persists), so crash recovery replays the
	// existing undo log unmodified. Wins only under lock contention; the
	// uncontended path degenerates to a group of one. Default off.
	CombinedCommits bool
	// OnlineScrub enables the background scrubber: a goroutine that
	// periodically audits every in-service sub-heap with the fsck engine
	// (one sub-heap per lock slice, so foreground traffic is never blocked
	// for a full-heap scan), quarantines any whose metadata fails, and
	// immediately attempts a Repair. Zero value: disabled.
	OnlineScrub OnlineScrubOptions
	// Profile configures the allocation-site heap profiler: 1-in-Rate
	// allocations are sampled, attributed to their caller stack, and
	// aggregated per site (live objects/bytes + cumulative allocs/frees).
	// The aggregate is periodically persisted into the heap image's site
	// side-table so the profile survives crashes and restarts — the leak
	// report "blocks live since before epoch E, by allocation site".
	// Requires Telemetry. Zero value: sampling disabled (recovered profiles
	// are still loaded and rendered when Telemetry is set, so offline
	// inspection of a saved image works without sampling).
	Profile ProfileOptions
	// Trace configures the sampled op-span tracer: 1-in-Rate operations
	// (alloc/free/tx/refill/ring-drain, plus every repair and recovery)
	// record a span carrying duration and the flush/fence/write/retry
	// sub-events the operation issued, into a fixed ring exported as Chrome
	// trace-event JSON. Requires Telemetry. Zero value: disabled.
	Trace TraceOptions
	// Watchdog configures the stall watchdog: a background goroutine that
	// scans every sub-heap's in-flight locked operation and journals an
	// EventStall (into both the DRAM journal and the black-box ring) for
	// any that exceed StallThreshold, with sub-heap, op kind and held-lock
	// attribution. Enabling it also instruments the sub-heap lock sites
	// with lock-wait/lock-hold histograms and attaches the device
	// fence/flush latency outlier tap. Requires Telemetry. Zero value:
	// disabled (one nil check per lock site).
	Watchdog WatchdogOptions
	// DeviceStats enables flush/fence counters on the device.
	DeviceStats bool
	// Telemetry, when non-nil, wires the heap into the telemetry registry:
	// latency histograms for every operation class, per-class attribution
	// of device persistence traffic, per-sub-heap gauges and the event
	// journal (see internal/obs and Heap.Metrics). A nil Telemetry costs
	// exactly one pointer check on the hot path. Implies DeviceStats.
	Telemetry *obs.Telemetry
}

// MagazineOptions configures the opt-in per-thread block magazines. When
// enabled, each Thread keeps a DRAM stack of pre-carved block offsets per
// small size class: Alloc pops and Free pushes without taking the sub-heap
// lock or touching device metadata. An empty class refills in one batched
// undo transaction (Capacity/2 blocks, one lock acquisition, one
// flush+fence for the whole batch); an overfull class flushes Capacity/2
// blocks back the same way. Every cached block is recorded in a persistent
// cache manifest next to the thread's micro-log lane, so a crash can never
// leak a magazine — recovery returns surviving entries to their free lists
// idempotently.
//
// The trade-off is a relaxed durability contract on magazined classes:
// an individual Alloc or Free becomes durable at the thread's next
// explicit sync point — Thread.SyncMagazines or Thread.Close — rather
// than before the call returns. A crash in between replays a dropped
// push as if the free never happened and rolls a not-yet-persisted pop
// back at recovery — the same visibility hazard as a TxAlloc whose lane
// never committed. Callers that need a specific allocation durable
// immediately should call Thread.SyncMagazines after it.
type MagazineOptions struct {
	// Capacity is the per-class magazine depth in blocks. 0 disables
	// magazines; otherwise it must be in [2, 4096] (refill and overflow
	// move Capacity/2 blocks at a time).
	Capacity int
	// Classes is how many of the smallest size classes are magazined:
	// class c holds blocks of 64<<c bytes. Defaults to 8 (64 B … 8 KiB)
	// when Capacity > 0; capped at the sub-heap's class count.
	Classes int
}

// ProfileOptions configures the allocation-site heap profiler.
type ProfileOptions struct {
	// Rate samples 1-in-Rate allocations (1 = every allocation). 0
	// disables sampling; the off path costs one nil pointer check on the
	// thread's alloc/free wrappers.
	Rate int
}

// TraceOptions configures the sampled op-span tracer.
type TraceOptions struct {
	// Rate samples 1-in-Rate operations (1 = every operation). 0 disables
	// tracing; the off path costs one nil pointer check per hook site.
	Rate int
	// Buffer is the span ring capacity. Default 4096.
	Buffer int
}

// WatchdogOptions paces the opt-in stall watchdog.
type WatchdogOptions struct {
	// StallThreshold is the deadline after which an in-flight locked
	// operation counts as stalled; 0 disables the watchdog entirely.
	StallThreshold time.Duration
	// Interval is the pause between watchdog scans. Defaults to
	// StallThreshold/4 (floored at 1ms), so a stall is detected within
	// ~1.25x its threshold.
	Interval time.Duration
}

// OnlineScrubOptions paces the opt-in background scrubber.
type OnlineScrubOptions struct {
	// Interval is the pause between full scrub passes; 0 disables the
	// scrubber entirely.
	Interval time.Duration
	// Throttle is an extra pause between per-sub-heap audit slices within a
	// pass, bounding the scrubber's share of device bandwidth. 0 means no
	// pause beyond the per-slice lock handoff.
	Throttle time.Duration
}

const (
	defaultUserSize     = 64 << 20
	defaultUndoLogSize  = 256 << 10
	defaultMaxThreads   = 256
	defaultLaneSize     = 4 << 10
	defaultMprotectCost = 20000

	minMetaSize = 1 << 20

	defaultMagClasses  = 8
	defaultMagCapacity = 64

	// defaultMagSlots is the per-lane cache-manifest capacity every new
	// image provisions (4 KiB per lane) even when magazines are off, so
	// the feature can be enabled on an existing image by reopening it
	// with Magazines set — no reformat needed.
	defaultMagSlots = defaultMagClasses * defaultMagCapacity

	// defaultProfSize is the profile side-table arena every new image
	// provisions (two checksummed snapshot slots of ~32 KiB payload each)
	// even when profiling is off, so profiling can be enabled on an
	// existing image later — same reopen-to-enable contract as magazines.
	// Old images read a zero sbProfSize word: no arena, profiling runs
	// DRAM-only (samples aggregate but nothing persists).
	defaultProfSize = 64 << 10

	// defaultBoxSize is the black-box flight-recorder arena every new image
	// provisions (two header cachelines + ~510 record slots of 128 bytes)
	// even when no telemetry is attached, so the recorder can start mirroring
	// the moment a heap is reopened with Telemetry — the reopen-to-enable
	// contract once more. Old images read a zero sbBoxSize word: no ring,
	// the journal stays DRAM-only and post-mortem tools report "no black
	// box" instead of failing.
	defaultBoxSize = 64 << 10
)

// magSlots returns the per-lane manifest word count a new image should
// provision for these options.
func (o Options) magSlots() uint64 {
	n := uint64(defaultMagSlots)
	if need := uint64(o.Magazines.Classes) * uint64(o.Magazines.Capacity); need > n {
		n = need
	}
	return n
}

func (o Options) withDefaults() Options {
	if o.Subheaps == 0 {
		o.Subheaps = runtime.GOMAXPROCS(0)
	}
	if o.SubheapUserSize == 0 {
		o.SubheapUserSize = defaultUserSize
	}
	if o.SubheapMetaSize == 0 {
		o.SubheapMetaSize = o.SubheapUserSize / 16
		if o.SubheapMetaSize < minMetaSize {
			o.SubheapMetaSize = minMetaSize
		}
	}
	o.SubheapMetaSize = (o.SubheapMetaSize + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	if o.UndoLogSize == 0 {
		o.UndoLogSize = defaultUndoLogSize
	}
	o.UndoLogSize = (o.UndoLogSize + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	if o.MaxThreads == 0 {
		o.MaxThreads = defaultMaxThreads
	}
	if o.MicroLogLaneSize == 0 {
		o.MicroLogLaneSize = defaultLaneSize
	}
	o.MicroLogLaneSize = (o.MicroLogLaneSize + 255) &^ 255
	if o.Protection == 0 {
		o.Protection = ProtectMPK
	}
	if o.MprotectCost == 0 {
		o.MprotectCost = defaultMprotectCost
	}
	if o.Magazines.Capacity > 0 && o.Magazines.Classes == 0 {
		o.Magazines.Classes = defaultMagClasses
	}
	if o.Watchdog.StallThreshold > 0 && o.Watchdog.Interval == 0 {
		o.Watchdog.Interval = o.Watchdog.StallThreshold / 4
		if o.Watchdog.Interval < time.Millisecond {
			o.Watchdog.Interval = time.Millisecond
		}
	}
	if o.Telemetry != nil {
		// Per-class attribution without the flat device counters would be
		// a confusing half-view; telemetry turns both on.
		o.DeviceStats = true
	}
	return o
}

func (o Options) validate() error {
	if o.Subheaps < 1 || o.Subheaps > 1<<16 {
		return fmt.Errorf("poseidon: sub-heap count %d out of range [1, 65536]", o.Subheaps)
	}
	if o.SubheapUserSize&(o.SubheapUserSize-1) != 0 {
		return fmt.Errorf("poseidon: sub-heap user size %d must be a power of two", o.SubheapUserSize)
	}
	if o.SubheapUserSize < 1<<12 {
		return fmt.Errorf("poseidon: sub-heap user size %d too small", o.SubheapUserSize)
	}
	if o.SubheapUserSize >= 1<<subheapShift {
		return fmt.Errorf("poseidon: sub-heap user size %d exceeds the 6-byte pointer offset", o.SubheapUserSize)
	}
	if o.SubheapMetaSize < 64<<10 {
		return fmt.Errorf("poseidon: sub-heap metadata size %d too small", o.SubheapMetaSize)
	}
	if o.UndoLogSize < 8<<10 || o.UndoLogSize >= o.SubheapMetaSize {
		return fmt.Errorf("poseidon: undo log size %d out of range", o.UndoLogSize)
	}
	if o.MaxThreads < 1 || o.MaxThreads > 1<<20 {
		return fmt.Errorf("poseidon: max threads %d out of range", o.MaxThreads)
	}
	if o.RemoteFreeRings && o.SubheapUserSize-1 > memblock.MaxRingRel {
		return fmt.Errorf("poseidon: sub-heap user size %d exceeds the remote-free ring's %d-bit offset",
			o.SubheapUserSize, 44)
	}
	if o.RecoveryParallelism < 0 {
		return fmt.Errorf("poseidon: recovery parallelism %d must not be negative", o.RecoveryParallelism)
	}
	if o.OnlineScrub.Interval < 0 || o.OnlineScrub.Throttle < 0 {
		return fmt.Errorf("poseidon: online scrub interval/throttle must not be negative")
	}
	if o.Profile.Rate < 0 {
		return fmt.Errorf("poseidon: profile sample rate %d must not be negative", o.Profile.Rate)
	}
	if o.Trace.Rate < 0 || o.Trace.Buffer < 0 {
		return fmt.Errorf("poseidon: trace rate/buffer must not be negative")
	}
	if (o.Profile.Rate > 0 || o.Trace.Rate > 0) && o.Telemetry == nil {
		return fmt.Errorf("poseidon: Profile/Trace require Options.Telemetry")
	}
	if o.Watchdog.StallThreshold < 0 || o.Watchdog.Interval < 0 {
		return fmt.Errorf("poseidon: watchdog threshold/interval must not be negative")
	}
	if o.Watchdog.StallThreshold > 0 && o.Telemetry == nil {
		return fmt.Errorf("poseidon: Watchdog requires Options.Telemetry")
	}
	if o.Magazines.Capacity != 0 {
		if o.Magazines.Capacity < 2 || o.Magazines.Capacity > 4096 {
			return fmt.Errorf("poseidon: magazine capacity %d out of range [2, 4096]", o.Magazines.Capacity)
		}
		if o.Magazines.Classes < 1 || o.Magazines.Classes > 64 {
			return fmt.Errorf("poseidon: magazine class count %d out of range [1, 64]", o.Magazines.Classes)
		}
		if o.SubheapUserSize-1 > plog.MaxCacheRel {
			return fmt.Errorf("poseidon: sub-heap user size %d exceeds the cache manifest's 33-bit offset",
				o.SubheapUserSize)
		}
	}
	return nil
}
