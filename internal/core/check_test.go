package core

import (
	"errors"
	"testing"

	"poseidon/internal/nvm"
)

func TestCheckCleanHeap(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	report, err := h.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("problems: %v", report.Problems)
	}
	if report.AllocatedBlocks != 1 {
		t.Fatalf("allocated = %d", report.AllocatedBlocks)
	}
	if report.Formatted != 1 { // only shard 0 touched
		t.Fatalf("formatted = %d", report.Formatted)
	}
	if report.PendingUndo != 0 || report.PendingTx != 0 {
		t.Fatalf("pending work on a clean heap: %+v", report)
	}
	_ = p
}

func TestCheckDetectsDeliberateCorruption(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the record's size word via the raw device (simulating what a
	// bug could do if MPK were absent): the audit must notice.
	dev, err := h.RawOffset(p)
	if err != nil {
		t.Fatal(err)
	}
	s := h.subheaps[0]
	s.mu.Lock()
	h.grant(s.thread)
	slot, err := s.mgr.Lookup(s.win, dev)
	h.revoke(s.thread)
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Device().WriteU64(slot+8, 96); err != nil { // non-class size
		t.Fatal(err)
	}
	report, err := h.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("audit missed a corrupted record size")
	}
}

func TestCheckRawSeesPendingWork(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	// An open transaction leaves micro-log entries.
	if _, err := th.TxAlloc(64, false); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	// Raw attach: recovery has not run; the pending transaction shows.
	raw, err := Attach(h.Device(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	report, err := raw.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report.PendingTx == 0 {
		t.Fatal("raw audit missed the open transaction")
	}
	if !report.OK() {
		t.Fatalf("pending work must not be a problem: %v", report.Problems)
	}
	// Normal load performs the rollback; the pending work disappears.
	h2, err := Load(h.Device(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	report2, err := h2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report2.PendingTx != 0 {
		t.Fatalf("pending tx after recovery: %d", report2.PendingTx)
	}
	if !report2.OK() {
		t.Fatalf("problems after recovery: %v", report2.Problems)
	}
}

func TestAttachRejectsGarbage(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.Options{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(dev, Options{}); !errors.Is(err, ErrCorruptHeap) {
		t.Fatalf("err = %v", err)
	}
}

// TestCrashDuringRecovery exercises §5.8's claim directly: recovery that
// is itself interrupted by a crash replays idempotently on the next load.
func TestCrashDuringRecovery(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	keeper, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	// Open transaction + an operation killed mid-commit.
	if _, err := th.TxAlloc(64, false); err != nil {
		t.Fatal(err)
	}
	h.Device().FailAfter(3)
	_, _ = th.Alloc(256) // dies inside the allocator
	h.Device().DisarmFailpoint()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: 5}); err != nil {
		t.Fatal(err)
	}

	// First recovery attempt is ALSO killed partway through.
	h.Device().FailAfter(10)
	_, err = Load(h.Device(), testOptions())
	h.Device().DisarmFailpoint()
	if err == nil {
		t.Log("recovery finished within the failpoint budget; widening")
	}
	if _, cerr := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: 6}); cerr != nil {
		t.Fatal(cerr)
	}

	// Second recovery must complete and leave a consistent heap.
	h2, err := Load(h.Device(), testOptions())
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	report, err := h2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("problems after crashed recovery: %v", report.Problems)
	}
	if report.PendingUndo != 0 || report.PendingTx != 0 {
		t.Fatalf("unfinished recovery work: %+v", report)
	}
	// The committed block survived both crashes.
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	if err := th2.Free(keeper); err != nil {
		t.Fatalf("committed block lost: %v", err)
	}
}
