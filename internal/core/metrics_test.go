package core

import (
	"strings"
	"testing"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

func telemetryOptions(tel *obs.Telemetry) Options {
	o := testOptions()
	o.Telemetry = tel
	return o
}

// TestMetricsIntegration exercises the full telemetry path on a live heap:
// latency histograms, per-class attribution, sub-heap gauges, device stats
// and the recovery events of a crash/reload cycle.
func TestMetricsIntegration(t *testing.T) {
	tel := obs.New()
	h, err := Create(telemetryOptions(tel))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if h.Telemetry() != tel {
		t.Fatal("Telemetry() does not return the configured registry")
	}

	th := newThread(t, h)
	var live []NVMPtr
	for i := 0; i < 200; i++ {
		p, err := th.Alloc(uint64(64 + i%512))
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		live = append(live, p)
	}
	for _, p := range live[:100] {
		if err := th.Free(p); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	if _, err := th.TxAlloc(128, true); err != nil {
		t.Fatalf("TxAlloc: %v", err)
	}
	// One uncommitted transactional allocation: recovery must roll it back
	// and that rollback must show up as a txfree observation.
	if _, err := th.TxAlloc(256, false); err != nil {
		t.Fatalf("TxAlloc (open): %v", err)
	}
	th.Close()

	snap := h.Metrics()
	opCount := map[string]uint64{}
	for _, op := range snap.Ops {
		opCount[op.Op] = op.Count
	}
	if opCount["alloc"] != 200 {
		t.Fatalf("alloc count = %d, want 200", opCount["alloc"])
	}
	if opCount["free"] != 100 {
		t.Fatalf("free count = %d, want 100", opCount["free"])
	}
	if opCount["txalloc"] != 2 {
		t.Fatalf("txalloc count = %d, want 2", opCount["txalloc"])
	}
	for _, op := range snap.Ops {
		if op.Count == 0 {
			continue
		}
		if op.MaxNS == 0 || op.P50NS > op.MaxNS {
			t.Fatalf("%s latency implausible: %+v", op.Op, op)
		}
	}

	// Attribution: the alloc class must have flushed cachelines and fenced,
	// and its per-op ratios must be populated.
	attr := map[string]obs.ClassAttr{}
	for _, c := range snap.Attribution {
		attr[c.Class] = c
	}
	for _, class := range []string{"alloc", "free", "txalloc"} {
		c := attr[class]
		if c.Writes == 0 || c.Flushes == 0 || c.Fences == 0 {
			t.Fatalf("class %s has no attributed traffic: %+v", class, c)
		}
		if c.Ops == 0 || c.FlushesPerOp <= 0 || c.BytesPerOp <= 0 {
			t.Fatalf("class %s has no per-op ratios: %+v", class, c)
		}
	}
	if attr["format"].Writes == 0 {
		t.Fatalf("format traffic unattributed: %+v", attr["format"])
	}

	if !snap.Device.StatsEnabled {
		t.Fatal("Telemetry did not imply device stats")
	}
	sum := uint64(0)
	for _, c := range snap.Attribution {
		sum += c.Writes
	}
	if sum != snap.Device.Writes {
		t.Fatalf("attributed writes %d != device writes %d (attribution leak)", sum, snap.Device.Writes)
	}

	// Gauges must agree with the authoritative record walk.
	for i := range snap.Subheaps {
		g := snap.Subheaps[i]
		info, err := h.InspectSubheap(g.ID)
		if err != nil {
			t.Fatalf("InspectSubheap(%d): %v", g.ID, err)
		}
		if g.Initialized != info.Initialized {
			t.Fatalf("sub-heap %d initialized: gauge %v, walk %v", g.ID, g.Initialized, info.Initialized)
		}
		if g.AllocatedBlocks != info.AllocatedBlocks || g.AllocatedBytes != info.AllocatedBytes {
			t.Fatalf("sub-heap %d allocated gauge (%d blocks, %d B) != walk (%d blocks, %d B)",
				g.ID, g.AllocatedBlocks, g.AllocatedBytes, info.AllocatedBlocks, info.AllocatedBytes)
		}
		if g.FreeBlocks != info.FreeBlocks || g.FreeBytes != info.FreeBytes {
			t.Fatalf("sub-heap %d free gauge (%d blocks, %d B) != walk (%d blocks, %d B)",
				g.ID, g.FreeBlocks, g.FreeBytes, info.FreeBlocks, info.FreeBytes)
		}
		if g.Initialized && (g.Fragmentation < 0 || g.Fragmentation >= 1) {
			t.Fatalf("sub-heap %d fragmentation = %v", g.ID, g.Fragmentation)
		}
	}

	// Crash and reload with the same registry: load/recovery/txfree appear.
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	h2, err := Load(h.Device(), telemetryOptions(tel))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer h2.Close()
	snap2 := h2.Metrics()
	opCount2 := map[string]uint64{}
	for _, op := range snap2.Ops {
		opCount2[op.Op] = op.Count
	}
	if opCount2["load"] != 1 || opCount2["recovery"] != 1 {
		t.Fatalf("load/recovery counts = %d/%d, want 1/1", opCount2["load"], opCount2["recovery"])
	}
	if opCount2["txfree"] != 1 {
		t.Fatalf("txfree count = %d, want 1 (one open tx rolled back)", opCount2["txfree"])
	}
	var sawRecovery bool
	for _, e := range tel.Events() {
		if e.KindStr == "recovery" && strings.Contains(e.Detail, "1 tx blocks rolled back") {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Fatalf("no recovery event journalled: %+v", tel.Events())
	}

	// Gauges must be reseeded correctly after recovery.
	for i := range snap2.Subheaps {
		g := snap2.Subheaps[i]
		if !g.Initialized {
			continue
		}
		info, err := h2.InspectSubheap(g.ID)
		if err != nil {
			t.Fatalf("InspectSubheap(%d): %v", g.ID, err)
		}
		if g.AllocatedBlocks != info.AllocatedBlocks || g.FreeBlocks != info.FreeBlocks {
			t.Fatalf("post-recovery sub-heap %d gauges (%d alloc, %d free) != walk (%d, %d)",
				g.ID, g.AllocatedBlocks, g.FreeBlocks, info.AllocatedBlocks, info.FreeBlocks)
		}
	}
}

// TestMetricsWithoutTelemetry pins the off-path contract: a heap without a
// registry still answers Metrics() with counters and device state, and
// records nothing else.
func TestMetricsWithoutTelemetry(t *testing.T) {
	h := newTestHeap(t)
	defer h.Close()
	if h.Telemetry() != nil {
		t.Fatal("Telemetry() non-nil without Options.Telemetry")
	}
	th := newThread(t, h)
	if _, err := th.Alloc(64); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	th.Close()

	snap := h.Metrics()
	if len(snap.Ops) != 0 || len(snap.Subheaps) != 0 || len(snap.Attribution) != 0 {
		t.Fatalf("uninstrumented heap produced telemetry: %+v", snap)
	}
	if snap.Counters["allocs"] != 1 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Device.StatsEnabled {
		t.Fatal("device stats enabled without DeviceStats/Telemetry")
	}
	if snap.Device.CapacityBytes == 0 {
		t.Fatal("device capacity missing")
	}
	ds := h.DeviceStats()
	if ds.Enabled {
		t.Fatal("DeviceStats().Enabled without DeviceStats option")
	}
}

// TestQuarantineEventJournalled checks the degrade-don't-die path emits.
func TestQuarantineEventJournalled(t *testing.T) {
	tel := obs.New()
	h, err := Create(telemetryOptions(tel))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer h.Close()
	h.subheaps[1].quarantine("test reason")
	// Quarantine emits its own event plus the health transition it caused.
	ev := tel.Events()
	if len(ev) != 2 || ev[0].Kind != obs.EventQuarantine || ev[0].Subheap != 1 ||
		ev[1].Kind != obs.EventHealthChange {
		t.Fatalf("events = %+v", ev)
	}
	// Idempotent: a second quarantine of the same sub-heap does not re-emit
	// (and the unchanged health state does not either).
	h.subheaps[1].quarantine("another reason")
	if got := len(tel.Events()); got != 2 {
		t.Fatalf("re-quarantine emitted again: %d events", got)
	}
	snap := h.Metrics()
	for _, g := range snap.Subheaps {
		if g.ID == 1 && (!g.Quarantined || g.QuarantineReason != "test reason") {
			t.Fatalf("gauge does not reflect quarantine: %+v", g)
		}
	}
}

// benchAllocFree is the hot-path loop shared by the overhead benchmarks.
func benchAllocFree(b *testing.B, opts Options) {
	h, err := Create(opts)
	if err != nil {
		b.Fatalf("Create: %v", err)
	}
	defer h.Close()
	th, err := h.Thread()
	if err != nil {
		b.Fatalf("Thread: %v", err)
	}
	defer th.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := th.Alloc(256)
		if err != nil {
			b.Fatalf("Alloc: %v", err)
		}
		if err := th.Free(p); err != nil {
			b.Fatalf("Free: %v", err)
		}
	}
}

// BenchmarkAllocFreeTelemetryOff is the baseline the telemetry-on variant is
// compared against (see EXPERIMENTS.md — the off-path must cost only a nil
// check).
func BenchmarkAllocFreeTelemetryOff(b *testing.B) {
	o := testOptions()
	o.CrashTracking = false
	benchAllocFree(b, o)
}

// BenchmarkAllocFreeDeviceStatsOnly isolates the cost of the flat device
// counters from the histogram/attribution layer on top of them.
func BenchmarkAllocFreeDeviceStatsOnly(b *testing.B) {
	o := testOptions()
	o.CrashTracking = false
	o.DeviceStats = true
	benchAllocFree(b, o)
}

func BenchmarkAllocFreeTelemetryOn(b *testing.B) {
	o := testOptions()
	o.CrashTracking = false
	o.Telemetry = obs.New()
	benchAllocFree(b, o)
}
