package core

import (
	"fmt"
	"sort"

	"poseidon/internal/memblock"
	"poseidon/internal/plog"
)

// SubheapReport is the audit result of one sub-heap, the classification
// unit of the degrade-don't-die path: a sub-heap whose metadata fails audit
// is quarantined individually instead of condemning the whole heap.
type SubheapReport struct {
	ID        int
	Formatted bool
	// Quarantined marks a sub-heap taken out of service by recovery; its
	// Problems (if any) describe what the quarantining audit saw, and
	// QuarantineReason records why recovery benched it.
	Quarantined      bool
	QuarantineReason string `json:",omitempty"`
	AllocatedBlocks  uint64
	FreeBlocks       uint64
	PendingUndo      uint64
	PendingRemote    uint64 // un-drained remote-free ring entries
	Problems         []string `json:",omitempty"`
}

// CheckReport is the result of a full heap consistency audit.
type CheckReport struct {
	Subheaps        int
	Formatted       int
	Quarantined     int    // sub-heaps out of service
	QuarantinedBytes uint64 // user capacity lost to quarantine
	AllocatedBlocks uint64
	FreeBlocks      uint64
	PendingUndo     uint64 // committed undo entries awaiting replay
	PendingTx       uint64 // micro-log entries of open transactions
	PendingRemote   uint64 // un-drained remote-free ring entries
	PendingCached   uint64 // magazine-cached blocks recorded in lane manifests
	Problems        []string
	SubheapReports  []SubheapReport
}

// OK reports whether the audit found no structural problems in any
// in-service sub-heap. Pending logs are not problems — they mean recovery
// has work to do, which Load performs. Quarantined sub-heaps are not
// counted here either: quarantine is the *handled* state of a problem, and
// is surfaced separately (Quarantined, QuarantinedBytes) so callers that
// require a fully healthy heap can check both.
func (r CheckReport) OK() bool { return len(r.Problems) == 0 }

// Healthy reports a clean audit AND no quarantined capacity.
func (r CheckReport) Healthy() bool { return r.OK() && r.Quarantined == 0 }

// Check audits the whole heap: every formatted sub-heap's blocks must tile
// its user region exactly (no gaps, no overlaps, power-of-two sizes,
// size-aligned offsets), free lists and the hash table must agree, and log
// headers must be sane. It is the engine of cmd/poseidon-fsck and the
// invariant oracle of the crash-injection tests. Quarantined sub-heaps are
// reported but not audited — their metadata is already known bad.
func (h *Heap) Check() (CheckReport, error) {
	report := CheckReport{Subheaps: len(h.subheaps)}
	for _, s := range h.subheaps {
		if s.isQuarantined() {
			report.Quarantined++
			report.QuarantinedBytes += h.lay.userSize
			report.SubheapReports = append(report.SubheapReports, SubheapReport{
				ID:               s.id,
				Quarantined:      true,
				QuarantineReason: s.quarantineReason(),
			})
			continue
		}
		sub, err := s.check()
		if err != nil {
			return report, err
		}
		report.merge(sub)
	}
	// Micro-log lanes.
	h.grant(h.sbThread)
	defer h.revoke(h.sbThread)
	for i := 0; i < h.lay.laneCount; i++ {
		count, err := h.sbWin.ReadU64(h.lay.laneBase(i))
		if err != nil {
			return report, err
		}
		maxEntries := (h.lay.laneSize - 64) / 16
		if count > maxEntries {
			report.Problems = append(report.Problems,
				fmt.Sprintf("micro lane %d: corrupt count %d", i, count))
			continue
		}
		report.PendingTx += count
	}
	h.checkManifests(&report)
	return report, nil
}

// checkManifests audits every lane's cache manifest: non-zero words must
// decode, reference an in-bounds block of an in-range sub-heap, and no
// block may be cached twice across all lanes (two magazines claiming the
// same block would double-allocate it). Valid entries are counted, not
// flagged — like pending ring entries, they are work recovery performs.
// Caller holds the metadata grant.
func (h *Heap) checkManifests(report *CheckReport) {
	if h.lay.magSlots == 0 {
		return
	}
	cached := map[uint64]string{}
	for i := 0; i < h.lay.laneCount; i++ {
		base := h.lay.laneManifestBase(i)
		for k := uint64(0); k < h.lay.magSlots; k++ {
			word, err := h.sbWin.ReadU64(base + k*8)
			if err != nil {
				report.Problems = append(report.Problems,
					fmt.Sprintf("lane %d manifest slot %d: read failed: %v", i, k, err))
				continue
			}
			if word == 0 {
				continue
			}
			rel, shard, ok := plog.DecodeCacheEntry(word)
			switch {
			case !ok:
				report.Problems = append(report.Problems,
					fmt.Sprintf("lane %d manifest slot %d: corrupt entry %#x", i, k, word))
			case int(shard) >= h.lay.subheaps:
				report.Problems = append(report.Problems,
					fmt.Sprintf("lane %d manifest slot %d: sub-heap %d out of range", i, k, shard))
			case rel >= h.lay.userSize:
				report.Problems = append(report.Problems,
					fmt.Sprintf("lane %d manifest slot %d: offset %#x outside user region", i, k, rel))
			default:
				key := uint64(shard)<<subheapShift | rel
				at := fmt.Sprintf("lane %d slot %d", i, k)
				if prev, dup := cached[key]; dup {
					report.Problems = append(report.Problems, fmt.Sprintf(
						"%s: block sub=%d off=%#x already cached at %s", at, shard, rel, prev))
					continue
				}
				cached[key] = at
				report.PendingCached++
			}
		}
	}
}

// merge folds one sub-heap's report into the heap-wide aggregate.
func (r *CheckReport) merge(sub SubheapReport) {
	r.SubheapReports = append(r.SubheapReports, sub)
	if sub.Formatted {
		r.Formatted++
	}
	r.AllocatedBlocks += sub.AllocatedBlocks
	r.FreeBlocks += sub.FreeBlocks
	r.PendingUndo += sub.PendingUndo
	r.PendingRemote += sub.PendingRemote
	for _, p := range sub.Problems {
		r.Problems = append(r.Problems, fmt.Sprintf("sub-heap %d: %s", sub.ID, p))
	}
}

// check audits one sub-heap and returns its classified report. Errors are
// I/O-level failures (the audit could not run), not inconsistencies — those
// land in the report's Problems.
func (s *subheap) check() (SubheapReport, error) {
	s.mu.Lock()
	s.h.grant(s.thread)
	defer func() {
		s.h.revoke(s.thread)
		s.mu.Unlock()
	}()
	return s.checkLocked(true)
}

// checkLocked is the audit body; the caller holds s.mu and the metadata
// grant. full=false is the repair-internal mode: it skips the repair-marker
// check (the marker is legitimately set mid-repair) and the remote-free ring
// audit (the ring may still hold pending entries that repairRingLocked
// replays afterwards).
func (s *subheap) checkLocked(full bool) (SubheapReport, error) {
	report := SubheapReport{ID: s.id}
	init, err := s.initializedFlag()
	if err != nil {
		return report, err
	}
	if !init {
		return report, nil
	}
	report.Formatted = true
	if full {
		flag, err := s.win.ReadU64(s.base + shRepairingOff)
		if err != nil {
			return report, err
		}
		if flag != 0 {
			report.Problems = append(report.Problems,
				"repair in progress (interrupted repair)")
			return report, nil
		}
	}
	if err := s.ensureReady(); err != nil {
		return report, err
	}
	report.PendingUndo = s.undo.Count()
	g := s.mgr.Geometry()
	problem := func(format string, args ...any) {
		report.Problems = append(report.Problems, fmt.Sprintf(format, args...))
	}

	type blk struct{ off, size, status uint64 }
	var blocks []blk
	err = s.mgr.ForEachRecord(s.win, func(rec memblock.Record) error {
		blocks = append(blocks, blk{rec.BlockOff, rec.Size, rec.Status})
		switch {
		case rec.BlockOff < g.UserBase || rec.BlockOff+rec.Size > g.UserBase+g.UserSize:
			problem("block [%#x,%#x) outside user region", rec.BlockOff, rec.BlockOff+rec.Size)
		case rec.Size < g.ClassSize(0) || rec.Size&(rec.Size-1) != 0:
			problem("block %#x has non-class size %d", rec.BlockOff, rec.Size)
		case (rec.BlockOff-g.UserBase)%rec.Size != 0:
			problem("block %#x not aligned to its size %d", rec.BlockOff, rec.Size)
		}
		switch rec.Status {
		case memblock.StatusAllocated:
			report.AllocatedBlocks++
		case memblock.StatusFree:
			report.FreeBlocks++
		default:
			problem("block %#x has status %d", rec.BlockOff, rec.Status)
		}
		return nil
	})
	if err != nil {
		return report, err
	}

	// Exact tiling of the user region.
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].off < blocks[j].off })
	at := g.UserBase
	for _, b := range blocks {
		switch {
		case b.off > at:
			problem("gap [%#x,%#x) not covered by any block", at, b.off)
			at = b.off + b.size
		case b.off < at:
			problem("block %#x overlaps previous block ending at %#x", b.off, at)
			if b.off+b.size > at {
				at = b.off + b.size
			}
		default:
			at += b.size
		}
	}
	if at != g.UserBase+g.UserSize {
		problem("blocks cover up to %#x, region ends at %#x", at, g.UserBase+g.UserSize)
	}

	// Free lists ↔ records agreement.
	listed := map[uint64]int{}
	for c := 0; c < g.NumClasses; c++ {
		head, err := s.mgr.FreeHead(s.win, c)
		if err != nil {
			return report, err
		}
		steps := uint64(0)
		for slot := head; slot != 0; {
			rec, err := s.mgr.ReadRecord(s.win, slot)
			if err != nil {
				return report, err
			}
			if rec.Status != memblock.StatusFree {
				problem("class %d free list holds non-free block %#x", c, rec.BlockOff)
			}
			if rec.Size != g.ClassSize(c) {
				problem("class %d free list holds %d-byte block %#x", c, rec.Size, rec.BlockOff)
			}
			listed[rec.BlockOff]++
			slot = rec.NextFree
			if steps++; steps > g.TotalSlots() {
				problem("class %d free list is cyclic", c)
				break
			}
		}
	}
	for _, b := range blocks {
		if b.status == memblock.StatusFree && listed[b.off] != 1 {
			problem("free block %#x appears %d times on free lists", b.off, listed[b.off])
		}
	}

	if !full {
		return report, nil
	}

	// Remote-free ring. Non-empty slots must decode and reference the user
	// region; what the referenced record's status is depends on when the
	// crash hit (before the free committed → StatusAllocated, after → the
	// replay is an idempotent no-op), so pending entries are counted, not
	// flagged. Only corruption is a problem. The audit assumes quiescence —
	// no concurrent producers — like the rest of Check.
	ringBase := s.ring.Base()
	for i := uint64(0); i < memblock.RingSlots; i++ {
		word, err := s.win.ReadU64(ringBase + i*memblock.RingSlotBytes)
		if err != nil {
			return report, err
		}
		if word == 0 {
			continue
		}
		rel, _, ok := memblock.DecodeRingEntry(word)
		switch {
		case !ok:
			problem("remote-free ring slot %d: corrupt entry %#x", i, word)
		case rel >= g.UserSize:
			problem("remote-free ring slot %d: offset %#x outside user region", i, rel)
		default:
			report.PendingRemote++
		}
	}
	return report, nil
}
