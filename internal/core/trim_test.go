package core

import (
	"errors"
	"testing"
)

// trimOptions gives a tiny level-0 so level extension is easy to force.
func trimOptions() Options {
	return Options{
		Subheaps:        1,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 128 << 10,
		UndoLogSize:     32 << 10,
		MaxThreads:      4,
		HeapID:          0x717,
		CrashTracking:   true,
	}
}

func TestTrimMetadataShrinksEmptyLevels(t *testing.T) {
	h, err := Create(trimOptions())
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()

	// Force the hash table to extend: allocate many small blocks.
	var ptrs []NVMPtr
	for {
		p, err := th.Alloc(64)
		if errors.Is(err, ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	s := h.subheaps[0]
	levelsBefore := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		n, err := s.mgr.ActiveLevels(s.win)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}()
	if levelsBefore < 2 {
		t.Fatalf("test needs a level extension; active levels = %d", levelsBefore)
	}

	// Free everything and coalesce it back into one block.
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	big, err := th.Alloc(trimOptions().SubheapUserSize)
	if err != nil {
		t.Fatalf("coalescing alloc: %v", err)
	}
	if err := th.Free(big); err != nil {
		t.Fatal(err)
	}

	punched, err := h.TrimMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if punched == 0 {
		t.Fatal("nothing punched")
	}
	levelsAfter := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		n, err := s.mgr.ActiveLevels(s.win)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}()
	if levelsAfter != 1 {
		t.Fatalf("active levels after trim = %d, want 1", levelsAfter)
	}

	// The heap still works and can grow its table again.
	var again []NVMPtr
	for i := 0; i < 800; i++ {
		p, err := th.Alloc(64)
		if errors.Is(err, ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatalf("alloc after trim: %v", err)
		}
		again = append(again, p)
	}
	if len(again) < 800 {
		t.Fatalf("only %d allocations after trim", len(again))
	}
	for _, p := range again {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	auditHeap(t, h)
}

func TestTrimMetadataOnFreshHeap(t *testing.T) {
	h, err := Create(trimOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Unformatted sub-heaps are untouched.
	punched, err := h.TrimMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if punched != 0 {
		t.Fatalf("punched %d bytes of an unformatted heap", punched)
	}
	// Formatted but barely used: the inactive levels are punchable.
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	punched, err = h.TrimMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if punched == 0 {
		t.Fatal("inactive levels not punched")
	}
	auditHeap(t, h)
}

func TestDefragmentFullPass(t *testing.T) {
	h, err := Create(trimOptions())
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	// Fragment the heap: many small blocks, all freed (no demand-driven
	// defrag runs because nothing asks for a large block).
	var ptrs []NVMPtr
	for i := 0; i < 512; i++ {
		p, err := th.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	merges, err := h.Defragment()
	if err != nil {
		t.Fatal(err)
	}
	if merges == 0 {
		t.Fatal("no merges performed")
	}
	// Fully coalesced: the whole region is one free block again, so a
	// whole-region allocation succeeds without further defragmentation.
	info, err := h.InspectSubheap(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.FreeBlocks != 1 {
		t.Fatalf("free blocks after full defrag = %d, want 1", info.FreeBlocks)
	}
	p, err := th.Alloc(trimOptions().SubheapUserSize)
	if err != nil {
		t.Fatalf("whole-region alloc: %v", err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h)
}

func TestDefragmentIdleHeapIsNoop(t *testing.T) {
	h, err := Create(trimOptions())
	if err != nil {
		t.Fatal(err)
	}
	merges, err := h.Defragment()
	if err != nil {
		t.Fatal(err)
	}
	if merges != 0 {
		t.Fatalf("merged %d on an untouched heap", merges)
	}
}
