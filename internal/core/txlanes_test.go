package core

import (
	"errors"
	"sync"
	"testing"

	"poseidon/internal/nvm"
)

// Two threads on the SAME sub-heap run transactions concurrently; each
// owns a private micro-log lane, so one thread's commit must not absorb or
// truncate the other's open transaction.
func TestConcurrentTransactionsIsolatedLanes(t *testing.T) {
	h := newTestHeap(t)
	t1, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}

	// t1 opens a transaction and never commits; t2 commits one.
	p1, err := t1.TxAlloc(64, false)
	if err != nil {
		t.Fatal(err)
	}
	p2a, err := t2.TxAlloc(64, false)
	if err != nil {
		t.Fatal(err)
	}
	p2b, err := t2.TxAlloc(64, true) // t2 commits
	if err != nil {
		t.Fatal(err)
	}
	// t1 adds one more allocation to its still-open transaction.
	p1b, err := t1.TxAlloc(64, false)
	if err != nil {
		t.Fatal(err)
	}

	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	// t2's committed blocks survive; t1's open transaction rolled back.
	if got := h2.Stats().RecoveredBlocks; got != 2 {
		t.Fatalf("recovery rolled back %d blocks, want exactly t1's 2", got)
	}
	th, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	for _, p := range []NVMPtr{p2a, p2b} {
		if err := th.Free(p); err != nil {
			t.Fatalf("committed block %v lost: %v", p, err)
		}
	}
	for _, p := range []NVMPtr{p1, p1b} {
		if err := th.Free(p); !errors.Is(err, ErrDoubleFree) {
			t.Fatalf("uncommitted block %v not rolled back: %v", p, err)
		}
	}
	auditHeap(t, h2)
}

// Hammer the same shard from many goroutines mixing transactional and
// singleton allocations; the sub-heap lock plus per-thread lanes must keep
// everything consistent.
func TestConcurrentTxStressSameShard(t *testing.T) {
	h := newTestHeap(t)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := h.ThreadOn(0)
			if err != nil {
				errs <- err
				return
			}
			defer th.Close()
			var mine []NVMPtr
			for i := 0; i < 60; i++ {
				if i%2 == 0 {
					p, err := th.TxAlloc(uint64(64+i%256), i%6 == 4)
					if err != nil && !errors.Is(err, ErrOutOfMemory) {
						errs <- err
						return
					}
					if err == nil && i%6 == 4 {
						mine = append(mine, p)
					}
				} else {
					p, err := th.Alloc(uint64(64 + i%256))
					if err != nil && !errors.Is(err, ErrOutOfMemory) {
						errs <- err
						return
					}
					if err == nil {
						mine = append(mine, p)
					}
				}
			}
			for _, p := range mine {
				if err := th.Free(p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	auditHeap(t, h)
}
