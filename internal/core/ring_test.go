package core

import (
	"errors"
	"testing"

	"poseidon/internal/memblock"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

// ringOptions is testOptions with the remote-free rings enabled.
func ringOptions() Options {
	o := testOptions()
	o.RemoteFreeRings = true
	return o
}

// checkHeap runs the audit and returns the report, failing on I/O errors.
func checkHeap(t *testing.T, h *Heap) CheckReport {
	t.Helper()
	report, err := h.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return report
}

// TestRemoteFreeRingDrainAndReuse is the tentpole happy path: cross-sub-heap
// frees ride the owner's ring without its lock, the owner's drain turns them
// into real frees, and the freed space is reusable.
func TestRemoteFreeRingDrainAndReuse(t *testing.T) {
	h, err := Create(ringOptions())
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	defer th1.Close()

	var ptrs []NVMPtr
	for i := 0; i < 8; i++ {
		p, err := th0.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th1.Free(p); err != nil {
			t.Fatalf("remote Free: %v", err)
		}
	}
	st := h.Stats()
	if st.RemoteFrees != 8 {
		t.Fatalf("RemoteFrees = %d, want 8", st.RemoteFrees)
	}
	if report := checkHeap(t, h); report.PendingRemote != 8 || !report.OK() {
		t.Fatalf("pre-drain audit: PendingRemote = %d, problems = %v",
			report.PendingRemote, report.Problems)
	}

	if err := h.DrainRemoteFrees(); err != nil {
		t.Fatalf("DrainRemoteFrees: %v", err)
	}
	st = h.Stats()
	if st.RemoteDrains != 8 || st.Frees != 8 {
		t.Fatalf("after drain: RemoteDrains = %d, Frees = %d, want 8, 8",
			st.RemoteDrains, st.Frees)
	}
	if report := checkHeap(t, h); report.PendingRemote != 0 || !report.OK() {
		t.Fatalf("post-drain audit: PendingRemote = %d, problems = %v",
			report.PendingRemote, report.Problems)
	}
	auditHeap(t, h)
}

// TestRemoteFreeDrainOnAllocPressure verifies the errNoFreeBlock drain
// point: with the whole sub-heap parked on its remote-free ring, a
// same-size allocation must drain the ring and succeed instead of
// reporting out-of-memory.
func TestRemoteFreeDrainOnAllocPressure(t *testing.T) {
	opts := ringOptions()
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	defer th1.Close()

	whole, err := th0.Alloc(opts.SubheapUserSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := th1.Free(whole); err != nil {
		t.Fatalf("remote Free: %v", err)
	}
	// The block is still pending on the ring; only the drain can satisfy
	// this.
	again, err := th0.Alloc(opts.SubheapUserSize)
	if err != nil {
		t.Fatalf("Alloc under ring-pending pressure: %v", err)
	}
	st := h.Stats()
	if st.RemoteFrees != 1 || st.RemoteDrains != 1 || st.Frees != 1 {
		t.Fatalf("stats = %+v, want 1 remote free drained into 1 free", st)
	}
	if err := th0.Free(again); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h)
}

// TestRemoteFreeRingFullFallsBack fills the 32-slot ring and verifies the
// overflow free takes the locked path (never blocking, never lost), after
// which the drained ring accepts entries again.
func TestRemoteFreeRingFullFallsBack(t *testing.T) {
	h, err := Create(ringOptions())
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	defer th1.Close()

	const n = memblock.RingSlots + 8
	var ptrs []NVMPtr
	for i := 0; i < n; i++ {
		p, err := th0.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th1.Free(p); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	st := h.Stats()
	if st.RingFallbacks == 0 {
		t.Fatalf("no ring fallbacks across %d frees into a %d-slot ring",
			n, memblock.RingSlots)
	}
	if err := h.DrainRemoteFrees(); err != nil {
		t.Fatal(err)
	}
	if st = h.Stats(); st.Frees != n {
		t.Fatalf("Frees = %d, want %d (none lost across ring + fallback)", st.Frees, n)
	}
	if report := checkHeap(t, h); report.PendingRemote != 0 {
		t.Fatalf("PendingRemote = %d after full drain", report.PendingRemote)
	}
	auditHeap(t, h)
}

// TestRemoteFreeCrashReplayIdempotent crashes with un-drained ring entries —
// including a double free and an invalid interior-pointer free, which a
// ring-routed Free accepts without validation — and verifies recovery
// replays them idempotently: one real free, the rest counted rejects.
func TestRemoteFreeCrashReplayIdempotent(t *testing.T) {
	opts := ringOptions()
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}

	p, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	// Deferred validation: both the double free and the interior-pointer
	// free are accepted at enqueue time.
	for i := 0; i < 2; i++ {
		if err := th1.Free(p); err != nil {
			t.Fatalf("ring-routed Free %d: %v", i, err)
		}
	}
	interior := makePtr(h.HeapID(), 0, p.Offset()+64)
	if err := th1.Free(interior); err != nil {
		t.Fatalf("ring-routed interior free: %v", err)
	}
	th0.Close()
	th1.Close()

	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()
	h2, err := Load(h.Device(), opts)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	st := h2.Stats()
	if st.Frees != 1 || st.DoubleFrees != 1 || st.InvalidFrees != 1 {
		t.Fatalf("replay stats: Frees=%d DoubleFrees=%d InvalidFrees=%d, want 1,1,1",
			st.Frees, st.DoubleFrees, st.InvalidFrees)
	}
	if st.RecoveredNoops != 2 {
		t.Fatalf("RecoveredNoops = %d, want 2 (rejected replays are no-ops)", st.RecoveredNoops)
	}
	if st.RemoteDrains != 1 {
		t.Fatalf("RemoteDrains = %d, want 1", st.RemoteDrains)
	}
	if report := checkHeap(t, h2); report.PendingRemote != 0 || !report.OK() {
		t.Fatalf("post-replay audit: PendingRemote = %d, problems = %v",
			report.PendingRemote, report.Problems)
	}
	auditHeap(t, h2)

	// The ring re-armed after a clean replay: remote frees still work.
	ta, err := h2.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := h2.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	defer tb.Close()
	q, err := ta.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Free(q); err != nil {
		t.Fatal(err)
	}
	if h2.Stats().RemoteFrees == 0 {
		t.Fatal("ring not re-armed after clean replay")
	}
	if err := h2.DrainRemoteFrees(); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h2)
}

// TestRemoteFreeRingBitFlipQuarantine seeds media corruption in a pending
// ring entry: recovery must not crash, must not replay the corrupt entry,
// and the ScrubOnLoad audit must quarantine the owning sub-heap.
func TestRemoteFreeRingBitFlipQuarantine(t *testing.T) {
	opts := ringOptions()
	opts.ScrubOnLoad = true
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	// Format sub-heap 1 too so the healthy half is live after the reload.
	p1, err := th1.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th1.Free(p0); err != nil { // ticket 0 → slot 0 of sub-heap 0's ring
		t.Fatal(err)
	}
	th0.Close()
	th1.Close()

	// Byte 7 of the slot word holds checksum bits only: the flip guarantees
	// a checksum mismatch. InjectBitFlip corrupts both images, so this is
	// media corruption, not a recoverable dirty store.
	ringBase := h.subheaps[0].ring.Base()
	if err := h.Device().InjectBitFlip(ringBase+7, 3); err != nil {
		t.Fatal(err)
	}

	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()
	h2, err := Load(h.Device(), opts)
	if err != nil {
		t.Fatalf("Load must degrade, not die: %v", err)
	}
	if !h2.subheaps[0].isQuarantined() {
		t.Fatal("sub-heap 0 not quarantined after ring entry bit flip")
	}
	if h2.subheaps[1].isQuarantined() {
		t.Fatal("healthy sub-heap 1 was quarantined")
	}
	// The corrupt entry must not have been replayed as a free.
	if st := h2.Stats(); st.Frees != 0 || st.RemoteDrains != 0 {
		t.Fatalf("corrupt entry was replayed: %+v", st)
	}
	report := checkHeap(t, h2)
	if !report.OK() {
		t.Fatalf("quarantine must absorb the problems, got: %v", report.Problems)
	}
	if report.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", report.Quarantined)
	}

	// The healthy sub-heap still serves, including its untouched block.
	tb, err := h2.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if err := tb.Free(p1); err != nil {
		t.Fatalf("free on healthy sub-heap: %v", err)
	}
}

// TestRemoteFreeCheckReportsPendingAndCorrupt pins the audit semantics:
// valid pending entries count as PendingRemote (not problems — they are
// legal crash states), while undecodable and out-of-range entries are
// structural problems.
func TestRemoteFreeCheckReportsPendingAndCorrupt(t *testing.T) {
	h, err := Create(ringOptions())
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	defer th1.Close()
	pa, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th1.Free(pa); err != nil {
		t.Fatal(err)
	}
	if err := th1.Free(pb); err != nil {
		t.Fatal(err)
	}
	if report := checkHeap(t, h); report.PendingRemote != 2 || !report.OK() {
		t.Fatalf("PendingRemote = %d, problems = %v; want 2, none",
			report.PendingRemote, report.Problems)
	}

	// Hand-plant an entry pointing past the user region into an unused
	// slot, and corrupt one pending entry's checksum.
	s := h.subheaps[0]
	g := s.mgr.Geometry()
	outOfRange := memblock.EncodeRingEntry(g.UserSize+64, 0)
	s.mu.Lock()
	h.grant(s.thread)
	werr := s.win.WriteU64(s.ring.Base()+2*memblock.RingSlotBytes, outOfRange)
	h.revoke(s.thread)
	s.mu.Unlock()
	if werr != nil {
		t.Fatal(werr)
	}
	if err := h.Device().InjectBitFlip(s.ring.Base()+7, 3); err != nil {
		t.Fatal(err)
	}

	report := checkHeap(t, h)
	if report.OK() {
		t.Fatal("audit missed the corrupt and out-of-range ring entries")
	}
	var corrupt, outside bool
	for _, p := range report.Problems {
		switch {
		case contains(p, "corrupt entry"):
			corrupt = true
		case contains(p, "outside user region"):
			outside = true
		}
	}
	if !corrupt || !outside {
		t.Fatalf("problems = %v; want both a corrupt and an out-of-range finding",
			report.Problems)
	}
	if report.PendingRemote != 1 {
		t.Fatalf("PendingRemote = %d, want 1 (the surviving valid entry)", report.PendingRemote)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestRemoteFreeDisabledByDefault guards the opt-in: without
// Options.RemoteFreeRings, cross-sub-heap frees stay synchronous and
// validation errors surface at the call site.
func TestRemoteFreeDisabledByDefault(t *testing.T) {
	h := newTestHeap(t)
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	defer th1.Close()
	p, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th1.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := th1.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second Free = %v, want ErrDoubleFree synchronously", err)
	}
	if st := h.Stats(); st.RemoteFrees != 0 || st.RemoteDrains != 0 {
		t.Fatalf("ring used without opt-in: %+v", st)
	}
	auditHeap(t, h)
}

// TestRemoteFreeRejectedTelemetry is the regression test for the Free
// telemetry fix: a rejected free must not contribute an OpFree latency
// sample (it measures the validation path, not a free) — it is journalled
// as EventFreeRejected instead. A drained batch lands in the drain
// histogram.
func TestRemoteFreeRejectedTelemetry(t *testing.T) {
	tel := obs.New()
	opts := ringOptions()
	opts.Telemetry = tel
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	defer th1.Close()

	p, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	// Same-shard path validates synchronously.
	if err := th0.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := th0.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free = %v", err)
	}
	if got := tel.Hist(obs.OpFree).Count; got != 1 {
		t.Fatalf("OpFree samples = %d after 1 accepted + 1 rejected free, want 1", got)
	}
	var rejected bool
	for _, e := range tel.Events() {
		if e.Kind == obs.EventFreeRejected && e.Subheap == 0 {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("no EventFreeRejected journal entry for the rejected free")
	}

	// Ring-routed free + drain shows up in the drain histogram.
	q, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th1.Free(q); err != nil {
		t.Fatal(err)
	}
	if err := h.DrainRemoteFrees(); err != nil {
		t.Fatal(err)
	}
	if tel.Hist(obs.OpDrain).Count == 0 {
		t.Fatal("drain batch not recorded in the OpDrain histogram")
	}
	auditHeap(t, h)
}
