package core

import "errors"

// Errors returned by the allocator API. Invalid and double frees are
// detected by the memory-block hash table and rejected instead of
// corrupting metadata (paper §4.4, §5.5).
var (
	// ErrOutOfMemory means no free block could satisfy the request even
	// after defragmentation.
	ErrOutOfMemory = errors.New("poseidon: out of memory")
	// ErrInvalidFree reports a free of an address that is not the start of
	// an allocated block of this heap. The free is ignored.
	ErrInvalidFree = errors.New("poseidon: invalid free rejected")
	// ErrDoubleFree reports a free of a block that is already free. The
	// free is ignored.
	ErrDoubleFree = errors.New("poseidon: double free rejected")
	// ErrBadPointer reports a persistent pointer that does not belong to
	// this heap (wrong heap ID, sub-heap, or offset out of range).
	ErrBadPointer = errors.New("poseidon: bad persistent pointer")
	// ErrBadSize reports an unsatisfiable allocation size.
	ErrBadSize = errors.New("poseidon: allocation size out of range")
	// ErrCorruptHeap reports an unloadable or inconsistent heap image.
	ErrCorruptHeap = errors.New("poseidon: corrupt heap")
	// ErrClosed reports use of a closed heap or thread.
	ErrClosed = errors.New("poseidon: heap is closed")
	// ErrNoThreads means the micro-log lane pool is exhausted; raise
	// Options.MaxThreads.
	ErrNoThreads = errors.New("poseidon: too many concurrent threads")
	// ErrTxTooLarge means one transactional allocation sequence overflowed
	// its micro-log lane; raise Options.MicroLogLaneSize.
	ErrTxTooLarge = errors.New("poseidon: transaction exceeds micro log capacity")
	// ErrSubheapQuarantined reports an operation on a sub-heap recovery
	// took out of service after its metadata failed audit. Allocations
	// route to healthy sub-heaps automatically; frees of blocks inside the
	// quarantined region surface this error.
	ErrSubheapQuarantined = errors.New("poseidon: sub-heap is quarantined")
	// ErrReadOnly reports a mutating operation on a heap whose health state
	// machine has entered ReadOnly: a majority of sub-heaps are quarantined,
	// so writes are rejected while reads (and repair) continue.
	ErrReadOnly = errors.New("poseidon: heap is read-only")
	// ErrNotQuarantined reports a Repair of a sub-heap that is in service —
	// repair rebuilds metadata in place and must never run under live
	// traffic on a healthy sub-heap.
	ErrNotQuarantined = errors.New("poseidon: sub-heap is not quarantined")
)
