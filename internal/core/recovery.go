// Parallel crash recovery (paper §5.8): everything Load does after the
// superblock log has replayed is per-sub-heap independent — each sub-heap's
// undo log, the micro-log rollbacks and cache-manifest frees targeting it,
// and its fsck audit touch only that sub-heap's metadata region — so the
// load tail fans out over a bounded worker pool sized by
// Options.RecoveryParallelism.
//
// The fan-out is proven byte-identical to the serial path (the differential
// suite in internal/alloctest asserts it image-for-image) because of how
// the work is split:
//
//   - Phase 1 recovers every sub-heap's own logs concurrently; the work was
//     already self-contained under the sub-heap lock.
//   - Phase 2 scans every micro lane and cache manifest read-only.
//   - Phase 3 replays the scanned entries grouped BY TARGET SUB-HEAP, not
//     by lane: a sub-heap's mutations depend only on its own projection of
//     the global (lane, position) replay order, and replaying its entries
//     in exactly that order — lanes ascending, positions ascending — from a
//     single worker reproduces the serial image bit for bit. Replaying
//     lanes concurrently instead would interleave frees from different
//     lanes into the same free list nondeterministically.
//   - Phase 4 truncates replayed lanes and clears processed manifest words,
//     one worker per lane, after every free from phase 3 is durable — the
//     same clear-after-free ordering the serial path establishes per entry,
//     so a crash at any interior point re-recovers idempotently (surviving
//     entries replay as no-ops against already-free blocks).
//
// Barriers between phases keep the crash-safety argument one-directional:
// nothing is erased (truncate, manifest clear) until everything it covers
// is durably replayed, and mirrors refresh only after the full audit joins.

package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

// recoveryParallelism resolves Options.RecoveryParallelism: 0 means
// GOMAXPROCS, anything below 1 is clamped to the serial path.
func (h *Heap) recoveryParallelism() int {
	p := h.opts.RecoveryParallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// forEachRecovery runs fn(worker, task) for every task in [0, n) on up to
// par workers. With par <= 1 it degenerates to the plain serial loop,
// stopping at the first error — the legacy behavior. In parallel mode every
// task runs to completion and the error of the LOWEST-numbered failing task
// is returned: aggregation is deterministic no matter how the pool
// interleaved, so a corrupt image yields the same fatal error at every
// parallelism level. Workers pull tasks from a shared counter (work
// stealing), bounding the pool while keeping long tasks from serializing
// behind short ones.
func (h *Heap) forEachRecovery(n, par int, fn func(worker, task int) error) error {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// recWorker is one recovery worker's execution context: its own protection
// thread (mpk.Thread is register-like state and must never be shared
// between goroutines) and its own device window so attribution recording
// stays owner-serialized — each worker charges ClassRecovery through its
// own recorder into the shared (atomic) attribution table.
type recWorker struct {
	th  *mpk.Thread
	win mpk.Window
}

// newRecWorkers builds par worker contexts. Threads are created through the
// unit so grant/revoke work under every protection mode, including a sealed
// ProtectMPKHardened unit (the authority vets the switch call sites, not
// the thread set).
func (h *Heap) newRecWorkers(par int) []recWorker {
	ws := make([]recWorker, par)
	for i := range ws {
		th := h.unit.NewThread(defaultRights(h.opts))
		win := mpk.NewWindow(h.dev, th)
		if h.tel != nil {
			win = win.WithRecorder(nvm.NewAttrRecorder(h.tel.Attribution(), nvm.ClassRecovery))
		}
		ws[i] = recWorker{th: th, win: win}
	}
	return ws
}

// wrapLaneErr applies the serial path's fatal-error dressing: corruption-
// class failures get the ErrCorruptHeap prefix, device-class failures pass
// through with position context only.
func wrapLaneErr(prefix string, lane int, err error) error {
	if err == nil {
		return nil
	}
	if !quarantinable(err) {
		return fmt.Errorf("%s %d: %w", prefix, lane, err)
	}
	return fmt.Errorf("%w: %s %d: %v", ErrCorruptHeap, prefix, lane, err)
}

// txItem is one scanned micro-log rollback: free the block at device
// offset dev in sub-heap sub. lane is kept for latency attribution and
// error context.
type txItem struct {
	sub, lane int
	dev       uint64
}

// manItem is one scanned, decodable cache-manifest entry: return the block
// at user-relative offset rel to sub-heap sub, then clear manifest word
// slot of lane.
type manItem struct {
	sub, lane int
	slot, rel uint64
}

// laneScan is phase 2's read-only harvest of one lane.
type laneScan struct {
	tx         []txItem
	txNonEmpty bool // the micro log held entries, so phase 4 must truncate
	man        []manItem
}

// recoverFanout is the parallel load tail: the phase structure documented
// at the top of this file, replacing recoverSerial's three loops when
// RecoveryParallelism > 1.
func (h *Heap) recoverFanout(par int) error {
	// Phase 1: per-sub-heap undo-log recovery, ring replay and reseeding.
	err := h.forEachRecovery(len(h.subheaps), par, func(_, i int) error {
		s := h.subheaps[i]
		err := h.retry(s.recoverLogs)
		if err == nil {
			return nil
		}
		if !quarantinable(err) {
			return fmt.Errorf("sub-heap %d: %w", s.id, err)
		}
		s.quarantine(fmt.Sprintf("log recovery failed: %v", err))
		return nil
	})
	if err != nil {
		return err
	}

	workers := h.newRecWorkers(par)

	// Phase 2: read-only scan of every lane's micro log and cache manifest.
	scans := make([]laneScan, h.lay.laneCount)
	err = h.forEachRecovery(h.lay.laneCount, par, func(w, i int) error {
		return h.scanLane(&workers[w], i, &scans[i])
	})
	if err != nil {
		return err
	}

	// Bucket the harvest by target sub-heap, preserving each sub-heap's
	// projection of the serial replay order — lanes ascending, positions
	// ascending, micro-log rollbacks before manifest frees. This grouping
	// is the byte-identity argument: sub-heap s's metadata mutations are a
	// pure function of the sequence of frees applied to s, and that
	// sequence is exactly what the serial loops would apply.
	txBy := make([][]txItem, len(h.subheaps))
	manBy := make([][]manItem, len(h.subheaps))
	clears := make([][]bool, h.lay.laneCount)
	for lane := range scans {
		for _, it := range scans[lane].tx {
			txBy[it.sub] = append(txBy[it.sub], it)
		}
		for _, it := range scans[lane].man {
			manBy[it.sub] = append(manBy[it.sub], it)
		}
		if len(scans[lane].man) > 0 {
			clears[lane] = make([]bool, h.lay.magSlots)
		}
	}

	// Phase 3: replay, one worker per sub-heap. Workers only mark clears —
	// each manifest slot belongs to exactly one entry and each entry to
	// exactly one sub-heap, so the marks are disjoint writes.
	err = h.forEachRecovery(len(h.subheaps), par, func(_, i int) error {
		return h.retry(func() error {
			return h.replaySubheap(h.subheaps[i], txBy[i], manBy[i], clears)
		})
	})
	if err != nil {
		return err
	}

	// Phase 4: truncate replayed lanes and clear processed manifest words.
	// Runs only after every replay joined: erasing a log entry before its
	// free is durable would turn a crash here into a leak.
	return h.forEachRecovery(h.lay.laneCount, par, func(w, i int) error {
		return h.retry(func() error {
			return h.finalizeLane(&workers[w], i, &scans[i], clears[i])
		})
	})
}

// scanLane reads lane's micro log and cache manifest without mutating
// anything, collecting the replay work into out. Invalid manifest entries
// are journaled and left in place for the audit, exactly as the serial walk
// does. Safe to re-run (the retry wrapper may): out is rebuilt from scratch
// on every attempt.
func (h *Heap) scanLane(w *recWorker, lane int, out *laneScan) error {
	err := h.retry(func() error {
		out.tx = out.tx[:0]
		out.txNonEmpty = false
		h.grant(w.th)
		ml, err := plog.OpenMicroLog(w.win, h.lay.laneBase(lane), h.lay.laneSize)
		if err != nil {
			h.revoke(w.th)
			return err
		}
		if ml.IsEmpty() {
			h.revoke(w.th)
			return nil
		}
		entries, err := ml.Entries()
		h.revoke(w.th)
		if err != nil {
			return err
		}
		out.txNonEmpty = true
		for _, e := range entries {
			sub := uint16(e.Offset >> subheapShift)
			off := e.Offset & offsetMask
			dev, err := h.lay.locToDevice(sub, off)
			if err != nil {
				continue // stale entry pointing nowhere valid; skip
			}
			out.tx = append(out.tx, txItem{sub: int(sub), lane: lane, dev: dev})
		}
		return nil
	})
	if err != nil {
		return wrapLaneErr("micro lane", lane, err)
	}
	if h.lay.magSlots == 0 {
		return nil
	}
	err = h.retry(func() error {
		out.man = out.man[:0]
		man := plog.NewManifest(h.lay.laneManifestBase(lane), h.lay.magSlots)
		for k := uint64(0); k < man.Slots(); k++ {
			word, err := w.win.ReadU64(man.WordOff(k))
			if err != nil {
				return err
			}
			if word == 0 {
				continue
			}
			rel, shard, ok := plog.DecodeCacheEntry(word)
			if !ok || int(shard) >= h.lay.subheaps || rel >= h.lay.userSize {
				h.tel.Emit(obs.EventScrubFinding, -1, fmt.Sprintf(
					"cache manifest %d slot %d: invalid entry %#x", lane, k, word))
				continue
			}
			out.man = append(out.man, manItem{sub: int(shard), lane: lane, slot: k, rel: rel})
		}
		return nil
	})
	return wrapLaneErr("cache manifest", lane, err)
}

// replaySubheap applies one sub-heap's bucketed replay work in serial
// order: micro-log rollbacks first, manifest frees second, marking the
// manifest words phase 4 may clear. The per-entry semantics live in
// replayTxEntry/replayManifestEntry, shared with the serial path.
func (h *Heap) replaySubheap(s *subheap, tx []txItem, man []manItem, clears [][]bool) error {
	for _, it := range tx {
		if err := h.replayTxEntry(s, it.lane, it.dev); err != nil {
			return wrapLaneErr("micro lane", it.lane, err)
		}
	}
	for _, it := range man {
		clear, err := h.replayManifestEntry(s, it.rel)
		if err != nil {
			// Only non-quarantinable errors escape replayManifestEntry
			// (corruption quarantines in place), matching the serial wrap.
			return fmt.Errorf("cache manifest %d: %w", it.lane, err)
		}
		if clear {
			clears[it.lane][it.slot] = true
		}
	}
	return nil
}

// finalizeLane truncates lane's replayed micro log and clears its processed
// manifest words — the durable statement that this lane's recovery work is
// done. Idempotent: re-running after a transient retry (or a crash and a
// fresh Load) redoes writes that are already in their final state.
func (h *Heap) finalizeLane(w *recWorker, lane int, sc *laneScan, clears []bool) error {
	if sc.txNonEmpty {
		h.grant(w.th)
		ml, err := plog.OpenMicroLog(w.win, h.lay.laneBase(lane), h.lay.laneSize)
		if err == nil {
			err = ml.Truncate()
		}
		h.revoke(w.th)
		if err != nil {
			return wrapLaneErr("micro lane", lane, err)
		}
	}
	if len(clears) == 0 {
		return nil
	}
	man := plog.NewManifest(h.lay.laneManifestBase(lane), h.lay.magSlots)
	cleared := 0
	for slot, clear := range clears {
		if !clear {
			continue
		}
		off := man.WordOff(uint64(slot))
		h.grant(w.th)
		werr := w.win.WriteU64(off, 0)
		var ferr error
		if werr == nil {
			ferr = w.win.Flush(off, 8)
		}
		h.revoke(w.th)
		if werr != nil {
			return wrapLaneErr("cache manifest", lane, werr)
		}
		if ferr != nil {
			return wrapLaneErr("cache manifest", lane, ferr)
		}
		cleared++
	}
	if cleared > 0 {
		w.win.Fence()
	}
	return nil
}
