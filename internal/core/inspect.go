package core

import (
	"fmt"
	"io"

	"poseidon/internal/memblock"
)

// SubheapInfo is an inspection snapshot of one sub-heap.
type SubheapInfo struct {
	ID              int
	Initialized     bool
	AllocatedBlocks uint64
	AllocatedBytes  uint64
	FreeBlocks      uint64
	FreeBytes       uint64
	ActiveLevels    int
	UndoLogEntries  uint64
	ClassHistogram  map[uint64]uint64 // block size -> allocated count
}

// InspectSubheap audits sub-heap i and returns its snapshot.
func (h *Heap) InspectSubheap(i int) (SubheapInfo, error) {
	if i < 0 || i >= len(h.subheaps) {
		return SubheapInfo{}, fmt.Errorf("poseidon: sub-heap %d out of range", i)
	}
	s := h.subheaps[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	info := SubheapInfo{ID: i, ClassHistogram: map[uint64]uint64{}}
	init, err := s.initializedFlag()
	if err != nil {
		return info, err
	}
	info.Initialized = init
	if !init {
		return info, nil
	}
	h.grant(s.thread)
	defer h.revoke(s.thread)
	if !s.ready {
		if err := s.ensureReady(); err != nil {
			return info, err
		}
	}
	levels, err := s.mgr.ActiveLevels(s.win)
	if err != nil {
		return info, err
	}
	info.ActiveLevels = levels
	info.UndoLogEntries = s.undo.Count()
	err = s.mgr.ForEachRecord(s.win, func(rec memblock.Record) error {
		if rec.Status == memblock.StatusAllocated {
			info.AllocatedBlocks++
			info.AllocatedBytes += rec.Size
			info.ClassHistogram[rec.Size]++
		} else {
			info.FreeBlocks++
			info.FreeBytes += rec.Size
		}
		return nil
	})
	return info, err
}

// RecordSlot returns the device offset of the hash-table record describing
// the block p points at — the handle corruption-injection tests use to
// flip bits in a specific record. No quarantine check: tests inspect
// benched sub-heaps too.
func (h *Heap) RecordSlot(p NVMPtr) (uint64, error) {
	s, dev, err := h.resolve(p)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	h.grant(s.thread)
	defer func() {
		h.revoke(s.thread)
		s.mu.Unlock()
	}()
	if err := s.ensureReady(); err != nil {
		return 0, err
	}
	return s.mgr.Lookup(s.win, dev)
}

// Inspect writes a human-readable dump of the heap's structure — the
// poseidon-inspect tool's engine.
func (h *Heap) Inspect(w io.Writer) error {
	fmt.Fprintf(w, "Poseidon heap %#x\n", h.heapID)
	fmt.Fprintf(w, "  sub-heaps:        %d\n", h.lay.subheaps)
	fmt.Fprintf(w, "  user bytes/sub:   %d\n", h.lay.userSize)
	fmt.Fprintf(w, "  meta bytes/sub:   %d\n", h.lay.metaSize)
	fmt.Fprintf(w, "  micro-log lanes:  %d × %d B\n", h.lay.laneCount, h.lay.laneSize)
	fmt.Fprintf(w, "  device capacity:  %d\n", h.dev.Capacity())
	fmt.Fprintf(w, "  device resident:  %d\n", h.dev.ResidentBytes())
	root, err := h.Root()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  root:             %v\n", root)
	for i := range h.subheaps {
		info, err := h.InspectSubheap(i)
		if err != nil {
			return fmt.Errorf("sub-heap %d: %w", i, err)
		}
		if !info.Initialized {
			fmt.Fprintf(w, "  sub-heap %d: not yet formatted\n", i)
			continue
		}
		fmt.Fprintf(w, "  sub-heap %d: %d allocated blocks (%d B), %d free blocks (%d B), %d hash levels\n",
			i, info.AllocatedBlocks, info.AllocatedBytes, info.FreeBlocks, info.FreeBytes, info.ActiveLevels)
		if info.UndoLogEntries > 0 {
			fmt.Fprintf(w, "    WARNING: undo log holds %d entries (interrupted operation)\n", info.UndoLogEntries)
		}
	}
	st := h.Stats()
	fmt.Fprintf(w, "  lifetime: %d allocs, %d tx-allocs, %d frees, %d defrag merges\n",
		st.Allocs, st.TxAllocs, st.Frees, st.DefragMerges)
	fmt.Fprintf(w, "  rejected: %d invalid frees, %d double frees\n", st.InvalidFrees, st.DoubleFrees)
	fmt.Fprintf(w, "  recovery: %d rolled-back tx blocks, %d no-ops\n", st.RecoveredBlocks, st.RecoveredNoops)
	fmt.Fprintf(w, "  wrpkru:   %d permission switches\n", st.PermissionSwitches)
	return nil
}
