package core

import (
	"fmt"

	"poseidon/internal/memblock"
)

// Metadata mirror: each sub-heap keeps a checksummed shadow of its critical
// header state — the active hash-table level count and every size class's
// free-list anchors — in the spare space of its header page (layout.go,
// shMirrorOff). The mirror is what lets repair restore a corrupt primary
// header instead of benching the whole sub-heap: interior record fields are
// re-derivable by walking the table, but the level count and list anchors
// are authoritative only in the header, so they get a second copy.
//
// Two slots alternate (A/B): an update always overwrites the slot NOT
// holding the latest valid image, so a crash mid-update tears at most the
// older copy. Each slot carries a monotonic sequence number and a checksum
// over every word; loads take the valid slot with the highest sequence.
// Updates are paced (every mirrorInterval committed mutations, plus every
// structural commit point) and strictly best-effort: a failed or skipped
// update just leaves an older — still self-consistent — image behind, and
// repair audits the restored state before trusting it.

const (
	// mirrorMagic is "PSMIRROR" little endian.
	mirrorMagic uint64 = 0x524f5252494d5350

	// mirrorInterval paces steady-state mirror refreshes: one update per
	// this many committed mutations (allocs/frees). Structural changes
	// (format, recovery, level extension, repair) update unconditionally.
	mirrorInterval = 128
)

// mirrorImage is a decoded mirror slot.
type mirrorImage struct {
	seq    uint64
	levels int
	lists  [][2]uint64 // per class: head, tail
}

// mirrorWords returns the slot's word count: magic, seq, levels, classes,
// head/tail per class, checksum.
func (s *subheap) mirrorWords() int {
	return 5 + 2*s.mgr.Geometry().NumClasses
}

// mirrorEnabled reports whether the summary fits a mirror slot. With the
// geometry bounds in layout.go this is always true today; the guard keeps a
// future geometry change from silently writing past the slot.
func (s *subheap) mirrorEnabled() bool {
	return uint64(s.mirrorWords())*8 <= shMirrorSlotSize
}

// mirrorSlotBase returns the device offset of mirror slot i.
func (s *subheap) mirrorSlotBase(i int) uint64 {
	return s.base + shMirrorOff + uint64(i)*shMirrorSlotSize
}

// mirrorChecksum folds the slot's body words into the check word
// (splitmix64-style avalanche per word, same family as the ring's check).
func mirrorChecksum(words []uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
	}
	return h
}

// mirrorAnchorValid reports whether a free-list anchor read from the live
// header could possibly be a record slot: zero (empty list) or a 64-aligned
// offset inside the hash-table arena.
func (s *subheap) mirrorAnchorValid(a uint64) bool {
	if a == 0 {
		return true
	}
	g := s.mgr.Geometry()
	return a >= g.LevelOff[0] && a < g.End && a%memblock.RecordSize == 0
}

// updateMirrorLocked captures the live header state into the stale mirror
// slot. Caller holds s.mu with the metadata window granted and no staged
// batch words (the reads go straight to the window). The capture is
// validated before anything is written: if the live header is already
// corrupt, the update is skipped so the last good image survives for
// repair. Errors are reported but callers treat the update as best-effort.
func (s *subheap) updateMirrorLocked() error {
	if !s.mirrorEnabled() {
		return nil
	}
	g := s.mgr.Geometry()
	levels, err := s.mgr.ActiveLevels(s.win)
	if err != nil {
		return err // corrupt or unreadable level count: keep the old image
	}
	words := make([]uint64, s.mirrorWords())
	words[0] = mirrorMagic
	words[1] = s.mirrorSeq + 1
	words[2] = uint64(levels)
	words[3] = uint64(g.NumClasses)
	for c := 0; c < g.NumClasses; c++ {
		head, err := s.mgr.FreeHead(s.win, c)
		if err != nil {
			return err
		}
		tail, err := s.mgr.FreeTail(s.win, c)
		if err != nil {
			return err
		}
		if !s.mirrorAnchorValid(head) || !s.mirrorAnchorValid(tail) {
			return fmt.Errorf("%w: free-list anchor of class %d out of bounds", ErrCorruptHeap, c)
		}
		words[4+2*c] = head
		words[4+2*c+1] = tail
	}
	words[len(words)-1] = mirrorChecksum(words[:len(words)-1])

	slot := s.mirrorSlotBase(int((s.mirrorSeq + 1) % shMirrorSlots))
	for i, w := range words {
		if err := s.win.WriteU64(slot+uint64(i)*8, w); err != nil {
			return err
		}
	}
	if err := s.win.Flush(slot, uint64(len(words))*8); err != nil {
		return err
	}
	s.win.Fence()
	s.mirrorSeq++
	return nil
}

// loadMirrorLocked reads both mirror slots and returns the valid image with
// the highest sequence number, or nil if neither slot validates (fresh
// image, torn first update, or corrupted header page). Caller holds s.mu
// with the window granted.
func (s *subheap) loadMirrorLocked() (*mirrorImage, error) {
	if !s.mirrorEnabled() {
		return nil, nil
	}
	g := s.mgr.Geometry()
	n := s.mirrorWords()
	var best *mirrorImage
	for i := 0; i < shMirrorSlots; i++ {
		base := s.mirrorSlotBase(i)
		words := make([]uint64, n)
		readErr := false
		for j := range words {
			w, err := s.win.ReadU64(base + uint64(j)*8)
			if err != nil {
				if quarantinable(err) {
					readErr = true // unreadable slot: treat as invalid
					break
				}
				return nil, err
			}
			words[j] = w
		}
		if readErr {
			continue
		}
		if words[0] != mirrorMagic ||
			words[n-1] != mirrorChecksum(words[:n-1]) ||
			words[3] != uint64(g.NumClasses) ||
			words[2] < 1 || words[2] > uint64(len(g.LevelCap)) {
			continue
		}
		img := &mirrorImage{
			seq:    words[1],
			levels: int(words[2]),
			lists:  make([][2]uint64, g.NumClasses),
		}
		ok := true
		for c := 0; c < g.NumClasses; c++ {
			head, tail := words[4+2*c], words[4+2*c+1]
			if !s.mirrorAnchorValid(head) || !s.mirrorAnchorValid(tail) ||
				(head == 0) != (tail == 0) {
				ok = false
				break
			}
			img.lists[c] = [2]uint64{head, tail}
		}
		if !ok {
			continue
		}
		if best == nil || img.seq > best.seq {
			best = img
		}
	}
	return best, nil
}

// seedMirrorSeq aligns the in-DRAM sequence counter with the newest valid
// on-device image so the next update targets the stale slot. Caller holds
// s.mu with the window granted.
func (s *subheap) seedMirrorSeq() {
	img, err := s.loadMirrorLocked()
	if err != nil || img == nil {
		s.mirrorSeq = 0
		return
	}
	s.mirrorSeq = img.seq
}

// restoreMirrorLocked stages the mirrored level count and free-list anchors
// over the primary header and commits. Caller holds s.mu with the window
// granted and s.batch open; the restored state still needs a full audit
// before the sub-heap returns to service.
func (s *subheap) restoreMirrorLocked(img *mirrorImage) error {
	if err := s.mgr.SetActiveLevels(s.batch, img.levels); err != nil {
		s.batch.Abort()
		return err
	}
	for c, ht := range img.lists {
		if err := s.mgr.SetFreeList(s.batch, c, ht[0], ht[1]); err != nil {
			s.batch.Abort()
			return err
		}
	}
	if err := s.batch.Commit(); err != nil {
		s.batch.Abort()
		if rerr := s.undo.Replay(); rerr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", err, rerr)
		}
		return err
	}
	return nil
}

// noteMirrorMutation counts one committed mutation and refreshes the mirror
// every mirrorInterval-th call. Best-effort: a failed refresh leaves the
// previous image in place. Caller holds s.mu with the window granted and a
// clean batch (called only after a successful Commit).
func (s *subheap) noteMirrorMutation() {
	s.mutations++
	if s.mutations%mirrorInterval == 0 {
		_ = s.updateMirrorLocked()
	}
}

// SyncMirrors forces a mirror refresh on every in-service sub-heap — a
// deterministic commit point for tests and for callers about to snapshot
// the device.
func (h *Heap) SyncMirrors() error {
	if h.isClosed() {
		return ErrClosed
	}
	return h.syncMirrors()
}

// syncMirrors is the SyncMirrors body, also called by recover after a clean
// ScrubOnLoad audit.
func (h *Heap) syncMirrors() error {
	var first error
	for _, s := range h.subheaps {
		if s.isQuarantined() {
			continue
		}
		s.mu.Lock()
		if s.ready {
			h.grant(s.thread)
			if err := s.updateMirrorLocked(); err != nil && first == nil {
				first = err
			}
			h.revoke(s.thread)
		}
		s.mu.Unlock()
	}
	return first
}
