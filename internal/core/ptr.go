package core

import "fmt"

// NVMPtr is Poseidon's 16-byte persistent pointer (paper §4.6): an 8-byte
// heap ID plus a location word packing a 2-byte sub-heap ID and a 6-byte
// offset within that sub-heap's user region. It is stable across restarts
// and address-space layouts; convert to a raw device offset with
// Heap.RawOffset before accessing memory.
//
// The zero NVMPtr is the null pointer.
type NVMPtr struct {
	HeapID uint64
	loc    uint64
}

const (
	subheapShift = 48
	offsetMask   = (uint64(1) << subheapShift) - 1
)

// makePtr builds a pointer from its parts. The offset must fit in 6 bytes.
func makePtr(heapID uint64, subheap uint16, offset uint64) NVMPtr {
	return NVMPtr{HeapID: heapID, loc: uint64(subheap)<<subheapShift | offset&offsetMask}
}

// ptrFromWords rebuilds a pointer from its two persisted words.
func ptrFromWords(heapID, loc uint64) NVMPtr {
	return NVMPtr{HeapID: heapID, loc: loc}
}

// PtrFromLoc rebuilds a pointer from a persisted location word — the
// inverse of Loc for application code that stores pointers inside
// persistent objects.
func PtrFromLoc(heapID, loc uint64) NVMPtr { return ptrFromWords(heapID, loc) }

// IsNull reports whether the pointer is the null pointer.
func (p NVMPtr) IsNull() bool { return p == NVMPtr{} }

// Subheap returns the sub-heap ID.
func (p NVMPtr) Subheap() uint16 { return uint16(p.loc >> subheapShift) }

// Offset returns the offset within the sub-heap's user region.
func (p NVMPtr) Offset() uint64 { return p.loc & offsetMask }

// Loc returns the packed location word (for persisting the pointer).
func (p NVMPtr) Loc() uint64 { return p.loc }

func (p NVMPtr) String() string {
	if p.IsNull() {
		return "nvmptr(null)"
	}
	return fmt.Sprintf("nvmptr(heap=%#x sub=%d off=%#x)", p.HeapID, p.Subheap(), p.Offset())
}
