package core

import (
	"errors"
	"testing"

	"poseidon/internal/nvm"
	"poseidon/internal/plog"
)

// magOptions is testOptions with small per-thread magazines enabled.
func magOptions() Options {
	o := testOptions()
	o.Magazines = MagazineOptions{Capacity: 8, Classes: 4}
	return o
}

func newMagHeap(t *testing.T, opts Options) *Heap {
	t.Helper()
	h, err := Create(opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if !h.magsOn {
		t.Fatalf("magazines did not enable on a fresh image")
	}
	return h
}

// TestMagazineFastPathAllocFree is the tentpole happy path: after the first
// refill, small allocs pop from the magazine and same-shard frees push back,
// with no additional lock traffic, and the cache manifest always accounts
// for every cached block.
func TestMagazineFastPathAllocFree(t *testing.T) {
	h := newMagHeap(t, magOptions())
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}

	var ptrs []NVMPtr
	for i := 0; i < 6; i++ {
		p, err := th.Alloc(64)
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		ptrs = append(ptrs, p)
	}
	st := h.Stats()
	if st.MagazineHits != 6 {
		t.Fatalf("MagazineHits = %d, want 6", st.MagazineHits)
	}
	// Capacity 8 → refills carve 4 at a time: 6 pops need 2 refills.
	if st.MagazineRefills != 2 {
		t.Fatalf("MagazineRefills = %d, want 2", st.MagazineRefills)
	}
	if st.Allocs != 6 {
		t.Fatalf("Allocs = %d, want 6", st.Allocs)
	}
	// 2 blocks still cached (8 carved, 6 popped) — visible in the audit.
	if rep := checkHeap(t, h); rep.PendingCached != 2 || !rep.OK() {
		t.Fatalf("mid-run audit: PendingCached = %d, problems = %v",
			rep.PendingCached, rep.Problems)
	}

	for i, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatalf("Free %d: %v", i, err)
		}
	}
	st = h.Stats()
	if st.MagazineHits != 12 {
		t.Fatalf("MagazineHits after frees = %d, want 12", st.MagazineHits)
	}
	if st.Frees != 6 {
		t.Fatalf("Frees = %d, want 6", st.Frees)
	}

	// Close flushes every cached block back; nothing may stay cached.
	th.Close()
	st = h.Stats()
	if st.MagazineFlushes == 0 {
		t.Fatalf("MagazineFlushes = 0 after Close, want > 0")
	}
	if rep := checkHeap(t, h); rep.PendingCached != 0 || rep.AllocatedBlocks != 0 {
		t.Fatalf("post-Close audit: PendingCached = %d, AllocatedBlocks = %d",
			rep.PendingCached, rep.AllocatedBlocks)
	}
	auditHeap(t, h)
}

// TestMagazineOverflowFlush drives a class stack past capacity: the 9th
// push must flush half the magazine back to the sub-heap in one batch.
func TestMagazineOverflowFlush(t *testing.T) {
	h := newMagHeap(t, magOptions())
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()

	var ptrs []NVMPtr
	for i := 0; i < 12; i++ {
		p, err := th.Alloc(96) // class 1
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// 12 pushes into a capacity-8 stack: at least one overflow flush.
	st := h.Stats()
	if st.MagazineFlushes == 0 {
		t.Fatalf("MagazineFlushes = 0 after 12 frees into capacity 8")
	}
	if rep := checkHeap(t, h); !rep.OK() {
		t.Fatalf("audit problems: %v", rep.Problems)
	}
	auditHeap(t, h)
}

// TestMagazineDoubleFreeDetected: freeing a block that is currently cached
// in this thread's magazine is the thread's own double free — rejected
// synchronously without touching the device.
func TestMagazineDoubleFreeDetected(t *testing.T) {
	h := newMagHeap(t, magOptions())
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()

	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second Free = %v, want ErrDoubleFree", err)
	}
	if st := h.Stats(); st.DoubleFrees != 1 {
		t.Fatalf("DoubleFrees = %d, want 1", st.DoubleFrees)
	}
	auditHeap(t, h)
}

// TestMagazineSyncMagazines: the explicit durability sync point empties the
// magazine and the manifest; a closed thread's sync reports ErrClosed.
func TestMagazineSyncMagazines(t *testing.T) {
	h := newMagHeap(t, magOptions())
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}

	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := th.SyncMagazines(); err != nil {
		t.Fatalf("SyncMagazines: %v", err)
	}
	if rep := checkHeap(t, h); rep.PendingCached != 0 || rep.AllocatedBlocks != 0 {
		t.Fatalf("post-sync audit: PendingCached = %d, AllocatedBlocks = %d",
			rep.PendingCached, rep.AllocatedBlocks)
	}
	// The magazine stays usable after a sync.
	if _, err := th.Alloc(64); err != nil {
		t.Fatalf("Alloc after sync: %v", err)
	}
	th.Close()
	if err := th.SyncMagazines(); !errors.Is(err, ErrClosed) {
		t.Fatalf("SyncMagazines on closed thread = %v, want ErrClosed", err)
	}
	auditHeap(t, h)
}

// TestMagazineCrashRecovery crashes between refill and sync under both
// eviction extremes and verifies the crash-reclaim invariant: no cached
// block is ever leaked, and the manifest is empty after recovery.
func TestMagazineCrashRecovery(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy nvm.CrashPolicy
		// EvictNone drops the (unflushed) pop-clears with the rest of the
		// dirty cache, so recovery also rolls the popped allocations back;
		// EvictAll evicts every dirty line to persistence, so only the
		// still-cached block comes back and the pops survive.
		wantRecovered uint64
		wantAllocated uint64
	}{
		{"EvictNone", nvm.CrashPolicy{Mode: nvm.EvictNone}, 4, 0},
		{"EvictAll", nvm.CrashPolicy{Mode: nvm.EvictAll}, 1, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newMagHeap(t, magOptions())
			th, err := h.ThreadOn(0)
			if err != nil {
				t.Fatal(err)
			}
			// 3 pops out of one refill batch of 4: manifest durably records
			// the batch; the pop-clears are plain stores.
			for i := 0; i < 3; i++ {
				if _, err := th.Alloc(64); err != nil {
					t.Fatal(err)
				}
			}
			// Crash WITHOUT Close: the magazine is abandoned mid-flight.
			if _, err := h.Device().Crash(tc.policy); err != nil {
				t.Fatal(err)
			}
			_ = h.Close()
			h2, err := Load(h.Device(), magOptions())
			if err != nil {
				t.Fatalf("Load after crash: %v", err)
			}
			st := h2.Stats()
			if st.RecoveredCached != tc.wantRecovered {
				t.Fatalf("RecoveredCached = %d, want %d", st.RecoveredCached, tc.wantRecovered)
			}
			rep := checkHeap(t, h2)
			if rep.PendingCached != 0 {
				t.Fatalf("PendingCached = %d after recovery, want 0", rep.PendingCached)
			}
			if rep.AllocatedBlocks != tc.wantAllocated {
				t.Fatalf("AllocatedBlocks = %d, want %d", rep.AllocatedBlocks, tc.wantAllocated)
			}
			if !rep.OK() {
				t.Fatalf("audit problems: %v", rep.Problems)
			}
			auditHeap(t, h2)
		})
	}
}

// TestMagazineLaneAdoption: a lane whose previous holder vanished without a
// Close flush-back still carries manifest entries; the next thread on that
// lane returns them to their sub-heaps before using the magazine.
func TestMagazineLaneAdoption(t *testing.T) {
	h := newMagHeap(t, magOptions())
	th1, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	laneI := th1.laneI
	// A block allocated through the LOCKED path (class 5 is beyond the
	// magazined classes) stays StatusAllocated on the device.
	p, err := th1.Alloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	th1.Close()

	// Plant a manifest entry for it on the now-free lane, simulating a
	// holder that died after a refill.
	base := h.lay.laneManifestBase(laneI)
	h.grant(h.sbThread)
	if err := h.sbWin.WriteU64(base, plog.EncodeCacheEntry(p.Offset(), uint16(p.Subheap()))); err != nil {
		t.Fatal(err)
	}
	h.revoke(h.sbThread)

	th2, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	if th2.laneI != laneI {
		t.Fatalf("lane pool recycled lane %d, expected %d", th2.laneI, laneI)
	}
	if th2.mag == nil || th2.mag.disabled {
		t.Fatalf("adopting thread's magazine is disabled")
	}
	// Adoption flushed the planted block back to its free list.
	rep := checkHeap(t, h)
	if rep.PendingCached != 0 || rep.AllocatedBlocks != 0 {
		t.Fatalf("post-adoption audit: PendingCached = %d, AllocatedBlocks = %d",
			rep.PendingCached, rep.AllocatedBlocks)
	}
	auditHeap(t, h)
}

// TestMagazineAdoptionDisablesOnCorruption: an uncleanable manifest word
// latches the adopting thread's magazine off, leaves the evidence in place
// for the audit, and the thread still works through the locked path.
func TestMagazineAdoptionDisablesOnCorruption(t *testing.T) {
	h := newMagHeap(t, magOptions())
	th1, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	laneI := th1.laneI
	th1.Close()

	base := h.lay.laneManifestBase(laneI)
	h.grant(h.sbThread)
	if err := h.sbWin.WriteU64(base, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	h.revoke(h.sbThread)

	th2, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	if th2.mag == nil || !th2.mag.disabled {
		t.Fatalf("magazine not disabled over a corrupt manifest word")
	}
	p, err := th2.Alloc(64) // locked path still serves
	if err != nil {
		t.Fatalf("Alloc with disabled magazine: %v", err)
	}
	if err := th2.Free(p); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.MagazineHits != 0 {
		t.Fatalf("MagazineHits = %d with disabled magazine, want 0", st.MagazineHits)
	}
	rep := checkHeap(t, h)
	if rep.OK() {
		t.Fatalf("audit did not flag the corrupt manifest word")
	}
}

// TestMagazineGeometryTooBigDisables: an image provisioned with the default
// manifest arena cannot host a larger-than-provisioned magazine geometry —
// the heap opens fine with magazines off.
func TestMagazineGeometryTooBigDisables(t *testing.T) {
	h, err := Create(testOptions()) // provisions defaultMagSlots words/lane
	if err != nil {
		t.Fatal(err)
	}
	dev := h.Device()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	big := testOptions()
	big.Magazines = MagazineOptions{Capacity: 4096, Classes: 16} // 65536 > 512
	h2, err := Load(dev, big)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if h2.magsOn {
		t.Fatalf("magazines enabled beyond the provisioned manifest arena")
	}
	th, err := h2.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	if th.mag != nil {
		t.Fatalf("thread got a magazine on a mags-off heap")
	}
	if _, err := th.Alloc(64); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
}

// TestMagazineEnableOnExistingImage: the default arena is provisioned even
// when magazines are off, so reopening an old image with Magazines set
// turns the feature on without a reformat.
func TestMagazineEnableOnExistingImage(t *testing.T) {
	h, err := Create(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	dev := h.Device()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := Load(dev, magOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !h2.magsOn {
		t.Fatalf("magazines did not enable on reopen")
	}
	th, err := h2.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if st := h2.Stats(); st.MagazineHits != 1 {
		t.Fatalf("MagazineHits = %d, want 1", st.MagazineHits)
	}
	auditHeap(t, h2)
}

// TestClosedThreadAccessors is the regression test for the missing
// closed-thread guard: every data accessor must fail with ErrClosed instead
// of silently operating through the stale window.
func TestClosedThreadAccessors(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	th.Close()

	buf := make([]byte, 8)
	if err := th.Write(p, 0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write on closed thread = %v, want ErrClosed", err)
	}
	if err := th.Read(p, 0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read on closed thread = %v, want ErrClosed", err)
	}
	if err := th.WriteU64(p, 0, 7); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteU64 on closed thread = %v, want ErrClosed", err)
	}
	if _, err := th.ReadU64(p, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadU64 on closed thread = %v, want ErrClosed", err)
	}
	if err := th.Persist(p, 0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("Persist on closed thread = %v, want ErrClosed", err)
	}
	if err := th.Flush(p, 0, 8); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush on closed thread = %v, want ErrClosed", err)
	}
	if _, err := th.BlockSize(p); !errors.Is(err, ErrClosed) {
		t.Fatalf("BlockSize on closed thread = %v, want ErrClosed", err)
	}
}
