package core

import (
	"time"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

// DeviceStats returns the device's flat operation counters. Enabled is
// false (and every counter zero) when the heap was created without
// Options.DeviceStats or Options.Telemetry.
func (h *Heap) DeviceStats() nvm.StatsSnapshot { return h.dev.StatsSnapshot() }

// Telemetry returns the registry the heap was created with, nil when the
// heap runs without Options.Telemetry. The obs recording methods are
// nil-safe, so callers may use the result unconditionally.
func (h *Heap) Telemetry() *obs.Telemetry { return h.tel }

// Metrics assembles the full telemetry snapshot: latency histograms,
// per-class device attribution and the event journal from the obs registry,
// plus the core-owned layers — lifetime counters, per-sub-heap occupancy
// gauges and the device's flat stats. Safe for concurrent use and without
// telemetry (the histogram/attribution/gauge sections are then empty, but
// counters and device stats still fill in).
func (h *Heap) Metrics() *obs.Snapshot {
	snap := h.tel.Snapshot() // nil-safe: empty timestamped snapshot

	st := h.Stats()
	snap.Counters = map[string]uint64{
		"allocs":               st.Allocs,
		"tx_allocs":            st.TxAllocs,
		"frees":                st.Frees,
		"defrag_merges":        st.DefragMerges,
		"invalid_frees":        st.InvalidFrees,
		"double_frees":         st.DoubleFrees,
		"recovered_blocks":     st.RecoveredBlocks,
		"recovered_noops":      st.RecoveredNoops,
		"remote_frees":         st.RemoteFrees,
		"remote_drains":        st.RemoteDrains,
		"ring_fallbacks":       st.RingFallbacks,
		"magazine_hits":        st.MagazineHits,
		"magazine_misses":      st.MagazineMisses,
		"magazine_refills":     st.MagazineRefills,
		"magazine_flushes":     st.MagazineFlushes,
		"recovered_cached":     st.RecoveredCached,
		"combined_commits":     st.CombinedCommits,
		"combined_ops":         st.CombinedOps,
		"combine_fallbacks":    st.CombineFallbacks,
		"permission_switches":  st.PermissionSwitches,
		"quarantined_subheaps": st.QuarantinedSubheaps,
		"quarantined_bytes":    st.QuarantinedBytes,
		"transient_retries":    st.TransientRetries,
		"repaired_subheaps":    st.RepairedSubheaps,
		"repaired_bytes":       st.RepairedBytes,
		"mirror_restores":      st.MirrorRestores,
	}

	hs := h.Health()
	snap.Health = &obs.HealthStatus{
		State:    hs.String(),
		Code:     int32(hs),
		ReadOnly: hs == StateReadOnly,
		Detail:   h.healthDetail(),
	}

	if h.tel != nil {
		snap.Subheaps = h.subheapGaugeList()
	}

	bi := obs.CollectBuildInfo()
	snap.Build = &bi
	epoch, nextSeq, bbOn := h.bbState()
	snap.Runtime = &obs.RuntimeStatus{
		BootEpoch:     epoch,
		UptimeSeconds: time.Since(h.openedAt).Seconds(),
	}
	if h.wd != nil {
		ts := h.tap.Snapshot()
		snap.Watchdog = &obs.WatchdogStats{
			Enabled:          true,
			StallThresholdNS: h.wd.threshold.Nanoseconds(),
			Stalls:           h.stallsTotal.Load(),
			FlushOutliers:    ts.FlushOutliers,
			FenceOutliers:    ts.FenceOutliers,
			FlushMaxNS:       ts.FlushMaxNS,
			FenceMaxNS:       ts.FenceMaxNS,
		}
	}
	if arena := h.lay.boxArena(); arena.Valid() {
		snap.Blackbox = &obs.BlackboxStats{
			Enabled:         bbOn,
			CapacityRecords: arena.Capacity(),
			Persisted:       h.bbPublished.Load(),
			Dropped:         h.bbDropped.Load(),
			Torn:            h.bbTorn.Load(),
			Epoch:           epoch,
			NextSeq:         nextSeq,
		}
	}

	ds := h.dev.StatsSnapshot()
	snap.Device = obs.DeviceStats{
		StatsEnabled:  ds.Enabled,
		Writes:        ds.Writes,
		BytesWritten:  ds.BytesWritten,
		Flushes:       ds.Flushes,
		Fences:        ds.Fences,
		CapacityBytes: h.dev.Capacity(),
		ResidentBytes: h.dev.ResidentBytes(),
	}
	return snap
}

// subheapGaugeList reads every sub-heap's DRAM occupancy gauges without
// taking sub-heap locks: the gauges are atomics and a formatted sub-heap
// always holds at least one record, so "initialized" is derivable from the
// counts themselves. Values are instantaneous and may be mid-operation.
func (h *Heap) subheapGaugeList() []obs.SubheapGauge {
	out := make([]obs.SubheapGauge, 0, len(h.subheaps))
	for _, s := range h.subheaps {
		g := obs.SubheapGauge{ID: s.id}
		if s.isQuarantined() {
			g.Quarantined = true
			g.QuarantineReason = s.quarantineReason()
			out = append(out, g)
			continue
		}
		if s.gauge == nil {
			out = append(out, g)
			continue
		}
		geo := s.mgr.Geometry()
		g.AllocatedBlocks = clampU64(s.gauge.allocBlocks.Load())
		g.AllocatedBytes = clampU64(s.gauge.allocBytes.Load())
		for c := range s.gauge.freeByClass {
			n := clampU64(s.gauge.freeByClass[c].Load())
			if n == 0 {
				continue
			}
			size := geo.ClassSize(c)
			g.FreeBlocks += n
			g.FreeBytes += n * size
			if size > g.LargestFreeBytes {
				g.LargestFreeBytes = size
			}
		}
		g.Initialized = g.AllocatedBlocks+g.FreeBlocks > 0
		if g.FreeBytes > 0 {
			g.Fragmentation = 1 - float64(g.LargestFreeBytes)/float64(g.FreeBytes)
		}
		out = append(out, g)
	}
	return out
}

// clampU64 converts a gauge delta to uint64, flooring transient negative
// readings (a scrape can land between the two halves of a split update).
func clampU64(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}
