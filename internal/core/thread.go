package core

import (
	"fmt"
	"time"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

// Thread is a per-goroutine allocation context: it pins the goroutine to
// one sub-heap for allocations (frees go to the owning sub-heap of the
// pointer), owns a persistent micro-log lane for transactional allocation,
// and carries the goroutine's PKRU for user-data access.
//
// A Thread must not be used concurrently from multiple goroutines. Close
// returns the lane to the heap's pool.
type Thread struct {
	h     *Heap
	shard int
	lane  *plog.MicroLog
	laneI int

	pkru *mpk.Thread // the application thread: metadata read-only
	win  mpk.Window

	// rec attributes this thread's device traffic (user-data stores, and
	// micro-log writes retagged during TxAlloc). Non-nil only with
	// telemetry; a Thread is single-goroutine by contract, so plain
	// retagging is race-free.
	rec *nvm.AttrRecorder

	// mag is the thread's block magazine (nil without Options.Magazines):
	// the lock-free alloc/free fast path, persistently shadowed by the
	// cache manifest adjacent to this lane. See magazine.go.
	mag *magazine

	// prof/profLeft drive allocation-site sampling: prof is non-nil only
	// when sampling is on (Options.Profile.Rate > 0), so a disabled
	// profiler costs the alloc path exactly one nil check. profLeft is this
	// thread's countdown to the next sample — deterministic 1-in-rate with
	// no hot-path atomics (a Thread is single-goroutine by contract).
	prof     *obs.Profiler
	profLeft int

	closed bool
}

// Thread registers a new allocation context. Shards are assigned
// round-robin over the sub-heaps — the portable analogue of the paper's
// "sub-heap of the CPU the thread runs on" (DESIGN.md §1). Quarantined
// sub-heaps are skipped: pinning a fresh thread to one would make its very
// first Alloc pay the redirect penalty for the thread's whole lifetime.
// When every sub-heap is quarantined the raw pick stands — registration
// still succeeds, and the per-op paths surface the quarantine errors.
func (h *Heap) Thread() (*Thread, error) {
	shard := int(h.nextShard.Add(1)-1) % h.lay.subheaps
	if hs, err := h.healthyShard(shard); err == nil {
		shard = hs
	}
	return h.ThreadOn(shard)
}

// ThreadOn registers an allocation context pinned to a specific sub-heap
// (benchmarks use this to model one thread per CPU).
func (h *Heap) ThreadOn(shard int) (*Thread, error) {
	if h.isClosed() {
		return nil, ErrClosed
	}
	if shard < 0 || shard >= h.lay.subheaps {
		return nil, fmt.Errorf("poseidon: shard %d out of range [0, %d)", shard, h.lay.subheaps)
	}
	h.laneMu.Lock()
	if len(h.freeLanes) == 0 {
		h.laneMu.Unlock()
		return nil, ErrNoThreads
	}
	laneI := h.freeLanes[len(h.freeLanes)-1]
	h.freeLanes = h.freeLanes[:len(h.freeLanes)-1]
	h.laneMu.Unlock()

	pkru := h.unit.NewThread(defaultRights(h.opts))
	win := mpk.NewWindow(h.dev, pkru)
	var rec *nvm.AttrRecorder
	if h.tel != nil {
		rec = nvm.NewAttrRecorder(h.tel.Attribution(), nvm.ClassUser)
		win = win.WithRecorder(rec)
	}

	// The lane is written under the heap's protection discipline: TxAlloc
	// grants this thread metadata write access around micro-log operations.
	lane, err := plog.OpenMicroLog(win, h.lay.laneBase(laneI), h.lay.laneSize)
	if err != nil {
		return nil, err
	}
	t := &Thread{h: h, shard: shard, lane: lane, laneI: laneI, pkru: pkru, win: win, rec: rec}
	if h.prof != nil && h.prof.Rate() > 0 {
		t.prof = h.prof
		t.profLeft = h.prof.Rate()
	}
	if h.magsOn && !h.rawAttach {
		t.mag = newMagazine(h.magClasses, h.magCap,
			plog.NewManifest(h.lay.laneManifestBase(laneI), h.lay.magSlots))
		// A previous holder of this lane may have vanished without its
		// Close flush-back; clean (or disable on) whatever it left.
		t.magAdopt()
	}
	return t, nil
}

// Close releases the thread's micro-log lane, flushing any magazine-cached
// blocks back to the sub-heap first (best-effort: on failure the blocks
// stay durably recorded in the cache manifest and the next Load — or the
// lane's next adopter — reclaims them). An open (uncommitted) transaction
// stays logged and is rolled back at the next heap load.
func (t *Thread) Close() {
	if t.closed {
		return
	}
	_ = t.magSyncAll()
	t.closed = true
	t.h.laneMu.Lock()
	t.h.freeLanes = append(t.h.freeLanes, t.laneI)
	t.h.laneMu.Unlock()
}

// Shard returns the sub-heap this thread allocates from.
func (t *Thread) Shard() int { return t.shard }

// Heap returns the owning heap.
func (t *Thread) Heap() *Heap { return t.h }

func (t *Thread) check() error {
	if t.closed || t.h.isClosed() {
		return ErrClosed
	}
	return nil
}

// allocShard resolves the sub-heap Alloc/TxAlloc should use: normally the
// thread's pinned shard, but if that sub-heap was quarantined at recovery
// the allocation redirects to the nearest healthy one — degrade, don't die.
func (t *Thread) allocShard() (int, error) {
	if !t.h.subheaps[t.shard].isQuarantined() {
		return t.shard, nil
	}
	return t.h.healthyShard(t.shard)
}

// Alloc carves a block of at least size bytes from the thread's sub-heap —
// poseidon_alloc (§4.6, §5.2).
func (t *Thread) Alloc(size uint64) (NVMPtr, error) {
	if t.h.tel == nil {
		return t.alloc(size)
	}
	start := time.Now()
	p, err := t.alloc(size)
	t.h.tel.RecordOn(t.laneI, obs.OpAlloc, time.Since(start))
	if err == nil && t.prof != nil {
		t.profSample(p, size)
	}
	return p, err
}

// profSample is the allocation-site sampling countdown: every rate-th
// successful allocation on this thread captures its call stack and charges
// the carved block (not the request) to the site, then paces a background
// side-table persist.
func (t *Thread) profSample(p NVMPtr, size uint64) {
	t.profLeft--
	if t.profLeft > 0 {
		return
	}
	t.profLeft = t.prof.Rate()
	t.prof.SampleAlloc(p.Loc(), profCharge(size), 2)
	t.h.maybePersistProfile()
}

func (t *Thread) alloc(size uint64) (NVMPtr, error) {
	if err := t.check(); err != nil {
		return NVMPtr{}, err
	}
	if err := t.h.writable(); err != nil {
		return NVMPtr{}, err
	}
	// Magazine fast path: pop a pre-carved block — no lock, no flush, no
	// device metadata read. Falls through on any miss.
	if p, ok := t.magAlloc(size); ok {
		return p, nil
	}
	shard, err := t.allocShard()
	if err != nil {
		return NVMPtr{}, err
	}
	s := t.h.subheaps[shard]
	dev, err := s.alloc(size, nil)
	if err != nil {
		return NVMPtr{}, err
	}
	return makePtr(t.h.heapID, uint16(shard), dev-t.h.lay.userBase(shard)), nil
}

// TxAlloc performs a transactional allocation — poseidon_tx_alloc (§4.6,
// §5.3). Every allocated address is persisted to the thread's micro log;
// isEnd commits the transaction by truncating the log. If the process
// crashes before the commit, recovery frees every logged allocation.
func (t *Thread) TxAlloc(size uint64, isEnd bool) (NVMPtr, error) {
	if t.h.tel == nil {
		return t.txAlloc(size, isEnd)
	}
	start := time.Now()
	p, err := t.txAlloc(size, isEnd)
	t.h.tel.RecordOn(t.laneI, obs.OpTxAlloc, time.Since(start))
	if err == nil && t.prof != nil {
		t.profSample(p, size)
	}
	return p, err
}

func (t *Thread) txAlloc(size uint64, isEnd bool) (NVMPtr, error) {
	if err := t.check(); err != nil {
		return NVMPtr{}, err
	}
	if err := t.h.writable(); err != nil {
		return NVMPtr{}, err
	}
	// Micro-log lane writes through this thread's window are part of the
	// transactional allocation, not user traffic.
	if t.rec != nil {
		t.rec.SetClass(nvm.ClassTxAlloc)
		defer t.rec.SetClass(nvm.ClassUser)
	}
	shard, err := t.allocShard()
	if err != nil {
		return NVMPtr{}, err
	}
	s := t.h.subheaps[shard]

	// Micro-log writes happen inside the allocator: grant this thread
	// metadata write access for the duration (the lane lives in the
	// protected superblock region).
	t.h.grant(t.pkru)
	dev, err := s.alloc(size, t.lane)
	if err != nil {
		t.h.revoke(t.pkru)
		return NVMPtr{}, err
	}
	if isEnd {
		if terr := t.lane.Truncate(); terr != nil {
			t.h.revoke(t.pkru)
			return NVMPtr{}, terr
		}
	}
	t.h.revoke(t.pkru)
	return makePtr(t.h.heapID, uint16(shard), dev-t.h.lay.userBase(shard)), nil
}

// TxAbandon drops the current transaction's log without freeing its
// allocations — test helper modeling a crash between allocations.
func (t *Thread) TxAbandon() error {
	if err := t.check(); err != nil {
		return err
	}
	if t.rec != nil {
		t.rec.SetClass(nvm.ClassTxAlloc)
		defer t.rec.SetClass(nvm.ClassUser)
	}
	t.h.grant(t.pkru)
	defer t.h.revoke(t.pkru)
	return t.lane.Truncate()
}

// Free returns a block to its owning sub-heap — poseidon_free (§5.5).
// Without Options.RemoteFreeRings, cross-sub-heap frees contend on the
// owner's lock, exactly as in the paper (§5.7); with rings, they persist
// one entry on the owner's remote-free ring and return without the lock
// (the owner drains in batches; a full ring falls back to the locked
// path). Invalid and double frees return an error and leave the heap
// untouched — except a ring-routed free, which returns before validation
// and surfaces rejects in the counters at drain time.
//
// Rejected frees are journalled (EventFreeRejected), not latency-recorded:
// an error return measures the validation path, and mixing it into the
// OpFree histogram would pollute the tail percentiles.
func (t *Thread) Free(p NVMPtr) error {
	if t.h.tel == nil {
		return t.free(p)
	}
	start := time.Now()
	err := t.free(p)
	if err != nil {
		sh := -1
		if int(p.Subheap()) < len(t.h.subheaps) {
			sh = int(p.Subheap())
		}
		t.h.tel.Emit(obs.EventFreeRejected, sh, err.Error())
		return err
	}
	t.h.tel.RecordOn(t.laneI, obs.OpFree, time.Since(start))
	// Every successful free checks the live table (not sampled): a sampled
	// allocation's site must be decremented whichever thread frees it.
	if t.prof != nil {
		t.prof.SampleFree(p.Loc())
	}
	return nil
}

func (t *Thread) free(p NVMPtr) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.h.writable(); err != nil {
		return err
	}
	s, dev, err := t.h.resolve(p)
	if err != nil {
		return err
	}
	// Magazine fast path: a same-shard block this magazine popped goes
	// back on its class stack — no lock, no flush. Also rejects this
	// thread's own double free of a still-cached block.
	if handled, err := t.magFree(p); handled {
		return err
	}
	if s.id != t.shard {
		if handled, err := s.remoteFree(t, dev); handled {
			return err
		}
	}
	return s.free(dev)
}

// BlockSize returns the usable size of the allocated block p points at.
func (t *Thread) BlockSize(p NVMPtr) (uint64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	s, dev, err := t.h.resolve(p)
	if err != nil {
		return 0, err
	}
	return s.blockSize(dev)
}

// Window returns the thread's protection-checked device view for user-data
// access. Stores through it that stray into the metadata region fault with
// *mpk.ProtectionError — the paper's headline safety property.
func (t *Thread) Window() mpk.Window { return t.win }

// access is the shared prologue of the data accessors below: the
// closed-thread guard (Write on a closed Thread must fail like Alloc and
// Free do, not silently succeed through a stale window) plus a single
// pointer decode.
func (t *Thread) access(p NVMPtr) (uint64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	_, dev, err := t.h.resolve(p)
	return dev, err
}

// writeAccess is access plus the health gate: user-data stores are rejected
// once the heap is ReadOnly, while reads (and Flush of already-written data)
// stay available.
func (t *Thread) writeAccess(p NVMPtr) (uint64, error) {
	if err := t.h.writable(); err != nil {
		return 0, err
	}
	return t.access(p)
}

// Write stores b into the block at p starting at byte off. The store goes
// through the thread's MPK window: in-bounds stores land in the user
// region; overflowing into metadata faults.
func (t *Thread) Write(p NVMPtr, off uint64, b []byte) error {
	dev, err := t.writeAccess(p)
	if err != nil {
		return err
	}
	return t.win.Write(dev+off, b)
}

// Read loads len(b) bytes from the block at p starting at byte off.
func (t *Thread) Read(p NVMPtr, off uint64, b []byte) error {
	dev, err := t.access(p)
	if err != nil {
		return err
	}
	return t.win.Read(dev+off, b)
}

// WriteU64 stores an 8-byte word into the block at p.
func (t *Thread) WriteU64(p NVMPtr, off uint64, v uint64) error {
	dev, err := t.writeAccess(p)
	if err != nil {
		return err
	}
	return t.win.WriteU64(dev+off, v)
}

// ReadU64 loads an 8-byte word from the block at p.
func (t *Thread) ReadU64(p NVMPtr, off uint64) (uint64, error) {
	dev, err := t.access(p)
	if err != nil {
		return 0, err
	}
	return t.win.ReadU64(dev + off)
}

// Persist writes b into the block at p and makes it durable.
func (t *Thread) Persist(p NVMPtr, off uint64, b []byte) error {
	dev, err := t.writeAccess(p)
	if err != nil {
		return err
	}
	return t.win.Persist(dev+off, b)
}

// Flush makes [off, off+n) of the block at p durable.
func (t *Thread) Flush(p NVMPtr, off, n uint64) error {
	dev, err := t.access(p)
	if err != nil {
		return err
	}
	if err := t.win.Flush(dev+off, n); err != nil {
		return err
	}
	t.win.Fence()
	return nil
}
