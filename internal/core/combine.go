package core

// Flat-combining commit batching (Options.CombinedCommits).
//
// Under contention the locked sub-heap paths serialize on mu and pay the
// full undo discipline — seal (flush+fence twice), apply+flush+fence,
// truncate (flush+fence) — once per operation. Flat combining turns that
// queue into a group: a thread that fails to take mu publishes its op
// descriptor into a DRAM combining array and spins on a per-op done flag,
// while the lock holder drains the array and executes every pending op as
// one critical section. Without contention (TryLock succeeds, array empty)
// an op runs the legacy locked body unchanged — combining only engages, and
// only costs, when threads actually collide. All ops stage into chained per-op batches (later
// ops read earlier ops' staged state), then txn.CommitGroup lands the whole
// group with ONE seal, cache-line-deduplicated flushes, ONE fence, every
// micro-log hook, and ONE truncate — fences per contended op drop from ~4
// toward ~4/k at combine width k.
//
// Group atomicity is safe because no combined op reports success before the
// group's single truncate: a crash anywhere before it replays the undo log
// and reverts every op in the group, and since none of them was observable
// yet, all-or-nothing across the group is indistinguishable from the ops
// never having run. Recovery replays the existing undo log unchanged.
//
// Failure handling inside a group:
//   - Validation rejects (invalid/double free, bad size) are detected at
//     stage time against the chained view and complete in-group with the
//     error as their result — nothing of theirs was staged.
//   - An op whose staging fails for any other reason (space or table
//     pressure, device errors) is dropped from the group — its batch is
//     aborted, the free-mask bits it cleared are restored — and re-run solo
//     through the legacy per-op path with the full pressure ladder after
//     the group commits (counted in CombineFallbacks).
//   - A failed group commit replays the undo log (reverting the whole
//     group), reseeds the free mask, and re-runs every unreported op solo
//     in group order: per-op transactions can fit where the group did not
//     (e.g. an undo log too small for the merged batch).

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
	"poseidon/internal/txn"
)

const (
	// combineSlots is the combining-array capacity. Publishers that find
	// every slot taken fall back to a blocking lock acquisition, so the
	// array bounds group size, not concurrency.
	combineSlots = 16
	// combineMaxPasses bounds how many consecutive groups one leader
	// executes before unlocking, so a continuous publish stream cannot
	// starve the leader's own caller forever.
	combineMaxPasses = 4
	// combineSpinLimit bounds a waiter's optimistic spin. On free cores a
	// leader drains groups in microseconds, well inside the limit; when
	// cores are oversubscribed, spinning steals the CPU the leader needs,
	// so past the limit the waiter parks on the mutex instead (its op stays
	// published, typically reaching done while the waiter blocks).
	combineSpinLimit = 128
)

type combineOpKind uint8

const (
	combAlloc combineOpKind = iota
	combFree
)

// combineOp is one published operation descriptor. The publisher owns every
// field until it wins a CAS into the combining array (or hands the op to
// leadLocked directly); from then the leader owns the descriptor until it
// stores done, after which ownership returns to the publisher. done is the
// only field accessed concurrently — its Store/Load pair is the
// happens-before edge that makes the leader's plain writes to off/err (and
// its micro-log appends through the publisher's window) visible.
type combineOp struct {
	kind combineOpKind
	size uint64         // combAlloc: requested bytes
	lane *plog.MicroLog // combAlloc: non-nil makes the allocation transactional
	dev  uint64         // combFree: device offset of the block to free

	off  uint64 // result: combAlloc's carved device offset
	err  error  // result: nil on success
	done atomic.Uint32
}

// combine runs op through the contended half of the flat-combining
// protocol: publish into the array and spin, self-serving if the lock frees
// up. Callers (allocCombined/freeCombined) already tried — and failed — to
// take the lock. The op's result is in op.off/op.err when combine returns.
func (s *subheap) combine(op *combineOp) {
	if !s.publish(op) {
		// Array full: the combining layer is saturated, take the mutex the
		// old-fashioned way and serve ourselves (plus whatever drained).
		s.stats.combineFallbacks.Add(1)
		s.mu.Lock()
		s.leadLocked(op)
		return
	}
	spins := 0
	for {
		if op.done.Load() != 0 {
			return
		}
		if s.mu.TryLock() {
			// The lock went free while our op is still pending — the last
			// leader may have quit between our publish and its final drain
			// pass. Lead a group ourselves; it claims our op (unless a
			// racing leader just did, hence the re-check).
			s.leadLocked(nil)
			continue
		}
		if spins++; spins >= combineSpinLimit {
			// Park instead of spinning the leader's CPU away. Holding the
			// lock with done still 0 proves no leader claimed the op (every
			// claimer stores done before unlocking), so it is still in the
			// array and leading a group now is guaranteed to finish it.
			s.mu.Lock()
			if op.done.Load() != 0 {
				s.mu.Unlock()
				return
			}
			s.leadLocked(nil)
			continue
		}
		runtime.Gosched()
	}
}

// publish CASes op into a free combining-array slot.
func (s *subheap) publish(op *combineOp) bool {
	for i := range s.comb {
		if s.comb[i].CompareAndSwap(nil, op) {
			return true
		}
	}
	return false
}

// combPending reports whether any op is published in the combining array.
// A publisher that CASes in right after a false answer is not lost: it spins
// with the lock held by us, and self-serves by TryLock after we unlock.
func (s *subheap) combPending() bool {
	for i := range s.comb {
		if s.comb[i].Load() != nil {
			return true
		}
	}
	return false
}

// leadLocked is the combining leader: with mu held (ownership transfers in;
// leadLocked unlocks), repeatedly claim every published op and execute the
// group, up to combineMaxPasses groups. own, when non-nil, joins the first
// group.
func (s *subheap) leadLocked(own *combineOp) {
	defer s.mu.Unlock()
	s.h.grant(s.thread)
	defer s.h.revoke(s.thread)
	for pass := 0; pass < combineMaxPasses; pass++ {
		group := s.groupOps[:0]
		if own != nil {
			group = append(group, own)
			own = nil
		}
		for i := range s.comb {
			// Load-before-Swap keeps the (common) empty-slot scan to plain
			// reads; only the leader clears slots, so a non-nil load can't
			// go stale before our Swap.
			if s.comb[i].Load() == nil {
				continue
			}
			if op := s.comb[i].Swap(nil); op != nil {
				group = append(group, op)
			}
		}
		if len(group) == 0 {
			return
		}
		s.groupOps = group[:0] // keep the grown capacity for the next group
		s.runGroupLocked(group)
		for _, op := range group {
			op.done.Store(1) // last touch: ownership returns to the publisher
		}
		clear(group)
	}
}

// runGroupLocked executes one claimed group under mu with rights granted:
// shared prologue (ensureReady, attribution retag, paced ring drain,
// tracing), then the staged group execution.
func (s *subheap) runGroupLocked(group []*combineOp) {
	if err := s.ensureReady(); err != nil {
		for _, op := range group {
			op.err = err
		}
		return
	}
	// Tag after ensureReady so lazy formatting stays charged to ClassFormat.
	s.setClass(nvm.ClassCombined)
	if err := s.maybeDrainLocked(); err != nil {
		for _, op := range group {
			op.err = err
		}
		return
	}
	if s.h.tel == nil {
		s.execGroupLocked(group)
		return
	}
	start := time.Now()
	if tdone := s.traceBegin(obs.OpCombine, uint64(len(group))); tdone != nil {
		defer func() { tdone(nil) }()
	}
	s.execGroupLocked(group)
	s.h.tel.RecordOn(s.id, obs.OpCombine, time.Since(start))
}

// stagedGroupOp is one op successfully staged into its chained batch,
// waiting for the group commit.
type stagedGroupOp struct {
	op    *combineOp
	batch *txn.Batch
	hook  func() error
	class int    // alloc: requested class; free: freed block's class
	found int    // alloc: class the block was carved from
	size  uint64 // free: freed block's size
}

// execGroupLocked stages every op of the group into chained per-op batches
// and commits them as one undo transaction.
func (s *subheap) execGroupLocked(group []*combineOp) {
	parent := s.winReader
	staged := s.stagedScratch[:0]
	defer func() {
		clear(staged) // drop op/closure refs before pooling the backing array
		s.stagedScratch = staged[:0]
	}()
	var retry []*combineOp
	for _, op := range group {
		b := s.groupBatch(len(staged))
		b.SetParent(parent)
		mask0 := s.freeMask
		sop, err := s.stageOp(b, op)
		if err == nil {
			staged = append(staged, sop)
			parent = b
			continue
		}
		// Undo this op's DRAM effects; the batch chain before it is intact.
		b.Abort()
		b.SetParent(nil)
		s.freeMask |= mask0
		if errors.Is(err, ErrInvalidFree) || errors.Is(err, ErrDoubleFree) || errors.Is(err, ErrBadSize) {
			op.err = err // validation reject: final, nothing was staged
			continue
		}
		retry = append(retry, op) // pressure/device trouble: solo after the group
	}

	if len(staged) > 0 {
		batches := s.batchScratch[:0]
		hooks := s.hookScratch[:0]
		for i := range staged {
			batches = append(batches, staged[i].batch)
			hooks = append(hooks, staged[i].hook)
		}
		err := txn.CommitGroup(batches, hooks)
		for i := range staged {
			staged[i].batch.Abort()
			staged[i].batch.SetParent(nil)
		}
		clear(batches)
		clear(hooks)
		s.batchScratch, s.hookScratch = batches[:0], hooks[:0]
		if err != nil {
			// The commit may have sealed (or applied) any part of the merged
			// group; replay the undo log to revert all of it. Safe because
			// none of these ops has been reported yet.
			if rerr := s.undo.Replay(); rerr != nil {
				ferr := fmt.Errorf("poseidon: rollback after failed group commit: %w", rerr)
				for _, op := range group {
					if op.err == nil {
						op.err = ferr
					}
				}
				return
			}
			_ = s.reseedFreeMask()
			// Re-run everything unreported solo, in group order: per-op
			// transactions may fit where the merged one did not.
			retry = retry[:0]
			for _, op := range group {
				if op.err == nil {
					retry = append(retry, op)
				}
			}
		} else {
			s.stats.combinedCommits.Add(1)
			s.stats.combinedOps.Add(uint64(len(staged)))
			s.noteMirrorMutation()
			for i := range staged {
				s.settleOp(&staged[i])
			}
		}
	}

	for _, op := range retry {
		s.stats.combineFallbacks.Add(1)
		s.soloLocked(op)
	}
}

// stageOp stages one op into b (which reads through the group's batch
// chain). On error the caller aborts b.
func (s *subheap) stageOp(b *txn.Batch, op *combineOp) (stagedGroupOp, error) {
	g := s.mgr.Geometry()
	sop := stagedGroupOp{op: op, batch: b}
	if op.kind == combFree {
		class, size, err := s.stageFree(b, b, op.dev)
		if err != nil {
			return sop, err
		}
		sop.class, sop.size = class, size
		return sop, nil
	}
	class, err := g.ClassOf(op.size)
	if err != nil {
		return sop, fmt.Errorf("%w: %v", ErrBadSize, err)
	}
	blockOff, found, err := s.carveOne(b, class)
	if err != nil {
		return sop, err
	}
	op.off = blockOff
	sop.class, sop.found = class, found
	if lane := op.lane; lane != nil {
		// Same micro-log discipline as tryAlloc: the entry is persisted by
		// the hook inside the group's commit window — after the staged
		// stores are durable, before the shared truncate — through the
		// publisher's window (the publisher granted its own thread rights
		// before publishing and holds them until done).
		loc := uint64(s.id)<<subheapShift | (blockOff - g.UserBase)
		entry := plog.MicroEntry{Offset: loc, Size: g.ClassSize(class)}
		sop.hook = func() error { return lane.Append(entry) }
	}
	return sop, nil
}

// settleOp applies one committed op's stats and gauges — the same
// post-commit accounting as tryAlloc and freeLocked.
func (s *subheap) settleOp(so *stagedGroupOp) {
	if so.op.kind == combFree {
		s.stats.frees.Add(1)
		if s.gauge != nil {
			s.gauge.allocBlocks.Add(-1)
			s.gauge.allocBytes.Add(-int64(so.size))
			s.gauge.freeByClass[so.class].Add(1)
		}
		return
	}
	if so.op.lane != nil {
		s.stats.txAllocs.Add(1)
	} else {
		s.stats.allocs.Add(1)
	}
	if s.gauge != nil {
		g := s.mgr.Geometry()
		s.gauge.allocBlocks.Add(1)
		s.gauge.allocBytes.Add(int64(g.ClassSize(so.class)))
		s.gauge.freeByClass[so.found].Add(-1)
		for cc := so.class; cc < so.found; cc++ {
			s.gauge.freeByClass[cc].Add(1)
		}
	}
}

// soloLocked re-runs one dropped op through the legacy per-op path,
// retagged to its legacy attribution class, with the full pressure ladder.
// Caller holds mu with rights on a ready sub-heap.
func (s *subheap) soloLocked(op *combineOp) {
	if op.kind == combFree {
		s.setClass(nvm.ClassFree)
		op.err = s.freeLocked(op.dev)
		return
	}
	if op.lane != nil {
		s.setClass(nvm.ClassTxAlloc)
	} else {
		s.setClass(nvm.ClassAlloc)
	}
	class, err := s.mgr.Geometry().ClassOf(op.size)
	if err != nil {
		op.err = fmt.Errorf("%w: %v", ErrBadSize, err)
		return
	}
	op.off, op.err = s.allocLadderLocked(class, op.size, op.lane)
}

// groupBatch returns the i-th pooled staging batch, creating it on first
// use (and discarding the pool if the undo log was re-opened). Guarded by
// mu; only valid on a ready sub-heap.
func (s *subheap) groupBatch(i int) *txn.Batch {
	if s.groupUndo != s.undo {
		s.groupBatches = s.groupBatches[:0]
		s.groupUndo = s.undo
	}
	for len(s.groupBatches) <= i {
		s.groupBatches = append(s.groupBatches, txn.NewBatch(s.win, s.undo))
	}
	return s.groupBatches[i]
}

// allocCombined is alloc's combined-mode body. Uncontended (free lock, empty
// array) it runs the legacy locked body directly — an idle heap pays nothing
// for combining. With pending publishers it leads a group including its own
// op; with the lock busy it publishes and spins (combine).
func (s *subheap) allocCombined(size uint64, lane *plog.MicroLog) (uint64, error) {
	if s.mu.TryLock() {
		if !s.combPending() {
			s.h.grant(s.thread)
			defer func() {
				s.h.revoke(s.thread)
				s.mu.Unlock()
			}()
			return s.allocBodyLocked(size, lane)
		}
		op := &combineOp{kind: combAlloc, size: size, lane: lane}
		s.leadLocked(op)
		return op.off, op.err
	}
	op := &combineOp{kind: combAlloc, size: size, lane: lane}
	s.combine(op)
	return op.off, op.err
}

// freeCombined is freeAs's combined-mode body for plain frees; same
// uncontended/lead/publish split as allocCombined.
func (s *subheap) freeCombined(blockOff uint64) error {
	if s.mu.TryLock() {
		if !s.combPending() {
			s.h.grant(s.thread)
			defer func() {
				s.h.revoke(s.thread)
				s.mu.Unlock()
			}()
			return s.freeBodyLocked(blockOff, nvm.ClassFree)
		}
		op := &combineOp{kind: combFree, dev: blockOff}
		s.leadLocked(op)
		return op.err
	}
	op := &combineOp{kind: combFree, dev: blockOff}
	s.combine(op)
	return op.err
}

// burst executes ops as one combined group under a single lock acquisition.
// The deterministic group driver behind CombineAllocBurst/CombineFreeBurst.
func (s *subheap) burst(ops []*combineOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h.grant(s.thread)
	defer s.h.revoke(s.thread)
	s.runGroupLocked(ops)
	for _, op := range ops {
		op.done.Store(1)
	}
}

// CombineAllocBurst allocates len(sizes) blocks from sub-heap shard as ONE
// flat-combined group commit and returns the per-op pointers and errors.
// It is the deterministic combine-width driver for benchmarks and tests:
// naturally overlapping publishers need real CPU parallelism, but the
// fence/flush amortization being measured is a function of group width
// alone. Requires Options.CombinedCommits.
func (h *Heap) CombineAllocBurst(shard int, sizes []uint64) ([]NVMPtr, []error, error) {
	if h.isClosed() {
		return nil, nil, ErrClosed
	}
	if err := h.writable(); err != nil {
		return nil, nil, err
	}
	if shard < 0 || shard >= len(h.subheaps) {
		return nil, nil, fmt.Errorf("poseidon: shard %d out of range [0, %d)", shard, len(h.subheaps))
	}
	s := h.subheaps[shard]
	if s.comb == nil {
		return nil, nil, fmt.Errorf("poseidon: CombineAllocBurst requires Options.CombinedCommits")
	}
	if s.isQuarantined() {
		return nil, nil, fmt.Errorf("%w: sub-heap %d (%s)", ErrSubheapQuarantined, s.id, s.quarantineReason())
	}
	ops := make([]*combineOp, len(sizes))
	for i, sz := range sizes {
		ops[i] = &combineOp{kind: combAlloc, size: sz}
	}
	s.burst(ops)
	ptrs := make([]NVMPtr, len(ops))
	errs := make([]error, len(ops))
	for i, op := range ops {
		errs[i] = op.err
		if op.err == nil {
			ptrs[i] = makePtr(h.heapID, uint16(shard), op.off-h.lay.userBase(shard))
		}
	}
	return ptrs, errs, nil
}

// CombineFreeBurst frees the given blocks as flat-combined group commits
// (one group per owning sub-heap) and returns per-op errors. The burst
// counterpart of CombineAllocBurst; requires Options.CombinedCommits.
func (h *Heap) CombineFreeBurst(ptrs []NVMPtr) ([]error, error) {
	if h.isClosed() {
		return nil, ErrClosed
	}
	if err := h.writable(); err != nil {
		return nil, err
	}
	errs := make([]error, len(ptrs))
	ops := make(map[*subheap][]*combineOp)
	idx := make(map[*combineOp]int)
	for i, p := range ptrs {
		s, dev, err := h.resolve(p)
		if err != nil {
			errs[i] = err
			continue
		}
		if s.comb == nil {
			errs[i] = fmt.Errorf("poseidon: CombineFreeBurst requires Options.CombinedCommits")
			continue
		}
		if s.isQuarantined() {
			errs[i] = fmt.Errorf("%w: sub-heap %d (%s)", ErrSubheapQuarantined, s.id, s.quarantineReason())
			continue
		}
		op := &combineOp{kind: combFree, dev: dev}
		ops[s] = append(ops[s], op)
		idx[op] = i
	}
	for s, group := range ops {
		s.burst(group)
		for _, op := range group {
			errs[idx[op]] = op.err
		}
	}
	return errs, nil
}
