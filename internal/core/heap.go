// Package core implements the Poseidon persistent memory allocator:
// per-CPU sub-heaps for scalability, fully segregated metadata guarded by
// (modeled) Intel MPK, a multi-level hash table of memory-block records for
// constant-time safety checks, and undo/micro logging for crash consistency.
//
// The exported facade for applications is the module-root package poseidon;
// this package holds the implementation and is exercised directly by the
// benchmarks and baselines.
package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
	"poseidon/internal/txn"
)

// Heap is a Poseidon persistent heap on one NVMM device.
type Heap struct {
	dev  *nvm.Device
	unit *mpk.Unit
	lay  layout
	opts Options

	heapID uint64

	// authority is non-nil under ProtectMPKHardened: the unit is sealed
	// and only these grant/revoke paths can switch permissions.
	authority *mpk.Authority

	sbMu     sync.Mutex // guards superblock metadata (root pointer)
	sbThread *mpk.Thread
	sbWin    mpk.Window
	sbUndo   *plog.UndoLog
	sbBatch  *txn.Batch

	subheaps []*subheap

	laneMu    sync.Mutex
	freeLanes []int
	nextShard atomic.Uint32

	// magsOn is set when Options.Magazines is enabled AND the image's
	// manifest arena is large enough for the requested geometry; magCap
	// and magClasses are the effective per-thread magazine shape.
	magsOn     bool
	magCap     int
	magClasses int

	// rawAttach marks a heap opened by Attach: no recovery has run, so
	// lazy sub-heap opening must not replay logs either (fsck -raw needs
	// the untouched post-crash image).
	rawAttach bool

	transientRetries atomic.Uint64 // I/O retries that survived ErrTransient

	// health is the current HealthState; recomputed from the quarantine set
	// and retry pressure after every transition-relevant event. healthMu
	// serializes recomputations: compute-then-store is not atomic, and two
	// concurrent recovery workers quarantining at once must not let a stale
	// computation overwrite a more-degraded state.
	health   atomic.Int32
	healthMu sync.Mutex

	// Self-healing counters (surfaced via Stats and the metrics endpoint).
	repairedSubheaps atomic.Uint64
	repairedBytes    atomic.Uint64
	mirrorRestores   atomic.Uint64

	// scrubStop/scrubDone coordinate the optional online scrubber goroutine
	// (Options.OnlineScrub); nil when the scrubber is not running.
	scrubStop chan struct{}
	scrubDone chan struct{}

	// tel is the optional telemetry registry (Options.Telemetry); nil when
	// the heap runs uninstrumented. sbRec attributes superblock-window
	// device traffic; it is retagged under sbMu (or during single-threaded
	// format/recovery).
	tel   *obs.Telemetry
	sbRec *nvm.AttrRecorder

	// prof is the allocation-site heap profiler (created whenever
	// telemetry is on, so recovered profiles render even with sampling
	// off); tracer is the sampled op-span tracer (nil unless
	// Options.Trace.Rate > 0). Both nil costs one pointer check per hook.
	prof   *obs.Profiler
	tracer *obs.Tracer

	// Profile persistence state (profile.go): a dedicated window writes
	// side-table snapshots under profMu; profEpoch is the current boot
	// epoch; profSeq/profSlot name the next snapshot generation and A/B
	// slot; profPace counts sampled allocs to pace background persists.
	profMu     sync.Mutex
	profThread *mpk.Thread
	profWin    mpk.Window
	profSeq    uint64
	profSlot   int
	profEpoch  uint64
	profWrote  bool // a snapshot generation exists (written or recovered)
	profPace   atomic.Uint64

	// Black-box flight recorder state (blackbox.go): a dedicated window
	// publishes staged event/span records into the persistent ring under
	// bbMu; bbEpoch is the boot epoch (monotone across restarts), bbSeq the
	// next record sequence, bbHdrGen/bbSlot the next header generation and
	// A/B slot. bbRecovered holds the timeline replayed from the image at
	// load for post-mortem rendering.
	bbMu        sync.Mutex
	bbThread    *mpk.Thread
	bbWin       mpk.Window
	bbOn        bool
	bbEpoch     uint64
	bbSeq       uint64
	bbHdrGen    uint64
	bbSlot      int
	bbStaged    []plog.BoxRecord
	bbSpanSeq   uint64 // tracer sequence high-water already mirrored
	bbRecovered []plog.BoxRecord
	bbPublished atomic.Uint64
	bbDropped   atomic.Uint64
	bbTorn      atomic.Uint64

	// Stall watchdog state (watchdog.go); wd is nil when disabled — the
	// sub-heap lock sites pay exactly one nil check then.
	wd          *watchdog
	tap         *nvm.LatencyTap
	stallsTotal atomic.Uint64
	openedAt    time.Time

	closed bool
	mu     sync.Mutex // guards closed
}

// Create formats a new heap on a fresh device.
func Create(opts Options) (*Heap, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	lay, err := computeLayout(opts.Subheaps, opts.SubheapUserSize, opts.SubheapMetaSize,
		opts.UndoLogSize, opts.MaxThreads, opts.MicroLogLaneSize, opts.magSlots(),
		defaultProfSize, defaultBoxSize)
	if err != nil {
		return nil, err
	}
	dev, err := nvm.NewDevice(nvm.Options{
		Capacity:      lay.capacity,
		CrashTracking: opts.CrashTracking,
		Stats:         opts.DeviceStats,
	})
	if err != nil {
		return nil, err
	}
	h, err := assemble(dev, lay, opts)
	if err != nil {
		return nil, err
	}
	if err := h.format(); err != nil {
		return nil, err
	}
	// A fresh image starts at boot epoch 1; a leak report asks for sites
	// first seen before the current epoch, so epoch 0 is reserved for
	// "never recorded".
	h.profEpoch = 1
	h.profSeq = 1
	h.prof.SetEpoch(1)
	h.initBlackboxFresh()
	h.recomputeHealth()
	h.startScrubber()
	h.startWatchdog()
	return h, nil
}

// Load attaches to an existing heap image on dev (e.g. after nvm.LoadFile,
// or in-process after a simulated crash) and runs crash recovery.
func Load(dev *nvm.Device, opts Options) (*Heap, error) {
	opts = opts.withDefaults()
	lay, err := readLayout(dev)
	if err != nil {
		return nil, err
	}
	h, err := assemble(dev, lay, opts)
	if err != nil {
		return nil, err
	}
	var start time.Time
	if h.tel != nil {
		start = time.Now()
	}
	// Recovery always records a span when tracing is on (no sampling roll):
	// its timeline is exactly what the tracer exists to show.
	tdone := h.traceForced(obs.OpRecovery, -1)
	rerr := h.recover()
	if tdone != nil {
		tdone(rerr)
	}
	if rerr != nil {
		return nil, rerr
	}
	h.loadProfile()
	h.loadBlackbox()
	h.recomputeHealth()
	if h.tel != nil {
		h.tel.Record(obs.OpLoad, time.Since(start))
		st := h.Stats()
		h.tel.Emit(obs.EventRecovery, -1, fmt.Sprintf(
			"load complete: %d tx blocks rolled back, %d no-ops, %d sub-heaps quarantined",
			st.RecoveredBlocks, st.RecoveredNoops, st.QuarantinedSubheaps))
	}
	h.startScrubber()
	h.startWatchdog()
	return h, nil
}

// Attach wires a heap over an existing image WITHOUT running recovery —
// the raw post-crash view poseidon-fsck -raw audits. Allocator operations
// on an un-recovered heap are unsafe; use Load for normal operation.
func Attach(dev *nvm.Device, opts Options) (*Heap, error) {
	opts = opts.withDefaults()
	lay, err := readLayout(dev)
	if err != nil {
		return nil, err
	}
	h, err := assemble(dev, lay, opts)
	if err != nil {
		return nil, err
	}
	h.rawAttach = true
	h.heapID, err = dev.ReadU64(sbHeapIDOff)
	if err != nil {
		return nil, err
	}
	h.grant(h.sbThread)
	h.sbUndo, err = plog.OpenUndoLog(h.sbWin, sbUndoOff, sbUndoSize)
	h.revoke(h.sbThread)
	if err != nil {
		return nil, fmt.Errorf("%w: superblock log: %v", ErrCorruptHeap, err)
	}
	h.sbBatch = txn.NewBatch(h.sbWin, h.sbUndo)
	return h, nil
}

// assemble wires the in-DRAM structures over a device (no persistent
// mutations). MPK tagging is (re)applied here: key assignments live in page
// tables, which do not survive a restart.
func assemble(dev *nvm.Device, lay layout, opts Options) (*Heap, error) {
	unit := mpk.NewUnit(dev.Capacity())
	switch opts.Protection {
	case ProtectMprotect:
		unit.SetSwitchCost(opts.MprotectCost)
	case ProtectMPK, ProtectNone:
		// MPK switch cost is ~23 cycles — below the resolution the Go
		// model can meaningfully spin, so it is charged as zero and
		// counted; ProtectNone performs no switches at all.
	}
	// Tag the superblock region and each sub-heap's metadata region.
	if err := unit.AssignRange(0, lay.subheapOff, metadataKey); err != nil {
		return nil, err
	}
	for i := 0; i < lay.subheaps; i++ {
		if err := unit.AssignRange(lay.subheapBase(i), lay.metaSize, metadataKey); err != nil {
			return nil, err
		}
	}
	h := &Heap{dev: dev, unit: unit, lay: lay, opts: opts, tel: opts.Telemetry}
	h.sbThread = unit.NewThread(defaultRights(opts))
	h.sbWin = mpk.NewWindow(dev, h.sbThread)
	if h.tel != nil {
		h.sbRec = nvm.NewAttrRecorder(h.tel.Attribution(), nvm.ClassRoot)
		h.sbWin = h.sbWin.WithRecorder(h.sbRec)
		// The profiler exists whenever telemetry does (rate 0 = sampling
		// off but recovered site tables still load and render); the tracer
		// only when a trace rate was requested.
		h.prof = obs.NewProfiler(opts.Profile.Rate)
		h.tel.SetProfiler(h.prof)
		if opts.Trace.Rate > 0 {
			h.tracer = obs.NewTracer(opts.Trace.Rate, opts.Trace.Buffer)
			h.tel.SetTracer(h.tracer)
		}
		// Side-table snapshot writes go through their own window so their
		// flushes are attributed to ClassProfile, never to the operation
		// that happened to trigger the paced persist.
		h.profThread = unit.NewThread(defaultRights(opts))
		h.profWin = mpk.NewWindow(dev, h.profThread).
			WithRecorder(nvm.NewAttrRecorder(h.tel.Attribution(), nvm.ClassProfile))
	}
	// The black-box window exists even without telemetry: Attach-mode tools
	// (poseidon-fsck, poseidon-inspect) replay the persistent ring from a
	// crashed image with no registry wired.
	h.bbThread = unit.NewThread(defaultRights(opts))
	h.bbWin = mpk.NewWindow(dev, h.bbThread)
	if h.tel != nil {
		h.bbWin = h.bbWin.WithRecorder(nvm.NewAttrRecorder(h.tel.Attribution(), nvm.ClassBlackbox))
		// Journal events mirror into the black-box staging buffer from here
		// on; the latest heap sharing a registry wins the mirror slot.
		h.tel.SetMirror(h)
	}
	if opts.Watchdog.StallThreshold > 0 {
		// Outlier threshold for the fence/flush latency tap: an eighth of
		// the stall threshold — slow device ops show up well before the
		// watchdog would fire.
		h.tap = nvm.NewLatencyTap(opts.Watchdog.StallThreshold/8, nil)
		dev.SetLatencyTap(h.tap)
	}
	h.openedAt = time.Now()

	h.freeLanes = make([]int, 0, lay.laneCount)
	for i := lay.laneCount - 1; i >= 0; i-- {
		h.freeLanes = append(h.freeLanes, i)
	}
	h.subheaps = make([]*subheap, lay.subheaps)
	for i := range h.subheaps {
		s, err := newSubheap(h, i)
		if err != nil {
			return nil, err
		}
		h.subheaps[i] = s
	}
	if opts.Magazines.Capacity > 0 {
		g, err := lay.memblockGeometry(0)
		if err != nil {
			return nil, err
		}
		classes := opts.Magazines.Classes
		if classes > g.NumClasses {
			classes = g.NumClasses
		}
		if need := uint64(classes) * uint64(opts.Magazines.Capacity); need <= lay.magSlots {
			h.magsOn = true
			h.magCap = opts.Magazines.Capacity
			h.magClasses = classes
		} else {
			// An old or differently-sized image: run without magazines
			// rather than fail the open.
			h.tel.Emit(obs.EventRecovery, -1, fmt.Sprintf(
				"magazines disabled: image provisions %d manifest words per lane, geometry needs %d",
				lay.magSlots, need))
		}
	}
	if opts.Protection == ProtectMPKHardened {
		authority, err := unit.Seal()
		if err != nil {
			return nil, err
		}
		h.authority = authority
	}
	return h, nil
}

// defaultRights is the PKRU every thread starts with: metadata read-only
// under MPK/mprotect, fully open when protection is disabled.
func defaultRights(opts Options) mpk.Rights {
	if opts.Protection == ProtectNone {
		return mpk.RightsRW
	}
	return mpk.RightsRO
}

// grant temporarily opens the metadata region for t; revoke closes it.
// Under ProtectNone both are free no-ops (the ablation baseline); under
// ProtectMPKHardened they are the only vetted WRPKRU call sites.
func (h *Heap) grant(t *mpk.Thread) {
	switch {
	case h.authority != nil:
		h.authority.SetRights(t, metadataKey, mpk.RightsRW)
	case h.opts.Protection != ProtectNone:
		t.SetRights(metadataKey, mpk.RightsRW)
	}
}

func (h *Heap) revoke(t *mpk.Thread) {
	switch {
	case h.authority != nil:
		h.authority.SetRights(t, metadataKey, mpk.RightsRO)
	case h.opts.Protection != ProtectNone:
		t.SetRights(metadataKey, mpk.RightsRO)
	}
}

// format writes the initial persistent image.
func (h *Heap) format() error {
	heapID := h.opts.HeapID
	if heapID == 0 {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return fmt.Errorf("poseidon: heap id: %w", err)
		}
		heapID = binary.LittleEndian.Uint64(buf[:]) | 1 // never zero
	}
	h.heapID = heapID

	h.grant(h.sbThread)
	defer h.revoke(h.sbThread)
	w := h.sbWin
	fields := []struct {
		off uint64
		val uint64
	}{
		{sbMagicOff, heapMagic},
		{sbVersionOff, heapVersion},
		{sbHeapIDOff, heapID},
		{sbSubheapsOff, uint64(h.lay.subheaps)},
		{sbUserSizeOff, h.lay.userSize},
		{sbMetaSizeOff, h.lay.metaSize},
		{sbRootLocOff, 0},
		{sbLaneCountOff, uint64(h.lay.laneCount)},
		{sbLaneSizeOff, h.lay.laneSize},
		{sbUndoSizeOff, h.lay.undoSize},
		{sbMagSlotsOff, h.lay.magSlots},
		{sbProfSizeOff, h.lay.profSize},
		{sbBoxSizeOff, h.lay.boxSize},
	}
	for _, f := range fields {
		if err := w.WriteU64(f.off, f.val); err != nil {
			return err
		}
	}
	// Flush every header field (including the magSlots/profSize/boxSize
	// words past the initialized slot — the initialized word itself is
	// still zero here) before the commit point below makes them meaningful.
	if err := w.Flush(0, sbBoxSizeOff+8); err != nil {
		return err
	}
	w.Fence()
	// The initialized word is the creation commit point.
	if err := w.PersistU64(sbInitializedOff, 1); err != nil {
		return err
	}
	var err error
	h.sbUndo, err = plog.OpenUndoLog(w, sbUndoOff, sbUndoSize)
	if err != nil {
		return err
	}
	h.sbBatch = txn.NewBatch(w, h.sbUndo)
	return nil
}

// retry is nvm.Retry with the heap's stats counter and journal attached.
// It is the transient-error policy for recovery and runtime read paths: a
// bounded backoff absorbs the ECC-retry/clearing-poison class of fault
// instead of turning a survivable blip into an unavailable heap.
func (h *Heap) retry(fn func() error) error {
	n, err := nvm.Retry(fn)
	if n > 0 && err == nil {
		h.transientRetries.Add(uint64(n))
		h.tel.Emit(obs.EventTransientRetry, -1,
			fmt.Sprintf("device I/O succeeded after %d transient retries", n))
		h.recomputeHealth()
	}
	return err
}

// quarantinable classifies a recovery error: corruption-class failures are
// survivable by quarantining the sub-heap; device-level failures (dying
// machine, exhausted transient retries, range bugs) stay fatal — a heap
// that "recovers" on a failing device would be lying about durability.
func quarantinable(err error) bool {
	return err != nil &&
		!errors.Is(err, nvm.ErrDeviceFailed) &&
		!errors.Is(err, nvm.ErrTransient) &&
		!errors.Is(err, nvm.ErrOutOfRange)
}

// readLayout validates the superblock of an existing image and rebuilds the
// layout from it.
func readLayout(dev *nvm.Device) (layout, error) {
	var ioErr error
	read := func(off uint64) uint64 {
		var v uint64
		_, err := nvm.Retry(func() error {
			var e error
			v, e = dev.ReadU64(off)
			return e
		})
		if err != nil && ioErr == nil {
			ioErr = err
		}
		return v
	}
	if v := read(sbMagicOff); ioErr != nil {
		return layout{}, fmt.Errorf("superblock read: %w", ioErr)
	} else if v != heapMagic {
		return layout{}, fmt.Errorf("%w: bad magic", ErrCorruptHeap)
	}
	if v := read(sbVersionOff); v != heapVersion {
		return layout{}, fmt.Errorf("%w: version %d (want %d)", ErrCorruptHeap, v, heapVersion)
	}
	if read(sbInitializedOff) != 1 {
		return layout{}, fmt.Errorf("%w: creation never completed", ErrCorruptHeap)
	}
	lay, err := computeLayout(
		int(read(sbSubheapsOff)), read(sbUserSizeOff), read(sbMetaSizeOff),
		read(sbUndoSizeOff), int(read(sbLaneCountOff)), read(sbLaneSizeOff),
		read(sbMagSlotsOff), read(sbProfSizeOff), read(sbBoxSizeOff))
	if ioErr != nil {
		return layout{}, fmt.Errorf("superblock read: %w", ioErr)
	}
	if err != nil {
		return layout{}, fmt.Errorf("%w: %v", ErrCorruptHeap, err)
	}
	if lay.capacity > dev.Capacity() {
		return layout{}, fmt.Errorf("%w: image needs %d bytes, device has %d",
			ErrCorruptHeap, lay.capacity, dev.Capacity())
	}
	return lay, nil
}

// recover replays all logs after a restart (paper §5.1, §5.8): first the
// superblock and sub-heap undo logs restore metadata consistency, then the
// micro-log lanes roll back uncommitted transactional allocations.
//
// Recovery degrades instead of dying: transient device errors are retried
// with bounded backoff, and a sub-heap whose metadata proves corrupt — log
// recovery fails, or (with ScrubOnLoad) the audit finds problems — is
// quarantined, leaving the rest of the heap fully usable. Only superblock
// corruption or device-level failure aborts the load.
//
// Everything after the superblock replay is per-sub-heap independent, so
// with Options.RecoveryParallelism > 1 it fans out over a bounded worker
// pool (recovery.go) instead of running the serial loops below; the two
// paths produce byte-identical images.
func (h *Heap) recover() error {
	var phaseStart time.Time
	if h.tel != nil {
		phaseStart = time.Now()
		h.sbRec.SetClass(nvm.ClassRecovery)
		defer h.sbRec.SetClass(nvm.ClassRoot)
	}
	var v uint64
	if err := h.retry(func() error {
		var e error
		v, e = h.dev.ReadU64(sbHeapIDOff)
		return e
	}); err != nil {
		return err
	}
	h.heapID = v

	// The superblock log protects the root pointer; there is no smaller
	// unit to quarantine, so failure here is fatal.
	err := h.retry(func() error {
		h.grant(h.sbThread)
		defer h.revoke(h.sbThread)
		undo, err := plog.OpenUndoLog(h.sbWin, sbUndoOff, sbUndoSize)
		if err != nil {
			return err
		}
		if err := undo.Replay(); err != nil {
			return err
		}
		h.sbUndo = undo
		return nil
	})
	if err != nil {
		if !quarantinable(err) {
			return fmt.Errorf("superblock log: %w", err)
		}
		return fmt.Errorf("%w: superblock log: %v", ErrCorruptHeap, err)
	}
	h.sbBatch = txn.NewBatch(h.sbWin, h.sbUndo)

	par := h.recoveryParallelism()
	if par > 1 {
		if err := h.recoverFanout(par); err != nil {
			return err
		}
	} else if err := h.recoverSerial(); err != nil {
		return err
	}
	if h.tel != nil {
		h.tel.Record(obs.OpRecovery, time.Since(phaseStart))
	}

	if h.opts.ScrubOnLoad {
		var scrubStart time.Time
		if h.tel != nil {
			scrubStart = time.Now()
		}
		if err := h.scrub(par); err != nil {
			return err
		}
		if h.tel != nil {
			h.tel.Record(obs.OpScrub, time.Since(scrubStart))
		}
		// Every in-service sub-heap just passed a full audit — the one
		// moment a load is entitled to refresh the metadata mirrors.
		// Without ScrubOnLoad the mirrors stay stale-but-trustworthy until
		// the mutation-paced refresh catches up: a stale mirror only costs
		// repair its cheap path, a corrupt one would poison it. The mirror
		// refresh itself stays serial in every mode: it runs after the full
		// fan-out has joined, so ordering (superblock, then replay, then
		// audit, then mirrors) is identical for all parallelism levels.
		h.syncMirrors()
	}
	return nil
}

// recoverSerial is the legacy single-threaded load tail (RecoveryParallelism
// <= 1): sub-heap log recovery, micro-lane rollback and cache-manifest
// replay, strictly in order, stopping at the first fatal error.
func (h *Heap) recoverSerial() error {
	for _, s := range h.subheaps {
		err := h.retry(s.recoverLogs)
		if err == nil {
			continue
		}
		if !quarantinable(err) {
			return fmt.Errorf("sub-heap %d: %w", s.id, err)
		}
		s.quarantine(fmt.Sprintf("log recovery failed: %v", err))
	}

	// Roll back uncommitted transactions. Undo replay may already have
	// reverted a logged allocation, in which case the free is rejected by
	// the hash-table check — exactly the idempotency §5.8 relies on.
	for i := 0; i < h.lay.laneCount; i++ {
		if err := h.retry(func() error { return h.recoverLane(i) }); err != nil {
			if !quarantinable(err) {
				return fmt.Errorf("micro lane %d: %w", i, err)
			}
			return fmt.Errorf("%w: micro lane %d: %v", ErrCorruptHeap, i, err)
		}
	}

	// Return every block still recorded in a cache manifest to its free
	// list: a crash with populated magazines must never leak the cached
	// blocks. Replay is idempotent — an entry whose block is already free
	// (the push that cached it never became durable) is a no-op.
	if h.lay.magSlots > 0 {
		for i := 0; i < h.lay.laneCount; i++ {
			if err := h.retry(func() error { return h.recoverManifest(i) }); err != nil {
				if !quarantinable(err) {
					return fmt.Errorf("cache manifest %d: %w", i, err)
				}
				return fmt.Errorf("%w: cache manifest %d: %v", ErrCorruptHeap, i, err)
			}
		}
	}
	return nil
}

// scrub audits every in-service sub-heap with the fsck engine and
// quarantines those whose metadata fails — the load-time detector for
// corruption that log replay cannot see (media bit flips, stray writes).
// With par > 1 the audits run concurrently; each sub-heap's check is
// self-contained under its own lock, and quarantine/health transitions are
// serialized (qmu, healthMu), so concurrent findings bench their sub-heaps
// independently.
func (h *Heap) scrub(par int) error {
	return h.forEachRecovery(len(h.subheaps), par, func(_, i int) error {
		return h.scrubOne(h.subheaps[i])
	})
}

// scrubOne audits a single sub-heap and quarantines it on failure; only
// device-level errors are returned (and abort the load).
func (h *Heap) scrubOne(s *subheap) error {
	if s.isQuarantined() {
		return nil
	}
	var sub SubheapReport
	err := h.retry(func() error {
		var e error
		sub, e = s.check()
		return e
	})
	switch {
	case err == nil && len(sub.Problems) == 0:
	case err == nil:
		h.tel.Emit(obs.EventScrubFinding, s.id, fmt.Sprintf(
			"%d problems, first: %s", len(sub.Problems), sub.Problems[0]))
		s.quarantine(fmt.Sprintf("audit failed: %s (%d problems)",
			sub.Problems[0], len(sub.Problems)))
	case quarantinable(err):
		s.quarantine(fmt.Sprintf("audit aborted: %v", err))
	default:
		return fmt.Errorf("sub-heap %d scrub: %w", s.id, err)
	}
	return nil
}

// recoverLane frees every allocation logged in lane i and truncates it.
func (h *Heap) recoverLane(i int) error {
	h.grant(h.sbThread)
	lane, err := plog.OpenMicroLog(h.sbWin, h.lay.laneBase(i), h.lay.laneSize)
	if err != nil {
		h.revoke(h.sbThread)
		return err
	}
	if lane.IsEmpty() {
		h.revoke(h.sbThread)
		return nil
	}
	entries, err := lane.Entries()
	h.revoke(h.sbThread)
	if err != nil {
		return err
	}
	for _, e := range entries {
		sub := uint16(e.Offset >> subheapShift)
		off := e.Offset & offsetMask
		dev, err := h.lay.locToDevice(sub, off)
		if err != nil {
			continue // stale entry pointing nowhere valid; skip
		}
		if err := h.replayTxEntry(h.subheaps[sub], i, dev); err != nil {
			return err
		}
	}
	h.grant(h.sbThread)
	err = lane.Truncate()
	h.revoke(h.sbThread)
	return err
}

// replayTxEntry rolls back one micro-log allocation against its sub-heap —
// the per-entry body shared by the serial lane walk (recoverLane) and the
// parallel per-sub-heap replay (recovery.go). lane is the entry's micro
// lane, used only for latency attribution. Returns only fatal errors;
// no-op outcomes (quarantined target, already-reverted allocation) are
// absorbed into the recovery counters.
func (h *Heap) replayTxEntry(s *subheap, lane int, dev uint64) error {
	if s.isQuarantined() {
		// The block lives in a region already out of service; rolling
		// it back would touch metadata we no longer trust.
		s.stats.recoveredNoops.Add(1)
		return nil
	}
	var start time.Time
	if h.tel != nil {
		start = time.Now()
	}
	err := s.freeAs(dev, nvm.ClassTxFree)
	if h.tel != nil {
		h.tel.RecordOn(lane, obs.OpTxFree, time.Since(start))
	}
	if err != nil {
		// Invalid/double frees here mean the undo log already
		// reverted this allocation; anything else is fatal.
		if err == ErrInvalidFree || err == ErrDoubleFree {
			s.stats.recoveredNoops.Add(1)
			return nil
		}
		return err
	}
	s.stats.recoveredBlocks.Add(1)
	return nil
}

// recoverManifest frees every block still recorded in lane i's cache
// manifest and clears the processed words. Entries that fail to decode or
// point outside the heap are left in place for the audit (media
// corruption must stay visible); entries naming a quarantined sub-heap
// are left untouched — that capacity is out of service anyway.
func (h *Heap) recoverManifest(i int) error {
	man := plog.NewManifest(h.lay.laneManifestBase(i), h.lay.magSlots)
	cleared := 0
	for k := uint64(0); k < man.Slots(); k++ {
		off := man.WordOff(k)
		word, err := h.sbWin.ReadU64(off)
		if err != nil {
			return err
		}
		if word == 0 {
			continue
		}
		rel, shard, ok := plog.DecodeCacheEntry(word)
		if !ok || int(shard) >= h.lay.subheaps || rel >= h.lay.userSize {
			h.tel.Emit(obs.EventScrubFinding, -1, fmt.Sprintf(
				"cache manifest %d slot %d: invalid entry %#x", i, k, word))
			continue
		}
		clear, err := h.replayManifestEntry(h.subheaps[shard], rel)
		if err != nil {
			return err
		}
		if !clear {
			continue
		}
		h.grant(h.sbThread)
		werr := h.sbWin.WriteU64(off, 0)
		var ferr error
		if werr == nil {
			ferr = h.sbWin.Flush(off, 8)
		}
		h.revoke(h.sbThread)
		if werr != nil {
			return werr
		}
		if ferr != nil {
			return ferr
		}
		cleared++
	}
	if cleared > 0 {
		h.sbWin.Fence()
	}
	return nil
}

// replayManifestEntry returns one cached block to its sub-heap's free list
// — the per-entry body shared by the serial manifest walk (recoverManifest)
// and the parallel per-sub-heap replay (recovery.go). It reports whether
// the manifest word may be cleared: processed entries (freed, or no-op
// because the cache push never became durable) clear; entries naming a
// quarantined sub-heap stay in place — that capacity is out of service
// anyway, and the surviving word keeps replay idempotent if the sub-heap
// is later repaired. Returns only fatal errors.
func (h *Heap) replayManifestEntry(s *subheap, rel uint64) (clear bool, _ error) {
	if s.isQuarantined() {
		s.stats.recoveredNoops.Add(1)
		return false, nil
	}
	switch err := s.freeAs(h.lay.userBase(s.id)+rel, nvm.ClassRecovery); {
	case err == nil:
		s.stats.recoveredCached.Add(1)
		return true, nil
	case errors.Is(err, ErrInvalidFree) || errors.Is(err, ErrDoubleFree):
		// The block was never durably removed from its free list (or a
		// later flush-back already returned it) — nothing leaked.
		s.stats.recoveredNoops.Add(1)
		return true, nil
	case errors.Is(err, ErrSubheapQuarantined):
		s.stats.recoveredNoops.Add(1)
		return false, nil
	case quarantinable(err):
		s.quarantine(fmt.Sprintf("cache manifest replay failed: %v", err))
		s.stats.recoveredNoops.Add(1)
		return false, nil
	default:
		return false, err
	}
}

// HeapID returns the heap's persistent identity.
func (h *Heap) HeapID() uint64 { return h.heapID }

// Device exposes the underlying device (benchmarks, inspection, crash
// simulation).
func (h *Heap) Device() *nvm.Device { return h.dev }

// Unit exposes the protection unit (inspection and demos).
func (h *Heap) Unit() *mpk.Unit { return h.unit }

// Subheaps returns the number of sub-heaps.
func (h *Heap) Subheaps() int { return h.lay.subheaps }

// Root returns the root pointer (paper §4.6), or the null pointer if unset.
func (h *Heap) Root() (NVMPtr, error) {
	h.sbMu.Lock()
	defer h.sbMu.Unlock()
	set, err := h.sbWin.ReadU64(sbRootSetOff)
	if err != nil {
		return NVMPtr{}, err
	}
	if set == 0 {
		return NVMPtr{}, nil
	}
	loc, err := h.sbWin.ReadU64(sbRootLocOff)
	if err != nil {
		return NVMPtr{}, err
	}
	return ptrFromWords(h.heapID, loc), nil
}

// SetRoot durably stores the root pointer. The location and validity words
// update failure-atomically under the superblock undo log.
func (h *Heap) SetRoot(p NVMPtr) error {
	if err := h.writable(); err != nil {
		return err
	}
	if !p.IsNull() && p.HeapID != h.heapID {
		return fmt.Errorf("%w: root from heap %#x", ErrBadPointer, p.HeapID)
	}
	h.sbMu.Lock()
	defer h.sbMu.Unlock()
	h.grant(h.sbThread)
	defer h.revoke(h.sbThread)
	var set uint64
	if !p.IsNull() {
		set = 1
	}
	b := h.sbBatch
	if err := b.WriteU64(sbRootLocOff, p.Loc()); err != nil {
		b.Abort()
		return err
	}
	if err := b.WriteU64(sbRootSetOff, set); err != nil {
		b.Abort()
		return err
	}
	if err := b.Commit(); err != nil {
		b.Abort()
		if rerr := h.sbUndo.Replay(); rerr != nil {
			return fmt.Errorf("poseidon: rollback after failed root update: %w", rerr)
		}
		return err
	}
	return nil
}

// RawOffset translates a persistent pointer to its device offset — the
// analogue of poseidon_get_rawptr (§4.6).
func (h *Heap) RawOffset(p NVMPtr) (uint64, error) {
	if p.IsNull() || p.HeapID != h.heapID {
		return 0, fmt.Errorf("%w: %v", ErrBadPointer, p)
	}
	return h.lay.locToDevice(p.Subheap(), p.Offset())
}

// resolve validates p and returns its owning sub-heap together with its
// device offset in a single decode — the hot-path form of RawOffset that
// spares callers a second, unchecked subheaps[p.Subheap()] index.
func (h *Heap) resolve(p NVMPtr) (*subheap, uint64, error) {
	if p.IsNull() || p.HeapID != h.heapID {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadPointer, p)
	}
	sub, off := p.Subheap(), p.Offset()
	if int(sub) >= h.lay.subheaps || off >= h.lay.userSize {
		return nil, 0, fmt.Errorf("%w: sub=%d off=%#x", ErrBadPointer, sub, off)
	}
	return h.subheaps[sub], h.lay.userBase(int(sub)) + off, nil
}

// PtrAt translates a user-region device offset back to a persistent
// pointer — the analogue of poseidon_get_nvmptr (§4.6).
func (h *Heap) PtrAt(deviceOff uint64) (NVMPtr, error) {
	sub, off, err := h.lay.deviceToLoc(deviceOff)
	if err != nil {
		return NVMPtr{}, err
	}
	return makePtr(h.heapID, sub, off), nil
}

// SaveFile persists the heap image to path (atomic rename).
func (h *Heap) SaveFile(path string) error { return h.dev.SaveFile(path) }

// Close marks the heap unusable and stops the online scrubber (waiting for
// an in-flight slice to finish). It does not save; call SaveFile first if
// durability across process restarts is wanted.
func (h *Heap) Close() error {
	// Persist the final profile snapshot and seal the black-box ring while
	// the heap is still open (both best-effort: a failed write leaves the
	// previous generation valid).
	_ = h.PersistProfile()
	_ = h.FlushBlackbox()
	h.sealBlackbox()
	h.stopWatchdog()
	if h.tel != nil {
		// Detach the mirror so a shared registry stops staging into a
		// closed heap.
		h.tel.SetMirror(nil)
	}
	h.mu.Lock()
	h.closed = true
	stop := h.scrubStop
	h.scrubStop = nil
	h.mu.Unlock()
	if stop != nil {
		close(stop)
		<-h.scrubDone
	}
	return nil
}

func (h *Heap) isClosed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// DrainRemoteFrees drains every sub-heap's remote-free ring to empty —
// the quiesce point tests and tools use before auditing, and a hook for
// applications that want an empty ring at a checkpoint. A no-op on heaps
// without Options.RemoteFreeRings. Quarantined sub-heaps are skipped.
func (h *Heap) DrainRemoteFrees() error {
	if h.isClosed() {
		return ErrClosed
	}
	for _, s := range h.subheaps {
		if err := s.drainRemote(); err != nil {
			return fmt.Errorf("sub-heap %d: %w", s.id, err)
		}
	}
	return nil
}

// Stats aggregates per-sub-heap counters.
func (h *Heap) Stats() HeapStats {
	var out HeapStats
	for _, s := range h.subheaps {
		out.Allocs += s.stats.allocs.Load()
		out.Frees += s.stats.frees.Load()
		out.TxAllocs += s.stats.txAllocs.Load()
		out.DefragMerges += s.stats.defragMerges.Load()
		out.InvalidFrees += s.stats.invalidFrees.Load()
		out.DoubleFrees += s.stats.doubleFrees.Load()
		out.RecoveredBlocks += s.stats.recoveredBlocks.Load()
		out.RecoveredNoops += s.stats.recoveredNoops.Load()
		out.RemoteFrees += s.stats.remoteFrees.Load()
		out.RemoteDrains += s.stats.remoteDrains.Load()
		out.RingFallbacks += s.stats.ringFallbacks.Load()
		out.MagazineHits += s.stats.magazineHits.Load()
		out.MagazineMisses += s.stats.magazineMisses.Load()
		out.MagazineRefills += s.stats.magazineRefills.Load()
		out.MagazineFlushes += s.stats.magazineFlushes.Load()
		out.RecoveredCached += s.stats.recoveredCached.Load()
		out.CombinedCommits += s.stats.combinedCommits.Load()
		out.CombinedOps += s.stats.combinedOps.Load()
		out.CombineFallbacks += s.stats.combineFallbacks.Load()
		if s.isQuarantined() {
			out.QuarantinedSubheaps++
			out.QuarantinedBytes += h.lay.userSize
		}
	}
	out.PermissionSwitches = h.unit.Switches()
	out.TransientRetries = h.transientRetries.Load()
	out.RepairedSubheaps = h.repairedSubheaps.Load()
	out.RepairedBytes = h.repairedBytes.Load()
	out.MirrorRestores = h.mirrorRestores.Load()
	return out
}

// healthyShard returns shard if it is in service, otherwise the nearest
// (round-robin) non-quarantined sub-heap. Errors only when every sub-heap
// is quarantined.
func (h *Heap) healthyShard(shard int) (int, error) {
	n := len(h.subheaps)
	for i := 0; i < n; i++ {
		cand := (shard + i) % n
		if !h.subheaps[cand].isQuarantined() {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("%w: all %d sub-heaps", ErrSubheapQuarantined, n)
}
