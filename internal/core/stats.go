package core

import "sync/atomic"

// subheapStats are per-sub-heap operation counters (atomic so cross-thread
// frees and the aggregating reader need no extra locking).
type subheapStats struct {
	allocs          atomic.Uint64
	txAllocs        atomic.Uint64
	frees           atomic.Uint64
	defragMerges    atomic.Uint64
	invalidFrees    atomic.Uint64
	doubleFrees     atomic.Uint64
	recoveredBlocks atomic.Uint64
	recoveredNoops  atomic.Uint64
	remoteFrees     atomic.Uint64
	remoteDrains    atomic.Uint64
	ringFallbacks   atomic.Uint64
	magazineHits    atomic.Uint64
	magazineMisses  atomic.Uint64
	magazineRefills atomic.Uint64
	magazineFlushes atomic.Uint64
	recoveredCached atomic.Uint64

	combinedCommits  atomic.Uint64
	combinedOps      atomic.Uint64
	combineFallbacks atomic.Uint64
}

// HeapStats is an aggregated snapshot of allocator activity.
type HeapStats struct {
	Allocs              uint64 // singleton allocations served
	TxAllocs            uint64 // transactional allocations served
	Frees               uint64 // frees accepted
	DefragMerges        uint64 // buddy merges performed by defragmentation
	InvalidFrees        uint64 // frees rejected: address not a block
	DoubleFrees         uint64 // frees rejected: block already free
	RecoveredBlocks     uint64 // uncommitted tx allocations freed at recovery
	RecoveredNoops      uint64 // micro-log entries already rolled back by undo
	RemoteFrees         uint64 // cross-sub-heap frees enqueued on remote-free rings
	RemoteDrains        uint64 // ring entries drained (owner batches + recovery replay)
	RingFallbacks       uint64 // remote frees that found a full ring and took the locked path
	MagazineHits        uint64 // allocs/frees served lock-free from a thread magazine
	MagazineMisses      uint64 // magazine-eligible ops that fell back to the locked path
	MagazineRefills     uint64 // batched magazine refill transactions
	MagazineFlushes     uint64 // batched magazine flush-back transactions
	RecoveredCached     uint64 // magazine-cached blocks returned to free lists at recovery
	CombinedCommits     uint64 // flat-combined group commits (one seal+truncate each)
	CombinedOps         uint64 // operations served inside combined group commits
	CombineFallbacks    uint64 // combined ops re-run solo (full array or group abort)
	PermissionSwitches  uint64 // WRPKRU executions (2 per guarded operation)
	QuarantinedSubheaps uint64 // sub-heaps recovery took out of service
	QuarantinedBytes    uint64 // user capacity lost to quarantine
	TransientRetries    uint64 // device I/O retries that survived ErrTransient
	RepairedSubheaps    uint64 // quarantined sub-heaps returned to service by Repair
	RepairedBytes       uint64 // user capacity returned to service by Repair
	MirrorRestores      uint64 // repairs whose header came back from the metadata mirror
}
