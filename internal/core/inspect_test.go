package core

import (
	"strings"
	"testing"
)

func TestInspectSubheap(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	// Sub-heap 0 gets two allocations, sub-heap 1 stays untouched.
	t0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	if _, err := t0.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := t0.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	info, err := h.InspectSubheap(0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Initialized {
		t.Fatal("sub-heap 0 should be formatted")
	}
	if info.AllocatedBlocks != 2 {
		t.Fatalf("allocated blocks = %d", info.AllocatedBlocks)
	}
	if info.AllocatedBytes != 64+4096 {
		t.Fatalf("allocated bytes = %d", info.AllocatedBytes)
	}
	if info.FreeBlocks == 0 || info.FreeBytes == 0 {
		t.Fatal("no free blocks tracked")
	}
	if info.AllocatedBytes+info.FreeBytes != testOptions().SubheapUserSize {
		t.Fatalf("bytes don't tile the region: %d + %d",
			info.AllocatedBytes, info.FreeBytes)
	}
	if info.ClassHistogram[64] != 1 || info.ClassHistogram[4096] != 1 {
		t.Fatalf("histogram = %v", info.ClassHistogram)
	}
	if info.UndoLogEntries != 0 {
		t.Fatalf("undo log entries = %d on an idle heap", info.UndoLogEntries)
	}

	info1, err := h.InspectSubheap(1)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Initialized {
		t.Fatal("sub-heap 1 should be lazy-unformatted")
	}
	if _, err := h.InspectSubheap(99); err == nil {
		t.Fatal("out-of-range sub-heap accepted")
	}
}

func TestInspectDump(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(p); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	// A rejected free shows up in the counters.
	_ = th.Free(p)

	var sb strings.Builder
	if err := h.Inspect(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Poseidon heap", "sub-heaps:", "root:", "allocated blocks",
		"1 allocs", "1 frees", "1 double frees",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
}
