package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

func boxTestOptions(tel *obs.Telemetry) Options {
	return Options{
		Subheaps:        1,
		SubheapUserSize: 512 << 10,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      4,
		HeapID:          78,
		CrashTracking:   true,
		Telemetry:       tel,
	}
}

// countBoxEvents counts timeline entries of the given kind name.
func countBoxEvents(tl []BlackboxEntry, kind string) int {
	n := 0
	for _, e := range tl {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestBlackboxRoundTrip: events emitted on one boot survive a crash and
// replay, in order, on the next — including the sampled span stream.
func TestBlackboxRoundTrip(t *testing.T) {
	tel := obs.NewWithOptions(obs.Options{Shards: 1})
	opts := boxTestOptions(tel)
	opts.Trace = TraceOptions{Rate: 1} // every op records a span
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tel.Emit(obs.EventScrubFinding, -1, fmt.Sprintf("marker-%d", i))
	}
	p, err := th.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.FlushBlackbox(); err != nil {
		t.Fatal(err)
	}

	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictAll}); err != nil {
		t.Fatal(err)
	}
	tel2 := obs.NewWithOptions(obs.Options{Shards: 1})
	h2, err := Load(h.Device(), boxTestOptions(tel2))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := h2.BlackboxTimeline()
	if err != nil {
		t.Fatal(err)
	}
	if got := countBoxEvents(tl, "scrub_finding"); got != 10 {
		t.Fatalf("recovered %d marker events, want 10\n%+v", got, tl)
	}
	spans := 0
	for _, e := range tl {
		if e.Type == "span" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("no sampled spans in recovered timeline: %+v", tl)
	}
	// Strictly ascending sequence order, markers in emission order.
	lastSeq, lastMarker := uint64(0), -1
	for i, e := range tl {
		if i > 0 && e.Seq <= lastSeq {
			t.Fatalf("timeline not ascending at %d: %+v", i, tl)
		}
		lastSeq = e.Seq
		var m int
		if _, err := fmt.Sscanf(e.Detail, "marker-%d", &m); err == nil {
			if m <= lastMarker {
				t.Fatalf("markers out of order: %d after %d", m, lastMarker)
			}
			lastMarker = m
		}
	}
	// A clean image reports nothing torn.
	for _, e := range tel2.Events() {
		if e.Kind == obs.EventBlackboxTorn {
			t.Fatalf("clean image reported torn: %+v", e)
		}
	}
	if st := h2.Metrics().Blackbox; st == nil || !st.Enabled || st.Epoch != 2 {
		t.Fatalf("blackbox stats after reload = %+v, want enabled at epoch 2", st)
	}
}

// TestBlackboxWrap: publishing more records than the ring holds keeps the
// newest ringful, still in ascending order across the wrap boundary.
func TestBlackboxWrap(t *testing.T) {
	tel := obs.NewWithOptions(obs.Options{Shards: 1, JournalSize: 64})
	h, err := Create(boxTestOptions(tel))
	if err != nil {
		t.Fatal(err)
	}
	capR := h.lay.boxArena().Capacity()
	total := int(capR) + 40
	for i := 0; i < total; i++ {
		tel.Emit(obs.EventScrubFinding, -1, fmt.Sprintf("w%d", i))
		if i%100 == 0 {
			if err := h.FlushBlackbox(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.FlushBlackbox(); err != nil {
		t.Fatal(err)
	}
	tl, err := h.BlackboxTimeline()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(tl)) != capR {
		t.Fatalf("timeline holds %d entries, want full ring of %d", len(tl), capR)
	}
	for i, e := range tl {
		if i > 0 && e.Seq != tl[i-1].Seq+1 {
			t.Fatalf("gap at %d: seq %d after %d", i, e.Seq, tl[i-1].Seq)
		}
	}
	// The newest emission survived; the oldest were overwritten.
	if want := fmt.Sprintf("w%d", total-1); tl[len(tl)-1].Detail != want {
		t.Fatalf("newest entry = %q, want %q", tl[len(tl)-1].Detail, want)
	}
}

// TestBlackboxTornTailDegrades: corrupting record slots and both header
// slots must degrade to exactly one EventBlackboxTorn journal event on the
// next load — never a quarantine — with the intact records still replayed.
func TestBlackboxTornTailDegrades(t *testing.T) {
	tel := obs.NewWithOptions(obs.Options{Shards: 1})
	h, err := Create(boxTestOptions(tel))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tel.Emit(obs.EventScrubFinding, -1, fmt.Sprintf("keep-%d", i))
	}
	if err := h.FlushBlackbox(); err != nil {
		t.Fatal(err)
	}
	// Smash the slots of records 4 and 5 plus both header slots, durably.
	arena := h.lay.boxArena()
	dev := h.Device()
	junk := make([]byte, plog.BoxRecordSize)
	for i := range junk {
		junk[i] = 0xa5
	}
	for _, off := range []uint64{arena.SlotOff(4), arena.SlotOff(5)} {
		if err := dev.Write(off, junk); err != nil {
			t.Fatal(err)
		}
		if err := dev.Flush(off, plog.BoxRecordSize); err != nil {
			t.Fatal(err)
		}
	}
	for _, off := range []uint64{arena.HeaderOff(0), arena.HeaderOff(1)} {
		if err := dev.Write(off, junk[:plog.BoxHeaderSize]); err != nil {
			t.Fatal(err)
		}
		if err := dev.Flush(off, plog.BoxHeaderSize); err != nil {
			t.Fatal(err)
		}
	}
	dev.Fence()
	if _, err := dev.Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}

	tel2 := obs.NewWithOptions(obs.Options{Shards: 1})
	h2, err := Load(dev, boxTestOptions(tel2))
	if err != nil {
		t.Fatalf("torn black box failed the load: %v", err)
	}
	report, err := h2.Check()
	if err != nil || !report.OK() || report.Quarantined != 0 {
		t.Fatalf("torn black box affected the heap: err=%v report=%+v", err, report)
	}
	torn := 0
	for _, e := range tel2.Events() {
		if e.Kind == obs.EventBlackboxTorn {
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("torn ring journalled %d EventBlackboxTorn, want exactly 1", torn)
	}
	tl, err := h2.BlackboxTimeline()
	if err != nil {
		t.Fatal(err)
	}
	if got := countBoxEvents(tl, "scrub_finding"); got != 4 {
		t.Fatalf("recovered %d intact markers, want 4 (slots 4,5 corrupted)", got)
	}
	if st := h2.Metrics().Blackbox; st == nil || st.Torn == 0 {
		t.Fatalf("blackbox stats did not count torn slots: %+v", st)
	}
}

// TestBlackboxCrashSweepEveryStore kills the black-box persist path at
// EVERY device store boundary, under all three eviction modes: after any
// crash the reload must succeed, nothing may be quarantined, and the
// timeline must replay at least every record sealed by a completed
// FlushBlackbox.
func TestBlackboxCrashSweepEveryStore(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep is slow")
	}
	storeBudget := int64(1)
	for ; ; storeBudget++ {
		if survived := runBoxScript(t, storeBudget, 1); survived {
			break
		}
		if storeBudget > 5000 {
			t.Fatal("script never completed; failpoint accounting broken?")
		}
	}
	t.Logf("script performs %d stores; sweeping every boundary", storeBudget)
	step := int64(1)
	if storeBudget > 300 {
		step = storeBudget / 300
	}
	for b := int64(1); b < storeBudget; b += step {
		runBoxScript(t, b, b*7919)
	}
}

// runBoxScript emits events in sealed batches with a failpoint after
// `budget` stores, crashes (eviction mode rotating with the budget),
// reloads and verifies the timeline. Returns whether the script completed.
func runBoxScript(t *testing.T, budget, seed int64) (survived bool) {
	t.Helper()
	tel := obs.NewWithOptions(obs.Options{Shards: 1})
	opts := boxTestOptions(tel)
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	h.Device().FailAfter(budget)
	sealed := 0
	script := func() error {
		for batch := 0; batch < 4; batch++ {
			for i := 0; i < 5; i++ {
				tel.Emit(obs.EventScrubFinding, -1, fmt.Sprintf("s%d-%d", batch, i))
			}
			if err := h.FlushBlackbox(); err != nil {
				return err
			}
			// Flush returned: this batch is sealed (flushed + fenced) and
			// must survive any crash, any eviction mode.
			sealed += 5
		}
		h.sealBlackbox() // clean-close header path is swept too
		return nil
	}
	err = script()
	h.Device().DisarmFailpoint()
	survived = err == nil
	if err != nil && !errors.Is(err, nvm.ErrDeviceFailed) {
		t.Fatalf("budget %d: unexpected script error: %v", budget, err)
	}

	policy := nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: seed}
	switch budget % 3 {
	case 1:
		policy = nvm.CrashPolicy{Mode: nvm.EvictNone}
	case 2:
		policy = nvm.CrashPolicy{Mode: nvm.EvictAll}
	}
	if _, cerr := h.Device().Crash(policy); cerr != nil {
		t.Fatal(cerr)
	}

	tel2 := obs.NewWithOptions(obs.Options{Shards: 1})
	h2, err := Load(h.Device(), boxTestOptions(tel2))
	if err != nil {
		t.Fatalf("budget %d: recovery failed: %v", budget, err)
	}
	report, err := h2.Check()
	if err != nil {
		t.Fatalf("budget %d: audit error: %v", budget, err)
	}
	if !report.OK() || report.Quarantined != 0 {
		t.Fatalf("budget %d: torn black box damaged the heap: %+v", budget, report)
	}
	tl, err := h2.BlackboxTimeline()
	if err != nil {
		t.Fatalf("budget %d: timeline failed: %v", budget, err)
	}
	if got := countBoxEvents(tl, "scrub_finding"); got < sealed {
		t.Fatalf("budget %d: timeline replays %d sealed markers, want >= %d", budget, got, sealed)
	}
	torn := 0
	for _, e := range tel2.Events() {
		if e.Kind == obs.EventBlackboxTorn {
			torn++
		}
	}
	if torn > 1 {
		t.Fatalf("budget %d: %d EventBlackboxTorn events, want at most 1", budget, torn)
	}
	return survived
}

// TestWatchdogStallDetection: an injected stall must be journalled as
// EventStall, counted into poseidon_stalls_total, and visible in the
// post-crash black-box timeline.
func TestWatchdogStallDetection(t *testing.T) {
	tel := obs.NewWithOptions(obs.Options{Shards: 1})
	opts := boxTestOptions(tel)
	opts.Watchdog = WatchdogOptions{StallThreshold: 15 * time.Millisecond, Interval: 2 * time.Millisecond}
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.InjectStall(0, 80*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	p, err := th.Alloc(128) // holds the sub-heap 0 lock through the stall
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}

	var stallEvent *obs.Event
	for _, e := range tel.Events() {
		if e.Kind == obs.EventStall {
			ev := e
			stallEvent = &ev
		}
	}
	if stallEvent == nil {
		t.Fatal("injected stall produced no EventStall in the DRAM journal")
	}
	if stallEvent.Subheap != 0 || !strings.Contains(stallEvent.Detail, "alloc") {
		t.Fatalf("stall event lacks attribution: %+v", stallEvent)
	}
	snap := h.Metrics()
	if snap.Watchdog == nil || !snap.Watchdog.Enabled || snap.Watchdog.Stalls < 1 {
		t.Fatalf("watchdog stats = %+v, want >= 1 stall", snap.Watchdog)
	}
	var prom strings.Builder
	if err := obs.WritePrometheus(&prom, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "poseidon_stalls_total 1") &&
		!strings.Contains(prom.String(), "poseidon_stalls_total") {
		t.Fatal("poseidon_stalls_total missing from exposition")
	}
	// Lock wait/hold histograms populated by the instrumented lock sites.
	if tel.Hist(obs.OpLockHold).Count == 0 {
		t.Fatal("no lock-hold observations recorded")
	}

	// The stall survives the crash into the post-mortem timeline.
	if err := h.FlushBlackbox(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictAll}); err != nil {
		t.Fatal(err)
	}
	h.Close()
	h2, err := Load(h.Device(), boxTestOptions(obs.NewWithOptions(obs.Options{Shards: 1})))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := h2.BlackboxTimeline()
	if err != nil {
		t.Fatal(err)
	}
	stalls := 0
	for _, e := range tl {
		if e.Type == "stall" {
			stalls++
			if e.Subheap != 0 {
				t.Fatalf("stall entry lost its sub-heap: %+v", e)
			}
		}
	}
	if stalls == 0 {
		t.Fatalf("post-crash timeline holds no stall entry: %+v", tl)
	}
}

// TestWatchdogRequiresTelemetry pins the option validation.
func TestWatchdogRequiresTelemetry(t *testing.T) {
	opts := boxTestOptions(nil)
	opts.Watchdog = WatchdogOptions{StallThreshold: time.Second}
	if _, err := Create(opts); err == nil {
		t.Fatal("Watchdog without Telemetry did not error")
	}
}

// TestLatencyTapOutliers: with the watchdog on, device flush/fence latency
// flows through the tap and outliers surface in the metrics snapshot.
func TestLatencyTapOutliers(t *testing.T) {
	tel := obs.NewWithOptions(obs.Options{Shards: 1})
	opts := boxTestOptions(tel)
	opts.Watchdog = WatchdogOptions{StallThreshold: 50 * time.Millisecond}
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Replace the tap with an always-outlier one (threshold 0 counts every
	// observation) so modeled nanosecond latencies register.
	h.tap = nvm.NewLatencyTap(0, nil)
	h.Device().SetLatencyTap(h.tap)
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	wd := h.Metrics().Watchdog
	if wd == nil || wd.FlushOutliers == 0 || wd.FenceOutliers == 0 {
		t.Fatalf("tap saw no device traffic: %+v", wd)
	}
}

// BenchmarkAllocFreeWatchdogOff is the disabled path: telemetry on, no
// watchdog — the lock sites pay exactly one nil check.
func BenchmarkAllocFreeWatchdogOff(b *testing.B) {
	benchAllocFree(b, boxTestOptions(obs.NewWithOptions(obs.Options{Shards: 1})))
}

// BenchmarkAllocFreeWatchdogOn adds the full contention layer: lock
// wait/hold histograms, hold-state atomics, the latency tap and the
// background scanner.
func BenchmarkAllocFreeWatchdogOn(b *testing.B) {
	opts := boxTestOptions(obs.NewWithOptions(obs.Options{Shards: 1}))
	opts.Watchdog = WatchdogOptions{StallThreshold: 50 * time.Millisecond}
	benchAllocFree(b, opts)
}
