package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"poseidon/internal/memblock"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
	"poseidon/internal/txn"
)

// Repair rebuilds the metadata of a quarantined sub-heap and returns it to
// service — the second half of degrade-don't-die. Two strategies, tried in
// order:
//
//  1. Mirror restore: if a checksummed metadata mirror (mirror.go) survives,
//     its level count and free-list anchors are written back over the
//     primary header and the result is audited. This is the cheap path for
//     corruption confined to the header page.
//  2. Rebuild by walk: every hash-table record is validated against the
//     tiling invariants; invalid records are dropped, survivors are kept,
//     and gaps left by dropped records are covered with conservatively
//     ALLOCATED blocks (never handed out — a leak, not data loss). Free
//     lists are then rebuilt from the surviving free records.
//
// Either way the repaired state must pass the fsck audit before the
// sub-heap is unquarantined; a failed repair leaves it benched with its
// original reason. Repair is crash-consistent: a persistent repair marker
// is set before the first mutation and cleared only after the rebuilt state
// is durable, so a crash mid-repair re-quarantines the sub-heap at the next
// load instead of serving half-rebuilt metadata. User data in allocated
// blocks is never touched.
func (h *Heap) Repair(subheap int) error {
	if h.isClosed() {
		return ErrClosed
	}
	if subheap < 0 || subheap >= len(h.subheaps) {
		return fmt.Errorf("%w: sub-heap %d out of range", ErrBadPointer, subheap)
	}
	s := h.subheaps[subheap]
	if !s.isQuarantined() {
		return fmt.Errorf("%w: sub-heap %d", ErrNotQuarantined, subheap)
	}
	var start time.Time
	if h.tel != nil {
		start = time.Now()
	}
	s.mu.Lock()
	h.grant(s.thread)
	s.setClass(nvm.ClassRecovery)
	// Repairs always record a span when tracing is on — they are rare and
	// their flush/fence cost is exactly what an operator wants to see.
	tdone := h.traceForced(obs.OpRepair, subheap)
	mirrored, err := s.repairLocked()
	if tdone != nil {
		tdone(err)
	}
	h.revoke(s.thread)
	s.mu.Unlock()
	if h.tel != nil {
		h.tel.RecordOn(subheap, obs.OpRepair, time.Since(start))
	}
	if err != nil {
		h.tel.Emit(obs.EventRepair, subheap, fmt.Sprintf("repair failed: %v", err))
		return fmt.Errorf("poseidon: repair sub-heap %d: %w", subheap, err)
	}
	how := "rebuilt by table walk"
	if mirrored {
		h.mirrorRestores.Add(1)
		how = "restored from mirror"
	}
	s.unquarantine()
	h.repairedSubheaps.Add(1)
	h.repairedBytes.Add(h.lay.userSize)
	h.tel.Emit(obs.EventRepair, subheap, "repaired: "+how)
	return nil
}

// RepairAll repairs every quarantined sub-heap, continuing past individual
// failures. Returns how many were returned to service and the first (by
// sub-heap index) error. Each repair is self-contained under its sub-heap's
// lock, so with Options.RecoveryParallelism > 1 the repairs run on the
// recovery worker pool — the parallel walk poseidon-fsck -repair -j uses.
func (h *Heap) RepairAll() (int, error) {
	if h.isClosed() {
		return 0, ErrClosed
	}
	var repaired atomic.Int64
	errs := make([]error, len(h.subheaps))
	_ = h.forEachRecovery(len(h.subheaps), h.recoveryParallelism(), func(_, i int) error {
		s := h.subheaps[i]
		if !s.isQuarantined() {
			return nil
		}
		if err := h.Repair(s.id); err != nil {
			errs[i] = err
			return nil
		}
		repaired.Add(1)
		return nil
	})
	var first error
	for _, err := range errs {
		if err != nil {
			first = err
			break
		}
	}
	return int(repaired.Load()), first
}

// repairLocked is the repair body; the caller holds s.mu with the metadata
// window granted. Reports whether the mirror restore succeeded (vs a full
// rebuild). On success the sub-heap's DRAM state (logs, batch, free mask,
// gauges, mirror) is fully re-seeded and its metadata has passed the audit.
func (s *subheap) repairLocked() (mirrored bool, err error) {
	init, err := s.initializedFlag()
	if err != nil {
		return false, err
	}
	if !init {
		// Never formatted (or a format crashed before its commit point):
		// there is nothing to rebuild. Clear any stale repair marker and let
		// ensureReady format lazily on first use.
		s.ready = false
		return false, s.win.PersistU64(s.base+shRepairingOff, 0)
	}

	// Persistent repair marker FIRST: from here until the final clear, a
	// crash leaves the marker set and recoverLogs re-quarantines.
	if err := s.win.PersistU64(s.base+shRepairingOff, 1); err != nil {
		return false, err
	}

	// The undo log itself may be the corrupt structure. Try a normal
	// replay; if the log is unreadable, zero the whole region — a zeroed
	// region is a valid empty log, and whatever half-committed batch it
	// held is exactly what the rebuild below reconstructs around.
	undo, uerr := plog.OpenUndoLog(s.win, s.h.lay.undoBase(s.id), s.h.lay.undoSize)
	if uerr == nil {
		uerr = undo.Replay()
	}
	if uerr != nil {
		base, size := s.h.lay.undoBase(s.id), s.h.lay.undoSize
		if err := s.win.Zero(base, size); err != nil {
			return false, err
		}
		if err := s.win.Flush(base, size); err != nil {
			return false, err
		}
		s.win.Fence()
		if undo, err = plog.OpenUndoLog(s.win, base, size); err != nil {
			return false, err
		}
	}
	s.undo = undo
	s.batch = txn.NewBatch(s.win, undo)
	s.ready = true

	// Strategy 1: mirror restore, audited before it counts.
	if img, merr := s.loadMirrorLocked(); merr != nil {
		return false, merr
	} else if img != nil {
		if rerr := s.restoreMirrorLocked(img); rerr == nil {
			if rep, cerr := s.checkLocked(false); cerr == nil && len(rep.Problems) == 0 {
				mirrored = true
			}
		}
	}

	// Strategy 2: full rebuild by walking the hash table.
	if !mirrored {
		if err := s.rebuildLocked(); err != nil {
			return false, err
		}
		rep, cerr := s.checkLocked(false)
		if cerr != nil {
			return false, cerr
		}
		if len(rep.Problems) > 0 {
			return false, fmt.Errorf("%w: rebuild left %d problems, first: %s",
				ErrCorruptHeap, len(rep.Problems), rep.Problems[0])
		}
	}

	if err := s.repairRingLocked(); err != nil {
		return mirrored, err
	}
	if err := s.reseedFreeMask(); err != nil {
		return mirrored, err
	}
	s.seedGauges()
	s.seedMirrorSeq()
	_ = s.updateMirrorLocked()

	// Everything above is durable (batch commits flush+fence); only now may
	// the marker clear — the repair's commit point.
	return mirrored, s.win.PersistU64(s.base+shRepairingOff, 0)
}

// repairCand is one surviving hash-table record during a rebuild.
type repairCand struct {
	slot, off, size, status uint64
}

// repairChunkWords bounds how many staged words a rebuild accumulates
// before committing — the undo log is finite, and chunked commits also
// bound how much work a crash mid-repair throws away.
const repairChunkWords = 256

// rebuildLocked reconstructs the hash table and free lists from the
// surviving records. Idempotent and convergent: every pass stages bounded
// chunks through the undo log, so a crash at any point either replays the
// last chunk back or leaves a prefix of valid work that the re-run (after
// re-quarantine) redoes harmlessly.
func (s *subheap) rebuildLocked() error {
	g := s.mgr.Geometry()
	b := s.batch
	b.Abort() // start from a clean batch whatever state repair found

	commitChunk := func() error {
		if b.Len() == 0 {
			return nil
		}
		if err := b.Commit(); err != nil {
			b.Abort()
			if rerr := s.undo.Replay(); rerr != nil {
				return fmt.Errorf("%w (rollback also failed: %v)", err, rerr)
			}
			return err
		}
		return nil
	}
	maybeCommit := func() error {
		if b.Len() >= repairChunkWords {
			return commitChunk()
		}
		return nil
	}

	// Pass 1: validate every record; drop the invalid, keep the plausible.
	end := g.UserBase + g.UserSize
	var cands []repairCand
	maxLevel := 1
	err := s.mgr.ForEachSlot(s.win, func(level int, slot, key uint64) error {
		if memblock.IsTombstone(key) {
			return nil
		}
		rec, err := s.mgr.ReadRecord(s.win, slot)
		if err != nil {
			return err
		}
		valid := rec.BlockOff >= g.UserBase &&
			rec.Size >= g.ClassSize(0) && rec.Size <= g.UserSize &&
			rec.Size&(rec.Size-1) == 0 &&
			rec.BlockOff+rec.Size <= end &&
			(rec.BlockOff-g.UserBase)%rec.Size == 0 &&
			(rec.Status == memblock.StatusFree || rec.Status == memblock.StatusAllocated)
		if !valid {
			if err := s.mgr.Delete(b, slot); err != nil {
				return err
			}
			return maybeCommit()
		}
		if level+1 > maxLevel {
			maxLevel = level + 1
		}
		cands = append(cands, repairCand{slot: slot, off: rec.BlockOff,
			size: rec.Size, status: rec.Status})
		return nil
	})
	if err != nil {
		return err
	}

	// Pass 2: resolve overlaps by offset order. Allocated records win ties
	// (they may hold live user data); losers are dropped.
	sort.Slice(cands, func(i, j int) bool {
		a, c := cands[i], cands[j]
		if a.off != c.off {
			return a.off < c.off
		}
		if a.status != c.status {
			return a.status == memblock.StatusAllocated
		}
		return a.slot < c.slot
	})
	kept := cands[:0]
	at := g.UserBase
	for _, c := range cands {
		if c.off < at {
			if err := s.mgr.Delete(b, c.slot); err != nil {
				return err
			}
			if err := maybeCommit(); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, c)
		at = c.off + c.size
	}

	// Pass 3: the active level count must cover every surviving slot; keep
	// a larger (valid) count if the header already has one.
	if cur, lerr := s.mgr.ActiveLevels(s.win); lerr != nil || cur < maxLevel {
		if err := s.mgr.SetActiveLevels(b, maxLevel); err != nil {
			return err
		}
	}

	// Pass 4: cover the gaps left by dropped records with buddy-aligned
	// blocks, inserted ALLOCATED — a dropped record may have described live
	// user data, and handing that space out again would be data loss. The
	// cost is a leak the size of the corruption, reported by occupancy
	// gauges and reclaimable by a future explicit Free.
	insertBlock := func(off, size uint64) error {
		for {
			_, ierr := s.mgr.Insert(b, off, size, memblock.StatusAllocated)
			if errors.Is(ierr, memblock.ErrNoSlot) {
				if xerr := s.mgr.ExtendLevel(b); xerr != nil {
					return fmt.Errorf("%w: repair cannot place block [%#x,%#x): %v",
						ErrCorruptHeap, off, off+size, xerr)
				}
				continue
			}
			if ierr != nil {
				return ierr
			}
			return maybeCommit()
		}
	}
	coverGap := func(at, gapEnd uint64) error {
		for at < gapEnd {
			// Largest power of two that fits the remaining gap...
			size := uint64(1) << (bits.Len64(gapEnd-at) - 1)
			// ...clamped to the buddy alignment of the current offset...
			if rel := at - g.UserBase; rel != 0 {
				if align := rel & (-rel); align < size {
					size = align
				}
			} else if size > g.UserSize {
				size = g.UserSize
			}
			if err := insertBlock(at, size); err != nil {
				return err
			}
			at += size
		}
		return nil
	}
	at = g.UserBase
	for _, c := range kept {
		if c.off > at {
			if err := coverGap(at, c.off); err != nil {
				return err
			}
		}
		at = c.off + c.size
	}
	if at < end {
		if err := coverGap(at, end); err != nil {
			return err
		}
	}

	// Pass 5: rebuild the free lists from scratch out of the surviving free
	// records, in offset order (deterministic, and tail-pushes keep the
	// delayed-reuse property for what it's worth post-repair).
	if err := s.mgr.ResetFreeLists(b); err != nil {
		return err
	}
	for _, c := range kept {
		if c.status != memblock.StatusFree {
			continue
		}
		class, cerr := g.ClassOf(c.size)
		if cerr != nil {
			return fmt.Errorf("%w: free record size %d", ErrCorruptHeap, c.size)
		}
		if err := s.mgr.PushFreeTail(b, class, c.slot); err != nil {
			return err
		}
		if err := maybeCommit(); err != nil {
			return err
		}
	}
	return commitChunk()
}

// repairRingLocked drains whatever the remote-free ring still holds after a
// rebuild. Unlike replayRingLocked it CLEARS corrupt entries instead of
// preserving them as evidence: the table they accused has just been rebuilt,
// and a lost free is a capacity leak, not data loss. Valid entries replay
// idempotently through freeLocked.
func (s *subheap) repairRingLocked() error {
	g := s.mgr.Geometry()
	base := s.ring.Base()
	cleared := 0
	for i := uint64(0); i < memblock.RingSlots; i++ {
		off := base + i*memblock.RingSlotBytes
		word, err := s.readRetry(off)
		if err != nil {
			return err
		}
		if word == 0 {
			continue
		}
		if rel, _, ok := memblock.DecodeRingEntry(word); ok && rel < g.UserSize {
			switch ferr := s.freeLocked(g.UserBase + rel); {
			case ferr == nil:
				s.stats.remoteDrains.Add(1)
			case errors.Is(ferr, ErrInvalidFree) || errors.Is(ferr, ErrDoubleFree):
				s.stats.recoveredNoops.Add(1)
			default:
				return ferr
			}
		}
		if err := s.win.WriteU64(off, 0); err != nil {
			return err
		}
		if err := s.win.Flush(off, 8); err != nil {
			return err
		}
		cleared++
	}
	if cleared > 0 {
		s.win.Fence()
	}
	s.ring.Reset()
	if s.h.opts.RemoteFreeRings {
		s.ring.Arm()
	}
	return nil
}
