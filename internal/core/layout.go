package core

import (
	"fmt"

	"poseidon/internal/memblock"
	"poseidon/internal/nvm"
	"poseidon/internal/plog"
)

// Persistent heap layout (paper Figure 4):
//
//	superblock region (MPK-protected)
//	  +0        superblock header (one page)
//	  +4 KiB    superblock undo log (root-pointer updates)
//	  +64 KiB   micro-log lane arena: MaxThreads lanes, one per Thread
//	  (page-aligned) cache-manifest arena: magSlots words per lane,
//	             the persistent shadow of per-thread block magazines
//	sub-heap 0
//	  +0        sub-heap header (one page)
//	  +4 KiB    undo log
//	  +4K+undo  memory-block metadata (free lists + multi-level hash table)
//	  +metaSize user-data region (MPK key 0, freely writable)
//	sub-heap 1 …
//
// Everything before each sub-heap's user region carries the metadata
// protection key; user regions carry key 0.

// Superblock header field offsets.
const (
	sbMagicOff       = 0
	sbVersionOff     = 8
	sbHeapIDOff      = 16
	sbSubheapsOff    = 24
	sbUserSizeOff    = 32
	sbMetaSizeOff    = 40
	sbRootLocOff     = 48
	sbLaneCountOff   = 56
	sbLaneSizeOff    = 64
	sbUndoSizeOff    = 72
	sbInitializedOff = 80
	sbRootSetOff     = 88
	// sbMagSlotsOff records the per-lane cache-manifest capacity in 8-byte
	// words. Images written before magazines existed never stored the
	// field, so they read zero — no manifest arena, magazines disabled —
	// and the rest of the layout is byte-identical, so heapVersion stays 1.
	sbMagSlotsOff = 96
	// sbProfSizeOff records the byte size of the profile side-table arena
	// (the persistent allocation-site table; see internal/plog/sites.go).
	// The same backward-compat contract as sbMagSlotsOff: images written
	// before the profiler existed read zero — no arena, profiles run
	// DRAM-only — and the layout is otherwise byte-identical, so
	// heapVersion stays 1.
	sbProfSizeOff = 104
	// sbBoxSizeOff records the byte size of the black-box flight-recorder
	// arena (the crash-surviving event/span ring; see
	// internal/plog/blackbox.go). Same backward-compat contract again:
	// images written before the recorder existed read zero — no arena, the
	// journal stays DRAM-only — and the layout is otherwise byte-identical,
	// so heapVersion stays 1.
	sbBoxSizeOff = 112

	sbHeaderPages = 1
	sbUndoOff     = sbHeaderPages * nvm.PageSize
	sbUndoSize    = 60 << 10
	sbLaneArena   = 64 << 10

	heapMagic   uint64 = 0x4e4f444945534f50 // "POSEIDON" little endian
	heapVersion uint64 = 1

	// Sub-heap header field offsets (relative to the sub-heap base).
	shInitializedOff = 0
	shHeaderSize     = nvm.PageSize

	// shRepairingOff is the persistent repair-in-progress flag, on its own
	// cacheline between the initialized word and the ring. It is set
	// (fenced) before repair mutates any metadata and cleared only after
	// the repaired metadata is durable, so a crash mid-repair is detected
	// at the next load and the sub-heap re-quarantined instead of serving
	// half-rebuilt structures. format() zeroes the header page, so old
	// images read "no repair in progress".
	shRepairingOff = 64

	// shRingOff places the remote-free ring in the spare space of the
	// sub-heap header page, one cacheline past the initialized word so
	// the two never share a dirty line. format() zeroes the whole header
	// page, so images written before rings existed read as an empty ring.
	shRingOff = 128

	// The metadata mirror lives in the header page after the ring: two
	// alternating checksummed slots holding the sub-heap's critical
	// metadata summary (level count + free-list anchors), so a corrupt
	// primary header can be restored instead of benched. format() zeroes
	// the page, so old images read "no valid mirror" and fall back to
	// rebuild-by-walk.
	shMirrorOff      = shRingOff + memblock.RingBytes
	shMirrorSlots    = 2
	shMirrorSlotSize = 832 // 13 cachelines; fits summaries up to 49 size classes
)

// The ring and the mirror slots must fit the header page (compile-time
// bounds).
const _ = uint64(shHeaderSize - shRingOff - memblock.RingBytes)
const _ = uint64(shHeaderSize - shMirrorOff - shMirrorSlots*shMirrorSlotSize)

// metadataKey is the MPK protection key guarding all heap metadata.
const metadataKey = 1

// layout holds the computed device geometry.
type layout struct {
	subheaps    int
	userSize    uint64
	metaSize    uint64
	undoSize    uint64
	laneCount   int
	laneSize    uint64
	magSlots    uint64 // cache-manifest words per lane (0: no manifest arena)
	profSize    uint64 // profile side-table arena bytes (0: no arena)
	boxSize     uint64 // black-box flight-recorder arena bytes (0: no arena)
	manifestOff uint64 // device offset of lane 0's cache manifest
	profOff     uint64 // device offset of the profile side-table arena
	boxOff      uint64 // device offset of the black-box arena
	subheapOff  uint64 // device offset of sub-heap 0
	stride      uint64 // metaSize + userSize
	capacity    uint64
}

func computeLayout(subheaps int, userSize, metaSize, undoSize uint64, laneCount int, laneSize, magSlots, profSize, boxSize uint64) (layout, error) {
	arena := uint64(laneCount) * laneSize
	manOff := (sbLaneArena + arena + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	profOff := (manOff + uint64(laneCount)*magSlots*8 + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	// profSize == 0 (pre-profiler image) leaves boxOff == profOff, and
	// boxSize == 0 (pre-recorder image) leaves subOff == boxOff: each
	// zero-sized arena keeps the layout byte-identical to one computed
	// before that arena existed.
	boxOff := (profOff + profSize + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	subOff := (boxOff + boxSize + nvm.PageSize - 1) &^ (nvm.PageSize - 1)
	l := layout{
		subheaps:    subheaps,
		userSize:    userSize,
		metaSize:    metaSize,
		undoSize:    undoSize,
		laneCount:   laneCount,
		laneSize:    laneSize,
		magSlots:    magSlots,
		profSize:    profSize,
		boxSize:     boxSize,
		manifestOff: manOff,
		profOff:     profOff,
		boxOff:      boxOff,
		subheapOff:  subOff,
		stride:      metaSize + userSize,
	}
	l.capacity = l.subheapOff + uint64(subheaps)*l.stride
	// Validate that the memblock geometry fits the metadata region.
	if _, err := l.memblockGeometry(0); err != nil {
		return layout{}, err
	}
	return l, nil
}

// subheapBase returns the device offset of sub-heap i.
func (l layout) subheapBase(i int) uint64 {
	return l.subheapOff + uint64(i)*l.stride
}

// userBase returns the device offset of sub-heap i's user region.
func (l layout) userBase(i int) uint64 {
	return l.subheapBase(i) + l.metaSize
}

// ringBase returns the device offset of sub-heap i's remote-free ring.
func (l layout) ringBase(i int) uint64 {
	return l.subheapBase(i) + shRingOff
}

// undoBase returns the device offset of sub-heap i's undo log.
func (l layout) undoBase(i int) uint64 {
	return l.subheapBase(i) + shHeaderSize
}

// laneBase returns the device offset of micro-log lane i.
func (l layout) laneBase(i int) uint64 {
	return sbLaneArena + uint64(i)*l.laneSize
}

// laneManifestBase returns the device offset of lane i's cache manifest.
// Only meaningful when magSlots > 0.
func (l layout) laneManifestBase(i int) uint64 {
	return l.manifestOff + uint64(i)*l.magSlots*8
}

// profArena returns the profile side-table arena geometry. Zero-capacity
// (Valid() false) on images provisioned before the profiler existed.
func (l layout) profArena() plog.SiteArena {
	return plog.NewSiteArena(l.profOff, l.profSize)
}

// boxArena returns the black-box flight-recorder arena geometry.
// Zero-capacity (Valid() false) on images provisioned before the recorder
// existed.
func (l layout) boxArena() plog.BoxArena {
	return plog.NewBoxArena(l.boxOff, l.boxSize)
}

// memblockGeometry computes sub-heap i's metadata layout.
func (l layout) memblockGeometry(i int) (memblock.Geometry, error) {
	base := l.subheapBase(i)
	metaBase := base + shHeaderSize + l.undoSize
	metaAvail := l.metaSize - shHeaderSize - l.undoSize
	g, err := memblock.ComputeGeometry(metaBase, metaAvail, l.userBase(i), l.userSize)
	if err != nil {
		return g, fmt.Errorf("sub-heap metadata region: %w", err)
	}
	return g, nil
}

// locToDevice translates a persistent-pointer location to a device offset.
func (l layout) locToDevice(sub uint16, off uint64) (uint64, error) {
	if int(sub) >= l.subheaps || off >= l.userSize {
		return 0, fmt.Errorf("%w: sub=%d off=%#x", ErrBadPointer, sub, off)
	}
	return l.userBase(int(sub)) + off, nil
}

// deviceToLoc translates a device offset in a user region back to pointer
// parts.
func (l layout) deviceToLoc(dev uint64) (uint16, uint64, error) {
	if dev < l.subheapOff {
		return 0, 0, fmt.Errorf("%w: device offset %#x before sub-heaps", ErrBadPointer, dev)
	}
	i := (dev - l.subheapOff) / l.stride
	if i >= uint64(l.subheaps) {
		return 0, 0, fmt.Errorf("%w: device offset %#x past last sub-heap", ErrBadPointer, dev)
	}
	in := dev - l.subheapBase(int(i))
	if in < l.metaSize {
		return 0, 0, fmt.Errorf("%w: device offset %#x inside metadata", ErrBadPointer, dev)
	}
	return uint16(i), in - l.metaSize, nil
}
