// Package core_test holds the end-to-end leak-attribution acceptance test.
// It lives in the external test package deliberately: the profiler trims
// poseidon-internal frames from symbolized stacks, so allocation sites must
// sit outside package core for their frames to appear in profiles — the
// same view a real application gets.
package core_test

import (
	"strings"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

func acceptOptions() core.Options {
	return core.Options{
		Subheaps:        2,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0xACC,
		CrashTracking:   true,
		Telemetry:       obs.New(),
		Profile:         core.ProfileOptions{Rate: 1}, // sample everything
	}
}

// leakSiteA and leakSiteB are the two distinct allocation sites under test.
// noinline keeps each an honest stack frame.
//
//go:noinline
func leakSiteA(t *testing.T, th *core.Thread, n int) []core.NVMPtr {
	t.Helper()
	var out []core.NVMPtr
	for i := 0; i < n; i++ {
		p, err := th.Alloc(100) // charged at the 128 B class
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

//go:noinline
func leakSiteB(t *testing.T, th *core.Thread, n int) []core.NVMPtr {
	t.Helper()
	var out []core.NVMPtr
	for i := 0; i < n; i++ {
		p, err := th.Alloc(2000) // charged at the 2048 B class
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func siteNamed(t *testing.T, sites []obs.SiteStat, fn string) obs.SiteStat {
	t.Helper()
	for _, s := range sites {
		for _, f := range s.Frames {
			if strings.Contains(f.Func, fn) {
				return s
			}
		}
	}
	t.Fatalf("no site with frame %q among %d sites", fn, len(sites))
	return obs.SiteStat{}
}

// TestLeakAttributionSurvivesCrash is the issue's acceptance test: leak from
// two distinct sites, crash, reload, and assert both sites come back with
// correct byte counts and show up in the pre-epoch leak report.
func TestLeakAttributionSurvivesCrash(t *testing.T) {
	h, err := core.Create(acceptOptions())
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	aPtrs := leakSiteA(t, th, 5) // 5 × 128 B
	bPtrs := leakSiteB(t, th, 4) // 4 × 2048 B
	for _, p := range aPtrs[:2] { // site A leaks only 3
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	th.Close()
	if err := h.PersistProfile(); err != nil {
		t.Fatalf("PersistProfile: %v", err)
	}
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}

	h2, err := core.Load(h.Device(), acceptOptions())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if h2.ProfileEpoch() != 2 {
		t.Fatalf("epoch after restart = %d, want 2", h2.ProfileEpoch())
	}
	prof := h2.Telemetry().Profiler()
	sites := prof.Sites()

	a := siteNamed(t, sites, "leakSiteA")
	if a.LiveObjects != 3 || a.LiveBytes != 3*128 {
		t.Fatalf("site A live = %d objects / %d bytes, want 3 / %d", a.LiveObjects, a.LiveBytes, 3*128)
	}
	if a.AllocObjects != 5 || a.AllocBytes != 5*128 || a.FreeObjects != 2 {
		t.Fatalf("site A cumulative = %+v", a)
	}
	if !a.Recovered || a.FirstEpoch != 1 {
		t.Fatalf("site A recovered=%v firstEpoch=%d, want true/1", a.Recovered, a.FirstEpoch)
	}
	b := siteNamed(t, sites, "leakSiteB")
	if b.LiveObjects != 4 || b.LiveBytes != 4*2048 {
		t.Fatalf("site B live = %d objects / %d bytes, want 4 / %d", b.LiveObjects, b.LiveBytes, 4*2048)
	}

	// The leak report: blocks live since before the current epoch, by site.
	leaks := prof.LeakSites(h2.ProfileEpoch())
	if len(leaks) != 2 {
		t.Fatalf("leak report names %d sites, want 2", len(leaks))
	}
	siteNamed(t, leaks, "leakSiteA")
	siteNamed(t, leaks, "leakSiteB")

	// The recovered profile renders as valid pprof with correct values.
	gz, err := h2.ProfilePprof()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := obs.ParsePprof(gz)
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	var aSample *obs.PprofSample
	for i, s := range pp.Samples {
		for _, f := range s.Frames {
			if strings.Contains(f.Func, "leakSiteA") {
				aSample = &pp.Samples[i]
			}
		}
	}
	if aSample == nil {
		t.Fatal("pprof profile lost site A")
	}
	// Rate 1: values unscaled. inuse_objects, inuse_space, alloc_objects,
	// alloc_space.
	if aSample.Values[0] != 3 || aSample.Values[1] != 3*128 ||
		aSample.Values[2] != 5 || aSample.Values[3] != 5*128 {
		t.Fatalf("site A pprof values = %v", aSample.Values)
	}
	if aSample.Labels["recovered"] != "true" || aSample.NumLabels["first_epoch"] != 1 {
		t.Fatalf("site A pprof labels = %v / %v", aSample.Labels, aSample.NumLabels)
	}

	// The blocks themselves survived too — freeing the leaked pointers
	// works, proving profile attribution matched real heap state.
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	for _, p := range append(aPtrs[2:], bPtrs...) {
		if err := th2.Free(p); err != nil {
			t.Fatalf("leaked block unfreeable after restart: %v", err)
		}
	}
}
