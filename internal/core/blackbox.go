package core

// Heap-side glue for the black-box flight recorder: a crash-surviving,
// checksummed ring in the heap image (internal/plog/blackbox.go) into which
// the DRAM event journal and a sampled stream of op spans are mirrored.
//
// Hot-path discipline: MirrorEvent only stages the record in DRAM under
// bbMu — no device I/O, no re-entrant Emit — and device publishes happen at
// commit points (a staged batch reaching bbBatch, a watchdog tick, Close,
// an explicit FlushBlackbox). A publish assigns each staged record its ring
// sequence, writes the sequence-congruent slots, then seals the whole batch
// with one flush pass over the written range (at most two contiguous spans
// when the batch wraps) and a single fence. No header write per publish:
// every record is individually self-checksummed, so replay validates slots
// independently and a crash mid-batch loses only the unsealed tail.
//
// Publish paths deliberately avoid Heap.retry: its success path emits
// EventTransientRetry, which would re-enter MirrorEvent under bbMu. A failed
// publish simply leaves the records staged for the next commit point.

import (
	"encoding/json"
	"fmt"
	"time"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

const (
	// bbStageCap bounds the DRAM staging buffer; when full the oldest
	// staged record is dropped (and counted) rather than blocking an
	// emitter.
	bbStageCap = 512
	// bbBatch is the staged-record count that triggers an inline publish
	// from MirrorEvent; smaller batches wait for the next watchdog tick or
	// explicit flush.
	bbBatch = 8
	// bbSpanBatch caps the sampled spans folded into one publish, so a hot
	// tracer cannot crowd events out of the ring.
	bbSpanBatch = 32
)

// BlackboxEntry is one reconstructed timeline entry — the human/JSON view
// of a plog.BoxRecord.
type BlackboxEntry struct {
	Seq     uint64
	Time    time.Time
	Type    string // "event", "span" or "stall"
	Kind    string // event kind or op name
	Subheap int    // -1 when not sub-heap scoped
	Lane    int    // span lane, -1 otherwise
	DurNS   int64  `json:",omitempty"` // span duration
	Flushes uint64 `json:",omitempty"` // cachelines flushed inside the span
	Fences  uint64 `json:",omitempty"`
	Detail  string `json:",omitempty"`
}

// MirrorEvent implements obs.EventMirror: every journal event is staged for
// the persistent ring. DRAM-only; see the package comment for the publish
// discipline.
func (h *Heap) MirrorEvent(e obs.Event) {
	if !h.lay.boxArena().Valid() {
		return
	}
	rec := plog.BoxRecord{
		Type:    plog.BoxEvent,
		Kind:    uint8(e.Kind),
		Subheap: int32(e.Subheap),
		Lane:    -1,
		WallNS:  e.At.UnixNano(),
		Detail:  e.Detail,
	}
	h.bbMu.Lock()
	h.stageLocked(rec)
	if h.bbOn && len(h.bbStaged) >= bbBatch {
		_ = h.publishLocked()
	}
	h.bbMu.Unlock()
}

// stageLocked appends one record to the staging buffer, dropping (and
// counting) the oldest when full. Caller holds bbMu.
func (h *Heap) stageLocked(rec plog.BoxRecord) {
	if len(h.bbStaged) >= bbStageCap {
		copy(h.bbStaged, h.bbStaged[1:])
		h.bbStaged = h.bbStaged[:bbStageCap-1]
		h.bbDropped.Add(1)
	}
	h.bbStaged = append(h.bbStaged, rec)
}

// stageSpansLocked pulls the tracer spans recorded since the last publish
// into the staging buffer (newest bbSpanBatch of them). Caller holds bbMu.
func (h *Heap) stageSpansLocked() {
	spans := h.tel.Tracer().SpansSince(h.bbSpanSeq)
	if len(spans) == 0 {
		return
	}
	h.bbSpanSeq = spans[len(spans)-1].Seq + 1
	if drop := len(spans) - bbSpanBatch; drop > 0 {
		h.bbDropped.Add(uint64(drop))
		spans = spans[drop:]
	}
	for _, sp := range spans {
		h.stageLocked(plog.BoxRecord{
			Type:    plog.BoxSpan,
			Kind:    uint8(sp.Op),
			Subheap: int32(sp.Subheap),
			Lane:    int32(sp.Lane),
			WallNS:  sp.StartNS,
			DurNS:   sp.DurNS,
			Aux0:    sp.Flushes,
			Aux1:    sp.Fences,
			Detail:  sp.Err,
		})
	}
}

// publishLocked writes every staged record into the ring and seals the
// batch with one flush pass and a single fence. On error the records stay
// staged (a retry re-assigns the same sequences, so partially-written slots
// are simply overwritten). Caller holds bbMu with bbOn set.
func (h *Heap) publishLocked() error {
	h.stageSpansLocked()
	if len(h.bbStaged) == 0 {
		return nil
	}
	arena := h.lay.boxArena()
	capR := arena.Capacity()
	batch := h.bbStaged
	if uint64(len(batch)) > capR {
		// More staged than the whole ring holds: publishing the oldest
		// would be immediately overwritten by the newest in this same
		// batch. Keep the newest ringful.
		drop := uint64(len(batch)) - capR
		h.bbDropped.Add(drop)
		batch = batch[drop:]
	}
	h.grant(h.bbThread)
	defer h.revoke(h.bbThread)
	w := h.bbWin
	for i := range batch {
		batch[i].Seq = h.bbSeq + uint64(i)
		buf := plog.EncodeBoxRecord(batch[i])
		if err := w.Write(arena.SlotOff(batch[i].Seq), buf[:]); err != nil {
			return err
		}
	}
	// The written slots form at most two contiguous spans (one wrap).
	n := uint64(len(batch))
	first := n
	if start := h.bbSeq % capR; start+n > capR {
		first = capR - start
	}
	if err := w.Flush(arena.SlotOff(h.bbSeq), first*plog.BoxRecordSize); err != nil {
		return err
	}
	if first < n {
		if err := w.Flush(arena.RecordsOff(), (n-first)*plog.BoxRecordSize); err != nil {
			return err
		}
	}
	w.Fence()
	h.bbSeq += n
	h.bbPublished.Add(n)
	h.bbStaged = h.bbStaged[:0]
	return nil
}

// writeBoxHeaderLocked writes the next header generation into the current
// A/B slot (best-effort — a failed write leaves the previous generation
// valid) and flips the slot. Caller holds bbMu.
func (h *Heap) writeBoxHeaderLocked() {
	arena := h.lay.boxArena()
	buf := plog.EncodeBoxHeader(plog.BoxHeader{
		Gen:     h.bbHdrGen,
		Epoch:   h.bbEpoch,
		NextSeq: h.bbSeq,
	})
	h.grant(h.bbThread)
	defer h.revoke(h.bbThread)
	w := h.bbWin
	if w.Write(arena.HeaderOff(h.bbSlot), buf[:]) != nil {
		return
	}
	if w.Flush(arena.HeaderOff(h.bbSlot), plog.BoxHeaderSize) != nil {
		return
	}
	w.Fence()
	h.bbHdrGen++
	h.bbSlot = 1 - h.bbSlot
}

// initBlackboxFresh arms the recorder on a just-formatted image: boot epoch
// 1, generation-1 header into slot A. Called single-threaded from Create.
func (h *Heap) initBlackboxFresh() {
	if !h.lay.boxArena().Valid() {
		return
	}
	h.bbMu.Lock()
	defer h.bbMu.Unlock()
	h.bbEpoch = 1
	h.bbHdrGen = 1
	h.bbSlot = 0
	h.bbOn = true
	h.writeBoxHeaderLocked()
}

// loadBlackbox replays the persistent ring after recovery: the newest valid
// header slot is adopted (bumping the boot epoch past it), every record slot
// is validated independently, and the recorder resumes past the highest
// surviving sequence. Never fails the load and never quarantines anything —
// a torn header or ring degrades to exactly one EventBlackboxTorn journal
// event.
func (h *Heap) loadBlackbox() {
	if !h.lay.boxArena().Valid() {
		return
	}
	msg := h.loadBlackboxLocked()
	if msg != "" {
		// Outside bbMu: Emit re-enters MirrorEvent.
		h.tel.Emit(obs.EventBlackboxTorn, -1, msg)
	}
}

// loadBlackboxLocked is the bbMu-holding body of loadBlackbox; it returns
// the torn-state description to journal (empty when the image was clean).
func (h *Heap) loadBlackboxLocked() string {
	h.bbMu.Lock()
	defer h.bbMu.Unlock()
	arena := h.lay.boxArena()

	var hdrs [plog.BoxSlots][]byte
	for i := range hdrs {
		buf := make([]byte, plog.BoxHeaderSize)
		if h.bbRead(arena.HeaderOff(i), buf) == nil {
			hdrs[i] = buf
		}
	}
	hdr, slot, hdrTorn := plog.AdoptBoxHeader(hdrs[0], hdrs[1])

	region := make([]byte, arena.Capacity()*plog.BoxRecordSize)
	if err := h.bbRead(arena.RecordsOff(), region); err != nil {
		// Unreadable ring: run DRAM-only this boot rather than risk
		// publishing over bytes we could not inspect.
		return fmt.Sprintf("black-box ring unreadable: %v; recorder disabled this boot", err)
	}
	recs, torn := plog.ReplayBox(region, arena.Capacity())
	h.bbRecovered = recs
	h.bbTorn.Add(uint64(torn))

	h.bbSeq = 0
	if len(recs) > 0 {
		h.bbSeq = recs[len(recs)-1].Seq + 1
	}
	if slot >= 0 {
		h.bbEpoch = hdr.Epoch + 1
		h.bbHdrGen = hdr.Gen + 1
		h.bbSlot = 1 - slot
		if hdr.NextSeq > h.bbSeq {
			h.bbSeq = hdr.NextSeq
		}
	} else {
		// No valid header (fresh pre-recorder arena, or both slots torn):
		// restart the generations but keep writing after the surviving
		// records.
		h.bbEpoch = 1
		h.bbHdrGen = 1
		h.bbSlot = 0
	}
	h.bbOn = true
	h.writeBoxHeaderLocked()

	switch {
	case hdrTorn && torn > 0:
		return fmt.Sprintf("black-box torn: no valid header slot, %d torn record slots; %d records survive", torn, len(recs))
	case hdrTorn:
		return fmt.Sprintf("black-box header torn: no valid slot; %d records survive", len(recs))
	case torn > 0:
		return fmt.Sprintf("black-box tail torn: %d record slots failed validation; %d records survive", torn, len(recs))
	}
	return ""
}

// bbRead reads a device range with bounded transient-fault retries that —
// unlike Heap.retry — never emit a journal event (loadBlackbox and timeline
// reads run under bbMu).
func (h *Heap) bbRead(off uint64, buf []byte) error {
	_, err := nvm.Retry(func() error { return h.bbWin.Read(off, buf) })
	return err
}

// FlushBlackbox publishes every staged record to the persistent ring — the
// commit point tools call before saving an image, and the watchdog's
// background pace. No-op (nil) on heaps without an arena.
func (h *Heap) FlushBlackbox() error {
	h.bbMu.Lock()
	defer h.bbMu.Unlock()
	if !h.bbOn {
		return nil
	}
	return h.publishLocked()
}

// sealBlackbox writes a clean-close header generation (best-effort).
func (h *Heap) sealBlackbox() {
	h.bbMu.Lock()
	defer h.bbMu.Unlock()
	if !h.bbOn {
		return
	}
	h.writeBoxHeaderLocked()
}

// BlackboxTimeline reconstructs the merged timeline (events + spans +
// stalls, ascending sequence order) from the persistent ring. On a live
// heap staged records are published first (best-effort); on an Attach-mode
// heap (poseidon-fsck, poseidon-inspect) the crashed image is replayed
// read-only. Returns nil on images without an arena.
func (h *Heap) BlackboxTimeline() ([]BlackboxEntry, error) {
	arena := h.lay.boxArena()
	if !arena.Valid() {
		return nil, nil
	}
	h.bbMu.Lock()
	if h.bbOn {
		_ = h.publishLocked()
	}
	region := make([]byte, arena.Capacity()*plog.BoxRecordSize)
	err := h.bbRead(arena.RecordsOff(), region)
	h.bbMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("poseidon: black-box ring read: %w", err)
	}
	recs, _ := plog.ReplayBox(region, arena.Capacity())
	out := make([]BlackboxEntry, 0, len(recs))
	for _, r := range recs {
		out = append(out, boxEntry(r))
	}
	return out, nil
}

// BlackboxJSON renders the timeline as JSON — the /debug/blackbox payload.
func (h *Heap) BlackboxJSON() ([]byte, error) {
	tl, err := h.BlackboxTimeline()
	if err != nil {
		return nil, err
	}
	epoch, _, _ := h.bbState()
	return json.MarshalIndent(struct {
		HeapID   uint64
		Epoch    uint64
		Entries  int
		Timeline []BlackboxEntry
	}{h.heapID, epoch, len(tl), tl}, "", "  ")
}

// bbState reads the recorder's boot epoch, next sequence and armed flag
// under bbMu.
func (h *Heap) bbState() (epoch, nextSeq uint64, on bool) {
	h.bbMu.Lock()
	defer h.bbMu.Unlock()
	return h.bbEpoch, h.bbSeq, h.bbOn
}

// boxEntry converts one decoded record to its timeline view. Stall events
// get their own entry type so a post-mortem reader can grep for them.
func boxEntry(r plog.BoxRecord) BlackboxEntry {
	e := BlackboxEntry{
		Seq:     r.Seq,
		Time:    time.Unix(0, r.WallNS),
		Subheap: int(r.Subheap),
		Lane:    int(r.Lane),
		DurNS:   r.DurNS,
		Flushes: r.Aux0,
		Fences:  r.Aux1,
		Detail:  r.Detail,
	}
	switch r.Type {
	case plog.BoxSpan:
		e.Type = "span"
		e.Kind = obs.Op(r.Kind).String()
	default:
		e.Type = "event"
		if obs.EventKind(r.Kind) == obs.EventStall {
			e.Type = "stall"
		}
		e.Kind = obs.EventKind(r.Kind).String()
	}
	return e
}
