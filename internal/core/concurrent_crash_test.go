package core

import (
	"errors"
	"sync"
	"testing"

	"poseidon/internal/nvm"
)

// TestConcurrentCrash kills the device while several threads are
// mid-operation on different (and shared) sub-heaps, then recovers and
// audits. This is the hardest failure class: torn operations on multiple
// sub-heaps at once, each with its own undo log state.
func TestConcurrentCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for seed := int64(0); seed < 12; seed++ {
		opts := Options{
			Subheaps:        2,
			SubheapUserSize: 512 << 10,
			SubheapMetaSize: 256 << 10,
			UndoLogSize:     64 << 10,
			MaxThreads:      8,
			HeapID:          uint64(seed) + 1,
			CrashTracking:   true,
		}
		h, err := Create(opts)
		if err != nil {
			t.Fatal(err)
		}
		const workers = 4
		// Let every worker get going, then arm a failpoint that dies
		// somewhere inside the flurry of concurrent operations.
		h.Device().FailAfter(400 + seed*137)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th, err := h.ThreadOn(w % 2)
				if err != nil {
					return
				}
				defer th.Close()
				var mine []NVMPtr
				for i := 0; i < 200; i++ {
					var p NVMPtr
					var err error
					if i%5 == 4 {
						p, err = th.TxAlloc(uint64(64+i%512), i%10 == 9)
					} else {
						p, err = th.Alloc(uint64(64 + i%512))
					}
					if err != nil {
						return // device died (or OOM near the end) — stop
					}
					mine = append(mine, p)
					if len(mine) > 8 {
						if err := th.Free(mine[0]); err != nil {
							return
						}
						mine = mine[1:]
					}
				}
			}(w)
		}
		wg.Wait()
		h.Device().DisarmFailpoint()
		if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: seed * 31}); err != nil {
			t.Fatal(err)
		}
		h2, err := Load(h.Device(), opts)
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		report, err := h2.Check()
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("seed %d: %v", seed, report.Problems)
		}
		if report.PendingUndo != 0 || report.PendingTx != 0 {
			t.Fatalf("seed %d: pending work after recovery: %+v", seed, report)
		}
	}
}

// TestTxTooLargeRollsBack exercises the commit-hook failure path: when the
// micro-log lane overflows, the allocation that could not be logged must
// be rolled back (undo replay inside the op) — the heap stays consistent
// and the earlier transaction entries remain intact.
func TestTxTooLargeRollsBack(t *testing.T) {
	opts := testOptions()
	opts.MicroLogLaneSize = 256 // 64 B header + 12 entries
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	capacity := (opts.MicroLogLaneSize - 64) / 16
	var ok []NVMPtr
	for i := uint64(0); i < capacity; i++ {
		p, err := th.TxAlloc(64, false)
		if err != nil {
			t.Fatalf("tx alloc %d of %d: %v", i, capacity, err)
		}
		ok = append(ok, p)
	}
	// The next one overflows the lane: the metadata mutation must be
	// undone and the error surfaced.
	if _, err := th.TxAlloc(64, false); !errors.Is(err, ErrTxTooLarge) {
		t.Fatalf("overflow tx alloc: %v, want ErrTxTooLarge", err)
	}
	auditHeap(t, h)
	// A crash now rolls back exactly the logged allocations — the failed
	// one must not appear anywhere.
	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	if got := h2.Stats().RecoveredBlocks; got != uint64(capacity) {
		t.Fatalf("recovered %d blocks, want %d", got, capacity)
	}
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	for _, p := range ok {
		if err := th2.Free(p); !errors.Is(err, ErrDoubleFree) {
			t.Fatalf("logged alloc %v not rolled back: %v", p, err)
		}
	}
	auditHeap(t, h2)
}
